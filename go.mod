module gremlin

go 1.22
