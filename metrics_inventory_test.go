package gremlin_test

import (
	"context"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"gremlin/internal/agentapi"
	"gremlin/internal/eventlog"
	"gremlin/internal/metrics"
	"gremlin/internal/orchestrator"
	"gremlin/internal/registry"
	"gremlin/internal/rules"
	"gremlin/internal/telemetry"
	"gremlin/internal/topology"
)

// TestMetricInventoryDocumented scrapes every metrics producer — a live
// agent, the store server, and the orchestrator's reconciler — lints the
// expositions, and asserts README.md documents every family emitted. A new
// metric without a README row fails here, so the inventory cannot rot.
func TestMetricInventoryDocumented(t *testing.T) {
	app := buildApp(t)
	ctx := context.Background()

	// Stage a rule through the reconciler so the per-rule and per-agent
	// families have samples to emit.
	orch := orchestrator.New(app.Registry, orchestrator.WithRetry(3, 5*time.Millisecond))
	_, err := orch.SetOwner(ctx, "inventory", []rules.Rule{{
		ID: "inv-1", Src: "serviceA", Dst: "serviceB",
		Action: rules.ActionAbort, Pattern: "test-*", ErrorCode: 503,
	}}, 0)
	if err != nil {
		t.Fatal(err)
	}

	var expositions []string

	agentBody, err := agentapi.New(app.Agent("serviceA").ControlURL(), nil).Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	expositions = append(expositions, agentBody)

	storeServer, err := eventlog.NewServer("127.0.0.1:0", app.Store)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := storeServer.Close(); err != nil {
			t.Error(err)
		}
	}()
	storeBody, err := eventlog.NewClient(storeServer.URL(), nil).Metrics()
	if err != nil {
		t.Fatal(err)
	}
	expositions = append(expositions, storeBody)

	mw := metrics.NewWriter()
	orch.WriteMetrics(mw)
	expositions = append(expositions, mw.String())

	// The telemetry plane measures itself with the same format it scrapes.
	scraper := telemetry.NewScraper(telemetry.NewSeriesStore(0), []telemetry.Target{
		{Name: "serviceA", URL: app.Agent("serviceA").ControlURL() + "/metrics"},
	}, telemetry.ScrapeOptions{})
	scraper.ScrapeOnce(ctx)
	tw := metrics.NewWriter()
	scraper.WriteMetrics(tw)
	expositions = append(expositions, tw.String())

	// The dynamic registry's membership gauges and lease counters.
	dyn := registry.NewDynamic(registry.DynamicOptions{})
	if err := dyn.Register(registry.Instance{Service: "serviceA", Addr: "127.0.0.1:1"}, 0); err != nil {
		t.Fatal(err)
	}
	rw := metrics.NewWriter()
	dyn.WriteMetrics(rw)
	expositions = append(expositions, rw.String())

	// The active health checker's per-replica gauges and probe counters.
	hc := app.NewHealthChecker(topology.HealthOptions{})
	hc.ProbeOnce()
	hw := metrics.NewWriter()
	hc.WriteMetrics(hw)
	expositions = append(expositions, hw.String())

	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}

	typeLine := regexp.MustCompile(`(?m)^# TYPE (\S+) `)
	families := map[string]bool{}
	for i, body := range expositions {
		if err := metrics.Lint(strings.NewReader(body)); err != nil {
			t.Errorf("exposition %d fails lint: %v", i, err)
		}
		for _, m := range typeLine.FindAllStringSubmatch(body, -1) {
			families[m[1]] = true
		}
	}
	if len(families) < 20 {
		t.Fatalf("only %d metric families scraped — a producer is missing from this test", len(families))
	}
	for fam := range families {
		if !strings.Contains(string(readme), "`"+fam+"`") {
			t.Errorf("metric family %s is emitted but not documented in README.md", fam)
		}
	}

	// And the other direction: every documented gremlin_* family exists.
	docRow := regexp.MustCompile("`(gremlin_[a-z_]+)`")
	for _, m := range docRow.FindAllStringSubmatch(string(readme), -1) {
		if !families[m[1]] {
			t.Errorf("README.md documents %s but no producer emits it", m[1])
		}
	}
}
