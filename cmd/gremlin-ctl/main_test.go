package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gremlin/internal/agentapi"
	"gremlin/internal/eventlog"
	"gremlin/internal/registry"
	"gremlin/internal/topology"
)

func TestRunUnknownSubcommand(t *testing.T) {
	if err := run([]string{"explode"}); err == nil {
		t.Fatal("want error")
	}
	if err := run(nil); err == nil {
		t.Fatal("want error for missing subcommand")
	}
	if err := run([]string{"help"}); err != nil {
		t.Fatalf("help: %v", err)
	}
}

func TestAgentCommandsRequireAgentFlag(t *testing.T) {
	for _, sub := range []string{"info", "rules", "install", "remove", "clear", "flush"} {
		if err := run([]string{sub}); err == nil {
			t.Errorf("%s without -agent should fail", sub)
		}
	}
}

func TestStoreCommandsRequireStoreFlag(t *testing.T) {
	for _, sub := range []string{"query", "stats", "wipe"} {
		if err := run([]string{sub}); err == nil {
			t.Errorf("%s without -store should fail", sub)
		}
	}
}

func TestRunCommandRequiredFlags(t *testing.T) {
	if err := run([]string{"run"}); err == nil {
		t.Fatal("run without flags should fail")
	}
}

func writeJSON(t *testing.T, dir, name string, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestEndToEndCtlAgainstLiveTopology drives the full CLI surface against a
// running application: info, install, rules, run (recipe file), query,
// stats, clear, wipe.
func TestEndToEndCtlAgainstLiveTopology(t *testing.T) {
	spec := topology.TwoServices(5, time.Millisecond)
	spec.RNG = rand.New(rand.NewSource(1))
	app, err := topology.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := app.Close(); err != nil {
			t.Error(err)
		}
	}()
	storeServer, err := eventlog.NewServer("127.0.0.1:0", app.Store)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := storeServer.Close(); err != nil {
			t.Error(err)
		}
	}()

	dir := t.TempDir()

	// Serialize the live deployment for the CLI.
	graphPath := writeJSON(t, dir, "graph.json", app.Graph.Edges())
	var instances []registry.Instance
	services, err := app.Registry.Services()
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range services {
		ins, err := app.Registry.Instances(svc)
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, ins...)
	}
	registryPath := writeJSON(t, dir, "registry.json", instances)
	recipePath := writeJSON(t, dir, "recipe.json", map[string]any{
		"name":      "ctl-overload",
		"scenarios": []map[string]any{{"type": "overload", "service": "serviceB", "abortFraction": 1.0}},
		"checks": []map[string]any{{
			"type": "boundedRetries", "src": "serviceA", "dst": "serviceB", "maxTries": 5,
		}},
	})

	agentURL := app.Agent("serviceA").ControlURL()

	// info / rules / stats against the live deployment.
	if err := run([]string{"info", "-agent", agentURL}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := run([]string{"rules", "-agent", agentURL}); err != nil {
		t.Fatalf("rules: %v", err)
	}
	if err := run([]string{"stats", "-store", storeServer.URL()}); err != nil {
		t.Fatalf("stats: %v", err)
	}

	// Full recipe execution through the CLI, with load.
	if err := run([]string{"run",
		"-recipe", recipePath,
		"-graph", graphPath,
		"-registry", registryPath,
		"-store", storeServer.URL(),
		"-load-url", app.EntryURL(),
		"-requests", "1",
	}); err != nil {
		t.Fatalf("run: %v", err)
	}

	// Manual rule install + query + clear + wipe.
	rulesPath := writeJSON(t, dir, "rules.json", []map[string]any{{
		"id": "manual-1", "src": "serviceA", "dst": "serviceB",
		"action": "abort", "pattern": "test-*", "errorCode": 503,
	}})
	if err := run([]string{"install", "-agent", agentURL, "-file", rulesPath}); err != nil {
		t.Fatalf("install: %v", err)
	}
	if err := run([]string{"query", "-store", storeServer.URL(), "-kind", "reply", "-limit", "5"}); err != nil {
		t.Fatalf("query: %v", err)
	}
	if err := run([]string{"remove", "-agent", agentURL, "-id", "manual-1"}); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := run([]string{"clear", "-agent", agentURL}); err != nil {
		t.Fatalf("clear: %v", err)
	}
	if err := run([]string{"flush", "-agent", agentURL}); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := run([]string{"wipe", "-store", storeServer.URL()}); err != nil {
		t.Fatalf("wipe: %v", err)
	}
}

// TestRunCommandFailingRecipe: a failing assertion surfaces as a non-nil
// error (CI-friendly exit code).
func TestRunCommandFailingRecipe(t *testing.T) {
	spec := topology.TwoServices(20, time.Millisecond) // 20 retries: fails the 5-retry check
	spec.RNG = rand.New(rand.NewSource(1))
	app, err := topology.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := app.Close(); err != nil {
			t.Error(err)
		}
	}()
	storeServer, err := eventlog.NewServer("127.0.0.1:0", app.Store)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := storeServer.Close(); err != nil {
			t.Error(err)
		}
	}()

	dir := t.TempDir()
	graphPath := writeJSON(t, dir, "graph.json", app.Graph.Edges())
	var instances []registry.Instance
	services, err := app.Registry.Services()
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range services {
		ins, err := app.Registry.Instances(svc)
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, ins...)
	}
	registryPath := writeJSON(t, dir, "registry.json", instances)
	recipePath := writeJSON(t, dir, "recipe.json", map[string]any{
		"name":      "fails",
		"scenarios": []map[string]any{{"type": "disconnect", "from": "serviceA", "to": "serviceB"}},
		"checks": []map[string]any{{
			"type": "boundedRetries", "src": "serviceA", "dst": "serviceB", "maxTries": 5,
		}},
	})

	err = run([]string{"run",
		"-recipe", recipePath,
		"-graph", graphPath,
		"-registry", registryPath,
		"-store", storeServer.URL(),
		"-load-url", app.EntryURL(),
		"-requests", "1",
	})
	if err == nil {
		t.Fatal("failing recipe should return an error")
	}
}

// TestAutorunAgainstLiveTopology generates and chains recipes over a live
// deployment. The TwoServices app has bounded retries but no breaker, so
// the chain passes the overload recipe and stops at the crash recipe.
func TestAutorunAgainstLiveTopology(t *testing.T) {
	spec := topology.TwoServices(3, time.Millisecond)
	spec.RNG = rand.New(rand.NewSource(1))
	app, err := topology.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := app.Close(); err != nil {
			t.Error(err)
		}
	}()
	storeServer, err := eventlog.NewServer("127.0.0.1:0", app.Store)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := storeServer.Close(); err != nil {
			t.Error(err)
		}
	}()

	dir := t.TempDir()
	graphPath := writeJSON(t, dir, "graph.json", app.Graph.Edges())
	var instances []registry.Instance
	services, err := app.Registry.Services()
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range services {
		ins, err := app.Registry.Instances(svc)
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, ins...)
	}
	registryPath := writeJSON(t, dir, "registry.json", instances)

	err = run([]string{"autorun",
		"-graph", graphPath,
		"-registry", registryPath,
		"-store", storeServer.URL(),
		"-load-url", app.EntryURL(),
		"-requests", "5",
		"-skip", "user",
	})
	// serviceB's dependent serviceA has bounded retries but no breaker:
	// the crash recipe fails, so autorun reports an error.
	if err == nil {
		t.Fatal("autorun should stop at the failing crash recipe")
	}
	if !strings.Contains(err.Error(), "auto-crash-serviceB") {
		t.Fatalf("err = %v", err)
	}
}

func TestAutorunRequiredFlags(t *testing.T) {
	if err := run([]string{"autorun"}); err == nil {
		t.Fatal("want error")
	}
}

func TestChaosAgainstLiveTopology(t *testing.T) {
	spec := topology.TwoServices(0, time.Millisecond)
	spec.RNG = rand.New(rand.NewSource(1))
	app, err := topology.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := app.Close(); err != nil {
			t.Error(err)
		}
	}()

	dir := t.TempDir()
	graphPath := writeJSON(t, dir, "graph.json", app.Graph.Edges())
	var instances []registry.Instance
	services, err := app.Registry.Services()
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range services {
		ins, err := app.Registry.Instances(svc)
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, ins...)
	}
	registryPath := writeJSON(t, dir, "registry.json", instances)

	if err := run([]string{"chaos",
		"-graph", graphPath,
		"-registry", registryPath,
		"-rounds", "2",
		"-duration", "10ms",
		"-seed", "9",
	}); err != nil {
		t.Fatalf("chaos: %v", err)
	}
	// All rules reverted afterwards.
	if n := app.Agent("serviceA").Matcher().Len(); n != 0 {
		t.Fatalf("%d rules left installed after chaos", n)
	}
}

func TestChaosRequiredFlags(t *testing.T) {
	if err := run([]string{"chaos"}); err == nil {
		t.Fatal("want error")
	}
}

// TestStatusAndDriftCommands drives the fleet subcommands against a live
// topology: a clean fleet converges, an out-of-band rule shows up as
// drift, declaring it as desired state clears the drift, and -repair
// converges the fleet back without it.
func TestStatusAndDriftCommands(t *testing.T) {
	spec := topology.TwoServices(5, time.Millisecond)
	spec.RNG = rand.New(rand.NewSource(1))
	app, err := topology.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := app.Close(); err != nil {
			t.Error(err)
		}
	}()

	dir := t.TempDir()
	var instances []registry.Instance
	services, err := app.Registry.Services()
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range services {
		ins, err := app.Registry.Instances(svc)
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, ins...)
	}
	registryPath := writeJSON(t, dir, "registry.json", instances)
	agentURL := app.Agent("serviceA").ControlURL()

	if err := run([]string{"status"}); err == nil {
		t.Fatal("status without -agent/-registry should fail")
	}
	if err := run([]string{"drift"}); err == nil {
		t.Fatal("drift without -registry should fail")
	}
	if err := run([]string{"status", "-agent", agentURL}); err != nil {
		t.Fatalf("status -agent: %v", err)
	}
	if err := run([]string{"status", "-registry", registryPath}); err != nil {
		t.Fatalf("status -registry: %v", err)
	}

	// A clean fleet is converged against the default "no faults" state.
	if err := run([]string{"drift", "-registry", registryPath}); err != nil {
		t.Fatalf("drift on clean fleet: %v", err)
	}

	// An out-of-band rule is drift...
	rulesPath := writeJSON(t, dir, "rules.json", []map[string]any{{
		"id": "orphan-1", "src": "serviceA", "dst": "serviceB",
		"action": "abort", "pattern": "test-*", "errorCode": 503,
	}})
	if err := run([]string{"install", "-agent", agentURL, "-file", rulesPath}); err != nil {
		t.Fatalf("install: %v", err)
	}
	if err := run([]string{"drift", "-registry", registryPath}); err == nil {
		t.Fatal("drift should report the out-of-band rule")
	}
	// ...unless declared as desired state...
	if err := run([]string{"drift", "-registry", registryPath, "-file", rulesPath}); err != nil {
		t.Fatalf("drift with matching desired state: %v", err)
	}
	// ...and -repair converges the fleet back without it.
	if err := run([]string{"drift", "-registry", registryPath, "-repair"}); err != nil {
		t.Fatalf("drift -repair: %v", err)
	}
	if err := run([]string{"drift", "-registry", registryPath}); err != nil {
		t.Fatalf("drift after repair: %v", err)
	}
	list, err := agentapi.New(agentURL, nil).ListRules(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("repair left %d rules installed", len(list))
	}
}

// TestFleetCommand lists live members of a dynamic registry server and
// enforces -expect as a membership floor.
func TestFleetCommand(t *testing.T) {
	if err := run([]string{"fleet"}); err == nil {
		t.Fatal("fleet without -registry should fail")
	}

	spec := topology.TwoServices(3, time.Millisecond)
	spec.RNG = rand.New(rand.NewSource(1))
	app, err := topology.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := app.Close(); err != nil {
			t.Error(err)
		}
	}()

	dyn := registry.NewDynamic(registry.DynamicOptions{DefaultTTL: time.Minute})
	srv, err := registry.NewServer("127.0.0.1:0", dyn)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	services, err := app.Registry.Services()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, svc := range services {
		ins, err := app.Registry.Instances(svc)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range ins {
			if err := dyn.Register(in, 0); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	if n == 0 {
		t.Fatal("topology registered no instances")
	}

	if err := run([]string{"fleet", "-registry", srv.URL()}); err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if err := run([]string{"fleet", "-registry", srv.URL(), "-expect", fmt.Sprint(n)}); err != nil {
		t.Fatalf("fleet -expect %d with %d live: %v", n, n, err)
	}
	if err := run([]string{"fleet", "-registry", srv.URL(), "-expect", fmt.Sprint(n + 1)}); err == nil {
		t.Fatalf("fleet -expect %d with only %d live should fail", n+1, n)
	}
}
