// Command gremlin-ctl is the operator's CLI for the Gremlin control plane:
// it installs, lists and clears fault-injection rules on agents, inspects
// agents, and queries the event-log store.
//
// Usage:
//
//	gremlin-ctl info    -agent http://127.0.0.1:9001
//	gremlin-ctl rules   -agent http://127.0.0.1:9001
//	gremlin-ctl install -agent http://127.0.0.1:9001 -file rules.json
//	gremlin-ctl remove  -agent http://127.0.0.1:9001 -id rule-1
//	gremlin-ctl clear   -agent http://127.0.0.1:9001
//	gremlin-ctl flush   -agent http://127.0.0.1:9001
//	gremlin-ctl status  -registry registry.json [-scorecard scorecard.json]
//	gremlin-ctl fleet   -registry http://127.0.0.1:9300 [-expect 5]
//	gremlin-ctl drift   -registry registry.json [-file rules.json] [-repair]
//	gremlin-ctl query   -store http://127.0.0.1:9200 -src a -dst b -kind reply -pattern 'test-*'
//	gremlin-ctl stats   -store http://127.0.0.1:9200
//	gremlin-ctl wipe    -store http://127.0.0.1:9200
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gremlin/internal/agentapi"
	"gremlin/internal/campaign"
	"gremlin/internal/core"
	"gremlin/internal/eventlog"
	"gremlin/internal/graph"
	"gremlin/internal/loadgen"
	"gremlin/internal/orchestrator"
	"gremlin/internal/registry"
	"gremlin/internal/rules"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		usage()
		return fmt.Errorf("gremlin-ctl: missing subcommand")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "info", "rules", "install", "remove", "clear", "flush":
		return agentCommand(sub, rest)
	case "query", "stats", "wipe":
		return storeCommand(sub, rest)
	case "status":
		return statusCommand(rest)
	case "fleet":
		return fleetCommand(rest)
	case "drift":
		return driftCommand(rest)
	case "run":
		return runCommand(rest)
	case "autorun":
		return autorunCommand(rest)
	case "chaos":
		return chaosCommand(rest)
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("gremlin-ctl: unknown subcommand %q", sub)
	}
}

// runCommand executes a recipe file against a live deployment: translate
// over the graph, install rules via the registry's agents, optionally
// inject load, evaluate assertions against the store, revert.
func runCommand(args []string) error {
	fs := flag.NewFlagSet("gremlin-ctl run", flag.ContinueOnError)
	var (
		recipePath   = fs.String("recipe", "", "recipe JSON file (required)")
		graphPath    = fs.String("graph", "", "application graph JSON file: [{\"src\":..,\"dst\":..}] (required)")
		registryPath = fs.String("registry", "", "registry JSON file: [{\"service\":..,\"addr\":..,\"agentControlUrl\":..}] (required)")
		storeURL     = fs.String("store", "", "event store URL (required)")
		loadURL      = fs.String("load-url", "", "URL to inject test load at (optional)")
		requests     = fs.Int("requests", 100, "number of test requests when -load-url is set")
		concurrency  = fs.Int("concurrency", 1, "load concurrency")
		keep         = fs.Bool("keep", false, "leave the fault rules installed after the run")
		clearLogs    = fs.Bool("clear-logs", true, "wipe the store before injecting load")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for name, v := range map[string]string{
		"-recipe": *recipePath, "-graph": *graphPath, "-registry": *registryPath, "-store": *storeURL,
	} {
		if v == "" {
			return fmt.Errorf("gremlin-ctl run: %s is required", name)
		}
	}

	recipeRaw, err := os.ReadFile(*recipePath)
	if err != nil {
		return err
	}
	recipe, err := core.ParseRecipe(recipeRaw)
	if err != nil {
		return err
	}

	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	reg, err := loadRegistry(*registryPath)
	if err != nil {
		return err
	}

	storeClient := eventlog.NewClient(*storeURL, nil)
	if !storeClient.Healthy() {
		return fmt.Errorf("gremlin-ctl run: event store %s not reachable", *storeURL)
	}
	runner := core.NewRunner(g, orchestrator.New(reg), storeClient, core.ClearerFunc(func() int {
		n, err := storeClient.Clear()
		if err != nil {
			log.Printf("clear store: %v", err)
		}
		return n
	}))

	// Ctrl-C stops the load early; the runner still reverts rules and
	// evaluates assertions on whatever was collected. The run itself gets a
	// fresh context so the cancelled one cannot abort the revert.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := core.RunOptions{KeepRules: *keep, ClearLogs: *clearLogs}
	if *loadURL != "" {
		opts.Load = func() error {
			res, err := loadgen.Run(*loadURL, loadgen.Options{
				N: *requests, Concurrency: *concurrency, Context: ctx,
			})
			if err != nil {
				return err
			}
			fmt.Printf("load: %s\n", res)
			return nil
		}
	}
	report, err := runner.Run(context.Background(), recipe, opts)
	if err != nil {
		return err
	}
	fmt.Print(report)
	if !report.Passed() {
		return fmt.Errorf("gremlin-ctl run: %d assertions failed", len(report.Failed()))
	}
	return nil
}

// autorunCommand generates a systematic test plan from the application
// graph (an Overload and a Crash recipe per service with dependents) and
// executes it as a chain, stopping at the first failing recipe.
func autorunCommand(args []string) error {
	fs := flag.NewFlagSet("gremlin-ctl autorun", flag.ContinueOnError)
	var (
		graphPath    = fs.String("graph", "", "application graph JSON file (required)")
		registryPath = fs.String("registry", "", "registry JSON file (required)")
		storeURL     = fs.String("store", "", "event store URL (required)")
		loadURL      = fs.String("load-url", "", "URL to inject test load at (required)")
		requests     = fs.Int("requests", 10, "test requests per recipe")
		skip         = fs.String("skip", "user", "comma-separated services to exclude as fault targets")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for name, v := range map[string]string{
		"-graph": *graphPath, "-registry": *registryPath, "-store": *storeURL, "-load-url": *loadURL,
	} {
		if v == "" {
			return fmt.Errorf("gremlin-ctl autorun: %s is required", name)
		}
	}

	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	reg, err := loadRegistry(*registryPath)
	if err != nil {
		return err
	}

	recipes, err := core.GenerateRecipes(g, core.GenerateOptions{
		SkipServices: splitComma(*skip),
	})
	if err != nil {
		return err
	}
	if len(recipes) == 0 {
		return fmt.Errorf("gremlin-ctl autorun: the graph yields no testable services")
	}
	fmt.Printf("generated %d recipes\n", len(recipes))

	storeClient := eventlog.NewClient(*storeURL, nil)
	runner := core.NewRunner(g, orchestrator.New(reg), storeClient, core.ClearerFunc(func() int {
		n, err := storeClient.Clear()
		if err != nil {
			log.Printf("clear store: %v", err)
		}
		return n
	}))
	// Ctrl-C winds down the in-flight recipe's load; the chain then stops
	// at its (failing or interrupted) report instead of running all recipes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	reports, err := runner.RunChain(context.Background(), core.RunOptions{
		ClearLogs: true,
		Load: func() error {
			_, err := loadgen.Run(*loadURL, loadgen.Options{N: *requests, Context: ctx})
			return err
		},
	}, recipes...)
	for _, rep := range reports {
		fmt.Print(rep)
	}
	if err != nil {
		return err
	}
	if len(reports) > 0 && !reports[len(reports)-1].Passed() {
		return fmt.Errorf("gremlin-ctl autorun: stopped at failing recipe %s (%d of %d run)",
			reports[len(reports)-1].Recipe, len(reports), len(recipes))
	}
	fmt.Printf("all %d recipes passed\n", len(reports))
	return nil
}

// chaosCommand runs the randomized baseline (the paper's §8.1 Chaos
// Monkey comparison): stage a random fault, hold it for -duration, revert,
// repeat -rounds times. No assertions are evaluated — faithfully
// reproducing the baseline's limitation that "manual validation that the
// microservices survived the failure is still required."
func chaosCommand(args []string) error {
	fs := flag.NewFlagSet("gremlin-ctl chaos", flag.ContinueOnError)
	var (
		graphPath    = fs.String("graph", "", "application graph JSON file (required)")
		registryPath = fs.String("registry", "", "registry JSON file (required)")
		rounds       = fs.Int("rounds", 3, "number of random faults to stage")
		duration     = fs.Duration("duration", 5*time.Second, "how long each fault stays active")
		seed         = fs.Int64("seed", 0, "random seed (0 = nondeterministic)")
		allTraffic   = fs.Bool("all-traffic", false, "hit every request, Chaos Monkey style (default: test traffic only)")
		skip         = fs.String("skip", "user", "comma-separated services to exclude")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *registryPath == "" {
		return fmt.Errorf("gremlin-ctl chaos: -graph and -registry are required")
	}

	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	reg, err := loadRegistry(*registryPath)
	if err != nil {
		return err
	}
	orch := orchestrator.New(reg)

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("chaos mode: %d rounds, %s each, seed %d\n", *rounds, *duration, *seed)

	// Ctrl-C mid-round reverts the active fault before exiting — dying
	// inside the hold would leave its rules installed on the agents.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for round := 1; round <= *rounds; round++ {
		scenario, err := core.RandomScenario(g, rng, core.ChaosOptions{
			SkipServices: splitComma(*skip),
			AllTraffic:   *allTraffic,
		})
		if err != nil {
			return err
		}
		recipe := core.Recipe{Name: fmt.Sprintf("chaos-%d", round), Scenarios: []core.Scenario{scenario}}
		ruleset, err := recipe.Translate(g)
		if err != nil {
			return err
		}
		applied, err := orch.Apply(context.Background(), ruleset)
		if err != nil {
			return err
		}
		fmt.Printf("round %d: %s active for %s (%d rules on %d agents)\n",
			round, scenario.Describe(), *duration, len(ruleset), applied.AgentCount())
		interrupted := false
		select {
		case <-time.After(*duration):
		case <-ctx.Done():
			interrupted = true
		}
		// Revert with a fresh context: after Ctrl-C the signal context is
		// already cancelled, and the whole point is to withdraw the fault.
		if err := applied.Revert(context.Background()); err != nil {
			return err
		}
		fmt.Printf("round %d: reverted\n", round)
		if interrupted {
			return fmt.Errorf("gremlin-ctl chaos: interrupted during round %d (fault reverted)", round)
		}
	}
	fmt.Println("chaos complete — note: no assertions were evaluated; use 'run' or 'autorun' for systematic verdicts")
	return nil
}

func splitComma(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func agentCommand(sub string, args []string) error {
	fs := flag.NewFlagSet("gremlin-ctl "+sub, flag.ContinueOnError)
	agentURL := fs.String("agent", "", "agent control URL (required)")
	file := fs.String("file", "", "rules JSON file (install)")
	id := fs.String("id", "", "rule ID (remove)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *agentURL == "" {
		return fmt.Errorf("gremlin-ctl %s: -agent is required", sub)
	}
	ctx := context.Background()
	client := agentapi.New(*agentURL, nil)

	switch sub {
	case "info":
		info, err := client.Info(ctx)
		if err != nil {
			return err
		}
		return printJSON(info)
	case "rules":
		list, err := client.ListRules(ctx)
		if err != nil {
			return err
		}
		for _, r := range list {
			fmt.Println(r)
		}
		fmt.Printf("%d rules installed\n", len(list))
		return nil
	case "install":
		if *file == "" {
			return fmt.Errorf("gremlin-ctl install: -file is required")
		}
		raw, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		var batch []rules.Rule
		if err := json.Unmarshal(raw, &batch); err != nil {
			return fmt.Errorf("parse %s: %w", *file, err)
		}
		if err := client.InstallRules(ctx, batch...); err != nil {
			return err
		}
		fmt.Printf("installed %d rules\n", len(batch))
		return nil
	case "remove":
		if *id == "" {
			return fmt.Errorf("gremlin-ctl remove: -id is required")
		}
		if err := client.RemoveRule(ctx, *id); err != nil {
			return err
		}
		fmt.Printf("removed rule %s\n", *id)
		return nil
	case "clear":
		n, err := client.ClearRules(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("removed %d rules\n", n)
		return nil
	case "flush":
		if err := client.Flush(ctx); err != nil {
			return err
		}
		fmt.Println("flushed")
		return nil
	}
	return nil
}

// statusCommand prints each agent's rule-set status — generation, content
// hash, rule count, and whether a self-expiry lease is armed — either for
// one agent (-agent) or for every agent in a registry file (-registry).
func statusCommand(args []string) error {
	fs := flag.NewFlagSet("gremlin-ctl status", flag.ContinueOnError)
	var (
		agentURL      = fs.String("agent", "", "agent control URL")
		registryPath  = fs.String("registry", "", "registry JSON file (all agents)")
		storeURL      = fs.String("store", "", "event store URL (also report store topology and WAL durability)")
		scorecardPath = fs.String("scorecard", "", "campaign scorecard JSON; reports explore point coverage when present")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var urls []string
	switch {
	case *agentURL != "":
		urls = []string{*agentURL}
	case *registryPath != "":
		reg, err := loadRegistry(*registryPath)
		if err != nil {
			return err
		}
		urls, err = registry.AllAgentURLs(reg)
		if err != nil {
			return err
		}
	default:
		if *storeURL == "" && *scorecardPath == "" {
			return fmt.Errorf("gremlin-ctl status: -agent, -registry, -store or -scorecard is required")
		}
	}

	if *scorecardPath != "" {
		if err := printScorecardStatus(*scorecardPath); err != nil {
			return err
		}
	}

	ctx := context.Background()
	failed := 0
	if *storeURL != "" {
		info, err := eventlog.NewClient(*storeURL, nil).Info()
		if err != nil {
			fmt.Printf("store %s: UNREACHABLE (%v)\n", *storeURL, err)
			failed++
		} else {
			fmt.Printf("store %s: records=%d shards=%d subscribers=%d subscriberDropped=%d %s\n",
				*storeURL, info.Records, info.Shards,
				info.Subscribers, info.SubscriberDropped, describeDurability(info))
		}
	}
	for _, url := range urls {
		body, err := agentapi.New(url, nil).GetRuleSet(ctx)
		if err != nil {
			fmt.Printf("%s: UNREACHABLE (%v)\n", url, err)
			failed++
			continue
		}
		lease := "permanent"
		if body.Leased {
			lease = "leased"
		}
		// Drop counters ride along from /v1/info: truncated execution
		// indexes and shed log records silently skew every downstream
		// verdict, so status must show them.
		drops := ""
		if info, ierr := agentapi.New(url, nil).Info(ctx); ierr == nil {
			drops = fmt.Sprintf(" eiTruncated=%d logDropped=%d",
				info.Stats.EITruncated, info.Stats.LogDropped)
		}
		fmt.Printf("%s: generation=%d rules=%d %s hash=%s%s\n",
			url, body.Generation, len(body.Rules), lease, body.Hash, drops)
	}
	if failed > 0 {
		return fmt.Errorf("gremlin-ctl status: %d of %d agents unreachable", failed, len(urls))
	}
	return nil
}

// printScorecardStatus summarizes a campaign scorecard file: the pass/fail
// headline, and — when the campaign was an exploration — the point-coverage
// counters the explore plane journalled (discovered, exercised, revealed
// only under fault, pruned as EI-equivalent, rounds, convergence).
func printScorecardStatus(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("gremlin-ctl status: %w", err)
	}
	var sc campaign.Scorecard
	if err := json.Unmarshal(data, &sc); err != nil {
		return fmt.Errorf("gremlin-ctl status: parse %s: %w", path, err)
	}
	fmt.Printf("campaign %s: units=%d passed=%d failed=%d errors=%d skipped=%d\n",
		sc.Campaign, sc.Units, sc.Passed, sc.Failed, sc.Errors, sc.Skipped)
	if x := sc.Explore; x != nil {
		state := "frontier not yet dry"
		if x.Converged {
			state = "converged"
		}
		fmt.Printf("explore: points discovered=%d exercised=%d revealed=%d pruned=%d rounds=%d (%s)\n",
			x.PointsDiscovered, x.PointsExercised, x.PointsRevealed, x.PointsPruned, x.Rounds, state)
	}
	return nil
}

// fleetCommand lists the live members of a dynamic registry server: one
// line per instance with service, replica index, health state, lease age,
// and the agent's current rule-set generation. With -expect N the command
// exits non-zero when fewer than N instances are live — a scriptable
// membership check for CI smoke tests and deploy gates.
func fleetCommand(args []string) error {
	fs := flag.NewFlagSet("gremlin-ctl fleet", flag.ContinueOnError)
	var (
		regURL = fs.String("registry", "", "dynamic registry server URL (required)")
		expect = fs.Int("expect", 0, "exit non-zero unless at least this many instances are live")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *regURL == "" {
		return fmt.Errorf("gremlin-ctl fleet: -registry is required")
	}
	members, err := registry.NewClient(*regURL, nil).Members()
	if err != nil {
		return fmt.Errorf("gremlin-ctl fleet: list members: %w", err)
	}

	ctx := context.Background()
	now := time.Now()
	for _, m := range members {
		health := m.Health
		if health == "" {
			health = "unknown"
		}
		gen := "-"
		if m.AgentControlURL != "" {
			if body, err := agentapi.New(m.AgentControlURL, nil).GetRuleSet(ctx); err == nil {
				gen = fmt.Sprintf("%d", body.Generation)
			} else {
				gen = "unreachable"
			}
		}
		fmt.Printf("%-24s replica=%-3d %-24s %-8s lease=%-8s gen=%s\n",
			m.Service, m.Replica, m.Addr, health,
			m.LeaseAge(now).Round(time.Millisecond), gen)
	}
	fmt.Printf("%d live instances\n", len(members))
	if *expect > 0 && len(members) < *expect {
		return fmt.Errorf("gremlin-ctl fleet: %d live instances, expected at least %d", len(members), *expect)
	}
	return nil
}

// driftCommand compares every agent's installed rule set against declared
// desired state — the rules in -file, or "no faults anywhere" when -file is
// omitted — and reports which agents have drifted. It is read-only unless
// -repair is set, in which case a reconcile pass converges the drifted
// agents. A non-converged fleet is a non-zero exit.
func driftCommand(args []string) error {
	fs := flag.NewFlagSet("gremlin-ctl drift", flag.ContinueOnError)
	var (
		registryPath = fs.String("registry", "", "registry JSON file (required)")
		file         = fs.String("file", "", "desired rules JSON file (default: empty — no faults expected)")
		repair       = fs.Bool("repair", false, "converge drifted agents instead of only reporting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *registryPath == "" {
		return fmt.Errorf("gremlin-ctl drift: -registry is required")
	}
	reg, err := loadRegistry(*registryPath)
	if err != nil {
		return err
	}
	orch := orchestrator.New(reg)
	if *file != "" {
		raw, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		var batch []rules.Rule
		if err := json.Unmarshal(raw, &batch); err != nil {
			return fmt.Errorf("parse %s: %w", *file, err)
		}
		if err := orch.StageOwner("gremlin-ctl", batch, 0); err != nil {
			return err
		}
	}

	ctx := context.Background()
	var rep *orchestrator.Report
	if *repair {
		rep, err = orch.Reconcile(ctx)
	} else {
		rep, err = orch.Drift(ctx)
	}
	if err != nil {
		return err
	}
	fmt.Print(rep.Describe())
	if !rep.Converged() {
		return fmt.Errorf("gremlin-ctl drift: fleet has not converged")
	}
	fmt.Println("converged")
	return nil
}

// loadGraph reads an application-graph JSON file ([{"src":..,"dst":..}]).
func loadGraph(path string) (*graph.Graph, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var edges []graph.Edge
	if err := json.Unmarshal(raw, &edges); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return graph.FromEdges(edges), nil
}

// loadRegistry reads a registry JSON file
// ([{"service":..,"addr":..,"agentControlUrl":..}]).
func loadRegistry(path string) (registry.Registry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var instances []registry.Instance
	if err := json.Unmarshal(raw, &instances); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return registry.NewStatic(instances...), nil
}

func storeCommand(sub string, args []string) error {
	fs := flag.NewFlagSet("gremlin-ctl "+sub, flag.ContinueOnError)
	var (
		storeURL = fs.String("store", "", "event store URL (required)")
		src      = fs.String("src", "", "filter by source service")
		dst      = fs.String("dst", "", "filter by destination service")
		kind     = fs.String("kind", "", "filter by kind: request|reply")
		pat      = fs.String("pattern", "", "filter by request-ID pattern")
		limit    = fs.Int("limit", 100, "maximum records to print")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeURL == "" {
		return fmt.Errorf("gremlin-ctl %s: -store is required", sub)
	}
	client := eventlog.NewClient(*storeURL, nil)

	switch sub {
	case "query":
		recs, err := client.Select(eventlog.Query{
			Src: *src, Dst: *dst, Kind: eventlog.Kind(*kind), IDPattern: *pat, Limit: *limit,
		})
		if err != nil {
			return err
		}
		for _, r := range recs {
			fmt.Printf("%s %-8s %s->%s id=%s status=%d latency=%.1fms fault=%q\n",
				r.Timestamp.Format(time.RFC3339Nano), r.Kind, r.Src, r.Dst,
				r.RequestID, r.Status, r.LatencyMillis, r.FaultAction)
		}
		fmt.Printf("%d records\n", len(recs))
		return nil
	case "stats":
		info, err := client.Info()
		if err != nil {
			return err
		}
		fmt.Printf("%d records across %d shards, %s\n",
			info.Records, info.Shards, describeDurability(info))
		return nil
	case "wipe":
		n, err := client.Clear()
		if err != nil {
			return err
		}
		fmt.Printf("dropped %d records\n", n)
		return nil
	}
	return nil
}

// describeDurability renders a StoreInfo's WAL configuration for humans.
func describeDurability(info eventlog.StoreInfo) string {
	if !info.Persistent {
		return "volatile"
	}
	s := "wal fsync=" + info.Fsync
	if info.FsyncIntervalMillis > 0 {
		s += fmt.Sprintf("/%dms", info.FsyncIntervalMillis)
	}
	return s + " dir=" + info.DataDir
}

func printJSON(v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `gremlin-ctl — Gremlin control-plane CLI

agent commands (-agent <control URL>):
  info      show agent identity, routes and rule-set generation
  rules     list installed rules
  install   install rules from -file <rules.json>
  remove    remove one rule by -id
  clear     remove all rules
  flush     flush buffered observations to the store

fleet commands:
  fleet     list live instances of a dynamic registry (-registry <url>):
            service, replica, health, lease age, agent generation;
            -expect N exits non-zero when membership is short
  status    per-agent rule-set generation/hash/lease (-agent or -registry);
            -store <url> also reports store shards and WAL fsync policy;
            -scorecard <file> summarizes a campaign scorecard, including
            explore point coverage when the campaign was an exploration
  drift     compare agents against desired state (-registry, optional
            -file <rules.json>, -repair to converge); non-zero exit on drift

store commands (-store <store URL>):
  query     print records (-src -dst -kind -pattern -limit)
  stats     record count, shard count and WAL durability
  wipe      drop all records

recipe execution:
  run       execute a recipe file end to end
  autorun   generate a test plan from the graph and run it as a chain
  chaos     randomized fault injection (the Chaos Monkey baseline; no assertions)
            -recipe recipe.json -graph graph.json -registry registry.json
            -store <url> [-load-url <url> -requests 100] [-keep]`)
}
