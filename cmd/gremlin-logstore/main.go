// Command gremlin-logstore runs the centralized event-log store that
// Gremlin agents ship their observations to and the Assertion Checker
// queries — the stand-in for the paper's logstash→Elasticsearch pipeline.
//
// Usage:
//
//	gremlin-logstore -addr 127.0.0.1:9200
//	gremlin-logstore -shards 8 -data-dir /var/lib/gremlin -fsync interval
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"gremlin/internal/eventlog"
	"gremlin/internal/httpx"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gremlin-logstore", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9200", "listen address")
	persist := fs.String("persist", "", "JSON Lines file to load at startup and save on shutdown")
	shards := fs.Int("shards", 1, "number of store shards (request-ID namespaces hash across them)")
	dataDir := fs.String("data-dir", "", "directory for per-shard write-ahead logs (replayed at startup; volatile when empty)")
	fsyncMode := fs.String("fsync", "interval", "WAL fsync policy: always, interval, or never")
	pprofAddr := fs.String("pprof", "", "listen address for /debug/pprof/ endpoints (disabled when empty)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *persist != "" && *dataDir != "" {
		return errors.New("gremlin-logstore: -persist and -data-dir are mutually exclusive; the WAL already persists every record")
	}

	policy, err := eventlog.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		return err
	}
	store, err := eventlog.NewShardedStore(eventlog.StoreOptions{
		Shards:  *shards,
		DataDir: *dataDir,
		Fsync:   policy,
	})
	if err != nil {
		return err
	}
	if n := store.Len(); n > 0 {
		fmt.Printf("replayed %d records from %s\n", n, *dataDir)
	}
	if *persist != "" {
		n, err := store.LoadFile(*persist)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d records from %s\n", n, *persist)
	}

	srv, err := eventlog.NewServer(*addr, store)
	if err != nil {
		return err
	}
	fmt.Printf("gremlin-logstore listening on %s (%d shard(s))\n", srv.URL(), store.NumShards())
	fmt.Println("  POST   /v1/records  ingest observations (JSON array or NDJSON; ?shard=i&of=n hint)")
	fmt.Println("  POST   /v1/query    query observations")
	fmt.Println("  POST   /v1/count    count matching observations")
	fmt.Println("  DELETE /v1/records  clear")
	fmt.Println("  GET    /v1/stats    record count and shard topology")
	fmt.Println("  GET    /v1/stream   live SSE record stream (?pattern=)")
	fmt.Println("  GET    /metrics     Prometheus text exposition")
	if *pprofAddr != "" {
		dbg, err := httpx.StartPprof(*pprofAddr)
		if err != nil {
			_ = srv.Close()
			_ = store.Close()
			return err
		}
		defer dbg.Close()
		fmt.Printf("  pprof: %s/debug/pprof/\n", dbg.URL())
	}

	waitForSignal()
	fmt.Println("shutting down")
	err = srv.Close()
	if *persist != "" {
		n, serr := store.SaveFile(*persist)
		if serr != nil && err == nil {
			err = serr
		} else if serr == nil {
			fmt.Printf("saved %d records to %s\n", n, *persist)
		}
	}
	if cerr := store.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// waitForSignal blocks until SIGINT/SIGTERM. Tests replace it to drive the
// binary's full lifecycle without signals.
var waitForSignal = func() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}
