package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gremlin/internal/eventlog"
)

func TestRunLifecycleWithPersistence(t *testing.T) {
	persist := filepath.Join(t.TempDir(), "events.jsonl")

	// First run: start, ingest one record through the HTTP API, shut down.
	started := make(chan struct{})
	release := make(chan struct{})
	waitForSignal = func() {
		close(started)
		<-release
	}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-persist", persist})
	}()
	<-started
	// The server address is ephemeral; find it by probing the persist file
	// is impossible — instead reach the store through a second client after
	// restart. For this first run just verify clean shutdown with an empty
	// store.
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}

	// Seed the persistence file out of band and restart: the store must
	// load it.
	store := eventlog.NewStore()
	if err := store.Log(eventlog.Record{Src: "a", Dst: "b", Kind: eventlog.KindRequest, RequestID: "test-1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.SaveFile(persist); err != nil {
		t.Fatal(err)
	}

	started = make(chan struct{})
	release = make(chan struct{})
	waitForSignal = func() {
		close(started)
		<-release
	}
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-persist", persist})
	}()
	<-started
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("second run: %v", err)
	}

	// The restart re-saved the loaded record.
	reloaded := eventlog.NewStore()
	n, err := reloaded.LoadFile(persist)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("persisted %d records across restart, want 1", n)
	}
}

func TestRunPprofEndpoint(t *testing.T) {
	// The store's own address is ephemeral, but -pprof takes a fixed one:
	// ask the kernel for a free port by binding and releasing it.
	probe := httptest.NewServer(http.NotFoundHandler())
	pprofAddr := strings.TrimPrefix(probe.URL, "http://")
	probe.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	waitForSignal = func() {
		close(started)
		<-release
	}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-pprof", pprofAddr})
	}()
	<-started

	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: %d %q", resp.StatusCode, body)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-addr"}); err == nil {
		t.Fatal("want flag parse error")
	}
	if err := run([]string{"-addr", "999.999.999.999:0"}); err == nil {
		t.Fatal("want listen error")
	}
}

func TestRunBadPersistFile(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "corrupt.jsonl")
	if err := writeFile(bad, "not json\n"); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-persist", bad}); err == nil {
		t.Fatal("want load error for corrupt persistence file")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o600)
}

func TestRunShardedWithDataDir(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "wal")

	// First run: ingest via HTTP, shut down cleanly.
	started := make(chan struct{})
	release := make(chan struct{})
	waitForSignal = func() {
		close(started)
		<-release
	}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-shards", "4", "-data-dir", dataDir, "-fsync", "never"})
	}()
	<-started
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}

	// Seed the WAL out of band, then restart: the store must replay it.
	ss, err := eventlog.NewShardedStore(eventlog.StoreOptions{Shards: 4, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Log(eventlog.Record{Src: "a", Dst: "b", Kind: eventlog.KindRequest, RequestID: "test-1"}); err != nil {
		t.Fatal(err)
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}

	started = make(chan struct{})
	release = make(chan struct{})
	waitForSignal = func() {
		close(started)
		<-release
	}
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-shards", "4", "-data-dir", dataDir})
	}()
	<-started
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("second run: %v", err)
	}

	re, err := eventlog.NewShardedStore(eventlog.StoreOptions{Shards: 4, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got != 1 {
		t.Fatalf("replayed %d records across restart, want 1", got)
	}
}

func TestRunRejectsPersistWithDataDir(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-addr", "127.0.0.1:0",
		"-persist", filepath.Join(dir, "e.jsonl"),
		"-data-dir", filepath.Join(dir, "wal"),
	})
	if err == nil {
		t.Fatal("-persist with -data-dir must be rejected")
	}
}

func TestRunRejectsBadFsyncPolicy(t *testing.T) {
	if err := run([]string{"-addr", "127.0.0.1:0", "-fsync", "sometimes"}); err == nil {
		t.Fatal("want fsync policy error")
	}
}
