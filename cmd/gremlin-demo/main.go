// Command gremlin-demo spins up one of the repository's demo applications
// — services, sidecar Gremlin agents, a registry, and an event store — and
// keeps it running so the operator can experiment with gremlin-ctl and
// ad-hoc load.
//
// Usage:
//
//	gremlin-demo -topology wordpress
//	gremlin-demo -topology tree -depth 3
//	gremlin-demo -topology enterprise
//	gremlin-demo -topology messagebus
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gremlin/internal/eventlog"
	"gremlin/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gremlin-demo", flag.ContinueOnError)
	topo := fs.String("topology", "wordpress", "tree | wordpress | enterprise | messagebus | twoservices")
	depth := fs.Int("depth", 2, "binary tree depth (tree topology)")
	storeAddr := fs.String("store-addr", "127.0.0.1:0", "listen address for the event store server")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var spec topology.Spec
	switch *topo {
	case "tree":
		spec = topology.BinaryTree(*depth, 0)
	case "wordpress":
		spec = topology.WordPress(topology.WordPressOptions{})
	case "enterprise":
		spec = topology.Enterprise(topology.EnterpriseOptions{})
	case "messagebus":
		spec = topology.MessageBus(topology.MessageBusOptions{})
	case "twoservices":
		spec = topology.TwoServices(5, 2*time.Millisecond)
	default:
		return fmt.Errorf("gremlin-demo: unknown topology %q", *topo)
	}

	app, err := topology.Build(spec)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := app.Close(); cerr != nil {
			log.Printf("close app: %v", cerr)
		}
	}()

	storeServer, err := eventlog.NewServer(*storeAddr, app.Store)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := storeServer.Close(); cerr != nil {
			log.Printf("close store: %v", cerr)
		}
	}()

	fmt.Printf("topology %q is up\n\n", *topo)
	fmt.Printf("  test-load entry : %s   (stamp requests with %s: test-<n>)\n",
		app.EntryURL(), "X-Gremlin-ID")
	fmt.Printf("  event store     : %s\n\n", storeServer.URL())
	fmt.Println("  services:")
	for _, name := range app.Services() {
		u, err := app.ServiceURL(name)
		if err != nil {
			return err
		}
		agentInfo := "no agent (leaf)"
		if a := app.Agent(name); a != nil {
			agentInfo = "agent " + a.ControlURL()
		}
		fmt.Printf("    %-20s %-28s %s\n", name, u, agentInfo)
	}
	fmt.Printf("    %-20s %-28s agent %s\n", topology.EdgeService, app.EntryURL(), app.Agent(topology.EdgeService).ControlURL())
	fmt.Println("\n  application graph:")
	fmt.Print(indent(app.Graph.DOT(), "    "))
	fmt.Println("\nctrl-c to stop")

	waitForSignal()
	fmt.Println("shutting down")
	return nil
}

// waitForSignal blocks until SIGINT/SIGTERM. Tests replace it to drive the
// binary's full lifecycle without signals.
var waitForSignal = func() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}

func indent(s, prefix string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += prefix + s[start:i+1]
			start = i + 1
		}
	}
	if start < len(s) {
		out += prefix + s[start:]
	}
	return out
}
