package main

import (
	"testing"
)

func TestRunUnknownTopology(t *testing.T) {
	if err := run([]string{"-topology", "mystery"}); err == nil {
		t.Fatal("want error for unknown topology")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-depth"}); err == nil {
		t.Fatal("want flag error")
	}
}

func TestRunEachTopologyLifecycle(t *testing.T) {
	for _, topo := range []string{"twoservices", "wordpress", "enterprise", "messagebus", "tree"} {
		t.Run(topo, func(t *testing.T) {
			release := make(chan struct{})
			waitForSignal = func() { <-release }
			done := make(chan error, 1)
			go func() {
				done <- run([]string{"-topology", topo, "-depth", "1", "-store-addr", "127.0.0.1:0"})
			}()
			close(release)
			if err := <-done; err != nil {
				t.Fatalf("run(%s): %v", topo, err)
			}
		})
	}
}

func TestIndent(t *testing.T) {
	got := indent("a\nb\n", "  ")
	if got != "  a\n  b\n" {
		t.Fatalf("indent = %q", got)
	}
	if got := indent("tail", "> "); got != "> tail" {
		t.Fatalf("indent without trailing newline = %q", got)
	}
}
