package main

import "testing"

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Fatal("want error for unknown figure")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-scale"}); err == nil {
		t.Fatal("want flag error")
	}
}

func TestRunSingleFigureTiny(t *testing.T) {
	// Figure 7 is the cheapest end-to-end figure; run it at minimal load
	// to exercise the whole path.
	if err := run([]string{"-fig", "7", "-requests", "5", "-scale", "0.01"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}
