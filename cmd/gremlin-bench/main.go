// Command gremlin-bench regenerates the paper's evaluation (§7) against
// live in-process deployments and prints the series that EXPERIMENTS.md
// records:
//
//	Table 1  — historical outages replayed (fragile FAIL / hardened PASS)
//	Figure 5 — WordPress response-time CDFs under injected delays
//	Figure 6 — aborted-then-delayed CDFs (circuit-breaker test)
//	Figure 7 — orchestration + assertion time vs. application size
//	Figure 8 — proxy rule-matching overhead CDFs
//
// Usage:
//
//	gremlin-bench                 # all figures at laptop scale (0.1x delays)
//	gremlin-bench -fig 7          # one figure
//	gremlin-bench -scale 1        # paper-scale delays (slow: Figure 5 alone
//	                              # injects 100 requests behind 1-4 s delays)
//	gremlin-bench -requests 10000 # paper-scale request counts
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gremlin/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gremlin-bench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: table1 | 5 | 6 | 7 | 8 | all")
	scale := fs.Float64("scale", 0.1, "multiplier on the paper's injected delays (1 = paper scale)")
	requests := fs.Int("requests", 0, "override per-point request count (0 = scaled defaults)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiments.Options{Scale: *scale, Requests: *requests, Seed: *seed}

	// Ctrl-C stops cleanly at the next figure boundary — each figure tears
	// down its own in-process deployment, so interrupting between figures
	// leaks nothing.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runFig := func(name string, f func() error) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("gremlin-bench: interrupted before %s", name)
		}
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("  [%s regenerated in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	all := *fig == "all"
	if all || *fig == "table1" {
		if err := runFig("table 1", func() error {
			rows, err := experiments.Table1(opts)
			if err != nil {
				return err
			}
			experiments.PrintTable1(os.Stdout, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if all || *fig == "5" {
		if err := runFig("figure 5", func() error {
			series, err := experiments.Figure5(opts)
			if err != nil {
				return err
			}
			experiments.PrintFigure5(os.Stdout, series)
			return nil
		}); err != nil {
			return err
		}
	}
	if all || *fig == "6" {
		if err := runFig("figure 6", func() error {
			res, err := experiments.Figure6(opts)
			if err != nil {
				return err
			}
			experiments.PrintFigure6(os.Stdout, res)
			return nil
		}); err != nil {
			return err
		}
	}
	if all || *fig == "7" {
		if err := runFig("figure 7", func() error {
			rows, err := experiments.Figure7(opts)
			if err != nil {
				return err
			}
			experiments.PrintFigure7(os.Stdout, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if all || *fig == "8" {
		if err := runFig("figure 8", func() error {
			rows, err := experiments.Figure8(opts)
			if err != nil {
				return err
			}
			experiments.PrintFigure8(os.Stdout, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	switch *fig {
	case "all", "5", "6", "7", "8", "table1":
		return nil
	default:
		return fmt.Errorf("gremlin-bench: unknown figure %q", *fig)
	}
}
