package main

import (
	"strings"
	"testing"
	"time"

	"gremlin/internal/registry"
	"gremlin/internal/telemetry"
)

func fixedSnapshot() telemetry.Snapshot {
	at := time.Date(2026, 8, 9, 12, 30, 45, 0, time.UTC)
	return telemetry.Snapshot{
		At:           at,
		WindowMillis: 5000,
		Services: []telemetry.ServiceStat{
			{Service: "web", Rate: 12.5, ErrorRatio: 0.25, P50Millis: 4.2, P99Millis: 151.0, HasLatency: true},
			{Service: "user", Rate: 3.0},
		},
		Active: []telemetry.Window{
			{Unit: "delay-web-db", Kind: "delay", Target: "web->db", Start: at.Add(-2 * time.Second)},
		},
		Recent: []telemetry.Window{
			{Unit: "abort-web-auth", Kind: "abort", Target: "web->auth", Status: "failed",
				Start: at.Add(-20 * time.Second), End: at.Add(-15 * time.Second)},
			{Unit: "delay-user-web", Kind: "delay", Target: "user->web", Status: "passed",
				Start: at.Add(-40 * time.Second), End: at.Add(-35 * time.Second)},
		},
		Scraper: telemetry.ScraperStats{
			Targets: []telemetry.TargetStats{{Name: "web"}, {Name: "user"}},
			Scrapes: 42, Errors: 1,
		},
	}
}

func TestRenderSnapshotPlain(t *testing.T) {
	out := renderSnapshot(fixedSnapshot(), true)
	for _, want := range []string{
		"gremlin-top",
		"targets=2 scrapes=42 errors=1",
		"SERVICE",
		"P99(ms)",
		"web",
		"151.0",
		"25.0%",
		"ACTIVE FAULT WINDOWS",
		"delay-web-db",
		"RECENT WINDOWS",
		"abort-web-auth",
		"✕ VIOLATION",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Fatalf("plain frame contains ANSI escapes:\n%s", out)
	}
	// The service without latency data renders em dashes, not zeros.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "user") && !strings.Contains(line, "—") {
			t.Fatalf("latency-less service should show —: %q", line)
		}
	}
}

func TestRenderSnapshotANSIFlash(t *testing.T) {
	out := renderSnapshot(fixedSnapshot(), false)
	if !strings.Contains(out, "\x1b[7m") {
		t.Fatalf("failed window should flash in inverse video:\n%s", out)
	}
	// Passed windows never flash.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "delay-user-web") && strings.Contains(line, "\x1b[7m") {
			t.Fatalf("passed window should not flash: %q", line)
		}
	}
}

func TestFleetTargets(t *testing.T) {
	reg := registry.NewStatic(
		registry.Instance{Service: "web", Addr: "127.0.0.1:1", AgentControlURL: "http://127.0.0.1:9001"},
		registry.Instance{Service: "web", Addr: "127.0.0.1:2", AgentControlURL: "http://127.0.0.1:9002"},
		registry.Instance{Service: "db", Addr: "127.0.0.1:3"}, // no agent: skipped
	)
	targets, err := telemetry.FleetTargets(reg, "http://127.0.0.1:9100/")
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]string)
	for _, tg := range targets {
		got[tg.Name] = tg.URL
	}
	if len(targets) != 3 {
		t.Fatalf("want 3 targets, got %v", got)
	}
	if got["web"] != "http://127.0.0.1:9001/metrics" || got["web-2"] != "http://127.0.0.1:9002/metrics" {
		t.Fatalf("agent targets wrong: %v", got)
	}
	if got["store"] != "http://127.0.0.1:9100/metrics" {
		t.Fatalf("store target wrong: %v", got)
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}, nil); err == nil {
		t.Fatal("want error when neither -attach nor -registry given")
	}
	if err := run([]string{"-attach", "x", "-registry", "y"}, nil); err == nil {
		t.Fatal("want error when both modes given")
	}
	if err := run([]string{"-attach", "x", "-format", "html"}, nil); err == nil {
		t.Fatal("want error: html report needs scrape mode")
	}
	if err := run([]string{"-attach", "x", "-format", "csv"}, nil); err == nil {
		t.Fatal("want error for unknown format")
	}
}
