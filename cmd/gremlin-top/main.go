// gremlin-top is a live terminal dashboard over the telemetry plane:
// per-service request rate, error ratio, and latency quantile columns,
// active fault windows, and violation flashes for units that just failed.
//
// Two modes:
//
//	gremlin-top -attach http://127.0.0.1:9200
//	    consume a running telemetry server's SSE snapshot stream
//	    (gremlin-campaign -telemetry-listen starts one).
//
//	gremlin-top -registry registry.json [-store URL]
//	    scrape the fleet's agents (and optionally the store) directly
//	    and compute snapshots locally.
//
// -format html renders a static HTML report with inline SVG sparklines
// instead of the live view (scrape mode only — the report needs the raw
// series, which the SSE stream does not carry).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gremlin/internal/registry"
	"gremlin/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gremlin-top:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("gremlin-top", flag.ContinueOnError)
	var (
		attach       = fs.String("attach", "", "telemetry server base URL to stream snapshots from")
		registryPath = fs.String("registry", "", "registry JSON file; scrape its agents directly")
		storeURL     = fs.String("store", "", "event store base URL to scrape alongside the agents")
		interval     = fs.Duration("interval", time.Second, "scrape/refresh interval")
		window       = fs.Duration("window", 5*time.Second, "trailing window for rate and quantile columns")
		frames       = fs.Int("frames", 0, "render this many frames then exit (0 = until interrupted)")
		plain        = fs.Bool("plain", false, "no ANSI clear/highlight; print frames sequentially")
		format       = fs.String("format", "text", "output format: text (live dashboard) or html (static report)")
		htmlOut      = fs.String("out", "", "write the html report here (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*attach == "") == (*registryPath == "") {
		return fmt.Errorf("exactly one of -attach or -registry is required")
	}
	if *format != "text" && *format != "html" {
		return fmt.Errorf("unknown -format %q", *format)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *attach != "" {
		if *format == "html" {
			return fmt.Errorf("-format html needs raw series: use -registry mode")
		}
		return attachLoop(ctx, *attach, *frames, *plain, out)
	}

	reg, err := loadRegistry(*registryPath)
	if err != nil {
		return err
	}
	targets, err := telemetry.FleetTargets(reg, *storeURL)
	if err != nil {
		return err
	}
	store := telemetry.NewSeriesStore(0)
	scraper := telemetry.NewScraper(store, targets, telemetry.ScrapeOptions{Interval: *interval})

	frame := 0
	for {
		scraper.ScrapeOnce(ctx)
		frame++
		if *format == "text" {
			snap := telemetry.BuildSnapshot(store, nil, scraper, *window, 10*time.Second)
			printFrame(out, renderSnapshot(snap, *plain), *plain, frame == 1)
		}
		if *frames > 0 && frame >= *frames {
			break
		}
		select {
		case <-ctx.Done():
			frame = -1
		case <-time.After(*interval):
		}
		if frame < 0 {
			break
		}
	}
	if *format == "html" {
		report := telemetry.HTMLReport("gremlin-top — fleet telemetry", store, nil, nil)
		if *htmlOut == "" {
			fmt.Fprint(out, report)
			return nil
		}
		return os.WriteFile(*htmlOut, []byte(report), 0o644)
	}
	return nil
}

// attachLoop consumes the telemetry server's SSE stream and renders each
// pushed snapshot.
func attachLoop(ctx context.Context, base string, frames int, plain bool, out *os.File) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(base, "/")+"/v1/stream", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("attach %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("attach %s: status %d", base, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	frame := 0
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var snap telemetry.Snapshot
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &snap); err != nil {
			continue
		}
		frame++
		printFrame(out, renderSnapshot(snap, plain), plain, frame == 1)
		if frames > 0 && frame >= frames {
			return nil
		}
	}
	if ctx.Err() != nil {
		return nil // interrupted: a clean exit
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	return nil
}

func printFrame(out *os.File, body string, plain, first bool) {
	if !plain {
		// Clear and home between frames; the first frame also clears
		// whatever was on screen.
		fmt.Fprint(out, "\x1b[2J\x1b[H")
		_ = first
	}
	fmt.Fprint(out, body)
}

// renderSnapshot renders one dashboard frame.
func renderSnapshot(s telemetry.Snapshot, plain bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "gremlin-top  %s  window=%s  targets=%d scrapes=%d errors=%d stale=%d\n",
		s.At.Format("15:04:05"), time.Duration(s.WindowMillis)*time.Millisecond,
		len(s.Scraper.Targets), s.Scraper.Scrapes, s.Scraper.Errors, s.Scraper.StaleTargets)
	b.WriteString("\nSERVICE           RATE/s    ERR%   P50(ms)   P99(ms)\n")
	for _, svc := range s.Services {
		p50, p99 := "—", "—"
		if svc.HasLatency {
			p50 = fmt.Sprintf("%.1f", svc.P50Millis)
			p99 = fmt.Sprintf("%.1f", svc.P99Millis)
		}
		fmt.Fprintf(&b, "%-16s %7.1f  %5.1f%%  %8s  %8s\n",
			svc.Service, svc.Rate, 100*svc.ErrorRatio, p50, p99)
	}
	if len(s.Active) > 0 {
		b.WriteString("\nACTIVE FAULT WINDOWS\n")
		for _, w := range s.Active {
			fmt.Fprintf(&b, "  %-32s %-10s %s  %s elapsed\n",
				w.Unit, w.Kind, w.Target, time.Since(w.Start).Truncate(time.Second))
		}
	}
	if len(s.Recent) > 0 {
		b.WriteString("\nRECENT WINDOWS\n")
		for _, w := range s.Recent {
			line := fmt.Sprintf("  %-32s %-10s %s  %s", w.Unit, w.Kind, w.Target, w.Status)
			if w.Status == "failed" {
				// Violation flash: inverse video on terminals, a marker
				// either way so the state never rides on styling alone.
				line += "  ✕ VIOLATION"
				if !plain {
					line = "\x1b[7m" + line + "\x1b[0m"
				}
			}
			b.WriteString(line + "\n")
		}
	}
	return b.String()
}

func loadRegistry(path string) (registry.Registry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var instances []registry.Instance
	if err := json.Unmarshal(b, &instances); err != nil {
		return nil, fmt.Errorf("parse registry %s: %w", path, err)
	}
	return registry.NewStatic(instances...), nil
}
