package main

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gremlin/internal/campaign"
	"gremlin/internal/eventlog"
	"gremlin/internal/registry"
	"gremlin/internal/topology"
)

func TestRequiredFlags(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing flags should fail")
	}
	if err := run([]string{"-graph", "g.json"}); err == nil {
		t.Fatal("missing -registry/-store/-load-url should fail")
	}
}

func writeJSON(t *testing.T, dir, name string, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestEndToEndCampaignAgainstLiveTopology sweeps a live two-service app
// through the CLI: the campaign settles every unit, writes the journal and
// both scorecard renderings, and reports assertion failures (TwoServices
// has no circuit breaker, so the crash unit fails) as a non-nil error. A
// second invocation with the same journal resumes without re-running
// anything.
func TestEndToEndCampaignAgainstLiveTopology(t *testing.T) {
	spec := topology.TwoServices(3, time.Millisecond)
	spec.RNG = rand.New(rand.NewSource(1))
	app, err := topology.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := app.Close(); err != nil {
			t.Error(err)
		}
	}()
	storeServer, err := eventlog.NewServer("127.0.0.1:0", app.Store)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := storeServer.Close(); err != nil {
			t.Error(err)
		}
	}()

	dir := t.TempDir()
	graphPath := writeJSON(t, dir, "graph.json", app.Graph.Edges())
	var instances []registry.Instance
	services, err := app.Registry.Services()
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range services {
		ins, err := app.Registry.Instances(svc)
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, ins...)
	}
	registryPath := writeJSON(t, dir, "registry.json", instances)

	journal := filepath.Join(dir, "journal.jsonl")
	outJSON := filepath.Join(dir, "scorecard.json")
	outMD := filepath.Join(dir, "scorecard.md")
	args := []string{
		"-graph", graphPath,
		"-registry", registryPath,
		"-store", storeServer.URL(),
		"-load-url", app.EntryURL(),
		"-requests", "4",
		"-parallelism", "3",
		"-journal", journal,
		"-out", outJSON,
		"-markdown", outMD,
		"-id", "cli",
	}

	err = run(args)
	// serviceB's dependent serviceA has bounded retries but no breaker, so
	// the crash unit fails its assertions: the CLI exits non-zero.
	if err == nil || !strings.Contains(err.Error(), "failed assertions") {
		t.Fatalf("err = %v, want assertion failures reported", err)
	}

	var sc campaign.Scorecard
	raw, err := os.ReadFile(outJSON)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &sc); err != nil {
		t.Fatal(err)
	}
	if sc.Errors != 0 {
		t.Fatalf("operational errors: %+v", sc.ErrorUnits)
	}
	if sc.Units == 0 || sc.Executed == 0 || sc.Failed == 0 {
		t.Fatalf("scorecard = %+v", sc)
	}
	if !sc.Covered() {
		t.Fatalf("campaign left edges untested: %+v", sc.Edges)
	}
	md, err := os.ReadFile(outMD)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "## Edges") {
		t.Fatalf("markdown scorecard:\n%s", md)
	}
	entries, err := campaign.LoadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != sc.Units {
		t.Fatalf("journal has %d entries, scorecard settled %d", len(entries), sc.Units)
	}

	// Resume: every unit is already settled, so the second invocation
	// re-reports the verdicts without executing anything new.
	err = run(args)
	if err == nil || !strings.Contains(err.Error(), "failed assertions") {
		t.Fatalf("resumed err = %v", err)
	}
	after, err := campaign.LoadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(entries) {
		t.Fatalf("resume appended %d entries", len(after)-len(entries))
	}
}
