package main

import (
	"log"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"

	"gremlin/internal/campaign"
	"gremlin/internal/rules"
)

// profiler is a campaign.RunObserver that captures a CPU profile of the
// campaign process per run and keeps it only when the run fails (assertion
// violation or operational error), named <dir>/<runID>.cpu.pprof — a
// post-mortem of what the engine itself was doing while the unit went
// wrong. The Go runtime allows one CPU profile at a time, so with
// Parallelism > 1 overlapping runs are skipped rather than queued: the
// profile must cover the run it is named after, not some later window.
type profiler struct {
	dir string

	// profMu is held from StartCPUProfile to StopCPUProfile; TryLock in
	// RunStarted is what skips overlapping runs.
	profMu sync.Mutex

	mu     sync.Mutex // guards active, f
	active string
	f      *os.File
}

func newProfiler(dir string) (*profiler, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &profiler{dir: dir}, nil
}

func (p *profiler) RunStarted(u campaign.Unit, runID string, _ []rules.Rule) {
	if !p.profMu.TryLock() {
		return // another run's profile is in flight
	}
	path := filepath.Join(p.dir, runID+".cpu.pprof")
	f, err := os.Create(path)
	if err != nil {
		p.profMu.Unlock()
		log.Printf("profile %s: %v", runID, err)
		return
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		p.profMu.Unlock()
		log.Printf("profile %s: %v", runID, err)
		return
	}
	p.mu.Lock()
	p.active, p.f = runID, f
	p.mu.Unlock()
}

func (p *profiler) RunFinished(_ campaign.Unit, runID string, e campaign.Entry) {
	p.mu.Lock()
	if p.active != runID {
		p.mu.Unlock()
		return
	}
	f := p.f
	p.active, p.f = "", nil
	p.mu.Unlock()

	pprof.StopCPUProfile()
	path := f.Name()
	if err := f.Close(); err != nil {
		log.Printf("profile %s: %v", runID, err)
	}
	p.profMu.Unlock()
	if e.Status != campaign.StatusFailed && e.Status != campaign.StatusError {
		os.Remove(path) // healthy run: the profile is noise
	}
}
