// Command gremlin-campaign explores a deployment's fault space
// systematically: it enumerates scenario templates × targets × parameter
// grids from the application graph, executes the resulting recipes through
// a bounded worker pool (each run confined to its own request-ID
// namespace), prunes redundant scenarios by coverage signature, and folds
// the outcomes into an aggregate resilience scorecard.
//
// Progress appends to a JSONL journal, so an interrupted campaign (Ctrl-C,
// crash) resumes where it left off:
//
//	gremlin-campaign \
//	    -graph graph.json -registry registry.json \
//	    -store http://127.0.0.1:9200 -load-url http://127.0.0.1:8080 \
//	    -parallelism 4 -journal campaign.jsonl -out scorecard.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gremlin/internal/agentapi"
	"gremlin/internal/campaign"
	"gremlin/internal/core"
	"gremlin/internal/eventlog"
	"gremlin/internal/graph"
	"gremlin/internal/loadgen"
	"gremlin/internal/observe"
	"gremlin/internal/orchestrator"
	"gremlin/internal/registry"
	"gremlin/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gremlin-campaign", flag.ContinueOnError)
	var (
		graphPath    = fs.String("graph", "", "application graph JSON file: [{\"src\":..,\"dst\":..}] (required)")
		registryPath = fs.String("registry", "", "registry JSON file: [{\"service\":..,\"addr\":..,\"agentControlUrl\":..}] (required)")
		storeURL     = fs.String("store", "", "event store URL (required)")
		loadURL      = fs.String("load-url", "", "URL to inject test load at (required)")
		requests     = fs.Int("requests", 20, "test requests per run")
		concurrency  = fs.Int("concurrency", 2, "load concurrency within one run")
		parallelism  = fs.Int("parallelism", 4, "concurrent campaign runs")
		id           = fs.String("id", "camp", "campaign ID (namespaces request IDs)")
		journalPath  = fs.String("journal", "", "JSONL journal for resume (optional)")
		outPath      = fs.String("out", "", "write the scorecard JSON here (optional)")
		mdPath       = fs.String("markdown", "", "write the Markdown scorecard here (default stdout)")
		skip         = fs.String("skip", "user", "comma-separated services to exclude as fault targets")
		templates    = fs.String("templates", "", "comma-separated scenario templates (default all: overload,crash,hang,partition,sever,delay)")
		chaos        = fs.Int("chaos", 0, "append this many randomized chaos draws to the plan")
		chaosSeed    = fs.Int64("chaos-seed", 1, "seed for the chaos draws")
		maxLatency   = fs.Duration("max-latency", 0, "per-request latency bound asserted on callers (default 10s)")
		keepLogs     = fs.Bool("keep-logs", false, "leave each run's records in the store instead of reclaiming them")
		lease        = fs.Duration("lease", 30*time.Second, "lease TTL for each run's staged faults (0 disables leasing): if the campaign dies, agents self-expire the rules after this long")
		liveAsserts  = fs.String("live-asserts", "", "JSON file of online assertions (observe specs); a live violation aborts that run's load early")
		telemetryOn  = fs.Bool("telemetry", false, "scrape fleet metrics and add fault-window differentials to the scorecard")
		scrapeEvery  = fs.Duration("scrape-interval", time.Second, "metric scrape interval (with -telemetry)")
		telListen    = fs.String("telemetry-listen", "", "serve live snapshots (JSON + SSE) on this address for gremlin-top (implies -telemetry)")
		recoveryWait = fs.Duration("recovery-wait", 5*time.Second, "keep scraping this long after the last unit to measure recovery (with -telemetry)")
		htmlPath     = fs.String("html", "", "write a static HTML telemetry report here (implies -telemetry)")
		profileDir   = fs.String("profile-dir", "", "capture a CPU profile per run here, kept only for failed/error runs (<runID>.cpu.pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for name, v := range map[string]string{
		"-graph": *graphPath, "-registry": *registryPath, "-store": *storeURL, "-load-url": *loadURL,
	} {
		if v == "" {
			return fmt.Errorf("gremlin-campaign: %s is required", name)
		}
	}

	graphRaw, err := os.ReadFile(*graphPath)
	if err != nil {
		return err
	}
	var edges []graph.Edge
	if err := json.Unmarshal(graphRaw, &edges); err != nil {
		return fmt.Errorf("parse %s: %w", *graphPath, err)
	}
	g := graph.FromEdges(edges)

	registryRaw, err := os.ReadFile(*registryPath)
	if err != nil {
		return err
	}
	var instances []registry.Instance
	if err := json.Unmarshal(registryRaw, &instances); err != nil {
		return fmt.Errorf("parse %s: %w", *registryPath, err)
	}
	reg := registry.NewStatic(instances...)

	storeClient := eventlog.NewClient(*storeURL, nil)
	if !storeClient.Healthy() {
		return fmt.Errorf("gremlin-campaign: event store %s not reachable", *storeURL)
	}
	runner := core.NewRunner(g, orchestrator.New(reg), storeClient, core.ClearerFunc(func() int {
		n, err := storeClient.Clear()
		if err != nil {
			log.Printf("clear store: %v", err)
		}
		return n
	}))

	units, err := campaign.Enumerate(g, campaign.EnumerateOptions{
		Generate: core.GenerateOptions{
			SkipServices: splitComma(*skip),
			MaxLatency:   *maxLatency,
		},
		Templates: splitComma(*templates),
		Chaos:     *chaos,
		ChaosSeed: *chaosSeed,
	})
	if err != nil {
		return err
	}
	if len(units) == 0 {
		return fmt.Errorf("gremlin-campaign: the graph yields no testable units")
	}
	fmt.Printf("campaign %s: %d units over %d edges, parallelism %d\n",
		*id, len(units), len(g.Edges()), *parallelism)

	// Shipping health across the data plane: campaigns flag runs during
	// which any agent dropped observation records.
	agentURLs, err := registry.AllAgentURLs(reg)
	if err != nil {
		return err
	}
	var agents []*agentapi.Client
	for _, u := range agentURLs {
		agents = append(agents, agentapi.New(u, nil))
	}

	// Ctrl-C stops dispatching; in-flight runs drain and are journalled, so
	// a re-run with the same -journal resumes instead of starting over.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// Telemetry plane: out-of-band metric scraping plus fault-window
	// bookkeeping. It reads agent /metrics endpoints only — it never
	// touches the event log the assertions run on.
	if *telListen != "" || *htmlPath != "" {
		*telemetryOn = true
	}
	var (
		recorder *telemetry.Recorder
		scraper  *telemetry.Scraper
		series   *telemetry.SeriesStore
	)
	if *telemetryOn {
		targets, err := telemetry.FleetTargets(reg, *storeURL)
		if err != nil {
			return err
		}
		recorder = telemetry.NewRecorder()
		series = telemetry.NewSeriesStore(0)
		scraper = telemetry.NewScraper(series, targets, telemetry.ScrapeOptions{Interval: *scrapeEvery})
		scrapeCtx, stopScraping := context.WithCancel(context.Background())
		defer stopScraping()
		go scraper.Run(scrapeCtx)
		if *telListen != "" {
			snap := func() telemetry.Snapshot {
				return telemetry.BuildSnapshot(series, recorder, scraper, 5*time.Second, 30*time.Second)
			}
			tsrv, err := telemetry.NewServer(*telListen, snap, telemetry.ServerOptions{
				Interval: *scrapeEvery,
				Metrics:  scraper.WriteMetrics,
			})
			if err != nil {
				return err
			}
			defer tsrv.Close()
			fmt.Printf("telemetry: serving snapshots at %s (gremlin-top -attach %s)\n", tsrv.URL(), tsrv.URL())
		}
	}

	var profObserver campaign.RunObserver
	if *profileDir != "" {
		p, err := newProfiler(*profileDir)
		if err != nil {
			return err
		}
		profObserver = p
	}

	opts := campaign.Options{
		ID:          *id,
		Parallelism: *parallelism,
		JournalPath: *journalPath,
		LeaseTTL:    *lease,
		Load: func(ctx context.Context, idPrefix string) error {
			_, err := loadgen.Run(*loadURL, loadgen.Options{
				N: *requests, Concurrency: *concurrency, IDPrefix: idPrefix,
				Context: ctx,
				RNG:     rand.New(rand.NewSource(time.Now().UnixNano())),
			})
			return err
		},
		DroppedCount: func() int64 {
			var sum int64
			for _, a := range agents {
				info, err := a.Info(context.Background())
				if err != nil {
					continue // unreachable agent: counted as zero, not fatal
				}
				sum += info.Stats.LogDropped
			}
			return sum
		},
		OnEntry: func(e campaign.Entry) {
			fmt.Printf("  %-7s %-9s %s\n", e.Status, e.Kind, e.Unit)
		},
	}
	var observers []campaign.RunObserver
	if recorder != nil {
		observers = append(observers, recorder)
	}
	if profObserver != nil {
		observers = append(observers, profObserver)
	}
	opts.RunObserver = campaign.CombineObservers(observers...)
	if !*keepLogs {
		opts.Cleanup = func(pat string) {
			if _, err := storeClient.ClearMatching(pat); err != nil {
				log.Printf("reclaim %s: %v", pat, err)
			}
		}
	}
	if *liveAsserts != "" {
		raw, err := os.ReadFile(*liveAsserts)
		if err != nil {
			return err
		}
		var liveSpecs []observe.Spec
		if err := json.Unmarshal(raw, &liveSpecs); err != nil {
			return fmt.Errorf("parse %s: %w", *liveAsserts, err)
		}
		// Validate up front; evaluators are stateful, so each run builds its
		// own set from the specs.
		for i, s := range liveSpecs {
			if _, err := observe.Build(s); err != nil {
				return fmt.Errorf("%s: spec %d: %w", *liveAsserts, i, err)
			}
		}
		opts.Observe = &campaign.ObserveOptions{
			Feed: observe.ClientFeed(storeClient),
			Checks: func(_ campaign.Unit, _ string) []observe.Assertion {
				as := make([]observe.Assertion, 0, len(liveSpecs))
				for _, s := range liveSpecs {
					a, err := observe.Build(s)
					if err != nil {
						continue // validated above; unreachable
					}
					as = append(as, a)
				}
				return as
			},
		}
	}

	sc, runErr := campaign.Run(ctx, runner, units, opts)
	if runErr != nil && runErr != context.Canceled {
		return runErr
	}

	if *telemetryOn && runErr == nil {
		// Let the scraper observe the post-fault tail, then diff each
		// window against its baseline.
		if *recoveryWait > 0 {
			fmt.Printf("telemetry: scraping %s more for recovery measurement\n", *recoveryWait)
			time.Sleep(*recoveryWait)
		}
		measured := telemetry.NewDiffer(series, recorder.Windows(), telemetry.DiffOptions{}).DiffAll()
		for _, ut := range measured {
			ut := ut
			entry := campaign.Entry{
				Campaign: *id, Unit: ut.Unit, Status: campaign.StatusTelemetry, Telemetry: &ut,
			}
			if err := campaign.AppendEntry(*journalPath, entry); err != nil {
				log.Printf("journal telemetry %s: %v", ut.Unit, err)
			}
		}
		stats := scraper.Stats()
		sc.Telemetry = &campaign.TelemetrySummary{
			Targets:       len(stats.Targets),
			Scrapes:       stats.Scrapes,
			ScrapeErrors:  stats.Errors,
			StaleTargets:  stats.StaleTargets,
			Series:        series.SeriesCount(),
			RingEvictions: series.Evictions(),
			Units:         measured,
		}
		if *htmlPath != "" {
			report := telemetry.HTMLReport("gremlin-campaign "+*id, series, recorder.Windows(), measured)
			if err := os.WriteFile(*htmlPath, []byte(report), 0o644); err != nil {
				return err
			}
		}
	}

	md := sc.Markdown()
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md), 0o644); err != nil {
			return err
		}
	} else {
		fmt.Print("\n" + md)
	}
	if *outPath != "" {
		b, err := sc.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, b, 0o644); err != nil {
			return err
		}
	}

	if runErr == context.Canceled {
		return fmt.Errorf("gremlin-campaign: interrupted with %d of %d units settled — rerun with the same -journal to resume",
			sc.Units, len(units))
	}
	if sc.Errors > 0 {
		return fmt.Errorf("gremlin-campaign: %d units hit operational errors", sc.Errors)
	}
	if sc.Failed > 0 {
		return fmt.Errorf("gremlin-campaign: %d of %d executed units failed assertions", sc.Failed, sc.Executed)
	}
	return nil
}

func splitComma(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
