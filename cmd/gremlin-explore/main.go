// Command gremlin-explore runs coverage-guided fault exploration against a
// live deployment: it probes the application fault-free to inventory its
// injection points by execution index, then iteratively faults each
// unexercised point — replaying the enabling faults that revealed it — and
// mines every run's traces for call paths that only exist under failure
// (retries, fallbacks), until the frontier runs dry.
//
// Progress appends to the campaign JSONL journal, so an interrupted
// exploration (Ctrl-C, crash) resumes where it left off without re-running
// completed points:
//
//	gremlin-explore \
//	    -graph graph.json -registry registry.json \
//	    -store http://127.0.0.1:9200 -load-url http://127.0.0.1:8080 \
//	    -journal explore.jsonl -out scorecard.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gremlin/internal/campaign"
	"gremlin/internal/core"
	"gremlin/internal/eventlog"
	"gremlin/internal/explore"
	"gremlin/internal/graph"
	"gremlin/internal/loadgen"
	"gremlin/internal/orchestrator"
	"gremlin/internal/registry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gremlin-explore", flag.ContinueOnError)
	var (
		graphPath    = fs.String("graph", "", "application graph JSON file: [{\"src\":..,\"dst\":..}] (required)")
		registryPath = fs.String("registry", "", "registry JSON file: [{\"service\":..,\"addr\":..,\"agentControlUrl\":..}] (required)")
		storeURL     = fs.String("store", "", "event store URL (required)")
		loadURL      = fs.String("load-url", "", "URL to inject test load at (required)")
		requests     = fs.Int("requests", 20, "test requests per run")
		concurrency  = fs.Int("concurrency", 2, "load concurrency within one run")
		parallelism  = fs.Int("parallelism", 2, "concurrent runs within one frontier round")
		id           = fs.String("id", "explore", "exploration ID (namespaces request IDs and journal keys)")
		journalPath  = fs.String("journal", "", "JSONL journal for resume (optional)")
		outPath      = fs.String("out", "", "write the scorecard JSON here (optional)")
		mdPath       = fs.String("markdown", "", "write the Markdown scorecard here (default stdout)")
		maxRounds    = fs.Int("max-rounds", 8, "bound on frontier rounds")
		dryRounds    = fs.Int("dry-rounds", 2, "consecutive rounds with no new points before convergence")
		maxCombo     = fs.Int("max-combination", 2, "largest multi-fault combination along critical paths (1 disables)")
		maxCombos    = fs.Int("max-combos", 8, "total multi-fault combination units generated")
		errorCode    = fs.Int("error-code", 503, "abort status injected at each point")
		lease        = fs.Duration("lease", 30*time.Second, "lease TTL for each run's staged faults (0 disables leasing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for name, v := range map[string]string{
		"-graph": *graphPath, "-registry": *registryPath, "-store": *storeURL, "-load-url": *loadURL,
	} {
		if v == "" {
			return fmt.Errorf("gremlin-explore: %s is required", name)
		}
	}

	graphRaw, err := os.ReadFile(*graphPath)
	if err != nil {
		return err
	}
	var edges []graph.Edge
	if err := json.Unmarshal(graphRaw, &edges); err != nil {
		return fmt.Errorf("parse %s: %w", *graphPath, err)
	}
	g := graph.FromEdges(edges)

	registryRaw, err := os.ReadFile(*registryPath)
	if err != nil {
		return err
	}
	var instances []registry.Instance
	if err := json.Unmarshal(registryRaw, &instances); err != nil {
		return fmt.Errorf("parse %s: %w", *registryPath, err)
	}
	reg := registry.NewStatic(instances...)

	storeClient := eventlog.NewClient(*storeURL, nil)
	if !storeClient.Healthy() {
		return fmt.Errorf("gremlin-explore: event store %s not reachable", *storeURL)
	}
	runner := core.NewRunner(g, orchestrator.New(reg), storeClient, core.ClearerFunc(func() int {
		n, err := storeClient.Clear()
		if err != nil {
			log.Printf("clear store: %v", err)
		}
		return n
	}))

	// Ctrl-C stops dispatching; in-flight runs drain and are journalled, so
	// a re-run with the same -journal resumes instead of starting over.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	opts := explore.Options{
		ID:             *id,
		JournalPath:    *journalPath,
		Parallelism:    *parallelism,
		MaxRounds:      *maxRounds,
		DryRounds:      *dryRounds,
		MaxCombination: *maxCombo,
		MaxCombos:      *maxCombos,
		ErrorCode:      *errorCode,
		LeaseTTL:       *lease,
		Load: func(ctx context.Context, idPrefix string) error {
			_, err := loadgen.Run(*loadURL, loadgen.Options{
				N: *requests, Concurrency: *concurrency, IDPrefix: idPrefix,
				Context: ctx,
				RNG:     rand.New(rand.NewSource(time.Now().UnixNano())),
			})
			return err
		},
		Cleanup: func(pat string) {
			if _, err := storeClient.ClearMatching(pat); err != nil {
				log.Printf("reclaim %s: %v", pat, err)
			}
		},
		OnEntry: func(e campaign.Entry) {
			fmt.Printf("  %-7s %-14s %s\n", e.Status, e.Kind, e.Unit)
		},
	}

	res, runErr := explore.Explore(ctx, runner, opts)
	if runErr != nil && runErr != context.Canceled {
		return runErr
	}

	sc := res.Scorecard
	md := sc.Markdown()
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md), 0o644); err != nil {
			return err
		}
	} else {
		fmt.Print("\n" + md)
	}
	if revealed := res.Revealed(); len(revealed) > 0 {
		fmt.Printf("\npoints revealed only under fault:\n")
		for _, p := range revealed {
			fmt.Printf("  %s (revealed by %v, round %d, exercised=%v)\n",
				p.EI, p.RevealedBy, p.Round, p.Exercised)
		}
	}
	if *outPath != "" {
		b, err := sc.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, b, 0o644); err != nil {
			return err
		}
	}

	if runErr == context.Canceled {
		return fmt.Errorf("gremlin-explore: interrupted after %d rounds — rerun with the same -journal to resume",
			res.Rounds)
	}
	if !res.Converged {
		return fmt.Errorf("gremlin-explore: frontier not dry after %d rounds (raise -max-rounds)", res.Rounds)
	}
	if sc.Errors > 0 {
		return fmt.Errorf("gremlin-explore: %d units hit operational errors", sc.Errors)
	}
	if sc.Failed > 0 {
		return fmt.Errorf("gremlin-explore: %d of %d executed units failed assertions", sc.Failed, sc.Executed)
	}
	return nil
}
