// Command gremlin-watch tails a deployment's event stream and evaluates
// online assertions against it, exiting non-zero the moment one is
// violated — the live counterpart of the batch Assertion Checker. Point it
// at the same store a recipe or campaign run ships to (scoped to the run's
// request-ID pattern) and it flags the failure while the experiment is
// still running, instead of after the post-hoc check.
//
// Usage:
//
//	gremlin-watch -store http://127.0.0.1:9200 -pattern 'test-*' \
//	    -assert asserts.json
//	gremlin-watch -store http://127.0.0.1:9200 -pattern 'camp-run-3-*' \
//	    -max-failures 0 -max-latency-p99 250ms -window 10s -duration 2m
//
// The -assert file is a JSON array of observe.Spec objects; -max-failures
// and -max-latency-p99 are shorthands for the two most common bounds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gremlin/internal/eventlog"
	"gremlin/internal/observe"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gremlin-watch", flag.ContinueOnError)
	var (
		storeURL    = fs.String("store", "", "event store URL (required)")
		pattern     = fs.String("pattern", "*", "request-ID pattern to tail (glob, or \"re:\" prefix for a regexp)")
		assertPath  = fs.String("assert", "", "JSON file of assertion specs (array of observe.Spec)")
		maxFailures = fs.Int("max-failures", -1, "violate after more than this many failure replies (-1 disables)")
		maxP99      = fs.Duration("max-latency-p99", 0, "violate when the p99 reply latency exceeds this (0 disables)")
		window      = fs.Duration("window", 10*time.Second, "sliding window for -max-failures and -max-latency-p99")
		duration    = fs.Duration("duration", 0, "stop watching after this long (0 = until violation or interrupt)")
		quiet       = fs.Bool("quiet", false, "print nothing but the violation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeURL == "" {
		return errors.New("gremlin-watch: -store is required")
	}

	// The stream subscription already scopes records to -pattern, so the
	// shorthand bounds filter on nothing further.
	var checks []observe.Assertion
	if *assertPath != "" {
		f, err := os.Open(*assertPath)
		if err != nil {
			return err
		}
		loaded, err := observe.LoadSpecs(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", *assertPath, err)
		}
		checks = append(checks, loaded...)
	}
	if *maxFailures >= 0 {
		a, err := observe.NewCheckStatus("", "", "", -1, *window, *maxFailures)
		if err != nil {
			return err
		}
		checks = append(checks, a)
	}
	if *maxP99 > 0 {
		a, err := observe.NewReplyLatency("", "", "", *window, 0.99, *maxP99, true)
		if err != nil {
			return err
		}
		checks = append(checks, a)
	}
	if len(checks) == 0 {
		return errors.New("gremlin-watch: no assertions — pass -assert, -max-failures, or -max-latency-p99")
	}

	client := eventlog.NewClient(*storeURL, nil)
	if !client.Healthy() {
		return fmt.Errorf("gremlin-watch: event store %s not reachable", *storeURL)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	if !*quiet {
		fmt.Printf("gremlin-watch: tailing %s pattern %q with %d assertions\n",
			*storeURL, *pattern, len(checks))
	}
	monitor := observe.NewMonitor(checks, nil)
	err := observe.Watch(ctx, observe.ClientFeed(client), *pattern, monitor, true)

	if v, ok := monitor.FirstViolation(); ok {
		return fmt.Errorf("gremlin-watch: VIOLATION after %d records: %s", monitor.Observed(), v)
	}
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if !*quiet {
		fmt.Printf("gremlin-watch: no violation in %d records\n", monitor.Observed())
	}
	return nil
}
