package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gremlin/internal/eventlog"
)

// startStore boots a live event-log server backed by an in-process store
// the test can inject records into.
func startStore(t *testing.T) (*eventlog.Store, *eventlog.Server) {
	t.Helper()
	store := eventlog.NewStore()
	srv, err := eventlog.NewServer("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
	})
	return store, srv
}

// abortReply fabricates the record a Gremlin agent logs when an abort rule
// fires: a synthesized 503 reply.
func abortReply(id string) eventlog.Record {
	return eventlog.Record{
		Timestamp: time.Now(), RequestID: id,
		Src: "gateway", Dst: "payments", Kind: eventlog.KindReply,
		Status: 503, FaultAction: "abort", GremlinGenerated: true,
	}
}

// TestWatchDetectsAbortViolationLive is the subsystem's acceptance test:
// while a faulted "run" is still emitting records, gremlin-watch trips its
// failure bound and exits non-zero — well before the run completes and a
// batch check could have evaluated anything.
func TestWatchDetectsAbortViolationLive(t *testing.T) {
	store, srv := startStore(t)

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-store", srv.URL(), "-pattern", "camp-*",
			"-max-failures", "2", "-quiet",
		})
	}()

	// Wait for the watcher's subscription before injecting the run.
	deadline := time.Now().Add(5 * time.Second)
	for store.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never subscribed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Emulate a paced experiment: 100 aborted exchanges. The bound (>2
	// failure replies) must fire while most of the run is still ahead.
	const runLength = 100
	logged := 0
	var err error
feed:
	for i := 0; i < runLength; i++ {
		if logErr := store.Log(abortReply(fmt.Sprintf("camp-run-%d", i))); logErr != nil {
			t.Fatal(logErr)
		}
		logged++
		select {
		case err = <-done:
			break feed
		case <-time.After(10 * time.Millisecond):
		}
	}
	if logged == runLength {
		// Exhausted the whole run without a verdict; allow a grace period.
		select {
		case err = <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("gremlin-watch never returned")
		}
	}

	if err == nil {
		t.Fatal("run returned nil; a violated watch must exit non-zero")
	}
	if !strings.Contains(err.Error(), "VIOLATION") || !strings.Contains(err.Error(), "failure replies") {
		t.Fatalf("error %q does not describe the failure-reply violation", err)
	}
	if logged >= runLength {
		t.Fatalf("violation surfaced only after all %d records — not live", runLength)
	}
	t.Logf("violation after %d of %d records: %v", logged, runLength, err)
}

// TestWatchAssertFileCleanExit drives the -assert path: specs that stay
// within bounds, a -duration that elapses, exit zero.
func TestWatchAssertFileCleanExit(t *testing.T) {
	store, srv := startStore(t)

	specs := filepath.Join(t.TempDir(), "asserts.json")
	raw := `[{"type": "checkStatus", "status": -1, "max": 5},
	         {"type": "numRequests", "max": 50}]`
	if err := os.WriteFile(specs, []byte(raw), 0o600); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-store", srv.URL(), "-pattern", "test-*",
			"-assert", specs, "-duration", "400ms", "-quiet",
		})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for store.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never subscribed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Benign traffic: successful replies, under every bound.
	for i := 0; i < 3; i++ {
		rec := eventlog.Record{
			Timestamp: time.Now(), RequestID: fmt.Sprintf("test-%d", i),
			Src: "a", Dst: "b", Kind: eventlog.KindReply, Status: 200,
		}
		if err := store.Log(rec); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("clean watch returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch did not stop at -duration")
	}
}

func TestWatchBadInvocations(t *testing.T) {
	_, srv := startStore(t)

	cases := map[string][]string{
		"missing store":   {"-max-failures", "0"},
		"no assertions":   {"-store", srv.URL()},
		"bad assert file": {"-store", srv.URL(), "-assert", "/nonexistent.json"},
		"bad flag":        {"-nope"},
		"dead store":      {"-store", "http://127.0.0.1:1", "-max-failures", "0"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: run(%v) returned nil, want error", name, args)
		}
	}
}
