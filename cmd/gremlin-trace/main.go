// Command gremlin-trace assembles causal traces from a Gremlin event log
// and renders them: ASCII waterfalls with critical-path and
// fault-attribution analysis, or JSON/DOT for machine consumption.
//
// Records come from a JSONL dump (-file, as written by gremlin-logstore
// -persist or Store.SaveFile) or a live store (-store URL).
//
// Usage:
//
//	gremlin-trace -file events.jsonl -pattern 'test-*'
//	gremlin-trace -store http://127.0.0.1:9200 -format dot > traces.dot
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"gremlin/internal/eventlog"
	"gremlin/internal/tracing"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gremlin-trace", flag.ContinueOnError)
	file := fs.String("file", "", "JSON Lines event-log dump to read")
	storeURL := fs.String("store", "", "live event store URL to query (alternative to -file)")
	patternFlag := fs.String("pattern", "", "request-ID pattern to select flows (glob or re:, empty for all)")
	format := fs.String("format", "waterfall", "output format: waterfall, json, or dot")
	obsGraph := fs.Bool("obs-graph", false, "also print the observed dependency graph as DOT")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*file == "") == (*storeURL == "") {
		return fmt.Errorf("gremlin-trace: exactly one of -file or -store is required")
	}

	var source eventlog.Source
	if *file != "" {
		store := eventlog.NewStore()
		n, err := store.LoadFile(*file)
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("gremlin-trace: %s holds no records", *file)
		}
		source = store
	} else {
		source = eventlog.NewClient(*storeURL, nil)
	}

	traces, err := tracing.FromSource(source, eventlog.Query{IDPattern: *patternFlag})
	if err != nil {
		return err
	}
	if len(traces) == 0 {
		return fmt.Errorf("gremlin-trace: no traces match pattern %q", *patternFlag)
	}

	switch *format {
	case "waterfall":
		for i, t := range traces {
			if i > 0 {
				fmt.Fprintln(out)
			}
			fmt.Fprint(out, tracing.Waterfall(t))
			fmt.Fprint(out, tracing.RenderCriticalPath(t))
		}
	case "json":
		data, err := tracing.JSON(traces)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", data)
	case "dot":
		fmt.Fprint(out, tracing.DOT(traces))
	default:
		return fmt.Errorf("gremlin-trace: unknown format %q (want waterfall, json, or dot)", *format)
	}

	if *obsGraph {
		fmt.Fprintln(out)
		fmt.Fprint(out, tracing.ObservedGraph(traces).DOT())
	}
	return nil
}
