package main

import (
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"gremlin/internal/rules"
	"gremlin/internal/topology"
	"gremlin/internal/trace"
)

// TestTraceCLIEndToEnd is the acceptance path from ISSUE 4: run the
// quickstart app with an injected 100ms delay, dump the event log, and
// assert the CLI's waterfall shows a critical path through the delayed
// edge with the latency inflation attributed to the firing rule.
func TestTraceCLIEndToEnd(t *testing.T) {
	spec := topology.TwoServices(0, 0)
	spec.RNG = rand.New(rand.NewSource(1))
	app, err := topology.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()

	if err := app.Agent("serviceA").InstallRules(rules.Rule{
		ID: "delay-ab", Src: "serviceA", Dst: "serviceB",
		Action: rules.ActionDelay, DelayMillis: 100, Pattern: "test-*",
	}); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodGet, app.EntryURL()+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	trace.SetRequestID(req, "test-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	dump := filepath.Join(t.TempDir(), "events.jsonl")
	if _, err := app.Store.SaveFile(dump); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"-file", dump, "-pattern", "test-*"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"trace test-trace-1",
		"serviceA -> serviceB",
		"critical path: user -> serviceA -> serviceB",
		"attribution: rule delay-ab on serviceA -> serviceB",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	// The injected delay dominates the end-to-end latency split.
	if !strings.Contains(got, "injected 100.") {
		t.Fatalf("injected delay not attributed:\n%s", got)
	}

	// JSON and DOT formats render from the same dump.
	var jsonOut strings.Builder
	if err := run([]string{"-file", dump, "-format", "json"}, &jsonOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonOut.String(), `"requestId": "test-trace-1"`) {
		t.Fatalf("json output:\n%s", jsonOut.String())
	}
	var dotOut strings.Builder
	if err := run([]string{"-file", dump, "-format", "dot", "-obs-graph"}, &dotOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dotOut.String(), "digraph traces") ||
		!strings.Contains(dotOut.String(), "digraph app") {
		t.Fatalf("dot output:\n%s", dotOut.String())
	}
}

func TestTraceCLIFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no source should error")
	}
	if err := run([]string{"-file", "x", "-store", "http://y"}, &out); err == nil {
		t.Fatal("both sources should error")
	}
	dump := filepath.Join(t.TempDir(), "missing.jsonl")
	if err := run([]string{"-file", dump}, &out); err == nil {
		t.Fatal("missing file should error")
	}
}
