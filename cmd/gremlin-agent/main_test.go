package main

import (
	"context"
	"encoding/json"

	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"gremlin/internal/agentapi"
	"gremlin/internal/eventlog"
	"gremlin/internal/trace"
)

func TestRunRequiresConfig(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("want error without -config")
	}
	if err := run([]string{"-config", "/does/not/exist.json"}); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "agent.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", bad}); err == nil {
		t.Fatal("want parse error")
	}

	// Structurally valid JSON, invalid agent config (no routes).
	if err := os.WriteFile(bad, []byte(`{"service":"a","control":"127.0.0.1:0"}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", bad}); err == nil {
		t.Fatal("want config validation error")
	}
}

// controlURLFromOutput is impossible with ephemeral ports printed to
// stdout; instead the test fixes a port by asking the kernel first.
func freePort(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(http.NotFoundHandler())
	addr := strings.TrimPrefix(srv.URL, "http://")
	srv.Close()
	return addr
}

func TestRunFullAgentLifecycle(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "backend")
	}))
	defer backend.Close()

	// A live log store for the agent to ship observations to.
	store := eventlog.NewStore()
	storeServer, err := eventlog.NewServer("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := storeServer.Close(); err != nil {
			t.Error(err)
		}
	}()

	controlAddr := freePort(t)
	routeAddr := freePort(t)
	pprofAddr := freePort(t)
	cfg := map[string]any{
		"service":  "client",
		"control":  controlAddr,
		"logstore": storeServer.URL(),
		"routes": []map[string]any{{
			"dst":        "server",
			"listenAddr": routeAddr,
			"targets":    []string{strings.TrimPrefix(backend.URL, "http://")},
		}},
	}
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(t.TempDir(), "agent.json")
	if err := os.WriteFile(cfgPath, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	waitForSignal = func() {
		once.Do(func() { close(started) })
		<-release
	}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-config", cfgPath, "-flush", "10ms", "-pprof", pprofAddr})
	}()
	<-started

	// The agent proxies and the control API answers.
	ctl := agentapi.New("http://"+controlAddr, nil)
	if !ctl.Healthy(context.Background()) {
		t.Fatal("control API not healthy")
	}
	req, err := http.NewRequest(http.MethodGet, "http://"+routeAddr+"/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	trace.SetRequestID(req, "test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || string(body) != "backend" {
		t.Fatalf("proxied request: %d %q", resp.StatusCode, body)
	}
	if err := ctl.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if store.Len() == 0 {
		t.Fatal("observations did not reach the log store")
	}

	// The -pprof flag exposes the debug endpoints on their own listener.
	dbg, err := http.Get("http://" + pprofAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	dbgBody, _ := io.ReadAll(dbg.Body)
	_ = dbg.Body.Close()
	if dbg.StatusCode != 200 || !strings.Contains(string(dbgBody), "goroutine") {
		t.Fatalf("pprof index: %d %q", dbg.StatusCode, dbgBody)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}
