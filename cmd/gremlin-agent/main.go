// Command gremlin-agent runs a standalone Gremlin agent: the sidecar
// Layer-7 proxy through which a microservice reaches its dependencies.
// The agent injects faults on messages matching its installed rules and
// ships observations to the event-log store.
//
// The agent is configured from a JSON file mirroring the paper's
// "localhost:<port> -> (list of remotehost[:remoteport])" dependency
// mappings:
//
//	{
//	  "service": "serviceA",
//	  "control": "127.0.0.1:9001",
//	  "logstore": "http://127.0.0.1:9200",
//	  "routes": [
//	    {"dst": "serviceB", "listenAddr": "127.0.0.1:7001",
//	     "targets": ["10.0.0.2:8080", "10.0.0.3:8080"]}
//	  ],
//	  "l4": [
//	    {"dst": "db", "listenAddr": "127.0.0.1:7002",
//	     "targets": ["10.0.0.4:5432"]}
//	  ]
//	}
//
// "routes" are HTTP dependencies served by the L7 proxy; "l4" lists raw-TCP
// dependencies (databases, caches) served by stream relays that inject
// connection-level faults (sever, half-open, throttle, connect-refuse).
// The -l4 flag appends ad-hoc relays without a config edit.
//
// Usage:
//
//	gremlin-agent -config agent.json
//	gremlin-agent -config agent.json -l4 db=127.0.0.1:7002=10.0.0.4:5432
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gremlin/internal/eventlog"
	"gremlin/internal/httpx"
	"gremlin/internal/proxy"
	"gremlin/internal/registry"
)

type fileConfig struct {
	Service  string          `json:"service"`
	AgentID  string          `json:"agentId,omitempty"`
	Control  string          `json:"control"`
	LogStore string          `json:"logstore,omitempty"`
	Routes   []proxy.Route   `json:"routes"`
	L4       []proxy.L4Route `json:"l4,omitempty"`

	// ServiceAddr is the co-located microservice's own listen address,
	// registered (with -registry) so dependents and health checkers can
	// reach the workload this agent fronts.
	ServiceAddr string `json:"serviceAddr,omitempty"`

	// Replica is this instance's replica index within its service.
	Replica int `json:"replica,omitempty"`
}

// l4Flags collects repeated -l4 dst=listen=target[,target...] values.
type l4Flags []proxy.L4Route

func (f *l4Flags) String() string { return fmt.Sprintf("%v", []proxy.L4Route(*f)) }

func (f *l4Flags) Set(v string) error {
	parts := strings.SplitN(v, "=", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return fmt.Errorf("want dst=listenAddr=target[,target...], got %q", v)
	}
	*f = append(*f, proxy.L4Route{
		Dst:        parts[0],
		ListenAddr: parts[1],
		Targets:    strings.Split(parts[2], ","),
	})
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gremlin-agent", flag.ContinueOnError)
	configPath := fs.String("config", "", "path to the agent JSON config (required)")
	flushEvery := fs.Duration("flush", 2*time.Second, "interval for flushing buffered observations")
	pprofAddr := fs.String("pprof", "", "listen address for /debug/pprof/ endpoints (disabled when empty)")
	registryURL := fs.String("registry", "", "dynamic registry server URL; the agent registers itself and heartbeats its lease (disabled when empty)")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "registration lease TTL when -registry is set")
	var l4 l4Flags
	fs.Var(&l4, "l4", "add a stream relay: dst=listenAddr=target[,target...] (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		fs.Usage()
		return fmt.Errorf("gremlin-agent: -config is required")
	}
	raw, err := os.ReadFile(*configPath)
	if err != nil {
		return err
	}
	var cfg fileConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return fmt.Errorf("gremlin-agent: parse %s: %w", *configPath, err)
	}

	var (
		sink     eventlog.Sink
		buffered *eventlog.BufferedSink
	)
	if cfg.LogStore != "" {
		client := eventlog.NewClient(cfg.LogStore, nil)
		if !client.Healthy() {
			log.Printf("warning: log store %s not reachable yet; observations will be buffered", cfg.LogStore)
		}
		// The sink's own background flusher ships on size or interval, so no
		// extra plumbing is needed to get observations to the store promptly
		// under light traffic.
		buffered = eventlog.NewBufferedSinkOpts(client, eventlog.BufferOptions{
			Size:     256,
			Interval: *flushEvery,
		})
		sink = buffered
	}

	agent, err := proxy.New(proxy.Config{
		ServiceName: cfg.Service,
		AgentID:     cfg.AgentID,
		ControlAddr: cfg.Control,
		Routes:      cfg.Routes,
		L4Routes:    append(cfg.L4, l4...),
		Sink:        sink,
	})
	if err != nil {
		return err
	}
	agent.Start()
	fmt.Printf("gremlin-agent for service %q\n", cfg.Service)
	fmt.Printf("  control API: %s\n", agent.ControlURL())
	if *pprofAddr != "" {
		dbg, err := httpx.StartPprof(*pprofAddr)
		if err != nil {
			_ = agent.Close()
			return err
		}
		defer dbg.Close()
		fmt.Printf("  pprof: %s/debug/pprof/\n", dbg.URL())
	}
	for _, r := range cfg.Routes {
		addr, err := agent.RouteAddr(r.Dst)
		if err != nil {
			return err
		}
		fmt.Printf("  route %s -> %v via %s\n", r.Dst, r.Targets, addr)
	}
	for _, r := range append(cfg.L4, l4...) {
		addr, err := agent.L4RouteAddr(r.Dst)
		if err != nil {
			return err
		}
		fmt.Printf("  l4 relay %s -> %v via %s\n", r.Dst, r.Targets, addr)
	}

	var stopHeartbeat func()
	if *registryURL != "" {
		addr := cfg.ServiceAddr
		if addr == "" {
			// Without a workload address, register the agent's own control
			// endpoint host so membership at least reflects the sidecar.
			addr = strings.TrimPrefix(agent.ControlURL(), "http://")
		}
		stopHeartbeat = registry.NewClient(*registryURL, nil).Heartbeat(registry.Instance{
			Service:         cfg.Service,
			Addr:            addr,
			AgentControlURL: agent.ControlURL(),
			Replica:         cfg.Replica,
		}, *leaseTTL, *leaseTTL/3)
		fmt.Printf("  registered with %s (lease %s, heartbeat %s)\n", *registryURL, *leaseTTL, *leaseTTL/3)
	}

	waitForSignal()
	fmt.Println("shutting down")
	if stopHeartbeat != nil {
		stopHeartbeat()
	}
	err = agent.Close()
	if buffered != nil {
		if ferr := buffered.Close(); ferr != nil && err == nil {
			err = ferr
		}
	}
	return err
}

// waitForSignal blocks until SIGINT/SIGTERM. Tests replace it to drive the
// binary's full lifecycle without signals.
var waitForSignal = func() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}
