// Command l4 is a self-verifying smoke test of the stream (L4) fault
// plane. It boots a topology in which the web service reaches a raw TCP
// echo backend through its agent's stream relay, then:
//
//  1. throttles the edge to 8 KiB/s and measures the slowdown from the
//     client side,
//  2. severs the connection mid-stream after 8 KiB and watches the
//     transfer die partway,
//  3. sweeps the full stream-fault grid (sever, half-open,
//     connect-refuse, throttle) as a campaign over the protocol:tcp edge
//     and prints the per-edge scorecard.
//
// Every stage asserts both the behaviour the client observes and the
// conn-open/conn-close records the relay ships to the event log; the
// program exits non-zero when anything is off, so `make l4-smoke` and CI
// can run it as a gate.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"gremlin"
	"gremlin/internal/topology"
)

const (
	rate    = 8 * 1024 // throttle rate, bytes/second
	payload = 32 * 1024
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Gremlin L4 smoke: faults on a raw TCP edge ===")

	echo, err := startEcho()
	if err != nil {
		return err
	}
	defer echo.Close()

	// web reaches auth over HTTP and a database-shaped echo backend over
	// raw TCP; the tcp edge is what this smoke exercises.
	app, err := topology.Build(topology.Spec{
		Services: []topology.ServiceSpec{
			{Name: "web", DependsOn: []string{"auth"}, TCPBackends: map[string]string{"db": echo.Addr().String()}},
			{Name: "auth"},
		},
	})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := app.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "close:", cerr)
		}
	}()
	relay, err := app.L4Addr("web", "db")
	if err != nil {
		return err
	}
	fmt.Printf("\nweb -> db is a %s edge, relayed via %s\n",
		app.Graph.Protocol("web", "db"), relay)

	runner := gremlin.NewRunner(app.Graph, gremlin.NewOrchestrator(app.Registry), app.Store, app.Store)

	if err := throttleStage(runner, relay); err != nil {
		return err
	}
	if err := severStage(runner, relay); err != nil {
		return err
	}
	if err := campaignStage(app, runner, relay); err != nil {
		return err
	}

	// The relay logged a paired conn-open/conn-close for every
	// connection the stages opened.
	opens, err := app.Store.Select(gremlin.Query{Src: "web", Dst: "db", Kind: gremlin.KindConnOpen})
	if err != nil {
		return err
	}
	closes, err := app.Store.Select(gremlin.Query{Src: "web", Dst: "db", Kind: gremlin.KindConnClose})
	if err != nil {
		return err
	}
	if len(opens) == 0 || len(opens) != len(closes) {
		return fmt.Errorf("conn records unpaired: %d opens, %d closes", len(opens), len(closes))
	}
	fmt.Printf("\nevent log holds %d paired conn-open/conn-close records for web->db\n", len(opens))
	fmt.Println("\nOK: stream faults were enumerated, observed by the client, and attributed in the log.")
	return nil
}

// throttleStage paces web->db to 8 KiB/s and verifies the client feels
// it: a 32 KiB echo round trip that is instant unthrottled must now take
// seconds (the bucket's 8 KiB burst is free; the remaining 24 KiB are
// paced).
func throttleStage(runner *gremlin.Runner, relay string) error {
	fmt.Printf("\n--- stage 1: throttle to %d B/s, %d B round trip ---\n", rate, payload)
	var elapsed time.Duration
	report, err := runner.Run(context.Background(), gremlin.Recipe{
		Name: "smoke-throttle",
		Scenarios: []gremlin.Scenario{
			gremlin.StreamThrottle{Src: "web", Dst: "db", BytesPerSec: rate, Probability: 1},
		},
		Checks: []gremlin.Check{gremlin.ExpectStreamFaults("web", "db", "smoke-throttle", 1)},
	}, gremlin.RunOptions{Load: func() error {
		t0 := time.Now()
		n, _, err := echoRoundTrip(relay, payload, 30*time.Second)
		if err != nil || n != payload {
			return fmt.Errorf("throttled transfer: %d/%d bytes, err=%v", n, payload, err)
		}
		elapsed = time.Since(t0)
		time.Sleep(100 * time.Millisecond) // let the relay emit the close record
		return nil
	}})
	if err != nil {
		return err
	}
	// 24 KiB paced at 8 KiB/s is ~3 s; well under 1.5 s means the bucket
	// did not engage.
	if elapsed < 1500*time.Millisecond {
		return fmt.Errorf("throttle not felt: %d B round-tripped in %s", payload, elapsed)
	}
	fmt.Printf("client saw %d B in %s (unthrottled this is instant)\n", payload, elapsed.Round(time.Millisecond))
	return assertPassed(report)
}

// severStage installs a sever-after-8KiB rule and verifies the transfer
// dies partway: the client echoes the first 8 KiB, then the relay resets
// the connection.
func severStage(runner *gremlin.Runner, relay string) error {
	fmt.Println("\n--- stage 2: sever mid-stream after 8 KiB ---")
	report, err := runner.Run(context.Background(), gremlin.Recipe{
		Name: "smoke-sever",
		Scenarios: []gremlin.Scenario{
			gremlin.StreamSever{Src: "web", Dst: "db", AfterBytes: 8 * 1024, Probability: 1},
		},
		Checks: []gremlin.Check{gremlin.ExpectStreamFaults("web", "db", "smoke-sever", 1)},
	}, gremlin.RunOptions{Load: func() error {
		n, rerr, err := echoRoundTrip(relay, payload, 10*time.Second)
		if err != nil {
			return err
		}
		if rerr == nil || n >= payload {
			return fmt.Errorf("sever not felt: echoed %d/%d bytes, err=%v", n, payload, rerr)
		}
		fmt.Printf("client echoed %d of %d B, then: %v\n", n, payload, rerr)
		time.Sleep(100 * time.Millisecond)
		return nil
	}})
	if err != nil {
		return err
	}
	return assertPassed(report)
}

// campaignStage enumerates the stream-fault grid over the tcp edge and
// runs it as a campaign, each unit asserting its own fault actually
// fired (attributed by rule-ID prefix in the conn-close records).
func campaignStage(app *topology.App, runner *gremlin.Runner, relay string) error {
	fmt.Println("\n--- stage 3: campaign sweep of the stream-fault grid ---")
	units, err := gremlin.EnumerateCampaign(app.Graph, gremlin.EnumerateOptions{
		Generate:  gremlin.GenerateOptions{SkipServices: []string{topology.EdgeService}},
		Templates: []string{"stream"},
		L4Rates:   []int64{rate},
	})
	if err != nil {
		return err
	}
	if len(units) < 4 {
		return fmt.Errorf("stream grid enumerated only %d units: %v", len(units), units)
	}
	for _, u := range units {
		if u.Kind != "stream" || u.Target != "web->db" {
			return fmt.Errorf("unexpected unit %+v", u)
		}
		fmt.Printf("  unit %s\n", u.Key)
	}

	sc, err := gremlin.RunCampaign(context.Background(), runner, units, gremlin.CampaignOptions{
		ID: "l4",
		// HTTP units isolate concurrent runs by request-ID namespace, but
		// stream connections all share the relay's conn-ID namespace:
		// parallel stream units would install competing rules on the same
		// edge. Run them sequentially.
		Parallelism: 1,
		Load: func(ctx context.Context, _ string) error {
			// Raw TCP probes; faulted connections failing IS the signal,
			// so dial/IO errors are expected and swallowed.
			for i := 0; i < 4; i++ {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				probe(relay)
			}
			time.Sleep(150 * time.Millisecond)
			return nil
		},
	})
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(sc.Markdown())
	if sc.Errors > 0 || sc.Failed > 0 || sc.Passed != len(units) {
		return fmt.Errorf("campaign scorecard: %d passed, %d failed, %d errors of %d units",
			sc.Passed, sc.Failed, sc.Errors, len(units))
	}
	return nil
}

// echoRoundTrip writes total bytes through the relay while reading the
// echo back, returning the bytes successfully round-tripped and the
// first transfer error (dial failures are returned separately).
func echoRoundTrip(addr string, total int, timeout time.Duration) (int, error, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	go func() {
		chunk := make([]byte, 4096)
		for sent := 0; sent < total; sent += len(chunk) {
			if _, err := conn.Write(chunk); err != nil {
				return
			}
		}
	}()
	n, rerr := io.ReadFull(conn, make([]byte, total))
	return n, rerr, nil
}

// probe opens one connection through the relay, pushes a small payload
// and tries to read the echo with a short deadline, tolerating every
// failure: under refuse/sever/half-open rules, failing is the point.
func probe(addr string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(400 * time.Millisecond))
	msg := []byte("hello over tcp")
	if _, err := conn.Write(msg); err != nil {
		return
	}
	_, _ = io.ReadFull(conn, make([]byte, len(msg)))
}

func assertPassed(report *gremlin.Report) error {
	for _, res := range report.Results {
		fmt.Printf("  %s\n", res)
		if !res.Passed {
			return errors.New("assertion failed")
		}
	}
	if len(report.Results) == 0 {
		return errors.New("no assertions ran")
	}
	return nil
}

// startEcho runs a minimal TCP echo server standing in for the raw-TCP
// backend (a database, a cache) that the topology does not provide.
func startEcho() (net.Listener, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				if !strings.Contains(err.Error(), "use of closed") {
					fmt.Fprintln(os.Stderr, "echo accept:", err)
				}
				return
			}
			go func() {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}()
		}
	}()
	return ln, nil
}
