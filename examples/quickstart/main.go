// Command quickstart reproduces the paper's §3.2 Example 1 on a live
// two-service application:
//
//	Overload(ServiceB)
//	HasBoundedRetries(ServiceA, ServiceB, 5)
//
// and then the §4.2 chained variant: if bounded retries hold, stage a
// Crash of ServiceB and check ServiceA for a circuit breaker.
//
// Everything — services, sidecar Gremlin agents, control plane — runs in
// this process on loopback TCP.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"gremlin"
	"gremlin/internal/loadgen"
	"gremlin/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Gremlin quickstart: ServiceA -> ServiceB ===")
	fmt.Println("ServiceA retries failed calls up to 5 times with backoff.")

	// Build the application: serviceA (bounded retries) -> serviceB, each
	// call flowing through serviceA's sidecar Gremlin agent.
	app, err := topology.Build(topology.TwoServices(5, 2*time.Millisecond))
	if err != nil {
		return err
	}
	defer func() {
		if cerr := app.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "close:", cerr)
		}
	}()

	runner := gremlin.NewRunner(app.Graph, gremlin.NewOrchestrator(app.Registry), app.Store, app.Store)
	load := func() error {
		res, err := loadgen.Run(app.EntryURL(), loadgen.Options{N: 1})
		if err != nil {
			return err
		}
		fmt.Printf("  injected load: %s\n", res)
		return nil
	}

	// --- Example 1: Overload(ServiceB); HasBoundedRetries(A, B, 5) ---
	overload := gremlin.Recipe{
		Name: "example1",
		Scenarios: []gremlin.Scenario{
			gremlin.Overload{Service: "serviceB", AbortFraction: 1},
		},
		Checks: []gremlin.Check{
			gremlin.ExpectBoundedRetries("serviceA", "serviceB", 5),
		},
	}
	fmt.Println("\n--- step 1: Overload(serviceB) + HasBoundedRetries(serviceA, serviceB, 5) ---")
	report, err := runner.Run(context.Background(), overload, gremlin.RunOptions{Load: load, ClearLogs: true})
	if err != nil {
		return err
	}
	fmt.Print(report)

	// --- Chained failure (§4.2): only proceed when retries are bounded ---
	if !report.Passed() {
		fmt.Println("no bounded retries — stopping (the paper raises here)")
		return nil
	}
	crash := gremlin.Recipe{
		Name: "chained-crash",
		Scenarios: []gremlin.Scenario{
			gremlin.Crash{Service: "serviceB"},
		},
		Checks: []gremlin.Check{
			gremlin.ExpectCircuitBreaker("serviceA", "serviceB", 5, 10*time.Second),
		},
	}
	fmt.Println("\n--- step 2: Crash(serviceB) + HasCircuitBreaker(serviceA, serviceB, ...) ---")
	report2, err := runner.Run(context.Background(), crash, gremlin.RunOptions{Load: load, ClearLogs: true})
	if err != nil {
		return err
	}
	fmt.Print(report2)
	if !report2.Passed() {
		fmt.Println("\nfinding: serviceA has bounded retries but NO circuit breaker —")
		fmt.Println("under a sustained crash of serviceB it will keep burning its retry")
		fmt.Println("budget on every user request instead of failing fast.")
	}

	// --- Bonus: the same plan, generated automatically from the graph ---
	fmt.Println("\n--- bonus: GenerateRecipes derives the same plan from the graph alone ---")
	recipes, err := gremlin.GenerateRecipes(app.Graph, gremlin.GenerateOptions{
		SkipServices: []string{"user"},
	})
	if err != nil {
		return err
	}
	for _, r := range recipes {
		fmt.Printf("  %s (%d checks)\n", r.Name, len(r.Checks))
	}
	fmt.Println("run them as a chain with runner.RunChain(...) or `gremlin-ctl autorun`.")
	return nil
}
