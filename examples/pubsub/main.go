// Command pubsub replays the Parse.ly "Kafkapocalypse" (Table 1, 2015)
// with its real mechanics on an asynchronous message bus: services publish
// data points into a bus whose delivery workers forward them to a
// Cassandra-like store. When the store crashes, deliveries fail, the
// bounded queues fill, and publishers start receiving backpressure errors
// — "cascading failure due to message bus overload."
//
// The bus's delivery path runs through a Gremlin agent, so the crash is
// staged with an ordinary Crash rule and reverted afterwards; queue depth
// and backpressure are observable live in the bus stats.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"gremlin"
	"gremlin/internal/bus"
	"gremlin/internal/httpx"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Outage replay: message-bus cascade on a real async bus ===")
	store := gremlin.NewStore()

	// cassandra: the downstream datastore.
	cassandra, err := httpx.NewServer("127.0.0.1:0", http.HandlerFunc(
		func(w http.ResponseWriter, _ *http.Request) {
			_, _ = io.WriteString(w, "stored\n")
		}))
	if err != nil {
		return err
	}
	cassandra.Start()
	defer cassandra.Close()

	// The bus's sidecar Gremlin agent: deliveries messagebus -> cassandra.
	agent, err := gremlin.NewAgent(gremlin.AgentConfig{
		ServiceName: "messagebus",
		ControlAddr: "127.0.0.1:0",
		Routes: []gremlin.Route{{
			Dst:        "cassandra",
			ListenAddr: "127.0.0.1:0",
			Targets:    []string{strings.TrimPrefix(cassandra.URL(), "http://")},
		}},
		Sink: store,
	})
	if err != nil {
		return err
	}
	agent.Start()
	defer agent.Close()
	deliveryURL, err := agent.RouteURL("cassandra")
	if err != nil {
		return err
	}

	// The bus: bounded queues, at-least-once delivery with retries.
	mbus, err := bus.New(bus.Config{QueueDepth: 8, RetryBackoff: 2 * time.Millisecond})
	if err != nil {
		return err
	}
	mbus.Start()
	defer mbus.Close()
	if err := mbus.Subscribe("metrics", "cassandra", deliveryURL+"/store"); err != nil {
		return err
	}

	publish := func(n int) (accepted, rejected int) {
		for i := 0; i < n; i++ {
			if err := mbus.Publish("metrics", fmt.Sprintf("test-%d", i), []byte("datapoint")); err != nil {
				rejected++
			} else {
				accepted++
			}
			time.Sleep(time.Millisecond)
		}
		return
	}

	fmt.Println("\n--- healthy: publishers stream data points through the bus ---")
	acc, rej := publish(30)
	waitDrain(mbus)
	st := mbus.Stats()
	fmt.Printf("  published=%d rejected=%d delivered=%d queue=%d\n",
		acc, rej, st.Delivered, st.QueueDepths["metrics/cassandra"])

	fmt.Println("\n--- Crash(cassandra): deliveries sever, retries pile up, queues fill ---")
	if err := agent.InstallRules(gremlin.Rule{
		ID: "crash-cass", Src: "messagebus", Dst: "cassandra",
		Action: gremlin.ActionAbort, Pattern: "test-*",
		ErrorCode: gremlin.AbortSeverConnection,
	}); err != nil {
		return err
	}
	acc, rej = publish(30)
	st = mbus.Stats()
	fmt.Printf("  published=%d REJECTED=%d (backpressure) queue=%d redeliveries=%d\n",
		acc, rej, st.QueueDepths["metrics/cassandra"], st.Redelivered)
	fmt.Println("  -> the Parse.ly cascade: a dead datastore turned into blocked publishers")

	fmt.Println("\n--- revert the fault: queues drain, publishing recovers ---")
	ctl := gremlin.NewAgentClient(agent.ControlURL())
	if _, err := ctl.ClearRules(context.Background()); err != nil {
		return err
	}
	waitDrain(mbus)
	acc, rej = publish(10)
	st = mbus.Stats()
	fmt.Printf("  published=%d rejected=%d queue=%d delivered=%d\n",
		acc, rej, st.QueueDepths["metrics/cassandra"], st.Delivered)

	// The whole incident is visible in the event log.
	checker := gremlin.NewChecker(store)
	rl, err := checker.GetReplies("messagebus", "cassandra", "test-*")
	if err != nil {
		return err
	}
	severed := 0
	for _, r := range rl {
		if r.Status == 0 {
			severed++
		}
	}
	fmt.Printf("\n  event log: %d delivery attempts observed, %d severed by the staged crash\n",
		len(rl), severed)
	return nil
}

func waitDrain(b *bus.Bus) {
	for i := 0; i < 1000; i++ {
		if b.Stats().QueueDepths["metrics/cassandra"] == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}
