// Command enterprise reproduces the paper's enterprise-application case
// study (§7.1, Figure 4): a user-facing web app aggregating a service
// catalog, a developer-activity service, and the (simulated) github.com
// and stackoverflow.com APIs.
//
// The web app's dependency clients are built on a timeout abstraction with
// the same bug the case study found in the Unirest library: the timeout
// covers slow responses but NOT TCP connection failures, so a crashed
// backend leaks raw transport errors (and long stalls) into the app. The
// program demonstrates how Gremlin recipes surface the bug:
//
//   - a Delay fault is handled (the timeout path works), but
//   - a Crash fault (severed connections) bypasses the timeout — the
//     HasTimeouts assertion fails, flagging the leaky abstraction.
//
// It then re-runs with a correct timeout stack to show the recipe passing.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"gremlin"
	"gremlin/internal/loadgen"
	"gremlin/internal/resilience"
	"gremlin/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Case study: enterprise application (Figure 4) ===")
	fmt.Println("webapp -> {catalog, activity}; activity -> {github.com, stackoverflow.com}")

	// The web app uses a "unirest-like" leaky timeout on every dependency.
	leaky := func(dep string, base resilience.Doer) resilience.Doer {
		return resilience.NewLeakyTimeout(base, 150*time.Millisecond)
	}
	app, err := topology.Build(topology.Enterprise(topology.EnterpriseOptions{
		ExternalLatency: 10 * time.Millisecond,
		WebAppClient:    leaky,
	}))
	if err != nil {
		return err
	}
	defer closeApp(app)
	runner := gremlin.NewRunner(app.Graph, gremlin.NewOrchestrator(app.Registry), app.Store, app.Store)

	// Recipe 1: slow catalog — the library's timeout handles this case.
	fmt.Println("\n--- 1. Delay(webapp->catalog, 2s): does the timeout fire? ---")
	report, err := runner.Run(context.Background(), gremlin.Recipe{
		Name: "slow-catalog",
		Scenarios: []gremlin.Scenario{gremlin.Delay{
			Src: topology.WebAppService, Dst: topology.CatalogService, Interval: 2 * time.Second,
		}},
		Checks: []gremlin.Check{gremlin.ExpectTimeouts(topology.WebAppService, time.Second)},
	}, gremlin.RunOptions{ClearLogs: true, Load: load(app, 5)})
	if err != nil {
		return err
	}
	fmt.Print(report)
	fmt.Println("  -> slow responses are cut off at ~150 ms: the happy-path timeout works.")

	// Recipe 2: network instability — crash the catalog (severed TCP
	// connections). The leaky timeout never arms on connection failures,
	// so raw errors percolate instead of the graceful timeout path
	// (the paper: "the Unirest library's implementation of the timeout
	// resiliency pattern did not gracefully handle corner cases involving
	// TCP connection timeout").
	fmt.Println("\n--- 2. Crash(catalog): severed connections bypass the leaky timeout ---")
	report, err = runner.Run(context.Background(), gremlin.Recipe{
		Name:      "catalog-crash",
		Scenarios: []gremlin.Scenario{gremlin.Crash{Service: topology.CatalogService}},
		Checks: []gremlin.Check{
			// The webapp aggregates best-effort, so it still answers — but
			// the *error class* it saw is visible in the logs: severed
			// connections (status 0) rather than clean timeouts.
			gremlin.ExpectCustom("saw-severed-connections", func(c *gremlin.Checker) (bool, string, error) {
				rl, err := c.GetReplies(topology.WebAppService, topology.CatalogService, "test-*")
				if err != nil {
					return false, "", err
				}
				severed := 0
				for _, r := range rl {
					if r.Status == 0 {
						severed++
					}
				}
				return severed > 0, fmt.Sprintf("%d/%d calls ended with severed connections leaking through the timeout layer", severed, len(rl)), nil
			}),
			gremlin.ExpectFallback(topology.WebAppService, 0.99),
		},
	}, gremlin.RunOptions{ClearLogs: true, Load: load(app, 5)})
	if err != nil {
		return err
	}
	fmt.Print(report)
	fmt.Println("  -> finding: the timeout library leaks TCP-level failures (the Unirest bug).")

	// The fix: a correct timeout wrapper that covers connection failures.
	fmt.Println("\n--- 3. Fixed web app (correct timeout), same Crash fault ---")
	fixedApp, err := topology.Build(topology.Enterprise(topology.EnterpriseOptions{
		ExternalLatency: 10 * time.Millisecond,
		WebAppClient: func(dep string, base resilience.Doer) resilience.Doer {
			return resilience.NewTimeout(base, 150*time.Millisecond)
		},
	}))
	if err != nil {
		return err
	}
	defer closeApp(fixedApp)
	fixedRunner := gremlin.NewRunner(fixedApp.Graph, gremlin.NewOrchestrator(fixedApp.Registry), fixedApp.Store, fixedApp.Store)
	report, err = fixedRunner.Run(context.Background(), gremlin.Recipe{
		Name:      "catalog-crash-fixed",
		Scenarios: []gremlin.Scenario{gremlin.Crash{Service: topology.CatalogService}},
		Checks: []gremlin.Check{
			gremlin.ExpectTimeouts(topology.WebAppService, time.Second),
			gremlin.ExpectFallback(topology.WebAppService, 0.99),
		},
	}, gremlin.RunOptions{ClearLogs: true, Load: load(fixedApp, 5)})
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

func load(app *topology.App, n int) func() error {
	return func() error {
		_, err := loadgen.Run(app.EntryURL(), loadgen.Options{N: n, Concurrency: 2})
		return err
	}
}

func closeApp(app *topology.App) {
	if err := app.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
	}
}
