// Command storecrash demonstrates the sharded event store's crash
// durability end to end, with a real process kill:
//
//  1. It builds the gremlin-logstore binary and starts it with 4 shards
//     and a write-ahead-log data directory.
//  2. A client batch-appends records across several request-ID
//     namespaces; every append below is acknowledged — the store wrote
//     the batch to the kernel before replying.
//  3. The store process is killed with SIGKILL (no shutdown path runs).
//  4. A restarted store on the same data directory replays the WAL; the
//     client re-reads everything and verifies the acknowledged records
//     came back byte-exact.
//  5. A campaign namespace is cleared and compacted away; the data
//     directory shrinks, and a final restart still replays correctly.
//
// Everything runs in this process tree on loopback TCP.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"gremlin/internal/eventlog"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Gremlin sharded store: surviving kill -9 ===")

	work, err := os.MkdirTemp("", "gremlin-storecrash-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	bin := filepath.Join(work, "gremlin-logstore")
	dataDir := filepath.Join(work, "data")

	fmt.Println("\n--- build gremlin-logstore ---")
	build := exec.Command("go", "build", "-o", bin, "./cmd/gremlin-logstore")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build: %w", err)
	}

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	url := "http://" + addr

	fmt.Println("\n--- first run: append across namespaces, then SIGKILL ---")
	proc, err := startStore(bin, addr, dataDir)
	if err != nil {
		return err
	}
	defer proc.Process.Kill() //nolint:errcheck // belt and braces on early error paths

	client := eventlog.NewClient(url, nil)
	var batch []eventlog.Record
	base := time.Now().UTC().Truncate(time.Millisecond)
	for i := 0; i < 2000; i++ {
		ns := []string{"test", "prod", "camp-run1", "camp-run2"}[i%4]
		batch = append(batch, eventlog.Record{
			Timestamp: base.Add(time.Duration(i) * time.Millisecond),
			RequestID: fmt.Sprintf("%s-%d", ns, i),
			Src:       "gateway", Dst: "backend",
			Kind: eventlog.KindRequest,
		})
	}
	if err := client.LogBatch(batch); err != nil {
		return fmt.Errorf("append: %w", err)
	}
	acked, err := client.Select(eventlog.Query{})
	if err != nil {
		return err
	}
	fmt.Printf("acknowledged %d records across 4 shards\n", len(acked))

	fmt.Println("kill -9", proc.Process.Pid)
	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		return err
	}
	_ = proc.Wait()

	fmt.Println("\n--- second run: replay the WAL, verify byte-exact recovery ---")
	proc, err = startStore(bin, addr, dataDir)
	if err != nil {
		return err
	}
	recovered, err := client.Select(eventlog.Query{})
	if err != nil {
		return err
	}
	if len(recovered) != len(acked) {
		return fmt.Errorf("recovered %d records, acknowledged %d", len(recovered), len(acked))
	}
	for i := range recovered {
		if recovered[i] != acked[i] {
			return fmt.Errorf("record %d differs after crash recovery:\n before %+v\n after  %+v", i, acked[i], recovered[i])
		}
	}
	fmt.Printf("all %d acknowledged records recovered byte-exact\n", len(recovered))

	fmt.Println("\n--- clear a campaign namespace; compaction reclaims its WAL space ---")
	sizeBefore, err := dirSize(dataDir)
	if err != nil {
		return err
	}
	for _, pat := range []string{"camp-run1-*", "camp-run2-*"} {
		n, err := client.ClearMatching(pat)
		if err != nil {
			return err
		}
		fmt.Printf("cleared %d records matching %s\n", n, pat)
	}
	// CompactAfter defaults above the 1000 records just cleared, so the
	// automatic trigger stays quiet; ask explicitly.
	if err := client.Compact(); err != nil {
		return err
	}
	sizeAfter, err := dirSize(dataDir)
	if err != nil {
		return err
	}
	fmt.Printf("data dir: %d bytes -> %d bytes\n", sizeBefore, sizeAfter)
	if sizeAfter >= sizeBefore {
		return fmt.Errorf("compaction did not reclaim space (%d -> %d bytes)", sizeBefore, sizeAfter)
	}

	fmt.Println("\n--- third run: post-compaction WAL still replays ---")
	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		return err
	}
	_ = proc.Wait()
	proc, err = startStore(bin, addr, dataDir)
	if err != nil {
		return err
	}
	final, err := client.Select(eventlog.Query{})
	if err != nil {
		return err
	}
	if want := len(acked) / 2; len(final) != want {
		return fmt.Errorf("post-compaction replay: %d records, want %d", len(final), want)
	}
	fmt.Printf("%d surviving records replayed after compaction\n", len(final))

	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	_ = proc.Wait()
	fmt.Println("\n=== done: every acknowledged append survived kill -9 ===")
	return nil
}

// startStore launches the logstore binary and waits for /healthz.
func startStore(bin, addr, dataDir string) (*exec.Cmd, error) {
	cmd := exec.Command(bin, "-addr", addr, "-shards", "4", "-data-dir", dataDir, "-fsync", "interval")
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	return nil, fmt.Errorf("store at %s never became healthy", addr)
}

// freeAddr asks the kernel for an unused loopback port.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer l.Close()
	return l.Addr().String(), nil
}

// dirSize sums the bytes under dir.
func dirSize(dir string) (int64, error) {
	var n int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			n += info.Size()
		}
		return nil
	})
	return n, err
}
