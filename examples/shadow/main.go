// Command shadow demonstrates resilience testing against a shadow
// deployment — the integration mode the paper names for production
// environments ("can be integrated easily into production or
// production-like environments (e.g., shadow deployments) without
// modifications to application code").
//
// A production WordPress stack serves live traffic; an edge agent mirrors
// every request into an identical shadow stack. Failures are staged ONLY
// in the shadow: its assertions reveal the missing timeout while
// production latency stays untouched.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"gremlin"
	"gremlin/internal/loadgen"
	"gremlin/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Shadow deployment: stage failures beside production, not in it ===")

	// Production and shadow stacks: identical WordPress deployments.
	prod, err := topology.Build(topology.WordPress(topology.WordPressOptions{
		BackendWorkTime: 2 * time.Millisecond,
	}))
	if err != nil {
		return err
	}
	defer closeApp(prod)
	shadow, err := topology.Build(topology.WordPress(topology.WordPressOptions{
		BackendWorkTime: 2 * time.Millisecond,
	}))
	if err != nil {
		return err
	}
	defer closeApp(shadow)

	// A mirroring edge: live traffic flows to production; every request is
	// also copied, fire-and-forget, into the shadow stack's edge.
	prodEntry := strings.TrimPrefix(prod.EntryURL(), "http://")
	shadowEntry := strings.TrimPrefix(shadow.EntryURL(), "http://")
	edge, err := gremlin.NewAgent(gremlin.AgentConfig{
		ServiceName: "ingress",
		ControlAddr: "127.0.0.1:0",
		Routes: []gremlin.Route{{
			Dst:           "wordpress",
			ListenAddr:    "127.0.0.1:0",
			Targets:       []string{prodEntry},
			MirrorTargets: []string{shadowEntry},
		}},
		Sink: prod.Store,
	})
	if err != nil {
		return err
	}
	edge.Start()
	defer edge.Close()
	ingressURL, err := edge.RouteURL("wordpress")
	if err != nil {
		return err
	}

	// Stage the failure in the SHADOW stack only: a 300 ms search delay.
	shadowRunner := gremlin.NewRunner(shadow.Graph, gremlin.NewOrchestrator(shadow.Registry), shadow.Store, shadow.Store)
	report, err := shadowRunner.Run(context.Background(), gremlin.Recipe{
		Name: "shadow-slow-search",
		Scenarios: []gremlin.Scenario{gremlin.Delay{
			Src: topology.WordPressService, Dst: topology.ElasticsearchService,
			Interval: 300 * time.Millisecond,
		}},
		Checks: []gremlin.Check{
			gremlin.ExpectTimeouts(topology.WordPressService, 150*time.Millisecond),
		},
	}, gremlin.RunOptions{ClearLogs: true, Load: func() error {
		// "Live" traffic enters at the mirroring ingress: production
		// serves it, the shadow receives copies and feels the fault.
		res, err := loadgen.Run(ingressURL, loadgen.Options{N: 30, Concurrency: 4})
		if err != nil {
			return err
		}
		max, _ := res.CDF().Max()
		fmt.Printf("\n  live traffic through production: %s (slowest %.0f ms)\n", res, max*1000)
		// Give the asynchronous mirror copies a moment to complete in the
		// shadow before assertions read its logs.
		time.Sleep(500 * time.Millisecond)
		return nil
	}})
	if err != nil {
		return err
	}

	fmt.Println("\n  shadow verdict:")
	fmt.Print(indent(report.String()))
	if !report.Passed() {
		fmt.Println("\n  -> the missing timeout was found in the shadow; production users never saw a slow request.")
	}

	// Production's own logs confirm it stayed fast.
	prodChecker := gremlin.NewChecker(prod.Store)
	res, err := prodChecker.HasTimeouts(topology.WordPressService, 150*time.Millisecond, "test-*")
	if err != nil {
		return err
	}
	fmt.Printf("\n  production cross-check: %s\n", res)
	return nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}

func closeApp(app *topology.App) {
	if err := app.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
	}
}
