// Command outages replays the historical outage scenarios of the paper's
// Table 1 and §5 as Gremlin recipes against a simulated deployment:
//
//   - Stackdriver 2013 / Parse.ly 2015: a Cassandra crash percolates
//     through the message bus and blocks every publisher (the
//     "cascading failure caused by middleware").
//   - BBC 2014 / CircleCI 2015 / Joyent 2015: an overloaded database
//     throttles requests; services without circuit breakers or timeouts
//     pile on and fail completely.
//
// Each recipe is run twice: against the fragile deployment (assertions
// fail, predicting the outage) and against a hardened deployment with
// timeouts + breakers (assertions pass).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"gremlin"
	"gremlin/internal/loadgen"
	"gremlin/internal/resilience"
	"gremlin/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := middlewareCascade(); err != nil {
		return err
	}
	return databaseOverload()
}

// middlewareCascade replays the Stackdriver postmortem: "Data published by
// various services into a message bus was being forwarded to the Cassandra
// cluster. When the cluster failed, the failure percolated to the message
// bus, filling the queues and blocking the publishers."
//
// Paper recipe:
//
//	Crash('cassandra')
//	for s in dependents('messagebus'):
//	    if not HasTimeouts(s, '1s') and not HasCircuitBreaker(s, 'messagebus', ...):
//	        raise 'Will block on message bus'
func middlewareCascade() error {
	fmt.Println("=== Outage replay 1: middleware cascade (Stackdriver 2013, Parse.ly 2015) ===")
	fmt.Println("frontend -> publisher -> messagebus -> cassandra")

	check := func(app *topology.App, label string) error {
		runner := gremlin.NewRunner(app.Graph, gremlin.NewOrchestrator(app.Registry), app.Store, app.Store)

		// Crash cassandra, then check every dependent of the message bus
		// for timeouts and breakers — the paper's recipe verbatim, with
		// Go's for loop instead of Python's.
		deps, err := app.Graph.Dependents(topology.MessageBusService)
		if err != nil {
			return err
		}
		var checks []gremlin.Check
		for _, s := range deps {
			checks = append(checks,
				gremlin.ExpectTimeouts(s, time.Second),
				gremlin.ExpectCircuitBreaker(s, topology.MessageBusService, 5, 5*time.Second),
			)
		}
		report, err := runner.Run(context.Background(), gremlin.Recipe{
			Name:      "cassandra-crash",
			Scenarios: []gremlin.Scenario{gremlin.Crash{Service: topology.CassandraService}},
			Checks:    checks,
		}, gremlin.RunOptions{ClearLogs: true, Load: func() error {
			_, err := loadgen.Run(app.EntryURL(), loadgen.Options{N: 30})
			return err
		}})
		if err != nil {
			return err
		}
		fmt.Printf("\n--- %s ---\n%s", label, report)
		if !report.Passed() {
			fmt.Println("  -> WILL BLOCK ON MESSAGE BUS (the 2013 outage, predicted in seconds)")
		}
		return nil
	}

	fragile, err := topology.Build(topology.MessageBus(topology.MessageBusOptions{}))
	if err != nil {
		return err
	}
	defer closeApp(fragile)
	if err := check(fragile, "fragile deployment (no timeouts, no breakers)"); err != nil {
		return err
	}

	hardened, err := topology.Build(topology.MessageBus(topology.MessageBusOptions{
		PublisherTimeout: 200 * time.Millisecond,
		PublisherBreaker: &resilience.BreakerConfig{FailureThreshold: 5, OpenTimeout: 10 * time.Second},
	}))
	if err != nil {
		return err
	}
	defer closeApp(hardened)
	return check(hardened, "hardened deployment (200ms timeout + breaker on the publisher)")
}

// databaseOverload replays the BBC Online postmortem: "When the database
// backend was overloaded, it started to throttle requests from various
// services. Services that had not cached the database responses locally
// began timing out and eventually failed completely."
//
// Paper recipe:
//
//	Overload('database')
//	for s in dependents('database'):
//	    if not HasCircuitBreaker(s, 'database', ...):
//	        raise 'Will overload database'
func databaseOverload() error {
	fmt.Println("\n=== Outage replay 2: datastore overload (BBC 2014, CircleCI 2015, Joyent 2015) ===")
	fmt.Println("wordpress -> {elasticsearch, mysql}; mysql plays the overloaded database")

	check := func(app *topology.App, label string) error {
		runner := gremlin.NewRunner(app.Graph, gremlin.NewOrchestrator(app.Registry), app.Store, app.Store)
		deps, err := app.Graph.Dependents(topology.ElasticsearchService)
		if err != nil {
			return err
		}
		var checks []gremlin.Check
		for _, s := range deps {
			checks = append(checks, gremlin.ExpectCircuitBreaker(s, topology.ElasticsearchService, 10, 2*time.Second))
		}
		report, err := runner.Run(context.Background(), gremlin.Recipe{
			Name: "database-overload",
			Scenarios: []gremlin.Scenario{gremlin.Overload{
				Service:       topology.ElasticsearchService,
				AbortFraction: 1, // fully throttling: every request rejected with 503
				ErrorCode:     503,
			}},
			Checks: checks,
		}, gremlin.RunOptions{ClearLogs: true, Load: func() error {
			_, err := loadgen.Run(app.EntryURL(), loadgen.Options{N: 40})
			return err
		}})
		if err != nil {
			return err
		}
		fmt.Printf("\n--- %s ---\n%s", label, report)
		if !report.Passed() {
			fmt.Println("  -> WILL OVERLOAD DATABASE (requests keep piling on the throttled store)")
		}
		return nil
	}

	fragile, err := topology.Build(topology.WordPress(topology.WordPressOptions{}))
	if err != nil {
		return err
	}
	defer closeApp(fragile)
	if err := check(fragile, "fragile deployment (plugin keeps hammering the throttled store)"); err != nil {
		return err
	}

	hardened, err := topology.Build(topology.WordPress(topology.WordPressOptions{
		SearchBreaker: &resilience.BreakerConfig{
			FailureThreshold: 10,
			OpenTimeout:      10 * time.Second,
			Fallback:         resilience.StaticFallback(503, "breaker open"),
		},
	}))
	if err != nil {
		return err
	}
	defer closeApp(hardened)
	return check(hardened, "hardened deployment (circuit breaker on the search path)")
}

func closeApp(app *topology.App) {
	if err := app.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
	}
}
