// Command explore demonstrates Gremlin's coverage-guided search plane on
// the topology static enumeration cannot crack: a frontend that calls a
// primary and falls back to a backup only when the primary fails. The
// frontend→backup edge sits in the declared graph, but no fault-free
// request ever exercises it — its injection point simply does not exist
// until another fault is staged.
//
// The explorer finds it from evidence: a fault-free probe inventories the
// baseline call paths by execution index, frontier rounds abort each
// unexercised point, and the traces of those faulted runs reveal the
// fallback branch — which the next round then faults too, with the
// enabling abort replayed as a prerequisite. The program kills the first
// exploration midway and resumes it from the journal, verifying that
// completed points are not re-run, then checks every claim it makes.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"gremlin"
	"gremlin/internal/loadgen"
	"gremlin/internal/microservice"
	"gremlin/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Gremlin explore: coverage-guided fault-space search ===")

	// frontend calls primary; only when primary fails does it try backup.
	spec := topology.Spec{Services: []topology.ServiceSpec{
		{Name: "frontend", DependsOn: []string{"primary", "backup"},
			Handler: microservice.FallbackHandler("primary", "backup")},
		{Name: "primary"},
		{Name: "backup"},
	}}
	spec.RNG = rand.New(rand.NewSource(17))
	app, err := topology.Build(spec)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := app.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "close:", cerr)
		}
	}()

	runner := gremlin.NewRunner(app.Graph, gremlin.NewOrchestrator(app.Registry), app.Store, app.Store)
	journal := filepath.Join(os.TempDir(), fmt.Sprintf("gremlin-explore-%d.jsonl", os.Getpid()))
	defer os.Remove(journal)

	var loadSeed atomic.Int64
	opts := func() gremlin.ExploreOptions {
		return gremlin.ExploreOptions{
			ID:          "demo",
			JournalPath: journal,
			Parallelism: 1,
			Load: func(ctx context.Context, idPrefix string) error {
				_, err := loadgen.Run(app.EntryURL(), loadgen.Options{
					N: 4, Concurrency: 2, IDPrefix: idPrefix,
					Context: ctx,
					RNG:     rand.New(rand.NewSource(loadSeed.Add(1))),
				})
				return err
			},
			Cleanup: func(pat string) { _, _ = app.Store.ClearMatching(pat) },
		}
	}

	// Session 1: kill the exploration after its first settled unit, the way
	// a crashed CI job or an operator's Ctrl-C would.
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	firstSession := map[string]bool{}
	o1 := opts()
	o1.OnEntry = func(e gremlin.CampaignEntry) {
		mu.Lock()
		defer mu.Unlock()
		firstSession[e.Unit] = true
		fmt.Printf("  session 1: %-7s %s\n", e.Status, e.Unit)
		if len(firstSession) == 1 {
			cancel()
		}
	}
	if _, err := gremlin.Explore(ctx, runner, o1); err == nil {
		return fmt.Errorf("killed exploration unexpectedly returned no error")
	}
	cancel()
	fmt.Printf("session 1 killed after %d settled unit(s); journal holds the coverage\n\n", len(firstSession))

	// Session 2: same journal, fresh context. Completed points restore from
	// their journalled execution indexes and are never re-run.
	rerun := map[string]bool{}
	o2 := opts()
	o2.OnEntry = func(e gremlin.CampaignEntry) {
		mu.Lock()
		defer mu.Unlock()
		rerun[e.Unit] = true
		fmt.Printf("  session 2: %-7s %s\n", e.Status, e.Unit)
	}
	res, err := gremlin.Explore(context.Background(), runner, o2)
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Print(res.Scorecard.Markdown())

	// --- Self-verification: every claim above, checked. -------------------
	for unit := range firstSession {
		if rerun[unit] {
			return fmt.Errorf("unit %s completed in the killed session was re-run on resume", unit)
		}
	}
	if !res.Converged {
		return fmt.Errorf("exploration did not converge in %d rounds", res.Rounds)
	}
	revealed := res.Revealed()
	if len(revealed) == 0 {
		return fmt.Errorf("no fault-revealed points discovered; inventory: %+v", res.Points)
	}
	byEI := map[string]gremlin.ExplorePoint{}
	for _, p := range res.Points {
		byEI[p.EI] = p
	}
	backup, ok := byEI["frontend#0/backup#0"]
	if !ok {
		return fmt.Errorf("fallback point frontend#0/backup#0 not discovered; inventory: %+v", res.Points)
	}
	if len(backup.RevealedBy) == 0 || !backup.Exercised {
		return fmt.Errorf("fallback point %+v should be fault-revealed and exercised", backup)
	}
	if res.PointsPruned < 1 {
		return fmt.Errorf("no EI-equivalent duplicates were pruned")
	}
	x := res.Scorecard.Explore
	if x == nil || x.PointsRevealed < 1 || !x.Converged {
		return fmt.Errorf("scorecard explore coverage incomplete: %+v", x)
	}

	fmt.Printf("\nthe fallback branch %s never ran fault-free: it was revealed by\n", backup.EI)
	fmt.Printf("faulting %v, then exercised with those aborts replayed as\n", backup.RevealedBy)
	fmt.Printf("prerequisites. %d EI-equivalent duplicate observations were pruned,\n", res.PointsPruned)
	fmt.Printf("and the killed session's %d unit(s) were restored, not re-run.\n", len(firstSession))
	return nil
}
