// Command tracing demonstrates the causal tracing plane end to end on a
// live two-service application: agents mint and propagate span IDs per
// proxied hop, the event log captures them, and internal/tracing
// assembles the records into a causal tree with a critical path and a
// fault attribution.
//
// The program injects a 100ms delay on serviceA -> serviceB, sends one
// traced request, and prints the resulting waterfall. It exits non-zero
// unless the critical path crosses the delayed edge and the latency is
// attributed to the injected rule — which makes it usable as a CI smoke
// test (`make trace-smoke`).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"time"

	"gremlin/internal/eventlog"
	"gremlin/internal/rules"
	"gremlin/internal/topology"
	"gremlin/internal/trace"
	"gremlin/internal/tracing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Gremlin tracing: span propagation -> waterfall -> attribution ===")

	spec := topology.TwoServices(0, 0)
	spec.RNG = rand.New(rand.NewSource(42))
	app, err := topology.Build(spec)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := app.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "close:", cerr)
		}
	}()

	// Delay every serviceA -> serviceB call in our namespace by 100ms.
	const ruleID = "smoke-delay-ab"
	if err := app.Agent("serviceA").InstallRules(rules.Rule{
		ID: ruleID, Src: "serviceA", Dst: "serviceB",
		Action: rules.ActionDelay, DelayMillis: 100, Pattern: "smoke-*",
	}); err != nil {
		return err
	}

	req, err := http.NewRequest(http.MethodGet, app.EntryURL()+"/", nil)
	if err != nil {
		return err
	}
	trace.SetRequestID(req, "smoke-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	_ = resp.Body.Close()

	traces, err := tracing.FromSource(app.Store, eventlog.Query{IDPattern: "smoke-*"})
	if err != nil {
		return err
	}
	if len(traces) != 1 {
		return fmt.Errorf("assembled %d traces, want 1", len(traces))
	}
	t := traces[0]
	fmt.Println()
	fmt.Print(tracing.Waterfall(t))
	fmt.Print(tracing.RenderCriticalPath(t))

	// Self-check: the delayed edge dominates the critical path and the
	// inflation is attributed to the installed rule.
	cp := t.CriticalPath()
	if !cp.Contains("serviceA", "serviceB") {
		return fmt.Errorf("critical path misses the delayed edge serviceA -> serviceB")
	}
	if cp.Injected < 100*time.Millisecond {
		return fmt.Errorf("critical path carries %s injected latency, want >= 100ms", cp.Injected)
	}
	attr, ok := t.Attribute()
	if !ok || attr.RuleID != ruleID {
		return fmt.Errorf("latency not attributed to %s (got %+v, ok=%v)", ruleID, attr, ok)
	}
	fmt.Println("\ntrace-smoke OK: critical path crosses the delayed edge and the")
	fmt.Printf("latency inflation is attributed to rule %s.\n", ruleID)
	return nil
}
