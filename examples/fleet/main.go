// Command fleet demonstrates — and self-verifies — the dynamic fleet
// plane at scale:
//
//  1. It generates a seeded 100-service layered DAG with 2–3 replicas per
//     service, builds it under a lease-based dynamic registry, and starts
//     active health checks plus the registry's expiry sweeper.
//  2. Open-loop Poisson load (arrivals fire on a schedule, not on
//     responses) establishes a clean baseline through the whole graph.
//  3. A one-unit delay campaign runs against the fleet with the telemetry
//     scraper watching every agent — the orchestrator locates and
//     configures all physical instances of the faulted service, per
//     replica (paper §4.2).
//  4. Replica-drain physics: killing one entry replica makes requests
//     routed to it fail, the health checker's fall threshold drains it
//     from every dependent's load-balancer pool, the registry records the
//     replica as down, and a post-drain open-loop window shows the error
//     ratio recovered.
//  5. Lease-lapse physics: a short-TTL "ghost" instance joins, the
//     discovery loop immediately targets its agent in a reconcile pass,
//     and once the lease lapses the reconciler stops targeting the dead
//     agent — no rules are pushed to it again.
//  6. gremlin-ctl fleet lists live membership against the registry server
//     and enforces an -expect floor, closing the loop from the operator's
//     seat.
//
// Everything runs in this process tree on loopback TCP.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"gremlin/internal/campaign"
	"gremlin/internal/core"
	"gremlin/internal/loadgen"
	"gremlin/internal/metrics"
	"gremlin/internal/orchestrator"
	"gremlin/internal/registry"
	"gremlin/internal/telemetry"
	"gremlin/internal/topology"
)

const (
	fleetServices = 100
	loadRate      = 25.0 // arrivals/sec; each arrival walks the whole DAG
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Gremlin dynamic fleet: discovery, health, drain, open-loop load ===")

	work, err := os.MkdirTemp("", "gremlin-fleet-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	// --- 1. generate and build the fleet under a dynamic registry ---
	spec := topology.Generate(topology.GenerateOptions{
		Services:    fleetServices,
		Layers:      5,
		MaxDegree:   2,
		MinReplicas: 2,
		MaxReplicas: 3,
		Seed:        42,
	})
	if len(spec.Services) != fleetServices {
		return fmt.Errorf("generator emitted %d services, want %d", len(spec.Services), fleetServices)
	}
	dyn := registry.NewDynamic(registry.DynamicOptions{DefaultTTL: 10 * time.Minute})
	spec.Registry = dyn
	spec.RNG = rand.New(rand.NewSource(1))

	app, err := topology.Build(spec)
	if err != nil {
		return err
	}
	defer app.Close()
	stopSweep := dyn.StartSweeper(100 * time.Millisecond)
	defer stopSweep()

	replicas := 0
	for _, s := range spec.Services {
		replicas += app.Replicas(s.Name)
	}
	members := dyn.Members()
	fmt.Printf("\nfleet: %d services, %d replicas, %d registry members (incl. edge), entry %s\n",
		len(spec.Services), replicas, len(members), app.Entry())
	if replicas < fleetServices*2 {
		return fmt.Errorf("multi-replica fleet expected ≥%d replicas, got %d", fleetServices*2, replicas)
	}
	if len(members) != replicas+1 { // every replica plus the edge agent
		return fmt.Errorf("registry holds %d members, want %d replicas + 1 edge", len(members), replicas)
	}

	hc := app.StartHealthChecks(topology.HealthOptions{
		Interval: 150 * time.Millisecond,
		Rise:     2,
		Fall:     3,
	})
	defer hc.Stop()

	// --- 2. baseline: open-loop Poisson load through the whole DAG ---
	fmt.Println("\n--- baseline: open-loop Poisson load ---")
	base, err := loadgen.RunOpenLoop(app.EntryURL(), loadgen.OpenLoopOptions{
		Arrival:  loadgen.Poisson{RatePerSec: loadRate},
		Duration: 1200 * time.Millisecond,
		RNG:      rand.New(rand.NewSource(2)),
	})
	if err != nil {
		return err
	}
	fmt.Printf("offered %.1f/s (%d arrivals, %d shed, peak in-flight %d), success %.3f\n",
		base.OfferedRate(), base.Arrivals, base.Shed, base.PeakInFlight, base.SuccessRate())
	if base.Arrivals == 0 || base.SuccessRate() < 0.995 {
		return fmt.Errorf("baseline unhealthy: %d arrivals, success %.3f", base.Arrivals, base.SuccessRate())
	}

	// --- 3. campaign + telemetry over the generated fleet ---
	var dep string
	for _, s := range spec.Services {
		if s.Name == app.Entry() && len(s.DependsOn) > 0 {
			dep = s.DependsOn[0]
		}
	}
	if dep == "" {
		return fmt.Errorf("entry %s has no dependencies to fault", app.Entry())
	}
	edgeName := app.Entry() + "->" + dep
	fmt.Printf("\n--- campaign: one 100ms delay unit on %s, telemetry scraping the fleet ---\n", edgeName)

	targets, err := telemetry.FleetTargets(dyn, "")
	if err != nil {
		return err
	}
	series := telemetry.NewSeriesStore(0)
	scraper := telemetry.NewScraper(series, targets, telemetry.ScrapeOptions{Interval: 500 * time.Millisecond})
	scrapeCtx, stopScraping := context.WithCancel(context.Background())
	defer stopScraping()
	go scraper.Run(scrapeCtx)

	all, err := campaign.Enumerate(app.Graph, campaign.EnumerateOptions{
		Generate: core.GenerateOptions{
			SkipServices: []string{topology.EdgeService},
			MaxLatency:   10 * time.Second,
		},
		Templates:  []string{"delay"},
		EdgeDelays: []time.Duration{100 * time.Millisecond},
	})
	if err != nil {
		return err
	}
	var units []campaign.Unit
	for _, u := range all {
		if u.Target == edgeName {
			units = append(units, u)
		}
	}
	if len(units) != 1 {
		return fmt.Errorf("want exactly one %s delay unit, got %d of %d enumerated", edgeName, len(units), len(all))
	}

	orch := orchestrator.New(dyn)
	recorder := telemetry.NewRecorder()
	runner := core.NewRunner(app.Graph, orch, app.Store, app.Store)
	sc, err := campaign.Run(context.Background(), runner, units, campaign.Options{
		ID:          "fleet-demo",
		JournalPath: filepath.Join(work, "journal.jsonl"),
		RunObserver: recorder,
		Load: func(ctx context.Context, idPrefix string) error {
			_, err := loadgen.RunOpenLoop(app.EntryURL(), loadgen.OpenLoopOptions{
				Arrival:  loadgen.Poisson{RatePerSec: loadRate},
				Duration: 1200 * time.Millisecond,
				Context:  ctx,
				IDPrefix: idPrefix,
				RNG:      rand.New(rand.NewSource(3)),
			})
			return err
		},
		Cleanup: func(pat string) { _, _ = app.Store.ClearMatching(pat) },
		OnEntry: func(e campaign.Entry) {
			fmt.Printf("  %-7s %-9s %s\n", e.Status, e.Kind, e.Unit)
		},
	})
	if err != nil {
		return err
	}
	if sc.Failed != 0 || sc.Errors != 0 || sc.Passed < 1 {
		return fmt.Errorf("campaign did not pass cleanly: passed=%d failed=%d errors=%d", sc.Passed, sc.Failed, sc.Errors)
	}
	if ws := recorder.Windows(); len(ws) != 1 || ws[0].Active() {
		return fmt.Errorf("recorder should hold one closed fault window, got %+v", ws)
	}
	// §4.2: the faulted service's rules must have reached EVERY replica's
	// agent — the reconcile report carries one entry per physical instance.
	rep := orch.LastReport()
	if rep == nil {
		return fmt.Errorf("orchestrator kept no reconcile report")
	}
	agentTotal := 0
	for _, m := range members {
		if m.AgentControlURL != "" {
			agentTotal++
		}
	}
	if len(rep.Agents) != agentTotal {
		return fmt.Errorf("reconcile touched %d agents, want all %d physical instances", len(rep.Agents), agentTotal)
	}
	stats := scraper.Stats()
	fmt.Printf("campaign passed; orchestrator configured all %d physical instances; %d scrapes over %d targets, %d series\n",
		len(rep.Agents), stats.Scrapes, len(stats.Targets), series.SeriesCount())
	if stats.Scrapes == 0 || series.SeriesCount() == 0 {
		return fmt.Errorf("telemetry plane scraped nothing: %d scrapes, %d series", stats.Scrapes, series.SeriesCount())
	}
	stopScraping()

	// --- 4. replica-drain physics ---
	entry := app.Entry()
	edge := app.Agent(topology.EdgeService)
	pool, err := edge.RouteTargets(entry)
	if err != nil {
		return err
	}
	n := len(pool)
	fmt.Printf("\n--- drain: killing replica 1 of %s (pool of %d) ---\n", entry, n)
	if n < 2 {
		return fmt.Errorf("entry %s has %d replicas, need ≥2 to drain one", entry, n)
	}
	if err := app.KillReplica(entry, 1); err != nil {
		return err
	}

	// Requests keep landing on the dead replica until the fall threshold
	// trips: the error ratio must be visibly non-zero in this window.
	during, err := loadgen.RunOpenLoop(app.EntryURL(), loadgen.OpenLoopOptions{
		Arrival:  loadgen.Poisson{RatePerSec: 4 * loadRate},
		Duration: 350 * time.Millisecond,
		RNG:      rand.New(rand.NewSource(4)),
	})
	if err != nil {
		return err
	}
	fmt.Printf("kill window: %d arrivals, success %.3f\n", during.Arrivals, during.SuccessRate())
	if during.SuccessRate() >= 1 {
		return fmt.Errorf("killing a live replica produced zero errors — traffic never reached it")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		pool, err = edge.RouteTargets(entry)
		if err != nil {
			return err
		}
		if len(pool) == n-1 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("health checker never drained the dead replica: pool still %v", pool)
		}
		time.Sleep(25 * time.Millisecond)
	}
	fmt.Printf("health checker drained the dead replica: pool %d -> %d\n", n, len(pool))

	ins, err := dyn.Instances(entry)
	if err != nil {
		return err
	}
	down := 0
	for _, in := range ins {
		if in.Health == "down" {
			down++
		}
	}
	if down != 1 {
		return fmt.Errorf("registry should record exactly 1 drained replica of %s as down, got %d", entry, down)
	}
	fmt.Println("registry records the drained replica as health=down")

	after, err := loadgen.RunOpenLoop(app.EntryURL(), loadgen.OpenLoopOptions{
		Arrival:  loadgen.Poisson{RatePerSec: loadRate},
		Duration: 1 * time.Second,
		RNG:      rand.New(rand.NewSource(5)),
	})
	if err != nil {
		return err
	}
	fmt.Printf("recovery window: %d arrivals, success %.3f\n", after.Arrivals, after.SuccessRate())
	if after.SuccessRate() < 0.995 {
		return fmt.Errorf("error ratio did not recover after drain: success %.3f", after.SuccessRate())
	}
	if after.SuccessRate() <= during.SuccessRate() {
		return fmt.Errorf("drain did not improve the error ratio: %.3f -> %.3f",
			during.SuccessRate(), after.SuccessRate())
	}

	// --- 5. lease-lapse physics through the discovery loop ---
	fmt.Println("\n--- lease lapse: short-TTL ghost instance joins and expires ---")
	stopDisc := orch.StartDiscovery(dyn, 5*time.Second)
	defer stopDisc()

	const ghostURL = "http://127.0.0.1:9"
	if err := dyn.Register(registry.Instance{
		Service: "ghost", Addr: "127.0.0.1:9", AgentControlURL: ghostURL,
	}, 400*time.Millisecond); err != nil {
		return err
	}
	targeted := func() bool {
		rep := orch.LastReport()
		if rep == nil {
			return false
		}
		for _, a := range rep.Agents {
			if a.URL == ghostURL {
				return true
			}
		}
		return false
	}
	deadline = time.Now().Add(5 * time.Second)
	for !targeted() {
		if time.Now().After(deadline) {
			return fmt.Errorf("discovery loop never reconciled toward the ghost agent")
		}
		time.Sleep(25 * time.Millisecond)
	}
	fmt.Println("join event: discovery-triggered reconcile targeted the ghost agent")

	deadline = time.Now().Add(5 * time.Second)
	for {
		svcs, err := dyn.Services()
		if err != nil {
			return err
		}
		gone := true
		for _, s := range svcs {
			if s == "ghost" {
				gone = false
			}
		}
		if gone && !targeted() {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("reconciler still targets the ghost after its lease lapsed")
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("lease lapsed: reconcile no longer targets the dead agent (no rules pushed to it)")

	mw := metrics.NewWriter()
	orch.WriteMetrics(mw)
	if !strings.Contains(mw.String(), "gremlin_reconciler_discovery_syncs_total") ||
		strings.Contains(mw.String(), "gremlin_reconciler_discovery_syncs_total 0\n") {
		return fmt.Errorf("discovery loop recorded no event-triggered reconcile passes")
	}

	// --- 6. the operator's view: gremlin-ctl fleet ---
	fmt.Println("\n--- gremlin-ctl fleet against the live registry server ---")
	srv, err := registry.NewServer("127.0.0.1:0", dyn)
	if err != nil {
		return err
	}
	defer srv.Close()

	bin := filepath.Join(work, "gremlin-ctl")
	build := exec.Command("go", "build", "-o", bin, "./cmd/gremlin-ctl")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build gremlin-ctl: %w", err)
	}
	live := len(dyn.Members())
	out, err := exec.Command(bin, "fleet", "-registry", srv.URL(), "-expect", fmt.Sprint(live)).CombinedOutput()
	if err != nil {
		return fmt.Errorf("gremlin-ctl fleet: %w\n%s", err, out)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	fmt.Printf("%s\n...\n%s\n", lines[0], lines[len(lines)-1])
	if !strings.Contains(string(out), fmt.Sprintf("%d live instances", live)) {
		return fmt.Errorf("fleet listing missed members:\n%s", out)
	}
	if !strings.Contains(string(out), "down") {
		return fmt.Errorf("fleet listing does not show the drained replica as down:\n%s", out)
	}
	if _, err := http.Get(srv.URL() + "/metrics"); err != nil {
		return err
	}

	fmt.Println("\n=== done: fleet discovered, drained, recovered, and observable end to end ===")
	return nil
}
