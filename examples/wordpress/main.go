// Command wordpress reproduces the paper's WordPress/ElasticPress case
// study (§7.1, Figures 5 and 6) on a simulated stack: WordPress with an
// ElasticPress-style plugin that queries Elasticsearch and falls back to
// MySQL on error — but ships with no timeout and no circuit breaker.
//
// The program:
//  1. verifies the fallback works under an Elasticsearch crash,
//  2. sweeps injected delays (Figure 5) and prints the response-time CDFs,
//     showing responses offset by exactly the injected delay (no timeout),
//  3. runs the abort-then-delay sequence (Figure 6), showing that no
//     delayed request returns early (no circuit breaker), and
//  4. re-runs the delay test against a *fixed* plugin (with a timeout) to
//     show the assertions pass once the pattern is implemented.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"gremlin"
	"gremlin/internal/loadgen"
	"gremlin/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Case study: WordPress + ElasticPress + Elasticsearch + MySQL ===")
	app, err := topology.Build(topology.WordPress(topology.WordPressOptions{
		BackendWorkTime: 5 * time.Millisecond,
	}))
	if err != nil {
		return err
	}
	defer closeApp(app)
	runner := gremlin.NewRunner(app.Graph, gremlin.NewOrchestrator(app.Registry), app.Store, app.Store)

	// 1. The fallback path: crash Elasticsearch, expect MySQL to serve.
	fmt.Println("\n--- 1. Crash(elasticsearch): does the plugin fall back to MySQL? ---")
	report, err := runner.Run(context.Background(), gremlin.Recipe{
		Name:      "es-crash-fallback",
		Scenarios: []gremlin.Scenario{gremlin.Crash{Service: topology.ElasticsearchService}},
		Checks:    []gremlin.Check{gremlin.ExpectFallback(topology.WordPressService, 0.99)},
	}, gremlin.RunOptions{ClearLogs: true, Load: load(app, 20)})
	if err != nil {
		return err
	}
	fmt.Print(report)

	// 2. Figure 5: inject 1..4s delays between WordPress and Elasticsearch
	// and measure WordPress response-time CDFs at the edge. For a laptop
	// run we scale the delays down 10x (100..400 ms); the shape is
	// identical: the fastest response is never quicker than the injected
	// delay, so the plugin has no timeout.
	fmt.Println("\n--- 2. Figure 5: delayed Elasticsearch, WordPress response-time CDFs ---")
	for _, delay := range []time.Duration{100, 200, 300, 400} {
		d := delay * time.Millisecond
		rep, res, err := delayedRun(runner, app, d, 50)
		if err != nil {
			return err
		}
		min, _ := res.CDF().Min()
		fmt.Printf("  injected delay %-6s -> fastest response %6.0f ms  (timeout check: %s)\n",
			d, min*1000, passFail(rep))
	}
	fmt.Println("  responses are always offset by the injected delay: NO timeout pattern.")

	// 3. Figure 6: 100 aborted, then 100 delayed requests. A tripped
	// circuit breaker would answer some of the delayed requests
	// immediately; without one, every delayed request waits out the delay.
	fmt.Println("\n--- 3. Figure 6: 100 aborts then 100 delayed requests (circuit breaker?) ---")
	if err := figure6(runner, app); err != nil {
		return err
	}

	// 4. The fix: give the plugin a 50 ms search timeout and re-run the
	// delay scenario — the HasTimeouts assertion now passes.
	fmt.Println("\n--- 4. Fixed plugin (50 ms search timeout), same delay fault ---")
	fixed, err := topology.Build(topology.WordPress(topology.WordPressOptions{
		BackendWorkTime: 5 * time.Millisecond,
		SearchTimeout:   50 * time.Millisecond,
	}))
	if err != nil {
		return err
	}
	defer closeApp(fixed)
	fixedRunner := gremlin.NewRunner(fixed.Graph, gremlin.NewOrchestrator(fixed.Registry), fixed.Store, fixed.Store)
	rep, res, err := delayedRun(fixedRunner, fixed, 300*time.Millisecond, 50)
	if err != nil {
		return err
	}
	max, _ := res.CDF().Max()
	fmt.Printf("  slowest response %.0f ms with a 300 ms injected delay (timeout check: %s)\n",
		max*1000, passFail(rep))
	return nil
}

// delayedRun stages Delay(wordpress->elasticsearch) and injects n requests,
// returning the HasTimeouts report and the measured latencies.
func delayedRun(runner *gremlin.Runner, app *topology.App, d time.Duration, n int) (*gremlin.Report, *loadgen.Result, error) {
	var res *loadgen.Result
	report, err := runner.Run(context.Background(), gremlin.Recipe{
		Name: fmt.Sprintf("fig5-delay-%s", d),
		Scenarios: []gremlin.Scenario{gremlin.Delay{
			Src: topology.WordPressService, Dst: topology.ElasticsearchService, Interval: d,
		}},
		Checks: []gremlin.Check{gremlin.ExpectTimeouts(topology.WordPressService, d/2)},
	}, gremlin.RunOptions{ClearLogs: true, Load: func() error {
		var err error
		res, err = loadgen.Run(app.EntryURL(), loadgen.Options{N: n, Concurrency: 4})
		return err
	}})
	return report, res, err
}

func figure6(runner *gremlin.Runner, app *topology.App) error {
	// Phase A: 100 aborted requests (fallback answers quickly).
	abortRep, err := runner.Run(context.Background(), gremlin.Recipe{
		Name:      "fig6-abort",
		Scenarios: []gremlin.Scenario{gremlin.Disconnect{From: topology.WordPressService, To: topology.ElasticsearchService}},
	}, gremlin.RunOptions{ClearLogs: true, Load: func() error {
		res, err := loadgen.RunSequential(app.EntryURL(), 100, "/search", nil)
		if err != nil {
			return err
		}
		max, _ := res.CDF().Max()
		fmt.Printf("  aborted : all 100 via MySQL fallback, slowest %.0f ms\n", max*1000)
		return nil
	}})
	if err != nil {
		return err
	}
	_ = abortRep

	// Phase B: immediately delay the next 100 by 300 ms (scaled from the
	// paper's 3 s) and check for a breaker.
	report, err := runner.Run(context.Background(), gremlin.Recipe{
		Name: "fig6-delay",
		Scenarios: []gremlin.Scenario{gremlin.Delay{
			Src: topology.WordPressService, Dst: topology.ElasticsearchService, Interval: 300 * time.Millisecond,
		}},
		Checks: []gremlin.Check{
			gremlin.ExpectCircuitBreaker(topology.WordPressService, topology.ElasticsearchService,
				100, time.Second),
		},
	}, gremlin.RunOptions{Load: func() error {
		res, err := loadgen.RunSequential(app.EntryURL(), 100, "/search", nil)
		if err != nil {
			return err
		}
		min, _ := res.CDF().Min()
		fmt.Printf("  delayed : fastest of 100 delayed requests %.0f ms (injected 300 ms)\n", min*1000)
		return nil
	}})
	if err != nil {
		return err
	}
	fmt.Printf("  breaker check after 100 consecutive failures: %s\n", passFail(report))
	fmt.Println("  no delayed request returned early: NO circuit breaker (matches Figure 6).")
	return nil
}

func load(app *topology.App, n int) func() error {
	return func() error {
		_, err := loadgen.Run(app.EntryURL(), loadgen.Options{N: n, Concurrency: 4})
		return err
	}
}

func passFail(r *gremlin.Report) string {
	if r.Passed() {
		return "PASS"
	}
	return "FAIL"
}

func closeApp(app *topology.App) {
	if err := app.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
	}
}
