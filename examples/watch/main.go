// Command watch demonstrates the live observability plane on the
// quickstart topology (serviceA -> serviceB):
//
//  1. The in-process event store is exposed over HTTP, including the
//     /v1/stream SSE endpoint and /metrics.
//  2. An online monitor (the engine behind gremlin-watch) tails the
//     stream with a failure-reply bound while a Crash(serviceB) recipe
//     runs paced load through the faulted deployment.
//  3. The first violation aborts the load early — the live verdict lands
//     while the batch Assertion Checker is still waiting for the run to
//     finish — and the Prometheus endpoints show what the plane counted.
//
// Everything runs in this process on loopback TCP.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"gremlin"
	"gremlin/internal/agentapi"
	"gremlin/internal/eventlog"
	"gremlin/internal/loadgen"
	"gremlin/internal/observe"
	"gremlin/internal/registry"
	"gremlin/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Gremlin live observability: watch a run fail in flight ===")

	app, err := topology.Build(topology.TwoServices(5, 2*time.Millisecond))
	if err != nil {
		return err
	}
	defer func() {
		if cerr := app.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "close:", cerr)
		}
	}()

	// Expose the store over HTTP: the stream the monitor tails is the same
	// SSE endpoint `gremlin-watch -store <url>` would consume.
	srv, err := eventlog.NewServer("127.0.0.1:0", app.Store)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("event store at %s (SSE: /v1/stream, metrics: /metrics)\n", srv.URL())

	// Online assertion: more than 3 failure replies anywhere in the test
	// namespace is a violation. The monitor cancels the load context the
	// moment it fires.
	live, err := observe.NewCheckStatus("", "", "test-*", -1, 0, 3)
	if err != nil {
		return err
	}
	loadCtx, cancelLoad := context.WithCancel(context.Background())
	defer cancelLoad()
	monitor := observe.NewMonitor([]observe.Assertion{live}, func(v observe.Violation) {
		fmt.Printf("\n  LIVE VIOLATION: %s\n", v)
		cancelLoad()
	})

	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	watchDone := make(chan error, 1)
	client := eventlog.NewClient(srv.URL(), nil)
	go func() {
		watchDone <- observe.Watch(watchCtx, observe.ClientFeed(client), "test-*", monitor, true)
	}()

	// Crash serviceB and drive paced load: 40 requests that would take
	// ~2 s, except the live bound cuts the run after the 4th failure.
	const planned = 40
	crash := gremlin.Recipe{
		Name:      "crash-watched",
		Scenarios: []gremlin.Scenario{gremlin.Crash{Service: "serviceB"}},
		Checks:    []gremlin.Check{gremlin.ExpectCircuitBreaker("serviceA", "serviceB", 5, 10*time.Second)},
	}
	runner := gremlin.NewRunner(app.Graph, gremlin.NewOrchestrator(app.Registry), app.Store, app.Store)
	agentURLs, err := registry.AllAgentURLs(app.Registry)
	if err != nil {
		return err
	}
	var sent int
	var agentMetrics []string
	report, err := runner.Run(context.Background(), crash, gremlin.RunOptions{
		ClearLogs: true,
		Load: func() error {
			res, lerr := loadgen.Run(app.EntryURL(), loadgen.Options{
				N: planned, Concurrency: 1, Interval: 50 * time.Millisecond,
				Context: loadCtx,
			})
			if res != nil {
				sent = len(res.Samples)
			}
			// Scrape the agents now, while the crash rules are still
			// installed: per-rule counters live with the rules and vanish
			// when the runner reverts them.
			for _, u := range agentURLs {
				body, merr := agentapi.New(u, nil).Metrics(context.Background())
				if merr != nil {
					return merr
				}
				agentMetrics = append(agentMetrics, body)
			}
			if monitor.Violated() {
				return nil // cut short on purpose; the violation is the verdict
			}
			return lerr
		},
	})
	if err != nil {
		return err
	}

	fmt.Printf("\nload stopped after %d of %d planned requests; monitor saw %d records\n",
		sent, planned, monitor.Observed())
	fmt.Println("\nthe batch checker still evaluates the partial run afterwards:")
	fmt.Print(report)

	stopWatch()
	<-watchDone

	// The same plane, as scrapeable metrics: the store counts what it
	// streamed, each agent counts which rules fired on its hop.
	fmt.Println("\n--- /metrics excerpts ---")
	storeBody, err := client.Metrics()
	if err != nil {
		return err
	}
	printMetrics("store", storeBody)
	for i, body := range agentMetrics {
		printMetrics("agent "+agentURLs[i], body)
	}
	return nil
}

// printMetrics dumps the interesting gremlin_* lines of one exposition.
func printMetrics(name, body string) {
	shown := 0
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "gremlin_rule_") ||
			strings.HasPrefix(line, "gremlin_store_published_total") ||
			strings.HasPrefix(line, "gremlin_store_appended_total") ||
			strings.HasPrefix(line, "gremlin_agent_severed_total") {
			fmt.Printf("  [%s] %s\n", name, line)
			shown++
		}
	}
	if shown == 0 {
		fmt.Printf("  [%s] (no matching series)\n", name)
	}
}
