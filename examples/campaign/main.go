// Command campaign sweeps an entire application's fault space in one go:
// it enumerates scenario templates × targets × parameter grids from the
// graph of a live 7-service binary tree, executes the plan through a
// parallel worker pool — each run confined to its own request-ID
// namespace, so runs never fault or assert on each other's traffic — and
// prints the aggregate per-edge resilience scorecard.
//
// Along the way it demonstrates the engine's two efficiency levers:
// coverage signatures prune scenarios that would inject indistinguishable
// faults (crashing a leaf ≡ severing its only inbound edge), and the
// JSONL journal makes the campaign resumable after a kill.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"gremlin"
	"gremlin/internal/loadgen"
	"gremlin/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Gremlin campaign: systematic fault-space sweep ===")

	// A 7-service binary tree (tree-0 fans out to tree-1/tree-2, and so
	// on), every call flowing through sidecar Gremlin agents.
	spec := topology.BinaryTree(2, 0)
	spec.RNG = rand.New(rand.NewSource(7))
	app, err := topology.Build(spec)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := app.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "close:", cerr)
		}
	}()

	// Enumerate the fault space: overload and crash per service (with the
	// full resilience-pattern assertions), hang per service, partitions,
	// and a sever + delay grid per edge, plus two seeded chaos draws.
	units, err := gremlin.EnumerateCampaign(app.Graph, gremlin.EnumerateOptions{
		Generate: gremlin.GenerateOptions{
			SkipServices: []string{topology.EdgeService},
			MaxLatency:   5 * time.Second,
		},
		HangInterval:  200 * time.Millisecond,
		EdgeDelays:    []time.Duration{30 * time.Millisecond},
		Chaos:         2,
		ChaosSeed:     42,
		ChaosMaxDelay: 30 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	byKind := map[string]int{}
	for _, u := range units {
		byKind[u.Kind]++
	}
	fmt.Printf("\nenumerated %d units over %d services / %d edges:\n",
		len(units), len(app.Graph.Services()), len(app.Graph.Edges()))
	for _, k := range []string{"overload", "crash", "hang", "partition", "sever", "delay", "chaos"} {
		if byKind[k] > 0 {
			fmt.Printf("  %-9s × %d\n", k, byKind[k])
		}
	}

	runner := gremlin.NewRunner(app.Graph, gremlin.NewOrchestrator(app.Registry), app.Store, app.Store)
	journal := filepath.Join(os.TempDir(), fmt.Sprintf("gremlin-campaign-%d.jsonl", os.Getpid()))
	defer os.Remove(journal)

	fmt.Println("\nrunning with parallelism 3 (isolated by request-ID namespace):")
	var n atomic.Int64
	var loadSeed atomic.Int64
	sc, err := gremlin.RunCampaign(context.Background(), runner, units, gremlin.CampaignOptions{
		ID:          "demo",
		Parallelism: 3,
		JournalPath: journal,
		Load: func(ctx context.Context, idPrefix string) error {
			_, err := loadgen.Run(app.EntryURL(), loadgen.Options{
				N: 6, Concurrency: 2, IDPrefix: idPrefix,
				Context: ctx,
				RNG:     rand.New(rand.NewSource(loadSeed.Add(1))),
			})
			return err
		},
		DroppedCount: func() int64 {
			var sum int64
			for _, svc := range app.Services() {
				if a := app.Agent(svc); a != nil {
					sum += a.Stats().LogDropped
				}
			}
			return sum
		},
		Cleanup: func(pat string) { _, _ = app.Store.ClearMatching(pat) },
		OnEntry: func(e gremlin.CampaignEntry) {
			fmt.Printf("  [%2d/%d] %-7s %-9s %s\n", n.Add(1), len(units), e.Status, e.Kind, e.Unit)
		},
	})
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Print(sc.Markdown())
	fmt.Printf("\n%d of %d units were pruned as redundant — e.g. crashing a leaf\n", sc.Skipped, sc.Units)
	fmt.Println("service installs the same rules as severing its only inbound edge,")
	fmt.Println("so one verdict covers both. Kill this program midway and rerun with")
	fmt.Println("the same journal path: completed units are not re-executed.")
	return nil
}
