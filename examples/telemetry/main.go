// Command telemetry demonstrates — and self-verifies — the fleet
// telemetry plane end to end:
//
//  1. It builds a live user→web→db chain with sidecar Gremlin agents and
//     starts an out-of-band metric scraper over the agents' (and the
//     store's) /metrics endpoints.
//  2. Steady background load establishes a latency baseline.
//  3. A one-unit campaign injects a 150 ms delay on web→db; the telemetry
//     Recorder marks the fault window on the scraped series.
//  4. Post-fault load lets the Differ measure recovery; the program then
//     asserts the physics came out right: fault-window p99 strictly above
//     baseline p99, and a finite recovery time back into the tolerance
//     band.
//  5. It proves the plane is passive: a scrape-only quiet period adds
//     zero records to the event log the assertions run on.
//  6. The differentials round-trip through the campaign journal into the
//     scorecard's Telemetry section, render to a static HTML report with
//     SVG sparklines, and the gremlin-top dashboard renders a frame
//     against the live fleet.
//
// Everything runs in this process tree on loopback TCP.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"gremlin/internal/campaign"
	"gremlin/internal/core"
	"gremlin/internal/eventlog"
	"gremlin/internal/loadgen"
	"gremlin/internal/microservice"
	"gremlin/internal/orchestrator"
	"gremlin/internal/registry"
	"gremlin/internal/telemetry"
	"gremlin/internal/topology"
)

const faultDelay = 150 * time.Millisecond

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Gremlin telemetry plane: scrape, diff, recover ===")

	work, err := os.MkdirTemp("", "gremlin-telemetry-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	app, err := topology.Build(topology.Spec{
		Services: []topology.ServiceSpec{
			{Name: "web", DependsOn: []string{"db"},
				Handler: microservice.FanOutHandler(microservice.FailFast)},
			{Name: "db", Handler: microservice.LeafHandler("db-rows"),
				WorkTime: 2 * time.Millisecond},
		},
		RNG: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		return err
	}
	defer app.Close()

	// The store serves /metrics too; scraping it alongside the agents
	// exercises the multi-target path.
	storeSrv, err := eventlog.NewServer("127.0.0.1:0", app.Store)
	if err != nil {
		return err
	}
	defer storeSrv.Close()

	targets, err := telemetry.FleetTargets(app.Registry, storeSrv.URL())
	if err != nil {
		return err
	}
	fmt.Printf("\nscraping %d targets every 100ms:", len(targets))
	for _, t := range targets {
		fmt.Printf(" %s", t.Name)
	}
	fmt.Println()

	series := telemetry.NewSeriesStore(0)
	scraper := telemetry.NewScraper(series, targets, telemetry.ScrapeOptions{Interval: 100 * time.Millisecond})
	scrapeCtx, stopScraping := context.WithCancel(context.Background())
	defer stopScraping()
	go scraper.Run(scrapeCtx)

	load := func(prefix string, dur time.Duration) error {
		deadline := time.Now().Add(dur)
		for i := 0; time.Now().Before(deadline); i++ {
			if _, err := loadgen.Run(app.EntryURL(), loadgen.Options{
				N: 20, Concurrency: 4, IDPrefix: fmt.Sprintf("%s-%d", prefix, i),
				RNG: rand.New(rand.NewSource(int64(i))),
			}); err != nil {
				return err
			}
		}
		return nil
	}

	fmt.Println("\n--- baseline: steady load, no faults ---")
	if err := load("baseline", 1500*time.Millisecond); err != nil {
		return err
	}

	fmt.Println("\n--- campaign: one 150ms delay unit on web->db ---")
	all, err := campaign.Enumerate(app.Graph, campaign.EnumerateOptions{
		Generate: core.GenerateOptions{
			SkipServices: []string{topology.EdgeService},
			MaxLatency:   5 * time.Second,
		},
		Templates:  []string{"delay"},
		EdgeDelays: []time.Duration{faultDelay},
	})
	if err != nil {
		return err
	}
	var units []campaign.Unit
	for _, u := range all {
		if u.Target == "web->db" {
			units = append(units, u)
		}
	}
	if len(units) != 1 {
		return fmt.Errorf("want exactly one web->db delay unit, got %d", len(units))
	}

	recorder := telemetry.NewRecorder()
	runner := core.NewRunner(app.Graph, orchestrator.New(app.Registry), app.Store, app.Store)
	journal := filepath.Join(work, "journal.jsonl")
	sc, err := campaign.Run(context.Background(), runner, units, campaign.Options{
		ID:          "telemetry-demo",
		JournalPath: journal,
		RunObserver: recorder,
		Load: func(ctx context.Context, idPrefix string) error {
			_, err := loadgen.Run(app.EntryURL(), loadgen.Options{
				N: 60, Concurrency: 4, IDPrefix: idPrefix,
				Context: ctx,
				RNG:     rand.New(rand.NewSource(99)),
			})
			return err
		},
		Cleanup: func(pat string) { _, _ = app.Store.ClearMatching(pat) },
		OnEntry: func(e campaign.Entry) {
			fmt.Printf("  %-7s %-9s %s\n", e.Status, e.Kind, e.Unit)
		},
	})
	if err != nil {
		return err
	}
	windows := recorder.Windows()
	if len(windows) != 1 || windows[0].Active() {
		return fmt.Errorf("recorder should hold one closed window, got %+v", windows)
	}

	fmt.Println("\n--- recovery: fault removed, load continues ---")
	if err := load("recovery", 1500*time.Millisecond); err != nil {
		return err
	}

	// The plane must be passive: with load stopped, scraping alone adds
	// nothing to the event log the assertions run on.
	before := app.Store.Appended()
	time.Sleep(600 * time.Millisecond) // several scrape sweeps
	if after := app.Store.Appended(); after != before {
		return fmt.Errorf("scraper wrote to the event log: %d records appeared during a scrape-only quiet period", after-before)
	}
	fmt.Println("\nquiet period: scraping added 0 event-log records (plane is out-of-band)")

	measured := telemetry.NewDiffer(series, windows, telemetry.DiffOptions{}).DiffAll()
	if len(measured) != 1 {
		return fmt.Errorf("want one measured unit, got %d", len(measured))
	}
	ut := measured[0]
	fmt.Printf("\nunit %s @ %s:\n", ut.Unit, ut.Service)
	fmt.Printf("  p99      %.1fms -> %.1fms\n", ut.BaselineP99Millis, ut.FaultP99Millis)
	fmt.Printf("  rate     %.1f/s -> %.1f/s\n", ut.BaselineRate, ut.FaultRate)
	fmt.Printf("  recovery %v (%dms)\n", ut.Recovered, ut.RecoveryMillis)

	// The physics the plane must measure: a 150ms delay on web->db shows
	// up at web (the caller's proxy serves the delay), and latency falls
	// back into the baseline band once the fault is removed.
	if ut.Service != "web" {
		return fmt.Errorf("latency signal should appear at web (the faulted edge's caller), got %q", ut.Service)
	}
	if ut.FaultP99Millis <= ut.BaselineP99Millis {
		return fmt.Errorf("fault p99 %.1fms not above baseline p99 %.1fms", ut.FaultP99Millis, ut.BaselineP99Millis)
	}
	if ut.FaultP99Millis < float64(faultDelay.Milliseconds()) {
		return fmt.Errorf("fault p99 %.1fms below the injected %s delay", ut.FaultP99Millis, faultDelay)
	}
	if !ut.Recovered || ut.RecoveryMillis <= 0 {
		return fmt.Errorf("expected finite recovery, got recovered=%v millis=%d", ut.Recovered, ut.RecoveryMillis)
	}

	// Round-trip: the differential journals as an annotation entry and
	// folds into the scorecard's Telemetry section on load.
	if err := campaign.AppendEntry(journal, campaign.Entry{
		Campaign: "telemetry-demo", Unit: ut.Unit, Status: campaign.StatusTelemetry, Telemetry: &ut,
	}); err != nil {
		return err
	}
	entries, err := campaign.LoadJournal(journal)
	if err != nil {
		return err
	}
	folded := campaign.BuildScorecard("telemetry-demo", app.Graph, entries)
	if folded.Telemetry == nil || len(folded.Telemetry.Units) != 1 {
		return fmt.Errorf("journaled telemetry entry did not fold into the scorecard")
	}
	if folded.Units != sc.Units {
		return fmt.Errorf("telemetry annotation polluted the unit count: %d != %d", folded.Units, sc.Units)
	}
	stats := scraper.Stats()
	folded.Telemetry.Targets = len(stats.Targets)
	folded.Telemetry.Scrapes = stats.Scrapes
	folded.Telemetry.Series = series.SeriesCount()
	md := folded.Markdown()
	if !strings.Contains(md, "## Telemetry") {
		return fmt.Errorf("scorecard markdown lacks the Telemetry section")
	}
	fmt.Println("\nscorecard Telemetry section:")
	if i := strings.Index(md, "## Telemetry"); i >= 0 {
		fmt.Println(md[i:])
	}

	// Static HTML report with SVG sparklines.
	report := telemetry.HTMLReport("telemetry demo", series, windows, measured)
	if !strings.Contains(report, "<svg") {
		return fmt.Errorf("HTML report lacks sparklines")
	}
	htmlPath := filepath.Join(work, "report.html")
	if err := os.WriteFile(htmlPath, []byte(report), 0o644); err != nil {
		return err
	}
	fmt.Printf("HTML report: %d bytes with inline SVG sparklines\n", len(report))

	// Finally, the live dashboard: gremlin-top scrapes the same fleet and
	// renders one plain frame.
	fmt.Println("\n--- gremlin-top: one dashboard frame over the live fleet ---")
	regPath := filepath.Join(work, "registry.json")
	if err := writeRegistry(regPath, app.Registry); err != nil {
		return err
	}
	bin := filepath.Join(work, "gremlin-top")
	build := exec.Command("go", "build", "-o", bin, "./cmd/gremlin-top")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build gremlin-top: %w", err)
	}
	top := exec.Command(bin, "-registry", regPath, "-store", storeSrv.URL(),
		"-interval", "100ms", "-window", "10s", "-frames", "2", "-plain")
	frame, err := top.CombinedOutput()
	if err != nil {
		return fmt.Errorf("gremlin-top: %w\n%s", err, frame)
	}
	fmt.Print(string(frame))
	for _, want := range []string{"SERVICE", "web"} {
		if !strings.Contains(string(frame), want) {
			return fmt.Errorf("gremlin-top frame missing %q:\n%s", want, frame)
		}
	}

	fmt.Println("\n=== done: fault physics measured, recovery finite, plane fully out-of-band ===")
	return nil
}

// writeRegistry dumps the app's registry as the JSON instance list the
// CLI tools consume.
func writeRegistry(path string, reg registry.Registry) error {
	services, err := reg.Services()
	if err != nil {
		return err
	}
	var out []registry.Instance
	for _, svc := range services {
		ins, err := reg.Instances(svc)
		if err != nil {
			return err
		}
		out = append(out, ins...)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
