// Benchmarks covering the paper's evaluation (§7.2), one group per table
// and figure. The full series (the rows the paper plots) are regenerated
// by `go run ./cmd/gremlin-bench`; the benchmarks here measure the
// underlying operations with testing.B so regressions are visible in
// `go test -bench`.
//
//   - Table 2  (data-plane interface): cost of each fault primitive on the
//     live proxy data path.
//   - Table 3  (checker interface): cost of queries, base assertions, and
//     pattern checks over populated logs.
//   - Figure 5/6 (case study): request cost through the WordPress stack,
//     with and without staged faults.
//   - Figure 7 (orchestration/assertions vs. app size): rule fan-out and
//     per-service assertion cost on binary trees.
//   - Figure 8 (rule matching): matcher scan cost by rule count, and the
//     end-to-end proxied request with 200 non-matching rules installed.
package gremlin_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gremlin"
	"gremlin/internal/checker"
	"gremlin/internal/core"
	"gremlin/internal/eventlog"
	"gremlin/internal/loadgen"
	"gremlin/internal/orchestrator"
	"gremlin/internal/proxy"
	"gremlin/internal/rules"
	"gremlin/internal/topology"
	"gremlin/internal/trace"
)

// ---- Table 2: fault-injection primitives on the data path ----

func benchAgent(b *testing.B, installed ...rules.Rule) (*proxy.Agent, string) {
	b.Helper()
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}))
	b.Cleanup(backend.Close)
	agent, err := proxy.New(proxy.Config{
		ServiceName: "client",
		Routes: []proxy.Route{{
			Dst:        "server",
			ListenAddr: "127.0.0.1:0",
			Targets:    []string{strings.TrimPrefix(backend.URL, "http://")},
		}},
		RNG: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		b.Fatal(err)
	}
	agent.Start()
	b.Cleanup(func() {
		if err := agent.Close(); err != nil {
			b.Error(err)
		}
	})
	if err := agent.InstallRules(installed...); err != nil {
		b.Fatal(err)
	}
	u, err := agent.RouteURL("server")
	if err != nil {
		b.Fatal(err)
	}
	return agent, u
}

func doProxied(b *testing.B, client *http.Client, url, id string, wantErr bool) {
	b.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		b.Fatal(err)
	}
	trace.SetRequestID(req, id)
	resp, err := client.Do(req)
	if err != nil {
		if !wantErr {
			b.Fatal(err)
		}
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}

func BenchmarkTable2ProxyForwardNoFault(b *testing.B) {
	_, u := benchAgent(b)
	client := &http.Client{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doProxied(b, client, u, "test-1", false)
	}
}

func BenchmarkTable2AbortPrimitive(b *testing.B) {
	_, u := benchAgent(b, rules.Rule{
		ID: "ab", Src: "client", Dst: "server",
		Action: rules.ActionAbort, Pattern: "test-*", ErrorCode: 503,
	})
	client := &http.Client{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doProxied(b, client, u, "test-1", false)
	}
}

func BenchmarkTable2DelayPrimitive(b *testing.B) {
	_, u := benchAgent(b, rules.Rule{
		ID: "dl", Src: "client", Dst: "server",
		Action: rules.ActionDelay, Pattern: "test-*", DelayMillis: 1,
	})
	client := &http.Client{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doProxied(b, client, u, "test-1", false)
	}
}

func BenchmarkTable2ModifyPrimitive(b *testing.B) {
	_, u := benchAgent(b, rules.Rule{
		ID: "md", Src: "client", Dst: "server", On: rules.OnResponse,
		Action: rules.ActionModify, Pattern: "test-*",
		SearchBytes: "ok", ReplaceBytes: "ko",
	})
	client := &http.Client{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doProxied(b, client, u, "test-1", false)
	}
}

// ---- Table 3: assertion checker operations ----

// populateStore fills a store with n request/reply pairs.
func populateStore(b *testing.B, n int) *eventlog.Store {
	b.Helper()
	store := eventlog.NewStore()
	base := time.Date(2026, 7, 4, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		at := base.Add(time.Duration(i) * time.Millisecond)
		status := 200
		if i%4 == 0 {
			status = 503
		}
		err := store.Log(
			eventlog.Record{Timestamp: at, RequestID: fmt.Sprintf("test-%d", i),
				Src: "a", Dst: "b", Kind: eventlog.KindRequest, Method: "GET", URI: "/x"},
			eventlog.Record{Timestamp: at.Add(time.Millisecond), RequestID: fmt.Sprintf("test-%d", i),
				Src: "a", Dst: "b", Kind: eventlog.KindReply, Status: status, LatencyMillis: 1},
		)
		if err != nil {
			b.Fatal(err)
		}
	}
	return store
}

func BenchmarkTable3GetRequests(b *testing.B) {
	c := checker.New(populateStore(b, 1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GetRequests("a", "b", "test-*"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3ReplyLatency(b *testing.B) {
	c := checker.New(populateStore(b, 1000))
	rl, err := c.GetReplies("a", "b", "")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker.ReplyLatency(rl, true)
	}
}

func BenchmarkTable3Combine(b *testing.B) {
	c := checker.New(populateStore(b, 1000))
	rl, err := c.GetReplies("a", "b", "")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker.Combine(rl,
			checker.StatusSeen{Status: 503, NumMatch: 5, WithRule: true},
			checker.AtMost{Tdelta: time.Minute, WithRule: true, Num: 1000},
		)
	}
}

func BenchmarkTable3HasBoundedRetries(b *testing.B) {
	c := checker.New(populateStore(b, 1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.HasBoundedRetries("a", "b", 1000, "", checker.BoundedRetriesOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3HasCircuitBreaker(b *testing.B) {
	c := checker.New(populateStore(b, 1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.HasCircuitBreaker("a", "b", 5, time.Millisecond, "", checker.CircuitBreakerOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figures 5/6: the WordPress stack ----

func benchWordPress(b *testing.B, faults ...gremlin.Rule) *topology.App {
	b.Helper()
	spec := topology.WordPress(topology.WordPressOptions{BackendWorkTime: time.Microsecond})
	spec.RNG = rand.New(rand.NewSource(1))
	app, err := topology.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := app.Close(); err != nil {
			b.Error(err)
		}
	})
	if len(faults) > 0 {
		if err := app.Agent(topology.WordPressService).InstallRules(faults...); err != nil {
			b.Fatal(err)
		}
	}
	return app
}

func BenchmarkFigure5WordPressHealthy(b *testing.B) {
	app := benchWordPress(b)
	client := &http.Client{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doProxied(b, client, app.EntryURL()+"/search", "test-1", false)
	}
}

func BenchmarkFigure5WordPressDelayedSearch(b *testing.B) {
	app := benchWordPress(b, gremlin.Rule{
		ID: "d", Src: topology.WordPressService, Dst: topology.ElasticsearchService,
		Action: gremlin.ActionDelay, Pattern: "test-*", DelayMillis: 1,
	})
	client := &http.Client{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doProxied(b, client, app.EntryURL()+"/search", "test-1", false)
	}
}

func BenchmarkFigure6WordPressAbortedSearch(b *testing.B) {
	app := benchWordPress(b, gremlin.Rule{
		ID: "a", Src: topology.WordPressService, Dst: topology.ElasticsearchService,
		Action: gremlin.ActionAbort, Pattern: "test-*", ErrorCode: 503,
	})
	client := &http.Client{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doProxied(b, client, app.EntryURL()+"/search", "test-1", false)
	}
}

// ---- Figure 7: orchestration and assertions vs. application size ----

func benchTree(b *testing.B, depth int) (*topology.App, *core.Runner) {
	b.Helper()
	spec := topology.BinaryTree(depth, 0)
	spec.RNG = rand.New(rand.NewSource(1))
	app, err := topology.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := app.Close(); err != nil {
			b.Error(err)
		}
	})
	runner := core.NewRunner(app.Graph, orchestrator.New(app.Registry), app.Store, app.Store)
	return app, runner
}

func delayAllScenarios(app *topology.App) []core.Scenario {
	var out []core.Scenario
	for _, e := range app.Graph.Edges() {
		out = append(out, core.Delay{Src: e.Src, Dst: e.Dst, Interval: time.Millisecond})
	}
	return out
}

func benchmarkFigure7Orchestration(b *testing.B, depth int) {
	app, _ := benchTree(b, depth)
	orch := orchestrator.New(app.Registry)
	recipe := core.Recipe{Name: "fig7", Scenarios: delayAllScenarios(app)}
	ruleset, err := recipe.Translate(app.Graph)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		applied, err := orch.Apply(context.Background(), ruleset)
		if err != nil {
			b.Fatal(err)
		}
		if err := applied.Revert(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7Orchestration1Service(b *testing.B)   { benchmarkFigure7Orchestration(b, 0) }
func BenchmarkFigure7Orchestration7Services(b *testing.B)  { benchmarkFigure7Orchestration(b, 2) }
func BenchmarkFigure7Orchestration31Services(b *testing.B) { benchmarkFigure7Orchestration(b, 4) }

func benchmarkFigure7Assertions(b *testing.B, depth int) {
	app, runner := benchTree(b, depth)
	// One warm pass of traffic so assertions have observations to read.
	if _, err := loadgen.Run(app.EntryURL(), loadgen.Options{N: 100, Concurrency: 8}); err != nil {
		b.Fatal(err)
	}
	c := runner.Checker()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, svc := range app.Services() {
			if _, err := c.HasTimeouts(svc, time.Minute, "test-*"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFigure7Assertions1Service(b *testing.B)   { benchmarkFigure7Assertions(b, 0) }
func BenchmarkFigure7Assertions7Services(b *testing.B)  { benchmarkFigure7Assertions(b, 2) }
func BenchmarkFigure7Assertions31Services(b *testing.B) { benchmarkFigure7Assertions(b, 4) }

// ---- Figure 8: rule-matching overhead ----

func benchmarkFigure8Match(b *testing.B, count int) {
	m := rules.NewMatcher(rand.New(rand.NewSource(1)))
	for i := 0; i < count; i++ {
		if err := m.Install(rules.Rule{
			ID: fmt.Sprintf("r%d", i), Src: "client", Dst: "server",
			Action: rules.ActionDelay, Pattern: fmt.Sprintf("re:^never-%d-[0-9]+$", i),
			DelayMillis: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
	msg := rules.Message{Src: "client", Dst: "server", Type: rules.OnRequest, RequestID: "test-12345"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := m.Decide(msg); d.Fired {
			b.Fatal("no rule should match")
		}
	}
}

func BenchmarkFigure8Match1Rule(b *testing.B)    { benchmarkFigure8Match(b, 1) }
func BenchmarkFigure8Match10Rules(b *testing.B)  { benchmarkFigure8Match(b, 10) }
func BenchmarkFigure8Match50Rules(b *testing.B)  { benchmarkFigure8Match(b, 50) }
func BenchmarkFigure8Match200Rules(b *testing.B) { benchmarkFigure8Match(b, 200) }

func BenchmarkFigure8ProxiedRequest200Rules(b *testing.B) {
	batch := make([]rules.Rule, 0, 200)
	for i := 0; i < 200; i++ {
		batch = append(batch, rules.Rule{
			ID: fmt.Sprintf("r%d", i), Src: "client", Dst: "server",
			Action: rules.ActionDelay, Pattern: fmt.Sprintf("re:^never-%d-[0-9]+$", i),
			DelayMillis: 1,
		})
	}
	_, u := benchAgent(b, batch...)
	client := &http.Client{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doProxied(b, client, u, "test-1", false)
	}
}

// ---- Table 1 / §5: recipe translation for the outage scenarios ----

func BenchmarkTable1RecipeTranslate(b *testing.B) {
	spec := topology.MessageBus(topology.MessageBusOptions{})
	spec.RNG = rand.New(rand.NewSource(1))
	app, err := topology.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := app.Close(); err != nil {
			b.Error(err)
		}
	})
	recipe := core.Recipe{
		Name:      "cassandra-crash",
		Scenarios: []core.Scenario{core.Crash{Service: topology.CassandraService}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recipe.Translate(app.Graph); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Event store throughput (the logging pipeline both planes share) ----

func BenchmarkEventStoreLog(b *testing.B) {
	store := eventlog.NewStore()
	rec := eventlog.Record{Src: "a", Dst: "b", Kind: eventlog.KindReply, Status: 200, RequestID: "test-1"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Log(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEventStoreSelect(b *testing.B) {
	store := populateStore(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Select(eventlog.Query{Src: "a", Kind: eventlog.KindReply, IDPattern: "test-*"}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Hot-path overhaul: before/after micro-benchmarks ----
//
// Each pair measures one optimized component against its pre-overhaul
// behavior, kept callable through the UseLinearScan ablation switches.

// benchmarkMatcherDecide measures lock-free indexed decisions against the
// pre-overhaul linear scan, under parallel load (the agent decides on every
// concurrently proxied message). Rules are spread across distinct routes —
// the shape a real recipe produces — so the index visits only the probed
// route's bucket while the scan visits every rule.
func benchmarkMatcherDecide(b *testing.B, count int, linear bool) {
	m := rules.NewMatcher(rand.New(rand.NewSource(1)))
	m.UseLinearScan(linear)
	batch := make([]rules.Rule, 0, count)
	for i := 0; i < count; i++ {
		batch = append(batch, rules.Rule{
			ID: fmt.Sprintf("r%d", i), Src: fmt.Sprintf("svc-%d", i), Dst: "server",
			Action: rules.ActionDelay, Pattern: fmt.Sprintf("re:^never-%d-[0-9]+$", i),
			DelayMillis: 1,
		})
	}
	if err := m.Install(batch...); err != nil {
		b.Fatal(err)
	}
	msg := rules.Message{Src: "client", Dst: "server", Type: rules.OnRequest, RequestID: "test-12345"}
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if d := m.Decide(msg); d.Fired {
				b.Fatal("no rule should match")
			}
		}
	})
}

func BenchmarkMatcherDecideIndexed200Rules(b *testing.B) { benchmarkMatcherDecide(b, 200, false) }
func BenchmarkMatcherDecideLinear200Rules(b *testing.B)  { benchmarkMatcherDecide(b, 200, true) }
func BenchmarkMatcherDecideIndexed10Rules(b *testing.B)  { benchmarkMatcherDecide(b, 10, false) }
func BenchmarkMatcherDecideLinear10Rules(b *testing.B)   { benchmarkMatcherDecide(b, 10, true) }

// benchmarkStoreSelect measures an edge-filtered query against a large
// store, with and without the posting-list index — the Assertion Checker's
// access pattern (every base assertion queries one (src, dst) edge).
func benchmarkStoreSelect(b *testing.B, total, routes int, linear bool) {
	store := eventlog.NewStore()
	store.UseLinearScan(linear)
	base := time.Date(2026, 7, 4, 0, 0, 0, 0, time.UTC)
	for i := 0; i < total; i++ {
		err := store.Log(eventlog.Record{
			Timestamp: base.Add(time.Duration(i) * time.Millisecond),
			RequestID: fmt.Sprintf("test-%d", i),
			Src:       fmt.Sprintf("svc-%d", i%routes),
			Dst:       fmt.Sprintf("dst-%d", i%routes),
			Kind:      eventlog.KindReply, Status: 200, LatencyMillis: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	q := eventlog.Query{Src: "svc-42", Dst: "dst-42", Kind: eventlog.KindReply, IDPattern: "test-*"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := store.Select(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != total/routes {
			b.Fatalf("got %d records, want %d", len(recs), total/routes)
		}
	}
}

func BenchmarkStoreSelectIndexed100k(b *testing.B) { benchmarkStoreSelect(b, 100_000, 100, false) }
func BenchmarkStoreSelectLinear100k(b *testing.B)  { benchmarkStoreSelect(b, 100_000, 100, true) }
func BenchmarkStoreSelectIndexed10k(b *testing.B)  { benchmarkStoreSelect(b, 10_000, 100, false) }
func BenchmarkStoreSelectLinear10k(b *testing.B)   { benchmarkStoreSelect(b, 10_000, 100, true) }

// benchmarkProxyThroughput pushes a body of the given size through the
// agent. With no Modify rule the body streams through pooled buffers (B/op
// stays flat as size grows); a response Modify rule forces the pre-overhaul
// read-everything path for comparison.
func benchmarkProxyThroughput(b *testing.B, size int, modify bool) {
	body := strings.Repeat("x", size)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, body)
	}))
	b.Cleanup(backend.Close)
	var installed []rules.Rule
	if modify {
		installed = append(installed, rules.Rule{
			ID: "md", Src: "client", Dst: "server", On: rules.OnResponse,
			Action: rules.ActionModify, Pattern: "test-*",
			SearchBytes: "never-present", ReplaceBytes: "still-never",
		})
	}
	agent, err := proxy.New(proxy.Config{
		ServiceName: "client",
		Routes: []proxy.Route{{
			Dst:        "server",
			ListenAddr: "127.0.0.1:0",
			Targets:    []string{strings.TrimPrefix(backend.URL, "http://")},
		}},
		RNG: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		b.Fatal(err)
	}
	agent.Start()
	b.Cleanup(func() {
		if err := agent.Close(); err != nil {
			b.Error(err)
		}
	})
	if err := agent.InstallRules(installed...); err != nil {
		b.Fatal(err)
	}
	u, err := agent.RouteURL("server")
	if err != nil {
		b.Fatal(err)
	}
	client := &http.Client{}
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doProxied(b, client, u, "test-1", false)
	}
}

func BenchmarkProxyThroughputStreamed64KiB(b *testing.B) { benchmarkProxyThroughput(b, 64<<10, false) }
func BenchmarkProxyThroughputBuffered64KiB(b *testing.B) { benchmarkProxyThroughput(b, 64<<10, true) }
func BenchmarkProxyThroughputStreamed1MiB(b *testing.B)  { benchmarkProxyThroughput(b, 1<<20, false) }
func BenchmarkProxyThroughputBuffered1MiB(b *testing.B)  { benchmarkProxyThroughput(b, 1<<20, true) }

// Ablation: the prefix-structured-request-ID optimization the paper
// suggests (§7.2) applied to the 200-rule worst case.
func BenchmarkFigure8Match200RulesFastPath(b *testing.B) {
	m := rules.NewMatcher(rand.New(rand.NewSource(1)))
	m.UseLiteralPrefixFastPath(true)
	for i := 0; i < 200; i++ {
		if err := m.Install(rules.Rule{
			ID: fmt.Sprintf("r%d", i), Src: "client", Dst: "server",
			Action: rules.ActionDelay, Pattern: fmt.Sprintf("never-%d-*", i),
			DelayMillis: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
	msg := rules.Message{Src: "client", Dst: "server", Type: rules.OnRequest, RequestID: "test-12345"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := m.Decide(msg); d.Fired {
			b.Fatal("no rule should match")
		}
	}
}

// ---- Sharded store: concurrent append/select scaling ----
//
// The workloads below are the store's production shape: many agents
// batch-appending concurrently while checkers issue namespace-pinned
// queries. Shards=1 is the ablation — a plain single-mutex store behind
// the same API — so the pairs quantify what partitioning buys.

const shardBenchNamespaces = 64

func shardBenchRecord(ns, i int) eventlog.Record {
	return eventlog.Record{
		Timestamp: time.Date(2026, 7, 4, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Microsecond),
		RequestID: fmt.Sprintf("ns%d-%d", ns, i),
		Src:       "a", Dst: "b", Kind: eventlog.KindReply, Status: 200, LatencyMillis: 1,
	}
}

func newBenchShardedStore(b *testing.B, shards int) *eventlog.ShardedStore {
	b.Helper()
	ss, err := eventlog.NewShardedStore(eventlog.StoreOptions{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := ss.Close(); err != nil {
			b.Error(err)
		}
	})
	return ss
}

// populateSharded fills the store with total records spread evenly over
// the bench namespaces.
func populateSharded(b *testing.B, ss *eventlog.ShardedStore, total int) {
	b.Helper()
	const chunk = 1000
	for at := 0; at < total; at += chunk {
		recs := make([]eventlog.Record, 0, chunk)
		for i := at; i < at+chunk && i < total; i++ {
			recs = append(recs, shardBenchRecord(i%shardBenchNamespaces, i))
		}
		if err := ss.Log(recs...); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkShardedAppend: parallel writers, each appending 128-record
// batches into its own rotation of namespaces (the shard-aware client's
// flush shape). One op = one batch.
func benchmarkShardedAppend(b *testing.B, shards int) {
	ss := newBenchShardedStore(b, shards)
	var worker atomic.Int64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := int(worker.Add(1))
		i := 0
		for pb.Next() {
			recs := make([]eventlog.Record, 128)
			for j := range recs {
				recs[j] = shardBenchRecord((w*7+i+j)%shardBenchNamespaces, i+j)
			}
			if err := ss.Log(recs...); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkShardedStoreAppend1Shard(b *testing.B)  { benchmarkShardedAppend(b, 1) }
func BenchmarkShardedStoreAppend8Shards(b *testing.B) { benchmarkShardedAppend(b, 8) }

// benchmarkShardedSelect: 100k records resident, parallel namespace-pinned
// queries — the checker's per-run access pattern during a campaign.
func benchmarkShardedSelect(b *testing.B, shards int) {
	ss := newBenchShardedStore(b, shards)
	populateSharded(b, ss, 100_000)
	var worker atomic.Int64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := int(worker.Add(1))
		i := 0
		for pb.Next() {
			ns := (w*13 + i) % shardBenchNamespaces
			// Namespaces below 100k%64 hold one extra record.
			want := 100_000 / shardBenchNamespaces
			if ns < 100_000%shardBenchNamespaces {
				want++
			}
			recs, err := ss.Select(eventlog.Query{IDPattern: fmt.Sprintf("ns%d-*", ns)})
			if err != nil {
				b.Fatal(err)
			}
			if len(recs) != want {
				b.Fatalf("ns%d: got %d records, want %d", ns, len(recs), want)
			}
			i++
		}
	})
}

func BenchmarkShardedStoreSelect1Shard(b *testing.B)  { benchmarkShardedSelect(b, 1) }
func BenchmarkShardedStoreSelect8Shards(b *testing.B) { benchmarkShardedSelect(b, 8) }

// benchmarkShardedMixed: appends and pinned selects interleaved across
// workers over a 100k-record store — campaign steady state, where a
// single-mutex store serializes readers behind writers.
func benchmarkShardedMixed(b *testing.B, shards int) {
	ss := newBenchShardedStore(b, shards)
	populateSharded(b, ss, 100_000)
	var worker atomic.Int64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := int(worker.Add(1))
		i := 0
		for pb.Next() {
			ns := (w*13 + i) % shardBenchNamespaces
			if (w+i)%2 == 0 {
				recs := make([]eventlog.Record, 64)
				for j := range recs {
					recs[j] = shardBenchRecord((ns+j)%shardBenchNamespaces, i+j)
				}
				if err := ss.Log(recs...); err != nil {
					b.Fatal(err)
				}
			} else {
				if _, err := ss.Select(eventlog.Query{IDPattern: fmt.Sprintf("ns%d-*", ns), Limit: 2000}); err != nil {
					b.Fatal(err)
				}
			}
			i++
		}
	})
}

func BenchmarkShardedStoreMixed1Shard(b *testing.B)  { benchmarkShardedMixed(b, 1) }
func BenchmarkShardedStoreMixed8Shards(b *testing.B) { benchmarkShardedMixed(b, 8) }

// benchmarkWALAppend: the durable append path (WAL to the kernel before
// ack, no fsync wait) against the volatile one.
func benchmarkWALAppend(b *testing.B, dataDir bool) {
	opts := eventlog.StoreOptions{Shards: 8, Fsync: eventlog.FsyncNever}
	if dataDir {
		opts.DataDir = b.TempDir()
	}
	ss, err := eventlog.NewShardedStore(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := ss.Close(); err != nil {
			b.Error(err)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs := make([]eventlog.Record, 128)
		for j := range recs {
			recs[j] = shardBenchRecord((i+j)%shardBenchNamespaces, i+j)
		}
		if err := ss.Log(recs...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedStoreAppendVolatile(b *testing.B) { benchmarkWALAppend(b, false) }
func BenchmarkShardedStoreAppendWAL(b *testing.B)      { benchmarkWALAppend(b, true) }
