package gremlin_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gremlin"
)

// recipeGraphs maps each shipped recipe to the application it targets, so
// every file under examples/recipes/ is translated against a graph with
// the shape of the matching prefab topology.
var recipeGraphs = map[string][]gremlin.GraphEdge{
	"crash-circuit-breaker.json": {
		{Src: "user", Dst: "serviceA"}, {Src: "serviceA", Dst: "serviceB"},
	},
	"overload-bounded-retries.json": {
		{Src: "user", Dst: "serviceA"}, {Src: "serviceA", Dst: "serviceB"},
	},
	"database-overload.json": {
		{Src: "user", Dst: "wordpress"},
		{Src: "wordpress", Dst: "elasticsearch"},
		{Src: "wordpress", Dst: "mysql"},
	},
	"partition.json": {
		{Src: "user", Dst: "wordpress"},
		{Src: "wordpress", Dst: "elasticsearch"},
		{Src: "wordpress", Dst: "mysql"},
	},
}

// TestExampleRecipesRoundTrip loads every shipped recipe file through the
// public serialization path and translates it against its topology: the
// files are living documentation for the wire format and must keep
// parsing, translating to valid rules, and surviving a JSON round trip.
func TestExampleRecipesRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("examples", "recipes", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("found only %d recipe files: %v", len(files), files)
	}

	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			edges, ok := recipeGraphs[filepath.Base(path)]
			if !ok {
				t.Fatalf("no graph registered for %s — add it to recipeGraphs", path)
			}
			g := gremlin.GraphFromEdges(edges)

			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			recipe, err := gremlin.ParseRecipe(raw)
			if err != nil {
				t.Fatal(err)
			}
			if recipe.Name == "" || len(recipe.Scenarios) == 0 || len(recipe.Checks) == 0 {
				t.Fatalf("recipe = %+v, want name, scenarios, and checks", recipe)
			}

			ruleset, err := recipe.Translate(g)
			if err != nil {
				t.Fatal(err)
			}
			if len(ruleset) == 0 {
				t.Fatal("translation produced no rules")
			}
			seen := map[string]bool{}
			for _, r := range ruleset {
				if r.ID == "" || seen[r.ID] {
					t.Fatalf("rule ID %q empty or duplicated in %+v", r.ID, ruleset)
				}
				seen[r.ID] = true
				if !g.HasEdge(r.Src, r.Dst) {
					t.Fatalf("rule targets %s->%s, not an edge of the graph", r.Src, r.Dst)
				}
				if r.Pattern != gremlin.DefaultPattern {
					t.Fatalf("rule pattern = %q, want the test-traffic default", r.Pattern)
				}
			}

			// The translated rules survive the agent wire format.
			wire, err := json.Marshal(ruleset)
			if err != nil {
				t.Fatal(err)
			}
			var back []gremlin.Rule
			if err := json.Unmarshal(wire, &back); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ruleset, back) {
				t.Fatalf("rules changed across JSON round trip:\n%+v\n%+v", ruleset, back)
			}
		})
	}
}
