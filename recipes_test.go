package gremlin_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gremlin"
)

// recipeGraphs maps each shipped recipe to the application it targets, so
// every file under examples/recipes/ is translated against a graph with
// the shape of the matching prefab topology.
var recipeGraphs = map[string][]gremlin.GraphEdge{
	"crash-circuit-breaker.json": {
		{Src: "user", Dst: "serviceA"}, {Src: "serviceA", Dst: "serviceB"},
	},
	"overload-bounded-retries.json": {
		{Src: "user", Dst: "serviceA"}, {Src: "serviceA", Dst: "serviceB"},
	},
	"database-overload.json": {
		{Src: "user", Dst: "wordpress"},
		{Src: "wordpress", Dst: "elasticsearch"},
		{Src: "wordpress", Dst: "mysql"},
	},
	"partition.json": {
		{Src: "user", Dst: "wordpress"},
		{Src: "wordpress", Dst: "elasticsearch"},
		{Src: "wordpress", Dst: "mysql"},
	},
}

// TestExampleRecipesRoundTrip loads every shipped recipe file through the
// public serialization path and translates it against its topology: the
// files are living documentation for the wire format and must keep
// parsing, translating to valid rules, and surviving a JSON round trip.
func TestExampleRecipesRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("examples", "recipes", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("found only %d recipe files: %v", len(files), files)
	}

	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			edges, ok := recipeGraphs[filepath.Base(path)]
			if !ok {
				t.Fatalf("no graph registered for %s — add it to recipeGraphs", path)
			}
			g := gremlin.GraphFromEdges(edges)

			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			recipe, err := gremlin.ParseRecipe(raw)
			if err != nil {
				t.Fatal(err)
			}
			if recipe.Name == "" || len(recipe.Scenarios) == 0 || len(recipe.Checks) == 0 {
				t.Fatalf("recipe = %+v, want name, scenarios, and checks", recipe)
			}

			ruleset, err := recipe.Translate(g)
			if err != nil {
				t.Fatal(err)
			}
			if len(ruleset) == 0 {
				t.Fatal("translation produced no rules")
			}
			seen := map[string]bool{}
			for _, r := range ruleset {
				if r.ID == "" || seen[r.ID] {
					t.Fatalf("rule ID %q empty or duplicated in %+v", r.ID, ruleset)
				}
				seen[r.ID] = true
				if !g.HasEdge(r.Src, r.Dst) {
					t.Fatalf("rule targets %s->%s, not an edge of the graph", r.Src, r.Dst)
				}
				if r.Pattern != gremlin.DefaultPattern {
					t.Fatalf("rule pattern = %q, want the test-traffic default", r.Pattern)
				}
				// Pre-L4 recipes must keep producing pure HTTP rules.
				if r.Layer != "" || r.EffectiveLayer() != gremlin.LayerHTTP {
					t.Fatalf("rule %s layer = %q, want implicit http", r.ID, r.Layer)
				}
			}

			// The translated rules survive the agent wire format, and the
			// wire form is byte-identical to what pre-L4/pre-explore builds
			// emitted: no layer (or other stream-only) keys, and no
			// callPath key, appear for plain edge-scoped rules.
			wire, err := json.Marshal(ruleset)
			if err != nil {
				t.Fatal(err)
			}
			for _, key := range []string{"layer", "rateBytesPerSec", "abortAfterBytes", "severMode", "callPath"} {
				if strings.Contains(string(wire), `"`+key+`"`) {
					t.Fatalf("HTTP ruleset wire form leaked %q: %s", key, wire)
				}
			}
			var back []gremlin.Rule
			if err := json.Unmarshal(wire, &back); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ruleset, back) {
				t.Fatalf("rules changed across JSON round trip:\n%+v\n%+v", ruleset, back)
			}
		})
	}
}

// TestPreL4RuleWireCompat feeds a rule JSON captured before the Layer
// field existed through the current decoder: it must parse with an empty
// (implicitly http) layer and marshal back without inventing new keys.
func TestPreL4RuleWireCompat(t *testing.T) {
	old := `{"id":"r1","src":"web","dst":"db","action":"abort","pattern":"test-*","errorCode":503}`
	var r gremlin.Rule
	if err := json.Unmarshal([]byte(old), &r); err != nil {
		t.Fatal(err)
	}
	if r.Layer != "" || r.EffectiveLayer() != gremlin.LayerHTTP {
		t.Fatalf("layer = %q / %q, want empty / http", r.Layer, r.EffectiveLayer())
	}
	wire, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back gremlin.Rule
	if err := json.Unmarshal(wire, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Fatalf("round trip changed rule:\n%+v\n%+v", r, back)
	}
	if strings.Contains(string(wire), "layer") {
		t.Fatalf("marshaling a pre-L4 rule added a layer key: %s", wire)
	}
	if strings.Contains(string(wire), "callPath") {
		t.Fatalf("marshaling a pre-explore rule added a callPath key: %s", wire)
	}
}
