package gremlin_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"gremlin"
	"gremlin/internal/agentapi"
	"gremlin/internal/core"
	"gremlin/internal/loadgen"
	"gremlin/internal/orchestrator"
	"gremlin/internal/rules"
	"gremlin/internal/topology"
)

// These tests exercise the declarative control plane end to end against a
// live topology: real agents with real control APIs, reconciled by a real
// orchestrator — the acceptance scenarios for drift repair, lease
// reclamation, and idempotent rule-set application.

func buildApp(t *testing.T) *topology.App {
	t.Helper()
	spec := topology.TwoServices(5, time.Millisecond)
	spec.RNG = rand.New(rand.NewSource(7))
	app, err := topology.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := app.Close(); err != nil {
			t.Error(err)
		}
	})
	return app
}

// TestE2EAntiEntropyRepairsRestartedAgent stages a recipe's rules, wipes an
// agent out-of-band (what a crash-restart produces: the agent comes back
// with no rules), and verifies that Drift reports the divergence and the
// anti-entropy loop restores the rules without any help from the recipe.
func TestE2EAntiEntropyRepairsRestartedAgent(t *testing.T) {
	app := buildApp(t)
	ctx := context.Background()
	orch := orchestrator.New(app.Registry, orchestrator.WithRetry(3, 5*time.Millisecond))
	runner := core.NewRunner(app.Graph, orch, app.Store, app.Store)

	report, err := runner.Run(ctx, gremlin.Recipe{
		Name:      "staged",
		Scenarios: []gremlin.Scenario{gremlin.Overload{Service: "serviceB", AbortFraction: 1}},
		Checks:    []gremlin.Check{gremlin.ExpectBoundedRetries("serviceA", "serviceB", 5)},
	}, core.RunOptions{
		Owner:     "recipe-1",
		KeepRules: true, // leave the faults staged: the run is "mid-recipe"
		ClearLogs: true,
		Load: func() error {
			_, err := loadgen.Run(app.EntryURL(), loadgen.Options{N: 1})
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Passed() {
		t.Fatalf("recipe failed:\n%s", report)
	}

	ctl := agentapi.New(app.Agent("serviceA").ControlURL(), nil)
	body, err := ctl.GetRuleSet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(body.Rules) == 0 {
		t.Fatal("staged recipe installed no rules on serviceA's agent")
	}

	// "Restart" the agent: its rule state is gone.
	if _, err := ctl.ClearRules(ctx); err != nil {
		t.Fatal(err)
	}

	rep, err := orch.Drift(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Converged() {
		t.Fatalf("drift after agent wipe should not be converged:\n%s", rep.Describe())
	}

	stop := orch.StartAntiEntropy(10 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep, err = orch.Drift(ctx)
		if err == nil && rep.Converged() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not reconverge:\n%s", rep.Describe())
		}
		time.Sleep(10 * time.Millisecond)
	}
	body, err = ctl.GetRuleSet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(body.Rules) == 0 {
		t.Fatal("anti-entropy did not restore the staged rules")
	}
	stop()

	// Withdrawing the owner converges the fleet back to empty.
	rep, err = orch.RemoveOwner(ctx, "recipe-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	body, err = ctl.GetRuleSet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(body.Rules) != 0 {
		t.Fatalf("rules left after revert: %d", len(body.Rules))
	}
}

// TestE2ELeasedRulesExpireWithoutControlPlane kills a "campaign" the
// rudest possible way — nobody renews its lease and no control plane is
// left running — and verifies the agents reclaim the orphaned faults all
// by themselves, and that the orchestrator's own lease bookkeeping expires
// the owner on its next pass.
func TestE2ELeasedRulesExpireWithoutControlPlane(t *testing.T) {
	app := buildApp(t)
	ctx := context.Background()
	orch := orchestrator.New(app.Registry, orchestrator.WithRetry(3, 5*time.Millisecond))

	ruleset := []rules.Rule{{
		ID: "lease-1", Src: "serviceA", Dst: "serviceB",
		Action: rules.ActionAbort, Pattern: "test-*", ErrorCode: 503,
	}}
	if _, err := orch.ApplyOwned(ctx, "campaign-1", 150*time.Millisecond, ruleset); err != nil {
		t.Fatal(err)
	}

	ctl := agentapi.New(app.Agent("serviceA").ControlURL(), nil)
	body, err := ctl.GetRuleSet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(body.Rules) != 1 || !body.Leased {
		t.Fatalf("want 1 leased rule, got %d (leased=%v)", len(body.Rules), body.Leased)
	}

	// The campaign is dead: no renewal, no anti-entropy. The agent's own
	// TTL is the last line of defence.
	deadline := time.Now().Add(5 * time.Second)
	for {
		body, err = ctl.GetRuleSet(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(body.Rules) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("agent never expired the leased rules: %d still installed", len(body.Rules))
		}
		time.Sleep(10 * time.Millisecond)
	}
	info, err := ctl.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.RulesetExpirations == 0 {
		t.Fatal("agent should count its self-expiry")
	}

	// The orchestrator's next pass notices the lapsed lease too: the owner
	// is gone and renewals are refused.
	rep, err := orch.Reconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range rep.Expired {
		if name == "campaign-1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("reconcile should report the lapsed lease, got %v", rep.Expired)
	}
	if owners := orch.Owners(); len(owners) != 0 {
		t.Fatalf("owners after expiry: %v", owners)
	}
	if err := orch.RenewLease("campaign-1", time.Second); err == nil {
		t.Fatal("renewing an expired lease should fail")
	}
}

// TestE2ERuleSetPutIdempotent re-sends an identical RuleSet to a live
// agent and verifies the second application is a pure no-op: same
// generation, Changed=false, and — crucially — no matcher rebuild, so a
// chatty reconciler costs converged agents nothing on the hot path.
func TestE2ERuleSetPutIdempotent(t *testing.T) {
	app := buildApp(t)
	ctx := context.Background()
	ctl := agentapi.New(app.Agent("serviceA").ControlURL(), nil)

	rs := rules.RuleSet{Generation: 1, Rules: []rules.Rule{{
		ID: "idem-1", Src: "serviceA", Dst: "serviceB",
		Action: rules.ActionAbort, Pattern: "test-*", ErrorCode: 503,
	}}}
	st, err := ctl.PutRuleSet(ctx, rs, rules.NoMatch)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Changed || st.Generation != 1 || st.Rules != 1 {
		t.Fatalf("first apply: %+v", st)
	}

	rebuilds := app.Agent("serviceA").Matcher().Rebuilds()
	st2, err := ctl.PutRuleSet(ctx, rs, rules.NoMatch)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Changed {
		t.Fatalf("re-apply should be a no-op: %+v", st2)
	}
	if st2.Generation != st.Generation || st2.Hash != st.Hash {
		t.Fatalf("re-apply moved the rule set: %+v vs %+v", st2, st)
	}
	if got := app.Agent("serviceA").Matcher().Rebuilds(); got != rebuilds {
		t.Fatalf("idempotent re-apply rebuilt the matcher: %d -> %d", rebuilds, got)
	}
}
