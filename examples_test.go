package gremlin_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// runnableExamples is every example program TestExamplesRun executes end
// to end. exemptExamples lists programs deliberately not run here, with
// the reason; everything else under examples/ must appear in one of the
// two (TestEveryExampleRegistered enforces it).
var runnableExamples = []string{
	"./examples/quickstart",
	"./examples/campaign",
	"./examples/enterprise",
	"./examples/explore",
	"./examples/fleet",
	"./examples/l4",
	"./examples/outages",
	"./examples/pubsub",
	"./examples/shadow",
	"./examples/storecrash",
	"./examples/telemetry",
	"./examples/tracing",
	"./examples/watch",
}

var exemptExamples = map[string]string{
	"wordpress": "its Figure 5/6 sweeps take ~45 s; internal/experiments covers the same flows",
}

// TestExamplesRun executes each example program end to end and requires a
// clean exit — the examples are living documentation and must not rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn full topologies; skipped with -short")
	}
	for _, dir := range runnableExamples {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", dir)
			cmd.Dir = "."
			done := make(chan error, 1)
			var out []byte
			go func() {
				var err error
				out, err = cmd.CombinedOutput()
				done <- err
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("%s failed: %v\n%s", dir, err, out)
				}
			case <-time.After(3 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatalf("%s timed out", dir)
			}
		})
	}
}

// TestEveryExampleRegistered walks examples/ and fails when a directory
// holding a Go program is neither executed by TestExamplesRun nor
// explicitly exempted — new examples can't silently dodge CI.
func TestEveryExampleRegistered(t *testing.T) {
	registered := map[string]bool{}
	for _, dir := range runnableExamples {
		name := filepath.Base(dir)
		registered[name] = true
		if _, err := os.Stat(filepath.Join("examples", name)); err != nil {
			t.Errorf("registered example %s does not exist: %v", dir, err)
		}
	}
	for name := range exemptExamples {
		if registered[name] {
			t.Errorf("example %s is both runnable and exempt", name)
		}
	}

	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join("examples", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		hasGo := false
		for _, f := range files {
			if strings.HasSuffix(f.Name(), ".go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			continue // data-only directories (e.g. recipe files) need no runner
		}
		if _, exempt := exemptExamples[e.Name()]; exempt || registered[e.Name()] {
			continue
		}
		t.Errorf("examples/%s is not registered in runnableExamples (or exemptExamples with a reason)", e.Name())
	}
}
