package gremlin_test

import (
	"os/exec"
	"testing"
	"time"
)

// TestExamplesRun executes each example program end to end and requires a
// clean exit — the examples are living documentation and must not rot.
// The wordpress example is exercised separately (its Figure 5/6 sweeps
// take ~45 s; internal/experiments covers the same flows).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn full topologies; skipped with -short")
	}
	examples := []string{
		"./examples/quickstart",
		"./examples/campaign",
		"./examples/enterprise",
		"./examples/outages",
		"./examples/pubsub",
		"./examples/shadow",
		"./examples/tracing",
		"./examples/watch",
	}
	for _, dir := range examples {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", dir)
			cmd.Dir = "."
			done := make(chan error, 1)
			var out []byte
			go func() {
				var err error
				out, err = cmd.CombinedOutput()
				done <- err
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("%s failed: %v\n%s", dir, err, out)
				}
			case <-time.After(3 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatalf("%s timed out", dir)
			}
		})
	}
}
