GO ?= go

.PHONY: all build test race vet cover bench bench-json bench-figures campaign-smoke trace-smoke store-smoke l4-smoke explore-smoke telemetry-smoke fleet-smoke check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Per-package statement coverage, lowest first, with the module-wide
# figure last. Advisory: low coverage is a signal, not a gate.
cover:
	$(GO) test -count=1 -cover -coverprofile=cover.out ./... \
		| grep -E 'coverage: [0-9.]+% of statements' \
		| sed -E 's/^ok +([^ ]+).*coverage: ([0-9.]+)%.*/\2%  \1/' \
		| sort -n
	@echo "total: $$($(GO) tool cover -func=cover.out | tail -n 1 | awk '{print $$3}')"
	@rm -f cover.out

# Before/after micro-benchmarks for the hot paths (matcher, store, proxy)
# plus the sharded-vs-single store pairs.
bench:
	$(GO) test -run xxx -bench 'MatcherDecide|StoreSelect|ProxyThroughput|ShardedStore' -benchtime 0.5s .

# The same hot-path benchmarks, parsed into a committed JSON snapshot so
# runs can be diffed across PRs.
bench-json:
	$(GO) test -run xxx -bench 'MatcherDecide|StoreSelect|ProxyThroughput|ShardedStore' -benchtime 0.5s . \
		| $(GO) run ./internal/tools/benchjson > BENCH_3.json

# The paper's full evaluation series (Tables 1-3, Figures 5-8).
bench-figures:
	$(GO) run ./cmd/gremlin-bench

# A complete fault-space campaign on an in-process 7-service tree:
# enumeration, parallel isolated runs, signature pruning, scorecard.
campaign-smoke:
	$(GO) run ./examples/campaign

# End-to-end causal-tracing smoke: spans propagate through live agents,
# the waterfall's critical path crosses a 100ms-delayed edge, and the
# inflation is attributed to the injected rule. Exits non-zero otherwise.
trace-smoke:
	$(GO) run ./examples/tracing

# Crash-recovery smoke: a real gremlin-logstore process is SIGKILLed
# mid-stream; the restart must replay every acknowledged record
# byte-exact, and compaction must reclaim cleared namespaces' WAL space.
store-smoke:
	$(GO) run ./examples/storecrash

# Stream-plane smoke: faults on a raw TCP edge, observed from the client
# side. A campaign enumerates the stream grid over a protocol:tcp edge,
# a mid-stream sever and a bandwidth throttle are felt by a live client,
# and the relay's conn records attribute every fault. Exits non-zero on
# any mismatch.
l4-smoke:
	$(GO) run ./examples/l4

# Coverage-guided search smoke: the explorer must discover the fallback
# branch that never executes fault-free, exercise it with the revealing
# aborts replayed as prerequisites, prune EI-equivalent duplicates, and
# resume a killed session from the journal without re-running completed
# points. Self-verifying; exits non-zero on any missed claim.
explore-smoke:
	$(GO) run ./examples/explore

# Telemetry-plane smoke: an out-of-band scraper over a live fleet, a
# 150ms delay unit whose fault-window p99 must land strictly above
# baseline with a finite recovery time, a scrape-only quiet period that
# must add zero event-log records, journal round-trip into the
# scorecard's Telemetry section, and a gremlin-top frame over the live
# fleet. Self-verifying; exits non-zero on any missed claim.
telemetry-smoke:
	$(GO) run ./examples/telemetry

# Dynamic-fleet smoke: a generated 100-service multi-replica fleet under
# a lease-based registry and open-loop Poisson load. A killed replica
# must produce a visible error window, be drained from every dependent's
# load-balancer pool by active health checks (with the registry marking
# it down), and the error ratio must recover; a short-TTL ghost instance
# must be targeted by the discovery-triggered reconciler while alive and
# dropped once its lease lapses. Self-verifying; exits non-zero on any
# missed claim.
fleet-smoke:
	$(GO) run ./examples/fleet

check: build vet test race
