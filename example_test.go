package gremlin_test

import (
	"fmt"
	"time"

	"gremlin"
)

// Example_recipeTranslation shows the Recipe Translator in isolation: a
// high-level Overload scenario decomposed into primitive Abort/Delay rules
// over the application graph (no network involved).
func Example_recipeTranslation() {
	g := gremlin.NewGraph()
	g.AddEdge("serviceA", "serviceB")

	recipe := gremlin.Recipe{
		Name:      "overload-b",
		Scenarios: []gremlin.Scenario{gremlin.Overload{Service: "serviceB"}},
	}
	rules, err := recipe.Translate(g)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, r := range rules {
		fmt.Println(r)
	}
	// Output:
	// abort[overload-b-overload-abort-1] serviceA->serviceB on=request pattern="test-*" p=0.25 code=503
	// delay[overload-b-overload-delay-2] serviceA->serviceB on=request pattern="test-*" p=1.00 interval=100ms
}

// Example_crashScenario shows Crash fanning out to every dependent of the
// failed service with TCP-level connection resets (Error=-1 in the paper).
func Example_crashScenario() {
	g := gremlin.NewGraph()
	g.AddEdge("web", "db")
	g.AddEdge("worker", "db")

	rules, err := gremlin.Recipe{
		Name:      "db-crash",
		Scenarios: []gremlin.Scenario{gremlin.Crash{Service: "db"}},
	}.Translate(g)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, r := range rules {
		fmt.Printf("%s->%s code=%d\n", r.Src, r.Dst, r.ErrorCode)
	}
	// Output:
	// web->db code=-1
	// worker->db code=-1
}

// Example_generateRecipes shows the automatic test-plan generation (§9):
// recipes derived from the application graph alone.
func Example_generateRecipes() {
	g := gremlin.NewGraph()
	g.AddEdge("frontend", "backend")
	g.AddEdge("backend", "db")

	recipes, err := gremlin.GenerateRecipes(g, gremlin.GenerateOptions{
		MaxRetries:       5,
		MaxLatency:       time.Second,
		BreakerThreshold: 5,
		BreakerQuiet:     10 * time.Second,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, r := range recipes {
		fmt.Printf("%s (%d checks)\n", r.Name, len(r.Checks))
	}
	// Output:
	// auto-overload-backend (2 checks)
	// auto-overload-db (2 checks)
	// auto-crash-backend (1 checks)
	// auto-crash-db (1 checks)
}

// Example_parseRecipe shows recipes-as-data: the JSON wire form executable
// by gremlin-ctl run.
func Example_parseRecipe() {
	recipe, err := gremlin.ParseRecipe([]byte(`{
	  "name": "db-overload",
	  "scenarios": [{"type": "overload", "service": "db"}],
	  "checks":    [{"type": "circuitBreaker", "src": "web", "dst": "db",
	                 "threshold": 5, "tdeltaMillis": 30000}]
	}`))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s: %d scenario(s), %d check(s)\n", recipe.Name, len(recipe.Scenarios), len(recipe.Checks))
	// Output:
	// db-overload: 1 scenario(s), 1 check(s)
}
