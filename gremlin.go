// Package gremlin is the public API of the Gremlin resilience-testing
// framework — a from-scratch Go reproduction of "Gremlin: Systematic
// Resilience Testing of Microservices" (Heorhiadi et al., ICDCS 2016).
//
// Gremlin stages failures by manipulating the network interactions between
// microservices and validates the application's recovery behaviour from
// the same vantage point. It is split, SDN-style, into:
//
//   - a data plane of Gremlin agents (sidecar Layer-7 proxies) that
//     intercept inter-service messages, apply Abort/Delay/Modify faults to
//     matching request flows, and log every observation; and
//   - a control plane — the Recipe Translator (Scenario/Recipe), the
//     Failure Orchestrator (Orchestrator), and the Assertion Checker
//     (Checker) — that turns high-level outage descriptions into agent
//     rules and validates assertions against the collected event logs.
//
// # Quickstart
//
// Run an agent next to each microservice, point the service's dependency
// URLs at the agent's local routes, and execute a recipe:
//
//	runner := gremlin.NewRunner(appGraph, gremlin.NewOrchestrator(reg), store, store)
//	report, err := runner.Run(ctx, gremlin.Recipe{
//	    Name:      "overload-b",
//	    Scenarios: []gremlin.Scenario{gremlin.Overload{Service: "serviceB"}},
//	    Checks:    []gremlin.Check{gremlin.ExpectBoundedRetries("serviceA", "serviceB", 5)},
//	}, gremlin.RunOptions{Load: injectTestTraffic})
//
// See examples/ for complete programs and DESIGN.md for the system map.
package gremlin

import (
	"context"

	"gremlin/internal/agentapi"
	"gremlin/internal/campaign"
	"gremlin/internal/checker"
	"gremlin/internal/core"
	"gremlin/internal/eventlog"
	"gremlin/internal/explore"
	"gremlin/internal/graph"
	"gremlin/internal/orchestrator"
	"gremlin/internal/proxy"
	"gremlin/internal/registry"
	"gremlin/internal/rules"
	"gremlin/internal/telemetry"
)

// DefaultPattern is the request-ID pattern recipes default to, confining
// fault injection to synthetic test traffic ("test-*").
const DefaultPattern = core.DefaultPattern

// HeaderRequestID is the header carrying the request ID between services.
const HeaderRequestID = "X-Gremlin-ID"

// Data-plane types: fault-injection rules and the agent (sidecar proxy).
type (
	// Rule is a primitive fault-injection rule (Abort/Delay/Modify) as
	// installed on an agent.
	Rule = rules.Rule

	// RuleSet is an agent's complete desired rule state: a versioned,
	// content-hashed set applied as an idempotent atomic swap, optionally
	// leased with an agent-side TTL.
	RuleSet = rules.RuleSet

	// RuleSetStatus reports an agent's current generation, content hash
	// and rule count.
	RuleSetStatus = rules.RuleSetStatus

	// Agent is a running Gremlin agent: per-dependency proxy listeners
	// plus a REST control API.
	Agent = proxy.Agent

	// AgentConfig configures an Agent.
	AgentConfig = proxy.Config

	// Route maps one outbound dependency of the co-located microservice.
	Route = proxy.Route

	// L4Route maps one outbound raw-TCP dependency, served by a stream
	// relay that injects connection-level faults (the L4 plane).
	L4Route = proxy.L4Route

	// Layer selects which plane a rule acts on: LayerHTTP (the L7 proxy,
	// the default) or LayerL4 (the stream relays).
	Layer = rules.Layer

	// AgentClient drives a remote agent's control API.
	AgentClient = agentapi.Client
)

// Fault actions and message types.
const (
	ActionAbort  = rules.ActionAbort
	ActionDelay  = rules.ActionDelay
	ActionModify = rules.ActionModify

	// Stream (L4) fault actions.
	ActionSever    = rules.ActionSever
	ActionHalfOpen = rules.ActionHalfOpen
	ActionThrottle = rules.ActionThrottle
	ActionJitter   = rules.ActionJitter

	// Rule layers.
	LayerHTTP = rules.LayerHTTP
	LayerL4   = rules.LayerL4

	// Sever modes.
	SeverRST = rules.SeverRST
	SeverFIN = rules.SeverFIN

	OnRequest  = rules.OnRequest
	OnResponse = rules.OnResponse

	// AbortSeverConnection as a Rule.ErrorCode severs the TCP connection
	// instead of returning an HTTP error (crash emulation).
	AbortSeverConnection = rules.AbortSeverConnection

	// NoMatch, passed as the If-Match argument of AgentClient.PutRuleSet,
	// disables the compare-and-swap precondition.
	NoMatch = rules.NoMatch
)

// NewAgent creates a Gremlin agent. Call Start to begin proxying and Close
// to shut down.
func NewAgent(cfg AgentConfig) (*Agent, error) { return proxy.New(cfg) }

// NewAgentClient returns a client for an agent's REST control API.
func NewAgentClient(controlURL string) *AgentClient { return agentapi.New(controlURL, nil) }

// Event-log types: the centralized observation store.
type (
	// Record is one observation (request or reply) logged by an agent.
	Record = eventlog.Record

	// Query selects records from the store.
	Query = eventlog.Query

	// Store is the in-memory event store.
	Store = eventlog.Store

	// StoreServer exposes a Store over HTTP (the logstash/Elasticsearch
	// substitute).
	StoreServer = eventlog.Server

	// StoreClient ships records to and queries a remote StoreServer.
	StoreClient = eventlog.Client

	// Sink consumes observation records (agents log through it).
	Sink = eventlog.Sink

	// Source answers record queries (the checker reads through it).
	Source = eventlog.Source

	// ShardedStore is the sharded, optionally WAL-backed event store:
	// records partition across shards by request-ID namespace, reads
	// scatter-gather with a time-sorted merge, and a data directory makes
	// every acknowledged append crash-durable.
	ShardedStore = eventlog.ShardedStore

	// StoreOptions configures a ShardedStore (shard count, WAL directory,
	// fsync policy, segment size, compaction threshold).
	StoreOptions = eventlog.StoreOptions
)

// Record kinds.
const (
	KindRequest = eventlog.KindRequest
	KindReply   = eventlog.KindReply

	// Stream-connection lifecycle records emitted by the L4 relays.
	KindConnOpen  = eventlog.KindConnOpen
	KindConnClose = eventlog.KindConnClose
)

// StoreInfo is a store's partition topology and WAL durability
// configuration, as reported by GET /v1/info.
type StoreInfo = eventlog.StoreInfo

// NewStore creates an empty in-memory event store.
func NewStore() *Store { return eventlog.NewStore() }

// NewShardedStore creates a sharded event store. The zero StoreOptions
// value yields a single volatile shard — equivalent to NewStore; set
// Shards and DataDir to scale and persist it.
func NewShardedStore(opts StoreOptions) (*ShardedStore, error) {
	return eventlog.NewShardedStore(opts)
}

// NewStoreServer starts an event-store server on addr ("127.0.0.1:0" for
// an ephemeral port). store is either a *Store or a *ShardedStore.
func NewStoreServer(addr string, store eventlog.StoreAPI) (*StoreServer, error) {
	return eventlog.NewServer(addr, store)
}

// NewStoreClient returns a client for a remote event store.
func NewStoreClient(baseURL string) *StoreClient { return eventlog.NewClient(baseURL, nil) }

// Application graph and registry types.
type (
	// Graph is the logical application graph (caller→callee edges).
	Graph = graph.Graph

	// GraphEdge is one caller→callee dependency.
	GraphEdge = graph.Edge

	// Registry resolves logical service names to physical instances and
	// their agents.
	Registry = registry.Registry

	// StaticRegistry is a fixed, thread-safe Registry.
	StaticRegistry = registry.Static

	// Instance is one physical service instance plus its agent.
	Instance = registry.Instance

	// DynamicRegistry is a lease-based Registry: instances register with
	// a TTL, stay members while heartbeats renew the lease, and expire
	// otherwise. Membership changes stream through WaitEvents.
	DynamicRegistry = registry.Dynamic

	// DynamicRegistryOptions configures a DynamicRegistry.
	DynamicRegistryOptions = registry.DynamicOptions

	// RegistryMember is one live instance plus its lease state.
	RegistryMember = registry.Member

	// RegistryEvent is one membership change (join, update, leave,
	// expire) from the registry's event ring.
	RegistryEvent = registry.Event

	// RegistryServer exposes a registry over HTTP: register, renew,
	// deregister, members, long-poll watch.
	RegistryServer = registry.Server

	// RegistryClient drives a remote RegistryServer, including the
	// Heartbeat renew loop agents run until shutdown.
	RegistryClient = registry.Client
)

// NewGraph creates an empty application graph.
func NewGraph() *Graph { return graph.New() }

// GraphFromEdges builds a graph from an edge list.
func GraphFromEdges(edges []GraphEdge) *Graph { return graph.FromEdges(edges) }

// NewRegistry builds a static registry from instances.
func NewRegistry(instances ...Instance) *StaticRegistry { return registry.NewStatic(instances...) }

// NewDynamicRegistry builds a lease-based registry. The zero options value
// uses a 10s default TTL and a 1024-event watch ring.
func NewDynamicRegistry(opts DynamicRegistryOptions) *DynamicRegistry {
	return registry.NewDynamic(opts)
}

// NewRegistryServer serves a registry over HTTP on addr ("127.0.0.1:0"
// for an ephemeral port). Dynamic-only endpoints (renew, members, watch)
// are enabled when reg is a *DynamicRegistry.
func NewRegistryServer(addr string, reg registry.Backend) (*RegistryServer, error) {
	return registry.NewServer(addr, reg)
}

// NewRegistryClient returns a client for a remote registry server.
func NewRegistryClient(baseURL string) *RegistryClient { return registry.NewClient(baseURL, nil) }

// Control-plane types: orchestrator, checker, recipes, runner.
type (
	// Orchestrator is the Failure Orchestrator: a declarative reconciler
	// that converges every agent toward the registered desired state.
	Orchestrator = orchestrator.Orchestrator

	// Applied is a handle to an applied rule set; Revert removes it.
	Applied = orchestrator.Applied

	// ReconcileReport is the outcome of one reconcile or drift pass:
	// per-agent sync state, unresolved services, expired leases.
	ReconcileReport = orchestrator.Report

	// Checker is the Assertion Checker over an event-log source.
	Checker = checker.Checker

	// CheckResult is the outcome of one assertion.
	CheckResult = checker.Result

	// RList is a time-ordered record list returned by checker queries.
	RList = checker.RList

	// Scenario is a high-level failure scenario.
	Scenario = core.Scenario

	// Recipe is a complete test: scenarios plus assertions.
	Recipe = core.Recipe

	// Check is one assertion evaluated after load injection.
	Check = core.Check

	// Runner executes recipes end to end.
	Runner = core.Runner

	// RunOptions tunes recipe execution.
	RunOptions = core.RunOptions

	// Report is the outcome of one recipe run, with per-phase timings.
	Report = core.Report
)

// Failure scenarios (paper §5). Each decomposes into primitive rules over
// the application graph.
type (
	// Abort aborts matching messages on one edge.
	Abort = core.Abort

	// Delay delays matching messages on one edge.
	Delay = core.Delay

	// Modify rewrites bytes in matching messages on one edge.
	Modify = core.Modify

	// Disconnect returns an HTTP error for every request on one edge.
	Disconnect = core.Disconnect

	// Crash severs connections from all dependents of a service.
	Crash = core.Crash

	// Hang delays all requests to a service by a very long interval.
	Hang = core.Hang

	// Overload aborts a fraction of requests to a service and delays the
	// rest.
	Overload = core.Overload

	// FakeSuccess corrupts a service's successful responses.
	FakeSuccess = core.FakeSuccess

	// DegradeNetwork delays every edge of the application graph.
	DegradeNetwork = core.DegradeNetwork

	// Partition severs all edges crossing a cut of the graph.
	Partition = core.Partition

	// StreamSever terminates matching stream connections mid-transfer
	// (RST or FIN), optionally after a byte threshold.
	StreamSever = core.StreamSever

	// StreamHalfOpen stops relaying one direction of matching stream
	// connections while keeping both sockets open.
	StreamHalfOpen = core.StreamHalfOpen

	// StreamThrottle paces one direction of matching stream connections
	// with a token bucket.
	StreamThrottle = core.StreamThrottle

	// StreamJitter delays each relayed chunk of matching stream
	// connections.
	StreamJitter = core.StreamJitter

	// ConnectRefuse resets matching stream connections at accept.
	ConnectRefuse = core.ConnectRefuse

	// ConnectDelay holds matching stream connections before dialing the
	// upstream.
	ConnectDelay = core.ConnectDelay
)

// NewOrchestrator creates a Failure Orchestrator over a registry.
func NewOrchestrator(reg Registry) *Orchestrator { return orchestrator.New(reg) }

// NewChecker creates an Assertion Checker reading from source.
func NewChecker(source Source) *Checker { return checker.New(source) }

// NewRunner creates a recipe Runner. store may be nil if recipes never
// clear logs between steps; pass the same *Store used as the agents' sink
// for in-process deployments.
func NewRunner(g *Graph, orch *Orchestrator, source Source, store core.Clearer) *Runner {
	return core.NewRunner(g, orch, source, store)
}

// Assertion constructors (Table 3 pattern checks).
var (
	// ExpectTimeouts asserts the service answers upstreams within a bound.
	ExpectTimeouts = core.ExpectTimeouts

	// ExpectBoundedRetries asserts bounded retries on one edge.
	ExpectBoundedRetries = core.ExpectBoundedRetries

	// ExpectCircuitBreaker asserts a breaker opens after repeated failures.
	ExpectCircuitBreaker = core.ExpectCircuitBreaker

	// ExpectBulkhead asserts healthy dependencies keep their request rate
	// while one dependency is slow.
	ExpectBulkhead = core.ExpectBulkhead

	// ExpectNoCalls asserts an edge carried no test traffic.
	ExpectNoCalls = core.ExpectNoCalls

	// ExpectFallback asserts the service kept succeeding during the outage.
	ExpectFallback = core.ExpectFallback

	// ExpectExponentialBackoff asserts retry gaps grow between attempts.
	ExpectExponentialBackoff = core.ExpectExponentialBackoff

	// ExpectCustom wraps an arbitrary closure as a named assertion.
	ExpectCustom = core.ExpectCustom

	// ExpectStreamFaults asserts that staged L4 faults were actually
	// actuated on an edge, attributed by fault-rule-ID prefix.
	ExpectStreamFaults = core.ExpectStreamFaults
)

// GenerateOptions tunes GenerateRecipes.
type GenerateOptions = core.GenerateOptions

// ChaosOptions tunes RandomScenario.
type ChaosOptions = core.ChaosOptions

// RandomScenario generates one randomized failure over the application
// graph — the Chaos Monkey baseline the paper contrasts itself with
// (§8.1). A seeded rng yields a reproducible chaos schedule.
var RandomScenario = core.RandomScenario

// GenerateRecipes proposes a systematic test plan from the application
// graph alone: an Overload and a Crash recipe per service with dependents,
// asserting bounded retries, timeouts, and circuit breakers on every
// caller edge (the automation sketched in the paper's §9).
func GenerateRecipes(g *Graph, opts GenerateOptions) ([]Recipe, error) {
	return core.GenerateRecipes(g, opts)
}

// ParseRecipe decodes a recipe from its JSON wire form (see
// internal/core.ParseRecipe for the schema).
func ParseRecipe(data []byte) (Recipe, error) { return core.ParseRecipe(data) }

// Campaign types: systematic, parallel, resumable exploration of the fault
// space (see internal/campaign).
type (
	// CampaignUnit is one point of the enumerated fault space.
	CampaignUnit = campaign.Unit

	// CampaignOptions tunes campaign execution (parallelism, journal,
	// load and cleanup hooks).
	CampaignOptions = campaign.Options

	// CampaignEntry is one settled unit as journalled.
	CampaignEntry = campaign.Entry

	// EnumerateOptions tunes fault-space enumeration.
	EnumerateOptions = campaign.EnumerateOptions

	// Scorecard is a campaign's aggregate resilience report: the
	// per-edge and per-service pass-fail matrix.
	Scorecard = campaign.Scorecard
)

// EnumerateCampaign expands the application graph into a deterministic
// list of campaign units: scenario templates × targets × parameter grids.
func EnumerateCampaign(g *Graph, opts EnumerateOptions) ([]CampaignUnit, error) {
	return campaign.Enumerate(g, opts)
}

// RunCampaign executes units through a bounded worker pool, isolating
// concurrent runs by request-ID namespace, pruning redundant scenarios by
// coverage signature, and journalling outcomes for resume.
func RunCampaign(ctx context.Context, r *Runner, units []CampaignUnit, opts CampaignOptions) (*Scorecard, error) {
	return campaign.Run(ctx, r, units, opts)
}

// Explore types: coverage-guided fault-space search driven by observed
// execution indexes rather than the static edge grid (see internal/explore).
type (
	// ExploreOptions tunes an exploration: identity, journal, load hook,
	// round and combination bounds.
	ExploreOptions = explore.Options

	// ExploreResult is a finished (or interrupted) exploration: the point
	// inventory with coverage, plus the campaign scorecard.
	ExploreResult = explore.Result

	// ExplorePoint is one discovered injection point, named by its
	// canonical execution index.
	ExplorePoint = explore.Point

	// ExploreCoverage is the scorecard's explore-plane counter block.
	ExploreCoverage = campaign.ExploreCoverage
)

// Explore runs a coverage-guided fault exploration: probe the application
// fault-free to inventory its injection points by execution index, then
// iteratively fault each unexercised point (replaying the prerequisite
// faults that revealed it) until the frontier stays dry — discovering
// retry, fallback and other paths that only execute under failure.
func Explore(ctx context.Context, r *Runner, opts ExploreOptions) (*ExploreResult, error) {
	return explore.Explore(ctx, r, opts)
}

// Telemetry types: the out-of-band metrics plane — scraping agent and
// store expositions, correlating fault windows with campaign runs, and
// computing baseline-vs-fault differentials (see internal/telemetry).
type (
	// TelemetryTarget is one scrape endpoint (an agent control plane or
	// the store server's /metrics).
	TelemetryTarget = telemetry.Target

	// TelemetryScraper polls targets on an interval into a SeriesStore.
	TelemetryScraper = telemetry.Scraper

	// TelemetrySeriesStore is a fixed-retention in-memory ring of
	// scraped samples with counter-reset-aware rate and quantile math.
	TelemetrySeriesStore = telemetry.SeriesStore

	// TelemetryRecorder observes campaign runs and records fault windows.
	TelemetryRecorder = telemetry.Recorder

	// TelemetryWindow is one fault's injection interval as observed from
	// the campaign lifecycle.
	TelemetryWindow = telemetry.Window

	// TelemetryDiffer computes per-unit baseline-vs-fault differentials.
	TelemetryDiffer = telemetry.Differ

	// TelemetrySnapshot is one dashboard frame: per-service rates,
	// error ratios and latency quantiles plus window and scraper state.
	TelemetrySnapshot = telemetry.Snapshot

	// CampaignRunObserver receives unit run start/finish callbacks;
	// the telemetry Recorder implements it.
	CampaignRunObserver = campaign.RunObserver

	// UnitTelemetry is one unit's measured differential as journalled
	// and folded into the scorecard's Telemetry section.
	UnitTelemetry = campaign.UnitTelemetry
)

// FleetTargets derives scrape targets from a registry: every agent
// control plane (replicas suffixed -N) plus the store server, if any.
func FleetTargets(reg Registry, storeURL string) ([]TelemetryTarget, error) {
	return telemetry.FleetTargets(reg, storeURL)
}

// NewTelemetryScraper builds a scraper over targets; Run it in a
// goroutine or drive it manually with ScrapeOnce.
func NewTelemetryScraper(store *TelemetrySeriesStore, targets []TelemetryTarget, opts telemetry.ScrapeOptions) *TelemetryScraper {
	return telemetry.NewScraper(store, targets, opts)
}

// NewTelemetryDiffer builds a differ over a series store and the fault
// windows a Recorder collected during a campaign.
func NewTelemetryDiffer(store *TelemetrySeriesStore, windows []TelemetryWindow, opts telemetry.DiffOptions) *TelemetryDiffer {
	return telemetry.NewDiffer(store, windows, opts)
}
