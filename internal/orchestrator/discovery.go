package orchestrator

import (
	"context"
	"errors"
	"time"

	"gremlin/internal/registry"
)

// MembershipWatcher is the slice of the registry change feed the
// orchestrator consumes for discovery-driven reconciliation. Both
// *registry.Dynamic (in-process) and *registry.Client (over HTTP)
// implement it.
type MembershipWatcher interface {
	WaitEvents(ctx context.Context, since uint64) ([]registry.Event, uint64, error)
}

// StartDiscovery watches registry membership and runs a reconcile pass on
// every change: a newly joined agent is configured with the rules it is
// supposed to hold before the next periodic anti-entropy tick, and an
// expired lease drops its agent out of the next pass's fan-out so the
// orchestrator stops targeting the dead instance. Bursts of events
// coalesce — changes arriving while a pass runs are picked up together by
// the next one. timeout bounds each pass (default 10 s). Pass failures are
// carried in the reports (visible via Metrics and LastReport), never fatal
// to the loop.
func (o *Orchestrator) StartDiscovery(w MembershipWatcher, timeout time.Duration) (stop func()) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		var since uint64
		for {
			_, v, err := w.WaitEvents(ctx, since)
			if ctx.Err() != nil {
				return
			}
			since = v
			if err != nil && !errors.Is(err, registry.ErrWatchGap) {
				// Transient watch failure (e.g. registry server briefly
				// unreachable): back off and retry rather than spinning.
				select {
				case <-ctx.Done():
					return
				case <-time.After(250 * time.Millisecond):
				}
				continue
			}
			// A gap still means membership changed; reconcile resolves the
			// registry afresh, so no event replay is needed.
			o.mu.Lock()
			o.nDiscoveries++
			o.mu.Unlock()
			rctx, rcancel := context.WithTimeout(ctx, timeout)
			_, _ = o.Reconcile(rctx)
			rcancel()
		}
	}()
	return func() {
		cancel()
		<-stopped
	}
}
