// Package orchestrator implements Gremlin's Failure Orchestrator: the
// control-plane component that programs fault-injection rules into every
// physical Gremlin agent they concern, over an out-of-band control channel
// (paper §4.2).
//
// The orchestrator is declarative: callers register *desired state* — a set
// of logical rules per owner (a recipe run, a campaign, a manual session) —
// and the orchestrator reconciles the fleet toward it. Each reconcile pass
// resolves logical services to physical agents through the registry,
// computes the union rule set each agent should hold, and converges agents
// that differ with versioned compare-and-swap PUTs (bounded retries with
// backoff). Agents the pass cannot reach are reported, not fatal; an
// optional anti-entropy loop re-syncs them — and restarted agents, which
// come back empty at generation zero — on the next pass.
//
// Owners may hold a lease: desired state that expires unless renewed, so a
// killed campaign process can never leak faults into the mesh. Leased rule
// sets are additionally shipped with an agent-side TTL as a second line of
// defence — the agent clears them itself even if the whole control plane
// dies with the campaign.
package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gremlin/internal/agentapi"
	"gremlin/internal/proxy"
	"gremlin/internal/registry"
	"gremlin/internal/rules"
)

// AgentControl is the slice of the agent control API the orchestrator
// needs. *agentapi.Client implements it; tests may substitute fakes.
type AgentControl interface {
	GetRuleSet(ctx context.Context) (proxy.RuleSetBody, error)
	PutRuleSet(ctx context.Context, set rules.RuleSet, ifMatch uint64) (rules.RuleSetStatus, error)
	ClearRules(ctx context.Context) (int, error)
	Flush(ctx context.Context) error
}

var _ AgentControl = (*agentapi.Client)(nil)

// Option configures an Orchestrator.
type Option interface {
	apply(*Orchestrator)
}

type optionFunc func(*Orchestrator)

func (f optionFunc) apply(o *Orchestrator) { f(o) }

// WithDialer overrides how the orchestrator connects to an agent control
// URL. Used by tests and embedded (in-process) deployments.
func WithDialer(dial func(url string) AgentControl) Option {
	return optionFunc(func(o *Orchestrator) { o.dial = dial })
}

// WithRetry bounds the per-agent convergence loop: attempts tries per
// reconcile pass, sleeping backoff, 2*backoff, ... between them. The
// default is 3 attempts starting at 25 ms.
func WithRetry(attempts int, backoff time.Duration) Option {
	return optionFunc(func(o *Orchestrator) {
		if attempts > 0 {
			o.attempts = attempts
		}
		o.backoff = backoff
	})
}

// Orchestrator reconciles agents toward the registered desired state.
type Orchestrator struct {
	reg      registry.Registry
	dial     func(url string) AgentControl
	attempts int
	backoff  time.Duration
	now      func() time.Time

	// syncMu serializes reconcile passes. Each pass recomputes desired
	// state after acquiring it, so a pass can never overwrite the effects
	// of a pass that started later.
	syncMu sync.Mutex

	mu         sync.Mutex
	ncalls     int               // control-channel calls made, for benchmark accounting
	owners     map[string]*owner // desired state, by owner name
	version    uint64            // bumped whenever desired state changes
	nextApply  int               // anonymous owner names for Apply
	lastReport *Report           // most recent reconcile/drift outcome, for metrics

	nRepairs     int64 // content pushes made by anti-entropy passes
	nExpiries    int64 // owner leases lapsed
	nDiscoveries int64 // reconcile passes triggered by membership events
}

// owner is one registered slice of desired state.
type owner struct {
	rules   []rules.Rule
	expires time.Time // zero: no lease
}

// New creates an orchestrator over the given registry.
func New(reg registry.Registry, opts ...Option) *Orchestrator {
	o := &Orchestrator{
		reg: reg,
		dial: func(url string) AgentControl {
			return agentapi.New(url, nil)
		},
		attempts: 3,
		backoff:  25 * time.Millisecond,
		now:      time.Now,
		owners:   make(map[string]*owner),
	}
	for _, opt := range opts {
		opt.apply(o)
	}
	return o
}

// Applied is a handle to a successfully applied rule set.
type Applied struct {
	orch *Orchestrator
	name string
	// perAgent maps agent control URL to the IDs of rules desired there,
	// for counts and human-readable summaries.
	perAgent map[string][]string
}

// AgentCount reports how many distinct agents received rules.
func (a *Applied) AgentCount() int { return len(a.perAgent) }

// RuleCount reports the total number of (rule, agent) installations.
func (a *Applied) RuleCount() int {
	n := 0
	for _, ids := range a.perAgent {
		n += len(ids)
	}
	return n
}

// Apply validates the rule set, registers it as an anonymous owner, and
// reconciles the fleet so every targeted agent holds the rules. On any
// failure it withdraws the owner again (converging agents back) and
// returns the error. The Applied handle's Revert withdraws it explicitly.
func (o *Orchestrator) Apply(ctx context.Context, ruleset []rules.Rule) (*Applied, error) {
	return o.ApplyOwned(ctx, "", 0, ruleset)
}

// ApplyOwned is Apply with an explicit owner name and an optional lease:
// when ttl is positive the rules are withdrawn automatically unless the
// lease is renewed (RenewLease), and ship to agents with a self-expiry TTL
// so even a dead control plane cannot leak them. An empty name picks an
// anonymous per-call owner.
func (o *Orchestrator) ApplyOwned(ctx context.Context, name string, ttl time.Duration, ruleset []rules.Rule) (*Applied, error) {
	if len(ruleset) == 0 {
		return &Applied{orch: o, perAgent: map[string][]string{}}, nil
	}
	if err := rules.ValidateAll(ruleset); err != nil {
		return nil, fmt.Errorf("orchestrator: %w", err)
	}

	// Resolve up front so unknown or agent-less services fail fast, and so
	// the handle can report exact per-agent counts.
	perAgent := make(map[string][]string)
	for _, r := range ruleset {
		urls, err := registry.AgentURLs(o.reg, r.Src)
		if err != nil {
			return nil, fmt.Errorf("orchestrator: resolve agents for %q: %w", r.Src, err)
		}
		if len(urls) == 0 {
			return nil, fmt.Errorf("orchestrator: service %q has no gremlin agents", r.Src)
		}
		for _, u := range urls {
			perAgent[u] = append(perAgent[u], r.ID)
		}
	}

	if name == "" {
		o.mu.Lock()
		o.nextApply++
		name = fmt.Sprintf("apply-%d", o.nextApply)
		o.mu.Unlock()
	}

	rep, err := o.SetOwner(ctx, name, ruleset, ttl)
	if err == nil {
		err = rep.Err()
	}
	if err != nil {
		// Withdraw and converge back whatever partial state landed.
		_, _ = o.RemoveOwner(ctx, name)
		return nil, fmt.Errorf("orchestrator: apply failed: %w", err)
	}
	return &Applied{orch: o, name: name, perAgent: perAgent}, nil
}

// Revert withdraws the applied rules: the owner is removed from desired
// state and every agent is reconciled back. It is idempotent.
func (a *Applied) Revert(ctx context.Context) error {
	if a.name == "" {
		return nil
	}
	name := a.name
	a.name = ""
	a.perAgent = map[string][]string{}
	rep, err := a.orch.RemoveOwner(ctx, name)
	if err == nil {
		err = rep.Err()
	}
	if err != nil {
		return fmt.Errorf("orchestrator: revert failed: %w", err)
	}
	return nil
}

// ClearAll drops all registered desired state and removes every rule from
// every agent of the named services (all registered services when none are
// named). It is the operator's big hammer — owners registered by live
// recipe runs are withdrawn too. It returns the number of rules removed.
func (o *Orchestrator) ClearAll(ctx context.Context, services ...string) (int, error) {
	o.mu.Lock()
	if len(o.owners) > 0 {
		o.owners = make(map[string]*owner)
		o.version++
	}
	o.mu.Unlock()

	urls, err := o.resolveAgents(services)
	if err != nil {
		return 0, err
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total int
		errs  []error
	)
	for _, url := range urls {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			n, err := o.agent(url).ClearRules(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("agent %s: %w", url, err))
				return
			}
			total += n
		}(url)
	}
	wg.Wait()
	if len(errs) > 0 {
		return total, fmt.Errorf("orchestrator: clear failed: %w", errors.Join(errs...))
	}
	return total, nil
}

// FlushAll asks every agent of the named services (all services when none
// are named) to flush buffered observations to the event store, so the
// Assertion Checker sees a complete log.
func (o *Orchestrator) FlushAll(ctx context.Context, services ...string) error {
	urls, err := o.resolveAgents(services)
	if err != nil {
		return err
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	for _, url := range urls {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			if err := o.agent(url).Flush(ctx); err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("agent %s: %w", url, err))
				mu.Unlock()
			}
		}(url)
	}
	wg.Wait()
	if len(errs) > 0 {
		return fmt.Errorf("orchestrator: flush failed: %w", errors.Join(errs...))
	}
	return nil
}

// ControlCalls reports how many agent control connections the orchestrator
// has opened; the Figure 7 benchmark uses it to sanity-check fan-out.
func (o *Orchestrator) ControlCalls() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.ncalls
}

func (o *Orchestrator) agent(url string) AgentControl {
	o.mu.Lock()
	o.ncalls++
	o.mu.Unlock()
	return o.dial(url)
}

func (o *Orchestrator) resolveAgents(services []string) ([]string, error) {
	if len(services) == 0 {
		urls, err := registry.AllAgentURLs(o.reg)
		if err != nil {
			return nil, fmt.Errorf("orchestrator: resolve all agents: %w", err)
		}
		return urls, nil
	}
	seen := make(map[string]bool)
	for _, svc := range services {
		urls, err := registry.AgentURLs(o.reg, svc)
		if err != nil {
			return nil, fmt.Errorf("orchestrator: resolve agents for %q: %w", svc, err)
		}
		for _, u := range urls {
			seen[u] = true
		}
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out, nil
}

// Describe renders a human-readable summary of an applied rule set, for
// tool output.
func (a *Applied) Describe() string {
	if len(a.perAgent) == 0 {
		return "no rules applied"
	}
	urls := make([]string, 0, len(a.perAgent))
	for u := range a.perAgent {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	var b strings.Builder
	for _, u := range urls {
		ids := append([]string(nil), a.perAgent[u]...)
		sort.Strings(ids)
		fmt.Fprintf(&b, "%s: %s\n", u, strings.Join(ids, ", "))
	}
	return b.String()
}
