// Package orchestrator implements Gremlin's Failure Orchestrator: the
// control-plane component that ships translated fault-injection rules to
// every physical Gremlin agent they concern, over an out-of-band control
// channel (paper §4.2).
//
// Rules name logical services; the orchestrator resolves each rule's source
// service to its physical instances through the registry and installs the
// rule on every co-located agent, in parallel. Applying a rule set returns
// an Applied handle whose Revert removes exactly those rules again, so
// chained recipes can stage and unstage failures step by step.
package orchestrator

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"gremlin/internal/agentapi"
	"gremlin/internal/registry"
	"gremlin/internal/rules"
)

// AgentControl is the slice of the agent control API the orchestrator
// needs. *agentapi.Client implements it; tests may substitute fakes.
type AgentControl interface {
	InstallRules(batch ...rules.Rule) error
	RemoveRule(id string) error
	ClearRules() (int, error)
	Flush() error
}

var _ AgentControl = (*agentapi.Client)(nil)

// Option configures an Orchestrator.
type Option interface {
	apply(*Orchestrator)
}

type dialerOption func(url string) AgentControl

func (d dialerOption) apply(o *Orchestrator) { o.dial = d }

// WithDialer overrides how the orchestrator connects to an agent control
// URL. Used by tests and embedded (in-process) deployments.
func WithDialer(dial func(url string) AgentControl) Option {
	return dialerOption(dial)
}

// Orchestrator ships rules to agents.
type Orchestrator struct {
	reg  registry.Registry
	dial func(url string) AgentControl

	mu     sync.Mutex
	ncalls int // control-channel calls made, for benchmark accounting
}

// New creates an orchestrator over the given registry.
func New(reg registry.Registry, opts ...Option) *Orchestrator {
	o := &Orchestrator{
		reg: reg,
		dial: func(url string) AgentControl {
			return agentapi.New(url, nil)
		},
	}
	for _, opt := range opts {
		opt.apply(o)
	}
	return o
}

// Applied is a handle to a successfully applied rule set.
type Applied struct {
	orch *Orchestrator
	// perAgent maps agent control URL to the IDs of rules installed there.
	perAgent map[string][]string
}

// AgentCount reports how many distinct agents received rules.
func (a *Applied) AgentCount() int { return len(a.perAgent) }

// RuleCount reports the total number of (rule, agent) installations.
func (a *Applied) RuleCount() int {
	n := 0
	for _, ids := range a.perAgent {
		n += len(ids)
	}
	return n
}

// Apply validates the rule set, resolves each rule's source service to its
// agents, and installs the rules on all agents in parallel. On any failure
// it rolls back the installations that succeeded and returns the error.
func (o *Orchestrator) Apply(ruleset []rules.Rule) (*Applied, error) {
	if len(ruleset) == 0 {
		return &Applied{orch: o, perAgent: map[string][]string{}}, nil
	}
	if err := rules.ValidateAll(ruleset); err != nil {
		return nil, fmt.Errorf("orchestrator: %w", err)
	}

	// Group rules by the agents that must receive them.
	perAgent := make(map[string][]rules.Rule)
	for _, r := range ruleset {
		urls, err := registry.AgentURLs(o.reg, r.Src)
		if err != nil {
			return nil, fmt.Errorf("orchestrator: resolve agents for %q: %w", r.Src, err)
		}
		if len(urls) == 0 {
			return nil, fmt.Errorf("orchestrator: service %q has no gremlin agents", r.Src)
		}
		for _, u := range urls {
			perAgent[u] = append(perAgent[u], r)
		}
	}

	type result struct {
		url string
		ids []string
		err error
	}
	results := make(chan result, len(perAgent))
	for url, batch := range perAgent {
		go func(url string, batch []rules.Rule) {
			err := o.agent(url).InstallRules(batch...)
			ids := make([]string, len(batch))
			for i, r := range batch {
				ids[i] = r.ID
			}
			results <- result{url: url, ids: ids, err: err}
		}(url, batch)
	}

	applied := &Applied{orch: o, perAgent: make(map[string][]string, len(perAgent))}
	var errs []error
	for range perAgent {
		res := <-results
		if res.err != nil {
			errs = append(errs, fmt.Errorf("agent %s: %w", res.url, res.err))
			continue
		}
		applied.perAgent[res.url] = res.ids
	}
	if len(errs) > 0 {
		// Roll back the agents that did take the rules.
		_ = applied.Revert()
		return nil, fmt.Errorf("orchestrator: apply failed: %w", errors.Join(errs...))
	}
	return applied, nil
}

// Revert removes the applied rules from every agent that received them.
// It keeps going on errors and returns them joined.
func (a *Applied) Revert() error {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	for url, ids := range a.perAgent {
		wg.Add(1)
		go func(url string, ids []string) {
			defer wg.Done()
			c := a.orch.agent(url)
			for _, id := range ids {
				if err := c.RemoveRule(id); err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("agent %s rule %s: %w", url, id, err))
					mu.Unlock()
				}
			}
		}(url, ids)
	}
	wg.Wait()
	a.perAgent = map[string][]string{}
	if len(errs) > 0 {
		return fmt.Errorf("orchestrator: revert failed: %w", errors.Join(errs...))
	}
	return nil
}

// ClearAll removes every rule from every agent of the named services (all
// registered services when none are named). It returns the number of rules
// removed.
func (o *Orchestrator) ClearAll(services ...string) (int, error) {
	urls, err := o.resolveAgents(services)
	if err != nil {
		return 0, err
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total int
		errs  []error
	)
	for _, url := range urls {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			n, err := o.agent(url).ClearRules()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("agent %s: %w", url, err))
				return
			}
			total += n
		}(url)
	}
	wg.Wait()
	if len(errs) > 0 {
		return total, fmt.Errorf("orchestrator: clear failed: %w", errors.Join(errs...))
	}
	return total, nil
}

// FlushAll asks every agent of the named services (all services when none
// are named) to flush buffered observations to the event store, so the
// Assertion Checker sees a complete log.
func (o *Orchestrator) FlushAll(services ...string) error {
	urls, err := o.resolveAgents(services)
	if err != nil {
		return err
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	for _, url := range urls {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			if err := o.agent(url).Flush(); err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("agent %s: %w", url, err))
				mu.Unlock()
			}
		}(url)
	}
	wg.Wait()
	if len(errs) > 0 {
		return fmt.Errorf("orchestrator: flush failed: %w", errors.Join(errs...))
	}
	return nil
}

// ControlCalls reports how many agent control connections the orchestrator
// has opened; the Figure 7 benchmark uses it to sanity-check fan-out.
func (o *Orchestrator) ControlCalls() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.ncalls
}

func (o *Orchestrator) agent(url string) AgentControl {
	o.mu.Lock()
	o.ncalls++
	o.mu.Unlock()
	return o.dial(url)
}

func (o *Orchestrator) resolveAgents(services []string) ([]string, error) {
	if len(services) == 0 {
		urls, err := registry.AllAgentURLs(o.reg)
		if err != nil {
			return nil, fmt.Errorf("orchestrator: resolve all agents: %w", err)
		}
		return urls, nil
	}
	seen := make(map[string]bool)
	for _, svc := range services {
		urls, err := registry.AgentURLs(o.reg, svc)
		if err != nil {
			return nil, fmt.Errorf("orchestrator: resolve agents for %q: %w", svc, err)
		}
		for _, u := range urls {
			seen[u] = true
		}
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out, nil
}

// Describe renders a human-readable summary of an applied rule set, for
// tool output.
func (a *Applied) Describe() string {
	if len(a.perAgent) == 0 {
		return "no rules applied"
	}
	urls := make([]string, 0, len(a.perAgent))
	for u := range a.perAgent {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	var b strings.Builder
	for _, u := range urls {
		fmt.Fprintf(&b, "%s: %s\n", u, strings.Join(a.perAgent[u], ", "))
	}
	return b.String()
}
