package orchestrator

import (
	"context"
	"sync"
	"testing"
	"time"

	"gremlin/internal/registry"
	"gremlin/internal/rules"
)

// dynFixture wires an orchestrator to a Dynamic (lease-based) registry
// with a dialer that lazily creates fake agents, so joins can introduce
// agents the fixture has never seen.
type dynFixture struct {
	reg  *registry.Dynamic
	orch *Orchestrator

	mu     sync.Mutex
	agents map[string]*fakeAgent
}

func newDynFixture(opts registry.DynamicOptions) *dynFixture {
	f := &dynFixture{
		reg:    registry.NewDynamic(opts),
		agents: map[string]*fakeAgent{},
	}
	f.orch = New(f.reg,
		WithDialer(func(url string) AgentControl { return f.agent(url) }),
		WithRetry(2, time.Millisecond))
	return f
}

func (f *dynFixture) agent(url string) *fakeAgent {
	f.mu.Lock()
	defer f.mu.Unlock()
	a, ok := f.agents[url]
	if !ok {
		a = newFakeAgent()
		f.agents[url] = a
	}
	return a
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestDiscoveryConfiguresNewAgent(t *testing.T) {
	f := newDynFixture(registry.DynamicOptions{})
	if err := f.reg.Register(registry.Instance{Service: "a", Addr: "a1:80", AgentControlURL: "http://agent-a1"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.orch.SetOwner(context.Background(), "test", []rules.Rule{delayRule("r1", "a")}, 0); err != nil {
		t.Fatal(err)
	}
	if f.agent("http://agent-a1").count() != 1 {
		t.Fatal("initial agent not configured")
	}

	stop := f.orch.StartDiscovery(f.reg, time.Second)
	defer stop()

	// A second replica joins: discovery must configure it without waiting
	// for a periodic anti-entropy tick.
	if err := f.reg.Register(registry.Instance{Service: "a", Addr: "a2:80", AgentControlURL: "http://agent-a2", Replica: 1}, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "new agent to receive rules", func() bool {
		return f.agent("http://agent-a2").count() == 1
	})
}

func TestDiscoveryStopsTargetingExpiredAgent(t *testing.T) {
	f := newDynFixture(registry.DynamicOptions{DefaultTTL: 50 * time.Millisecond})
	if err := f.reg.Register(registry.Instance{Service: "a", Addr: "a1:80", AgentControlURL: "http://agent-a1"}, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Register(registry.Instance{Service: "a", Addr: "a2:80", AgentControlURL: "http://agent-a2", Replica: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.orch.SetOwner(context.Background(), "test", []rules.Rule{delayRule("r1", "a")}, 0); err != nil {
		t.Fatal(err)
	}

	stop := f.orch.StartDiscovery(f.reg, time.Second)
	defer stop()
	sweep := f.reg.StartSweeper(10 * time.Millisecond)
	defer sweep()

	// a2 stops heartbeating; its lease lapses and the next reconcile pass
	// no longer targets the dead agent.
	waitFor(t, "reconcile fan-out to drop the expired agent", func() bool {
		rep := f.orch.LastReport()
		if rep == nil {
			return false
		}
		for _, a := range rep.Agents {
			if a.URL == "http://agent-a2" {
				return false
			}
		}
		return len(rep.Agents) == 1
	})

	puts := f.agent("http://agent-a2").putCount()
	if _, err := f.orch.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := f.agent("http://agent-a2").putCount(); got != puts {
		t.Fatalf("reconcile still pushing to expired agent: %d -> %d puts", puts, got)
	}
}
