package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gremlin/internal/metrics"
	"gremlin/internal/proxy"
	"gremlin/internal/registry"
	"gremlin/internal/rules"
)

// fakeAgent emulates one agent's control API in memory, backed by a real
// rules.Matcher so generation/CAS semantics match the live agent exactly.
type fakeAgent struct {
	mu       sync.Mutex
	m        *rules.Matcher
	failing  error // when set, every control call fails with this error
	flushes  int
	puts     int // PutRuleSet calls that reached the matcher
	lastTTL  int64
	rebuilds int64
}

func newFakeAgent() *fakeAgent {
	return &fakeAgent{m: rules.NewMatcher(nil)}
}

func (f *fakeAgent) GetRuleSet(context.Context) (proxy.RuleSetBody, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failing != nil {
		return proxy.RuleSetBody{}, f.failing
	}
	set := f.m.RuleSet()
	return proxy.RuleSetBody{
		Generation: set.Generation,
		Hash:       f.m.Hash(),
		Rules:      set.Rules,
		Leased:     f.lastTTL > 0 && f.m.Len() > 0,
	}, nil
}

func (f *fakeAgent) PutRuleSet(_ context.Context, set rules.RuleSet, ifMatch uint64) (rules.RuleSetStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failing != nil {
		return rules.RuleSetStatus{}, f.failing
	}
	f.puts++
	st, err := f.m.ApplyRuleSet(set, ifMatch)
	if err == nil {
		f.lastTTL = set.TTLMillis
	}
	f.rebuilds = f.m.Rebuilds()
	return st, err
}

func (f *fakeAgent) ClearRules(context.Context) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failing != nil {
		return 0, f.failing
	}
	n := f.m.Len()
	f.m.Clear()
	return n, nil
}

func (f *fakeAgent) Flush(context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failing != nil {
		return f.failing
	}
	f.flushes++
	return nil
}

func (f *fakeAgent) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.m.Len()
}

func (f *fakeAgent) putCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.puts
}

func (f *fakeAgent) fail(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failing = err
}

// fixture builds a registry with services a (2 instances, 2 agents) and b
// (1 instance), plus a dialer resolving the fake agents.
type fixture struct {
	reg    *registry.Static
	agents map[string]*fakeAgent
	orch   *Orchestrator
}

func newFixture() *fixture {
	f := &fixture{
		reg: registry.NewStatic(
			registry.Instance{Service: "a", Addr: "a1:80", AgentControlURL: "http://agent-a1"},
			registry.Instance{Service: "a", Addr: "a2:80", AgentControlURL: "http://agent-a2"},
			registry.Instance{Service: "b", Addr: "b1:80", AgentControlURL: "http://agent-b1"},
		),
		agents: map[string]*fakeAgent{
			"http://agent-a1": newFakeAgent(),
			"http://agent-a2": newFakeAgent(),
			"http://agent-b1": newFakeAgent(),
		},
	}
	f.orch = New(f.reg,
		WithDialer(func(url string) AgentControl { return f.agents[url] }),
		WithRetry(2, time.Millisecond))
	return f
}

func delayRule(id, src string) rules.Rule {
	return rules.Rule{
		ID: id, Src: src, Dst: "x",
		Action: rules.ActionDelay, Pattern: "test-*", DelayMillis: 100,
	}
}

func TestApplyFansOutToAllInstances(t *testing.T) {
	f := newFixture()
	applied, err := f.orch.Apply(context.Background(), []rules.Rule{delayRule("r1", "a")})
	if err != nil {
		t.Fatal(err)
	}
	// Service a has two agents: the rule lands on both (paper Figure 3).
	if f.agents["http://agent-a1"].count() != 1 || f.agents["http://agent-a2"].count() != 1 {
		t.Fatal("rule should be installed on every agent of the source service")
	}
	if f.agents["http://agent-b1"].count() != 0 {
		t.Fatal("unrelated agent received a rule")
	}
	if applied.AgentCount() != 2 || applied.RuleCount() != 2 {
		t.Fatalf("applied = %d agents, %d rules", applied.AgentCount(), applied.RuleCount())
	}
}

func TestApplyGroupsBySource(t *testing.T) {
	f := newFixture()
	_, err := f.orch.Apply(context.Background(), []rules.Rule{
		delayRule("r1", "a"),
		delayRule("r2", "b"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.agents["http://agent-b1"].count() != 1 {
		t.Fatal("rule for b missing")
	}
}

func TestApplyEmptyRuleset(t *testing.T) {
	f := newFixture()
	applied, err := f.orch.Apply(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if applied.AgentCount() != 0 {
		t.Fatal("no agents should be touched")
	}
	if err := applied.Revert(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestApplyValidatesRules(t *testing.T) {
	f := newFixture()
	bad := delayRule("r1", "a")
	bad.DelayMillis = 0
	if _, err := f.orch.Apply(context.Background(), []rules.Rule{bad}); err == nil {
		t.Fatal("want validation error")
	}
}

func TestApplyUnknownService(t *testing.T) {
	f := newFixture()
	if _, err := f.orch.Apply(context.Background(), []rules.Rule{delayRule("r1", "ghost")}); err == nil {
		t.Fatal("want unknown-service error")
	}
}

func TestApplyAgentlessService(t *testing.T) {
	f := newFixture()
	f.reg.Add(registry.Instance{Service: "ext", Addr: "ext:443"}) // no agent
	if _, err := f.orch.Apply(context.Background(), []rules.Rule{delayRule("r1", "ext")}); err == nil {
		t.Fatal("want no-agents error")
	}
}

func TestApplyRollsBackOnPartialFailure(t *testing.T) {
	f := newFixture()
	f.agents["http://agent-a2"].fail(errors.New("agent down"))
	_, err := f.orch.Apply(context.Background(), []rules.Rule{delayRule("r1", "a")})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "agent down") {
		t.Fatalf("err = %v", err)
	}
	if f.agents["http://agent-a1"].count() != 0 {
		t.Fatal("successful agent should have been rolled back")
	}
	if len(f.orch.Owners()) != 0 {
		t.Fatalf("failed apply left owners behind: %v", f.orch.Owners())
	}
}

func TestRevert(t *testing.T) {
	f := newFixture()
	applied, err := f.orch.Apply(context.Background(), []rules.Rule{delayRule("r1", "a"), delayRule("r2", "a")})
	if err != nil {
		t.Fatal(err)
	}
	if err := applied.Revert(context.Background()); err != nil {
		t.Fatal(err)
	}
	for url, agent := range f.agents {
		if agent.count() != 0 {
			t.Fatalf("agent %s still has %d rules", url, agent.count())
		}
	}
	// Second revert is a no-op.
	if err := applied.Revert(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestClearAll(t *testing.T) {
	f := newFixture()
	if _, err := f.orch.Apply(context.Background(), []rules.Rule{delayRule("r1", "a"), delayRule("r2", "b")}); err != nil {
		t.Fatal(err)
	}
	n, err := f.orch.ClearAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // r1 on two agents + r2 on one
		t.Fatalf("ClearAll = %d, want 3", n)
	}
	if len(f.orch.Owners()) != 0 {
		t.Fatal("ClearAll should drop desired state too")
	}
}

func TestClearAllScoped(t *testing.T) {
	f := newFixture()
	if _, err := f.orch.Apply(context.Background(), []rules.Rule{delayRule("r1", "a"), delayRule("r2", "b")}); err != nil {
		t.Fatal(err)
	}
	n, err := f.orch.ClearAll(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("ClearAll(b) = %d, want 1", n)
	}
	if f.agents["http://agent-a1"].count() != 1 {
		t.Fatal("agents for a should be untouched")
	}
}

func TestFlushAll(t *testing.T) {
	f := newFixture()
	if err := f.orch.FlushAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	for url, agent := range f.agents {
		if agent.flushes != 1 {
			t.Fatalf("agent %s flushes = %d", url, agent.flushes)
		}
	}
	if err := f.orch.FlushAll(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if f.agents["http://agent-b1"].flushes != 1 {
		t.Fatal("scoped flush touched unrelated agent")
	}
}

func TestFlushAllUnknownService(t *testing.T) {
	f := newFixture()
	if err := f.orch.FlushAll(context.Background(), "ghost"); err == nil {
		t.Fatal("want error")
	}
}

func TestDescribe(t *testing.T) {
	f := newFixture()
	applied, err := f.orch.Apply(context.Background(), []rules.Rule{delayRule("r1", "b")})
	if err != nil {
		t.Fatal(err)
	}
	if got := applied.Describe(); !strings.Contains(got, "agent-b1") || !strings.Contains(got, "r1") {
		t.Fatalf("Describe = %q", got)
	}
	empty := &Applied{perAgent: map[string][]string{}}
	if got := empty.Describe(); got != "no rules applied" {
		t.Fatalf("Describe = %q", got)
	}
}

func TestControlCallsCounted(t *testing.T) {
	f := newFixture()
	if _, err := f.orch.Apply(context.Background(), []rules.Rule{delayRule("r1", "a")}); err != nil {
		t.Fatal(err)
	}
	if f.orch.ControlCalls() == 0 {
		t.Fatal("control calls should be counted")
	}
}

// TestConcurrentApplyRevert stresses parallel apply/revert cycles against
// the same agents; rules must never leak.
func TestConcurrentApplyRevert(t *testing.T) {
	f := newFixture()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				r := delayRule(fmt.Sprintf("r-%d-%d", w, i), "a")
				applied, err := f.orch.Apply(context.Background(), []rules.Rule{r})
				if err != nil {
					errs <- err
					return
				}
				if err := applied.Revert(context.Background()); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for url, agent := range f.agents {
		if n := agent.count(); n != 0 {
			t.Fatalf("agent %s leaked %d rules", url, n)
		}
	}
}

// ---- declarative surface ----

func TestOwnersUnionAcrossAgents(t *testing.T) {
	f := newFixture()
	ctx := context.Background()
	if _, err := f.orch.SetOwner(ctx, "recipe-1", []rules.Rule{delayRule("r1", "a")}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.orch.SetOwner(ctx, "recipe-2", []rules.Rule{delayRule("r2", "a"), delayRule("r3", "b")}, 0); err != nil {
		t.Fatal(err)
	}
	if got := f.agents["http://agent-a1"].count(); got != 2 {
		t.Fatalf("agent-a1 rules = %d, want union of both owners", got)
	}
	if got := f.agents["http://agent-b1"].count(); got != 1 {
		t.Fatalf("agent-b1 rules = %d", got)
	}

	rep, err := f.orch.RemoveOwner(ctx, "recipe-2")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged() {
		t.Fatalf("report not converged: %+v", rep)
	}
	if got := f.agents["http://agent-a1"].count(); got != 1 {
		t.Fatalf("agent-a1 rules after removal = %d", got)
	}
	if got := f.agents["http://agent-b1"].count(); got != 0 {
		t.Fatalf("agent-b1 rules after removal = %d", got)
	}
}

// TestReconcileIdempotent pins the converged fast path: a second pass with
// unchanged desired state makes no PUTs at all (pure GETs), and repeated
// SetOwner of identical content does not rebuild agent matchers.
func TestReconcileIdempotent(t *testing.T) {
	f := newFixture()
	ctx := context.Background()
	set := []rules.Rule{delayRule("r1", "a")}
	if _, err := f.orch.SetOwner(ctx, "o", set, 0); err != nil {
		t.Fatal(err)
	}
	a1 := f.agents["http://agent-a1"]
	puts, rebuilds := a1.putCount(), a1.rebuilds

	rep, err := f.orch.Reconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged() || rep.Repaired() != 0 {
		t.Fatalf("converged fleet reported drift: %+v", rep)
	}
	if a1.putCount() != puts {
		t.Fatalf("idempotent reconcile made %d extra PUTs", a1.putCount()-puts)
	}

	// Re-registering identical desired state reconciles without rebuilding.
	if _, err := f.orch.SetOwner(ctx, "o", set, 0); err != nil {
		t.Fatal(err)
	}
	if a1.rebuilds != rebuilds {
		t.Fatalf("identical content rebuilt the matcher: %d -> %d", rebuilds, a1.rebuilds)
	}
}

// TestReconcileRepairsDrift is the restarted-agent path: an agent that
// lost its rules out-of-band is converged back by the next anti-entropy
// pass, and the repair is counted.
func TestReconcileRepairsDrift(t *testing.T) {
	f := newFixture()
	ctx := context.Background()
	if _, err := f.orch.SetOwner(ctx, "o", []rules.Rule{delayRule("r1", "a")}, 0); err != nil {
		t.Fatal(err)
	}

	// Simulate a restart: the agent comes back empty at generation zero.
	f.agents["http://agent-a2"] = newFakeAgent()

	drift, err := f.orch.Drift(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if drift.Converged() {
		t.Fatal("drift should be visible before the repair pass")
	}
	if f.agents["http://agent-a2"].putCount() != 0 {
		t.Fatal("Drift must be read-only")
	}

	rep, err := f.orch.Reconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged() || rep.Repaired() != 1 {
		t.Fatalf("reconcile report = %+v, want 1 repair", rep)
	}
	if f.agents["http://agent-a2"].count() != 1 {
		t.Fatal("restarted agent should have its rules back")
	}
	if after, _ := f.orch.Drift(ctx); !after.Converged() {
		t.Fatalf("fleet should be converged after repair: %+v", after)
	}
}

// TestLeaseExpiryRemovesOrphans pins the campaign-crash path: a leased
// owner that is never renewed is withdrawn on the next pass and its rules
// converge off every agent.
func TestLeaseExpiryRemovesOrphans(t *testing.T) {
	f := newFixture()
	ctx := context.Background()
	now := time.Now()
	f.orch.now = func() time.Time { return now }

	if _, err := f.orch.SetOwner(ctx, "campaign-1", []rules.Rule{delayRule("r1", "a")}, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if f.agents["http://agent-a1"].count() != 1 {
		t.Fatal("leased rules should install")
	}
	if f.agents["http://agent-a1"].lastTTL <= 0 {
		t.Fatal("leased rules should ship with an agent-side TTL")
	}

	// Renewal pushes the expiry out.
	now = now.Add(80 * time.Millisecond)
	if err := f.orch.RenewLease("campaign-1", 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	now = now.Add(90 * time.Millisecond) // past original expiry, within renewal
	rep, err := f.orch.Reconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Expired) != 0 || f.agents["http://agent-a1"].count() != 1 {
		t.Fatalf("renewed lease expired early: %+v", rep)
	}

	// Let it lapse.
	now = now.Add(200 * time.Millisecond)
	rep, err = f.orch.Reconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Expired) != 1 || rep.Expired[0] != "campaign-1" {
		t.Fatalf("report expired = %v", rep.Expired)
	}
	for url, agent := range f.agents {
		if agent.count() != 0 {
			t.Fatalf("agent %s kept orphaned rules", url)
		}
	}
	if err := f.orch.RenewLease("campaign-1", time.Second); err == nil {
		t.Fatal("renewing an expired owner should fail")
	}
}

// TestLeaseTTLAggregation: a permanent owner sharing an agent with a
// leased one must keep the agent-side set permanent — the agent clears all
// rules at once on expiry, which would nuke the permanent owner's too.
func TestLeaseTTLAggregation(t *testing.T) {
	f := newFixture()
	ctx := context.Background()
	if _, err := f.orch.SetOwner(ctx, "perm", []rules.Rule{delayRule("p1", "a")}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.orch.SetOwner(ctx, "leased", []rules.Rule{delayRule("l1", "a")}, time.Minute); err != nil {
		t.Fatal(err)
	}
	if ttl := f.agents["http://agent-a1"].lastTTL; ttl != 0 {
		t.Fatalf("mixed-ownership agent got TTL %d, want permanent", ttl)
	}

	// Once the permanent owner leaves, the set becomes leased again.
	if _, err := f.orch.RemoveOwner(ctx, "perm"); err != nil {
		t.Fatal(err)
	}
	if ttl := f.agents["http://agent-a1"].lastTTL; ttl <= 0 {
		t.Fatalf("leased-only agent got TTL %d, want positive", ttl)
	}
}

func TestReportUnreachableAgentIsPartialFailure(t *testing.T) {
	f := newFixture()
	ctx := context.Background()
	f.agents["http://agent-b1"].fail(errors.New("connection refused"))

	rep, err := f.orch.SetOwner(ctx, "o", []rules.Rule{delayRule("r1", "a")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The a-agents converge even though b's agent is down.
	if f.agents["http://agent-a1"].count() != 1 {
		t.Fatal("reachable agents should converge despite a down peer")
	}
	if rep.Converged() {
		t.Fatal("report should flag the unreachable agent")
	}
	if rep.Err() == nil || !strings.Contains(rep.Err().Error(), "connection refused") {
		t.Fatalf("report err = %v", rep.Err())
	}
	var down AgentReport
	for _, a := range rep.Agents {
		if a.URL == "http://agent-b1" {
			down = a
		}
	}
	if down.InSync || down.Error == "" || down.Attempts != 2 {
		t.Fatalf("down agent report = %+v, want bounded retries and error", down)
	}

	// The agent recovers; anti-entropy brings it into sync.
	f.agents["http://agent-b1"].fail(nil)
	rep, err = f.orch.Reconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged() {
		t.Fatalf("recovered fleet should converge: %+v", rep)
	}
}

func TestReconcileReportsUnresolvedService(t *testing.T) {
	f := newFixture()
	ctx := context.Background()
	rep, err := f.orch.SetOwner(ctx, "o", []rules.Rule{delayRule("r1", "ghost")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unresolved) != 1 || rep.Unresolved[0] != "ghost" {
		t.Fatalf("unresolved = %v", rep.Unresolved)
	}
	if rep.Converged() || rep.Err() == nil {
		t.Fatal("unplaceable rules must fail convergence")
	}

	// The service appears later (scale-up): the next pass places the rule.
	f.reg.Add(registry.Instance{Service: "ghost", Addr: "g1:80", AgentControlURL: "http://agent-g1"})
	f.agents["http://agent-g1"] = newFakeAgent()
	rep, err = f.orch.Reconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged() || f.agents["http://agent-g1"].count() != 1 {
		t.Fatalf("late-registered service not converged: %+v", rep)
	}
}

func TestAntiEntropyLoop(t *testing.T) {
	f := newFixture()
	ctx := context.Background()
	if _, err := f.orch.SetOwner(ctx, "o", []rules.Rule{delayRule("r1", "b")}, 0); err != nil {
		t.Fatal(err)
	}
	// Wipe the agent behind the orchestrator's back.
	f.agents["http://agent-b1"] = newFakeAgent()

	stop := f.orch.StartAntiEntropy(5 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for f.agents["http://agent-b1"].count() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("anti-entropy loop never repaired the agent")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	stop() // idempotent
}

func TestWriteMetrics(t *testing.T) {
	f := newFixture()
	ctx := context.Background()
	if _, err := f.orch.SetOwner(ctx, "o", []rules.Rule{delayRule("r1", "a")}, 0); err != nil {
		t.Fatal(err)
	}
	w := metrics.NewWriter()
	f.orch.WriteMetrics(w)
	out := w.String()
	if err := metrics.Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("reconciler metrics fail lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"gremlin_reconciler_desired_generation 1",
		"gremlin_reconciler_owners 1",
		"gremlin_reconciler_drift_repairs_total 0",
		"gremlin_reconciler_lease_expiries_total 0",
		`gremlin_reconciler_agent_in_sync{agent="http://agent-a1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}
