package orchestrator

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"gremlin/internal/registry"
	"gremlin/internal/rules"
)

// fakeAgent records control calls in memory.
type fakeAgent struct {
	mu        sync.Mutex
	installed map[string]rules.Rule
	failNext  error
	flushes   int
}

func newFakeAgent() *fakeAgent {
	return &fakeAgent{installed: make(map[string]rules.Rule)}
}

func (f *fakeAgent) InstallRules(batch ...rules.Rule) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failNext != nil {
		err := f.failNext
		return err
	}
	for _, r := range batch {
		f.installed[r.ID] = r
	}
	return nil
}

func (f *fakeAgent) RemoveRule(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.installed[id]; !ok {
		return errors.New("not installed")
	}
	delete(f.installed, id)
	return nil
}

func (f *fakeAgent) ClearRules() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.installed)
	f.installed = make(map[string]rules.Rule)
	return n, nil
}

func (f *fakeAgent) Flush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flushes++
	return nil
}

func (f *fakeAgent) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.installed)
}

// fixture builds a registry with services a (2 instances, 2 agents) and b
// (1 instance), plus a dialer resolving the fake agents.
type fixture struct {
	reg    *registry.Static
	agents map[string]*fakeAgent
	orch   *Orchestrator
}

func newFixture() *fixture {
	f := &fixture{
		reg: registry.NewStatic(
			registry.Instance{Service: "a", Addr: "a1:80", AgentControlURL: "http://agent-a1"},
			registry.Instance{Service: "a", Addr: "a2:80", AgentControlURL: "http://agent-a2"},
			registry.Instance{Service: "b", Addr: "b1:80", AgentControlURL: "http://agent-b1"},
		),
		agents: map[string]*fakeAgent{
			"http://agent-a1": newFakeAgent(),
			"http://agent-a2": newFakeAgent(),
			"http://agent-b1": newFakeAgent(),
		},
	}
	f.orch = New(f.reg, WithDialer(func(url string) AgentControl {
		return f.agents[url]
	}))
	return f
}

func delayRule(id, src string) rules.Rule {
	return rules.Rule{
		ID: id, Src: src, Dst: "x",
		Action: rules.ActionDelay, Pattern: "test-*", DelayMillis: 100,
	}
}

func TestApplyFansOutToAllInstances(t *testing.T) {
	f := newFixture()
	applied, err := f.orch.Apply([]rules.Rule{delayRule("r1", "a")})
	if err != nil {
		t.Fatal(err)
	}
	// Service a has two agents: the rule lands on both (paper Figure 3).
	if f.agents["http://agent-a1"].count() != 1 || f.agents["http://agent-a2"].count() != 1 {
		t.Fatal("rule should be installed on every agent of the source service")
	}
	if f.agents["http://agent-b1"].count() != 0 {
		t.Fatal("unrelated agent received a rule")
	}
	if applied.AgentCount() != 2 || applied.RuleCount() != 2 {
		t.Fatalf("applied = %d agents, %d rules", applied.AgentCount(), applied.RuleCount())
	}
}

func TestApplyGroupsBySource(t *testing.T) {
	f := newFixture()
	_, err := f.orch.Apply([]rules.Rule{
		delayRule("r1", "a"),
		delayRule("r2", "b"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.agents["http://agent-b1"].count() != 1 {
		t.Fatal("rule for b missing")
	}
}

func TestApplyEmptyRuleset(t *testing.T) {
	f := newFixture()
	applied, err := f.orch.Apply(nil)
	if err != nil {
		t.Fatal(err)
	}
	if applied.AgentCount() != 0 {
		t.Fatal("no agents should be touched")
	}
	if err := applied.Revert(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyValidatesRules(t *testing.T) {
	f := newFixture()
	bad := delayRule("r1", "a")
	bad.DelayMillis = 0
	if _, err := f.orch.Apply([]rules.Rule{bad}); err == nil {
		t.Fatal("want validation error")
	}
}

func TestApplyUnknownService(t *testing.T) {
	f := newFixture()
	if _, err := f.orch.Apply([]rules.Rule{delayRule("r1", "ghost")}); err == nil {
		t.Fatal("want unknown-service error")
	}
}

func TestApplyAgentlessService(t *testing.T) {
	f := newFixture()
	f.reg.Add(registry.Instance{Service: "ext", Addr: "ext:443"}) // no agent
	if _, err := f.orch.Apply([]rules.Rule{delayRule("r1", "ext")}); err == nil {
		t.Fatal("want no-agents error")
	}
}

func TestApplyRollsBackOnPartialFailure(t *testing.T) {
	f := newFixture()
	f.agents["http://agent-a2"].failNext = errors.New("agent down")
	_, err := f.orch.Apply([]rules.Rule{delayRule("r1", "a")})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "agent down") {
		t.Fatalf("err = %v", err)
	}
	if f.agents["http://agent-a1"].count() != 0 {
		t.Fatal("successful agent should have been rolled back")
	}
}

func TestRevert(t *testing.T) {
	f := newFixture()
	applied, err := f.orch.Apply([]rules.Rule{delayRule("r1", "a"), delayRule("r2", "a")})
	if err != nil {
		t.Fatal(err)
	}
	if err := applied.Revert(); err != nil {
		t.Fatal(err)
	}
	for url, agent := range f.agents {
		if agent.count() != 0 {
			t.Fatalf("agent %s still has %d rules", url, agent.count())
		}
	}
	// Second revert is a no-op.
	if err := applied.Revert(); err != nil {
		t.Fatal(err)
	}
}

func TestClearAll(t *testing.T) {
	f := newFixture()
	if _, err := f.orch.Apply([]rules.Rule{delayRule("r1", "a"), delayRule("r2", "b")}); err != nil {
		t.Fatal(err)
	}
	n, err := f.orch.ClearAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // r1 on two agents + r2 on one
		t.Fatalf("ClearAll = %d, want 3", n)
	}
}

func TestClearAllScoped(t *testing.T) {
	f := newFixture()
	if _, err := f.orch.Apply([]rules.Rule{delayRule("r1", "a"), delayRule("r2", "b")}); err != nil {
		t.Fatal(err)
	}
	n, err := f.orch.ClearAll("b")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("ClearAll(b) = %d, want 1", n)
	}
	if f.agents["http://agent-a1"].count() != 1 {
		t.Fatal("agents for a should be untouched")
	}
}

func TestFlushAll(t *testing.T) {
	f := newFixture()
	if err := f.orch.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for url, agent := range f.agents {
		if agent.flushes != 1 {
			t.Fatalf("agent %s flushes = %d", url, agent.flushes)
		}
	}
	if err := f.orch.FlushAll("a"); err != nil {
		t.Fatal(err)
	}
	if f.agents["http://agent-b1"].flushes != 1 {
		t.Fatal("scoped flush touched unrelated agent")
	}
}

func TestFlushAllUnknownService(t *testing.T) {
	f := newFixture()
	if err := f.orch.FlushAll("ghost"); err == nil {
		t.Fatal("want error")
	}
}

func TestDescribe(t *testing.T) {
	f := newFixture()
	applied, err := f.orch.Apply([]rules.Rule{delayRule("r1", "b")})
	if err != nil {
		t.Fatal(err)
	}
	if got := applied.Describe(); !strings.Contains(got, "agent-b1") || !strings.Contains(got, "r1") {
		t.Fatalf("Describe = %q", got)
	}
	empty := &Applied{perAgent: map[string][]string{}}
	if got := empty.Describe(); got != "no rules applied" {
		t.Fatalf("Describe = %q", got)
	}
}

func TestControlCallsCounted(t *testing.T) {
	f := newFixture()
	if _, err := f.orch.Apply([]rules.Rule{delayRule("r1", "a")}); err != nil {
		t.Fatal(err)
	}
	if f.orch.ControlCalls() == 0 {
		t.Fatal("control calls should be counted")
	}
}

// TestConcurrentApplyRevert stresses parallel apply/revert cycles against
// the same agents; rules must never leak.
func TestConcurrentApplyRevert(t *testing.T) {
	f := newFixture()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				r := delayRule(fmt.Sprintf("r-%d-%d", w, i), "a")
				applied, err := f.orch.Apply([]rules.Rule{r})
				if err != nil {
					errs <- err
					return
				}
				if err := applied.Revert(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for url, agent := range f.agents {
		if n := agent.count(); n != 0 {
			t.Fatalf("agent %s leaked %d rules", url, n)
		}
	}
}
