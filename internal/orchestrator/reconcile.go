package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gremlin/internal/metrics"
	"gremlin/internal/registry"
	"gremlin/internal/rules"
)

// AgentReport is one agent's slice of a reconcile or drift pass.
type AgentReport struct {
	URL      string              `json:"url"`
	Desired  rules.RuleSetStatus `json:"desired"`
	Observed rules.RuleSetStatus `json:"observed"` // state after the pass (as observed before it, for Drift)
	InSync   bool                `json:"inSync"`
	Pushed   bool                `json:"pushed"`   // a content-changing PUT landed
	Attempts int                 `json:"attempts"` // round trips spent on this agent
	Error    string              `json:"error,omitempty"`

	err error
}

// Report is the structured outcome of a reconcile or drift pass: one entry
// per agent, plus services whose rules could not be placed and owners whose
// leases lapsed during the pass. Partial failure is first-class — callers
// inspect the entries or collapse them with Err.
type Report struct {
	Agents     []AgentReport `json:"agents"`
	Unresolved []string      `json:"unresolved,omitempty"` // services with desired rules but no agents
	Expired    []string      `json:"expired,omitempty"`    // owners whose leases lapsed this pass
	Version    uint64        `json:"version"`              // desired-state version the pass converged toward
}

// Converged reports whether every agent matched (or was brought to) its
// desired rule set.
func (r *Report) Converged() bool {
	if len(r.Unresolved) > 0 {
		return false
	}
	for _, a := range r.Agents {
		if !a.InSync {
			return false
		}
	}
	return true
}

// Repaired counts agents that took a content-changing push this pass.
func (r *Report) Repaired() int {
	n := 0
	for _, a := range r.Agents {
		if a.Pushed {
			n++
		}
	}
	return n
}

// Err collapses the report into a single error: nil when the pass
// converged, otherwise the per-agent failures (and unresolved services)
// joined.
func (r *Report) Err() error {
	var errs []error
	for _, svc := range r.Unresolved {
		errs = append(errs, fmt.Errorf("service %q has no gremlin agents", svc))
	}
	for _, a := range r.Agents {
		if a.err != nil {
			errs = append(errs, fmt.Errorf("agent %s: %w", a.URL, a.err))
		}
	}
	return errors.Join(errs...)
}

// Describe renders the report for tool output: one line per agent.
func (r *Report) Describe() string {
	var b []byte
	for _, a := range r.Agents {
		state := "IN SYNC"
		switch {
		case a.err != nil:
			state = "ERROR " + a.Error
		case a.Pushed:
			state = "REPAIRED"
		case !a.InSync:
			state = "DRIFTED"
		}
		b = fmt.Appendf(b, "%-40s gen=%-4d rules=%-3d %s\n", a.URL, a.Observed.Generation, a.Observed.Rules, state)
	}
	for _, svc := range r.Unresolved {
		b = fmt.Appendf(b, "service %q: no agents\n", svc)
	}
	for _, name := range r.Expired {
		b = fmt.Appendf(b, "owner %q: lease expired\n", name)
	}
	if len(b) == 0 {
		return "no agents registered\n"
	}
	return string(b)
}

// SetOwner registers (or replaces) one owner's desired rules and reconciles
// the fleet. A non-zero ttl attaches a lease: unless renewed (by a later
// SetOwner or RenewLease) the owner is withdrawn after ttl and its rules
// converge away on the next pass — and, as a second line of defence, the
// rules are shipped to agents with a matching self-expiry TTL.
func (o *Orchestrator) SetOwner(ctx context.Context, name string, rs []rules.Rule, ttl time.Duration) (*Report, error) {
	if err := o.StageOwner(name, rs, ttl); err != nil {
		return nil, err
	}
	return o.reconcile(ctx, false)
}

// StageOwner registers desired state without reconciling: the next
// Reconcile, Drift, or anti-entropy pass acts on it. SetOwner is
// StageOwner followed by an immediate reconcile.
func (o *Orchestrator) StageOwner(name string, rs []rules.Rule, ttl time.Duration) error {
	if name == "" {
		return errors.New("orchestrator: owner name must not be empty")
	}
	if err := rules.ValidateAll(rs); err != nil {
		return fmt.Errorf("orchestrator: owner %q: %w", name, err)
	}
	ow := &owner{rules: append([]rules.Rule(nil), rs...)}
	if ttl > 0 {
		ow.expires = o.now().Add(ttl)
	}
	o.mu.Lock()
	o.owners[name] = ow
	o.version++
	o.mu.Unlock()
	return nil
}

// RemoveOwner withdraws an owner's desired rules and reconciles the fleet.
// Removing an unknown owner is a no-op pass.
func (o *Orchestrator) RemoveOwner(ctx context.Context, name string) (*Report, error) {
	o.mu.Lock()
	if _, ok := o.owners[name]; ok {
		delete(o.owners, name)
		o.version++
	}
	o.mu.Unlock()
	return o.reconcile(ctx, false)
}

// RenewLease extends a leased owner's expiry to now+ttl without touching
// its rules. Renewing cheaply re-arms the agent-side TTLs on the next
// reconcile pass.
func (o *Orchestrator) RenewLease(name string, ttl time.Duration) error {
	if ttl <= 0 {
		return fmt.Errorf("orchestrator: renew %q: ttl must be positive", name)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	ow, ok := o.owners[name]
	if !ok {
		return fmt.Errorf("orchestrator: renew %q: no such owner (lease already expired?)", name)
	}
	if ow.expires.IsZero() {
		return fmt.Errorf("orchestrator: renew %q: owner holds no lease", name)
	}
	ow.expires = o.now().Add(ttl)
	return nil
}

// Owners lists the registered owner names, sorted.
func (o *Orchestrator) Owners() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	names := make([]string, 0, len(o.owners))
	for n := range o.owners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reconcile runs one anti-entropy pass: lapsed leases are withdrawn, then
// every registered agent is converged to its desired rule set — restarted
// agents get their rules back, orphaned rules are removed. Content pushes
// made here count as drift repairs.
func (o *Orchestrator) Reconcile(ctx context.Context) (*Report, error) {
	return o.reconcile(ctx, true)
}

// StartAntiEntropy reconciles every interval until the returned stop
// function is called. Pass failures are carried in the reports (visible
// via Metrics and the next Drift), never fatal to the loop.
func (o *Orchestrator) StartAntiEntropy(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				_, _ = o.Reconcile(ctx)
				cancel()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-stopped
		})
	}
}

// Drift reads every registered agent and compares it against desired state
// without pushing anything: a read-only convergence check for operators
// (`gremlin-ctl drift`) and tests.
func (o *Orchestrator) Drift(ctx context.Context) (*Report, error) {
	o.mu.Lock()
	desired, unresolved := o.desiredLocked()
	version := o.version
	o.mu.Unlock()

	urls, err := registry.AllAgentURLs(o.reg)
	if err != nil {
		return nil, fmt.Errorf("orchestrator: resolve all agents: %w", err)
	}
	rep := &Report{Unresolved: unresolved, Version: version}
	type slot struct {
		i int
		a AgentReport
	}
	results := make(chan slot, len(urls))
	for i, url := range urls {
		go func(i int, url string) {
			want := desired[url]
			ar := AgentReport{URL: url, Desired: desiredStatus(version, want.rules), Attempts: 1}
			body, err := o.agent(url).GetRuleSet(ctx)
			if err != nil {
				ar.err = err
				ar.Error = err.Error()
			} else {
				ar.Observed = rules.RuleSetStatus{Generation: body.Generation, Hash: body.Hash, Rules: len(body.Rules)}
				ar.InSync = body.Hash == ar.Desired.Hash
			}
			results <- slot{i, ar}
		}(i, url)
	}
	rep.Agents = make([]AgentReport, len(urls))
	for range urls {
		s := <-results
		rep.Agents[s.i] = s.a
	}
	o.setLastReport(rep)
	return rep, nil
}

// desiredAgent is one agent's computed desired state.
type desiredAgent struct {
	rules []rules.Rule
	ttl   time.Duration // agent-side self-expiry; 0 = permanent
}

// desiredLocked computes each registered agent's desired rule set from the
// live owners: the union of every owner's rules whose source service
// resolves to that agent, sorted by rule ID for deterministic hashes.
// Agents no owner targets get an explicit empty entry so orphaned rules are
// swept. When every owner contributing to an agent is leased, the set is
// shipped with a TTL covering the longest remaining lease; one permanent
// contributor makes the whole set permanent (the agent-side timer clears
// all rules at once, so it must never outrun a permanent owner).
func (o *Orchestrator) desiredLocked() (map[string]desiredAgent, []string) {
	desired := make(map[string]desiredAgent)
	if urls, err := registry.AllAgentURLs(o.reg); err == nil {
		for _, u := range urls {
			desired[u] = desiredAgent{}
		}
	}

	now := o.now()
	var unresolved []string
	seenUnresolved := make(map[string]bool)
	names := make([]string, 0, len(o.owners))
	for n := range o.owners {
		names = append(names, n)
	}
	sort.Strings(names)

	type agg struct {
		rules     []rules.Rule
		permanent bool
		maxLease  time.Duration
	}
	perURL := make(map[string]*agg)
	for _, name := range names {
		ow := o.owners[name]
		var remaining time.Duration
		if !ow.expires.IsZero() {
			remaining = ow.expires.Sub(now)
		}
		for _, r := range ow.rules {
			urls, err := registry.AgentURLs(o.reg, r.Src)
			if err != nil || len(urls) == 0 {
				if !seenUnresolved[r.Src] {
					seenUnresolved[r.Src] = true
					unresolved = append(unresolved, r.Src)
				}
				continue
			}
			for _, u := range urls {
				a := perURL[u]
				if a == nil {
					a = &agg{}
					perURL[u] = a
				}
				a.rules = append(a.rules, r)
				if ow.expires.IsZero() {
					a.permanent = true
				} else if remaining > a.maxLease {
					a.maxLease = remaining
				}
			}
		}
	}
	for u, a := range perURL {
		d := desiredAgent{rules: rules.NormalizeRules(a.rules)}
		if !a.permanent && a.maxLease > 0 {
			d.ttl = a.maxLease
		}
		desired[u] = d
	}
	sort.Strings(unresolved)
	return desired, unresolved
}

// expireLocked withdraws owners whose lease has lapsed, returning their
// names.
func (o *Orchestrator) expireLocked() []string {
	now := o.now()
	var expired []string
	for name, ow := range o.owners {
		if !ow.expires.IsZero() && now.After(ow.expires) {
			delete(o.owners, name)
			expired = append(expired, name)
		}
	}
	if len(expired) > 0 {
		sort.Strings(expired)
		o.version++
		o.nExpiries += int64(len(expired))
	}
	return expired
}

// reconcile runs one convergence pass. antiEntropy marks pushes as drift
// repairs (the pass was not triggered by a desired-state change).
func (o *Orchestrator) reconcile(ctx context.Context, antiEntropy bool) (*Report, error) {
	// Serialize passes; each recomputes desired state after acquiring the
	// lock, so a queued pass always pushes the newest state.
	o.syncMu.Lock()
	defer o.syncMu.Unlock()

	o.mu.Lock()
	expired := o.expireLocked()
	desired, unresolved := o.desiredLocked()
	version := o.version
	o.mu.Unlock()

	urls := make([]string, 0, len(desired))
	for u := range desired {
		urls = append(urls, u)
	}
	sort.Strings(urls)

	rep := &Report{Unresolved: unresolved, Expired: expired, Version: version}
	type slot struct {
		i int
		a AgentReport
	}
	results := make(chan slot, len(urls))
	for i, url := range urls {
		go func(i int, url string) {
			results <- slot{i, o.syncAgent(ctx, url, desired[url], version)}
		}(i, url)
	}
	rep.Agents = make([]AgentReport, len(urls))
	repairs := 0
	for range urls {
		s := <-results
		rep.Agents[s.i] = s.a
		if s.a.Pushed {
			repairs++
		}
	}
	if antiEntropy && repairs > 0 {
		o.mu.Lock()
		o.nRepairs += int64(repairs)
		o.mu.Unlock()
	}
	o.setLastReport(rep)
	return rep, nil
}

// syncAgent converges one agent to its desired rule set with a bounded
// read–CAS–retry loop: observe the agent's generation, PUT the desired set
// with If-Match on what was observed, and retry with backoff when the
// generation moved underneath us or the agent was unreachable.
func (o *Orchestrator) syncAgent(ctx context.Context, url string, want desiredAgent, version uint64) AgentReport {
	ar := AgentReport{URL: url, Desired: desiredStatus(version, want.rules)}
	c := o.agent(url)
	var lastErr error
	for i := 0; i < o.attempts; i++ {
		if i > 0 && o.backoff > 0 {
			select {
			case <-ctx.Done():
				lastErr = ctx.Err()
				i = o.attempts
				continue
			case <-time.After(o.backoff << (i - 1)):
			}
		}
		ar.Attempts = i + 1
		body, err := c.GetRuleSet(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		ar.Observed = rules.RuleSetStatus{Generation: body.Generation, Hash: body.Hash, Rules: len(body.Rules)}
		// Already converged; skip the PUT unless a lease must be (re)armed
		// or a stale agent-side lease would expire rules we now want kept.
		if body.Hash == ar.Desired.Hash && want.ttl == 0 && !body.Leased {
			ar.InSync = true
			return ar
		}
		set := rules.RuleSet{
			Generation: body.Generation + 1,
			Rules:      want.rules,
			TTLMillis:  want.ttl.Milliseconds(),
		}
		if want.ttl > 0 && set.TTLMillis == 0 {
			set.TTLMillis = 1 // sub-millisecond remainder still expires
		}
		st, err := c.PutRuleSet(ctx, set, body.Generation)
		if err != nil {
			// Lost the CAS or hit a transient failure: re-observe and retry.
			lastErr = err
			continue
		}
		ar.Observed = st
		ar.InSync = true
		ar.Pushed = st.Changed
		return ar
	}
	ar.err = lastErr
	if lastErr != nil {
		ar.Error = lastErr.Error()
	}
	return ar
}

// desiredStatus summarizes a desired rule list as a RuleSetStatus for
// reporting. The generation slot carries the orchestrator's desired-state
// version (agents converge on content hash, not generation equality).
func desiredStatus(version uint64, rs []rules.Rule) rules.RuleSetStatus {
	return rules.RuleSetStatus{
		Generation: version,
		Hash:       rules.HashRules(rs),
		Rules:      len(rs),
	}
}

func (o *Orchestrator) setLastReport(rep *Report) {
	o.mu.Lock()
	o.lastReport = rep
	o.mu.Unlock()
}

// LastReport returns the most recent reconcile or drift report, or nil.
func (o *Orchestrator) LastReport() *Report {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.lastReport
}

// WriteMetrics appends the reconciler's gauges and counters to w in
// Prometheus exposition format: the desired-state version, live owner
// count, each agent's last observed generation and sync state, plus
// cumulative drift repairs and lease expiries.
func (o *Orchestrator) WriteMetrics(w *metrics.Writer) {
	o.mu.Lock()
	version := o.version
	owners := len(o.owners)
	repairs := o.nRepairs
	expiries := o.nExpiries
	discoveries := o.nDiscoveries
	rep := o.lastReport
	o.mu.Unlock()

	w.Gauge("gremlin_reconciler_desired_generation",
		"Version of the orchestrator's desired rule state.", float64(version))
	w.Gauge("gremlin_reconciler_owners",
		"Owners (recipes, campaigns, sessions) holding desired rules.", float64(owners))
	w.Counter("gremlin_reconciler_drift_repairs_total",
		"Rule-set pushes made by anti-entropy passes to repair drifted agents.", float64(repairs))
	w.Counter("gremlin_reconciler_lease_expiries_total",
		"Owner leases that lapsed without renewal.", float64(expiries))
	w.Counter("gremlin_reconciler_discovery_syncs_total",
		"Reconcile passes triggered by registry membership events.", float64(discoveries))
	if rep != nil {
		for _, a := range rep.Agents {
			w.Gauge("gremlin_reconciler_agent_generation",
				"Rule-set generation last observed on each agent.",
				float64(a.Observed.Generation), "agent", a.URL)
			inSync := 0.0
			if a.InSync {
				inSync = 1
			}
			w.Gauge("gremlin_reconciler_agent_in_sync",
				"Whether each agent matched desired state at the last pass (1 = in sync).",
				inSync, "agent", a.URL)
		}
	}
}
