// Package pattern implements the request-ID pattern language shared by
// fault-injection rules and event-log queries: glob syntax ('*' matches any
// run of characters, '?' exactly one) or, with the "re:" prefix, a Go
// regular expression. The empty pattern and "*" match everything.
package pattern

import (
	"fmt"
	"regexp"
	"strings"
	"unicode/utf8"
)

// Pattern is a compiled request-ID pattern. The zero value matches
// everything.
type Pattern struct {
	src string
	re  *regexp.Regexp // nil means match-all

	// prefixOnly marks globs of the form "literal*", whose match is a bare
	// prefix comparison — the dominant shape in recipes ("test-*") and far
	// cheaper than the regexp engine on the data path.
	prefixOnly bool
	prefix     string
}

// Compile parses a pattern string.
func Compile(s string) (Pattern, error) {
	if s == "" || s == "*" {
		return Pattern{src: s}, nil
	}
	if raw, ok := strings.CutPrefix(s, "re:"); ok {
		re, err := regexp.Compile(raw)
		if err != nil {
			return Pattern{}, fmt.Errorf("pattern: compile regexp %q: %w", raw, err)
		}
		return Pattern{src: s, re: re}, nil
	}
	var b strings.Builder
	b.WriteString("^")
	for _, r := range s {
		switch r {
		case '*':
			b.WriteString(".*")
		case '?':
			b.WriteString(".")
		default:
			b.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	b.WriteString("$")
	re, err := regexp.Compile(b.String())
	if err != nil {
		return Pattern{}, fmt.Errorf("pattern: compile glob %q: %w", s, err)
	}
	p := Pattern{src: s, re: re}
	// "literal*" (sole wildcard: one trailing '*') is a pure prefix match.
	// Invalid UTF-8 compiles to U+FFFD above, so the byte-prefix shortcut
	// would diverge from the regex; keep such patterns on the engine.
	if i := strings.IndexAny(s, "*?"); i == len(s)-1 && s[i] == '*' && utf8.ValidString(s[:i]) {
		p.prefixOnly = true
		p.prefix = s[:i]
	}
	return p, nil
}

// MustCompile is Compile that panics on error, for statically known
// patterns.
func MustCompile(s string) Pattern {
	p, err := Compile(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Match reports whether the ID satisfies the pattern.
func (p Pattern) Match(id string) bool {
	if p.re == nil {
		return true
	}
	if p.prefixOnly {
		return strings.HasPrefix(id, p.prefix)
	}
	return p.re.MatchString(id)
}

// LiteralPrefix returns a literal string that every matching ID must start
// with ("" when no useful prefix exists). Rule matchers use it as a cheap
// pre-filter — the "structured (e.g., prefix-based) request IDs"
// optimization the paper suggests for reducing rule-matching overhead
// (§7.2).
func (p Pattern) LiteralPrefix() string {
	if p.re == nil {
		return ""
	}
	if strings.HasPrefix(p.src, "re:") {
		prefix, _ := p.re.LiteralPrefix()
		return prefix
	}
	// Glob: the literal run before the first wildcard.
	prefix := p.src
	if i := strings.IndexAny(p.src, "*?"); i >= 0 {
		prefix = p.src[:i]
	}
	// Globs compile rune-by-rune, so invalid UTF-8 becomes U+FFFD in the
	// regex and matches *any* invalid byte — the raw byte prefix would be
	// unsound as a pre-filter. Disable the fast path for such patterns.
	if !utf8.ValidString(prefix) {
		return ""
	}
	return prefix
}

// MatchAll reports whether the pattern matches every ID.
func (p Pattern) MatchAll() bool { return p.re == nil }

// String returns the original pattern source.
func (p Pattern) String() string { return p.src }
