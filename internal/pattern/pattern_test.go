package pattern

import (
	"testing"
	"testing/quick"
)

func TestCompileAndMatch(t *testing.T) {
	tests := []struct {
		pattern string
		id      string
		want    bool
	}{
		{"", "anything", true},
		{"", "", true},
		{"*", "anything", true},
		{"test-*", "test-1", true},
		{"test-*", "test-", true},
		{"test-*", "prod-1", false},
		{"test-*", "xtest-1", false},
		{"test-?", "test-a", true},
		{"test-?", "test-ab", false},
		{"re:^t[0-9]+$", "t123", true},
		{"re:^t[0-9]+$", "t12a", false},
		{"lit.eral", "lit.eral", true},
		{"lit.eral", "litXeral", false},
		{"a+b", "a+b", true},
		{"a+b", "aab", false},
	}
	for _, tt := range tests {
		p, err := Compile(tt.pattern)
		if err != nil {
			t.Fatalf("Compile(%q): %v", tt.pattern, err)
		}
		if got := p.Match(tt.id); got != tt.want {
			t.Errorf("Match(%q, %q) = %v, want %v", tt.pattern, tt.id, got, tt.want)
		}
	}
}

func TestCompileError(t *testing.T) {
	if _, err := Compile("re:["); err == nil {
		t.Fatal("want error for bad regexp")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile should panic on bad pattern")
		}
	}()
	MustCompile("re:[")
}

func TestMatchAll(t *testing.T) {
	if !MustCompile("").MatchAll() || !MustCompile("*").MatchAll() {
		t.Fatal("empty and * should match all")
	}
	if MustCompile("test-*").MatchAll() {
		t.Fatal("test-* should not match all")
	}
}

func TestZeroValueMatchesAll(t *testing.T) {
	var p Pattern
	if !p.Match("x") || !p.MatchAll() {
		t.Fatal("zero value should match everything")
	}
}

func TestString(t *testing.T) {
	if got := MustCompile("test-*").String(); got != "test-*" {
		t.Fatalf("String = %q", got)
	}
}

// Property: a glob consisting only of literal characters matches exactly
// itself.
func TestLiteralGlobMatchesSelfProperty(t *testing.T) {
	f := func(s string) bool {
		for _, r := range s {
			if r == '*' || r == '?' {
				return true // skip non-literal inputs
			}
		}
		if s == "" {
			return true
		}
		p, err := Compile(s)
		if err != nil {
			return false
		}
		return p.Match(s) && !p.Match(s+"x")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLiteralPrefix(t *testing.T) {
	tests := []struct {
		pattern string
		want    string
	}{
		{"", ""},
		{"*", ""},
		{"test-*", "test-"},
		{"test-?", "test-"},
		{"exact", "exact"},
		{"*-suffix", ""},
		{"re:^test-[0-9]+$", "test-"},
		{"re:[0-9]+", ""},
	}
	for _, tt := range tests {
		p, err := Compile(tt.pattern)
		if err != nil {
			t.Fatalf("Compile(%q): %v", tt.pattern, err)
		}
		if got := p.LiteralPrefix(); got != tt.want {
			t.Errorf("LiteralPrefix(%q) = %q, want %q", tt.pattern, got, tt.want)
		}
	}
}

// Property: any ID matched by the pattern carries its literal prefix.
func TestLiteralPrefixSoundProperty(t *testing.T) {
	f := func(pat, id string) bool {
		p, err := Compile(pat)
		if err != nil {
			return true
		}
		if !p.Match(id) {
			return true
		}
		prefix := p.LiteralPrefix()
		return prefix == "" || len(id) >= len(prefix) && id[:len(prefix)] == prefix
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
