package pattern

import "testing"

// FuzzCompile drives the pattern compiler with arbitrary inputs: it must
// never panic, and any pattern that compiles must be safely matchable.
func FuzzCompile(f *testing.F) {
	for _, seed := range []string{"", "*", "test-*", "test-?", "re:^a+$", "re:[", "a.b", "αβ*", "re:(?P<x>y)"} {
		f.Add(seed, "test-123")
	}
	f.Fuzz(func(t *testing.T, pat, id string) {
		p, err := Compile(pat)
		if err != nil {
			if len(pat) < 3 || pat[:3] != "re:" {
				t.Fatalf("non-regex pattern %q failed to compile: %v", pat, err)
			}
			return
		}
		matched := p.Match(id)
		// The literal prefix must be sound: a matching ID carries it.
		if prefix := p.LiteralPrefix(); matched && prefix != "" {
			if len(id) < len(prefix) || id[:len(prefix)] != prefix {
				t.Fatalf("pattern %q matched %q but LiteralPrefix %q is unsound", pat, id, prefix)
			}
		}
	})
}
