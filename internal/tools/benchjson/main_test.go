package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseTranscript(t *testing.T) {
	transcript := `goos: linux
goarch: amd64
pkg: gremlin
BenchmarkStoreSelectIndexed100k-8   3017  392.1ns/op
BenchmarkMatcherDecideIndexed10Rules-8    3000000  391.0 ns/op  16 B/op  1 allocs/op
BenchmarkProxyThroughputStreamed64KiB-8      5000  250013 ns/op  262.14 MB/s
PASS
ok  	gremlin	4.2s
`
	results, err := Parse(bufio.NewScanner(strings.NewReader(transcript)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2 (the torn line must be skipped): %+v", len(results), results)
	}

	r := results[0]
	if r.Name != "BenchmarkMatcherDecideIndexed10Rules" || r.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 3000000 {
		t.Fatalf("iterations = %d", r.Iterations)
	}
	for unit, want := range map[string]float64{"ns/op": 391.0, "B/op": 16, "allocs/op": 1} {
		if got := r.Metrics[unit]; got != want {
			t.Fatalf("%s = %v, want %v", unit, got, want)
		}
	}
	if got := results[1].Metrics["MB/s"]; got != 262.14 {
		t.Fatalf("MB/s = %v", got)
	}
}

func TestParseRejectsNonBenchLines(t *testing.T) {
	cases := []string{
		"",
		"PASS",
		"Benchmark",                       // no fields
		"BenchmarkX-8 notanumber 1 ns/op", // bad iterations
		"BenchmarkX-8 100",                // no metrics
		"--- BENCH: BenchmarkX-8",
	}
	for _, line := range cases {
		if r, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted: %+v", line, r)
		}
	}
}

func TestSplitProcs(t *testing.T) {
	for name, want := range map[string]struct {
		base  string
		procs int
	}{
		"BenchmarkFoo-8":      {"BenchmarkFoo", 8},
		"BenchmarkFoo":        {"BenchmarkFoo", 0},
		"BenchmarkFoo-bar":    {"BenchmarkFoo-bar", 0},
		"BenchmarkFoo-bar-16": {"BenchmarkFoo-bar", 16},
	} {
		base, procs := splitProcs(name)
		if base != want.base || procs != want.procs {
			t.Errorf("splitProcs(%q) = %q, %d; want %q, %d", name, base, procs, want.base, want.procs)
		}
	}
}
