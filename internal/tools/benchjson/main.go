// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON array on stdout, so benchmark runs can be committed and
// diffed across PRs (see the Makefile's bench-json target):
//
//	go test -bench 'MatcherDecide' . | go run ./internal/tools/benchjson
//
// Each benchmark line becomes one object: the name (CPU suffix split off),
// iteration count, and every reported metric keyed by its unit
// ("ns/op", "B/op", "allocs/op", "MB/s", ...). Non-benchmark lines are
// ignored, so the full `go test` transcript can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(in *os.File, out *os.File) error {
	results, err := Parse(bufio.NewScanner(in))
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// Parse extracts benchmark results from a `go test -bench` transcript.
func Parse(sc *bufio.Scanner) ([]Result, error) {
	var out []Result
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			out = append(out, r)
		}
	}
	return out, sc.Err()
}

// parseLine parses one "BenchmarkX-8  N  v unit  v unit ..." line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name, procs := splitProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}

// splitProcs separates the -GOMAXPROCS suffix go test appends to names.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return name, 0
	}
	return name[:i], n
}
