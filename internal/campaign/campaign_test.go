package campaign_test

import (
	"context"
	"math/rand"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gremlin/internal/campaign"
	"gremlin/internal/core"
	"gremlin/internal/graph"
	"gremlin/internal/loadgen"
	"gremlin/internal/observe"
	"gremlin/internal/orchestrator"
	"gremlin/internal/rules"
	"gremlin/internal/topology"
)

// newHarness boots an in-process topology with real HTTP data and control
// planes, plus a runner wired to its shared event store.
func newHarness(t *testing.T, spec topology.Spec) (*topology.App, *core.Runner) {
	t.Helper()
	spec.RNG = rand.New(rand.NewSource(7))
	app, err := topology.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := app.Close(); err != nil {
			t.Errorf("close app: %v", err)
		}
	})
	orch := orchestrator.New(app.Registry)
	return app, core.NewRunner(app.Graph, orch, app.Store, app.Store)
}

// campaignLoad builds a Load hook that drives the app's entry with the
// run's ID prefix, tracking how many loads ran and the peak overlap.
func campaignLoad(app *topology.App, loads, maxPar *atomic.Int64) func(context.Context, string) error {
	var inFlight atomic.Int64
	var seed atomic.Int64
	return func(ctx context.Context, idPrefix string) error {
		loads.Add(1)
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			m := maxPar.Load()
			if cur <= m || maxPar.CompareAndSwap(m, cur) {
				break
			}
		}
		_, err := loadgen.Run(app.EntryURL(), loadgen.Options{
			N: 6, Concurrency: 2, IDPrefix: idPrefix,
			Context: ctx,
			RNG:     rand.New(rand.NewSource(seed.Add(1))),
		})
		return err
	}
}

func enumOpts() campaign.EnumerateOptions {
	return campaign.EnumerateOptions{
		Generate: core.GenerateOptions{
			SkipServices: []string{topology.EdgeService},
			MaxLatency:   5 * time.Second,
		},
		HangInterval:  100 * time.Millisecond,
		EdgeDelays:    []time.Duration{20 * time.Millisecond},
		Chaos:         2,
		ChaosSeed:     1,
		ChaosMaxDelay: 30 * time.Millisecond,
	}
}

// TestCampaignSystematicSweep is the subsystem's acceptance test: a
// campaign over a 7-service binary tree runs 20+ generated recipes through
// a parallel worker pool, covers every graph edge, and prunes redundant
// scenarios via coverage signatures.
func TestCampaignSystematicSweep(t *testing.T) {
	app, runner := newHarness(t, topology.BinaryTree(2, 0))

	units, err := campaign.Enumerate(app.Graph, enumOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(units) < 20 {
		t.Fatalf("enumerated %d units, want >= 20", len(units))
	}

	// Enumeration is deterministic: same graph, same options, same plan.
	again, err := campaign.Enumerate(app.Graph, enumOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(units) {
		t.Fatalf("re-enumeration changed unit count: %d vs %d", len(again), len(units))
	}
	for i := range units {
		if units[i].Key != again[i].Key || units[i].Signature != again[i].Signature {
			t.Fatalf("unit %d differs across enumerations: %+v vs %+v", i, units[i], again[i])
		}
	}

	var loads, maxPar atomic.Int64
	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	sc, err := campaign.Run(context.Background(), runner, units, campaign.Options{
		ID:          "sweep",
		Parallelism: 4,
		JournalPath: journal,
		Load:        campaignLoad(app, &loads, &maxPar),
		DroppedCount: func() int64 {
			var sum int64
			for _, svc := range app.Services() {
				if a := app.Agent(svc); a != nil {
					sum += a.Stats().LogDropped
				}
			}
			return sum
		},
		Cleanup: func(pat string) { _, _ = app.Store.ClearMatching(pat) },
	})
	if err != nil {
		t.Fatal(err)
	}

	if sc.Units != len(units) {
		t.Fatalf("scorecard settled %d units, want %d", sc.Units, len(units))
	}
	if sc.Errors != 0 {
		t.Fatalf("operational errors: %v", sc.ErrorUnits)
	}
	if sc.Executed < 20 {
		t.Fatalf("executed %d runs, want >= 20", sc.Executed)
	}
	if sc.Skipped < 1 {
		t.Fatal("no redundant scenario was pruned by signature")
	}
	if got := loads.Load(); got != int64(sc.Executed) {
		t.Fatalf("load ran %d times for %d executed units", got, sc.Executed)
	}
	if maxPar.Load() < 2 {
		t.Fatalf("peak load overlap = %d, want > 1 (worker pool not parallel)", maxPar.Load())
	}
	if !sc.Covered() {
		t.Fatalf("scorecard leaves edges untested:\n%s", sc.Markdown())
	}

	// The journal settled every unit, and each skip names an executed
	// unit with the same signature.
	entries, err := campaign.LoadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(units) {
		t.Fatalf("journal has %d entries, want %d", len(entries), len(units))
	}
	executedSig := map[string]string{}
	for _, e := range entries {
		if e.Status == campaign.StatusPassed || e.Status == campaign.StatusFailed {
			executedSig[e.Signature] = e.Unit
		}
	}
	for _, e := range entries {
		if e.Status != campaign.StatusSkipped {
			continue
		}
		owner, ok := executedSig[e.Signature]
		if !ok {
			t.Fatalf("skipped unit %s has no executed twin for signature %s", e.Unit, e.Signature)
		}
		if !strings.Contains(e.Reason, owner) {
			t.Errorf("skip reason %q does not name owner %s", e.Reason, owner)
		}
	}

	md := sc.Markdown()
	if !strings.Contains(md, "Edge coverage: 100%") {
		t.Fatalf("markdown:\n%s", md)
	}
	if b, err := sc.JSON(); err != nil || len(b) == 0 {
		t.Fatalf("JSON render: %v", err)
	}

	// Executed runs staged faults on loaded flows, so their traces carry
	// fired rules and the journal records each run's blast radius.
	withBlast := 0
	for _, e := range entries {
		if len(e.BlastReached) > 0 {
			withBlast++
		}
	}
	if withBlast == 0 {
		t.Fatal("no journal entry recorded a blast radius")
	}
	if len(sc.Blast) != withBlast {
		t.Fatalf("scorecard has %d blast rows, journal has %d", len(sc.Blast), withBlast)
	}
	if !strings.Contains(md, "## Blast radius") {
		t.Fatalf("markdown missing blast radius section:\n%s", md)
	}
}

// TestCampaignResume kills a campaign midway and resumes it from the
// journal, asserting completed units are not re-executed.
func TestCampaignResume(t *testing.T) {
	app, runner := newHarness(t, topology.BinaryTree(1, 0))

	opts := enumOpts()
	opts.Chaos = 0
	units, err := campaign.Enumerate(app.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) < 8 {
		t.Fatalf("enumerated only %d units", len(units))
	}

	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var loads1, loads2, maxPar atomic.Int64
	var settled atomic.Int64
	_, err = campaign.Run(ctx, runner, units, campaign.Options{
		ID:          "resume",
		Parallelism: 2,
		JournalPath: journal,
		Load:        campaignLoad(app, &loads1, &maxPar),
		OnEntry: func(campaign.Entry) {
			// Kill the campaign after a few units settle; in-flight runs
			// drain, the rest stay pending.
			if settled.Add(1) == 3 {
				cancel()
			}
		},
	})
	if err != context.Canceled {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if loads1.Load() == 0 {
		t.Fatal("nothing executed before the kill; test is vacuous")
	}
	before, err := campaign.LoadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 || len(before) >= len(units) {
		t.Fatalf("journal settled %d of %d units before kill", len(before), len(units))
	}

	sc, err := campaign.Run(context.Background(), runner, units, campaign.Options{
		ID:          "resume",
		Parallelism: 2,
		JournalPath: journal,
		Load:        campaignLoad(app, &loads2, &maxPar),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Units != len(units) {
		t.Fatalf("resumed scorecard settled %d units, want %d", sc.Units, len(units))
	}
	if sc.Errors != 0 {
		t.Fatalf("errors after resume: %v", sc.ErrorUnits)
	}
	if !sc.Covered() {
		t.Fatalf("resumed campaign leaves edges untested:\n%s", sc.Markdown())
	}

	// Each executed unit ran in exactly one of the two sessions.
	if got, want := loads1.Load()+loads2.Load(), int64(sc.Executed); got != want {
		t.Fatalf("total loads %d != executed units %d (completed work re-ran)", got, want)
	}
	entries, err := campaign.LoadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, e := range entries {
		seen[e.Unit]++
	}
	for unit, n := range seen {
		if n > 1 {
			t.Fatalf("unit %s settled %d times across sessions", unit, n)
		}
	}
	if len(entries) != len(units) {
		t.Fatalf("combined journal has %d entries for %d units", len(entries), len(units))
	}
}

// TestEnumerateHonorsSkipAndTemplates locks the enumeration contract on a
// plain graph: skipped services are never fault targets, template
// filtering works, and the crash/sever overlap is detectable by signature.
func TestEnumerateHonorsSkipAndTemplates(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{
		{Src: "user", Dst: "web"},
		{Src: "web", Dst: "db"},
	})
	units, err := campaign.Enumerate(g, campaign.EnumerateOptions{
		Generate: core.GenerateOptions{SkipServices: []string{"user"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	bySig := map[string][]string{}
	for _, u := range units {
		if u.Service == "user" {
			t.Fatalf("unit %s targets a skipped service", u.Key)
		}
		bySig[u.Signature] = append(bySig[u.Signature], u.Key)
	}
	// Crash(db) and sever(web->db) install identical rule sets.
	dupFound := false
	for _, keys := range bySig {
		if len(keys) > 1 {
			dupFound = true
		}
	}
	if !dupFound {
		t.Fatalf("no signature overlap in %v", bySig)
	}

	only, err := campaign.Enumerate(g, campaign.EnumerateOptions{
		Generate:  core.GenerateOptions{SkipServices: []string{"user"}},
		Templates: []string{"sever"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(only) != 2 {
		t.Fatalf("sever-only enumeration = %d units, want 2", len(only))
	}
	for _, u := range only {
		if u.Kind != "sever" {
			t.Fatalf("template filter leaked %s", u.Key)
		}
	}
}

// TestCampaignLiveViolationAbortsLoad wires online assertions into a
// campaign: a crash unit's failure replies trip a live CheckStatus bound
// long before the load finishes, which cancels the run's load context,
// journals the violation, and forces the entry to failed.
func TestCampaignLiveViolationAbortsLoad(t *testing.T) {
	app, runner := newHarness(t, topology.BinaryTree(1, 0))

	units, err := campaign.Enumerate(app.Graph, campaign.EnumerateOptions{
		Generate: core.GenerateOptions{
			SkipServices: []string{topology.EdgeService},
			MaxLatency:   5 * time.Second,
		},
		Templates: []string{"crash"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One unit is enough: crashing tree-1 makes the fan-out at tree-0 fail
	// fast, so every injected request yields failure replies.
	var picked []campaign.Unit
	for _, u := range units {
		if u.Kind == "crash" && u.Service == "tree-1" {
			picked = append(picked, u)
			break
		}
	}
	if len(picked) == 0 {
		t.Fatalf("no crash unit for tree-1 in %d units", len(units))
	}

	// Online bound: more than 3 failure replies in the run's namespace is a
	// violation. Built here (test goroutine) since the single unit uses the
	// stateful evaluator exactly once.
	live, err := observe.NewCheckStatus("", "", "camp-live-0-*", -1, 0, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Paced so an un-aborted run would take seconds; the violation should
	// cut it after a handful of requests.
	const totalRequests = 200
	var completed atomic.Int64
	var entry campaign.Entry
	sc, err := campaign.Run(context.Background(), runner, picked, campaign.Options{
		ID:          "live",
		Parallelism: 1,
		Load: func(ctx context.Context, idPrefix string) error {
			res, err := loadgen.Run(app.EntryURL(), loadgen.Options{
				N: totalRequests, Concurrency: 1, IDPrefix: idPrefix,
				Interval: 10 * time.Millisecond,
				Context:  ctx,
				RNG:      rand.New(rand.NewSource(99)),
			})
			if res != nil {
				completed.Store(int64(len(res.Samples)))
			}
			return err
		},
		Observe: &campaign.ObserveOptions{
			Feed: observe.StoreFeed(app.Store),
			Checks: func(_ campaign.Unit, idPattern string) []observe.Assertion {
				if idPattern != "camp-live-0-*" {
					t.Errorf("checks got pattern %q", idPattern)
				}
				return []observe.Assertion{live}
			},
		},
		OnEntry: func(e campaign.Entry) { entry = e },
	})
	if err != nil {
		t.Fatal(err)
	}

	if sc.Failed != 1 {
		t.Fatalf("scorecard: %d failed, want 1 (passed %d, errors %v)", sc.Failed, sc.Passed, sc.ErrorUnits)
	}
	if entry.Status != campaign.StatusFailed {
		t.Fatalf("entry status %q, want failed (reason %q)", entry.Status, entry.Reason)
	}
	if entry.LiveViolation == "" {
		t.Fatal("entry records no live violation")
	}
	if !strings.Contains(entry.LiveViolation, "failure replies") {
		t.Fatalf("violation %q does not describe failure replies", entry.LiveViolation)
	}
	if got := completed.Load(); got == 0 || got >= totalRequests {
		t.Fatalf("load completed %d of %d requests; the live violation should abort it partway", got, totalRequests)
	}
}

// TestCampaignLeaseRenewalOutlivesTTL runs a campaign whose per-run lease
// TTL is far shorter than the load phase. The background renewal must keep
// the staged faults alive for the whole run — if it didn't, the agents
// would self-expire the rules mid-load and the revert would go stale — and
// the orchestrator must hold no leases once the campaign settles.
func TestCampaignLeaseRenewalOutlivesTTL(t *testing.T) {
	app, runner := newHarness(t, topology.TwoServices(3, time.Millisecond))

	units, err := campaign.Enumerate(app.Graph, campaign.EnumerateOptions{
		Generate: core.GenerateOptions{
			SkipServices: []string{topology.EdgeService},
			MaxLatency:   5 * time.Second,
		},
		Templates: []string{"overload"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatal("no units enumerated")
	}

	sc, err := campaign.Run(context.Background(), runner, units, campaign.Options{
		ID:          "leased",
		Parallelism: 2,
		LeaseTTL:    40 * time.Millisecond,
		Load: func(ctx context.Context, idPrefix string) error {
			// Three lease TTLs of load: only renewal can carry the run.
			time.Sleep(120 * time.Millisecond)
			_, err := loadgen.Run(app.EntryURL(), loadgen.Options{
				N: 4, IDPrefix: idPrefix, Context: ctx,
				RNG: rand.New(rand.NewSource(1)),
			})
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Errors > 0 {
		t.Fatalf("campaign hit %d operational errors:\n%s", sc.Errors, sc.Markdown())
	}
	if owners := runner.Orchestrator().Owners(); len(owners) != 0 {
		t.Fatalf("campaign left leases behind: %v", owners)
	}
}

// TestEnumerateStreamGrid: a protocol:tcp edge yields the stream fault
// grid (sever, halfopen, refuse, throttle per rate) and is excluded from
// the http sever/delay grids, while http edges get no stream units.
func TestEnumerateStreamGrid(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{
		{Src: "user", Dst: "web"},
		{Src: "web", Dst: "db", Protocol: graph.ProtocolTCP},
	})
	units, err := campaign.Enumerate(g, campaign.EnumerateOptions{
		Generate: core.GenerateOptions{SkipServices: []string{"user"}},
		L4Rates:  []int64{1024, 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]campaign.Unit{}
	for _, u := range units {
		byKey[u.Key] = u
		if u.Kind == "sever" || u.Kind == "delay" {
			if strings.Contains(u.Target, "web->db") {
				t.Fatalf("http grid unit %s targets the tcp edge", u.Key)
			}
		}
	}
	for _, want := range []string{
		"l4-sever-web-db", "l4-halfopen-web-db", "l4-refuse-web-db",
		"l4-throttle-web-db-1024", "l4-throttle-web-db-4096",
	} {
		u, ok := byKey[want]
		if !ok {
			t.Fatalf("missing stream unit %s in %v", want, byKey)
		}
		if u.Kind != "stream" || u.Service != "db" {
			t.Fatalf("unit = %+v", u)
		}
		r, err := u.Build("camp-1-*")
		if err != nil {
			t.Fatal(err)
		}
		rs, err := r.Translate(g)
		if err != nil {
			t.Fatalf("%s: %v", want, err)
		}
		for _, rule := range rs {
			if rule.Layer != rules.LayerL4 {
				t.Fatalf("%s produced non-l4 rule %+v", want, rule)
			}
			// Stream rules keep matching relay-minted conn IDs even when
			// the campaign confines the recipe to its run pattern.
			if rule.Pattern != core.L4Pattern {
				t.Fatalf("%s rule pattern = %q", want, rule.Pattern)
			}
		}
	}

	// Stream units over distinct faults have distinct signatures; the two
	// throttle rates must not collapse into one.
	if byKey["l4-throttle-web-db-1024"].Signature == byKey["l4-throttle-web-db-4096"].Signature {
		t.Fatal("throttle rates share a signature")
	}
	if byKey["l4-sever-web-db"].Signature == byKey["l4-halfopen-web-db"].Signature {
		t.Fatal("sever and halfopen share a signature")
	}

	// The stream template alone selects only stream units.
	only, err := campaign.Enumerate(g, campaign.EnumerateOptions{
		Generate:  core.GenerateOptions{SkipServices: []string{"user"}},
		Templates: []string{"stream"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(only) == 0 {
		t.Fatal("stream template enumerated nothing")
	}
	for _, u := range only {
		if u.Kind != "stream" {
			t.Fatalf("template filter leaked %s", u.Key)
		}
	}

	// An all-http graph enumerates no stream units at all.
	httpOnly, err := campaign.Enumerate(graph.FromEdges([]graph.Edge{
		{Src: "user", Dst: "web"}, {Src: "web", Dst: "db"},
	}), campaign.EnumerateOptions{
		Generate: core.GenerateOptions{SkipServices: []string{"user"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range httpOnly {
		if u.Kind == "stream" {
			t.Fatalf("stream unit %s on an http-only graph", u.Key)
		}
	}
}
