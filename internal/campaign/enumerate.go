package campaign

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"gremlin/internal/checker"
	"gremlin/internal/core"
	"gremlin/internal/graph"
	"gremlin/internal/rules"
)

// Unit is one point of the enumerated fault space: a scenario template
// instantiated for a concrete target with concrete parameters. Build
// produces the runnable recipe for a given request-ID pattern, so the
// same unit can be re-instantiated under any run's namespace.
type Unit struct {
	// Key identifies the unit stably across campaign sessions (it is the
	// journal's primary key for resume).
	Key string

	// Kind names the scenario template ("overload", "crash", "hang",
	// "partition", "sever", "delay", "stream", "chaos").
	Kind string

	// Service is the conceptual fault target (the callee, for edge units).
	Service string

	// Target describes the fault location ("svc" or "src->dst").
	Target string

	// Edges are the graph edges the unit faults, from a canonical
	// translation at enumeration time.
	Edges []graph.Edge

	// Signature is the unit's coverage signature; units sharing one inject
	// indistinguishable faults.
	Signature string

	// EIs are the canonical execution indexes the unit's faults are pinned
	// to, when the unit targets specific injection points rather than whole
	// edges (explore-plane units). Journalled, so a resumed exploration
	// recovers its point coverage from completed entries.
	EIs []string

	// Build instantiates the unit's recipe confined to pattern.
	Build func(pattern string) (core.Recipe, error)
}

// EnumerateOptions tunes fault-space enumeration.
type EnumerateOptions struct {
	// Generate seeds the overload and crash templates (scenarios and
	// assertions) via core.GenerateRecipes. Its SkipServices list is
	// honored by every template, and its thresholds parameterize the
	// timeout assertions attached to edge units.
	Generate core.GenerateOptions

	// Templates selects which deterministic templates to enumerate; nil
	// selects all of overload, crash, hang, partition, sever, delay and
	// stream (the L4 grid over protocol:tcp edges).
	Templates []string

	// HangInterval is how long the hang template stalls each request
	// (default 2 s — long enough to trip real timeouts, short enough that
	// a campaign over services without them still terminates).
	HangInterval time.Duration

	// EdgeDelays is the parameter grid for the delay template, one unit
	// per edge per value (default 100 ms, the paper's overload delay).
	EdgeDelays []time.Duration

	// Chaos appends this many randomized scenarios drawn from
	// core.RandomScenario — the Chaos Monkey baseline explored alongside
	// the systematic grid.
	Chaos int

	// ChaosSeed seeds the chaos draws, making them reproducible.
	ChaosSeed int64

	// ChaosMaxDelay bounds randomly drawn delays (default 250 ms).
	ChaosMaxDelay time.Duration

	// L4Rates is the bandwidth grid for the stream template's throttle
	// units, one unit per tcp edge per rate (default
	// core.DefaultThrottleRate).
	L4Rates []int64
}

func (o EnumerateOptions) withDefaults() EnumerateOptions {
	if o.HangInterval <= 0 {
		o.HangInterval = 2 * time.Second
	}
	if len(o.EdgeDelays) == 0 {
		o.EdgeDelays = []time.Duration{100 * time.Millisecond}
	}
	if o.ChaosMaxDelay <= 0 {
		o.ChaosMaxDelay = 250 * time.Millisecond
	}
	if len(o.L4Rates) == 0 {
		o.L4Rates = []int64{core.DefaultThrottleRate}
	}
	return o
}

// Enumerate expands the application graph into a deterministic, ordered
// list of campaign units: scenario templates × targets × parameter grids.
// Assertion-rich templates come first (overload and crash carry the full
// resilience-pattern checks from core.GenerateRecipes), so when two units
// share a coverage signature the scheduler keeps the richer one and prunes
// the other.
func Enumerate(g *graph.Graph, opts EnumerateOptions) ([]Unit, error) {
	o := opts.withDefaults()
	gen := o.Generate.WithDefaults()
	skip := make(map[string]bool, len(gen.SkipServices))
	for _, s := range gen.SkipServices {
		skip[s] = true
	}
	want := make(map[string]bool, len(o.Templates))
	for _, t := range o.Templates {
		want[t] = true
	}
	enabled := func(t string) bool { return len(o.Templates) == 0 || want[t] }

	// Targets: services with at least one unskipped dependent (someone
	// must be there to observe the failure), sorted for determinism.
	var targets []string
	for _, svc := range g.Services() {
		if skip[svc] {
			continue
		}
		deps, err := g.Dependents(svc)
		if err != nil {
			return nil, fmt.Errorf("campaign: enumerate: %w", err)
		}
		for _, d := range deps {
			if !skip[d] {
				targets = append(targets, svc)
				break
			}
		}
	}
	sort.Strings(targets)

	var units []Unit

	// Overload and crash ride on core.GenerateRecipes, inheriting its
	// assertions (bounded retries + timeouts, then circuit breakers).
	if enabled("overload") || enabled("crash") {
		recipes, err := core.GenerateRecipes(g, gen)
		if err != nil {
			return nil, fmt.Errorf("campaign: enumerate: %w", err)
		}
		for _, r := range recipes {
			name := r.Name
			kind, svc := splitAutoName(name)
			// GenerateRecipes also emits per-tcp-edge stream recipes; the
			// dedicated stream template below enumerates that grid with
			// its own parameters, so only the service-scoped templates
			// ride along here.
			if kind != "overload" && kind != "crash" {
				continue
			}
			if !enabled(kind) {
				continue
			}
			units = append(units, Unit{
				Key:     name,
				Kind:    kind,
				Service: svc,
				Target:  svc,
				Build: func(pattern string) (core.Recipe, error) {
					go2 := gen
					go2.Pattern = pattern
					rs, err := core.GenerateRecipes(g, go2)
					if err != nil {
						return core.Recipe{}, err
					}
					for _, rr := range rs {
						if rr.Name == name {
							return rr, nil
						}
					}
					return core.Recipe{}, fmt.Errorf("campaign: recipe %s not regenerated", name)
				},
			})
		}
	}

	if enabled("hang") {
		for _, svc := range targets {
			svc := svc
			deps, err := unskippedDependents(g, svc, skip)
			if err != nil {
				return nil, err
			}
			units = append(units, Unit{
				Key:     "hang-" + svc,
				Kind:    "hang",
				Service: svc,
				Target:  svc,
				Build: func(pattern string) (core.Recipe, error) {
					rec := core.Recipe{
						Name:      "hang-" + svc,
						Scenarios: []core.Scenario{core.Hang{Service: svc, Interval: o.HangInterval}},
						Pattern:   pattern,
					}
					for _, d := range deps {
						rec.Checks = append(rec.Checks,
							core.ExpectTimeoutsOn(d, gen.MaxLatency, pattern))
					}
					return rec, nil
				},
			})
		}
	}

	// Partition each root-adjacent service away from the entry side — the
	// paper's cut-based partition, on the cuts this graph actually has.
	if enabled("partition") {
		roots := g.Roots()
		rootSet := make(map[string]bool, len(roots))
		for _, r := range roots {
			rootSet[r] = true
		}
		for _, svc := range g.Services() {
			svc := svc
			if rootSet[svc] || skip[svc] {
				continue
			}
			if !crossesRoots(g, roots, svc) {
				continue
			}
			units = append(units, Unit{
				Key:     "partition-" + svc,
				Kind:    "partition",
				Service: svc,
				Target:  svc,
				Build: func(pattern string) (core.Recipe, error) {
					rec := core.Recipe{
						Name:      "partition-" + svc,
						Scenarios: []core.Scenario{core.Partition{SideA: roots, SideB: []string{svc}}},
						Pattern:   pattern,
					}
					cut, err := g.Cut(roots, []string{svc})
					if err != nil {
						return core.Recipe{}, err
					}
					for _, e := range cut {
						rec.Checks = append(rec.Checks, expectFaultObserved(e.Src, e.Dst, pattern))
					}
					return rec, nil
				},
			})
		}
	}

	// Per-edge grid: sever the connection, then delay it at each grid
	// value. These carry a generic fault-delivery assertion (plus a
	// timeout bound on the caller when it is a real service), so every
	// graph edge — including ones GenerateRecipes cannot target, like the
	// synthetic entry edge — contributes to the scorecard.
	if enabled("sever") {
		for _, e := range g.Edges() {
			e := e
			// tcp edges carry no HTTP plane to disconnect; the stream
			// template faults them at L4 instead.
			if skip[e.Dst] || g.Protocol(e.Src, e.Dst) == graph.ProtocolTCP {
				continue
			}
			units = append(units, Unit{
				Key:     fmt.Sprintf("sever-%s-%s", e.Src, e.Dst),
				Kind:    "sever",
				Service: e.Dst,
				Target:  e.Src + "->" + e.Dst,
				Build: func(pattern string) (core.Recipe, error) {
					rec := core.Recipe{
						Name:      fmt.Sprintf("sever-%s-%s", e.Src, e.Dst),
						Scenarios: []core.Scenario{core.Disconnect{From: e.Src, To: e.Dst, ErrorCode: rules.AbortSeverConnection}},
						Pattern:   pattern,
						Checks:    []core.Check{expectFaultObserved(e.Src, e.Dst, pattern)},
					}
					if !skip[e.Src] {
						rec.Checks = append(rec.Checks, core.ExpectTimeoutsOn(e.Src, gen.MaxLatency, pattern))
					}
					return rec, nil
				},
			})
		}
	}
	if enabled("delay") {
		for _, e := range g.Edges() {
			e := e
			if skip[e.Dst] || g.Protocol(e.Src, e.Dst) == graph.ProtocolTCP {
				continue
			}
			for _, d := range o.EdgeDelays {
				d := d
				key := fmt.Sprintf("delay-%s-%s-%s", e.Src, e.Dst, d)
				units = append(units, Unit{
					Key:     key,
					Kind:    "delay",
					Service: e.Dst,
					Target:  e.Src + "->" + e.Dst,
					Build: func(pattern string) (core.Recipe, error) {
						rec := core.Recipe{
							Name:      key,
							Scenarios: []core.Scenario{core.Delay{Src: e.Src, Dst: e.Dst, Interval: d, Probability: 1}},
							Pattern:   pattern,
							Checks:    []core.Check{expectFaultObserved(e.Src, e.Dst, pattern)},
						}
						if !skip[e.Src] {
							rec.Checks = append(rec.Checks, core.ExpectTimeoutsOn(e.Src, gen.MaxLatency, pattern))
						}
						return rec, nil
					},
				})
			}
		}
	}

	// Stream-fault grid over protocol:tcp edges: sever mid-stream,
	// half-open, connect-refuse, and a bandwidth throttle per grid rate.
	// L4 connections carry relay-minted IDs rather than per-run request-ID
	// namespaces, so these units assert delivery by rule-ID prefix — each
	// recipe is named by its unit key, Translate mints rule IDs under that
	// prefix, and the conn-close records log the fired rule's ID.
	if enabled("stream") {
		for _, e := range g.TCPEdges() {
			e := e
			if skip[e.Dst] {
				continue
			}
			streamUnit := func(key string, sc core.Scenario) Unit {
				return Unit{
					Key:     key,
					Kind:    "stream",
					Service: e.Dst,
					Target:  e.Src + "->" + e.Dst,
					Build: func(pattern string) (core.Recipe, error) {
						return core.Recipe{
							Name:      key,
							Scenarios: []core.Scenario{sc},
							Pattern:   pattern,
							Checks:    []core.Check{core.ExpectStreamFaults(e.Src, e.Dst, key, 1)},
						}, nil
					},
				}
			}
			units = append(units,
				streamUnit(fmt.Sprintf("l4-sever-%s-%s", e.Src, e.Dst),
					core.StreamSever{Src: e.Src, Dst: e.Dst, Probability: 1}),
				streamUnit(fmt.Sprintf("l4-halfopen-%s-%s", e.Src, e.Dst),
					core.StreamHalfOpen{Src: e.Src, Dst: e.Dst, On: rules.OnResponse, Probability: 1}),
				streamUnit(fmt.Sprintf("l4-refuse-%s-%s", e.Src, e.Dst),
					core.ConnectRefuse{Src: e.Src, Dst: e.Dst, Probability: 1}),
			)
			for _, rate := range o.L4Rates {
				units = append(units,
					streamUnit(fmt.Sprintf("l4-throttle-%s-%s-%d", e.Src, e.Dst, rate),
						core.StreamThrottle{Src: e.Src, Dst: e.Dst, BytesPerSec: rate, Probability: 1}))
			}
		}
	}

	// Randomized draws, reproducible from the seed. Duplicates of grid
	// units (or of each other) are pruned at schedule time by signature.
	if o.Chaos > 0 {
		rng := rand.New(rand.NewSource(o.ChaosSeed))
		copts := core.ChaosOptions{SkipServices: gen.SkipServices, MaxDelay: o.ChaosMaxDelay}
		for i := 0; i < o.Chaos; i++ {
			sc, err := core.RandomScenario(g, rng, copts)
			if err != nil {
				return nil, fmt.Errorf("campaign: enumerate chaos: %w", err)
			}
			key := fmt.Sprintf("chaos-%d", i)
			units = append(units, Unit{
				Key:     key,
				Kind:    "chaos",
				Target:  sc.Describe(),
				Service: "",
				Build: func(pattern string) (core.Recipe, error) {
					return core.Recipe{
						Name:      key,
						Scenarios: []core.Scenario{sc},
						Pattern:   pattern,
						Checks:    []core.Check{expectAnyFaultObserved(pattern)},
					}, nil
				},
			})
		}
	}

	// Canonical translation fills in what each unit actually faults: its
	// coverage signature and edge set.
	if err := Finalize(g, units); err != nil {
		return nil, err
	}
	return units, nil
}

// Finalize fills each unit's coverage signature and edge set from a
// canonical translation against g. Enumerate calls it on the static grid;
// planes that synthesize their own units (internal/explore) call it before
// handing them to Run, so signature-based pruning treats them uniformly.
func Finalize(g *graph.Graph, units []Unit) error {
	for i := range units {
		rec, err := units[i].Build(signaturePattern)
		if err != nil {
			return fmt.Errorf("campaign: finalize %s: %w", units[i].Key, err)
		}
		rs, err := rec.Translate(g)
		if err != nil {
			return fmt.Errorf("campaign: finalize %s: %w", units[i].Key, err)
		}
		units[i].Signature = signatureOf(rs)
		units[i].Edges = edgesOf(rs)
		if units[i].Service == "" && len(units[i].Edges) > 0 {
			units[i].Service = units[i].Edges[0].Dst
		}
	}
	return nil
}

// splitAutoName maps a core.GenerateRecipes name ("auto-overload-db") to
// its template kind and target service.
func splitAutoName(name string) (kind, svc string) {
	const p = "auto-"
	rest := name
	if len(rest) > len(p) && rest[:len(p)] == p {
		rest = rest[len(p):]
	}
	for i := 0; i < len(rest); i++ {
		if rest[i] == '-' {
			return rest[:i], rest[i+1:]
		}
	}
	return rest, ""
}

func unskippedDependents(g *graph.Graph, svc string, skip map[string]bool) ([]string, error) {
	deps, err := g.Dependents(svc)
	if err != nil {
		return nil, fmt.Errorf("campaign: enumerate: %w", err)
	}
	var out []string
	for _, d := range deps {
		if !skip[d] {
			out = append(out, d)
		}
	}
	return out, nil
}

// crossesRoots reports whether svc shares an edge with any root (the
// Partition scenario rejects empty cuts).
func crossesRoots(g *graph.Graph, roots []string, svc string) bool {
	for _, r := range roots {
		if g.HasEdge(r, svc) || g.HasEdge(svc, r) {
			return true
		}
	}
	return false
}

// expectFaultObserved asserts that at least one reply on src->dst carried
// an injected fault — the minimal evidence that the unit's outage actually
// reached the data plane under its run's pattern.
func expectFaultObserved(src, dst, pattern string) core.Check {
	name := fmt.Sprintf("FaultObserved(%s->%s)", src, dst)
	return core.ExpectCustom(name, func(c *checker.Checker) (bool, string, error) {
		rl, err := c.GetReplies(src, dst, pattern)
		if err != nil {
			return false, "", err
		}
		n := countFaulted(rl)
		return n > 0, fmt.Sprintf("%d of %d replies faulted", n, len(rl)), nil
	})
}

// expectAnyFaultObserved is expectFaultObserved over every edge at once,
// for units whose fault location is drawn at random.
func expectAnyFaultObserved(pattern string) core.Check {
	return core.ExpectCustom("FaultObserved(any)", func(c *checker.Checker) (bool, string, error) {
		rl, err := c.GetReplies("", "", pattern)
		if err != nil {
			return false, "", err
		}
		n := countFaulted(rl)
		return n > 0, fmt.Sprintf("%d of %d replies faulted", n, len(rl)), nil
	})
}

func countFaulted(rl checker.RList) int {
	n := 0
	for _, r := range rl {
		if r.FaultAction != "" || r.GremlinGenerated || r.InjectedDelayMillis > 0 {
			n++
		}
	}
	return n
}
