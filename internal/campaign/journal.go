package campaign

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"

	"gremlin/internal/checker"
	"gremlin/internal/graph"
)

// Entry statuses. Error entries are re-run on resume; the others are not.
// Telemetry entries are annotations, not outcomes: the telemetry plane
// appends one per measured unit (via AppendEntry) after the campaign
// settles, carrying the unit's fault-window differential. The scheduler
// ignores them on resume and the scorecard folds them into its Telemetry
// section without counting them as units.
const (
	StatusPassed    = "passed"
	StatusFailed    = "failed"
	StatusSkipped   = "skipped"
	StatusError     = "error"
	StatusTelemetry = "telemetry"
)

// Entry is one journal line: the outcome of scheduling one unit. The
// journal is append-only JSONL, written after each unit settles, so a
// campaign killed at any point resumes by replaying it — completed and
// skipped units are not re-run, and a unit killed mid-run (no entry yet)
// runs again.
type Entry struct {
	Campaign  string `json:"campaign,omitempty"`
	Unit      string `json:"unit"`
	Kind      string `json:"kind,omitempty"`
	Service   string `json:"service,omitempty"`
	Target    string `json:"target,omitempty"`
	RunID     string `json:"runId,omitempty"`
	Status    string `json:"status"`
	Reason    string `json:"reason,omitempty"`
	Signature string `json:"signature,omitempty"`

	// Edges are the graph edges the run faulted (from the installed rule
	// set, not the enumeration-time estimate).
	Edges []graph.Edge `json:"edges,omitempty"`

	// EIs are the execution indexes the unit's faults were pinned to, for
	// explore-plane units. Omitted for plain edge-scoped units, keeping
	// pre-explore journals byte-identical. On resume they restore the
	// explorer's per-point coverage without re-running completed points.
	EIs []string `json:"eis,omitempty"`

	// Reveal marks this as an explore-plane discovery entry: a run's traces
	// exposed an injection point reachable only under that run's faults.
	// Reveal entries carry no run of their own (the campaign engine never
	// produces or schedules them — their unit keys match no real unit);
	// they persist the explorer's frontier through the journal, so a killed
	// exploration restores revealed-but-unexercised points on resume even
	// when the revealing unit itself is already settled and will not re-run.
	Reveal *RevealedPoint `json:"reveal,omitempty"`

	// Telemetry is the unit's fault-window differential, carried by
	// StatusTelemetry annotation entries the telemetry plane appends
	// after the campaign settles.
	Telemetry *UnitTelemetry `json:"telemetry,omitempty"`

	// Results are the run's assertion verdicts, in recipe order.
	Results []checker.Result `json:"results,omitempty"`

	// LogsDropped is how many observation records the data plane dropped
	// during the run; non-zero marks the run lossy — its verdicts were
	// computed on partial evidence.
	LogsDropped int64 `json:"logsDropped,omitempty"`

	// RecordCount is how many observation records the run left in the
	// store before cleanup reclaimed its namespace — counted store-side
	// (one shard, for a sharded store), never shipped.
	RecordCount int `json:"recordCount,omitempty"`

	// BlastReached and BlastFailed are the run's blast radius, computed
	// from the run's causal traces before cleanup: services that handled
	// faulted flows, and services that delivered failures within them
	// (tracing.BlastRadius). Empty when no fault fired on any traced flow.
	BlastReached []string `json:"blastReached,omitempty"`
	BlastFailed  []string `json:"blastFailed,omitempty"`

	// LiveViolation is the first online assertion violation observed during
	// the run, when the campaign ran with Options.Observe. A non-empty
	// value means the run's load was aborted early and forces the entry to
	// StatusFailed even if the batch checks passed on the partial data.
	LiveViolation string `json:"liveViolation,omitempty"`

	ElapsedMillis int64 `json:"elapsedMillis,omitempty"`
}

// RevealedPoint is the payload of an explore-plane reveal entry: the
// injection point a run's traces exposed, with everything a resumed
// exploration needs to rebuild its frontier — the point's index and edge,
// the discovery round, and the enabling faults to replay as prerequisites.
type RevealedPoint struct {
	EI    string          `json:"ei"`
	Src   string          `json:"src,omitempty"`
	Dst   string          `json:"dst,omitempty"`
	Round int             `json:"round,omitempty"`
	By    []RevealedFault `json:"by,omitempty"`
}

// RevealedFault is one enabling fault of a revealed point. On is the
// message phase the fault fired on (rules.MessageType); phase is part of
// the replay contract — a response-phase abort lets its callee's subtree
// execute first, so replaying it on the request phase would cut off the
// very path it revealed.
type RevealedFault struct {
	Src string `json:"src"`
	Dst string `json:"dst"`
	EI  string `json:"ei"`
	On  string `json:"on,omitempty"`
}

// AppendEntry appends one entry to the journal at path — the hook other
// planes (internal/explore) use to persist their own state in the
// journal's crash-safe format. Each call opens the file, writes one
// fsynced line, and closes, so it is safe to call while a running
// campaign holds the same journal: O_APPEND writes of one line each never
// tear. An empty path is a no-op.
func AppendEntry(path string, e Entry) error {
	j, err := openJournal(path)
	if err != nil {
		return err
	}
	defer j.close()
	return j.append(e)
}

// LoadJournal reads a campaign journal. A missing file (or empty path) is
// an empty journal. Unparseable lines — e.g. a line torn by the kill that
// interrupted the previous session — are skipped.
func LoadJournal(path string) ([]Entry, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: load journal: %w", err)
	}
	defer f.Close()

	var out []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil || e.Unit == "" {
			continue
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: load journal: %w", err)
	}
	return out, nil
}

// journal appends entries to the campaign's JSONL file. A nil file (empty
// path) makes every method a no-op, so in-memory campaigns need no
// branching at call sites.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

func openJournal(path string) (*journal, error) {
	if path == "" {
		return &journal{}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open journal: %w", err)
	}
	return &journal{f: f}, nil
}

func (j *journal) append(e Entry) error {
	if j.f == nil {
		return nil
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("campaign: journal entry: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("campaign: journal write: %w", err)
	}
	// One entry per completed run: syncing here bounds what a crash can
	// lose to the runs actually in flight.
	return j.f.Sync()
}

func (j *journal) close() error {
	if j.f == nil {
		return nil
	}
	return j.f.Close()
}
