// Package campaign explores an application's fault space systematically:
// it enumerates scenario templates × targets × parameter grids from the
// application graph (Enumerate), executes the resulting recipes through a
// bounded worker pool (Run), and folds the outcomes into an aggregate
// resilience scorecard (BuildScorecard).
//
// Three properties distinguish a campaign from a loop over Runner.Run:
//
//   - Isolation. Concurrent runs share one data plane and one event store.
//     Each run confines its faults and assertions to a namespaced
//     request-ID pattern ("camp-<runID>-*") and injects load carrying the
//     matching prefix, so runs neither fault nor assert on each other's
//     traffic — no store clearing between steps.
//
//   - Feedback. Every unit carries a coverage signature (the canonical
//     form of the rules it installs). The scheduler skips units whose
//     signature has already executed, and prioritizes units faulting
//     not-yet-exercised edges — feedback-driven pruning and search in the
//     spirit of Cui et al.'s failure testing and FastFI's parallelism.
//
//   - Resumability. Outcomes append to a JSONL journal as they settle. A
//     killed campaign resumes by replaying the journal: completed and
//     skipped units are not re-run, in-flight ones (no entry) are.
package campaign

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gremlin/internal/core"
	"gremlin/internal/eventlog"
	"gremlin/internal/graph"
	"gremlin/internal/observe"
	"gremlin/internal/rules"
	"gremlin/internal/tracing"
)

// Options tunes campaign execution.
type Options struct {
	// ID names the campaign. It prefixes run IDs (and thus request-ID
	// namespaces), so two campaigns sharing a store should use distinct
	// IDs. Defaults to "camp".
	ID string

	// Parallelism bounds the worker pool (default 4).
	Parallelism int

	// JournalPath is the append-only JSONL journal; the campaign resumes
	// from its contents when the file already exists. Empty disables
	// persistence.
	JournalPath string

	// Load injects test traffic for one run. Every synthetic request must
	// carry a request ID starting with idPrefix so the run's faults hit it
	// and its assertions see it (loadgen.Options.IDPrefix does exactly
	// this). The context is cancelled when a live assertion fires (see
	// Observe); Load should wind down promptly (loadgen.Options.Context
	// does exactly this). Campaign cancellation does not cancel it —
	// in-flight runs drain and journal so resume skips them. Nil relies on
	// ambient traffic, which then must carry matching IDs by other means.
	Load func(ctx context.Context, idPrefix string) error

	// Observe, when set, watches each run's records live and aborts the
	// run's load as soon as an online assertion fires, instead of letting
	// a doomed experiment run to completion. The batch checks still
	// evaluate afterwards on whatever was collected.
	Observe *ObserveOptions

	// DroppedCount, when set, samples the data plane's cumulative count of
	// dropped observation records (e.g. summing proxy.Stats().LogDropped
	// over all agents, or one shared BufferedSink's Dropped). Runs during
	// which the count grows are journalled as lossy.
	DroppedCount func() int64

	// Cleanup, when set, is called after each run with the run's
	// request-ID pattern — typically Store.ClearMatching, reclaiming the
	// run's records without disturbing concurrent runs.
	Cleanup func(idPattern string)

	// OnEntry, when set, observes each journal entry as it settles
	// (progress reporting; called from worker goroutines).
	OnEntry func(Entry)

	// RunObserver, when set, watches each executed run's lifecycle —
	// window open at rule installation, window close once the entry
	// settles. The telemetry plane's Recorder hooks fault windows here;
	// use CombineObservers to attach several.
	RunObserver RunObserver

	// LeaseTTL, when positive, leases each run's staged faults: the run
	// registers its rules under its run ID with this TTL (renewed in the
	// background for as long as the run lives), so a killed campaign
	// process can never leak faults — the orchestrator's anti-entropy
	// loop withdraws the orphaned rules when the lease lapses, and the
	// agents themselves expire them even if the whole control plane died.
	// Zero stages rules permanently (revert-on-completion only).
	LeaseTTL time.Duration
}

// ObserveOptions wires live assertion evaluation into a campaign.
type ObserveOptions struct {
	// Feed taps the event stream (observe.StoreFeed for an in-process
	// store, observe.ClientFeed for a remote one).
	Feed observe.Feed

	// Checks builds the online assertions for one unit, scoped to the
	// run's request-ID pattern. Returning nil skips live evaluation for
	// that unit.
	Checks func(u Unit, idPattern string) []observe.Assertion
}

func (o Options) withDefaults() Options {
	if o.ID == "" {
		o.ID = "camp"
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 4
	}
	return o
}

// Run executes a campaign over units against the runner's deployment and
// returns the aggregate scorecard. It stops early — with the scorecard of
// everything settled so far and ctx.Err() — when ctx is cancelled;
// in-flight runs complete and are journalled first.
func Run(ctx context.Context, runner *core.Runner, units []Unit, opts Options) (*Scorecard, error) {
	o := opts.withDefaults()

	prior, err := LoadJournal(o.JournalPath)
	if err != nil {
		return nil, err
	}
	s := newSched(units, prior)

	j, err := openJournal(o.JournalPath)
	if err != nil {
		return nil, err
	}
	defer j.close()

	entries := make([]Entry, 0, len(units))
	for _, e := range prior {
		if _, known := s.unitIdx[e.Unit]; known && e.Status != StatusError {
			entries = append(entries, e)
		}
	}

	var (
		mu         sync.Mutex
		journalErr error
	)
	settle := func(e Entry) {
		err := j.append(e)
		mu.Lock()
		entries = append(entries, e)
		if err != nil && journalErr == nil {
			journalErr = err
		}
		mu.Unlock()
		if o.OnEntry != nil {
			o.OnEntry(e)
		}
	}

	workers := o.Parallelism
	if n := s.remaining(); workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				idx, dupOf, ok := s.next()
				if !ok {
					return
				}
				u := units[idx]
				if dupOf != "" {
					settle(Entry{
						Campaign: o.ID, Unit: u.Key, Kind: u.Kind,
						Service: u.Service, Target: u.Target,
						Status: StatusSkipped, Signature: u.Signature,
						Edges: u.Edges, EIs: u.EIs,
						Reason: "redundant with " + dupOf,
					})
					continue
				}
				settle(runUnit(ctx, runner, u, idx, o))
			}
		}()
	}
	wg.Wait()

	sc := BuildScorecard(o.ID, runner.Graph(), entries)
	if journalErr != nil {
		return sc, journalErr
	}
	return sc, ctx.Err()
}

// runUnit executes one unit under its own request-ID namespace and returns
// its journal entry. Operational failures become error entries (re-run on
// resume) rather than aborting the campaign.
func runUnit(ctx context.Context, runner *core.Runner, u Unit, idx int, o Options) Entry {
	runID := fmt.Sprintf("%s-%d", o.ID, idx)
	idPrefix := "camp-" + runID + "-"
	pat := idPrefix + "*"
	e := Entry{
		Campaign: o.ID, Unit: u.Key, Kind: u.Kind,
		Service: u.Service, Target: u.Target,
		RunID: runID, Signature: u.Signature, Edges: u.Edges, EIs: u.EIs,
	}

	recipe, err := u.Build(pat)
	if err != nil {
		e.Status, e.Reason = StatusError, err.Error()
		return e
	}

	// Live observation: a monitor over the run's namespaced records whose
	// first violation cancels the load context, aborting the experiment
	// early. The subscription races the very first records by a goroutine
	// hop at most — rule installation sits between watch start and load
	// start, and violations of interest repeat throughout a faulted run.
	//
	// loadCtx deliberately does NOT derive from ctx: cancelling the
	// campaign stops dispatching new units while in-flight runs drain and
	// journal cleanly (the resume contract). Only a live violation cuts a
	// run's load short.
	loadCtx, cancelLoad := context.WithCancel(context.Background())
	defer cancelLoad()
	var (
		monitor   *observe.Monitor
		watchDone chan struct{}
	)
	if o.Observe != nil && o.Observe.Feed != nil && o.Observe.Checks != nil {
		if checks := o.Observe.Checks(u, pat); len(checks) > 0 {
			monitor = observe.NewMonitor(checks, func(observe.Violation) { cancelLoad() })
			watchCtx, stopWatch := context.WithCancel(context.Background())
			watchDone = make(chan struct{})
			go func() {
				defer close(watchDone)
				_ = observe.Watch(watchCtx, o.Observe.Feed, pat, monitor, true)
			}()
			defer func() { stopWatch(); <-watchDone }()
		}
	}

	var droppedBefore int64
	if o.DroppedCount != nil {
		droppedBefore = o.DroppedCount()
	}
	// The observer's window opens when the translated rules are about to
	// install and closes when the entry settles; runs that never reach
	// installation (Build errors) open no window.
	observing := false
	finishRun := func(e Entry) {
		if observing {
			o.RunObserver.RunFinished(u, runID, e)
		}
	}
	ropts := core.RunOptions{
		AfterTranslate: func(rs []rules.Rule) {
			e.Edges = edgesOf(rs)
			if o.RunObserver != nil {
				observing = true
				o.RunObserver.RunStarted(u, runID, rs)
			}
		},
		Owner:    runID,
		LeaseTTL: o.LeaseTTL,
	}
	if o.Load != nil {
		ropts.Load = func() error {
			err := o.Load(loadCtx, idPrefix)
			if monitor != nil && monitor.Violated() {
				// The load was cut short on purpose; the violation, not the
				// cancellation, is the story.
				return nil
			}
			return err
		}
	}
	if o.LeaseTTL > 0 {
		// Heartbeat the lease while the run lives, so runs longer than
		// the TTL keep their faults staged; only a crash stops renewal.
		interval := o.LeaseTTL / 3
		if interval <= 0 {
			interval = time.Millisecond
		}
		stopRenew := make(chan struct{})
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-stopRenew:
					return
				case <-t.C:
					// Fails harmlessly before the rules are staged and
					// after they are reverted.
					_ = runner.Orchestrator().RenewLease(runID, o.LeaseTTL)
				}
			}
		}()
		defer close(stopRenew)
	}
	// The run itself is never cut short by campaign cancellation (the
	// resume contract: in-flight runs drain, revert, and journal cleanly),
	// so orchestration uses a fresh context rather than ctx.
	report, err := runner.Run(context.Background(), recipe, ropts)
	// Blast radius must be computed before cleanup reclaims the run's
	// records. An analysis error is not worth failing the run over; the
	// entry simply carries no blast fields.
	if traces, terr := tracing.FromSource(runner.Checker().Source(),
		eventlog.Query{IDPattern: pat}); terr == nil {
		blast := tracing.BlastRadius(traces)
		e.BlastReached, e.BlastFailed = blast.Reached, blast.Failed
	}
	if n, cerr := eventlog.CountRecords(runner.Checker().Source(),
		eventlog.Query{IDPattern: pat}); cerr == nil {
		e.RecordCount = n
	}
	if o.Cleanup != nil {
		o.Cleanup(pat)
	}
	if o.DroppedCount != nil {
		e.LogsDropped = o.DroppedCount() - droppedBefore
	}
	if monitor != nil {
		if v, ok := monitor.FirstViolation(); ok {
			e.LiveViolation = v.String()
		}
	}
	if err != nil {
		e.Status, e.Reason = StatusError, err.Error()
		finishRun(e)
		return e
	}
	e.Results = report.Results
	e.ElapsedMillis = report.TotalTime().Milliseconds()
	if report.Passed() && e.LiveViolation == "" {
		e.Status = StatusPassed
	} else {
		e.Status = StatusFailed
	}
	finishRun(e)
	return e
}

// sched is the feedback-driven scheduler: a priority pick over pending
// units (most not-yet-exercised edges first, then enumeration order, which
// puts assertion-rich templates ahead of generic ones) plus the executed-
// signature set that prunes redundant units at dispatch time.
type sched struct {
	mu        sync.Mutex
	units     []Unit
	pending   []int
	unitIdx   map[string]int
	sigOwner  map[string]string
	exercised map[graph.Edge]bool
}

func newSched(units []Unit, prior []Entry) *sched {
	s := &sched{
		units:     units,
		unitIdx:   make(map[string]int, len(units)),
		sigOwner:  make(map[string]string),
		exercised: make(map[graph.Edge]bool),
	}
	for i, u := range units {
		s.unitIdx[u.Key] = i
	}
	done := make(map[string]bool, len(prior))
	for _, e := range prior {
		if _, known := s.unitIdx[e.Unit]; !known {
			continue
		}
		if e.Status == StatusError {
			continue // re-run errored units
		}
		if e.Status == StatusTelemetry {
			continue // annotation, not an outcome: never marks a unit done
		}
		done[e.Unit] = true
		if e.Status == StatusSkipped {
			continue
		}
		if e.Signature != "" {
			s.sigOwner[e.Signature] = e.Unit
		}
		for _, edge := range e.Edges {
			s.exercised[edge] = true
		}
	}
	for i, u := range units {
		if !done[u.Key] {
			s.pending = append(s.pending, i)
		}
	}
	return s
}

func (s *sched) remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// next pops the highest-priority pending unit and atomically claims its
// signature. dupOf names the prior claimant when the unit is redundant
// (the caller journals a skip instead of running it).
func (s *sched) next() (idx int, dupOf string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return 0, "", false
	}
	best, bestScore := 0, -1
	for pi, ui := range s.pending {
		score := 0
		for _, e := range s.units[ui].Edges {
			if !s.exercised[e] {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = pi, score
		}
	}
	idx = s.pending[best]
	s.pending = append(s.pending[:best], s.pending[best+1:]...)

	u := s.units[idx]
	// A unit without a signature (not produced by Enumerate/Finalize) is
	// never treated as redundant — an empty string must not become a
	// signature class that swallows every unsigned unit after the first.
	if u.Signature != "" {
		if owner, dup := s.sigOwner[u.Signature]; dup {
			return idx, owner, true
		}
		s.sigOwner[u.Signature] = u.Key
	}
	// Mark edges at dispatch, not completion, so concurrent workers
	// spread across the graph instead of piling onto the same hot edges.
	for _, e := range u.Edges {
		s.exercised[e] = true
	}
	return idx, "", true
}
