package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gremlin/internal/graph"
	"gremlin/internal/rules"
)

func TestSignatureIgnoresRunSpecificFields(t *testing.T) {
	a := []rules.Rule{{
		ID: "crash-1", Src: "a", Dst: "b", Action: rules.ActionAbort,
		Pattern: "camp-x-1-*", ErrorCode: rules.AbortSeverConnection,
	}}
	b := []rules.Rule{{
		ID: "sever-9", Src: "a", Dst: "b", Action: rules.ActionAbort,
		Pattern: "camp-y-7-*", ErrorCode: rules.AbortSeverConnection,
		Probability: 1, On: rules.OnRequest,
	}}
	if signatureOf(a) != signatureOf(b) {
		t.Fatalf("signatures differ for equivalent faults:\n%s\n%s", signatureOf(a), signatureOf(b))
	}
}

func TestSignatureDistinguishesFaults(t *testing.T) {
	abort := []rules.Rule{{Src: "a", Dst: "b", Action: rules.ActionAbort, ErrorCode: 503}}
	sever := []rules.Rule{{Src: "a", Dst: "b", Action: rules.ActionAbort, ErrorCode: rules.AbortSeverConnection}}
	delay := []rules.Rule{{Src: "a", Dst: "b", Action: rules.ActionDelay, DelayMillis: 100}}
	slower := []rules.Rule{{Src: "a", Dst: "b", Action: rules.ActionDelay, DelayMillis: 200}}
	sigs := map[string]bool{
		signatureOf(abort): true, signatureOf(sever): true,
		signatureOf(delay): true, signatureOf(slower): true,
	}
	if len(sigs) != 4 {
		t.Fatalf("expected 4 distinct signatures, got %d", len(sigs))
	}
}

func TestSignatureOrderIndependent(t *testing.T) {
	r1 := rules.Rule{Src: "a", Dst: "b", Action: rules.ActionAbort, ErrorCode: 503}
	r2 := rules.Rule{Src: "c", Dst: "d", Action: rules.ActionDelay, DelayMillis: 50}
	if signatureOf([]rules.Rule{r1, r2}) != signatureOf([]rules.Rule{r2, r1}) {
		t.Fatal("signature depends on rule order")
	}
}

func TestEdgesOf(t *testing.T) {
	rs := []rules.Rule{
		{Src: "b", Dst: "c"}, {Src: "a", Dst: "b"}, {Src: "b", Dst: "c"},
	}
	got := edgesOf(rs)
	want := []graph.Edge{{Src: "a", Dst: "b"}, {Src: "b", Dst: "c"}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("edgesOf = %v, want %v", got, want)
	}
}

func TestSchedPrioritizesUnexercisedEdges(t *testing.T) {
	e1 := graph.Edge{Src: "a", Dst: "b"}
	e2 := graph.Edge{Src: "b", Dst: "c"}
	units := []Unit{
		{Key: "u0", Signature: "s0", Edges: []graph.Edge{e1}},
		{Key: "u1", Signature: "s1", Edges: []graph.Edge{e1}},
		{Key: "u2", Signature: "s2", Edges: []graph.Edge{e2}},
	}
	s := newSched(units, nil)

	idx, dup, ok := s.next()
	if !ok || dup != "" || idx != 0 {
		t.Fatalf("first pick = (%d, %q, %v), want unit 0", idx, dup, ok)
	}
	// e1 is now exercised: u2 (fresh edge) outranks u1 despite order.
	idx, dup, ok = s.next()
	if !ok || dup != "" || idx != 2 {
		t.Fatalf("second pick = (%d, %q, %v), want unit 2", idx, dup, ok)
	}
	idx, dup, ok = s.next()
	if !ok || idx != 1 {
		t.Fatalf("third pick = (%d, %q, %v), want unit 1", idx, dup, ok)
	}
	if _, _, ok = s.next(); ok {
		t.Fatal("scheduler returned a fourth unit")
	}
}

func TestSchedSkipsClaimedSignatures(t *testing.T) {
	units := []Unit{
		{Key: "rich", Signature: "same"},
		{Key: "dup", Signature: "same"},
	}
	s := newSched(units, nil)
	if idx, dup, _ := s.next(); idx != 0 || dup != "" {
		t.Fatalf("first = (%d, %q)", idx, dup)
	}
	if idx, dup, _ := s.next(); idx != 1 || dup != "rich" {
		t.Fatalf("second = (%d, %q), want dup of rich", idx, dup)
	}
}

func TestSchedResumeFromJournal(t *testing.T) {
	units := []Unit{
		{Key: "done", Signature: "s0"},
		{Key: "errored", Signature: "s1"},
		{Key: "same-as-done", Signature: "s0"},
		{Key: "fresh", Signature: "s3"},
	}
	prior := []Entry{
		{Unit: "done", Status: StatusPassed, Signature: "s0"},
		{Unit: "errored", Status: StatusError, Signature: "s1"},
		{Unit: "gone-from-plan", Status: StatusPassed, Signature: "sX"},
	}
	s := newSched(units, prior)
	if got := s.remaining(); got != 3 {
		t.Fatalf("remaining = %d, want 3 (errored re-runs, done does not)", got)
	}
	popped := map[string]string{}
	for {
		idx, dup, ok := s.next()
		if !ok {
			break
		}
		popped[units[idx].Key] = dup
	}
	if _, rerun := popped["done"]; rerun {
		t.Fatal("completed unit was re-scheduled")
	}
	if dup := popped["same-as-done"]; dup != "done" {
		t.Fatalf("same-as-done dup = %q, want claimed by prior session's run", dup)
	}
	if dup, ok := popped["errored"]; !ok || dup != "" {
		t.Fatalf("errored unit should re-run, got (%q, %v)", dup, ok)
	}
	if dup := popped["fresh"]; dup != "" {
		t.Fatalf("fresh unit skipped: %q", dup)
	}
}

func TestLoadJournalToleratesTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	content := `{"unit":"a","status":"passed"}
{"unit":"b","status":"failed"}
{"unit":"c","sta` // torn mid-write by a kill
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Unit != "a" || entries[1].Unit != "b" {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestLoadJournalMissingFile(t *testing.T) {
	entries, err := LoadJournal(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || entries != nil {
		t.Fatalf("missing journal = (%v, %v), want (nil, nil)", entries, err)
	}
}

func TestScorecardAggregation(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{
		{Src: "user", Dst: "web"}, {Src: "web", Dst: "db"},
	})
	entries := []Entry{
		{Unit: "u1", Service: "web", Status: StatusPassed, Edges: []graph.Edge{{Src: "user", Dst: "web"}}},
		{Unit: "u2", Service: "db", Status: StatusFailed, LogsDropped: 3,
			Edges: []graph.Edge{{Src: "web", Dst: "db"}}},
		{Unit: "u3", Status: StatusSkipped, Signature: "s", Reason: "redundant with u1"},
		{Unit: "u4", Status: StatusError, Reason: "boom"},
	}
	sc := BuildScorecard("t", g, entries)
	if sc.Units != 4 || sc.Executed != 2 || sc.Passed != 1 || sc.Failed != 1 ||
		sc.Skipped != 1 || sc.Errors != 1 || sc.Lossy != 1 {
		t.Fatalf("scorecard = %+v", sc)
	}
	if !sc.Covered() || sc.EdgeCoverage != 1 {
		t.Fatalf("coverage = %v covered=%v", sc.EdgeCoverage, sc.Covered())
	}
	var webEdge, dbEdge EdgeScore
	for _, e := range sc.Edges {
		switch e.Dst {
		case "web":
			webEdge = e
		case "db":
			dbEdge = e
		}
	}
	if webEdge.Verdict != "pass" || dbEdge.Verdict != "fail" {
		t.Fatalf("edges = %+v", sc.Edges)
	}
	md := sc.Markdown()
	for _, want := range []string{"user → web", "lossy", "boom", "| web | 1 | 1 | 0 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	if _, err := sc.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestScorecardUntestedEdge(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: "a", Dst: "b"}, {Src: "b", Dst: "c"}})
	sc := BuildScorecard("t", g, []Entry{
		{Unit: "u", Status: StatusPassed, Edges: []graph.Edge{{Src: "a", Dst: "b"}}},
	})
	if sc.Covered() {
		t.Fatal("b->c untested but Covered() = true")
	}
	if sc.EdgeCoverage != 0.5 {
		t.Fatalf("coverage = %v, want 0.5", sc.EdgeCoverage)
	}
}
