package campaign

import (
	"fmt"
	"strings"

	"gremlin/internal/rules"
)

// RunObserver observes each executed run's lifecycle. The telemetry
// plane's Recorder implements it to annotate scraped series with fault
// windows: RunStarted fires after the unit's recipe translates, just
// before its rules install (window open); RunFinished fires once the
// unit's entry is complete — rules reverted, namespace cleaned — with the
// settled entry (window close). Both are called from worker goroutines,
// concurrently when Parallelism > 1.
type RunObserver interface {
	RunStarted(u Unit, runID string, ruleset []rules.Rule)
	RunFinished(u Unit, runID string, e Entry)
}

// CombineObservers fans lifecycle callbacks out to several observers.
// Nils are dropped; combining zero observers returns nil.
func CombineObservers(obs ...RunObserver) RunObserver {
	var live multiObserver
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type multiObserver []RunObserver

func (m multiObserver) RunStarted(u Unit, runID string, ruleset []rules.Rule) {
	for _, o := range m {
		o.RunStarted(u, runID, ruleset)
	}
}

func (m multiObserver) RunFinished(u Unit, runID string, e Entry) {
	for _, o := range m {
		o.RunFinished(u, runID, e)
	}
}

// UnitTelemetry is one unit's fault-window differential, computed by the
// telemetry plane's Differ from scraped metrics: what the fleet's request
// rate, error ratio, and latency quantiles looked like before the fault
// versus during it, and how long the measured service took to return to
// its baseline band after cleanup.
type UnitTelemetry struct {
	Unit    string `json:"unit"`
	Service string `json:"service"`
	Target  string `json:"target,omitempty"`

	BaselineRate float64 `json:"baselineRate"`
	FaultRate    float64 `json:"faultRate"`

	BaselineErrorRatio float64 `json:"baselineErrorRatio"`
	FaultErrorRatio    float64 `json:"faultErrorRatio"`

	BaselineP50Millis float64 `json:"baselineP50Millis,omitempty"`
	FaultP50Millis    float64 `json:"faultP50Millis,omitempty"`
	BaselineP99Millis float64 `json:"baselineP99Millis,omitempty"`
	FaultP99Millis    float64 `json:"faultP99Millis,omitempty"`

	// DropsDelta is how many records the data plane (proxy log shipping
	// plus store subscriber fan-out) dropped during the fault window,
	// fleet-wide.
	DropsDelta int64 `json:"dropsDelta,omitempty"`

	// Recovered reports whether the measured service's latency returned
	// within the tolerance band of baseline after cleanup;
	// RecoveryMillis is how long that took, measured from window close
	// to the first in-band scrape.
	Recovered      bool  `json:"recovered,omitempty"`
	RecoveryMillis int64 `json:"recoveryMillis,omitempty"`
}

// TelemetrySummary is the scorecard's Telemetry section: scraper health
// plus the per-unit differentials.
type TelemetrySummary struct {
	Targets       int             `json:"targets,omitempty"`
	Scrapes       int64           `json:"scrapes,omitempty"`
	ScrapeErrors  int64           `json:"scrapeErrors,omitempty"`
	StaleTargets  int             `json:"staleTargets,omitempty"`
	Series        int             `json:"series,omitempty"`
	RingEvictions int64           `json:"ringEvictions,omitempty"`
	Units         []UnitTelemetry `json:"units,omitempty"`
}

// markdown renders the Telemetry section rows.
func (ts *TelemetrySummary) markdown(b *strings.Builder) {
	b.WriteString("\n## Telemetry\n\n")
	fmt.Fprintf(b, "%d units measured; %d targets, %d scrapes (%d errors, %d stale), %d series retained",
		len(ts.Units), ts.Targets, ts.Scrapes, ts.ScrapeErrors, ts.StaleTargets, ts.Series)
	if ts.RingEvictions > 0 {
		fmt.Fprintf(b, ", %d ring evictions", ts.RingEvictions)
	}
	b.WriteString(".\n")
	if len(ts.Units) == 0 {
		return
	}
	b.WriteString("\nValues are baseline → fault window.\n\n")
	b.WriteString("| unit | service | rate (rps) | errors | p50 (ms) | p99 (ms) | drops | recovery |\n")
	b.WriteString("|---|---|---|---|---|---|---:|---|\n")
	for _, u := range ts.Units {
		recovery := "—"
		if u.Recovered {
			recovery = fmt.Sprintf("%dms", u.RecoveryMillis)
		} else if u.BaselineP99Millis > 0 && u.FaultP99Millis > 0 {
			recovery = "not recovered"
		}
		fmt.Fprintf(b, "| %s | %s | %.1f → %.1f | %.1f%% → %.1f%% | %s → %s | %s → %s | %d | %s |\n",
			u.Unit, u.Service,
			u.BaselineRate, u.FaultRate,
			100*u.BaselineErrorRatio, 100*u.FaultErrorRatio,
			fmtMillis(u.BaselineP50Millis), fmtMillis(u.FaultP50Millis),
			fmtMillis(u.BaselineP99Millis), fmtMillis(u.FaultP99Millis),
			u.DropsDelta, recovery)
	}
}

func fmtMillis(v float64) string {
	if v <= 0 {
		return "—"
	}
	if v < 10 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.0f", v)
}
