package campaign

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"gremlin/internal/checker"
	"gremlin/internal/graph"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// TestScorecardMarkdownGolden pins the full Markdown rendering — every
// section the scorecard can produce — so report formatting regressions
// are caught mechanically. Regenerate with:
//
//	go test ./internal/campaign -run Golden -update-golden
func TestScorecardMarkdownGolden(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{
		{Src: "user", Dst: "web"},
		{Src: "web", Dst: "db"},
		{Src: "web", Dst: "auth"},
	})
	entries := []Entry{
		{
			Unit: "overload-web->db", Kind: "overload", Service: "db", Target: "web->db",
			Status: StatusPassed, Edges: []graph.Edge{{Src: "web", Dst: "db"}},
			EIs:          []string{"ei-1"},
			BlastReached: []string{"db", "web"},
		},
		{
			Unit: "delay-web->db-100ms", Kind: "delay", Service: "db", Target: "web->db",
			Status: StatusFailed, Edges: []graph.Edge{{Src: "web", Dst: "db"}},
			Results: []checker.Result{
				{Check: "bounded-latency user<=250ms", Passed: false},
			},
			LogsDropped:  3,
			BlastReached: []string{"db", "user", "web"},
			BlastFailed:  []string{"user"},
		},
		{
			Unit: "crash-auth", Kind: "crash", Service: "auth", Target: "web->auth",
			Status: StatusError, Reason: "agent unreachable",
		},
		{
			Unit: "delay-web->auth-100ms", Kind: "delay", Service: "auth", Target: "web->auth",
			Status: StatusSkipped, Reason: "signature seen",
		},
		{
			Unit: "delay-web->db-100ms", Status: StatusTelemetry,
			Telemetry: &UnitTelemetry{
				Unit: "delay-web->db-100ms", Service: "web", Target: "web->db",
				BaselineRate: 52.0, FaultRate: 48.1,
				BaselineErrorRatio: 0.0, FaultErrorRatio: 0.021,
				BaselineP50Millis: 3.1, FaultP50Millis: 104.2,
				BaselineP99Millis: 4.8, FaultP99Millis: 151.0,
				DropsDelta: 2, Recovered: true, RecoveryMillis: 210,
			},
		},
		{
			Unit: "overload-web->db", Status: StatusTelemetry,
			Telemetry: &UnitTelemetry{
				Unit: "overload-web->db", Service: "web", Target: "web->db",
				BaselineRate: 52.0, FaultRate: 51.0,
				BaselineErrorRatio: 0.0, FaultErrorRatio: 0.31,
			},
		},
	}
	sc := BuildScorecard("tele-golden", g, entries)
	sc.Explore = &ExploreCoverage{
		PointsDiscovered: 4, PointsExercised: 1, PointsRevealed: 2,
		PointsPruned: 1, Rounds: 2, Converged: true,
	}
	sc.Telemetry.Targets = 3
	sc.Telemetry.Scrapes = 120
	sc.Telemetry.ScrapeErrors = 1
	sc.Telemetry.Series = 84
	sc.Telemetry.RingEvictions = 12

	// Telemetry annotations must not leak into the unit counters.
	if sc.Units != 4 || sc.Executed != 2 || sc.Passed != 1 || sc.Failed != 1 {
		t.Fatalf("counters polluted by telemetry entries: %+v", sc)
	}

	got := sc.Markdown()
	golden := filepath.Join("testdata", "scorecard.golden.md")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("markdown drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
