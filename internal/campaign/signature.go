package campaign

import (
	"fmt"
	"hash/fnv"
	"sort"

	"gremlin/internal/graph"
	"gremlin/internal/rules"
)

// signaturePattern is the placeholder request-ID pattern used when a unit
// is translated for signature computation. The pattern is excluded from
// the signature (it varies per run), so any value works; a fixed one keeps
// canonical translations reproducible.
const signaturePattern = "camp-*"

// signatureOf canonicalizes a translated rule set into a coverage
// signature. Two units with equal signatures inject indistinguishable
// faults, so running both teaches nothing new — the scheduler skips the
// later one (feedback-based pruning of the failure search space, after
// Cui et al.). Rule IDs and request-ID patterns are excluded (both vary
// per run) and zero probabilities are normalized to their effective value,
// so e.g. Crash of a single-dependent service and a severed connection on
// its one inbound edge hash identically.
func signatureOf(rs []rules.Rule) string {
	keys := make([]string, 0, len(rs))
	for _, r := range rs {
		on := r.On
		if on == "" {
			on = rules.OnRequest
		}
		// Sever mode participates only for sever rules, so its default
		// does not perturb every other signature.
		mode := ""
		if r.Action == rules.ActionSever {
			mode = r.EffectiveSeverMode()
		}
		key := fmt.Sprintf("%s>%s/%s/%s/%s/c%d/d%d/p%.3f/%s/%s/r%d/b%d/%s",
			r.Src, r.Dst, r.EffectiveLayer(), on, r.Action, r.ErrorCode, r.DelayMillis,
			r.EffectiveProbability(), r.SearchBytes, r.ReplaceBytes,
			r.RateBytesPerSec, r.AbortAfterBytes, mode)
		// The callPath component is appended only when present, so every
		// signature computed before execution indexing existed — including
		// those persisted in old campaign journals — is unchanged.
		if r.CallPath != "" {
			key += "/ei=" + r.CallPath
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{';'})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// edgesOf returns the distinct graph edges a rule set faults, sorted.
func edgesOf(rs []rules.Rule) []graph.Edge {
	seen := make(map[graph.Edge]bool, len(rs))
	out := make([]graph.Edge, 0, len(rs))
	for _, r := range rs {
		e := graph.Edge{Src: r.Src, Dst: r.Dst}
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}
