package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"gremlin/internal/graph"
)

// EdgeScore is one row of the per-edge pass-fail matrix: the outcomes of
// every executed run that faulted this edge.
type EdgeScore struct {
	Src     string `json:"src"`
	Dst     string `json:"dst"`
	Runs    int    `json:"runs"`
	Passed  int    `json:"passed"`
	Failed  int    `json:"failed"`
	Verdict string `json:"verdict"` // "pass", "fail", or "untested"
}

// ServiceScore aggregates the runs targeting one service.
type ServiceScore struct {
	Service string `json:"service"`
	Runs    int    `json:"runs"`
	Passed  int    `json:"passed"`
	Failed  int    `json:"failed"`
}

// BlastScore is one executed run's blast radius: how many services the
// staged fault's flows touched, and which of them delivered failures.
type BlastScore struct {
	Unit    string   `json:"unit"`
	Reached int      `json:"reached"`
	Failed  []string `json:"failed,omitempty"`
}

// ExploreCoverage summarizes execution-index point coverage for campaigns
// driven by the explore plane (internal/explore). Exercised counts are
// folded from journal entries; the discovery-side counters are filled in by
// the explorer, which alone knows what its trace harvest surfaced.
type ExploreCoverage struct {
	// PointsDiscovered is how many distinct injection points (canonical
	// execution indexes) the explorer inventoried from observed traces.
	PointsDiscovered int `json:"pointsDiscovered"`

	// PointsExercised is how many distinct points were faulted by at least
	// one executed run (distinct EIs across passed and failed entries).
	PointsExercised int `json:"pointsExercised"`

	// PointsRevealed is how many discovered points were absent from the
	// fault-free baseline — call paths (retry and fallback branches) that
	// only exist while some enabling fault is staged.
	PointsRevealed int `json:"pointsRevealed,omitempty"`

	// PointsPruned counts candidate points dropped as EI-equivalent
	// duplicates before any unit was built for them.
	PointsPruned int `json:"pointsPruned,omitempty"`

	// Rounds is how many frontier rounds the exploration ran; Converged
	// reports whether it ended because the frontier ran dry (rather than
	// hitting a round budget or cancellation).
	Rounds    int  `json:"rounds,omitempty"`
	Converged bool `json:"converged,omitempty"`
}

// Scorecard is the campaign's aggregate resilience report.
type Scorecard struct {
	Campaign string `json:"campaign"`

	// Units is how many journal entries the campaign settled; Executed
	// counts the ones that actually ran (Passed + Failed), the rest were
	// Skipped as redundant or hit operational Errors.
	Units    int `json:"units"`
	Executed int `json:"executed"`
	Passed   int `json:"passed"`
	Failed   int `json:"failed"`
	Skipped  int `json:"skipped"`
	Errors   int `json:"errors"`

	// Lossy counts executed runs whose event logs dropped records — their
	// verdicts were computed on partial evidence.
	Lossy int `json:"lossy"`

	// EdgeCoverage is the fraction of graph edges faulted by at least one
	// executed run.
	EdgeCoverage float64 `json:"edgeCoverage"`

	Edges    []EdgeScore    `json:"edges"`
	Services []ServiceScore `json:"services"`

	// Blast lists per-run blast radii for executed runs whose traces
	// carried a fired fault, widest first. A run whose fault failed
	// services beyond the targeted edge is where resilience patterns are
	// missing.
	Blast []BlastScore `json:"blast,omitempty"`

	// Explore carries execution-index point coverage when any entry was
	// pinned to specific injection points; nil for plain edge campaigns,
	// keeping their JSON scorecards unchanged.
	Explore *ExploreCoverage `json:"explore,omitempty"`

	// Telemetry carries scraper health and per-unit fault-window
	// differentials when the campaign ran with the telemetry plane
	// attached; nil otherwise, keeping plain scorecards unchanged.
	Telemetry *TelemetrySummary `json:"telemetry,omitempty"`

	// FailedUnits lists the units whose assertions failed, with the first
	// failing check's detail.
	FailedUnits []string `json:"failedUnits,omitempty"`

	// ErrorUnits lists the units that hit operational errors.
	ErrorUnits []string `json:"errorUnits,omitempty"`
}

// BuildScorecard folds journal entries into the aggregate matrix over g's
// edges and services. Every graph edge gets a row, so coverage gaps are
// visible as "untested" rather than silently absent.
func BuildScorecard(campaignID string, g *graph.Graph, entries []Entry) *Scorecard {
	sc := &Scorecard{Campaign: campaignID}
	edgeIdx := make(map[graph.Edge]*EdgeScore)
	edgeOrder := g.Edges()
	for _, e := range edgeOrder {
		edgeIdx[e] = &EdgeScore{Src: e.Src, Dst: e.Dst}
	}
	svcIdx := make(map[string]*ServiceScore)
	svcOrder := g.Services()
	for _, s := range svcOrder {
		svcIdx[s] = &ServiceScore{Service: s}
	}

	exercisedEIs := make(map[string]bool)
	sawEIs := false
	for _, e := range entries {
		if e.Status == StatusTelemetry {
			// Telemetry annotations are not units: fold the differential
			// into the Telemetry section without touching the counters.
			if e.Telemetry != nil {
				if sc.Telemetry == nil {
					sc.Telemetry = &TelemetrySummary{}
				}
				sc.Telemetry.Units = append(sc.Telemetry.Units, *e.Telemetry)
			}
			continue
		}
		sc.Units++
		if len(e.EIs) > 0 {
			sawEIs = true
		}
		switch e.Status {
		case StatusSkipped:
			sc.Skipped++
			continue
		case StatusError:
			sc.Errors++
			sc.ErrorUnits = append(sc.ErrorUnits, fmt.Sprintf("%s: %s", e.Unit, e.Reason))
			continue
		}
		sc.Executed++
		passed := e.Status == StatusPassed
		if passed {
			sc.Passed++
		} else {
			sc.Failed++
			detail := ""
			for _, r := range e.Results {
				if !r.Passed {
					detail = r.Check
					break
				}
			}
			sc.FailedUnits = append(sc.FailedUnits, fmt.Sprintf("%s (%s)", e.Unit, detail))
		}
		if e.LogsDropped > 0 {
			sc.Lossy++
		}
		for _, ei := range e.EIs {
			exercisedEIs[ei] = true
		}
		if len(e.BlastReached) > 0 {
			sc.Blast = append(sc.Blast, BlastScore{
				Unit: e.Unit, Reached: len(e.BlastReached), Failed: e.BlastFailed,
			})
		}
		for _, edge := range e.Edges {
			es, ok := edgeIdx[edge]
			if !ok {
				// A rule may target an edge outside the reporting graph
				// (a journal from a stale topology); count it anyway.
				es = &EdgeScore{Src: edge.Src, Dst: edge.Dst}
				edgeIdx[edge] = es
				edgeOrder = append(edgeOrder, edge)
			}
			es.Runs++
			if passed {
				es.Passed++
			} else {
				es.Failed++
			}
		}
		if ss, ok := svcIdx[e.Service]; ok {
			ss.Runs++
			if passed {
				ss.Passed++
			} else {
				ss.Failed++
			}
		}
	}

	covered := 0
	for _, e := range edgeOrder {
		es := edgeIdx[e]
		switch {
		case es.Runs == 0:
			es.Verdict = "untested"
		case es.Failed > 0:
			es.Verdict = "fail"
		default:
			es.Verdict = "pass"
		}
		if es.Runs > 0 {
			covered++
		}
		sc.Edges = append(sc.Edges, *es)
	}
	for _, s := range svcOrder {
		sc.Services = append(sc.Services, *svcIdx[s])
	}
	if len(sc.Edges) > 0 {
		sc.EdgeCoverage = float64(covered) / float64(len(sc.Edges))
	}
	if sawEIs {
		// Discovery-side counters (discovered/revealed/pruned/rounds) are
		// the explorer's to fill; a scorecard built from the journal alone
		// still reports what was exercised.
		sc.Explore = &ExploreCoverage{
			PointsDiscovered: len(exercisedEIs),
			PointsExercised:  len(exercisedEIs),
		}
	}
	sort.Strings(sc.FailedUnits)
	sort.Strings(sc.ErrorUnits)
	sort.SliceStable(sc.Blast, func(i, j int) bool {
		if len(sc.Blast[i].Failed) != len(sc.Blast[j].Failed) {
			return len(sc.Blast[i].Failed) > len(sc.Blast[j].Failed)
		}
		return sc.Blast[i].Reached > sc.Blast[j].Reached
	})
	return sc
}

// Covered reports whether every edge was faulted by at least one run.
func (s *Scorecard) Covered() bool {
	for _, e := range s.Edges {
		if e.Runs == 0 {
			return false
		}
	}
	return true
}

// JSON renders the scorecard as indented JSON.
func (s *Scorecard) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Markdown renders the scorecard as a Markdown report: the summary line,
// the per-edge matrix, and the per-service rollup.
func (s *Scorecard) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Campaign %s\n\n", s.Campaign)
	fmt.Fprintf(&b, "%d units: %d executed (%d passed, %d failed), %d skipped as redundant, %d errored.\n",
		s.Units, s.Executed, s.Passed, s.Failed, s.Skipped, s.Errors)
	fmt.Fprintf(&b, "Edge coverage: %.0f%%.", 100*s.EdgeCoverage)
	if s.Lossy > 0 {
		fmt.Fprintf(&b, " **%d lossy runs** (event logs dropped records — verdicts untrustworthy).", s.Lossy)
	}
	if s.Explore != nil {
		x := s.Explore
		fmt.Fprintf(&b, "\nExplore coverage: %d injection points discovered", x.PointsDiscovered)
		if x.PointsRevealed > 0 {
			fmt.Fprintf(&b, " (%d revealed only under fault)", x.PointsRevealed)
		}
		fmt.Fprintf(&b, ", %d exercised, %d pruned as EI-equivalent.", x.PointsExercised, x.PointsPruned)
		if x.Rounds > 0 {
			state := "frontier not yet dry"
			if x.Converged {
				state = "converged"
			}
			fmt.Fprintf(&b, " %d rounds (%s).", x.Rounds, state)
		}
	}
	if s.Telemetry != nil {
		b.WriteString("\n")
		s.Telemetry.markdown(&b)
		b.WriteString("\n## Edges\n\n| edge | runs | passed | failed | verdict |\n|---|---:|---:|---:|---|\n")
	} else {
		b.WriteString("\n\n## Edges\n\n| edge | runs | passed | failed | verdict |\n|---|---:|---:|---:|---|\n")
	}
	for _, e := range s.Edges {
		fmt.Fprintf(&b, "| %s → %s | %d | %d | %d | %s |\n", e.Src, e.Dst, e.Runs, e.Passed, e.Failed, e.Verdict)
	}
	b.WriteString("\n## Services\n\n| service | runs | passed | failed |\n|---|---:|---:|---:|\n")
	for _, sv := range s.Services {
		fmt.Fprintf(&b, "| %s | %d | %d | %d |\n", sv.Service, sv.Runs, sv.Passed, sv.Failed)
	}
	if len(s.Blast) > 0 {
		b.WriteString("\n## Blast radius\n\n| unit | services reached | services failed |\n|---|---:|---|\n")
		for _, bl := range s.Blast {
			failed := strings.Join(bl.Failed, ", ")
			if failed == "" {
				failed = "—"
			}
			fmt.Fprintf(&b, "| %s | %d | %s |\n", bl.Unit, bl.Reached, failed)
		}
	}
	if len(s.FailedUnits) > 0 {
		b.WriteString("\n## Failed units\n\n")
		for _, u := range s.FailedUnits {
			fmt.Fprintf(&b, "- %s\n", u)
		}
	}
	if len(s.ErrorUnits) > 0 {
		b.WriteString("\n## Errored units\n\n")
		for _, u := range s.ErrorUnits {
			fmt.Fprintf(&b, "- %s\n", u)
		}
	}
	return b.String()
}
