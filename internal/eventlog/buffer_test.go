package eventlog

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestBufferedSinkFlushesOnSize(t *testing.T) {
	store := NewStore()
	// A huge interval isolates the size trigger.
	b := NewBufferedSinkOpts(store, BufferOptions{Size: 3, Interval: time.Hour})
	defer b.Close()

	if err := b.Log(Record{Src: "a", Dst: "b", Kind: KindRequest}); err != nil {
		t.Fatal(err)
	}
	// Below the threshold nothing ships (the interval is an hour away).
	time.Sleep(10 * time.Millisecond)
	if store.Len() != 0 {
		t.Fatalf("premature flush: %d", store.Len())
	}
	if err := b.Log(
		Record{Src: "a", Dst: "b", Kind: KindRequest},
		Record{Src: "a", Dst: "b", Kind: KindRequest},
	); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "size-triggered flush", func() bool { return store.Len() == 3 })

	if err := b.Log(Record{Src: "a", Dst: "b", Kind: KindRequest}); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 4 {
		t.Fatalf("after flush: %d", store.Len())
	}

	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Log(Record{}); err == nil {
		t.Fatal("Log after Close should fail")
	}
}

func TestBufferedSinkFlushesOnInterval(t *testing.T) {
	store := NewStore()
	// A huge size threshold isolates the interval trigger.
	b := NewBufferedSinkOpts(store, BufferOptions{Size: 1 << 20, Interval: 5 * time.Millisecond})
	defer b.Close()
	if err := b.Log(Record{Src: "a", Dst: "b", Kind: KindRequest}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "interval-triggered flush", func() bool { return store.Len() == 1 })
}

func TestBufferedSinkDefaultSize(t *testing.T) {
	store := NewStore()
	b := NewBufferedSinkOpts(store, BufferOptions{Interval: time.Hour})
	defer b.Close()
	for i := 0; i < 127; i++ {
		if err := b.Log(Record{Src: "a", Dst: "b", Kind: KindRequest}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(10 * time.Millisecond)
	if store.Len() != 0 {
		t.Fatalf("store should still be empty, has %d", store.Len())
	}
	if err := b.Log(Record{Src: "a", Dst: "b", Kind: KindRequest}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "default-size flush at 128", func() bool { return store.Len() == 128 })
}

// slowSink delays every shipment, emulating a distant or overloaded store.
type slowSink struct {
	delay time.Duration
	inner *Store
}

func (s *slowSink) Log(recs ...Record) error {
	time.Sleep(s.delay)
	return s.inner.Log(recs...)
}

// TestBufferedSinkLogNeverBlocksOnSlowStore is the overhaul's contract: a
// logger (a live proxied request) must never wait out a store round trip,
// even when every record crosses the flush threshold.
func TestBufferedSinkLogNeverBlocksOnSlowStore(t *testing.T) {
	slow := &slowSink{delay: 200 * time.Millisecond, inner: NewStore()}
	b := NewBufferedSinkOpts(slow, BufferOptions{Size: 1, Max: 1000, Interval: 10 * time.Millisecond})
	defer b.Close()

	const n = 100
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := b.Log(Record{Src: "a", Dst: "b", Kind: KindRequest}); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// The old synchronous sink would take n × delay = 20 s here (every Log
	// crosses the size-1 threshold). One round trip's worth of slack is
	// already generous for 100 buffered appends.
	if elapsed >= slow.delay {
		t.Fatalf("%d Log calls took %v; data path blocked on the store", n, elapsed)
	}
	// All records still arrive (batches coalesce while the store is slow).
	waitFor(t, "all records shipped", func() bool { return slow.inner.Len() == n })
	if b.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", b.Dropped())
	}
}

// flakySink fails until healed, then records everything.
type flakySink struct {
	mu     sync.Mutex
	broken bool
	inner  *Store
	fails  int
}

func (f *flakySink) Log(recs ...Record) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.broken {
		f.fails++
		return errors.New("store down")
	}
	return f.inner.Log(recs...)
}

func (f *flakySink) heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.broken = false
}

func TestBufferedSinkRetriesFailedFlush(t *testing.T) {
	flaky := &flakySink{broken: true, inner: NewStore()}
	b := NewBufferedSinkOpts(flaky, BufferOptions{Size: 2, Interval: time.Hour})
	defer b.Close()

	if err := b.Log(
		Record{Src: "a", Dst: "b", Kind: KindRequest, RequestID: "test-1"},
		Record{Src: "a", Dst: "b", Kind: KindRequest, RequestID: "test-2"},
	); err != nil {
		t.Fatal(err)
	}
	// The store is down: a synchronous flush reports the failure but must
	// keep the records for retry instead of silently dropping them.
	if err := b.Flush(); err == nil {
		t.Fatal("Flush against a broken store should fail")
	}
	if flaky.inner.Len() != 0 {
		t.Fatal("no records should have landed")
	}

	flaky.heal()
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := flaky.inner.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].RequestID != "test-1" || recs[1].RequestID != "test-2" {
		t.Fatalf("retried records = %+v, want both originals in order", recs)
	}
	if b.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0 (bound never hit)", b.Dropped())
	}
}

func TestBufferedSinkBoundsBufferAndCountsDrops(t *testing.T) {
	flaky := &flakySink{broken: true, inner: NewStore()}
	b := NewBufferedSinkOpts(flaky, BufferOptions{Size: 4, Max: 8, Interval: time.Hour})
	defer b.Close()

	for i := 0; i < 20; i++ {
		if err := b.Log(Record{Src: "a", Dst: "b", Kind: KindRequest}); err != nil {
			t.Fatal(err)
		}
		_ = b.Flush() // fails; records bounce back into the buffer
	}
	if d := b.Dropped(); d != 12 {
		t.Fatalf("Dropped = %d, want 12 (20 logged, bound 8)", d)
	}

	flaky.heal()
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if flaky.inner.Len() != 8 {
		t.Fatalf("store has %d records, want the 8 retained", flaky.inner.Len())
	}
}

// TestBufferedSinkCountsFlushesAndRetries pins the shipping-health counters
// that proxy.Agent.Stats surfaces: successful shipments bump Flushes,
// failed ones bump Retries (the batch bounces back into the buffer).
func TestBufferedSinkCountsFlushesAndRetries(t *testing.T) {
	flaky := &flakySink{broken: true, inner: NewStore()}
	b := NewBufferedSinkOpts(flaky, BufferOptions{Size: 1 << 20, Interval: time.Hour})
	defer b.Close()

	if err := b.Log(Record{Src: "a", Dst: "b", Kind: KindRequest}); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err == nil {
		t.Fatal("Flush against a broken store should fail")
	}
	if f, r := b.Flushes(), b.Retries(); f != 0 || r != 1 {
		t.Fatalf("after failed flush: Flushes = %d, Retries = %d, want 0, 1", f, r)
	}

	flaky.heal()
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if f, r := b.Flushes(), b.Retries(); f != 1 || r != 1 {
		t.Fatalf("after recovery: Flushes = %d, Retries = %d, want 1, 1", f, r)
	}

	// Flushing an empty buffer ships nothing and counts nothing.
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if f := b.Flushes(); f != 1 {
		t.Fatalf("empty flush bumped Flushes to %d", f)
	}
}

// countingBatchSink records LogBatch calls so tests can verify the
// buffered sink prefers the batch path over record-by-record Log.
type countingBatchSink struct {
	mu      sync.Mutex
	batches [][]Record
	logs    int
}

func (c *countingBatchSink) Log(recs ...Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.logs++
	return nil
}

func (c *countingBatchSink) LogBatch(recs []Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.batches = append(c.batches, recs)
	return nil
}

func (c *countingBatchSink) stats() (batches, logs, recs int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, b := range c.batches {
		recs += len(b)
	}
	return len(c.batches), c.logs, recs
}

func TestBufferedSinkUsesBatchPath(t *testing.T) {
	sink := &countingBatchSink{}
	b := NewBufferedSinkOpts(sink, BufferOptions{Size: 4, Interval: time.Hour})
	defer b.Close()

	for i := 0; i < 10; i++ {
		if err := b.Log(Record{Src: "a", Dst: "b", Kind: KindRequest}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "batched flushes", func() bool {
		_, _, recs := sink.stats()
		return recs == 10
	})
	batches, logs, _ := sink.stats()
	if logs != 0 {
		t.Fatalf("%d record-by-record Log calls; all flushes should batch", logs)
	}
	if batches == 0 {
		t.Fatal("no LogBatch calls")
	}
	if got := b.BatchRecords(); got != 10 {
		t.Fatalf("BatchRecords=%d, want 10", got)
	}
	if got := b.MaxBatch(); got < 4 || got > 10 {
		t.Fatalf("MaxBatch=%d, want within [4,10]", got)
	}
}
