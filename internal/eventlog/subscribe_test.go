package eventlog

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gremlin/internal/metrics"
)

func TestSubscribeDeliversMatchingRecords(t *testing.T) {
	s := NewStore()
	sub, err := s.Subscribe("req-*")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	if err := s.Log(
		Record{RequestID: "req-1", Src: "a", Dst: "b", Kind: KindRequest},
		Record{RequestID: "other", Src: "a", Dst: "b", Kind: KindRequest},
		Record{RequestID: "req-2", Src: "b", Dst: "a", Kind: KindReply},
	); err != nil {
		t.Fatal(err)
	}

	var got []string
	for len(got) < 2 {
		select {
		case r := <-sub.C():
			got = append(got, r.RequestID)
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out; got %v", got)
		}
	}
	if got[0] != "req-1" || got[1] != "req-2" {
		t.Fatalf("delivered %v, want [req-1 req-2]", got)
	}
	select {
	case r := <-sub.C():
		t.Fatalf("unexpected extra record %q", r.RequestID)
	default:
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", sub.Dropped())
	}
	if s.Published() != 2 {
		t.Fatalf("published = %d, want 2", s.Published())
	}
}

func TestSubscribeBadPattern(t *testing.T) {
	s := NewStore()
	if _, err := s.Subscribe("re:["); err == nil {
		t.Fatal("bad pattern accepted")
	}
	if s.Subscribers() != 0 {
		t.Fatalf("subscribers = %d after failed subscribe", s.Subscribers())
	}
}

// TestSubscribeSlowConsumerDrops pins the bounded-buffer contract: a
// consumer that never reads loses everything beyond its buffer, the losses
// are counted, and the append path is never blocked.
func TestSubscribeSlowConsumerDrops(t *testing.T) {
	s := NewStore()
	const buffer = 4
	sub, err := s.SubscribeBuffer("", buffer)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	const n = 100
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			_ = s.Log(Record{RequestID: fmt.Sprintf("r-%03d", i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("append path blocked by a stuck subscriber")
	}

	if got := sub.Dropped(); got != n-buffer {
		t.Fatalf("dropped = %d, want %d", got, n-buffer)
	}
	if got := s.SubscriberDropped(); got != n-buffer {
		t.Fatalf("store dropped = %d, want %d", got, n-buffer)
	}
	// The survivors are the first `buffer` records, in order.
	for i := 0; i < buffer; i++ {
		r := <-sub.C()
		if want := fmt.Sprintf("r-%03d", i); r.RequestID != want {
			t.Fatalf("record %d = %q, want %q", i, r.RequestID, want)
		}
	}
}

func TestSubscriptionCloseIdempotentAndConcurrentWithLog(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Log(Record{RequestID: "x"})
			}
		}
	}()

	for i := 0; i < 50; i++ {
		sub, err := s.SubscribeBuffer("", 2)
		if err != nil {
			t.Fatal(err)
		}
		// Drain a little, then close while the logger is mid-flight; a
		// second Close must be a no-op.
		select {
		case <-sub.C():
		default:
		}
		sub.Close()
		sub.Close()
		// C is closed after Close: drain to the closed signal.
		for range sub.C() {
		}
	}
	close(stop)
	wg.Wait()
	if s.Subscribers() != 0 {
		t.Fatalf("subscribers = %d after all closed", s.Subscribers())
	}
}

func TestStoreLogSkipsPublishWithoutSubscribers(t *testing.T) {
	s := NewStore()
	if err := s.Log(Record{RequestID: "a"}); err != nil {
		t.Fatal(err)
	}
	if s.Published() != 0 || s.SubscriberDropped() != 0 {
		t.Fatalf("published=%d dropped=%d with no subscribers", s.Published(), s.SubscriberDropped())
	}
	if s.Appended() != 1 {
		t.Fatalf("appended = %d, want 1", s.Appended())
	}
}

func TestServerStreamEndToEnd(t *testing.T) {
	old := streamHeartbeat
	streamHeartbeat = 50 * time.Millisecond
	defer func() { streamHeartbeat = old }()

	store := NewStore()
	srv, err := NewServer("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.URL(), nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	recs := make(chan Record, 16)
	errc := make(chan error, 1)
	go func() {
		errc <- c.Stream(ctx, "live-*", func(r Record) error {
			recs <- r
			if r.RequestID == "live-done" {
				return ErrStreamStopped
			}
			return nil
		})
	}()

	// Wait for the subscription to register before logging, so the stream
	// doesn't miss the records.
	deadline := time.Now().Add(5 * time.Second)
	for store.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream never subscribed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := c.Log(
		Record{RequestID: "live-1", Src: "a", Dst: "b", Status: 503},
		Record{RequestID: "ignored", Src: "a", Dst: "b"},
		Record{RequestID: "live-done", Src: "a", Dst: "b"},
	); err != nil {
		t.Fatal(err)
	}

	var got []string
	for len(got) < 2 {
		select {
		case r := <-recs:
			got = append(got, r.RequestID)
		case <-ctx.Done():
			t.Fatalf("timed out; got %v", got)
		}
	}
	if got[0] != "live-1" || got[1] != "live-done" {
		t.Fatalf("streamed %v, want [live-1 live-done]", got)
	}
	if err := <-errc; err != nil {
		t.Fatalf("stream returned %v, want nil after ErrStreamStopped", err)
	}

	// The server-side subscription is torn down once the client goes away.
	deadline = time.Now().Add(5 * time.Second)
	for store.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers = %d after stream end", store.Subscribers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerStreamCancelledByContext(t *testing.T) {
	store := NewStore()
	srv, err := NewServer("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.URL(), nil)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- c.Stream(ctx, "", func(Record) error { return nil }) }()

	deadline := time.Now().Add(5 * time.Second)
	for store.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream never subscribed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("stream err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not stop on cancel")
	}
}

func TestServerStreamRejectsBadRequests(t *testing.T) {
	store := NewStore()
	srv, err := NewServer("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.URL(), nil)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Stream(ctx, "re:[", func(Record) error { return nil }); err == nil {
		t.Fatal("bad pattern accepted")
	}
	resp, err := http.Get(srv.URL() + "/v1/stream?buffer=zero")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad buffer returned %d, want 400", resp.StatusCode)
	}
}

func TestServerMetricsEndpoint(t *testing.T) {
	store := NewStore()
	srv, err := NewServer("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.URL(), nil)
	if err := c.Log(Record{RequestID: "m-1"}, Record{RequestID: "m-2"}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if err := metrics.Lint(resp.Body); err != nil {
		t.Fatalf("metrics output fails lint: %v", err)
	}

	resp2, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"gremlin_store_records 2",
		"gremlin_store_appended_total 2",
		"gremlin_store_subscribers 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}
