package eventlog

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gremlin/internal/pattern"
)

func newSharded(t *testing.T, opts StoreOptions) *ShardedStore {
	t.Helper()
	ss, err := NewShardedStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ss.Close() })
	return ss
}

func TestNamespaceOf(t *testing.T) {
	tests := []struct{ id, want string }{
		{"test-1", "test"},
		{"test-99", "test"},
		{"prod-7", "prod"},
		{"camp-run1-u3-2", "camp-run1"},
		{"camp-run1-other", "camp-run1"},
		{"camp-run2-u1-0", "camp-run2"},
		{"noseparator", "noseparator"},
		{"", ""},
	}
	for _, tt := range tests {
		if got := namespaceOf(tt.id); got != tt.want {
			t.Errorf("namespaceOf(%q) = %q, want %q", tt.id, got, tt.want)
		}
	}
}

func TestNamespaceRoutingKeepsNamespaceTogether(t *testing.T) {
	// All IDs of one namespace must land on one shard, whatever the count.
	// shardOf (client side) and ShardedStore.shardFor (server side) must
	// agree, or client batch hints would always miss.
	for _, n := range []int{2, 3, 8} {
		ss := newSharded(t, StoreOptions{Shards: n})
		for _, ns := range []string{"test", "camp-run1", "camp-run2", "prod"} {
			want := shardOf(ns+"-0", n)
			for i := 1; i < 50; i++ {
				id := fmt.Sprintf("%s-%d", ns, i)
				if got := shardOf(id, n); got != want {
					t.Fatalf("shards=%d ns=%s: id %d routed to %d, want %d", n, ns, i, got, want)
				}
				if got := ss.shardFor(id); got != want {
					t.Fatalf("shards=%d ns=%s: server routes %q to %d, client to %d", n, ns, id, got, want)
				}
			}
		}
	}
}

func TestPatternPinning(t *testing.T) {
	ss := newSharded(t, StoreOptions{Shards: 8})
	tests := []struct {
		pattern string
		pinned  bool
	}{
		{"test-*", true},      // literal prefix passes the namespace boundary
		{"test-17", true},     // exact ID
		{"camp-run1-*", true}, // campaign namespace
		{"camp-run1-u2*", true},
		{"camp-*", false}, // prefix IS a (partial) namespace — could match many
		{"test*", false},  // "test" and "testing" are different namespaces
		{"*", false},
		{"", false},
		{"*-suffix", false},
	}
	for _, tt := range tests {
		pat, err := pattern.Compile(tt.pattern)
		if err != nil {
			t.Fatalf("compile %q: %v", tt.pattern, err)
		}
		si := ss.shardOfPattern(pat)
		if got := si >= 0; got != tt.pinned {
			t.Errorf("shardOfPattern(%q) pinned=%v, want %v", tt.pattern, got, tt.pinned)
			continue
		}
		if si >= 0 {
			// The pinned shard must be where matching IDs actually live.
			id := tt.pattern
			if len(id) > 0 && id[len(id)-1] == '*' {
				id = id[:len(id)-1] + "x"
			}
			if want := ss.shardFor(id); si != want {
				t.Errorf("shardOfPattern(%q) = %d, but id %q routes to %d", tt.pattern, si, id, want)
			}
		}
	}
}

// TestScatterGatherMatchesSingleStore is the merge-correctness check: a
// sharded Select over any pattern must return exactly what a single-shard
// store returns for the same input, in the same order.
func TestScatterGatherMatchesSingleStore(t *testing.T) {
	single := NewStore()
	sharded := newSharded(t, StoreOptions{Shards: 8})

	rng := rand.New(rand.NewSource(42))
	namespaces := []string{"test", "prod", "camp-run1", "camp-run2", "camp-run3", "chaos"}
	var recs []Record
	for i := 0; i < 5000; i++ {
		ns := namespaces[rng.Intn(len(namespaces))]
		r := Record{
			Timestamp: t0.Add(time.Duration(rng.Intn(1_000_000)) * time.Microsecond),
			RequestID: fmt.Sprintf("%s-%d", ns, rng.Intn(400)),
			Src:       fmt.Sprintf("svc%d", rng.Intn(5)),
			Dst:       fmt.Sprintf("svc%d", rng.Intn(5)),
			Kind:      KindRequest,
		}
		if rng.Intn(2) == 0 {
			r.Kind = KindReply
		}
		recs = append(recs, r)
	}
	// Stamp via the sharded store (global seq), replay the stamped records
	// into the single store so both hold identical data.
	if err := sharded.Log(recs...); err != nil {
		t.Fatal(err)
	}
	all, err := sharded.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(recs) {
		t.Fatalf("sharded holds %d records, want %d", len(all), len(recs))
	}
	single.logStamped(all)

	queries := []Query{
		{},
		{IDPattern: "test-*"},
		{IDPattern: "camp-*"},
		{IDPattern: "camp-run2-*"},
		{IDPattern: "*"},
		{Src: "svc1"},
		{Dst: "svc3", Kind: KindReply},
		{IDPattern: "camp-*", Since: t0.Add(200 * time.Millisecond)},
		{Until: t0.Add(500 * time.Millisecond)},
		{IDPattern: "test-*", Limit: 17},
		{Limit: 100},
	}
	for _, q := range queries {
		want, err := single.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %+v: sharded %d records, single %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i].Seq != want[i].Seq {
				t.Fatalf("query %+v: record %d Seq=%d, want %d", q, i, got[i].Seq, want[i].Seq)
			}
		}
		// Count must agree with Select.
		gc, err := sharded.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		wc := len(want)
		if q.Limit > 0 && wc > q.Limit {
			wc = q.Limit
		}
		if gc != wc {
			t.Fatalf("query %+v: Count=%d, want %d", q, gc, wc)
		}
	}
}

func TestScatterGatherTimestampTies(t *testing.T) {
	// Equal timestamps across shards: the merge must still be total and
	// deterministic (seq breaks the tie) and lose no records.
	ss := newSharded(t, StoreOptions{Shards: 4})
	ts := t0
	for i := 0; i < 100; i++ {
		ns := fmt.Sprintf("ns%d", i%7)
		if err := ss.Log(Record{Timestamp: ts, RequestID: ns + "-1", Src: "a", Dst: "b", Kind: KindRequest}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := ss.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 100 {
		t.Fatalf("got %d records, want 100", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if !recs[i-1].Before(recs[i]) {
			t.Fatalf("records %d/%d out of order: seq %d then %d", i-1, i, recs[i-1].Seq, recs[i].Seq)
		}
	}
}

func TestShardedClearMatching(t *testing.T) {
	ss := newSharded(t, StoreOptions{Shards: 4})
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("camp-run1-u%d", i)
		if i%2 == 0 {
			id = fmt.Sprintf("test-%d", i)
		}
		if err := ss.Log(Record{RequestID: id, Src: "a", Dst: "b", Kind: KindRequest}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := ss.ClearMatching("camp-run1-*")
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("cleared %d, want 20", n)
	}
	if got := ss.Len(); got != 20 {
		t.Fatalf("Len=%d after clear, want 20", got)
	}
	left, err := ss.Select(Query{IDPattern: "camp-run1-*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("%d campaign records survived clear", len(left))
	}
}

func TestShardedSubscribe(t *testing.T) {
	ss := newSharded(t, StoreOptions{Shards: 4})

	// Pattern-pinned subscription: only its namespace's records arrive.
	pinned, err := ss.SubscribeBuffer("test-*", 64)
	if err != nil {
		t.Fatal(err)
	}
	// Scatter subscription: everything arrives.
	all, err := ss.SubscribeBuffer("", 256)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 30; i++ {
		ns := "test"
		if i%3 != 0 {
			ns = fmt.Sprintf("other%d", i%3)
		}
		if err := ss.Log(Record{RequestID: fmt.Sprintf("%s-%d", ns, i), Src: "a", Dst: "b", Kind: KindRequest}); err != nil {
			t.Fatal(err)
		}
	}

	drain := func(sub Subscriber, want int) int {
		got := 0
		timeout := time.After(2 * time.Second)
		for got < want {
			select {
			case <-sub.C():
				got++
			case <-timeout:
				return got
			}
		}
		// Give stray extras a moment to show up.
		select {
		case <-sub.C():
			got++
		case <-time.After(50 * time.Millisecond):
		}
		return got
	}
	if got := drain(pinned, 10); got != 10 {
		t.Errorf("pinned subscription got %d records, want 10", got)
	}
	if got := drain(all, 30); got != 30 {
		t.Errorf("scatter subscription got %d records, want 30", got)
	}
	pinned.Close()
	all.Close()
	if n := ss.Subscribers(); n != 0 {
		t.Errorf("%d subscribers left after Close", n)
	}
}

func TestShardedStoreStats(t *testing.T) {
	ss := newSharded(t, StoreOptions{Shards: 4})
	for i := 0; i < 100; i++ {
		if err := ss.Log(Record{RequestID: fmt.Sprintf("ns%d-%d", i%11, i), Src: "a", Dst: "b", Kind: KindRequest}); err != nil {
			t.Fatal(err)
		}
	}
	if ss.NumShards() != 4 {
		t.Fatalf("NumShards=%d", ss.NumShards())
	}
	stats := ss.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("%d shard stats", len(stats))
	}
	var total, appended int
	populated := 0
	for _, st := range stats {
		total += st.Records
		appended += int(st.Appended)
		if st.Records > 0 {
			populated++
		}
	}
	if total != 100 || appended != 100 {
		t.Fatalf("stats total=%d appended=%d, want 100/100", total, appended)
	}
	if populated < 2 {
		t.Fatalf("only %d shards populated; namespace hashing is degenerate", populated)
	}
}

func TestSingleShardIsPlainStore(t *testing.T) {
	// Shards=1, no DataDir: behaves exactly like NewStore, no WAL files.
	ss := newSharded(t, StoreOptions{})
	if ss.NumShards() != 1 {
		t.Fatalf("NumShards=%d, want 1", ss.NumShards())
	}
	if err := ss.Log(rec("a", "b", KindRequest, "test-1", 0)); err != nil {
		t.Fatal(err)
	}
	recs, err := ss.Select(Query{IDPattern: "test-*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("got %+v", recs)
	}
}

func TestLogShardVerifiesRouting(t *testing.T) {
	ss := newSharded(t, StoreOptions{Shards: 4})
	r1 := Record{RequestID: "test-1", Src: "a", Dst: "b", Kind: KindRequest}
	r2 := Record{RequestID: "other-1", Src: "a", Dst: "b", Kind: KindRequest}
	want := ss.shardFor("test-1")
	// Send both to test-1's shard: the mismatched one must be rerouted,
	// not appended to the wrong shard.
	if err := ss.LogShard(want, r1, r2); err != nil {
		t.Fatal(err)
	}
	if got := ss.Len(); got != 2 {
		t.Fatalf("Len=%d, want 2", got)
	}
	other := ss.shardFor("other-1")
	if other != want {
		recs, _ := ss.shards[other].Select(Query{IDPattern: "other-1"})
		if len(recs) != 1 {
			t.Fatalf("misrouted record not rerouted to shard %d", other)
		}
	}
	// An out-of-range hint (stale topology) degrades to ordinary routing.
	if err := ss.LogShard(99, r1); err != nil {
		t.Fatal(err)
	}
	if got := ss.Len(); got != 3 {
		t.Fatalf("Len=%d after out-of-range hint, want 3", got)
	}
}

// TestShardedStoreRace exercises concurrent multi-shard appends, selects,
// counts, clears, and subscriptions; run with -race.
func TestShardedStoreRace(t *testing.T) {
	ss := newSharded(t, StoreOptions{Shards: 8, DataDir: t.TempDir(), Fsync: FsyncNever, CompactAfter: 64})
	const (
		writers = 4
		readers = 3
		perW    = 300
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	sub, err := ss.SubscribeBuffer("", 4096)
	if err != nil {
		t.Fatal(err)
	}
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		for {
			select {
			case <-sub.C():
			case <-stop:
				return
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				r := Record{
					RequestID: fmt.Sprintf("ns%d-%d", (w+i)%13, i),
					Src:       "a", Dst: "b", Kind: KindRequest,
				}
				if err := ss.Log(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := ss.Select(Query{IDPattern: fmt.Sprintf("ns%d-*", i%13)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := ss.Count(Query{}); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := ss.ClearMatching(fmt.Sprintf("ns%d-*", i%13)); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers/readers/clearer finish; then stop the subscriber drain.
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("race test deadlocked")
	}
	close(stop)
	<-drainDone
	sub.Close()
}
