package eventlog

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// BufferedSink batches records in memory and ships them to an underlying
// Sink from a background goroutine, either when the buffer reaches its
// flush threshold or on a periodic interval — so a full buffer never
// charges a store round trip (an HTTP call, for remote sinks) to the live
// data path that logged the record. This mirrors the paper's agents, which
// ship logs asynchronously via logstash.
//
// The buffer is bounded: under overload (the store slower than the data
// path for long enough to accumulate Max records) the oldest unshipped
// records are dropped and counted in Dropped. When the underlying sink
// fails, the batch is kept (within the same bound) and retried on the next
// flush.
//
// BufferedSink is safe for concurrent use. Call Flush (or Close) before
// reading assertions to make all observations visible.
type BufferedSink struct {
	sink     Sink
	batch    batchSink     // sink's batch fast path, nil when absent
	size     int           // flush threshold
	max      int           // buffer bound; overflow drops oldest records
	interval time.Duration // background flush period

	mu     sync.Mutex // guards buf and closed
	buf    []Record
	closed bool

	// flushMu serializes shipments so records reach the sink in log order
	// even when Flush races the background flusher.
	flushMu sync.Mutex

	dropped      atomic.Int64
	flushes      atomic.Int64
	retries      atomic.Int64
	batchRecords atomic.Int64
	maxBatch     atomic.Int64

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// batchSink is the optional one-body batch surface of a Sink
// (Client.LogBatch encodes a flush into a single pooled NDJSON body and
// pre-routes it per shard). When the underlying sink has it, flushes go
// through it instead of the record-slice Log call.
type batchSink interface {
	LogBatch(recs []Record) error
}

// BufferOptions tunes a BufferedSink. Zero values select defaults.
type BufferOptions struct {
	// Size is the flush threshold in records (default 128): reaching it
	// wakes the background flusher.
	Size int

	// Max bounds the buffer (default 32×Size). Records logged while the
	// buffer holds Max entries displace the oldest, which are dropped and
	// counted.
	Max int

	// Interval is the periodic flush cadence (default 1s), so observations
	// reach the store promptly even under light traffic.
	Interval time.Duration
}

func (o BufferOptions) withDefaults() BufferOptions {
	if o.Size <= 0 {
		o.Size = 128
	}
	if o.Max <= 0 {
		o.Max = 32 * o.Size
	}
	if o.Max < o.Size {
		o.Max = o.Size
	}
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	return o
}

// NewBufferedSink wraps sink with a buffer flushing at the given size
// (records); size <= 0 defaults to 128. Flushing happens off the caller's
// path, on size or on a 1 s interval; use NewBufferedSinkOpts to tune.
// Call Close to stop the background flusher.
func NewBufferedSink(sink Sink, size int) *BufferedSink {
	return NewBufferedSinkOpts(sink, BufferOptions{Size: size})
}

// NewBufferedSinkOpts wraps sink with a buffer configured by opts.
func NewBufferedSinkOpts(sink Sink, opts BufferOptions) *BufferedSink {
	o := opts.withDefaults()
	b := &BufferedSink{
		sink:     sink,
		size:     o.Size,
		max:      o.Max,
		interval: o.Interval,
		buf:      make([]Record, 0, o.Size),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	b.batch, _ = sink.(batchSink)
	go b.run()
	return b
}

// Log buffers records and returns immediately; it never performs a store
// round trip. When the buffer reaches the flush threshold the background
// flusher is woken, and when it is at its bound the oldest buffered
// records are dropped to make room (counted in Dropped).
func (b *BufferedSink) Log(recs ...Record) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return fmt.Errorf("eventlog: sink closed")
	}
	b.buf = append(b.buf, recs...)
	if over := len(b.buf) - b.max; over > 0 {
		b.dropped.Add(int64(over))
		b.buf = append(b.buf[:0], b.buf[over:]...)
	}
	full := len(b.buf) >= b.size
	b.mu.Unlock()

	if full {
		select {
		case b.kick <- struct{}{}:
		default: // flusher already signalled
		}
	}
	return nil
}

// Flush synchronously ships all buffered records, returning the sink's
// error if the shipment fails (the records are retained for retry).
func (b *BufferedSink) Flush() error { return b.flush() }

// Close stops the background flusher, ships remaining records, and marks
// the sink closed.
func (b *BufferedSink) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()

	close(b.stop)
	<-b.done
	return b.flush()
}

// Dropped reports how many records were discarded because the buffer was
// at its bound (store overload) since the sink was created.
func (b *BufferedSink) Dropped() int64 { return b.dropped.Load() }

// Flushes reports how many non-empty batches were shipped successfully.
func (b *BufferedSink) Flushes() int64 { return b.flushes.Load() }

// Retries reports how many shipments failed and were kept for retry.
// Together with Dropped these let a campaign flag runs whose assertions
// may have evaluated partial data.
func (b *BufferedSink) Retries() int64 { return b.retries.Load() }

// BatchRecords reports the total records shipped in successful flushes;
// divided by Flushes it gives the mean batch size, the measure of how
// well the sink is amortizing per-request overhead.
func (b *BufferedSink) BatchRecords() int64 { return b.batchRecords.Load() }

// MaxBatch reports the largest batch shipped in one flush.
func (b *BufferedSink) MaxBatch() int64 { return b.maxBatch.Load() }

// run is the background flusher: it ships on size signals and on the
// periodic interval until Close.
func (b *BufferedSink) run() {
	defer close(b.done)
	ticker := time.NewTicker(b.interval)
	defer ticker.Stop()
	for {
		select {
		case <-b.kick:
		case <-ticker.C:
		case <-b.stop:
			return
		}
		// Errors are retried on the next wakeup; a full or unreachable
		// store must not break anything upstream.
		_ = b.flush()
	}
}

// flush takes the buffered records and ships them. On failure the batch is
// put back at the front of the buffer (bounded by Max, dropping the oldest
// overflow) so the next flush retries it.
func (b *BufferedSink) flush() error {
	b.flushMu.Lock()
	defer b.flushMu.Unlock()

	b.mu.Lock()
	recs := b.buf
	b.buf = make([]Record, 0, b.size)
	b.mu.Unlock()
	if len(recs) == 0 {
		return nil
	}

	var err error
	if b.batch != nil {
		err = b.batch.LogBatch(recs)
	} else {
		err = b.sink.Log(recs...)
	}
	if err != nil {
		b.retries.Add(1)
		b.mu.Lock()
		if over := len(recs) + len(b.buf) - b.max; over > 0 {
			if over >= len(recs) {
				b.dropped.Add(int64(len(recs)))
				recs = recs[:0]
			} else {
				b.dropped.Add(int64(over))
				recs = recs[over:]
			}
		}
		b.buf = append(recs, b.buf...)
		b.mu.Unlock()
		return err
	}
	b.flushes.Add(1)
	b.batchRecords.Add(int64(len(recs)))
	if n := int64(len(recs)); n > b.maxBatch.Load() {
		b.maxBatch.Store(n)
	}
	return nil
}
