package eventlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gremlin/internal/pattern"
)

// FsyncPolicy selects how aggressively a shard's write-ahead log is
// synced to stable storage. Every append is written to the kernel with a
// single write() before it is acknowledged regardless of policy, so a
// SIGKILL'd store never loses acknowledged records; the policy only
// governs what survives a whole-machine crash (power loss).
type FsyncPolicy string

// Fsync policies.
const (
	// FsyncAlways fsyncs after every append batch: maximum durability,
	// one disk flush per shipped batch.
	FsyncAlways FsyncPolicy = "always"

	// FsyncInterval fsyncs dirty segments from a background loop on the
	// store's FsyncInterval cadence (default 100ms): bounded data loss on
	// power failure, near-zero append-path cost. The default.
	FsyncInterval FsyncPolicy = "interval"

	// FsyncNever leaves flushing to the OS entirely.
	FsyncNever FsyncPolicy = "never"
)

// ParseFsyncPolicy validates a policy string (as passed to
// `gremlin-logstore -fsync`).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch p := FsyncPolicy(s); p {
	case FsyncAlways, FsyncInterval, FsyncNever:
		return p, nil
	case "":
		return FsyncInterval, nil
	}
	return "", fmt.Errorf("eventlog: bad fsync policy %q (want always, interval, or never)", s)
}

// walLine is one decoded WAL line: either a record (the Record fields) or
// a tombstone ({"clear":"<pattern>"} — "*" clears everything, which is
// also how a compacted snapshot segment begins).
type walLine struct {
	Clear *string `json:"clear,omitempty"`
	Record
}

// clearLine encodes a tombstone for idPattern ("*" = clear all).
func clearLine(idPattern string) ([]byte, error) {
	b, err := json.Marshal(struct {
		Clear string `json:"clear"`
	}{idPattern})
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// walBufPool recycles the per-batch encode buffers so a flood of appends
// does not allocate a fresh buffer per batch.
var walBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// wal is one shard's write-ahead log: append-only JSONL segment files
// (`00000001.wal`, `00000002.wal`, ...) in a directory, size-rotated, with
// compaction rewriting the live set behind a `{"clear":"*"}` marker so
// replay of the segment sequence always reproduces the exact pre-crash
// state. Record lines use the store's ordinary Record JSON, so segments
// double as plain JSONL dumps readable by standard log tooling.
type wal struct {
	dir    string
	policy FsyncPolicy
	maxSeg int64

	mu       sync.Mutex
	f        *os.File
	seg      int   // current (open) segment index
	segBytes int64 // bytes in the current segment
	segCount int   // segment files on disk, including the open one
	allBytes int64 // bytes across all segments
	closed   bool

	dirty       bool // unsynced writes under FsyncInterval
	replayed    int  // records recovered at open
	compactions uint64
}

func segName(idx int) string { return fmt.Sprintf("%08d.wal", idx) }

// openWAL opens (creating if needed) the shard WAL in dir and replays it,
// returning the recovered records in append order with their original
// sequence numbers. A torn trailing line — the tail of a write cut short
// by a crash — is truncated away, never fatal; it can only hold a record
// that was not yet acknowledged.
func openWAL(dir string, policy FsyncPolicy, maxSeg int64) (*wal, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("eventlog: wal: %w", err)
	}
	w := &wal{dir: dir, policy: policy, maxSeg: maxSeg}

	segs, err := w.listSegments()
	if err != nil {
		return nil, nil, err
	}
	var recs []Record
	lastClearAll := -1
	for _, idx := range segs {
		recs, err = w.replaySegment(idx, recs, &lastClearAll)
		if err != nil {
			return nil, nil, err
		}
	}
	// Segments wholly before the last clear-all marker can never affect
	// replay again — a crash between a compaction's rename and its
	// deletes leaves exactly these behind.
	for _, idx := range segs {
		if idx < lastClearAll {
			_ = os.Remove(filepath.Join(dir, segName(idx)))
		}
	}

	// Append into the newest segment (or a fresh first one), rotating
	// immediately if it is already over the size bound.
	next := 1
	if len(segs) > 0 {
		next = segs[len(segs)-1]
	}
	if err := w.openSegment(next); err != nil {
		return nil, nil, err
	}
	if err := w.recount(); err != nil {
		return nil, nil, err
	}
	if w.segBytes >= w.maxSeg {
		if err := w.rotateLocked(); err != nil {
			return nil, nil, err
		}
	}
	w.replayed = len(recs)
	return w, recs, nil
}

// listSegments returns the on-disk segment indices in ascending order.
func (w *wal) listSegments() ([]int, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("eventlog: wal: %w", err)
	}
	var segs []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".wal") {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimSuffix(name, ".wal"))
		if err != nil || idx < 1 {
			continue
		}
		segs = append(segs, idx)
	}
	sort.Ints(segs)
	return segs, nil
}

// replaySegment applies one segment's lines to recs. lastClearAll is
// updated to this segment's index whenever a clear-all tombstone is seen.
func (w *wal) replaySegment(idx int, recs []Record, lastClearAll *int) ([]Record, error) {
	path := filepath.Join(w.dir, segName(idx))
	f, err := os.Open(path)
	if err != nil {
		return recs, fmt.Errorf("eventlog: wal: %w", err)
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 256<<10)
	var offset int64
	for {
		line, err := br.ReadBytes('\n')
		if err != nil && !errors.Is(err, io.EOF) {
			return recs, fmt.Errorf("eventlog: wal: read %s: %w", path, err)
		}
		torn := err != nil // EOF before the terminating newline
		if len(line) > 0 && !torn {
			var wl walLine
			if derr := json.Unmarshal(line, &wl); derr != nil {
				// A malformed line mid-file means the segment itself is
				// corrupt; a malformed final line is a torn write.
				if _, perr := br.Peek(1); perr == nil {
					return recs, fmt.Errorf("eventlog: wal: %s offset %d: %w", path, offset, derr)
				}
				torn = true
			} else if wl.Clear != nil {
				if *wl.Clear == "" || *wl.Clear == "*" {
					recs = recs[:0]
					*lastClearAll = idx
				} else {
					pat, perr := pattern.Compile(*wl.Clear)
					if perr != nil {
						return recs, fmt.Errorf("eventlog: wal: %s offset %d: %w", path, offset, perr)
					}
					kept := recs[:0]
					for _, r := range recs {
						if !pat.Match(r.RequestID) {
							kept = append(kept, r)
						}
					}
					recs = kept
				}
			} else {
				recs = append(recs, wl.Record)
			}
		}
		if torn && len(line) > 0 {
			// Truncate the torn tail so the next append starts on a clean
			// line boundary.
			if terr := os.Truncate(path, offset); terr != nil {
				return recs, fmt.Errorf("eventlog: wal: truncate torn line in %s: %w", path, terr)
			}
			break
		}
		offset += int64(len(line))
		if err != nil {
			break
		}
	}
	return recs, nil
}

// openSegment opens segment idx for appending, creating it if absent.
func (w *wal) openSegment(idx int) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(idx)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("eventlog: wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("eventlog: wal: %w", err)
	}
	w.f, w.seg, w.segBytes = f, idx, st.Size()
	return nil
}

// recount refreshes the on-disk totals (segment count and bytes).
func (w *wal) recount() error {
	segs, err := w.listSegments()
	if err != nil {
		return err
	}
	w.segCount = len(segs)
	w.allBytes = 0
	for _, idx := range segs {
		if st, err := os.Stat(filepath.Join(w.dir, segName(idx))); err == nil {
			w.allBytes += st.Size()
		}
	}
	return nil
}

// append writes one batch of records as JSONL with a single write(),
// rotating and fsyncing per policy. The caller has already stamped
// timestamps and sequence numbers.
func (w *wal) append(recs []Record) error {
	buf := walBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			walBufPool.Put(buf)
			return fmt.Errorf("eventlog: wal: encode: %w", err)
		}
	}
	err := w.write(buf.Bytes())
	walBufPool.Put(buf)
	return err
}

// appendClear writes a tombstone for idPattern.
func (w *wal) appendClear(idPattern string) error {
	line, err := clearLine(idPattern)
	if err != nil {
		return fmt.Errorf("eventlog: wal: encode tombstone: %w", err)
	}
	return w.write(line)
}

func (w *wal) write(b []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("eventlog: wal: closed")
	}
	n, err := w.f.Write(b)
	w.segBytes += int64(n)
	w.allBytes += int64(n)
	if err != nil {
		return fmt.Errorf("eventlog: wal: %w", err)
	}
	if w.policy == FsyncAlways {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("eventlog: wal: sync: %w", err)
		}
	} else {
		w.dirty = true
	}
	if w.segBytes >= w.maxSeg {
		return w.rotateLocked()
	}
	return nil
}

// rotateLocked seals the current segment and opens the next. Caller holds
// w.mu (or has exclusive access during open).
func (w *wal) rotateLocked() error {
	if w.policy != FsyncNever {
		_ = w.f.Sync()
		w.dirty = false
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("eventlog: wal: rotate: %w", err)
	}
	if err := w.openSegment(w.seg + 1); err != nil {
		return err
	}
	w.segCount++
	return nil
}

// sync flushes dirty writes to stable storage (the FsyncInterval loop and
// Close call it).
func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || !w.dirty {
		return nil
	}
	w.dirty = false
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("eventlog: wal: sync: %w", err)
	}
	return nil
}

// compact rewrites the log as a single snapshot segment: a clear-all
// marker followed by the live records, written to a temp file, fsynced,
// renamed into place as the next segment index, after which all older
// segments are deleted. Replay order makes this crash-safe at every step —
// if the process dies before the deletes, replay drops the stale prefix at
// the marker and open removes the leftover files.
//
// The caller must have quiesced appends to this shard (ShardedStore holds
// the shard's append gate), so the snapshot is exactly the log's tail
// state.
func (w *wal) compact(snapshot []Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("eventlog: wal: closed")
	}
	old, err := w.listSegments()
	if err != nil {
		return err
	}
	if w.policy != FsyncNever {
		_ = w.f.Sync()
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("eventlog: wal: compact: %w", err)
	}

	snapIdx := w.seg + 1
	snapPath := filepath.Join(w.dir, segName(snapIdx))
	tmp, err := os.CreateTemp(w.dir, ".compact-*")
	if err != nil {
		return fmt.Errorf("eventlog: wal: compact: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("eventlog: wal: compact: %w", err)
	}
	bw := bufio.NewWriterSize(tmp, 256<<10)
	marker, err := clearLine("*")
	if err != nil {
		return fail(err)
	}
	if _, err := bw.Write(marker); err != nil {
		return fail(err)
	}
	enc := json.NewEncoder(bw)
	for i := range snapshot {
		if err := enc.Encode(&snapshot[i]); err != nil {
			return fail(err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpName, snapPath); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("eventlog: wal: compact: %w", err)
	}
	// The snapshot is durable; the old segments are now dead weight.
	for _, idx := range old {
		_ = os.Remove(filepath.Join(w.dir, segName(idx)))
	}
	if err := w.openSegment(snapIdx + 1); err != nil {
		return err
	}
	w.dirty = false
	w.compactions++
	return w.recount()
}

// close seals the log.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.policy != FsyncNever {
		_ = w.f.Sync()
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("eventlog: wal: close: %w", err)
	}
	return nil
}

// stats returns the log's observability counters.
func (w *wal) stats() (segments int, bytes int64, replayed int, compactions uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.segCount, w.allBytes, w.replayed, w.compactions
}
