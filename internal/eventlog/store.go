package eventlog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gremlin/internal/pattern"
)

// Query selects records from the store. Zero-valued fields match
// everything.
type Query struct {
	// Src and Dst filter by caller/callee service name ("" matches any).
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`

	// Kind filters by record kind ("" matches both).
	Kind Kind `json:"kind,omitempty"`

	// IDPattern filters by request ID using the shared pattern language
	// (glob or "re:"). Empty matches any ID, including absent ones.
	IDPattern string `json:"idPattern,omitempty"`

	// Since and Until bound the record timestamps: Since <= ts < Until.
	// Zero values leave the corresponding bound open.
	Since time.Time `json:"since,omitempty"`
	Until time.Time `json:"until,omitempty"`

	// Limit caps the number of returned records (0 = unlimited).
	Limit int `json:"limit,omitempty"`
}

// Sink consumes observation records. Gremlin agents log through a Sink; the
// Store implements it directly and Client ships records to a remote Server.
type Sink interface {
	Log(recs ...Record) error
}

// Source answers record queries. The Assertion Checker depends only on this
// interface, so it works identically against an in-process Store or a
// remote store via Client.
type Source interface {
	// Select returns the records matching q, sorted by (timestamp, seq).
	Select(q Query) ([]Record, error)
}

// storeKey identifies one (src, dst) edge's posting list.
type storeKey struct {
	src, dst string
}

// Store is the in-memory event store. It is safe for concurrent use.
//
// Appended records are indexed by source, destination, and (src, dst) edge
// — posting lists of record positions in append order — so the checker's
// narrow queries (GetRequests/GetReplies on one edge) visit only that
// edge's records instead of scanning the whole store. The store also
// tracks whether appended timestamps are nondecreasing; while they are
// (the common single-writer case), posting lists are already in
// (timestamp, seq) order and Select skips the output sort entirely.
type Store struct {
	mu       sync.RWMutex
	recs     []Record
	seq      uint64
	appended uint64

	// ordered reports whether recs is in (timestamp, seq) order as
	// appended; lastTS is the most recently appended timestamp.
	ordered bool
	lastTS  time.Time

	// Posting lists: record positions in append order.
	byEdge map[storeKey][]int32
	bySrc  map[string][]int32
	byDst  map[string][]int32

	// linearScan disables the posting-list index (ablation/benchmark
	// baseline; see UseLinearScan).
	linearScan bool

	// Live subscriptions (see subscribe.go). subCount mirrors len(subs) so
	// the append path can skip publishing without touching subMu.
	subMu      sync.RWMutex
	subs       map[uint64]*Subscription
	subSeq     uint64
	subCount   atomic.Int64
	subDropped atomic.Int64
	published  atomic.Int64
}

var (
	_ Sink   = (*Store)(nil)
	_ Source = (*Store)(nil)
)

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		ordered: true,
		byEdge:  make(map[storeKey][]int32),
		bySrc:   make(map[string][]int32),
		byDst:   make(map[string][]int32),
	}
}

// UseLinearScan toggles the pre-index ablation: Select scans and sorts
// every stored record, as the store did before posting lists existed.
// Results are identical; only the work per query differs. Used as the
// before/after baseline in benchmarks.
func (s *Store) UseLinearScan(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.linearScan = on
}

// Log appends records, assigning sequence numbers. Records with a zero
// timestamp are stamped with the current time. Appended records also fan
// out to live subscriptions (after the store lock is released, with
// non-blocking sends, so subscribers never slow the append path down).
func (s *Store) Log(recs ...Record) error {
	now := time.Now()
	live := s.subCount.Load() > 0
	var stamped []Record
	if live {
		stamped = make([]Record, 0, len(recs))
	}
	s.mu.Lock()
	for _, r := range recs {
		s.seq++
		r.Seq = s.seq
		if r.Timestamp.IsZero() {
			r.Timestamp = now
		}
		s.appendLocked(r)
		if live {
			stamped = append(stamped, r)
		}
	}
	s.mu.Unlock()
	if live {
		s.publish(stamped)
	}
	return nil
}

// logStamped appends records that already carry final sequence numbers
// and timestamps — the ShardedStore stamps globally unique sequences
// before routing a batch to its shard (and WAL replay restores the
// original ones), so this path must not reassign them.
func (s *Store) logStamped(recs []Record) {
	if len(recs) == 0 {
		return
	}
	live := s.subCount.Load() > 0
	s.mu.Lock()
	for _, r := range recs {
		if r.Seq > s.seq {
			s.seq = r.Seq
		}
		s.appendLocked(r)
	}
	s.mu.Unlock()
	if live {
		s.publish(recs)
	}
}

// appendLocked stores one stamped record and indexes it. Caller holds
// s.mu and has assigned Seq and Timestamp.
func (s *Store) appendLocked(r Record) {
	s.appended++
	pos := int32(len(s.recs))
	s.recs = append(s.recs, r)
	s.byEdge[storeKey{r.Src, r.Dst}] = append(s.byEdge[storeKey{r.Src, r.Dst}], pos)
	s.bySrc[r.Src] = append(s.bySrc[r.Src], pos)
	s.byDst[r.Dst] = append(s.byDst[r.Dst], pos)
	if r.Timestamp.Before(s.lastTS) {
		s.ordered = false
	} else {
		s.lastTS = r.Timestamp
	}
}

// Appended reports the total number of records ever appended (a monotone
// counter, unlike Len, which Clear resets).
func (s *Store) Appended() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.appended
}

// NumShards reports the number of partitions (always 1 for a plain
// Store; see ShardedStore).
func (s *Store) NumShards() int { return 1 }

// ShardStats returns the single-shard view of the store's counters, so
// shard-labelled metrics read identically against a Store and a
// ShardedStore.
func (s *Store) ShardStats() []ShardStats {
	return []ShardStats{{Shard: 0, Records: s.Len(), Appended: s.Appended()}}
}

// Len reports the number of stored records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// Clear removes all records and returns how many were dropped. Recipes
// clear the store between test steps so assertions evaluate only the
// current step's observations.
func (s *Store) Clear() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.recs)
	s.recs = nil
	s.ordered = true
	s.lastTS = time.Time{}
	s.byEdge = make(map[storeKey][]int32)
	s.bySrc = make(map[string][]int32)
	s.byDst = make(map[string][]int32)
	return n
}

// ClearMatching removes the records whose request ID matches idPattern
// and returns how many were dropped. Campaigns reclaim a finished run's
// namespaced records ("camp-<runID>-*") without disturbing concurrent
// runs sharing the store; an empty pattern clears everything.
func (s *Store) ClearMatching(idPattern string) (int, error) {
	pat, err := pattern.Compile(idPattern)
	if err != nil {
		return 0, fmt.Errorf("eventlog: bad clear pattern: %w", err)
	}
	if pat.MatchAll() {
		return s.Clear(), nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.recs[:0]
	for _, r := range s.recs {
		if !pat.Match(r.RequestID) {
			kept = append(kept, r)
		}
	}
	dropped := len(s.recs) - len(kept)
	if dropped == 0 {
		return 0, nil
	}
	s.recs = kept

	// Positions shifted: rebuild the posting lists and the order flag.
	s.byEdge = make(map[storeKey][]int32, len(s.byEdge))
	s.bySrc = make(map[string][]int32, len(s.bySrc))
	s.byDst = make(map[string][]int32, len(s.byDst))
	s.ordered = true
	s.lastTS = time.Time{}
	for pos, r := range s.recs {
		p := int32(pos)
		s.byEdge[storeKey{r.Src, r.Dst}] = append(s.byEdge[storeKey{r.Src, r.Dst}], p)
		s.bySrc[r.Src] = append(s.bySrc[r.Src], p)
		s.byDst[r.Dst] = append(s.byDst[r.Dst], p)
		if r.Timestamp.Before(s.lastTS) {
			s.ordered = false
		} else {
			s.lastTS = r.Timestamp
		}
	}
	return dropped, nil
}

// Select returns the records matching q in (timestamp, seq) order.
func (s *Store) Select(q Query) ([]Record, error) {
	pat, err := pattern.Compile(q.IDPattern)
	if err != nil {
		return nil, fmt.Errorf("eventlog: bad query pattern: %w", err)
	}

	s.mu.RLock()
	ordered := s.ordered
	var matched []Record
	if list, ok := s.postings(q); ok {
		// Filter positions through pointers first, then copy the matching
		// records once at exactly the right size — records are wide enough
		// that copying candidates (or regrowing the result) dominates an
		// edge query's cost.
		hits := make([]int32, 0, len(list))
		for _, pos := range list {
			r := &s.recs[pos]
			if ordered && !q.Until.IsZero() && !r.Timestamp.Before(q.Until) {
				// Posting lists are in timestamp order while the store is
				// ordered: nothing past the Until bound can match.
				break
			}
			if matches(r, q, pat) {
				hits = append(hits, pos)
				if ordered && q.Limit > 0 && len(hits) == q.Limit {
					// Already in output order: the limit is final.
					break
				}
			}
		}
		matched = make([]Record, len(hits))
		for i, pos := range hits {
			matched[i] = s.recs[pos]
		}
	} else {
		matched = make([]Record, 0, 64)
		for _, r := range s.recs {
			if matches(&r, q, pat) {
				matched = append(matched, r)
			}
		}
	}
	s.mu.RUnlock()

	if !ordered {
		sort.Slice(matched, func(i, j int) bool { return matched[i].Before(matched[j]) })
	}
	if q.Limit > 0 && len(matched) > q.Limit {
		matched = matched[:q.Limit]
	}
	return matched, nil
}

// Count reports how many records match q without copying them out — the
// cheap path for count-only assertions and campaign bookkeeping.
func (s *Store) Count(q Query) (int, error) {
	pat, err := pattern.Compile(q.IDPattern)
	if err != nil {
		return 0, fmt.Errorf("eventlog: bad query pattern: %w", err)
	}
	n := 0
	s.mu.RLock()
	if list, ok := s.postings(q); ok {
		for _, pos := range list {
			r := &s.recs[pos]
			if s.ordered && !q.Until.IsZero() && !r.Timestamp.Before(q.Until) {
				break
			}
			if matches(r, q, pat) {
				n++
				if q.Limit > 0 && n == q.Limit {
					break
				}
			}
		}
	} else {
		for i := range s.recs {
			if matches(&s.recs[i], q, pat) {
				n++
				if q.Limit > 0 && n == q.Limit {
					break
				}
			}
		}
	}
	s.mu.RUnlock()
	return n, nil
}

// Counter is the optional count-only surface of a Source. Store,
// ShardedStore, and Client all implement it.
type Counter interface {
	Count(q Query) (int, error)
}

// CountRecords counts the records matching q, using src's Count fast
// path when it has one and falling back to Select otherwise — so callers
// that only need a total never force a remote store to materialize and
// ship the records.
func CountRecords(src Source, q Query) (int, error) {
	if c, ok := src.(Counter); ok {
		return c.Count(q)
	}
	recs, err := src.Select(q)
	if err != nil {
		return 0, err
	}
	return len(recs), nil
}

// postings returns the narrowest posting list serving q, or ok=false when
// the query filters on neither endpoint (or the index is disabled) and a
// full scan is required. Caller holds at least a read lock.
func (s *Store) postings(q Query) ([]int32, bool) {
	if s.linearScan {
		return nil, false
	}
	switch {
	case q.Src != "" && q.Dst != "":
		return s.byEdge[storeKey{q.Src, q.Dst}], true
	case q.Src != "":
		return s.bySrc[q.Src], true
	case q.Dst != "":
		return s.byDst[q.Dst], true
	}
	return nil, false
}

func matches(r *Record, q Query, pat pattern.Pattern) bool {
	if q.Src != "" && r.Src != q.Src {
		return false
	}
	if q.Dst != "" && r.Dst != q.Dst {
		return false
	}
	if q.Kind != "" && r.Kind != q.Kind {
		return false
	}
	if !pat.MatchAll() && !pat.Match(r.RequestID) {
		return false
	}
	if !q.Since.IsZero() && r.Timestamp.Before(q.Since) {
		return false
	}
	if !q.Until.IsZero() && !r.Timestamp.Before(q.Until) {
		return false
	}
	return true
}
