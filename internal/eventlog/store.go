package eventlog

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gremlin/internal/pattern"
)

// Query selects records from the store. Zero-valued fields match
// everything.
type Query struct {
	// Src and Dst filter by caller/callee service name ("" matches any).
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`

	// Kind filters by record kind ("" matches both).
	Kind Kind `json:"kind,omitempty"`

	// IDPattern filters by request ID using the shared pattern language
	// (glob or "re:"). Empty matches any ID, including absent ones.
	IDPattern string `json:"idPattern,omitempty"`

	// Since and Until bound the record timestamps: Since <= ts < Until.
	// Zero values leave the corresponding bound open.
	Since time.Time `json:"since,omitempty"`
	Until time.Time `json:"until,omitempty"`

	// Limit caps the number of returned records (0 = unlimited).
	Limit int `json:"limit,omitempty"`
}

// Sink consumes observation records. Gremlin agents log through a Sink; the
// Store implements it directly and Client ships records to a remote Server.
type Sink interface {
	Log(recs ...Record) error
}

// Source answers record queries. The Assertion Checker depends only on this
// interface, so it works identically against an in-process Store or a
// remote store via Client.
type Source interface {
	// Select returns the records matching q, sorted by (timestamp, seq).
	Select(q Query) ([]Record, error)
}

// Store is the in-memory event store. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	recs []Record
	seq  uint64
}

var (
	_ Sink   = (*Store)(nil)
	_ Source = (*Store)(nil)
)

// NewStore creates an empty store.
func NewStore() *Store { return &Store{} }

// Log appends records, assigning sequence numbers. Records with a zero
// timestamp are stamped with the current time.
func (s *Store) Log(recs ...Record) error {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		s.seq++
		r.Seq = s.seq
		if r.Timestamp.IsZero() {
			r.Timestamp = now
		}
		s.recs = append(s.recs, r)
	}
	return nil
}

// Len reports the number of stored records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// Clear removes all records and returns how many were dropped. Recipes
// clear the store between test steps so assertions evaluate only the
// current step's observations.
func (s *Store) Clear() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.recs)
	s.recs = nil
	return n
}

// Select returns the records matching q in (timestamp, seq) order.
func (s *Store) Select(q Query) ([]Record, error) {
	pat, err := pattern.Compile(q.IDPattern)
	if err != nil {
		return nil, fmt.Errorf("eventlog: bad query pattern: %w", err)
	}

	s.mu.RLock()
	matched := make([]Record, 0, 64)
	for _, r := range s.recs {
		if matches(r, q, pat) {
			matched = append(matched, r)
		}
	}
	s.mu.RUnlock()

	sort.Slice(matched, func(i, j int) bool { return matched[i].Before(matched[j]) })
	if q.Limit > 0 && len(matched) > q.Limit {
		matched = matched[:q.Limit]
	}
	return matched, nil
}

func matches(r Record, q Query, pat pattern.Pattern) bool {
	if q.Src != "" && r.Src != q.Src {
		return false
	}
	if q.Dst != "" && r.Dst != q.Dst {
		return false
	}
	if q.Kind != "" && r.Kind != q.Kind {
		return false
	}
	if !pat.MatchAll() && !pat.Match(r.RequestID) {
		return false
	}
	if !q.Since.IsZero() && r.Timestamp.Before(q.Since) {
		return false
	}
	if !q.Until.IsZero() && !r.Timestamp.Before(q.Until) {
		return false
	}
	return true
}
