package eventlog

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gremlin/internal/pattern"
)

// Subscriber is a live feed of appended records: Store and ShardedStore
// subscriptions both satisfy it, so the server's SSE stream and the
// observe plane work identically against either.
type Subscriber interface {
	// C returns the record feed; it is closed by Close.
	C() <-chan Record

	// Dropped reports how many matching records were discarded because
	// the feed's buffer was full when they were appended.
	Dropped() int64

	// Close detaches the feed and closes C.
	Close()
}

// Subscription is one live feed of records appended to a Store, filtered
// by a request-ID pattern. Records from one Log call arrive on C in order;
// concurrent Log calls may interleave their batches, exactly as their
// appends interleave.
//
// The feed is bounded: a subscriber that falls behind by more than its
// buffer loses the overflow — dropped records are counted, never waited
// for, so a slow or stuck consumer cannot block the append hot path.
// Close the subscription to stop receiving; C is closed afterwards.
type Subscription struct {
	store *Store
	id    uint64
	pat   pattern.Pattern
	ch    chan Record

	dropped atomic.Int64
	once    sync.Once
}

// C returns the record feed. It is closed by Close.
func (s *Subscription) C() <-chan Record { return s.ch }

// Dropped reports how many matching records were discarded because this
// subscriber's buffer was full when they were appended.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Close detaches the subscription from the store and closes C. It is safe
// to call more than once and concurrently with appends.
func (s *Subscription) Close() {
	s.once.Do(func() {
		// Taking the publisher lock exclusively means no Log call is
		// mid-send on s.ch, so closing it cannot panic a publisher.
		s.store.subMu.Lock()
		delete(s.store.subs, s.id)
		s.store.subCount.Add(-1)
		s.store.subMu.Unlock()
		close(s.ch)
	})
}

// DefaultSubscriberBuffer is the per-subscriber channel capacity used by
// Subscribe.
const DefaultSubscriberBuffer = 1024

// Subscribe opens a live feed of records whose request ID matches
// idPattern (the shared glob/"re:" language; empty matches everything).
// Only records appended after Subscribe returns are delivered — pair it
// with Select to also see the past.
func (s *Store) Subscribe(idPattern string) (Subscriber, error) {
	return s.SubscribeBuffer(idPattern, DefaultSubscriberBuffer)
}

// SubscribeBuffer is Subscribe with an explicit per-subscriber buffer
// capacity (minimum 1). Smaller buffers drop sooner under a slow consumer;
// they never block the appender.
func (s *Store) SubscribeBuffer(idPattern string, buffer int) (Subscriber, error) {
	pat, err := pattern.Compile(idPattern)
	if err != nil {
		return nil, fmt.Errorf("eventlog: bad subscribe pattern: %w", err)
	}
	if buffer < 1 {
		buffer = 1
	}
	sub := &Subscription{store: s, pat: pat, ch: make(chan Record, buffer)}
	s.subMu.Lock()
	s.subSeq++
	sub.id = s.subSeq
	if s.subs == nil {
		s.subs = make(map[uint64]*Subscription)
	}
	s.subs[sub.id] = sub
	s.subCount.Add(1)
	s.subMu.Unlock()
	return sub, nil
}

// Subscribers reports the number of open subscriptions.
func (s *Store) Subscribers() int {
	s.subMu.RLock()
	defer s.subMu.RUnlock()
	return len(s.subs)
}

// SubscriberDropped reports the total records dropped across all
// subscriptions (including closed ones) since the store was created.
func (s *Store) SubscriberDropped() int64 { return s.subDropped.Load() }

// Published reports the total records delivered to subscribers since the
// store was created.
func (s *Store) Published() int64 { return s.published.Load() }

// publish fans stamped records out to the live subscriptions. It runs
// after the store's main lock is released; each delivery is a non-blocking
// send, so the cost per append is bounded by the subscriber count alone.
func (s *Store) publish(recs []Record) {
	s.subMu.RLock()
	defer s.subMu.RUnlock()
	if len(s.subs) == 0 {
		return
	}
	for _, r := range recs {
		for _, sub := range s.subs {
			if !sub.pat.MatchAll() && !sub.pat.Match(r.RequestID) {
				continue
			}
			select {
			case sub.ch <- r:
				s.published.Add(1)
			default:
				sub.dropped.Add(1)
				s.subDropped.Add(1)
			}
		}
	}
}
