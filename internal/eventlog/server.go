package eventlog

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"gremlin/internal/httpx"
	"gremlin/internal/metrics"
)

// Server exposes a Store over HTTP — the stand-in for the paper's
// logstash→Elasticsearch pipeline. Endpoints:
//
//	POST   /v1/records   ingest a JSON array of records
//	POST   /v1/query     run a Query, returning matching records
//	DELETE /v1/records   clear the store (?pattern= clears only matching
//	                     request IDs, for per-campaign-run cleanup)
//	GET    /v1/stats     store statistics
//	GET    /v1/stream    live record feed (SSE; ?pattern= filters by
//	                     request ID, ?buffer= sets the subscriber buffer)
//	GET    /metrics      Prometheus text exposition
//	GET    /healthz      liveness probe
type Server struct {
	store *Store
	http  *httpx.Server
}

// streamHeartbeat is how often an idle stream emits an SSE comment so
// intermediaries keep the connection alive and dead clients are detected.
// Tests shorten it via the package-level variable.
var streamHeartbeat = 15 * time.Second

// statsBody is the payload of GET /v1/stats.
type statsBody struct {
	Records int `json:"records"`
}

// clearBody is the payload of DELETE /v1/records.
type clearBody struct {
	Dropped int `json:"dropped"`
}

// NewServer creates and starts a store server on addr (use "127.0.0.1:0"
// for an ephemeral port). Call Close to stop it.
func NewServer(addr string, store *Store) (*Server, error) {
	s := &Server{store: store}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/records", s.handleRecords)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/stream", s.handleStream)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	hs, err := httpx.NewServer(addr, mux)
	if err != nil {
		return nil, err
	}
	s.http = hs
	hs.Start()
	return s, nil
}

// URL returns the server's base URL.
func (s *Server) URL() string { return s.http.URL() }

// Close shuts the server down.
func (s *Server) Close() error { return s.http.Close() }

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var recs []Record
		if err := httpx.ReadJSON(w, r, &recs); err != nil {
			httpx.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := s.store.Log(recs...); err != nil {
			httpx.WriteError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		httpx.WriteJSON(w, http.StatusAccepted, map[string]int{"accepted": len(recs)})
	case http.MethodDelete:
		if pat := r.URL.Query().Get("pattern"); pat != "" {
			dropped, err := s.store.ClearMatching(pat)
			if err != nil {
				httpx.WriteError(w, http.StatusBadRequest, "%v", err)
				return
			}
			httpx.WriteJSON(w, http.StatusOK, clearBody{Dropped: dropped})
			return
		}
		httpx.WriteJSON(w, http.StatusOK, clearBody{Dropped: s.store.Clear()})
	default:
		httpx.WriteError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpx.WriteError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var q Query
	if err := httpx.ReadJSON(w, r, &q); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	recs, err := s.store.Select(q)
	if err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, recs)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpx.WriteError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, statsBody{Records: s.store.Len()})
}

// handleStream serves the live record feed as Server-Sent Events: one
// `data:` line of record JSON per event, a comment heartbeat while idle,
// and a `drop` event whenever the subscriber's buffer lost records. The
// stream runs until the client disconnects.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpx.WriteError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpx.WriteError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	buffer := DefaultSubscriberBuffer
	if b := r.URL.Query().Get("buffer"); b != "" {
		n, err := strconv.Atoi(b)
		if err != nil || n < 1 {
			httpx.WriteError(w, http.StatusBadRequest, "bad buffer %q", b)
			return
		}
		buffer = n
	}
	sub, err := s.store.SubscribeBuffer(r.URL.Query().Get("pattern"), buffer)
	if err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	heartbeat := time.NewTicker(streamHeartbeat)
	defer heartbeat.Stop()
	enc := json.NewEncoder(w)
	var reportedDrops int64
	for {
		select {
		case rec, ok := <-sub.C():
			if !ok {
				return
			}
			if _, err := w.Write([]byte("data: ")); err != nil {
				return
			}
			if err := enc.Encode(rec); err != nil { // Encode appends \n
				return
			}
			if _, err := w.Write([]byte("\n")); err != nil {
				return
			}
			flusher.Flush()
		case <-heartbeat.C:
			// Surface buffer overflow to the client so it knows its view
			// is lossy, then keep the connection warm.
			if d := sub.Dropped(); d > reportedDrops {
				reportedDrops = d
				if _, err := fmt.Fprintf(w, "event: drop\ndata: %d\n\n", d); err != nil {
					return
				}
			} else if _, err := w.Write([]byte(": keepalive\n\n")); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpx.WriteError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	mw := metrics.NewWriter()
	mw.Gauge("gremlin_store_records", "Records currently held by the store.", float64(s.store.Len()))
	mw.Counter("gremlin_store_appended_total", "Records ever appended to the store.", float64(s.store.Appended()))
	mw.Gauge("gremlin_store_subscribers", "Open live-stream subscriptions.", float64(s.store.Subscribers()))
	mw.Counter("gremlin_store_published_total", "Records delivered to live subscribers.", float64(s.store.Published()))
	mw.Counter("gremlin_store_subscriber_dropped_total", "Records dropped because a subscriber's buffer was full.", float64(s.store.SubscriberDropped()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = mw.WriteTo(w)
}
