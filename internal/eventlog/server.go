package eventlog

import (
	"net/http"

	"gremlin/internal/httpx"
)

// Server exposes a Store over HTTP — the stand-in for the paper's
// logstash→Elasticsearch pipeline. Endpoints:
//
//	POST   /v1/records   ingest a JSON array of records
//	POST   /v1/query     run a Query, returning matching records
//	DELETE /v1/records   clear the store (?pattern= clears only matching
//	                     request IDs, for per-campaign-run cleanup)
//	GET    /v1/stats     store statistics
//	GET    /healthz      liveness probe
type Server struct {
	store *Store
	http  *httpx.Server
}

// statsBody is the payload of GET /v1/stats.
type statsBody struct {
	Records int `json:"records"`
}

// clearBody is the payload of DELETE /v1/records.
type clearBody struct {
	Dropped int `json:"dropped"`
}

// NewServer creates and starts a store server on addr (use "127.0.0.1:0"
// for an ephemeral port). Call Close to stop it.
func NewServer(addr string, store *Store) (*Server, error) {
	s := &Server{store: store}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/records", s.handleRecords)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	hs, err := httpx.NewServer(addr, mux)
	if err != nil {
		return nil, err
	}
	s.http = hs
	hs.Start()
	return s, nil
}

// URL returns the server's base URL.
func (s *Server) URL() string { return s.http.URL() }

// Close shuts the server down.
func (s *Server) Close() error { return s.http.Close() }

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var recs []Record
		if err := httpx.ReadJSON(w, r, &recs); err != nil {
			httpx.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := s.store.Log(recs...); err != nil {
			httpx.WriteError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		httpx.WriteJSON(w, http.StatusAccepted, map[string]int{"accepted": len(recs)})
	case http.MethodDelete:
		if pat := r.URL.Query().Get("pattern"); pat != "" {
			dropped, err := s.store.ClearMatching(pat)
			if err != nil {
				httpx.WriteError(w, http.StatusBadRequest, "%v", err)
				return
			}
			httpx.WriteJSON(w, http.StatusOK, clearBody{Dropped: dropped})
			return
		}
		httpx.WriteJSON(w, http.StatusOK, clearBody{Dropped: s.store.Clear()})
	default:
		httpx.WriteError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpx.WriteError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var q Query
	if err := httpx.ReadJSON(w, r, &q); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	recs, err := s.store.Select(q)
	if err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, recs)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpx.WriteError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, statsBody{Records: s.store.Len()})
}
