package eventlog

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gremlin/internal/httpx"
	"gremlin/internal/metrics"
)

// StoreAPI is the store surface the HTTP server exposes. Both *Store and
// *ShardedStore implement it, so the same Server fronts a single-shard
// in-memory store and a sharded persistent one.
type StoreAPI interface {
	Sink
	Source
	Counter
	Clear() int
	ClearMatching(idPattern string) (int, error)
	Len() int
	Appended() uint64
	Subscribers() int
	Published() int64
	SubscriberDropped() int64
	SubscribeBuffer(idPattern string, buffer int) (Subscriber, error)
	NumShards() int
	ShardStats() []ShardStats
}

// shardSink is the optional pre-routed append fast path (ShardedStore's
// LogShard): a shard-aware client groups a batch per shard so the server
// appends it under exactly one shard lock.
type shardSink interface {
	LogShard(shard int, recs ...Record) error
}

// Server exposes a store over HTTP — the stand-in for the paper's
// logstash→Elasticsearch pipeline. Endpoints:
//
//	POST   /v1/records   ingest records: a JSON array, or JSON Lines with
//	                     Content-Type application/x-ndjson; ?shard=i&of=N
//	                     marks a batch pre-routed to shard i of N
//	POST   /v1/query     run a Query, returning matching records
//	POST   /v1/count     run a Query, returning only the match count
//	DELETE /v1/records   clear the store (?pattern= clears only matching
//	                     request IDs, for per-campaign-run cleanup)
//	GET    /v1/stats     store statistics (record count, shard count)
//	GET    /v1/info      store topology and WAL durability configuration
//	                     (shard count, fsync policy, data directory)
//	GET    /v1/stream    live record feed (SSE; ?pattern= filters by
//	                     request ID, ?buffer= sets the subscriber buffer)
//	GET    /metrics      Prometheus text exposition
//	GET    /healthz      liveness probe
type Server struct {
	store StoreAPI
	http  *httpx.Server
}

// streamHeartbeat is how often an idle stream emits an SSE comment so
// intermediaries keep the connection alive and dead clients are detected.
// Tests shorten it via the package-level variable.
var streamHeartbeat = 15 * time.Second

// statsBody is the payload of GET /v1/stats. Shards lets shard-aware
// clients pre-route their append batches.
type statsBody struct {
	Records int `json:"records"`
	Shards  int `json:"shards,omitempty"`
}

// StoreInfo is the payload of GET /v1/info: the store's partition
// topology and write-ahead-log durability configuration, surfaced so
// operators can verify from the outside what guarantees their event logs
// actually run with (gremlin-ctl status prints it).
type StoreInfo struct {
	Records    int  `json:"records"`
	Shards     int  `json:"shards"`
	Persistent bool `json:"persistent"`

	// Subscribers is how many live-stream subscriptions are open;
	// SubscriberDropped counts records dropped on full subscriber
	// buffers. Non-zero drops mean watchers (gremlin-watch, live
	// assertions) saw partial streams — silent unless surfaced here.
	Subscribers       int   `json:"subscribers"`
	SubscriberDropped int64 `json:"subscriberDropped,omitempty"`

	// Fsync is the WAL durability policy ("always", "interval", "never"),
	// set only for persistent stores.
	Fsync string `json:"fsync,omitempty"`

	// FsyncIntervalMillis is the background sync cadence, set only under
	// the "interval" policy.
	FsyncIntervalMillis int64 `json:"fsyncIntervalMillis,omitempty"`

	// DataDir is the server-local WAL directory, set only for persistent
	// stores.
	DataDir string `json:"dataDir,omitempty"`
}

// durabilityReporter is the optional store surface backing GET /v1/info;
// only persistent-capable stores (ShardedStore) implement it.
type durabilityReporter interface {
	Durability() (policy FsyncPolicy, interval time.Duration, dataDir string)
}

// countBody is the payload of POST /v1/count.
type countBody struct {
	Count int `json:"count"`
}

// clearBody is the payload of DELETE /v1/records.
type clearBody struct {
	Dropped int `json:"dropped"`
}

// NewServer creates and starts a store server on addr (use "127.0.0.1:0"
// for an ephemeral port). Call Close to stop it.
func NewServer(addr string, store StoreAPI) (*Server, error) {
	s := &Server{store: store}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/records", s.handleRecords)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/count", s.handleCount)
	mux.HandleFunc("/v1/compact", s.handleCompact)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/info", s.handleInfo)
	mux.HandleFunc("/v1/stream", s.handleStream)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	hs, err := httpx.NewServer(addr, mux)
	if err != nil {
		return nil, err
	}
	s.http = hs
	hs.Start()
	return s, nil
}

// URL returns the server's base URL.
func (s *Server) URL() string { return s.http.URL() }

// Close shuts the server down.
func (s *Server) Close() error { return s.http.Close() }

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		recs, err := decodeRecords(w, r)
		if err != nil {
			httpx.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := s.ingest(r, recs); err != nil {
			httpx.WriteError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		httpx.WriteJSON(w, http.StatusAccepted, map[string]int{"accepted": len(recs)})
	case http.MethodDelete:
		if pat := r.URL.Query().Get("pattern"); pat != "" {
			dropped, err := s.store.ClearMatching(pat)
			if err != nil {
				httpx.WriteError(w, http.StatusBadRequest, "%v", err)
				return
			}
			httpx.WriteJSON(w, http.StatusOK, clearBody{Dropped: dropped})
			return
		}
		httpx.WriteJSON(w, http.StatusOK, clearBody{Dropped: s.store.Clear()})
	default:
		httpx.WriteError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

// decodeRecords reads an ingest body: a JSON array (the default), or JSON
// Lines when the client announces application/x-ndjson — the encoding the
// BufferedSink batches flushes in, identical to the WAL segment format.
func decodeRecords(w http.ResponseWriter, r *http.Request) ([]Record, error) {
	if !strings.Contains(r.Header.Get("Content-Type"), "x-ndjson") {
		var recs []Record
		if err := httpx.ReadJSON(w, r, &recs); err != nil {
			return nil, err
		}
		return recs, nil
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, httpx.MaxBodyBytes))
	var recs []Record
	for {
		var rec Record
		err := dec.Decode(&rec)
		if errors.Is(err, io.EOF) {
			return recs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("decode record %d: %w", len(recs), err)
		}
		recs = append(recs, rec)
	}
}

// ingest appends decoded records, honouring a shard-aware client's
// pre-routing hint when its view of the shard topology is current.
func (s *Server) ingest(r *http.Request, recs []Record) error {
	q := r.URL.Query()
	if shard, of := q.Get("shard"), q.Get("of"); shard != "" && of != "" {
		si, err1 := strconv.Atoi(shard)
		n, err2 := strconv.Atoi(of)
		if err1 == nil && err2 == nil && n == s.store.NumShards() {
			if ssink, ok := s.store.(shardSink); ok {
				return ssink.LogShard(si, recs...)
			}
		}
	}
	return s.store.Log(recs...)
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpx.WriteError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var q Query
	if err := httpx.ReadJSON(w, r, &q); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	n, err := s.store.Count(q)
	if err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, countBody{Count: n})
}

// compacter is the optional WAL-compaction surface of a store; only
// persistent sharded stores implement it.
type compacter interface {
	Compact() error
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpx.WriteError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	if c, ok := s.store.(compacter); ok {
		if err := c.Compact(); err != nil {
			httpx.WriteError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	// Volatile stores have nothing to compact; success either way.
	httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpx.WriteError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var q Query
	if err := httpx.ReadJSON(w, r, &q); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	recs, err := s.store.Select(q)
	if err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, recs)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpx.WriteError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, statsBody{Records: s.store.Len(), Shards: s.store.NumShards()})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpx.WriteError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	info := StoreInfo{
		Records:           s.store.Len(),
		Shards:            s.store.NumShards(),
		Subscribers:       s.store.Subscribers(),
		SubscriberDropped: s.store.SubscriberDropped(),
	}
	if d, ok := s.store.(durabilityReporter); ok {
		policy, interval, dir := d.Durability()
		if dir != "" {
			info.Persistent = true
			info.Fsync = string(policy)
			info.DataDir = dir
			if policy == FsyncInterval {
				info.FsyncIntervalMillis = interval.Milliseconds()
			}
		}
	}
	httpx.WriteJSON(w, http.StatusOK, info)
}

// handleStream serves the live record feed as Server-Sent Events: one
// `data:` line of record JSON per event, a comment heartbeat while idle,
// and a `drop` event whenever the subscriber's buffer lost records. The
// stream runs until the client disconnects.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpx.WriteError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpx.WriteError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	buffer := DefaultSubscriberBuffer
	if b := r.URL.Query().Get("buffer"); b != "" {
		n, err := strconv.Atoi(b)
		if err != nil || n < 1 {
			httpx.WriteError(w, http.StatusBadRequest, "bad buffer %q", b)
			return
		}
		buffer = n
	}
	sub, err := s.store.SubscribeBuffer(r.URL.Query().Get("pattern"), buffer)
	if err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	heartbeat := time.NewTicker(streamHeartbeat)
	defer heartbeat.Stop()
	enc := json.NewEncoder(w)
	var reportedDrops int64
	for {
		select {
		case rec, ok := <-sub.C():
			if !ok {
				return
			}
			if _, err := w.Write([]byte("data: ")); err != nil {
				return
			}
			if err := enc.Encode(rec); err != nil { // Encode appends \n
				return
			}
			if _, err := w.Write([]byte("\n")); err != nil {
				return
			}
			flusher.Flush()
		case <-heartbeat.C:
			// Surface buffer overflow to the client so it knows its view
			// is lossy, then keep the connection warm.
			if d := sub.Dropped(); d > reportedDrops {
				reportedDrops = d
				if _, err := fmt.Fprintf(w, "event: drop\ndata: %d\n\n", d); err != nil {
					return
				}
			} else if _, err := w.Write([]byte(": keepalive\n\n")); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpx.WriteError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	mw := metrics.NewWriter()
	mw.Gauge("gremlin_store_records", "Records currently held by the store.", float64(s.store.Len()))
	mw.Counter("gremlin_store_appended_total", "Records ever appended to the store.", float64(s.store.Appended()))
	mw.Gauge("gremlin_store_subscribers", "Open live-stream subscriptions.", float64(s.store.Subscribers()))
	mw.Counter("gremlin_store_published_total", "Records delivered to live subscribers.", float64(s.store.Published()))
	mw.Counter("gremlin_store_subscriber_dropped_total", "Records dropped because a subscriber's buffer was full.", float64(s.store.SubscriberDropped()))
	mw.Gauge("gremlin_store_shards", "Number of store partitions.", float64(s.store.NumShards()))
	for _, st := range s.store.ShardStats() {
		shard := strconv.Itoa(st.Shard)
		mw.Counter("gremlin_store_shard_appends_total", "Records ever appended, per shard.", float64(st.Appended), "shard", shard)
		mw.Gauge("gremlin_store_shard_records", "Records currently held, per shard.", float64(st.Records), "shard", shard)
		mw.Gauge("gremlin_store_wal_segments", "Write-ahead-log segment files on disk, per shard.", float64(st.WALSegments), "shard", shard)
		mw.Gauge("gremlin_store_wal_bytes", "Write-ahead-log bytes on disk, per shard.", float64(st.WALBytes), "shard", shard)
		mw.Gauge("gremlin_store_wal_replayed_records", "Records recovered from the write-ahead log at startup, per shard.", float64(st.WALReplayed), "shard", shard)
		mw.Counter("gremlin_store_wal_compactions_total", "Write-ahead-log compactions run, per shard.", float64(st.WALCompactions), "shard", shard)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = mw.WriteTo(w)
}
