package eventlog

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", NewStore())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
	})
	return srv, NewClient(srv.URL(), nil)
}

func TestServerIngestAndQuery(t *testing.T) {
	_, c := newTestServer(t)

	recs := []Record{
		{Src: "a", Dst: "b", Kind: KindRequest, RequestID: "test-1", Timestamp: t0},
		{Src: "a", Dst: "b", Kind: KindReply, RequestID: "test-1", Status: 200, LatencyMillis: 12.5, Timestamp: t0.Add(time.Millisecond)},
		{Src: "a", Dst: "c", Kind: KindRequest, RequestID: "test-2", Timestamp: t0.Add(2 * time.Millisecond)},
	}
	if err := c.Log(recs...); err != nil {
		t.Fatal(err)
	}

	got, err := c.Select(Query{Src: "a", Dst: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
	if got[1].Status != 200 || got[1].LatencyMillis != 12.5 {
		t.Fatalf("reply record = %+v", got[1])
	}
	if !got[0].Timestamp.Equal(t0) {
		t.Fatalf("timestamp round trip = %v, want %v", got[0].Timestamp, t0)
	}

	n, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Stats = %d, want 3", n)
	}
}

func TestServerClear(t *testing.T) {
	_, c := newTestServer(t)
	if err := c.Log(Record{Src: "a", Dst: "b", Kind: KindRequest}); err != nil {
		t.Fatal(err)
	}
	dropped, err := c.Clear()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("Clear = %d, want 1", dropped)
	}
	n, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("Stats after clear = %d", n)
	}
}

func TestServerHealthz(t *testing.T) {
	_, c := newTestServer(t)
	if !c.Healthy() {
		t.Fatal("server should be healthy")
	}
	down := NewClient("http://127.0.0.1:1", &http.Client{Timeout: 200 * time.Millisecond})
	if down.Healthy() {
		t.Fatal("unreachable server should be unhealthy")
	}
}

func TestServerRejectsBadQuery(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Select(Query{IDPattern: "re:["}); err == nil {
		t.Fatal("want error for bad pattern")
	}
}

func TestServerMethodNotAllowed(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, tc := range []struct{ method, path string }{
		{http.MethodGet, "/v1/query"},
		{http.MethodPut, "/v1/records"},
		{http.MethodPost, "/v1/stats"},
	} {
		req, err := http.NewRequest(tc.method, srv.URL()+tc.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if cerr := resp.Body.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
	}
}

func TestServerRejectsMalformedBody(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Post(srv.URL()+"/v1/records", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestClientErrorsAgainstDownServer(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", &http.Client{Timeout: 200 * time.Millisecond})
	if err := c.Log(Record{Src: "a", Dst: "b", Kind: KindRequest}); err == nil {
		t.Fatal("Log should fail")
	}
	if _, err := c.Select(Query{}); err == nil {
		t.Fatal("Select should fail")
	}
	if _, err := c.Clear(); err == nil {
		t.Fatal("Clear should fail")
	}
	if _, err := c.Stats(); err == nil {
		t.Fatal("Stats should fail")
	}
}

func TestClientLogEmptyIsNoop(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", &http.Client{Timeout: 200 * time.Millisecond})
	if err := c.Log(); err != nil {
		t.Fatalf("empty Log should not touch the network: %v", err)
	}
}

// BufferedSink tests live in buffer_test.go.

func TestServerClearMatchingPattern(t *testing.T) {
	_, c := newTestServer(t)
	if err := c.Log(
		Record{Src: "a", Dst: "b", Kind: KindRequest, RequestID: "camp-x-1-1"},
		Record{Src: "a", Dst: "b", Kind: KindRequest, RequestID: "camp-y-1-1"},
	); err != nil {
		t.Fatal(err)
	}
	dropped, err := c.ClearMatching("camp-x-*")
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("ClearMatching = %d, want 1", dropped)
	}
	left, err := c.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 || left[0].RequestID != "camp-y-1-1" {
		t.Fatalf("survivors = %+v", left)
	}
	if _, err := c.ClearMatching("re:["); err == nil {
		t.Fatal("want error for bad pattern")
	}
}

func newShardedTestServer(t *testing.T, shards int) (*ShardedStore, *Client) {
	t.Helper()
	ss, err := NewShardedStore(StoreOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", ss)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
		ss.Close()
	})
	return ss, NewClient(srv.URL(), nil)
}

func TestClientLogBatchShardAware(t *testing.T) {
	ss, c := newShardedTestServer(t, 4)

	var recs []Record
	for i := 0; i < 120; i++ {
		recs = append(recs, Record{
			Src: "a", Dst: "b", Kind: KindRequest,
			RequestID: fmt.Sprintf("ns%d-%d", i%9, i),
			Timestamp: t0.Add(time.Duration(i) * time.Millisecond),
		})
	}
	if err := c.LogBatch(recs); err != nil {
		t.Fatal(err)
	}
	if got := ss.Len(); got != 120 {
		t.Fatalf("server holds %d records, want 120", got)
	}
	// Every record must be findable by its namespace pattern (i.e. it
	// landed on the shard the pattern pins).
	for ns := 0; ns < 9; ns++ {
		got, err := c.Select(Query{IDPattern: fmt.Sprintf("ns%d-*", ns)})
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for i := 0; i < 120; i++ {
			if i%9 == ns {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("ns%d: %d records via client, want %d", ns, len(got), want)
		}
	}
}

func TestClientCount(t *testing.T) {
	_, c := newShardedTestServer(t, 4)
	var recs []Record
	for i := 0; i < 50; i++ {
		recs = append(recs, Record{
			Src: "a", Dst: "b", Kind: KindRequest,
			RequestID: fmt.Sprintf("test-%d", i),
			Timestamp: t0.Add(time.Duration(i) * time.Millisecond),
		})
	}
	if err := c.LogBatch(recs); err != nil {
		t.Fatal(err)
	}
	n, err := c.Count(Query{IDPattern: "test-*"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("Count=%d, want 50", n)
	}
	n, err = c.Count(Query{IDPattern: "other-*"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("Count=%d, want 0", n)
	}
}

func TestServerNDJSONIngest(t *testing.T) {
	srv, c := newTestServer(t)
	body := `{"requestId":"test-1","src":"a","dst":"b","kind":"request"}
{"requestId":"test-2","src":"a","dst":"b","kind":"request"}
`
	resp, err := http.Post(srv.URL()+"/v1/records", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	n, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("stats=%d, want 2", n)
	}
}

func TestServerInfoVolatileStore(t *testing.T) {
	_, c := newTestServer(t)
	if err := c.Log(Record{Src: "a", Dst: "b", Kind: KindRequest, RequestID: "test-1", Timestamp: t0}); err != nil {
		t.Fatal(err)
	}
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 1 || info.Shards != 1 || info.Persistent {
		t.Fatalf("info = %+v", info)
	}
	if info.Fsync != "" || info.DataDir != "" || info.FsyncIntervalMillis != 0 {
		t.Fatalf("volatile store leaked durability fields: %+v", info)
	}
}

func TestServerInfoShardedWAL(t *testing.T) {
	dir := t.TempDir()
	ss, err := NewShardedStore(StoreOptions{
		Shards:        4,
		DataDir:       dir,
		Fsync:         FsyncInterval,
		FsyncInterval: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", ss)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
		if err := ss.Close(); err != nil {
			t.Errorf("close store: %v", err)
		}
	})
	c := NewClient(srv.URL(), nil)
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != 4 || !info.Persistent || info.Fsync != string(FsyncInterval) ||
		info.FsyncIntervalMillis != 250 || info.DataDir != dir {
		t.Fatalf("info = %+v", info)
	}
}

func TestServerInfoMethodNotAllowed(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Post(srv.URL()+"/v1/info", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
