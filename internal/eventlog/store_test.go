package eventlog

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)

func rec(src, dst string, kind Kind, id string, at time.Duration) Record {
	return Record{
		Timestamp: t0.Add(at),
		RequestID: id,
		Src:       src,
		Dst:       dst,
		Kind:      kind,
	}
}

func TestLogAssignsSeqAndTimestamp(t *testing.T) {
	s := NewStore()
	if err := s.Log(Record{Src: "a", Dst: "b", Kind: KindRequest}); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Seq != 1 {
		t.Fatalf("Seq = %d, want 1", recs[0].Seq)
	}
	if recs[0].Timestamp.IsZero() {
		t.Fatal("zero timestamp should be stamped")
	}
}

func TestSelectFilters(t *testing.T) {
	s := NewStore()
	err := s.Log(
		rec("a", "b", KindRequest, "test-1", 0),
		rec("a", "b", KindReply, "test-1", time.Millisecond),
		rec("a", "c", KindRequest, "test-2", 2*time.Millisecond),
		rec("x", "b", KindRequest, "prod-9", 3*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name string
		q    Query
		want int
	}{
		{"all", Query{}, 4},
		{"by src", Query{Src: "a"}, 3},
		{"by dst", Query{Dst: "b"}, 3},
		{"by src+dst", Query{Src: "a", Dst: "b"}, 2},
		{"by kind request", Query{Kind: KindRequest}, 3},
		{"by kind reply", Query{Kind: KindReply}, 1},
		{"by id glob", Query{IDPattern: "test-*"}, 3},
		{"by id exact", Query{IDPattern: "test-1"}, 2},
		{"by regexp", Query{IDPattern: "re:^prod-"}, 1},
		{"no match", Query{Src: "nobody"}, 0},
		{"limit", Query{Limit: 2}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := s.Select(tt.q)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != tt.want {
				t.Fatalf("Select(%+v) returned %d records, want %d", tt.q, len(got), tt.want)
			}
		})
	}
}

func TestSelectTimeBounds(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		if err := s.Log(rec("a", "b", KindRequest, "test", time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Select(Query{Since: t0.Add(3 * time.Second), Until: t0.Add(7 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 { // ts 3,4,5,6 (Until is exclusive)
		t.Fatalf("got %d records, want 4", len(got))
	}
	if !got[0].Timestamp.Equal(t0.Add(3 * time.Second)) {
		t.Fatalf("first ts = %v", got[0].Timestamp)
	}
}

func TestSelectSortedByTimeThenSeq(t *testing.T) {
	s := NewStore()
	// Log out of order, with duplicate timestamps.
	if err := s.Log(
		rec("a", "b", KindRequest, "2", 2*time.Second),
		rec("a", "b", KindRequest, "0a", 0),
		rec("a", "b", KindRequest, "0b", 0),
		rec("a", "b", KindRequest, "1", time.Second),
	); err != nil {
		t.Fatal(err)
	}
	got, err := s.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	order := make([]string, len(got))
	for i, r := range got {
		order[i] = r.RequestID
	}
	want := []string{"0a", "0b", "1", "2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSelectBadPattern(t *testing.T) {
	s := NewStore()
	if _, err := s.Select(Query{IDPattern: "re:["}); err == nil {
		t.Fatal("want error for bad pattern")
	}
}

func TestClear(t *testing.T) {
	s := NewStore()
	if err := s.Log(rec("a", "b", KindRequest, "x", 0)); err != nil {
		t.Fatal(err)
	}
	if n := s.Clear(); n != 1 {
		t.Fatalf("Clear = %d", n)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after clear", s.Len())
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := s.Log(rec("a", "b", KindRequest, fmt.Sprintf("test-%d-%d", w, i), 0)); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Select(Query{Src: "a"}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("Len = %d, want 800", s.Len())
	}
}

func TestRecordLatencyHelpers(t *testing.T) {
	r := Record{LatencyMillis: 150, InjectedDelayMillis: 100}
	if got := r.Latency(); got != 150*time.Millisecond {
		t.Fatalf("Latency = %v", got)
	}
	if got := r.InjectedDelay(); got != 100*time.Millisecond {
		t.Fatalf("InjectedDelay = %v", got)
	}
	if got := r.UntamperedLatency(); got != 50*time.Millisecond {
		t.Fatalf("UntamperedLatency = %v", got)
	}
	// Injected delay exceeding measured latency clamps at zero.
	r = Record{LatencyMillis: 50, InjectedDelayMillis: 100}
	if got := r.UntamperedLatency(); got != 0 {
		t.Fatalf("UntamperedLatency = %v, want 0", got)
	}
}

// Property: Select(Query{}) returns records in nondecreasing (ts, seq)
// order regardless of insertion order.
func TestSelectOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(n uint8) bool {
		s := NewStore()
		for i := 0; i < int(n%64); i++ {
			r := rec("a", "b", KindRequest, "x", time.Duration(rng.Intn(5))*time.Second)
			if err := s.Log(r); err != nil {
				return false
			}
		}
		got, err := s.Select(Query{})
		if err != nil {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Before(got[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestStoreConcurrentLogSelectClear hammers the store from writers,
// readers, and clearers at once. Run with -race; the invariant is that
// every Select observes a consistent prefix (sorted, no partial records)
// and nothing panics.
func TestStoreConcurrentLogSelectClear(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if err := s.Log(rec("a", "b", KindRequest, fmt.Sprintf("test-%d-%d", w, i), 0)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				got, err := s.Select(Query{Src: "a", Dst: "b"})
				if err != nil {
					t.Error(err)
					return
				}
				for j := 1; j < len(got); j++ {
					if got[j].Before(got[j-1]) {
						t.Error("Select returned unsorted records")
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.Clear()
			s.Len()
		}
	}()
	wg.Wait()
	// The store must still be fully consistent after the storm.
	if _, err := s.Select(Query{}); err != nil {
		t.Fatal(err)
	}
}

// Property: the posting-list index returns exactly what the pre-index
// linear scan returns, for every filter shape, including out-of-order
// timestamps that force the sort path.
func TestIndexedSelectMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	srcs := []string{"a", "b", "c"}
	dsts := []string{"x", "y"}
	f := func(n uint8, qi uint8) bool {
		s := NewStore()
		for i := 0; i < int(n%80); i++ {
			r := rec(srcs[rng.Intn(3)], dsts[rng.Intn(2)], KindRequest,
				fmt.Sprintf("test-%d", i%7),
				time.Duration(rng.Intn(10))*time.Second) // out of order on purpose
			if rng.Intn(2) == 0 {
				r.Kind = KindReply
			}
			if err := s.Log(r); err != nil {
				return false
			}
		}
		queries := []Query{
			{Src: "a", Dst: "x"},
			{Src: "b"},
			{Dst: "y", Kind: KindReply},
			{Src: "c", Dst: "y", IDPattern: "test-3"},
			{Src: "a", Since: t0.Add(2 * time.Second), Until: t0.Add(7 * time.Second)},
			{Src: "a", Dst: "x", Limit: 3},
		}
		q := queries[int(qi)%len(queries)]
		indexed, err := s.Select(q)
		if err != nil {
			return false
		}
		s.UseLinearScan(true)
		scanned, err := s.Select(q)
		s.UseLinearScan(false)
		if err != nil {
			return false
		}
		if len(indexed) != len(scanned) {
			return false
		}
		for i := range indexed {
			if indexed[i].Seq != scanned[i].Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClearMatching(t *testing.T) {
	s := NewStore()
	ids := []string{"camp-a-0-1", "camp-a-0-2", "camp-a-1-1", "test-1"}
	for i, id := range ids {
		if err := s.Log(rec("a", "b", KindRequest, id, time.Duration(i))); err != nil {
			t.Fatal(err)
		}
	}

	n, err := s.ClearMatching("camp-a-0-*")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ClearMatching = %d, want 2", n)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d after pattern clear", s.Len())
	}

	// The survivors stay queryable through the rebuilt indexes.
	got, err := s.Select(Query{Src: "a", Dst: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].RequestID != "camp-a-1-1" || got[1].RequestID != "test-1" {
		t.Fatalf("survivors = %+v", got)
	}

	if _, err := s.ClearMatching("re:["); err == nil {
		t.Fatal("want error for bad pattern")
	}

	// A match-all pattern behaves like Clear.
	n, err = s.ClearMatching("*")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || s.Len() != 0 {
		t.Fatalf("match-all clear dropped %d, left %d", n, s.Len())
	}
}
