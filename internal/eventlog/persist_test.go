package eventlog

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func persistFixture(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	err := s.Log(
		Record{Timestamp: t0, RequestID: "test-1", Src: "a", Dst: "b",
			Kind: KindRequest, Method: "GET", URI: "/x"},
		Record{Timestamp: t0.Add(time.Millisecond), RequestID: "test-1", Src: "a", Dst: "b",
			Kind: KindReply, Status: 503, LatencyMillis: 1.5,
			FaultAction: "abort", FaultRuleID: "r1", GremlinGenerated: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestJSONLRoundTrip(t *testing.T) {
	src := persistFixture(t)
	var buf bytes.Buffer
	n, err := src.WriteJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("wrote %d records", n)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Fatalf("output has %d lines", lines)
	}

	dst := NewStore()
	loaded, err := dst.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 2 {
		t.Fatalf("loaded %d records", loaded)
	}
	want, err := src.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		// Seq is store-local; compare everything else.
		want[i].Seq, got[i].Seq = 0, 0
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("record %d: %+v != %+v", i, want[i], got[i])
		}
	}
}

func TestReadJSONLMalformed(t *testing.T) {
	s := NewStore()
	n, err := s.ReadJSONL(strings.NewReader("{\"src\":\"a\"}\nnot json\n"))
	if err == nil {
		t.Fatal("want decode error")
	}
	if n != 1 {
		t.Fatalf("loaded %d records before the error, want 1", n)
	}
}

func TestReadJSONLEmpty(t *testing.T) {
	s := NewStore()
	n, err := s.ReadJSONL(strings.NewReader(""))
	if err != nil || n != 0 {
		t.Fatalf("got (%d, %v)", n, err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	src := persistFixture(t)
	n, err := src.SaveFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("saved %d", n)
	}

	dst := NewStore()
	loaded, err := dst.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 2 || dst.Len() != 2 {
		t.Fatalf("loaded %d, store has %d", loaded, dst.Len())
	}

	// Overwriting is atomic and replaces prior content.
	if _, err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	again := NewStore()
	if n, err := again.LoadFile(path); err != nil || n != 2 {
		t.Fatalf("reload got (%d, %v)", n, err)
	}
}

func TestLoadFileMissingIsEmpty(t *testing.T) {
	s := NewStore()
	n, err := s.LoadFile(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || n != 0 {
		t.Fatalf("got (%d, %v), want (0, nil)", n, err)
	}
}

func TestSaveFileBadDir(t *testing.T) {
	s := persistFixture(t)
	if _, err := s.SaveFile("/nonexistent-dir-xyz/events.jsonl"); err == nil {
		t.Fatal("want error for unwritable directory")
	}
}
