package eventlog

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Client talks to a remote event-log Server. It implements both Sink (for
// agents shipping observations) and Source (for the Assertion Checker).
type Client struct {
	baseURL string
	http    *http.Client

	// shards caches the server's shard topology (0 = not yet learned) so
	// LogBatch can pre-route batches; see topology().
	shards atomic.Int32
}

var (
	_ Sink   = (*Client)(nil)
	_ Source = (*Client)(nil)
)

// NewClient creates a client for the store server at baseURL (e.g.
// "http://127.0.0.1:9200"). If hc is nil a default client with a 10 s
// timeout is used.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{baseURL: baseURL, http: hc}
}

// Log ships records to the remote store.
func (c *Client) Log(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	var out map[string]int
	if err := c.post("/v1/records", recs, &out); err != nil {
		return fmt.Errorf("eventlog: ship %d records: %w", len(recs), err)
	}
	return nil
}

// LogBatch ships one flush's worth of records as a single JSON Lines
// body per shard: the batch is grouped by the server's shard topology
// (learned once from /v1/stats and re-learned when it drifts), encoded
// into a pooled buffer, and sent with the ?shard= pre-routing hint so the
// server appends each group under exactly one shard lock. BufferedSink
// uses this instead of Log when its sink is a Client.
func (c *Client) LogBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	n := c.topology()
	if n <= 1 {
		return c.postBatch("/v1/records", recs)
	}
	groups := make(map[int][]Record, 4)
	for _, r := range recs {
		si := shardOf(r.RequestID, n)
		groups[si] = append(groups[si], r)
	}
	for si, g := range groups {
		path := fmt.Sprintf("/v1/records?shard=%d&of=%d", si, n)
		if err := c.postBatch(path, g); err != nil {
			return err
		}
	}
	return nil
}

// shardOf mirrors the server's request-ID-namespace routing so client
// batches land pre-sorted (the server re-verifies placement).
func shardOf(id string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(namespaceOf(id)))
	return int(h.Sum32() % uint32(shards))
}

// topology returns the server's shard count, fetching it on first use.
// An unreachable server reads as single-shard; the count is retried on
// the next batch.
func (c *Client) topology() int {
	if n := c.shards.Load(); n > 0 {
		return int(n)
	}
	req, err := http.NewRequest(http.MethodGet, c.baseURL+"/v1/stats", nil)
	if err != nil {
		return 1
	}
	var out statsBody
	if err := c.do(req, &out); err != nil || out.Shards < 1 {
		return 1
	}
	c.shards.Store(int32(out.Shards))
	return out.Shards
}

// Info fetches the server's store topology and WAL durability
// configuration (GET /v1/info).
func (c *Client) Info() (StoreInfo, error) {
	req, err := http.NewRequest(http.MethodGet, c.baseURL+"/v1/info", nil)
	if err != nil {
		return StoreInfo{}, fmt.Errorf("eventlog: store info: %w", err)
	}
	var out StoreInfo
	if err := c.do(req, &out); err != nil {
		return StoreInfo{}, fmt.Errorf("eventlog: store info: %w", err)
	}
	return out, nil
}

// batchBufPool recycles NDJSON encode buffers across flushes.
var batchBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// postBatch sends records as one application/x-ndjson body encoded into a
// pooled buffer — one request, one encoder pass, zero per-record HTTP
// overhead.
func (c *Client) postBatch(path string, recs []Record) error {
	buf := batchBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer batchBufPool.Put(buf)
	enc := json.NewEncoder(buf)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("eventlog: encode batch: %w", err)
		}
	}
	req, err := http.NewRequest(http.MethodPost, c.baseURL+path, bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Errorf("eventlog: ship %d records: %w", len(recs), err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	var out map[string]int
	if err := c.do(req, &out); err != nil {
		return fmt.Errorf("eventlog: ship %d records: %w", len(recs), err)
	}
	return nil
}

// Select runs a query against the remote store.
func (c *Client) Select(q Query) ([]Record, error) {
	var recs []Record
	if err := c.post("/v1/query", q, &recs); err != nil {
		return nil, fmt.Errorf("eventlog: query: %w", err)
	}
	return recs, nil
}

// Count runs a count-only query against the remote store (POST
// /v1/count), so totals never ship the matching records over the wire.
func (c *Client) Count(q Query) (int, error) {
	var out countBody
	if err := c.post("/v1/count", q, &out); err != nil {
		return 0, fmt.Errorf("eventlog: count: %w", err)
	}
	return out.Count, nil
}

// Clear drops all records in the remote store and returns how many were
// dropped.
func (c *Client) Clear() (int, error) {
	req, err := http.NewRequest(http.MethodDelete, c.baseURL+"/v1/records", nil)
	if err != nil {
		return 0, fmt.Errorf("eventlog: clear: %w", err)
	}
	var out clearBody
	if err := c.do(req, &out); err != nil {
		return 0, fmt.Errorf("eventlog: clear: %w", err)
	}
	return out.Dropped, nil
}

// ClearMatching drops the remote records whose request ID matches
// idPattern and returns how many were dropped.
func (c *Client) ClearMatching(idPattern string) (int, error) {
	req, err := http.NewRequest(http.MethodDelete,
		c.baseURL+"/v1/records?pattern="+url.QueryEscape(idPattern), nil)
	if err != nil {
		return 0, fmt.Errorf("eventlog: clear matching: %w", err)
	}
	var out clearBody
	if err := c.do(req, &out); err != nil {
		return 0, fmt.Errorf("eventlog: clear matching: %w", err)
	}
	return out.Dropped, nil
}

// Compact asks the remote store to compact its write-ahead logs,
// rewriting each shard's live set into a single snapshot segment. A
// volatile store treats it as a no-op.
func (c *Client) Compact() error {
	if err := c.post("/v1/compact", nil, nil); err != nil {
		return fmt.Errorf("eventlog: compact: %w", err)
	}
	return nil
}

// Stats returns the number of records held by the remote store.
func (c *Client) Stats() (int, error) {
	req, err := http.NewRequest(http.MethodGet, c.baseURL+"/v1/stats", nil)
	if err != nil {
		return 0, fmt.Errorf("eventlog: stats: %w", err)
	}
	var out statsBody
	if err := c.do(req, &out); err != nil {
		return 0, fmt.Errorf("eventlog: stats: %w", err)
	}
	return out.Records, nil
}

// ErrStreamStopped is the sentinel a Stream callback returns to end the
// stream cleanly: Stream closes the connection and returns nil.
var ErrStreamStopped = errors.New("eventlog: stream stopped")

// Stream tails the remote store's live record feed (GET /v1/stream),
// calling fn for each record whose request ID matches pattern. It blocks
// until ctx is cancelled (returning ctx.Err()), the server goes away
// (returning the transport error), or fn returns an error — fn returning
// ErrStreamStopped ends the stream with a nil error, any other error is
// returned as-is.
//
// The feed is bounded server-side: if fn is too slow, records are dropped
// at the server rather than buffered without limit (the drop count is
// reported on the wire as "drop" events, visible in the store's metrics).
func (c *Client) Stream(ctx context.Context, pattern string, fn func(Record) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.baseURL+"/v1/stream?pattern="+url.QueryEscape(pattern), nil)
	if err != nil {
		return fmt.Errorf("eventlog: stream: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	// The default client enforces an overall request timeout, which would
	// kill a long-lived stream; use the same transport without it. ctx
	// still cancels the request.
	hc := &http.Client{Transport: c.http.Transport}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("eventlog: stream: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("eventlog: stream: server returned %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data []string
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Blank line dispatches the accumulated event. Only unnamed
			// (record) events carry store records; "drop" events carry a
			// counter the client surfaces via the error path only if asked.
			if event == "" && len(data) > 0 {
				var rec Record
				if err := json.Unmarshal([]byte(strings.Join(data, "\n")), &rec); err != nil {
					return fmt.Errorf("eventlog: stream: decode record: %w", err)
				}
				if err := fn(rec); err != nil {
					if errors.Is(err, ErrStreamStopped) {
						return nil
					}
					return err
				}
			}
			data, event = data[:0], ""
		case strings.HasPrefix(line, ":"):
			// Comment / keepalive.
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("eventlog: stream: %w", err)
	}
	return ctx.Err()
}

// Healthy reports whether the remote store responds to its liveness probe.
// Metrics fetches the server's raw Prometheus text exposition.
func (c *Client) Metrics() (string, error) {
	resp, err := c.http.Get(c.baseURL + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("eventlog: metrics: %s: %s", resp.Status, body)
	}
	return string(body), nil
}

func (c *Client) Healthy() bool {
	resp, err := c.http.Get(c.baseURL + "/healthz")
	if err != nil {
		return false
	}
	defer drainClose(resp.Body)
	return resp.StatusCode == http.StatusOK
}

func (c *Client) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("marshal: %w", err)
	}
	req, err := http.NewRequest(http.MethodPost, c.baseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode >= 400 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("server returned %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	return nil
}

// drainClose drains and closes a response body so the underlying connection
// can be reused.
func drainClose(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(rc, 64<<10))
	_ = rc.Close()
}
