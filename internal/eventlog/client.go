package eventlog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// Client talks to a remote event-log Server. It implements both Sink (for
// agents shipping observations) and Source (for the Assertion Checker).
type Client struct {
	baseURL string
	http    *http.Client
}

var (
	_ Sink   = (*Client)(nil)
	_ Source = (*Client)(nil)
)

// NewClient creates a client for the store server at baseURL (e.g.
// "http://127.0.0.1:9200"). If hc is nil a default client with a 10 s
// timeout is used.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{baseURL: baseURL, http: hc}
}

// Log ships records to the remote store.
func (c *Client) Log(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	var out map[string]int
	if err := c.post("/v1/records", recs, &out); err != nil {
		return fmt.Errorf("eventlog: ship %d records: %w", len(recs), err)
	}
	return nil
}

// Select runs a query against the remote store.
func (c *Client) Select(q Query) ([]Record, error) {
	var recs []Record
	if err := c.post("/v1/query", q, &recs); err != nil {
		return nil, fmt.Errorf("eventlog: query: %w", err)
	}
	return recs, nil
}

// Clear drops all records in the remote store and returns how many were
// dropped.
func (c *Client) Clear() (int, error) {
	req, err := http.NewRequest(http.MethodDelete, c.baseURL+"/v1/records", nil)
	if err != nil {
		return 0, fmt.Errorf("eventlog: clear: %w", err)
	}
	var out clearBody
	if err := c.do(req, &out); err != nil {
		return 0, fmt.Errorf("eventlog: clear: %w", err)
	}
	return out.Dropped, nil
}

// ClearMatching drops the remote records whose request ID matches
// idPattern and returns how many were dropped.
func (c *Client) ClearMatching(idPattern string) (int, error) {
	req, err := http.NewRequest(http.MethodDelete,
		c.baseURL+"/v1/records?pattern="+url.QueryEscape(idPattern), nil)
	if err != nil {
		return 0, fmt.Errorf("eventlog: clear matching: %w", err)
	}
	var out clearBody
	if err := c.do(req, &out); err != nil {
		return 0, fmt.Errorf("eventlog: clear matching: %w", err)
	}
	return out.Dropped, nil
}

// Stats returns the number of records held by the remote store.
func (c *Client) Stats() (int, error) {
	req, err := http.NewRequest(http.MethodGet, c.baseURL+"/v1/stats", nil)
	if err != nil {
		return 0, fmt.Errorf("eventlog: stats: %w", err)
	}
	var out statsBody
	if err := c.do(req, &out); err != nil {
		return 0, fmt.Errorf("eventlog: stats: %w", err)
	}
	return out.Records, nil
}

// Healthy reports whether the remote store responds to its liveness probe.
func (c *Client) Healthy() bool {
	resp, err := c.http.Get(c.baseURL + "/healthz")
	if err != nil {
		return false
	}
	defer drainClose(resp.Body)
	return resp.StatusCode == http.StatusOK
}

func (c *Client) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("marshal: %w", err)
	}
	req, err := http.NewRequest(http.MethodPost, c.baseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode >= 400 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("server returned %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	return nil
}

// drainClose drains and closes a response body so the underlying connection
// can be reused.
func drainClose(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(rc, 64<<10))
	_ = rc.Close()
}
