package eventlog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// writeJSONL streams every record src holds to w as JSON Lines — one
// record per line, in (timestamp, seq) order. The format is the same one
// logstash-style shippers use, so dumps interoperate with standard log
// tooling (and with the sharded store's WAL segments).
func writeJSONL(w io.Writer, src Source) (int, error) {
	recs, err := src.Select(Query{})
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, r := range recs {
		if err := enc.Encode(r); err != nil {
			return i, fmt.Errorf("eventlog: encode record %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return len(recs), fmt.Errorf("eventlog: flush: %w", err)
	}
	return len(recs), nil
}

// readJSONL appends records decoded from r (one JSON record per line) to
// sink. Sequence numbers are reassigned on append, preserving the input
// order. Blank lines are skipped. Returns the number of records loaded.
func readJSONL(r io.Reader, sink Sink) (int, error) {
	dec := json.NewDecoder(r)
	n := 0
	for {
		var rec Record
		err := dec.Decode(&rec)
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("eventlog: decode record %d: %w", n, err)
		}
		rec.Seq = 0 // reassigned by Log
		if err := sink.Log(rec); err != nil {
			return n, err
		}
		n++
	}
}

// saveFile writes src's records to path as JSON Lines, replacing any
// existing file atomically (write to a temp file, then rename).
func saveFile(path string, src Source) (int, error) {
	tmp, err := os.CreateTemp(dirOf(path), ".eventlog-*")
	if err != nil {
		return 0, fmt.Errorf("eventlog: save: %w", err)
	}
	tmpName := tmp.Name()
	n, werr := writeJSONL(tmp, src)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmpName)
		if werr != nil {
			return n, werr
		}
		return n, fmt.Errorf("eventlog: save: %w", cerr)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return n, fmt.Errorf("eventlog: save: %w", err)
	}
	return n, nil
}

// loadFile appends records from a JSON Lines file to sink. A missing file
// is not an error and loads zero records, so servers can start against a
// persistence path that does not exist yet.
func loadFile(path string, sink Sink) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("eventlog: load: %w", err)
	}
	defer f.Close()
	return readJSONL(bufio.NewReader(f), sink)
}

// WriteJSONL streams every stored record to w as JSON Lines, one record
// per line, in (timestamp, seq) order.
func (s *Store) WriteJSONL(w io.Writer) (int, error) { return writeJSONL(w, s) }

// ReadJSONL appends records decoded from r (one JSON record per line) to
// the store, reassigning sequence numbers.
func (s *Store) ReadJSONL(r io.Reader) (int, error) { return readJSONL(r, s) }

// SaveFile writes the store's records to path as JSON Lines, replacing any
// existing file atomically (write to a temp file, then rename).
func (s *Store) SaveFile(path string) (int, error) { return saveFile(path, s) }

// LoadFile appends records from a JSON Lines file to the store. A missing
// file is not an error and loads zero records.
func (s *Store) LoadFile(path string) (int, error) { return loadFile(path, s) }

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
