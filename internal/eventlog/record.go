// Package eventlog implements Gremlin's centralized observation store.
//
// During a test, Gremlin agents log every API call they proxy — the message
// timestamp and request ID, parts of the message (status code, request
// URI), and any fault actions applied (paper §4.1 "Logging observations").
// The control plane's Assertion Checker queries this store to validate the
// assertions in a recipe.
//
// The paper ships agent logs through logstash into Elasticsearch; this
// package provides the equivalent: an in-memory indexed store with an HTTP
// ingest/query API (Server) and a Go client (Client). The checker only
// depends on the Source interface, so tests can also query a Store directly
// in-process.
package eventlog

import (
	"time"
)

// Kind distinguishes the two halves of an HTTP exchange in the log, and
// the two endpoints of an L4 connection's lifetime.
type Kind string

// Record kinds. Request/reply pair up HTTP exchanges; conn-open and
// conn-close bracket one relayed L4 connection (shared RequestID = the
// relay's connection ID).
const (
	KindRequest   Kind = "request"
	KindReply     Kind = "reply"
	KindConnOpen  Kind = "conn-open"
	KindConnClose Kind = "conn-close"
)

// Record is one observation logged by a Gremlin agent: either a request
// forwarded from Src to Dst, or the corresponding reply as delivered back
// to Src.
type Record struct {
	// Seq is a store-assigned monotonically increasing sequence number.
	// Zero until the record is appended; used to break timestamp ties so
	// queries have a stable total order.
	Seq uint64 `json:"seq,omitempty"`

	// Timestamp is when the agent observed the message.
	Timestamp time.Time `json:"ts"`

	// RequestID is the flow ID from the message headers ("" if absent).
	RequestID string `json:"requestId,omitempty"`

	// SpanID identifies the proxied hop that produced this record; the
	// agent mints one span ID per exchange, so a hop's request and reply
	// records share it. Empty on records logged before span propagation
	// existed — trace assembly falls back to timestamp nesting for those.
	SpanID string `json:"spanId,omitempty"`

	// ParentSpanID is the span of the hop that delivered the request to
	// the calling service, as read from the inbound HeaderSpan ("" at the
	// application edge).
	ParentSpanID string `json:"parentSpanId,omitempty"`

	// EI is the execution index of this hop: the causal call path from
	// the system edge down to and including this call, in canonical
	// X-Gremlin-EI wire form. Empty on records logged before execution
	// indexing existed, and on L4 connection records.
	EI string `json:"ei,omitempty"`

	// Src and Dst are the logical caller and callee service names.
	Src string `json:"src"`
	Dst string `json:"dst"`

	// Kind is request or reply.
	Kind Kind `json:"kind"`

	// Method and URI describe the request line.
	Method string `json:"method,omitempty"`
	URI    string `json:"uri,omitempty"`

	// Status is the HTTP status delivered to Src (replies only).
	Status int `json:"status,omitempty"`

	// LatencyMillis is the reply latency as observed by Src, including any
	// Gremlin-injected delay (replies only).
	LatencyMillis float64 `json:"latencyMillis,omitempty"`

	// FaultAction names the fault primitive applied to this message, if
	// any ("abort", "delay", "modify").
	FaultAction string `json:"faultAction,omitempty"`

	// FaultRuleID identifies the rule that fired.
	FaultRuleID string `json:"faultRuleId,omitempty"`

	// InjectedDelayMillis is the delay Gremlin added to this exchange.
	InjectedDelayMillis float64 `json:"injectedDelayMillis,omitempty"`

	// GremlinGenerated marks replies synthesized by the agent itself
	// (aborts) rather than produced by Dst. Assertion queries with
	// withRule=false exclude these to recover the callee's untampered
	// behaviour.
	GremlinGenerated bool `json:"gremlinGenerated,omitempty"`

	// Agent identifies the reporting Gremlin agent instance.
	Agent string `json:"agent,omitempty"`

	// BytesUp and BytesDown are the byte counts an L4 relay moved
	// downstream→upstream and upstream→downstream over the connection's
	// lifetime (conn-close records only). On conn-close, LatencyMillis
	// holds the connection's total duration.
	BytesUp   int64 `json:"bytesUp,omitempty"`
	BytesDown int64 `json:"bytesDown,omitempty"`
}

// Before reports whether r precedes other in the store's total order
// (timestamp, then sequence number).
func (r Record) Before(other Record) bool {
	if !r.Timestamp.Equal(other.Timestamp) {
		return r.Timestamp.Before(other.Timestamp)
	}
	return r.Seq < other.Seq
}

// Latency returns the observed reply latency as a duration.
func (r Record) Latency() time.Duration {
	return time.Duration(r.LatencyMillis * float64(time.Millisecond))
}

// InjectedDelay returns the Gremlin-injected delay as a duration.
func (r Record) InjectedDelay() time.Duration {
	return time.Duration(r.InjectedDelayMillis * float64(time.Millisecond))
}

// UntamperedLatency returns the reply latency with Gremlin's injected delay
// removed: an estimate of what Src would have observed had the fault not
// been injected.
func (r Record) UntamperedLatency() time.Duration {
	d := r.Latency() - r.InjectedDelay()
	if d < 0 {
		return 0
	}
	return d
}
