// Plane-compatibility tests: the checker, tracing, and observe planes must
// behave identically whether they read a *Store or a *ShardedStore. They
// live in an external test package so eventlog itself never imports the
// planes built on top of it.
package eventlog_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"gremlin/internal/checker"
	"gremlin/internal/eventlog"
	"gremlin/internal/observe"
	"gremlin/internal/tracing"
)

var base = time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)

// seedFlows logs nFlows request/reply pairs per namespace into sink.
func seedFlows(t *testing.T, sink eventlog.Sink, namespaces []string, nFlows int) {
	t.Helper()
	var recs []eventlog.Record
	at := base
	for _, ns := range namespaces {
		for i := 0; i < nFlows; i++ {
			id := fmt.Sprintf("%s-%d", ns, i)
			span := fmt.Sprintf("%s-span-%d", ns, i)
			recs = append(recs,
				eventlog.Record{
					Timestamp: at, RequestID: id, Src: "gateway", Dst: "backend",
					Kind: eventlog.KindRequest, SpanID: span,
				},
				eventlog.Record{
					Timestamp: at.Add(5 * time.Millisecond), RequestID: id, Src: "gateway", Dst: "backend",
					Kind: eventlog.KindReply, SpanID: span, Status: 200,
				},
			)
			at = at.Add(10 * time.Millisecond)
		}
	}
	if err := sink.Log(recs...); err != nil {
		t.Fatal(err)
	}
}

func shardedStore(t *testing.T, shards int) *eventlog.ShardedStore {
	t.Helper()
	ss, err := eventlog.NewShardedStore(eventlog.StoreOptions{Shards: shards, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ss.Close() })
	return ss
}

func TestCheckerOverShardedStore(t *testing.T) {
	ss := shardedStore(t, 4)
	seedFlows(t, ss, []string{"test", "camp-run1", "camp-run2"}, 20)

	c := checker.New(ss)
	reqs, err := c.GetRequests("gateway", "backend", "camp-run1-*")
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 20 {
		t.Fatalf("checker saw %d campaign requests, want 20", len(reqs))
	}
	n, err := c.CountRequests("gateway", "backend", "*", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 60 {
		t.Fatalf("CountRequests=%d, want 60", n)
	}
}

func TestTracingOverShardedStore(t *testing.T) {
	ss := shardedStore(t, 4)
	seedFlows(t, ss, []string{"test", "camp-run1"}, 10)

	traces, err := tracing.FromSource(ss, eventlog.Query{IDPattern: "camp-run1-*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 10 {
		t.Fatalf("assembled %d traces, want 10", len(traces))
	}
}

func TestObserveOverShardedStore(t *testing.T) {
	ss := shardedStore(t, 4)

	a, err := observe.NewNumRequests("gateway", "backend", "camp-run1-*", time.Minute, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := observe.NewMonitor([]observe.Assertion{a}, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- observe.Watch(ctx, observe.StoreFeed(ss), "camp-run1-*", m, true)
	}()

	// Give the subscription a moment to attach, then exceed the budget.
	time.Sleep(20 * time.Millisecond)
	seedFlows(t, ss, []string{"camp-run1"}, 10)

	if err := <-done; err != nil {
		t.Fatalf("watch: %v", err)
	}
	if !m.Violated() {
		t.Fatal("monitor should have seen the rate violation through the sharded feed")
	}
}
