package eventlog

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gremlin/internal/pattern"
)

// StoreOptions configures a ShardedStore. The zero value is a pure
// in-memory single shard — behaviourally identical to NewStore.
type StoreOptions struct {
	// Shards is the number of independent partitions (default 1). Records
	// are routed by a hash of their request-ID namespace, so one
	// campaign run's records ("camp-<runID>-*") always share a shard and
	// namespace-scoped queries touch exactly one lock.
	Shards int

	// DataDir enables write-ahead persistence: each shard keeps
	// size-rotated JSONL segment files under DataDir/shard-<i>/ and
	// replays them at open, so a kill -9'd store restarts into its exact
	// pre-crash state. Empty disables persistence.
	DataDir string

	// Fsync selects the WAL durability policy (default FsyncInterval).
	Fsync FsyncPolicy

	// FsyncInterval is the background sync cadence under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration

	// MaxSegmentBytes rotates a shard's WAL segment when it exceeds this
	// size (default 64 MiB).
	MaxSegmentBytes int64

	// CompactAfter triggers a shard's WAL compaction once that many
	// records have been cleared from it since the last compaction
	// (default 8192; negative disables automatic compaction). Compaction
	// rewrites the live set into a single snapshot segment, reclaiming
	// the space of cleared campaign namespaces.
	CompactAfter int
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Fsync == "" {
		o.Fsync = FsyncInterval
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 64 << 20
	}
	if o.CompactAfter == 0 {
		o.CompactAfter = 8192
	}
	return o
}

// ShardStats is one shard's observability snapshot (see the
// gremlin_store_shard_* and gremlin_store_wal_* metric families).
type ShardStats struct {
	Shard          int    `json:"shard"`
	Records        int    `json:"records"`
	Appended       uint64 `json:"appended"`
	WALSegments    int    `json:"walSegments,omitempty"`
	WALBytes       int64  `json:"walBytes,omitempty"`
	WALReplayed    int    `json:"walReplayed,omitempty"`
	WALCompactions uint64 `json:"walCompactions,omitempty"`
}

// ShardedStore partitions the event log across N independent Stores, each
// with its own lock, posting-list indexes, subscriber fan-out, and
// (optionally) write-ahead log — so concurrent appends and selects stop
// contending on one mutex. Records route to shards by a hash of their
// request-ID namespace; reads scatter across the shards and merge the
// time-sorted streams, so Select/Count/Subscribe behave exactly like a
// single Store's. It implements the same Sink/Source surface as Store and
// is safe for concurrent use.
type ShardedStore struct {
	shards []*Store
	wals   []*wal // nil entries when DataDir is unset

	// gates serialize the WAL-append + memory-append pair per shard so
	// replay order always equals memory order and compaction snapshots
	// are exact.
	gates   []sync.Mutex
	garbage []atomic.Int64 // records cleared per shard since last compaction

	seq    atomic.Uint64 // global sequence numbers, unique across shards
	opts   StoreOptions
	closed atomic.Bool

	stopSync chan struct{}
	syncDone chan struct{}
}

var (
	_ Sink   = (*ShardedStore)(nil)
	_ Source = (*ShardedStore)(nil)
)

// NewShardedStore creates a store partitioned per opts, replaying any
// existing write-ahead logs under opts.DataDir.
func NewShardedStore(opts StoreOptions) (*ShardedStore, error) {
	o := opts.withDefaults()
	ss := &ShardedStore{
		shards:  make([]*Store, o.Shards),
		wals:    make([]*wal, o.Shards),
		gates:   make([]sync.Mutex, o.Shards),
		garbage: make([]atomic.Int64, o.Shards),
		opts:    o,
	}
	for i := range ss.shards {
		ss.shards[i] = NewStore()
	}
	if o.DataDir != "" {
		if err := checkShardCount(o.DataDir, o.Shards); err != nil {
			return nil, err
		}
		for i := range ss.shards {
			w, recs, err := openWAL(filepath.Join(o.DataDir, fmt.Sprintf("shard-%d", i)), o.Fsync, o.MaxSegmentBytes)
			if err != nil {
				ss.closeWALs()
				return nil, err
			}
			ss.wals[i] = w
			ss.shards[i].logStamped(recs)
			for _, r := range recs {
				if r.Seq > ss.seq.Load() {
					ss.seq.Store(r.Seq)
				}
			}
		}
		if o.Fsync == FsyncInterval {
			ss.stopSync = make(chan struct{})
			ss.syncDone = make(chan struct{})
			go ss.syncLoop()
		}
	}
	return ss, nil
}

// checkShardCount pins a data directory to the shard count that wrote it.
// Namespace→shard routing depends on the count, so reopening with a
// different one would strand replayed records on shards the new routing
// never reads; resharding means a new directory.
func checkShardCount(dir string, shards int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("eventlog: data dir: %w", err)
	}
	meta := filepath.Join(dir, "SHARDS")
	b, err := os.ReadFile(meta)
	if errors.Is(err, fs.ErrNotExist) {
		return os.WriteFile(meta, []byte(fmt.Sprintf("%d\n", shards)), 0o644)
	}
	if err != nil {
		return fmt.Errorf("eventlog: data dir: %w", err)
	}
	var have int
	if _, err := fmt.Sscanf(string(b), "%d", &have); err != nil {
		return fmt.Errorf("eventlog: %s: unreadable shard count %q", meta, b)
	}
	if have != shards {
		return fmt.Errorf("eventlog: data dir %s was written with %d shards, opened with %d; routing would strand records — use a new directory to reshard", dir, have, shards)
	}
	return nil
}

// NumShards reports the number of partitions.
func (ss *ShardedStore) NumShards() int { return len(ss.shards) }

// Durability reports the store's WAL configuration — fsync policy,
// background sync cadence, and data directory (empty for volatile
// stores). GET /v1/info exposes it to remote operators.
func (ss *ShardedStore) Durability() (FsyncPolicy, time.Duration, string) {
	return ss.opts.Fsync, ss.opts.FsyncInterval, ss.opts.DataDir
}

// Replayed reports how many records were recovered from the write-ahead
// logs when the store was opened.
func (ss *ShardedStore) Replayed() int {
	n := 0
	for _, w := range ss.wals {
		if w != nil {
			_, _, r, _ := w.stats()
			n += r
		}
	}
	return n
}

// namespaceOf extracts a request ID's routing namespace: the leading
// segment before the first '-', except campaign IDs ("camp-<runID>-...")
// which keep the run ID so each campaign run owns a namespace. IDs
// without a '-' (or truncated campaign IDs) are their own namespace.
func namespaceOf(id string) string {
	const camp = "camp-"
	if strings.HasPrefix(id, camp) {
		if i := strings.IndexByte(id[len(camp):], '-'); i >= 0 {
			return id[:len(camp)+i]
		}
		return id
	}
	if i := strings.IndexByte(id, '-'); i >= 0 {
		return id[:i]
	}
	return id
}

// shardFor routes a request ID to its shard.
func (ss *ShardedStore) shardFor(id string) int {
	if len(ss.shards) == 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(namespaceOf(id)))
	return int(h.Sum32() % uint32(len(ss.shards)))
}

// shardOfPattern returns the one shard every ID matching pat can live on,
// or -1 when the pattern spans namespaces and the query must scatter. A
// pattern pins a shard when its literal prefix extends past the namespace
// boundary (e.g. "camp-run1-*" or "test-*"): all matching IDs then share
// the prefix's namespace.
func (ss *ShardedStore) shardOfPattern(pat pattern.Pattern) int {
	if len(ss.shards) == 1 {
		return 0
	}
	if pat.MatchAll() {
		return -1
	}
	prefix := pat.LiteralPrefix()
	ns := namespaceOf(prefix)
	if len(ns) >= len(prefix) {
		return -1 // boundary not inside the literal: namespace ambiguous
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(ns))
	return int(h.Sum32() % uint32(len(ss.shards)))
}

// Log appends records: stamps global sequence numbers and timestamps,
// groups the batch by shard, and for each shard writes the group to the
// write-ahead log (acknowledged only once the kernel has it) before
// appending it to that shard's in-memory index and fanning it out to
// subscribers.
func (ss *ShardedStore) Log(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	if ss.closed.Load() {
		return fmt.Errorf("eventlog: store closed")
	}
	now := time.Now()
	if len(ss.shards) == 1 {
		batch := make([]Record, len(recs))
		for i, r := range recs {
			r.Seq = ss.seq.Add(1)
			if r.Timestamp.IsZero() {
				r.Timestamp = now
			}
			batch[i] = r
		}
		return ss.appendShard(0, batch)
	}

	groups := make(map[int][]Record, 4)
	for _, r := range recs {
		r.Seq = ss.seq.Add(1)
		if r.Timestamp.IsZero() {
			r.Timestamp = now
		}
		si := ss.shardFor(r.RequestID)
		groups[si] = append(groups[si], r)
	}
	for si, g := range groups {
		if err := ss.appendShard(si, g); err != nil {
			return err
		}
	}
	return nil
}

// LogShard appends a batch a shard-aware client pre-routed to shard si
// (POST /v1/records?shard=). Routing is re-verified record by record —
// placement determines which lock a namespaced query takes, so a stale or
// buggy client hint must not strand records on the wrong shard. Verified
// prefixes append as one batch; stragglers fall back to ordinary routing.
func (ss *ShardedStore) LogShard(si int, recs ...Record) error {
	if si < 0 || si >= len(ss.shards) {
		return ss.Log(recs...)
	}
	match := len(recs)
	for i, r := range recs {
		if ss.shardFor(r.RequestID) != si {
			match = i
			break
		}
	}
	if match == 0 {
		return ss.Log(recs...)
	}
	if ss.closed.Load() {
		return fmt.Errorf("eventlog: store closed")
	}
	now := time.Now()
	batch := make([]Record, match)
	for i, r := range recs[:match] {
		r.Seq = ss.seq.Add(1)
		if r.Timestamp.IsZero() {
			r.Timestamp = now
		}
		batch[i] = r
	}
	if err := ss.appendShard(si, batch); err != nil {
		return err
	}
	if match < len(recs) {
		return ss.Log(recs[match:]...)
	}
	return nil
}

// appendShard writes one shard's stamped batch: WAL first, memory second,
// under the shard's append gate.
func (ss *ShardedStore) appendShard(si int, batch []Record) error {
	ss.gates[si].Lock()
	defer ss.gates[si].Unlock()
	if w := ss.wals[si]; w != nil {
		if err := w.append(batch); err != nil {
			return err
		}
	}
	ss.shards[si].logStamped(batch)
	return nil
}

// Select returns the records matching q in (timestamp, seq) order,
// scatter-gathering across shards and merging their sorted streams. A
// query whose IDPattern pins one namespace reads only that namespace's
// shard.
func (ss *ShardedStore) Select(q Query) ([]Record, error) {
	pat, err := pattern.Compile(q.IDPattern)
	if err != nil {
		return nil, fmt.Errorf("eventlog: bad query pattern: %w", err)
	}
	if si := ss.shardOfPattern(pat); si >= 0 {
		return ss.shards[si].Select(q)
	}
	parts := make([][]Record, len(ss.shards))
	err = ss.scatter(func(i int) error {
		var serr error
		parts[i], serr = ss.shards[i].Select(q)
		return serr
	})
	if err != nil {
		return nil, err
	}
	merged := mergeSorted(parts)
	if q.Limit > 0 && len(merged) > q.Limit {
		merged = merged[:q.Limit]
	}
	return merged, nil
}

// Count reports how many records match q without materializing them.
func (ss *ShardedStore) Count(q Query) (int, error) {
	pat, err := pattern.Compile(q.IDPattern)
	if err != nil {
		return 0, fmt.Errorf("eventlog: bad query pattern: %w", err)
	}
	if si := ss.shardOfPattern(pat); si >= 0 {
		return ss.shards[si].Count(q)
	}
	counts := make([]int, len(ss.shards))
	err = ss.scatter(func(i int) error {
		var serr error
		counts[i], serr = ss.shards[i].Count(q)
		return serr
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if q.Limit > 0 && total > q.Limit {
		total = q.Limit
	}
	return total, nil
}

// scatterThreshold is the combined record count above which a
// scatter-gather read pays for per-shard goroutines; smaller stores scan
// sequentially.
const scatterThreshold = 8192

// scatter runs fn(i) for every shard — in parallel when the store is
// large enough for the goroutine fan-out to pay — returning the first
// error.
func (ss *ShardedStore) scatter(fn func(i int) error) error {
	if len(ss.shards) == 1 {
		return fn(0)
	}
	total := 0
	for _, sh := range ss.shards {
		total += sh.Len()
	}
	if total < scatterThreshold {
		for i := range ss.shards {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(ss.shards))
	var wg sync.WaitGroup
	for i := range ss.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mergeSorted merges per-shard sorted record slices into one sorted slice
// using a binary min-heap of shard cursors.
func mergeSorted(parts [][]Record) []Record {
	nonEmpty, total := 0, 0
	last := -1
	for i, p := range parts {
		if len(p) > 0 {
			nonEmpty++
			total += len(p)
			last = i
		}
	}
	if nonEmpty == 0 {
		return nil
	}
	if nonEmpty == 1 {
		return parts[last]
	}

	type cursor struct {
		part, idx int
	}
	heap := make([]cursor, 0, nonEmpty)
	less := func(a, b cursor) bool {
		return parts[a.part][a.idx].Before(parts[b.part][b.idx])
	}
	push := func(c cursor) {
		heap = append(heap, c)
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if !less(heap[i], heap[parent]) {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	fix := func() { // sift the root down after its cursor advanced
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && less(heap[l], heap[small]) {
				small = l
			}
			if r < len(heap) && less(heap[r], heap[small]) {
				small = r
			}
			if small == i {
				return
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
	}
	for i, p := range parts {
		if len(p) > 0 {
			push(cursor{part: i})
		}
	}
	out := make([]Record, 0, total)
	for len(heap) > 0 {
		c := heap[0]
		out = append(out, parts[c.part][c.idx])
		if c.idx+1 < len(parts[c.part]) {
			heap[0].idx++
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		fix()
	}
	return out
}

// Len reports the number of stored records across all shards.
func (ss *ShardedStore) Len() int {
	n := 0
	for _, sh := range ss.shards {
		n += sh.Len()
	}
	return n
}

// Appended reports the total records ever appended across all shards.
func (ss *ShardedStore) Appended() uint64 {
	var n uint64
	for _, sh := range ss.shards {
		n += sh.Appended()
	}
	return n
}

// Clear removes all records from every shard and returns how many were
// dropped. With persistence enabled the clear is journalled and the usual
// compaction accounting applies.
func (ss *ShardedStore) Clear() int {
	n := 0
	for si := range ss.shards {
		ss.gates[si].Lock()
		if w := ss.wals[si]; w != nil {
			_ = w.appendClear("*")
		}
		d := ss.shards[si].Clear()
		ss.gates[si].Unlock()
		n += d
		ss.noteGarbage(si, d)
	}
	return n
}

// ClearMatching removes the records whose request ID matches idPattern,
// touching only the owning shard when the pattern pins a namespace
// (campaign cleanup's "camp-<runID>-*" always does). Cleared space in a
// persistent store is reclaimed by compaction once a shard accumulates
// CompactAfter cleared records.
func (ss *ShardedStore) ClearMatching(idPattern string) (int, error) {
	pat, err := pattern.Compile(idPattern)
	if err != nil {
		return 0, fmt.Errorf("eventlog: bad clear pattern: %w", err)
	}
	targets := make([]int, 0, len(ss.shards))
	if si := ss.shardOfPattern(pat); si >= 0 {
		targets = append(targets, si)
	} else {
		for i := range ss.shards {
			targets = append(targets, i)
		}
	}
	total := 0
	for _, si := range targets {
		ss.gates[si].Lock()
		if w := ss.wals[si]; w != nil {
			if werr := w.appendClear(idPattern); werr != nil {
				ss.gates[si].Unlock()
				return total, werr
			}
		}
		d, cerr := ss.shards[si].ClearMatching(idPattern)
		ss.gates[si].Unlock()
		if cerr != nil {
			return total, cerr
		}
		total += d
		ss.noteGarbage(si, d)
	}
	return total, nil
}

// noteGarbage accounts cleared records against the shard's compaction
// budget and compacts when the threshold trips.
func (ss *ShardedStore) noteGarbage(si, dropped int) {
	if dropped == 0 || ss.wals[si] == nil || ss.opts.CompactAfter < 0 {
		return
	}
	if ss.garbage[si].Add(int64(dropped)) >= int64(ss.opts.CompactAfter) {
		_ = ss.CompactShard(si)
	}
}

// Compact rewrites every shard's write-ahead log down to its live
// records, reclaiming the space of cleared namespaces immediately instead
// of waiting for the CompactAfter threshold.
func (ss *ShardedStore) Compact() error {
	for si := range ss.shards {
		if err := ss.CompactShard(si); err != nil {
			return err
		}
	}
	return nil
}

// CompactShard compacts one shard's write-ahead log.
func (ss *ShardedStore) CompactShard(si int) error {
	if si < 0 || si >= len(ss.shards) || ss.wals[si] == nil {
		return nil
	}
	ss.gates[si].Lock()
	defer ss.gates[si].Unlock()
	snapshot, err := ss.shards[si].Select(Query{})
	if err != nil {
		return err
	}
	if err := ss.wals[si].compact(snapshot); err != nil {
		return err
	}
	ss.garbage[si].Store(0)
	return nil
}

// Subscribe opens a live feed of records whose request ID matches
// idPattern, merged across shards. See Store.Subscribe.
func (ss *ShardedStore) Subscribe(idPattern string) (Subscriber, error) {
	return ss.SubscribeBuffer(idPattern, DefaultSubscriberBuffer)
}

// SubscribeBuffer is Subscribe with an explicit per-shard buffer
// capacity. A pattern that pins one namespace taps only that shard's
// fan-out; otherwise each shard feeds a fan-in goroutine and the merged
// feed preserves per-shard order (concurrent shards interleave, exactly
// as concurrent appends do).
func (ss *ShardedStore) SubscribeBuffer(idPattern string, buffer int) (Subscriber, error) {
	pat, err := pattern.Compile(idPattern)
	if err != nil {
		return nil, fmt.Errorf("eventlog: bad subscribe pattern: %w", err)
	}
	if si := ss.shardOfPattern(pat); si >= 0 {
		return ss.shards[si].SubscribeBuffer(idPattern, buffer)
	}
	if buffer < 1 {
		buffer = 1
	}
	m := &mergedSub{ch: make(chan Record, buffer)}
	m.subs = make([]Subscriber, len(ss.shards))
	for i, sh := range ss.shards {
		sub, serr := sh.SubscribeBuffer(idPattern, buffer)
		if serr != nil {
			for _, open := range m.subs[:i] {
				open.Close()
			}
			return nil, serr
		}
		m.subs[i] = sub
	}
	m.wg.Add(len(m.subs))
	for _, sub := range m.subs {
		go func(sub Subscriber) {
			defer m.wg.Done()
			for rec := range sub.C() {
				m.ch <- rec
			}
		}(sub)
	}
	go func() {
		m.wg.Wait()
		close(m.ch)
	}()
	return m, nil
}

// mergedSub fans N per-shard subscriptions into one channel.
type mergedSub struct {
	subs []Subscriber
	ch   chan Record
	wg   sync.WaitGroup
	once sync.Once
}

func (m *mergedSub) C() <-chan Record { return m.ch }

func (m *mergedSub) Dropped() int64 {
	var n int64
	for _, sub := range m.subs {
		n += sub.Dropped()
	}
	return n
}

func (m *mergedSub) Close() {
	m.once.Do(func() {
		for _, sub := range m.subs {
			sub.Close()
		}
		// The fan-in goroutines drain the closed shard channels and then
		// close m.ch; no need to wait here.
	})
}

// Subscribers reports the number of open per-shard subscriptions.
func (ss *ShardedStore) Subscribers() int {
	n := 0
	for _, sh := range ss.shards {
		n += sh.Subscribers()
	}
	return n
}

// Published reports the total records delivered to subscribers.
func (ss *ShardedStore) Published() int64 {
	var n int64
	for _, sh := range ss.shards {
		n += sh.Published()
	}
	return n
}

// SubscriberDropped reports the total records dropped on full subscriber
// buffers.
func (ss *ShardedStore) SubscriberDropped() int64 {
	var n int64
	for _, sh := range ss.shards {
		n += sh.SubscriberDropped()
	}
	return n
}

// ShardStats returns one entry per shard with its record, append, and
// write-ahead-log counters.
func (ss *ShardedStore) ShardStats() []ShardStats {
	out := make([]ShardStats, len(ss.shards))
	for i, sh := range ss.shards {
		st := ShardStats{Shard: i, Records: sh.Len(), Appended: sh.Appended()}
		if w := ss.wals[i]; w != nil {
			st.WALSegments, st.WALBytes, st.WALReplayed, st.WALCompactions = w.stats()
		}
		out[i] = st
	}
	return out
}

// Sync forces dirty write-ahead segments to stable storage (the
// FsyncInterval loop does this continuously).
func (ss *ShardedStore) Sync() error {
	for _, w := range ss.wals {
		if w != nil {
			if err := w.sync(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close stops the background sync loop and seals the write-ahead logs.
// The in-memory store remains readable; further appends fail.
func (ss *ShardedStore) Close() error {
	if !ss.closed.CompareAndSwap(false, true) {
		return nil
	}
	if ss.stopSync != nil {
		close(ss.stopSync)
		<-ss.syncDone
	}
	var first error
	for si := range ss.shards {
		ss.gates[si].Lock()
		if w := ss.wals[si]; w != nil {
			if err := w.close(); err != nil && first == nil {
				first = err
			}
		}
		ss.gates[si].Unlock()
	}
	return first
}

func (ss *ShardedStore) closeWALs() {
	for _, w := range ss.wals {
		if w != nil {
			_ = w.close()
		}
	}
}

// syncLoop fsyncs dirty segments on the configured cadence.
func (ss *ShardedStore) syncLoop() {
	defer close(ss.syncDone)
	t := time.NewTicker(ss.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = ss.Sync()
		case <-ss.stopSync:
			return
		}
	}
}

// WriteJSONL streams every stored record to w as JSON Lines in
// (timestamp, seq) order. See Store.WriteJSONL.
func (ss *ShardedStore) WriteJSONL(w io.Writer) (int, error) { return writeJSONL(w, ss) }

// ReadJSONL appends records decoded from r (one JSON record per line),
// reassigning sequence numbers. See Store.ReadJSONL.
func (ss *ShardedStore) ReadJSONL(r io.Reader) (int, error) { return readJSONL(r, ss) }

// SaveFile writes the store's records to path as JSON Lines, atomically.
func (ss *ShardedStore) SaveFile(path string) (int, error) { return saveFile(path, ss) }

// LoadFile appends records from a JSON Lines file; a missing file loads
// zero records.
func (ss *ShardedStore) LoadFile(path string) (int, error) { return loadFile(path, ss) }
