package eventlog

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func logN(t *testing.T, s Sink, n int, ns string) {
	t.Helper()
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Timestamp: t0.Add(time.Duration(i) * time.Millisecond),
			RequestID: fmt.Sprintf("%s-%d", ns, i),
			Src:       "a", Dst: "b", Kind: KindRequest,
		}
	}
	if err := s.Log(recs...); err != nil {
		t.Fatal(err)
	}
}

func selectAll(t *testing.T, src Source) []Record {
	t.Helper()
	recs, err := src.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever,
	} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy should reject unknown policies")
	}
}

// TestWALReplayExact writes, closes, reopens, and demands byte-exact state:
// same records, same seqs, same timestamps.
func TestWALReplayExact(t *testing.T) {
	dir := t.TempDir()
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(fmt.Sprint(policy), func(t *testing.T) {
			sub := filepath.Join(dir, fmt.Sprint(policy))
			ss, err := NewShardedStore(StoreOptions{Shards: 4, DataDir: sub, Fsync: policy})
			if err != nil {
				t.Fatal(err)
			}
			logN(t, ss, 500, "test")
			logN(t, ss, 300, "camp-run1")
			want := selectAll(t, ss)
			if err := ss.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := NewShardedStore(StoreOptions{Shards: 4, DataDir: sub, Fsync: policy})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			got := selectAll(t, re)
			if len(got) != len(want) {
				t.Fatalf("replayed %d records, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("record %d differs after replay:\n got %+v\nwant %+v", i, got[i], want[i])
				}
			}
			if re.Replayed() != len(want) {
				t.Errorf("Replayed()=%d, want %d", re.Replayed(), len(want))
			}
			// New appends must continue the sequence, not collide with it.
			if err := re.Log(Record{RequestID: "test-new", Src: "a", Dst: "b", Kind: KindRequest}); err != nil {
				t.Fatal(err)
			}
			recs, err := re.Select(Query{IDPattern: "test-new"})
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 1 || recs[0].Seq <= want[len(want)-1].Seq {
				t.Fatalf("post-replay Seq=%d not after replayed max %d", recs[0].Seq, want[len(want)-1].Seq)
			}
		})
	}
}

// TestWALCrashReplay reopens the WAL directory WITHOUT closing the first
// store — the in-process stand-in for kill -9. Every acknowledged append
// must survive.
func TestWALCrashReplay(t *testing.T) {
	dir := t.TempDir()
	ss, err := NewShardedStore(StoreOptions{Shards: 4, DataDir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	logN(t, ss, 1000, "test")
	want := selectAll(t, ss)
	// No Close: the OS has the bytes (write() returned before each ack),
	// the process just vanishes.
	ss.closeWALs() // release file handles only, as the kernel would

	re, err := NewShardedStore(StoreOptions{Shards: 4, DataDir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := selectAll(t, re)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs after crash replay", i)
		}
	}
}

// TestWALTornTrailingLine truncates the last segment mid-line: replay must
// keep every whole record and truncate the torn tail, not fail.
func TestWALTornTrailingLine(t *testing.T) {
	dir := t.TempDir()
	ss, err := NewShardedStore(StoreOptions{Shards: 1, DataDir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	logN(t, ss, 100, "test")
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "shard-0", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	b, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: drop its trailing newline plus a dozen bytes.
	if err := os.WriteFile(last, b[:len(b)-13], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := NewShardedStore(StoreOptions{Shards: 1, DataDir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("torn trailing line must not fail open: %v", err)
	}
	defer re.Close()
	if got := re.Len(); got != 99 {
		t.Fatalf("recovered %d records, want 99 (all but the torn one)", got)
	}
	// The torn bytes must be gone from disk so the next append starts a
	// clean line.
	if err := re.Log(Record{RequestID: "test-after", Src: "a", Dst: "b", Kind: KindRequest}); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := NewShardedStore(StoreOptions{Shards: 1, DataDir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := re2.Len(); got != 100 {
		t.Fatalf("after post-truncation append: %d records, want 100", got)
	}
}

// TestWALMidFileCorruption: garbage in the middle of a segment is real
// corruption and must fail loudly, not be skipped.
func TestWALMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	ss, err := NewShardedStore(StoreOptions{Shards: 1, DataDir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	logN(t, ss, 10, "test")
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "shard-0", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	seg := segs[0]
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(b), "\n")
	lines[3] = "{garbage!!\n"
	if err := os.WriteFile(seg, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedStore(StoreOptions{Shards: 1, DataDir: dir, Fsync: FsyncAlways}); err == nil {
		t.Fatal("mid-file corruption must fail the open")
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	ss, err := NewShardedStore(StoreOptions{
		Shards: 1, DataDir: dir, Fsync: FsyncNever, MaxSegmentBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	logN(t, ss, 500, "test")
	stats := ss.ShardStats()
	if stats[0].WALSegments < 2 {
		t.Fatalf("WALSegments=%d, want rotation past 1", stats[0].WALSegments)
	}
	want := selectAll(t, ss)
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := NewShardedStore(StoreOptions{Shards: 1, DataDir: dir, Fsync: FsyncNever, MaxSegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got != len(want) {
		t.Fatalf("multi-segment replay: %d records, want %d", got, len(want))
	}
}

// TestWALCompactionReclaims: clearing a namespace then compacting must
// shrink the on-disk WAL and still replay to the surviving records.
func TestWALCompactionReclaims(t *testing.T) {
	dir := t.TempDir()
	ss, err := NewShardedStore(StoreOptions{
		Shards: 1, DataDir: dir, Fsync: FsyncNever,
		MaxSegmentBytes: 16 * 1024, CompactAfter: -1, // manual compaction
	})
	if err != nil {
		t.Fatal(err)
	}
	logN(t, ss, 2000, "camp-run1")
	logN(t, ss, 50, "test")
	before := ss.ShardStats()[0].WALBytes

	if _, err := ss.ClearMatching("camp-run1-*"); err != nil {
		t.Fatal(err)
	}
	if err := ss.Compact(); err != nil {
		t.Fatal(err)
	}
	st := ss.ShardStats()[0]
	if st.WALBytes >= before/4 {
		t.Fatalf("WALBytes=%d after compaction, want well under %d", st.WALBytes, before)
	}
	if st.WALCompactions != 1 {
		t.Fatalf("WALCompactions=%d, want 1", st.WALCompactions)
	}
	want := selectAll(t, ss)
	if len(want) != 50 {
		t.Fatalf("%d records survive, want 50", len(want))
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := NewShardedStore(StoreOptions{Shards: 1, DataDir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := selectAll(t, re)
	if len(got) != len(want) {
		t.Fatalf("post-compaction replay: %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs after compaction replay", i)
		}
	}
}

// TestWALAutoCompaction: crossing CompactAfter garbage records triggers
// compaction without an explicit call.
func TestWALAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	ss, err := NewShardedStore(StoreOptions{
		Shards: 1, DataDir: dir, Fsync: FsyncNever, CompactAfter: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	logN(t, ss, 200, "camp-run1")
	if _, err := ss.ClearMatching("camp-run1-*"); err != nil {
		t.Fatal(err)
	}
	if got := ss.ShardStats()[0].WALCompactions; got != 1 {
		t.Fatalf("WALCompactions=%d after threshold clear, want 1", got)
	}
}

// TestWALClearTombstoneWithoutCompaction: a clear whose garbage stays under
// the threshold must still replay correctly (tombstone honored).
func TestWALClearTombstoneWithoutCompaction(t *testing.T) {
	dir := t.TempDir()
	ss, err := NewShardedStore(StoreOptions{Shards: 2, DataDir: dir, Fsync: FsyncNever, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	logN(t, ss, 100, "camp-run1")
	logN(t, ss, 100, "test")
	if _, err := ss.ClearMatching("camp-run1-*"); err != nil {
		t.Fatal(err)
	}
	logN(t, ss, 10, "camp-run1") // post-clear records in the cleared namespace
	want := selectAll(t, ss)
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := NewShardedStore(StoreOptions{Shards: 2, DataDir: dir, Fsync: FsyncNever, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := selectAll(t, re)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d (tombstone must clear only pre-clear records)", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs after tombstone replay", i)
		}
	}
}

func TestWALShardCountMismatch(t *testing.T) {
	dir := t.TempDir()
	ss, err := NewShardedStore(StoreOptions{Shards: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	logN(t, ss, 100, "test")
	logN(t, ss, 100, "prod")
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening with a different shard count must be rejected: routing
	// depends on the count, so replayed records would otherwise strand on
	// shards the new hash never reads.
	if _, err := NewShardedStore(StoreOptions{Shards: 8, DataDir: dir}); err == nil {
		t.Fatal("reopen with a different shard count must fail")
	}
	re, err := NewShardedStore(StoreOptions{Shards: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got != 200 {
		t.Fatalf("matching reopen replayed %d records, want 200", got)
	}
}
