package bus

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gremlin/internal/trace"
)

func newBus(t *testing.T, cfg Config) *Bus {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	t.Cleanup(func() {
		if err := b.Close(); err != nil {
			t.Errorf("close bus: %v", err)
		}
	})
	return b
}

// collector receives deliveries and records their bodies and IDs.
type collector struct {
	mu     sync.Mutex
	bodies []string
	ids    []string
	status atomic.Int32
	hits   atomic.Int64
	srv    *httptest.Server
}

func newCollector(t *testing.T) *collector {
	t.Helper()
	c := &collector{}
	c.status.Store(200)
	c.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.hits.Add(1)
		body, _ := io.ReadAll(r.Body)
		st := int(c.status.Load())
		if st >= 400 {
			w.WriteHeader(st)
			return
		}
		c.mu.Lock()
		c.bodies = append(c.bodies, string(body))
		c.ids = append(c.ids, trace.FromRequest(r))
		c.mu.Unlock()
		w.WriteHeader(st)
	}))
	t.Cleanup(c.srv.Close)
	return c
}

func (c *collector) received() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.bodies...)
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("timeout waiting for: " + msg)
}

func TestPublishDeliver(t *testing.T) {
	b := newBus(t, Config{})
	col := newCollector(t)
	if err := b.Subscribe("metrics", "cassandra", col.srv.URL); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("metrics", "test-1", []byte("datapoint")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(col.received()) == 1 }, "delivery")
	if got := col.received()[0]; got != "datapoint" {
		t.Fatalf("delivered body = %q", got)
	}
	col.mu.Lock()
	id := col.ids[0]
	col.mu.Unlock()
	if id != "test-1" {
		t.Fatalf("request id not propagated: %q", id)
	}
	st := b.Stats()
	if st.Published != 1 || st.Delivered != 1 || st.Rejected != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPublishFansOutToAllSubscribers(t *testing.T) {
	b := newBus(t, Config{})
	c1, c2 := newCollector(t), newCollector(t)
	if err := b.Subscribe("ev", "s1", c1.srv.URL); err != nil {
		t.Fatal(err)
	}
	if err := b.Subscribe("ev", "s2", c2.srv.URL); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("ev", "test-1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(c1.received()) == 1 && len(c2.received()) == 1 }, "fan-out")
}

func TestPublishNoSubscribers(t *testing.T) {
	b := newBus(t, Config{})
	if err := b.Publish("ghost", "test-1", []byte("x")); err == nil {
		t.Fatal("want error")
	}
}

func TestSubscribeValidation(t *testing.T) {
	b := newBus(t, Config{})
	if err := b.Subscribe("", "n", "u"); err == nil {
		t.Fatal("want error for empty topic")
	}
	if err := b.Subscribe("t", "n", "http://x"); err != nil {
		t.Fatal(err)
	}
	if err := b.Subscribe("t", "n", "http://y"); err == nil {
		t.Fatal("want error for duplicate subscriber")
	}
}

func TestDeadSubscriberFillsQueueAndBlocksPublishers(t *testing.T) {
	// The Table 1 mechanic: the subscriber fails, the delivery worker
	// retries the head message forever, the bounded queue fills, and
	// publishers start getting backpressure errors.
	b := newBus(t, Config{QueueDepth: 4, RetryBackoff: time.Millisecond})
	col := newCollector(t)
	col.status.Store(503) // subscriber down
	if err := b.Subscribe("metrics", "cassandra", col.srv.URL); err != nil {
		t.Fatal(err)
	}

	// The queue holds QueueDepth messages (one more may be in flight with
	// the delivery worker); publishes beyond that are rejected.
	var rejected error
	for i := 0; i < 20 && rejected == nil; i++ {
		rejected = b.Publish("metrics", "test-1", []byte("m"))
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(rejected, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull backpressure, got %v", rejected)
	}
	if st := b.Stats(); st.Rejected == 0 || st.Redelivered == 0 {
		t.Fatalf("stats = %+v, want rejections and redeliveries", st)
	}

	// Subscriber recovers: the queue drains and publishing resumes.
	col.status.Store(200)
	waitFor(t, func() bool {
		return b.Stats().QueueDepths["metrics/cassandra"] == 0
	}, "queue drain after recovery")
	waitFor(t, func() bool {
		return b.Publish("metrics", "test-2", []byte("m")) == nil
	}, "publish accepted after recovery")
}

func TestHTTPAPIEndToEnd(t *testing.T) {
	b := newBus(t, Config{})
	col := newCollector(t)

	// Subscribe over HTTP.
	subBody, err := json.Marshal(subscribeBody{Name: "worker", URL: col.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(b.URL()+"/v1/topics/logs/subscribe", "application/json", bytes.NewReader(subBody))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe status = %d", resp.StatusCode)
	}

	// Publish over HTTP with a request ID.
	req, err := http.NewRequest(http.MethodPost, b.URL()+"/v1/topics/logs/publish", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	trace.SetRequestID(req, "test-9")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("publish status = %d", resp.StatusCode)
	}
	waitFor(t, func() bool { return len(col.received()) == 1 }, "HTTP delivery")

	// Stats over HTTP.
	resp, err = http.Get(b.URL() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if st.Published != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHTTPPublishToUnknownTopic(t *testing.T) {
	b := newBus(t, Config{})
	resp, err := http.Post(b.URL()+"/v1/topics/none/publish", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHTTPSubscribeValidation(t *testing.T) {
	b := newBus(t, Config{})
	resp, err := http.Post(b.URL()+"/v1/topics/t/subscribe", "application/json", strings.NewReader(`{"name":""}`))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestCloseStopsDeliveryWorkers(t *testing.T) {
	b, err := New(Config{QueueDepth: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	col := newCollector(t)
	col.status.Store(503) // stuck worker retrying
	if err := b.Subscribe("t", "s", col.srv.URL); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("t", "test-1", []byte("m")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- b.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a retrying delivery worker")
	}
	if err := b.Subscribe("t", "late", col.srv.URL); err == nil {
		t.Fatal("Subscribe after Close should fail")
	}
}
