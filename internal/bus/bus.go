// Package bus implements an HTTP message bus with bounded per-subscriber
// queues and asynchronous at-least-once delivery — the publish-subscribe
// interaction pattern of the paper's observation O2 ("microservices use
// standard application protocols (e.g., HTTP) and communication patterns
// (e.g., request-response, publish-subscribe)").
//
// The bus exists to reproduce the middleware-cascade outages of Table 1
// with their real mechanics: "when the cluster failed, the failure
// percolated to the message bus, filling the queues and blocking the
// publishers" (Stackdriver 2013; Parse.ly's Kafkapocalypse is the same
// shape). Deliveries are issued through an injectable HTTP client, so they
// can be routed through a Gremlin agent and subjected to fault-injection
// rules like any other inter-service call; when a subscriber is crashed,
// the delivery worker retries the head message, the bounded queue fills,
// and publishers start receiving backpressure errors.
package bus

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"gremlin/internal/httpx"
	"gremlin/internal/resilience"
	"gremlin/internal/trace"
)

// Message is one published message as held in a subscriber queue.
type Message struct {
	// Topic the message was published to.
	Topic string

	// RequestID is the publisher's flow ID, propagated on delivery.
	RequestID string

	// Body is the message payload.
	Body []byte

	// Enqueued is when the message entered the queue.
	Enqueued time.Time
}

// Config configures a Bus.
type Config struct {
	// Name is the bus's logical service name.
	Name string

	// ListenAddr is the bus API's listen address ("127.0.0.1:0" for
	// ephemeral).
	ListenAddr string

	// QueueDepth bounds each subscriber's queue (default 64). A full
	// queue rejects publishes with 503 — the backpressure that blocked
	// the Table 1 publishers.
	QueueDepth int

	// DeliveryClient issues deliveries to subscribers. Wire it through a
	// Gremlin agent route to fault-inject the delivery path. Nil uses a
	// plain client.
	DeliveryClient resilience.Doer

	// RetryBackoff is the pause between delivery attempts for the same
	// message (default 10 ms). Delivery retries forever (at-least-once,
	// head-of-line blocking): exactly the behaviour that turns a dead
	// subscriber into a full queue.
	RetryBackoff time.Duration
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "messagebus"
	}
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DeliveryClient == nil {
		c.DeliveryClient = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	return c
}

// subscriber is one registered delivery target.
type subscriber struct {
	name  string
	topic string
	url   string
	queue chan Message
	stop  chan struct{}
	done  chan struct{}
}

// Stats is a snapshot of the bus state (GET /v1/stats).
type Stats struct {
	// QueueDepths maps "topic/subscriber" to current queue length.
	QueueDepths map[string]int `json:"queueDepths"`

	// Published counts accepted publishes.
	Published int64 `json:"published"`

	// Rejected counts publishes refused because a queue was full.
	Rejected int64 `json:"rejected"`

	// Delivered counts successful deliveries.
	Delivered int64 `json:"delivered"`

	// Redelivered counts delivery retries.
	Redelivered int64 `json:"redelivered"`
}

// Bus is a running message bus.
type Bus struct {
	cfg    Config
	server *httpx.Server

	mu          sync.Mutex
	subscribers map[string][]*subscriber // by topic
	closed      bool

	statsMu     sync.Mutex
	published   int64
	rejected    int64
	delivered   int64
	redelivered int64
}

// New creates a bus; the API listener is bound immediately, delivery
// workers start per subscription.
func New(cfg Config) (*Bus, error) {
	b := &Bus{
		cfg:         cfg.withDefaults(),
		subscribers: make(map[string][]*subscriber),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/topics/{topic}/publish", b.handlePublish)
	mux.HandleFunc("POST /v1/topics/{topic}/subscribe", b.handleSubscribe)
	mux.HandleFunc("GET /v1/stats", b.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	srv, err := httpx.NewServer(b.cfg.ListenAddr, mux)
	if err != nil {
		return nil, fmt.Errorf("bus: bind: %w", err)
	}
	b.server = srv
	return b, nil
}

// Start begins serving the bus API.
func (b *Bus) Start() { b.server.Start() }

// URL returns the bus API base URL.
func (b *Bus) URL() string { return b.server.URL() }

// Close stops the API and every delivery worker, waiting for them to exit.
func (b *Bus) Close() error {
	err := b.server.Close()
	b.mu.Lock()
	b.closed = true
	var subs []*subscriber
	for _, list := range b.subscribers {
		subs = append(subs, list...)
	}
	b.mu.Unlock()
	for _, s := range subs {
		close(s.stop)
		<-s.done
	}
	return err
}

// Subscribe registers a delivery target for a topic and starts its
// delivery worker. Deliveries are POSTed to url with the original request
// ID propagated.
func (b *Bus) Subscribe(topic, name, url string) error {
	if topic == "" || name == "" || url == "" {
		return errors.New("bus: subscription needs topic, name and url")
	}
	s := &subscriber{
		name:  name,
		topic: topic,
		url:   url,
		queue: make(chan Message, b.cfg.QueueDepth),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errors.New("bus: closed")
	}
	for _, existing := range b.subscribers[topic] {
		if existing.name == name {
			b.mu.Unlock()
			return fmt.Errorf("bus: subscriber %q already registered on topic %q", name, topic)
		}
	}
	b.subscribers[topic] = append(b.subscribers[topic], s)
	b.mu.Unlock()

	go b.deliverLoop(s)
	return nil
}

// Publish enqueues a message for every subscriber of the topic. It fails
// with ErrQueueFull if any subscriber's queue is full — backpressure that
// propagates to the publisher, as in the Table 1 outages.
func (b *Bus) Publish(topic, requestID string, body []byte) error {
	b.mu.Lock()
	subs := append([]*subscriber(nil), b.subscribers[topic]...)
	b.mu.Unlock()
	if len(subs) == 0 {
		return fmt.Errorf("bus: topic %q has no subscribers", topic)
	}
	msg := Message{Topic: topic, RequestID: requestID, Body: body, Enqueued: time.Now()}
	for _, s := range subs {
		select {
		case s.queue <- msg:
		default:
			b.statsMu.Lock()
			b.rejected++
			b.statsMu.Unlock()
			return fmt.Errorf("%w: subscriber %q on topic %q (depth %d)",
				ErrQueueFull, s.name, topic, b.cfg.QueueDepth)
		}
	}
	b.statsMu.Lock()
	b.published++
	b.statsMu.Unlock()
	return nil
}

// ErrQueueFull is returned (wrapped) when a publish is rejected because a
// subscriber queue is at capacity.
var ErrQueueFull = errors.New("bus: queue full")

// Stats returns a snapshot of bus counters and queue depths.
func (b *Bus) Stats() Stats {
	st := Stats{QueueDepths: make(map[string]int)}
	b.mu.Lock()
	for topic, list := range b.subscribers {
		for _, s := range list {
			st.QueueDepths[topic+"/"+s.name] = len(s.queue)
		}
	}
	b.mu.Unlock()
	b.statsMu.Lock()
	st.Published = b.published
	st.Rejected = b.rejected
	st.Delivered = b.delivered
	st.Redelivered = b.redelivered
	b.statsMu.Unlock()
	return st
}

// deliverLoop drains one subscriber's queue, retrying each message until
// delivery succeeds (at-least-once with head-of-line blocking).
func (b *Bus) deliverLoop(s *subscriber) {
	defer close(s.done)
	for {
		var msg Message
		select {
		case msg = <-s.queue:
		case <-s.stop:
			return
		}
		for attempt := 0; ; attempt++ {
			if attempt > 0 {
				b.statsMu.Lock()
				b.redelivered++
				b.statsMu.Unlock()
				t := time.NewTimer(b.cfg.RetryBackoff)
				select {
				case <-t.C:
				case <-s.stop:
					t.Stop()
					return
				}
			}
			if b.deliver(s, msg) {
				b.statsMu.Lock()
				b.delivered++
				b.statsMu.Unlock()
				break
			}
			select {
			case <-s.stop:
				return
			default:
			}
		}
	}
}

// deliver POSTs one message to the subscriber, reporting success.
func (b *Bus) deliver(s *subscriber, msg Message) bool {
	req, err := http.NewRequest(http.MethodPost, s.url, bytes.NewReader(msg.Body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-Bus-Topic", msg.Topic)
	trace.SetRequestID(req, msg.RequestID)
	resp, err := b.cfg.DeliveryClient.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
	_ = resp.Body.Close()
	return resp.StatusCode < 400
}

func (b *Bus) handlePublish(w http.ResponseWriter, r *http.Request) {
	topic := r.PathValue("topic")
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if err := b.Publish(topic, trace.FromRequest(r), body); err != nil {
		status := http.StatusServiceUnavailable
		if !errors.Is(err, ErrQueueFull) {
			status = http.StatusNotFound
		}
		httpx.WriteError(w, status, "%v", err)
		return
	}
	httpx.WriteJSON(w, http.StatusAccepted, map[string]string{"status": "queued"})
}

type subscribeBody struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

func (b *Bus) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	topic := r.PathValue("topic")
	var in subscribeBody
	if err := httpx.ReadJSON(w, r, &in); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := b.Subscribe(topic, in.Name, in.URL); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	httpx.WriteJSON(w, http.StatusCreated, map[string]string{"status": "subscribed"})
}

func (b *Bus) handleStats(w http.ResponseWriter, _ *http.Request) {
	httpx.WriteJSON(w, http.StatusOK, b.Stats())
}
