package bus

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gremlin/internal/eventlog"
	"gremlin/internal/proxy"
	"gremlin/internal/rules"
)

// TestGremlinFaultsOnDeliveryPath wires the bus's delivery client through
// a Gremlin agent and stages a crash of the subscriber — the full Table 1
// cascade on a real asynchronous bus: deliveries sever, the worker
// retries, the queue fills, publishers get backpressure; reverting the
// fault drains the queue.
func TestGremlinFaultsOnDeliveryPath(t *testing.T) {
	store := eventlog.NewStore()

	// The downstream datastore ("cassandra").
	var healthy = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "stored")
	}))
	t.Cleanup(healthy.Close)

	// The bus's sidecar agent: deliveries flow messagebus -> cassandra.
	agent, err := proxy.New(proxy.Config{
		ServiceName: "messagebus",
		ControlAddr: "127.0.0.1:0",
		Routes: []proxy.Route{{
			Dst:        "cassandra",
			ListenAddr: "127.0.0.1:0",
			Targets:    []string{strings.TrimPrefix(healthy.URL, "http://")},
		}},
		Sink: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	agent.Start()
	t.Cleanup(func() {
		if err := agent.Close(); err != nil {
			t.Error(err)
		}
	})
	routeURL, err := agent.RouteURL("cassandra")
	if err != nil {
		t.Fatal(err)
	}

	b := newBus(t, Config{QueueDepth: 4, RetryBackoff: time.Millisecond})
	if err := b.Subscribe("metrics", "cassandra", routeURL+"/store"); err != nil {
		t.Fatal(err)
	}

	// Healthy path: publish delivers through the agent and is observed.
	if err := b.Publish("metrics", "test-1", []byte("dp")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return b.Stats().Delivered == 1 }, "healthy delivery")
	recs, err := store.Select(eventlog.Query{Src: "messagebus", Dst: "cassandra", Kind: eventlog.KindReply})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Status != 200 || recs[0].RequestID != "test-1" {
		t.Fatalf("delivery observation = %+v", recs)
	}

	// Stage the crash: sever messagebus -> cassandra.
	if err := agent.InstallRules(rules.Rule{
		ID: "crash-cass", Src: "messagebus", Dst: "cassandra",
		Action: rules.ActionAbort, Pattern: "test-*",
		ErrorCode: rules.AbortSeverConnection,
	}); err != nil {
		t.Fatal(err)
	}

	// Queue fills; publishers get backpressure.
	var backpressure error
	for i := 0; i < 50 && backpressure == nil; i++ {
		backpressure = b.Publish("metrics", "test-1", []byte("dp"))
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(backpressure, ErrQueueFull) {
		t.Fatalf("want queue-full backpressure, got %v", backpressure)
	}

	// Revert the fault: the queue drains and publishing recovers.
	agent.Matcher().Clear()
	waitFor(t, func() bool {
		return b.Stats().QueueDepths["metrics/cassandra"] == 0
	}, "drain after revert")
	waitFor(t, func() bool {
		return b.Publish("metrics", "test-2", []byte("dp")) == nil
	}, "publish recovers")
}
