package experiments

import (
	"strings"
	"testing"
	"time"
)

// Small, fast experiment options for tests.
func testOpts(requests int) Options {
	return Options{Scale: 0.02, Requests: requests, Seed: 5}
}

func TestFigure5Shape(t *testing.T) {
	series, err := Figure5(testOpts(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d, want 4 delays", len(series))
	}
	for _, s := range series {
		// Paper shape: the fastest response is never quicker than the
		// injected delay (no timeout).
		min, err := s.CDF.Min()
		if err != nil {
			t.Fatal(err)
		}
		if min < s.InjectedDelay.Seconds() {
			t.Fatalf("fastest response %.1fms beat the injected delay %s — timeout appeared from nowhere",
				min*1000, s.InjectedDelay)
		}
		if s.TimeoutCheckPassed {
			t.Fatal("the unmodified plugin must fail the timeout check")
		}
	}
	// CDFs are ordered by injected delay.
	for i := 1; i < len(series); i++ {
		prev, _ := series[i-1].CDF.Quantile(0.5)
		cur, _ := series[i].CDF.Quantile(0.5)
		if cur <= prev {
			t.Fatalf("median did not grow with delay: %v then %v", prev, cur)
		}
	}
	var b strings.Builder
	PrintFigure5(&b, series)
	if !strings.Contains(b.String(), "Figure 5") {
		t.Fatal("printer output missing header")
	}
}

func TestFigure6Shape(t *testing.T) {
	r, err := Figure6(testOpts(20))
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: aborted requests answer fast (fallback), no delayed
	// request returns before the injected delay, breaker check fails.
	aMax, err := r.Aborted.Max()
	if err != nil {
		t.Fatal(err)
	}
	dMin, err := r.Delayed.Min()
	if err != nil {
		t.Fatal(err)
	}
	if aMax >= r.InjectedDelay.Seconds() {
		t.Fatalf("aborted requests should be fast, slowest %.1fms", aMax*1000)
	}
	if dMin < r.InjectedDelay.Seconds() {
		t.Fatalf("a delayed request returned early (%.1fms < %s) without a breaker",
			dMin*1000, r.InjectedDelay)
	}
	if r.BreakerCheckPassed {
		t.Fatal("the unmodified plugin must fail the breaker check")
	}
	var b strings.Builder
	PrintFigure6(&b, r)
	if !strings.Contains(b.String(), "Figure 6") {
		t.Fatal("printer output missing header")
	}
}

func TestFigure7Shape(t *testing.T) {
	rows, err := Figure7(testOpts(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want depths 0-4", len(rows))
	}
	wantServices := []int{1, 3, 7, 15, 31}
	for i, r := range rows {
		if r.Services != wantServices[i] {
			t.Fatalf("row %d services = %d, want %d", i, r.Services, wantServices[i])
		}
		if r.Orchestration <= 0 || r.Assertion <= 0 {
			t.Fatalf("row %d has zero timings: %+v", i, r)
		}
		// Paper shape: both control-plane phases stay well under a second.
		if r.Orchestration > time.Second || r.Assertion > time.Second {
			t.Fatalf("control plane too slow at %d services: %+v", r.Services, r)
		}
	}
	var b strings.Builder
	PrintFigure7(&b, rows)
	if !strings.Contains(b.String(), "Figure 7") {
		t.Fatal("printer output missing header")
	}
}

func TestFigure8Shape(t *testing.T) {
	rows, err := Figure8(testOpts(300))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Rules != 0 || rows[len(rows)-1].Rules != 200 {
		t.Fatalf("rule counts = %v...%v", rows[0].Rules, rows[len(rows)-1].Rules)
	}
	for _, r := range rows {
		if r.CDF.Len() != 300 {
			t.Fatalf("row %d has %d samples", r.Rules, r.CDF.Len())
		}
		if r.Summary.P50 <= 0 {
			t.Fatalf("row %d summary = %+v", r.Rules, r.Summary)
		}
	}
	// Paper shape: matching 200 rules costs measurably more than matching
	// none. Medians on a loaded machine are noisy, so compare the cheap
	// end against the expensive end loosely: p50(200 rules) should not be
	// *faster* than half of p50(0 rules).
	if rows[len(rows)-1].Summary.P50 < rows[0].Summary.P50/2 {
		t.Fatalf("200-rule p50 (%v) implausibly faster than 0-rule p50 (%v)",
			rows[len(rows)-1].Summary.P50, rows[0].Summary.P50)
	}
	var b strings.Builder
	PrintFigure8(&b, rows)
	if !strings.Contains(b.String(), "Figure 8") {
		t.Fatal("printer output missing header")
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(testOpts(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 outages x 2 deployments)", len(rows))
	}
	for _, r := range rows {
		switch r.Deployment {
		case "fragile":
			if r.Passed {
				t.Fatalf("fragile deployment passed %q — the outage should be predicted", r.Outage)
			}
		case "hardened":
			if !r.Passed {
				t.Fatalf("hardened deployment failed %q: %s", r.Outage, r.Detail)
			}
		default:
			t.Fatalf("unknown deployment %q", r.Deployment)
		}
	}
	var b strings.Builder
	PrintTable1(&b, rows)
	if !strings.Contains(b.String(), "Table 1") {
		t.Fatal("printer output missing header")
	}
}
