package experiments

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"gremlin/internal/eventlog"
	"gremlin/internal/loadgen"
	"gremlin/internal/proxy"
	"gremlin/internal/rules"
	"gremlin/internal/stats"
)

// Figure8Row is one curve of Figure 8: request latency through the agent
// with a given number of installed, non-matching rules.
type Figure8Row struct {
	// Rules is the number of rules installed on the agent.
	Rules int

	// CDF is the distribution of request completion times (seconds).
	CDF *stats.CDF

	// Summary holds order statistics over the same samples (milliseconds
	// are derived by the printer).
	Summary stats.Summary

	// MatchCost is the isolated cost of comparing one request against all
	// installed rules without a match (the component Figure 8 measures),
	// using the paper-era linear scan the figure assumes. In this Go data
	// plane the scan is so cheap that it vanishes inside loopback RTT noise
	// in the end-to-end CDF, so it is also measured directly.
	MatchCost time.Duration

	// MatchCostIndexed is the same decision made through the matcher's
	// (src, dst, type) index — the "after" series. For the figure's
	// worst case every rule shares the probed route, so the gap over
	// MatchCost shows only the index lookup overhead; rules spread across
	// routes (the common recipe shape) skip the scan entirely.
	MatchCostIndexed time.Duration
}

// Figure8 measures the worst-case rule-matching overhead of the Gremlin
// agent (§7.2): a series of HTTP requests is proxied to an echo server
// while {0, 1, 5, 10, 50, 100, 150, 200} rules are installed, none of
// which match the request IDs — so every request is compared against every
// rule before being forwarded. The paper uses Apache Benchmark and 10000
// requests; opts.Requests tunes the count.
func Figure8(opts Options) ([]Figure8Row, error) {
	o := opts.withDefaults()
	n := o.requests(10000)

	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}))
	defer backend.Close()

	agent, err := proxy.New(proxy.Config{
		ServiceName: "client",
		Routes: []proxy.Route{{
			Dst:        "server",
			ListenAddr: "127.0.0.1:0",
			Targets:    []string{strings.TrimPrefix(backend.URL, "http://")},
		}},
		// No sink: Figure 8 isolates matching overhead, as the paper's
		// benchmark isolates the proxy data path.
		Sink: (eventlog.Sink)(nil),
		RNG:  o.rng(),
	})
	if err != nil {
		return nil, err
	}
	agent.Start()
	defer agent.Close()

	routeURL, err := agent.RouteURL("server")
	if err != nil {
		return nil, err
	}

	var out []Figure8Row
	for _, count := range []int{0, 1, 5, 10, 50, 100, 150, 200} {
		agent.Matcher().Clear()
		if err := agent.InstallRules(nonMatchingRules(count)...); err != nil {
			return nil, err
		}
		// The end-to-end series reproduces the paper's figure, so it runs
		// with the linear scan the paper's agent used (the indexed matcher
		// makes the curve flat; its cost is reported separately below).
		agent.Matcher().UseLinearScan(true)
		// Warm the connection pool so the first-connection cost does not
		// skew the small-rule-count curves.
		if _, err := loadgen.Run(routeURL, loadgen.Options{N: 50, Concurrency: 4}); err != nil {
			return nil, err
		}
		res, err := loadgen.Run(routeURL, loadgen.Options{N: n, Concurrency: 4, RNG: o.rng()})
		if err != nil {
			return nil, err
		}
		summary, err := stats.SummarizeDurations(res.Latencies())
		if err != nil {
			return nil, err
		}
		scanCost := matchCost(agent.Matcher(), n)
		agent.Matcher().UseLinearScan(false)
		out = append(out, Figure8Row{
			Rules:            count,
			CDF:              res.CDF(),
			Summary:          summary,
			MatchCost:        scanCost,
			MatchCostIndexed: matchCost(agent.Matcher(), n),
		})
	}
	return out, nil
}

// matchCost times a full non-matching scan of the installed rules, averaged
// over iters decisions.
func matchCost(m *rules.Matcher, iters int) time.Duration {
	if iters < 1000 {
		iters = 1000
	}
	msg := rules.Message{Src: "client", Dst: "server", Type: rules.OnRequest, RequestID: "test-123456"}
	start := time.Now()
	for i := 0; i < iters; i++ {
		m.Decide(msg)
	}
	return time.Since(start) / time.Duration(iters)
}

// nonMatchingRules builds n valid rules whose pattern can never match the
// injected "test-*" request IDs, forcing a full scan per request — the
// paper's worst case.
func nonMatchingRules(n int) []rules.Rule {
	out := make([]rules.Rule, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rules.Rule{
			ID:          fmt.Sprintf("nomatch-%d", i),
			Src:         "client",
			Dst:         "server",
			Action:      rules.ActionDelay,
			Pattern:     fmt.Sprintf("re:^never-matching-id-%d-[0-9a-f]+$", i),
			DelayMillis: 1,
		})
	}
	return out
}

// PrintFigure8 renders Figure 8 rows as text.
func PrintFigure8(w io.Writer, rows []Figure8Row) {
	fmt.Fprintln(w, "Figure 8: worst-case rule-matching overhead (no rule matches; full scan per request)")
	fmt.Fprintln(w, "(paper: latency grows with installed rules; ordering of the CDFs by rule count)")
	fmt.Fprintf(w, "  %-7s %-10s %-10s %-10s %-10s %-12s %-12s\n",
		"rules", "p50", "p90", "p99", "mean", "scan-cost", "indexed-cost")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-7d %-10s %-10s %-10s %-10s %-12s %-12s\n",
			r.Rules,
			ms(r.Summary.P50), ms(r.Summary.P90), ms(r.Summary.P99), ms(r.Summary.Mean),
			r.MatchCost, r.MatchCostIndexed)
	}
	fmt.Fprintln(w, "  (scan-cost: isolated per-request linear scan of all installed rules, the")
	fmt.Fprintln(w, "   paper-era matcher; grows linearly with rule count as in the paper but is")
	fmt.Fprintln(w, "   dwarfed here by loopback RTT. indexed-cost: the same decision through the")
	fmt.Fprintln(w, "   (src, dst, type)-indexed matcher — in this worst case every rule shares the")
	fmt.Fprintln(w, "   probed route so the full bucket is still scanned; spreading rules across")
	fmt.Fprintln(w, "   routes makes the indexed decision O(bucket) instead of O(rules))")
}

func ms(seconds float64) string {
	return fmt.Sprintf("%.3fms", seconds*1000)
}
