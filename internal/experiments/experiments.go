// Package experiments regenerates every figure of the paper's evaluation
// (§7): the WordPress delay CDFs (Figure 5), the abort-then-delay circuit
// breaker test (Figure 6), orchestration/assertion time vs. application
// size (Figure 7), and the proxy rule-matching overhead CDFs (Figure 8).
//
// Each experiment returns structured series so the benchmark harness
// (bench_test.go) and the gremlin-bench binary can print the same rows the
// paper plots. Absolute numbers differ from the paper's (their data plane
// was measured on a 2016 container testbed); the reproduction target is
// the *shape* of each result, documented in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"gremlin/internal/core"
	"gremlin/internal/loadgen"
	"gremlin/internal/orchestrator"
	"gremlin/internal/stats"
	"gremlin/internal/topology"
)

// Options tunes experiment scale so the suite runs both as a quick
// benchmark and at paper scale.
type Options struct {
	// Scale multiplies the paper's injected delays (1.0 = the paper's 1–4 s
	// for Figure 5 and 3 s for Figure 6). Default 0.1 for laptop runs.
	Scale float64

	// Requests is the per-point request count (paper: 100 for Figures 5–7,
	// 10000 for Figure 8). Default: the paper's counts scaled to stay fast;
	// set explicitly for paper scale.
	Requests int

	// Seed fixes all randomness.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) rng() *rand.Rand { return rand.New(rand.NewSource(o.Seed)) }

func (o Options) requests(def int) int {
	if o.Requests > 0 {
		return o.Requests
	}
	return def
}

// newRunner wires a runner over a freshly built app.
func newRunner(app *topology.App) *core.Runner {
	return core.NewRunner(app.Graph, orchestrator.New(app.Registry), app.Store, app.Store)
}

// DelaySeries is one CDF of Figure 5: WordPress response times under one
// injected delay.
type DelaySeries struct {
	// InjectedDelay is the delay staged between WordPress and
	// Elasticsearch.
	InjectedDelay time.Duration

	// CDF is the distribution of WordPress response times (seconds).
	CDF *stats.CDF

	// TimeoutCheckPassed is the HasTimeouts assertion outcome (the paper's
	// finding: always false for the unmodified plugin).
	TimeoutCheckPassed bool
}

// Figure5 sweeps injected delays between WordPress and Elasticsearch and
// measures WordPress response-time CDFs at the edge. The paper's delays
// are 1, 2, 3, 4 s; they are multiplied by opts.Scale.
func Figure5(opts Options) ([]DelaySeries, error) {
	o := opts.withDefaults()
	app, err := topology.Build(wordpressSpec(o))
	if err != nil {
		return nil, err
	}
	defer app.Close()
	runner := newRunner(app)

	n := o.requests(100)
	var out []DelaySeries
	for _, base := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second} {
		d := time.Duration(float64(base) * o.Scale)
		var res *loadgen.Result
		report, err := runner.Run(context.Background(), core.Recipe{
			Name: fmt.Sprintf("fig5-%s", d),
			Scenarios: []core.Scenario{core.Delay{
				Src: topology.WordPressService, Dst: topology.ElasticsearchService, Interval: d,
			}},
			Checks: []core.Check{core.ExpectTimeouts(topology.WordPressService, d/2)},
		}, core.RunOptions{ClearLogs: true, Load: func() error {
			var lerr error
			res, lerr = loadgen.Run(app.EntryURL(), loadgen.Options{N: n, Concurrency: 4, RNG: o.rng()})
			return lerr
		}})
		if err != nil {
			return nil, err
		}
		out = append(out, DelaySeries{
			InjectedDelay:      d,
			CDF:                res.CDF(),
			TimeoutCheckPassed: report.Passed(),
		})
	}
	return out, nil
}

// Figure6Result holds the two CDFs of Figure 6.
type Figure6Result struct {
	// InjectedDelay is the delay applied to the second batch (paper: 3 s).
	InjectedDelay time.Duration

	// Aborted is the response-time CDF of the first 100 requests, during
	// which calls to Elasticsearch were aborted (fallback answers).
	Aborted *stats.CDF

	// Delayed is the CDF of the next 100 requests, delayed by
	// InjectedDelay.
	Delayed *stats.CDF

	// BreakerCheckPassed is the HasCircuitBreaker outcome (paper: false —
	// no delayed request returned early).
	BreakerCheckPassed bool
}

// Figure6 aborts 100 consecutive WordPress→Elasticsearch requests, then
// immediately delays the next 100, and reports both response-time CDFs. A
// correct circuit breaker would answer part of the delayed batch
// immediately; ElasticPress has none, so every delayed request waits out
// the full delay.
func Figure6(opts Options) (*Figure6Result, error) {
	o := opts.withDefaults()
	app, err := topology.Build(wordpressSpec(o))
	if err != nil {
		return nil, err
	}
	defer app.Close()
	runner := newRunner(app)

	n := o.requests(100)
	delay := time.Duration(float64(3*time.Second) * o.Scale)
	result := &Figure6Result{InjectedDelay: delay}

	// Batch 1: aborted.
	_, err = runner.Run(context.Background(), core.Recipe{
		Name: "fig6-abort",
		Scenarios: []core.Scenario{core.Disconnect{
			From: topology.WordPressService, To: topology.ElasticsearchService,
		}},
	}, core.RunOptions{ClearLogs: true, Load: func() error {
		res, lerr := loadgen.RunSequential(app.EntryURL(), n, "/search", nil)
		if lerr != nil {
			return lerr
		}
		result.Aborted = res.CDF()
		return nil
	}})
	if err != nil {
		return nil, err
	}

	// Batch 2: delayed, immediately after; the breaker check runs over the
	// union of both batches' observations (no ClearLogs).
	report, err := runner.Run(context.Background(), core.Recipe{
		Name: "fig6-delay",
		Scenarios: []core.Scenario{core.Delay{
			Src: topology.WordPressService, Dst: topology.ElasticsearchService, Interval: delay,
		}},
		Checks: []core.Check{core.ExpectCircuitBreaker(
			topology.WordPressService, topology.ElasticsearchService, n, delay,
		)},
	}, core.RunOptions{Load: func() error {
		res, lerr := loadgen.RunSequential(app.EntryURL(), n, "/search", nil)
		if lerr != nil {
			return lerr
		}
		result.Delayed = res.CDF()
		return nil
	}})
	if err != nil {
		return nil, err
	}
	result.BreakerCheckPassed = report.Passed()
	return result, nil
}

func wordpressSpec(o Options) topology.Spec {
	spec := topology.WordPress(topology.WordPressOptions{BackendWorkTime: 2 * time.Millisecond})
	spec.RNG = o.rng()
	return spec
}

// Figure7Row is one point of Figure 7: control-plane timings for one
// application size.
type Figure7Row struct {
	// Depth is the binary tree depth.
	Depth int

	// Services is the number of microservices (1, 3, 7, 15, 31).
	Services int

	// Orchestration is the time to install the outage's rules on every
	// agent.
	Orchestration time.Duration

	// Assertion is the time to flush logs and run one assertion per
	// service.
	Assertion time.Duration

	// AssertionScan and AssertionIndexed re-time one assertion pass per
	// service over the run's observations with the event store's
	// posting-list index off ("before", the paper-era full scan) and on
	// ("after"). The run itself — and Assertion above — uses the index.
	AssertionScan    time.Duration
	AssertionIndexed time.Duration

	// Load is the time to inject the test requests (reported for context;
	// the paper keeps it separate from the orchestration/assertion bars).
	Load time.Duration

	// Total is the whole test duration (paper: "the test was completed in
	// under one second").
	Total time.Duration
}

// Figure7 measures the time to orchestrate an outage and run assertions as
// a function of application size: binary trees of depth 0–4 (1–31
// services), a Delay fault impacting every service, 100 injected test
// requests, and one assertion per service (§7.2).
func Figure7(opts Options) ([]Figure7Row, error) {
	o := opts.withDefaults()
	n := o.requests(100)
	var out []Figure7Row
	for depth := 0; depth <= 4; depth++ {
		row, err := figure7Point(o, depth, n)
		if err != nil {
			return nil, err
		}
		out = append(out, *row)
	}
	return out, nil
}

func figure7Point(o Options, depth, n int) (*Figure7Row, error) {
	spec := topology.BinaryTree(depth, 0)
	spec.RNG = o.rng()
	app, err := topology.Build(spec)
	if err != nil {
		return nil, err
	}
	defer app.Close()
	runner := newRunner(app)

	// An outage that impacts all services: a Delay fault on every edge of
	// the application graph (including the user→root edge so even a
	// 1-service app has a fault to install).
	scenarios := []core.Scenario{core.DegradeNetwork{Interval: time.Millisecond}}
	// One assertion per service.
	var checks []core.Check
	for _, svc := range app.Services() {
		checks = append(checks, core.ExpectTimeouts(svc, time.Minute))
	}

	report, err := runner.Run(context.Background(), core.Recipe{
		Name:      fmt.Sprintf("fig7-depth%d", depth),
		Scenarios: scenarios,
		Checks:    checks,
	}, core.RunOptions{ClearLogs: true, Load: func() error {
		_, lerr := loadgen.Run(app.EntryURL(), loadgen.Options{N: n, Concurrency: 8, RNG: o.rng()})
		return lerr
	}})
	if err != nil {
		return nil, err
	}

	// Before/after series: the same assertion pass with the store's
	// posting-list index off (the pre-index full scan) and on.
	app.Store.UseLinearScan(true)
	scanT, err := timeAssertionPass(runner, app)
	if err != nil {
		return nil, err
	}
	app.Store.UseLinearScan(false)
	indexedT, err := timeAssertionPass(runner, app)
	if err != nil {
		return nil, err
	}

	return &Figure7Row{
		Depth:            depth,
		Services:         topology.TreeServiceCount(depth),
		Orchestration:    report.OrchestrationTime,
		Assertion:        report.AssertionTime,
		AssertionScan:    scanT,
		AssertionIndexed: indexedT,
		Load:             report.LoadTime,
		Total:            report.TotalTime(),
	}, nil
}

// timeAssertionPass runs one HasTimeouts assertion per service over the
// app's current observations and returns the wall time.
func timeAssertionPass(runner *core.Runner, app *topology.App) (time.Duration, error) {
	c := runner.Checker()
	start := time.Now()
	for _, svc := range app.Services() {
		if _, err := c.HasTimeouts(svc, time.Minute, "test-*"); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// PrintFigure5 renders Figure 5 series as text.
func PrintFigure5(w io.Writer, series []DelaySeries) {
	fmt.Fprintln(w, "Figure 5: WordPress response-time CDFs under injected wordpress->elasticsearch delays")
	fmt.Fprintln(w, "(paper: every CDF is offset by the injected delay — no timeout pattern)")
	for _, s := range series {
		min, _ := s.CDF.Min()
		p50, _ := s.CDF.Quantile(0.5)
		p99, _ := s.CDF.Quantile(0.99)
		fmt.Fprintf(w, "  delay=%-7s min=%8.1fms p50=%8.1fms p99=%8.1fms timeout-check=%s\n",
			s.InjectedDelay, min*1000, p50*1000, p99*1000, passFail(s.TimeoutCheckPassed))
		for _, p := range s.CDF.Points(5) {
			fmt.Fprintf(w, "      cdf %5.2f -> %8.1f ms\n", p.P, p.Value*1000)
		}
	}
}

// PrintFigure6 renders the Figure 6 result as text.
func PrintFigure6(w io.Writer, r *Figure6Result) {
	fmt.Fprintf(w, "Figure 6: aborted then delayed (by %s) request CDFs\n", r.InjectedDelay)
	fmt.Fprintln(w, "(paper: no delayed request returns before the injected delay — no circuit breaker)")
	aMax, _ := r.Aborted.Max()
	dMin, _ := r.Delayed.Min()
	fmt.Fprintf(w, "  aborted: %d samples, slowest %8.1f ms (fast fallback)\n", r.Aborted.Len(), aMax*1000)
	fmt.Fprintf(w, "  delayed: %d samples, fastest %8.1f ms (injected %s)\n", r.Delayed.Len(), dMin*1000, r.InjectedDelay)
	fmt.Fprintf(w, "  circuit-breaker check: %s\n", passFail(r.BreakerCheckPassed))
	for _, p := range r.Delayed.Points(5) {
		fmt.Fprintf(w, "      delayed cdf %5.2f -> %8.1f ms\n", p.P, p.Value*1000)
	}
}

// PrintFigure7 renders Figure 7 rows as text.
func PrintFigure7(w io.Writer, rows []Figure7Row) {
	fmt.Fprintln(w, "Figure 7: time to orchestrate an outage and run assertions vs. application size")
	fmt.Fprintln(w, "(paper: both components well under a second at 31 services)")
	fmt.Fprintf(w, "  %-9s %-9s %-14s %-14s %-14s %-14s %-12s %-12s\n",
		"services", "depth", "orchestration", "assertion", "assert-scan", "assert-index", "load(100rq)", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-9d %-9d %-14s %-14s %-14s %-14s %-12s %-12s\n",
			r.Services, r.Depth,
			r.Orchestration.Round(time.Microsecond),
			r.Assertion.Round(time.Microsecond),
			r.AssertionScan.Round(time.Microsecond),
			r.AssertionIndexed.Round(time.Microsecond),
			r.Load.Round(time.Millisecond),
			r.Total.Round(time.Millisecond))
	}
	fmt.Fprintln(w, "  (assert-scan / assert-index: the same per-service assertion pass with the")
	fmt.Fprintln(w, "   event store's posting-list index off and on)")
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
