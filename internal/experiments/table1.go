package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"gremlin/internal/core"
	"gremlin/internal/loadgen"
	"gremlin/internal/resilience"
	"gremlin/internal/topology"
)

// Table1Row is one cell of the outage-replay matrix: an outage recipe run
// against one deployment variant.
type Table1Row struct {
	// Outage names the historical incident class being replayed.
	Outage string

	// Deployment is "fragile" or "hardened".
	Deployment string

	// Passed reports whether the deployment's failure handling satisfied
	// the recipe's assertions (false predicts the outage).
	Passed bool

	// Detail is the first failing assertion (or a pass summary).
	Detail string
}

// Table1 replays the paper's Table 1 outage classes as recipes against
// fragile and hardened deployments:
//
//   - middleware cascade (Stackdriver 2013, Parse.ly 2015): Crash of the
//     datastore behind a message bus; dependents need timeouts+breakers;
//   - datastore overload (BBC 2014, CircleCI 2015, Joyent 2015): Overload
//     of a storage backend; dependents need circuit breakers.
//
// The expected shape: every fragile cell fails (Gremlin predicts the
// outage in seconds) and every hardened cell passes.
func Table1(opts Options) ([]Table1Row, error) {
	o := opts.withDefaults()
	var rows []Table1Row

	cascade := func(hardened bool) (Table1Row, error) {
		mbOpts := topology.MessageBusOptions{}
		label := "fragile"
		if hardened {
			label = "hardened"
			mbOpts.PublisherTimeout = 200 * time.Millisecond
			mbOpts.PublisherBreaker = &resilience.BreakerConfig{
				FailureThreshold: 5, OpenTimeout: 10 * time.Second,
			}
		}
		spec := topology.MessageBus(mbOpts)
		spec.RNG = o.rng()
		app, err := topology.Build(spec)
		if err != nil {
			return Table1Row{}, err
		}
		defer app.Close()
		runner := newRunner(app)

		var checks []core.Check
		deps, err := app.Graph.Dependents(topology.MessageBusService)
		if err != nil {
			return Table1Row{}, err
		}
		for _, s := range deps {
			checks = append(checks,
				core.ExpectTimeouts(s, time.Second),
				core.ExpectCircuitBreaker(s, topology.MessageBusService, 5, 5*time.Second),
			)
		}
		report, err := runner.Run(context.Background(), core.Recipe{
			Name:      "cassandra-crash",
			Scenarios: []core.Scenario{core.Crash{Service: topology.CassandraService}},
			Checks:    checks,
		}, core.RunOptions{ClearLogs: true, Load: func() error {
			_, lerr := loadgen.Run(app.EntryURL(), loadgen.Options{N: o.requests(30), RNG: o.rng()})
			return lerr
		}})
		if err != nil {
			return Table1Row{}, err
		}
		return Table1Row{
			Outage:     "middleware cascade (Stackdriver'13, Parse.ly'15)",
			Deployment: label,
			Passed:     report.Passed(),
			Detail:     verdictDetail(report),
		}, nil
	}

	overload := func(hardened bool) (Table1Row, error) {
		wpOpts := topology.WordPressOptions{}
		label := "fragile"
		if hardened {
			label = "hardened"
			wpOpts.SearchBreaker = &resilience.BreakerConfig{
				FailureThreshold: 10,
				OpenTimeout:      10 * time.Second,
				Fallback:         resilience.StaticFallback(503, "breaker open"),
			}
		}
		spec := topology.WordPress(wpOpts)
		spec.RNG = o.rng()
		app, err := topology.Build(spec)
		if err != nil {
			return Table1Row{}, err
		}
		defer app.Close()
		runner := newRunner(app)

		var checks []core.Check
		deps, err := app.Graph.Dependents(topology.ElasticsearchService)
		if err != nil {
			return Table1Row{}, err
		}
		for _, s := range deps {
			checks = append(checks,
				core.ExpectCircuitBreaker(s, topology.ElasticsearchService, 10, 2*time.Second))
		}
		report, err := runner.Run(context.Background(), core.Recipe{
			Name: "database-overload",
			Scenarios: []core.Scenario{core.Overload{
				Service: topology.ElasticsearchService, AbortFraction: 1, ErrorCode: 503,
			}},
			Checks: checks,
		}, core.RunOptions{ClearLogs: true, Load: func() error {
			_, lerr := loadgen.Run(app.EntryURL(), loadgen.Options{N: o.requests(40), RNG: o.rng()})
			return lerr
		}})
		if err != nil {
			return Table1Row{}, err
		}
		return Table1Row{
			Outage:     "datastore overload (BBC'14, CircleCI'15, Joyent'15)",
			Deployment: label,
			Passed:     report.Passed(),
			Detail:     verdictDetail(report),
		}, nil
	}

	for _, fn := range []func(bool) (Table1Row, error){cascade, overload} {
		for _, hardened := range []bool{false, true} {
			row, err := fn(hardened)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func verdictDetail(r *core.Report) string {
	if failed := r.Failed(); len(failed) > 0 {
		return failed[0].Details
	}
	return fmt.Sprintf("all %d assertions held", len(r.Results))
}

// PrintTable1 renders the outage matrix as text.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: historical outages replayed as recipes (fragile should FAIL, hardened PASS)")
	for _, r := range rows {
		verdict := "FAIL (outage predicted)"
		if r.Passed {
			verdict = "PASS"
		}
		fmt.Fprintf(w, "  %-52s %-9s %s\n", r.Outage, r.Deployment, verdict)
		fmt.Fprintf(w, "  %52s           %s\n", "", truncate(r.Detail, 100))
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
