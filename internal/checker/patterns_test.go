package checker

import (
	"strings"
	"testing"
	"time"

	"gremlin/internal/eventlog"
)

func TestHasTimeoutsPass(t *testing.T) {
	s := storeWith(t,
		reply("user", "web", "test-1", 0, withLatency(200)),
		reply("user", "web", "test-2", time.Second, withLatency(800)),
	)
	res, err := New(s).HasTimeouts("web", time.Second, "test-*")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("want pass: %s", res)
	}
}

func TestHasTimeoutsFail(t *testing.T) {
	s := storeWith(t,
		reply("user", "web", "test-1", 0, withLatency(200)),
		reply("user", "web", "test-2", time.Second, withLatency(3000)),
	)
	res, err := New(s).HasTimeouts("web", time.Second, "test-*")
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatalf("want failure: %s", res)
	}
	if !strings.Contains(res.Details, "no effective timeout") {
		t.Fatalf("details = %q", res.Details)
	}
}

func TestHasTimeoutsNoData(t *testing.T) {
	res, err := New(eventlog.NewStore()).HasTimeouts("web", time.Second, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("no data should not pass")
	}
}

func TestHasTimeoutsQueryError(t *testing.T) {
	if _, err := New(eventlog.NewStore()).HasTimeouts("web", time.Second, "re:["); err == nil {
		t.Fatal("want error")
	}
}

func boundedRetryLog(extraRetries int) []eventlog.Record {
	var recs []eventlog.Record
	for i := 0; i < 5; i++ {
		recs = append(recs, reply("a", "b", "test-1",
			time.Duration(i)*100*time.Millisecond, withStatus(503), gremlinMade()))
	}
	for i := 0; i < extraRetries; i++ {
		recs = append(recs, reply("a", "b", "test-1",
			500*time.Millisecond+time.Duration(i)*100*time.Millisecond, withStatus(503), gremlinMade()))
	}
	return recs
}

func TestHasBoundedRetriesPass(t *testing.T) {
	s := storeWith(t, boundedRetryLog(3)...)
	res, err := New(s).HasBoundedRetries("a", "b", 5, "test-*", BoundedRetriesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("want pass: %s", res)
	}
}

func TestHasBoundedRetriesFail(t *testing.T) {
	s := storeWith(t, boundedRetryLog(40)...)
	res, err := New(s).HasBoundedRetries("a", "b", 5, "test-*", BoundedRetriesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatalf("want failure: %s", res)
	}
}

func TestHasBoundedRetriesNoData(t *testing.T) {
	res, err := New(eventlog.NewStore()).HasBoundedRetries("a", "b", 5, "", BoundedRetriesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("no observations should not pass")
	}
}

func TestHasBoundedRetriesCustomOptions(t *testing.T) {
	// Only 2 failures staged; default threshold of 5 would never trigger,
	// custom threshold of 2 evaluates the retry budget.
	s := storeWith(t,
		reply("a", "b", "t", 0, withStatus(503), gremlinMade()),
		reply("a", "b", "t", 100*time.Millisecond, withStatus(503), gremlinMade()),
		reply("a", "b", "t", 200*time.Millisecond, withStatus(503), gremlinMade()),
	)
	res, err := New(s).HasBoundedRetries("a", "b", 1, "", BoundedRetriesOptions{
		FailureThreshold: 2,
		Window:           time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("1 retry after 2 failures should pass with budget 1: %s", res)
	}
}

// call logs one request/reply pair: request sent at `at`, reply 5 ms later.
func call(src, dst, id string, at time.Duration, opts ...recOpt) []eventlog.Record {
	return []eventlog.Record{
		request(src, dst, id, at),
		reply(src, dst, id, at+5*time.Millisecond, opts...),
	}
}

func TestHasCircuitBreakerPass(t *testing.T) {
	var recs []eventlog.Record
	for i := 0; i < 5; i++ {
		recs = append(recs, call("a", "b", "t", time.Duration(i)*100*time.Millisecond,
			withStatus(503), gremlinMade())...)
	}
	// Next call only after a 30 s quiet period.
	recs = append(recs, call("a", "b", "t", 31*time.Second, withStatus(200))...)
	s := storeWith(t, recs...)
	res, err := New(s).HasCircuitBreaker("a", "b", 5, 30*time.Second, "", CircuitBreakerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("want pass: %s", res)
	}
}

func TestHasCircuitBreakerFail(t *testing.T) {
	var recs []eventlog.Record
	for i := 0; i < 10; i++ { // keeps calling through the failures
		recs = append(recs, call("a", "b", "t", time.Duration(i)*100*time.Millisecond,
			withStatus(503), gremlinMade())...)
	}
	s := storeWith(t, recs...)
	res, err := New(s).HasCircuitBreaker("a", "b", 5, 30*time.Second, "", CircuitBreakerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatalf("want failure: %s", res)
	}
	if !strings.Contains(res.Details, "breaker absent") {
		t.Fatalf("details = %q", res.Details)
	}
}

func TestHasCircuitBreakerSlowRepliesAreNotQuiet(t *testing.T) {
	// A caller that keeps *sending* requests whose replies arrive late
	// (e.g. a Gremlin Delay fault) must not look quiet: the quiet phase is
	// measured on request send times.
	var recs []eventlog.Record
	for i := 0; i < 5; i++ {
		recs = append(recs, call("a", "b", "t", time.Duration(i)*10*time.Millisecond,
			withStatus(503), gremlinMade())...)
	}
	// Request sent immediately after the 5th failure; its reply arrives 3 s
	// later because of an injected delay.
	recs = append(recs,
		request("a", "b", "t", 60*time.Millisecond),
		reply("a", "b", "t", 60*time.Millisecond+3*time.Second, withStatus(200), withInjected(3000)),
	)
	s := storeWith(t, recs...)
	res, err := New(s).HasCircuitBreaker("a", "b", 5, time.Second, "", CircuitBreakerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatalf("want failure — the request was sent during the quiet window: %s", res)
	}
}

func TestHasCircuitBreakerInsufficientFailures(t *testing.T) {
	s := storeWith(t, call("a", "b", "t", 0, withStatus(503), gremlinMade())...)
	res, err := New(s).HasCircuitBreaker("a", "b", 5, time.Second, "", CircuitBreakerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatalf("want failure for insufficient failures: %s", res)
	}
	if !strings.Contains(res.Details, "breaker never exercised") {
		t.Fatalf("details = %q", res.Details)
	}
}

func TestHasCircuitBreakerNoData(t *testing.T) {
	res, err := New(eventlog.NewStore()).HasCircuitBreaker("a", "b", 5, time.Second, "", CircuitBreakerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("no observations should not pass")
	}
}

func TestHasBulkheadPass(t *testing.T) {
	var recs []eventlog.Record
	// Calls to the slow dependency trickle...
	recs = append(recs, request("web", "slow", "t", 0))
	// ...while the healthy dependency keeps a steady 10/s for 2 s.
	for i := 0; i < 20; i++ {
		recs = append(recs, request("web", "fast", "t", time.Duration(i)*100*time.Millisecond))
	}
	s := storeWith(t, recs...)
	res, err := New(s).HasBulkhead("web", "slow", 5, "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("want pass: %s", res)
	}
}

func TestHasBulkheadFail(t *testing.T) {
	var recs []eventlog.Record
	recs = append(recs, request("web", "slow", "t", 0))
	// Starved: only 3 calls to the healthy dependency over 10 s.
	for i := 0; i < 3; i++ {
		recs = append(recs, request("web", "fast", "t", time.Duration(i)*5*time.Second))
	}
	s := storeWith(t, recs...)
	res, err := New(s).HasBulkhead("web", "slow", 5, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatalf("want failure: %s", res)
	}
	if !strings.Contains(res.Details, "no bulkhead") {
		t.Fatalf("details = %q", res.Details)
	}
}

func TestHasBulkheadNoOtherDeps(t *testing.T) {
	s := storeWith(t, request("web", "slow", "t", 0))
	res, err := New(s).HasBulkhead("web", "slow", 5, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("no other dependencies observed should not pass")
	}
}

func TestNoCallsTo(t *testing.T) {
	s := storeWith(t, request("a", "b", "test-1", 0))
	c := New(s)
	res, err := c.NoCallsTo("a", "b", "test-*")
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("calls exist; want failure")
	}
	res, err = c.NoCallsTo("a", "c", "test-*")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatal("no calls to c; want pass")
	}
}

func TestHasFallback(t *testing.T) {
	s := storeWith(t,
		reply("user", "web", "t1", 0, withStatus(200)),
		reply("user", "web", "t2", time.Second, withStatus(200)),
		reply("user", "web", "t3", 2*time.Second, withStatus(500)),
		reply("user", "web", "t4", 3*time.Second, withStatus(200)),
	)
	c := New(s)
	res, err := c.HasFallback("web", 0.7, "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("75%% ok >= 70%%: %s", res)
	}
	res, err = c.HasFallback("web", 0.9, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatalf("75%% ok < 90%%: %s", res)
	}
	res, err = New(eventlog.NewStore()).HasFallback("web", 0.5, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("no data should not pass")
	}
}

func TestResultString(t *testing.T) {
	pass := Result{Check: "X", Passed: true, Details: "d"}
	if got := pass.String(); !strings.HasPrefix(got, "PASS") {
		t.Fatalf("String = %q", got)
	}
	fail := Result{Check: "X", Passed: false, Details: "d"}
	if got := fail.String(); !strings.HasPrefix(got, "FAIL") {
		t.Fatalf("String = %q", got)
	}
}

func backoffFlow(id string, gaps ...time.Duration) []eventlog.Record {
	var recs []eventlog.Record
	at := time.Duration(0)
	recs = append(recs, request("a", "b", id, at))
	for _, g := range gaps {
		at += g
		recs = append(recs, request("a", "b", id, at))
	}
	return recs
}

func TestHasExponentialBackoffPass(t *testing.T) {
	s := storeWith(t, backoffFlow("test-1",
		10*time.Millisecond, 20*time.Millisecond, 40*time.Millisecond, 80*time.Millisecond)...)
	res, err := New(s).HasExponentialBackoff("a", "b", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("doubling gaps should pass: %s", res)
	}
}

func TestHasExponentialBackoffFailFixedInterval(t *testing.T) {
	s := storeWith(t, backoffFlow("test-1",
		10*time.Millisecond, 10*time.Millisecond, 10*time.Millisecond)...)
	res, err := New(s).HasExponentialBackoff("a", "b", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatalf("fixed-interval retries should fail: %s", res)
	}
	if !strings.Contains(res.Details, "did not grow") {
		t.Fatalf("details = %q", res.Details)
	}
}

func TestHasExponentialBackoffToleratesJitter(t *testing.T) {
	// Growth factor 2 with 20% tolerance: gaps of 10, 17, 30 ms pass
	// (17 >= 10*2*0.8 = 16; 30 >= 17*2*0.8 = 27.2).
	s := storeWith(t, backoffFlow("test-1",
		10*time.Millisecond, 17*time.Millisecond, 30*time.Millisecond)...)
	res, err := New(s).HasExponentialBackoff("a", "b", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("jittered exponential gaps should pass: %s", res)
	}
}

func TestHasExponentialBackoffInsufficientData(t *testing.T) {
	s := storeWith(t, backoffFlow("test-1", 10*time.Millisecond)...) // 2 requests: 1 gap
	res, err := New(s).HasExponentialBackoff("a", "b", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatalf("insufficient data should not pass: %s", res)
	}
}

func TestHasExponentialBackoffBadFactor(t *testing.T) {
	if _, err := New(eventlog.NewStore()).HasExponentialBackoff("a", "b", 1, ""); err == nil {
		t.Fatal("want error for factor <= 1")
	}
}

func TestHasExponentialBackoffMultipleFlows(t *testing.T) {
	recs := backoffFlow("test-1", 10*time.Millisecond, 20*time.Millisecond)
	recs = append(recs, backoffFlow("test-2", 10*time.Millisecond, 20*time.Millisecond)...)
	recs = append(recs, backoffFlow("test-3", 5*time.Millisecond)...) // too short, skipped
	s := storeWith(t, recs...)
	res, err := New(s).HasExponentialBackoff("a", "b", 2, "test-*")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed || !strings.Contains(res.Details, "2 flows") {
		t.Fatalf("res = %s", res)
	}
}

func TestHasCircuitBreakerHalfOpenProbes(t *testing.T) {
	// 5 failures, quiet for 30s, then probes resume.
	mkLog := func(probeFailures int) []eventlog.Record {
		var recs []eventlog.Record
		for i := 0; i < 5; i++ {
			recs = append(recs, call("a", "b", "t", time.Duration(i)*100*time.Millisecond,
				withStatus(503), gremlinMade())...)
		}
		at := 31 * time.Second
		for i := 0; i < probeFailures; i++ {
			recs = append(recs, call("a", "b", "t", at, withStatus(503))...)
			at += 100 * time.Millisecond
		}
		recs = append(recs, call("a", "b", "t", at, withStatus(200))...)
		return recs
	}

	// One failing probe then a success: within a 2-probe budget.
	s := storeWith(t, mkLog(1)...)
	res, err := New(s).HasCircuitBreaker("a", "b", 5, 30*time.Second, "",
		CircuitBreakerOptions{SuccessThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("want pass: %s", res)
	}
	if !strings.Contains(res.Details, "half-open phase resumed") {
		t.Fatalf("details = %q", res.Details)
	}

	// Five failing probes before the success: exceeds the budget.
	s = storeWith(t, mkLog(5)...)
	res, err = New(s).HasCircuitBreaker("a", "b", 5, 30*time.Second, "",
		CircuitBreakerOptions{SuccessThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatalf("want failure: %s", res)
	}
	if !strings.Contains(res.Details, "half-open phase not limited") {
		t.Fatalf("details = %q", res.Details)
	}

	// SuccessThreshold zero skips the half-open validation entirely.
	res, err = New(s).HasCircuitBreaker("a", "b", 5, 30*time.Second, "", CircuitBreakerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("open-phase-only check should pass: %s", res)
	}
}
