package checker

import (
	"fmt"
	"strings"
	"time"
)

// Step is one stage of a Combine chain. Evaluating a step against the
// remaining record list either succeeds — consuming the prefix of records
// that satisfied it — or fails the whole chain.
type Step interface {
	// Consume evaluates the step on rl. On success it returns the number
	// of leading records consumed and ok=true; on failure ok=false.
	Consume(rl RList) (consumed int, ok bool)

	// Describe renders the step for assertion reports.
	Describe() string
}

// Combine chains base assertions "in the style of a state machine" (paper
// §4.2): each step consumes the portion of records that made it true before
// the remainder is passed to the next step. It returns true only if every
// step succeeds in order.
func Combine(rl RList, steps ...Step) bool {
	ok, _ := CombineTrace(rl, steps...)
	return ok
}

// CombineTrace is Combine with a human-readable trace of each step's
// outcome, for recipe reports.
func CombineTrace(rl RList, steps ...Step) (bool, string) {
	var (
		b        strings.Builder
		rest     = rl
		boundary time.Time
	)
	for i, s := range steps {
		if ba, ok := s.(boundaryAware); ok && !boundary.IsZero() {
			s = ba.withBoundary(boundary)
		}
		consumed, ok := s.Consume(rest)
		fmt.Fprintf(&b, "step %d %s: ", i+1, s.Describe())
		if !ok {
			fmt.Fprintf(&b, "FAILED with %d records remaining", len(rest))
			return false, b.String()
		}
		fmt.Fprintf(&b, "ok, consumed %d of %d; ", consumed, len(rest))
		if consumed > len(rest) {
			consumed = len(rest)
		}
		if consumed > 0 {
			boundary = rest[consumed-1].Timestamp
		}
		rest = rest[consumed:]
	}
	b.WriteString("all steps passed")
	return true, b.String()
}

// boundaryAware is implemented by steps whose semantics depend on the
// timestamp of the last record consumed by the preceding steps.
type boundaryAware interface {
	withBoundary(t time.Time) Step
}

// StatusSeen is a Step that succeeds once numMatch replies with the given
// status have been observed, consuming records through the numMatch-th
// occurrence. It corresponds to Table 3's CheckStatus used inside Combine.
type StatusSeen struct {
	Status   int
	NumMatch int
	WithRule bool
}

// Consume implements Step.
func (s StatusSeen) Consume(rl RList) (int, bool) {
	if s.NumMatch <= 0 {
		return 0, true
	}
	n := 0
	for i, r := range rl {
		if !counted(r, s.WithRule) || r.Status != s.Status {
			continue
		}
		n++
		if n == s.NumMatch {
			return i + 1, true
		}
	}
	return 0, false
}

// Describe implements Step.
func (s StatusSeen) Describe() string {
	return fmt.Sprintf("CheckStatus(status=%d, n=%d, withRule=%v)", s.Status, s.NumMatch, s.WithRule)
}

// FailuresSeen is a Step that succeeds once numMatch failed replies (HTTP
// 4xx/5xx or severed connections) have been observed, consuming through the
// numMatch-th failure.
type FailuresSeen struct {
	NumMatch int
	WithRule bool
}

// Consume implements Step.
func (s FailuresSeen) Consume(rl RList) (int, bool) {
	if s.NumMatch <= 0 {
		return 0, true
	}
	n := 0
	for i, r := range rl {
		if !counted(r, s.WithRule) || !IsFailureStatus(r.Status) {
			continue
		}
		n++
		if n == s.NumMatch {
			return i + 1, true
		}
	}
	return 0, false
}

// Describe implements Step.
func (s FailuresSeen) Describe() string {
	return fmt.Sprintf("FailuresSeen(n=%d, withRule=%v)", s.NumMatch, s.WithRule)
}

// AtMost is a Step asserting that at most Num records occur within Tdelta
// of the first remaining record; it consumes the window. It corresponds to
// Table 3's AtMostRequests used inside Combine.
type AtMost struct {
	Tdelta   time.Duration
	WithRule bool
	Num      int
}

// Consume implements Step.
func (s AtMost) Consume(rl RList) (int, bool) {
	if len(rl) == 0 {
		return 0, true
	}
	window := windowLen(rl, s.Tdelta)
	return window, NumRequests(rl[:window], 0, s.WithRule) <= s.Num
}

// Describe implements Step.
func (s AtMost) Describe() string {
	return fmt.Sprintf("AtMostRequests(tdelta=%s, withRule=%v, n=%d)", s.Tdelta, s.WithRule, s.Num)
}

// AtLeast is a Step asserting that at least Num records occur within Tdelta
// of the first remaining record; it consumes the window.
type AtLeast struct {
	Tdelta   time.Duration
	WithRule bool
	Num      int
}

// Consume implements Step.
func (s AtLeast) Consume(rl RList) (int, bool) {
	window := windowLen(rl, s.Tdelta)
	return window, NumRequests(rl[:window], 0, s.WithRule) >= s.Num
}

// Describe implements Step.
func (s AtLeast) Describe() string {
	return fmt.Sprintf("AtLeastRequests(tdelta=%s, withRule=%v, n=%d)", s.Tdelta, s.WithRule, s.Num)
}

// QuietFor is a Step asserting that no records occur for the given duration
// after the previous step's last consumed record — i.e. the caller backed
// off. Because steps only see the remaining list, the quiet period is
// measured between the end of the consumed prefix and the first remaining
// record; an empty remainder trivially satisfies it. Used to validate the
// open phase of a circuit breaker.
//
// QuietFor needs the timestamp of the boundary record, so it must follow a
// consuming step inside CombineWithBoundary-aware chains; Combine wires
// this automatically.
type QuietFor struct {
	Tdelta time.Duration

	// boundary is the timestamp of the last consumed record, set by
	// Combine's execution (via SetBoundary) before Consume runs.
	boundary time.Time
}

// Consume implements Step. When no boundary is known (QuietFor used first
// in a chain), the gap is measured between the first two remaining records.
func (s QuietFor) Consume(rl RList) (int, bool) {
	if len(rl) == 0 {
		return 0, true
	}
	if !s.boundary.IsZero() {
		return 0, !rl[0].Timestamp.Before(s.boundary.Add(s.Tdelta))
	}
	if len(rl) == 1 {
		return 1, true
	}
	return 1, !rl[1].Timestamp.Before(rl[0].Timestamp.Add(s.Tdelta))
}

// Describe implements Step.
func (s QuietFor) Describe() string {
	return fmt.Sprintf("QuietFor(tdelta=%s)", s.Tdelta)
}

// withBoundary implements boundaryAware.
func (s QuietFor) withBoundary(t time.Time) Step {
	s.boundary = t
	return s
}

// windowLen returns how many leading records of rl fall within tdelta of
// the first record (all of them when tdelta == 0).
func windowLen(rl RList, tdelta time.Duration) int {
	if tdelta <= 0 || len(rl) == 0 {
		return len(rl)
	}
	cutoff := rl[0].Timestamp.Add(tdelta)
	for i, r := range rl {
		if !r.Timestamp.Before(cutoff) {
			return i
		}
	}
	return len(rl)
}
