// Package checker implements Gremlin's Assertion Checker: the control-plane
// component that validates a recipe's expectations against the event logs
// collected from the data plane (paper §4.2, Table 3).
//
// The checker exposes three layers, mirroring the paper:
//
//   - Queries (GetRequests, GetReplies) fetch filtered, time-sorted record
//     lists ("RList") from the event store.
//   - Base assertions (NumRequests, ReplyLatency, AtMostRequests,
//     CheckStatus, RequestRate) compute statistics over an RList; boolean
//     ones can be chained with Combine, a state machine in which each
//     assertion consumes the prefix of records that satisfied it.
//   - Pattern checks (HasTimeouts, HasBoundedRetries, HasCircuitBreaker,
//     HasBulkhead) validate the resiliency design patterns of §2.1, built
//     from the base assertions.
//
// The withRule parameter: Gremlin's own fault injections appear in the
// logs. withRule=true evaluates records as the calling service observed
// them — including Gremlin-injected delays and Gremlin-synthesized error
// replies — which is what you want when validating the caller's reaction to
// a staged failure. withRule=false removes Gremlin's interference
// (subtracting injected delays and dropping synthesized replies), exposing
// the callee's untampered behaviour.
package checker

import (
	"fmt"
	"strings"
	"time"

	"gremlin/internal/eventlog"
)

// RList is a time-ordered list of observation records, as returned by the
// queries.
type RList []eventlog.Record

// Checker runs queries and assertions against an event-log source.
type Checker struct {
	source eventlog.Source
}

// New creates a Checker reading from the given source (an in-process
// eventlog.Store or a remote store via eventlog.Client).
func New(source eventlog.Source) *Checker {
	return &Checker{source: source}
}

// Source exposes the event-log source the checker reads from, so layers
// holding only a Checker (e.g. campaign blast-radius analysis via
// internal/tracing) can run their own queries against the same records.
func (c *Checker) Source() eventlog.Source { return c.source }

// GetRequests returns all observed requests from src to dst whose request
// ID matches idPattern (Table 3). Empty src, dst, or idPattern match
// anything.
func (c *Checker) GetRequests(src, dst, idPattern string) (RList, error) {
	recs, err := c.source.Select(eventlog.Query{
		Src: src, Dst: dst, Kind: eventlog.KindRequest, IDPattern: idPattern,
	})
	if err != nil {
		return nil, fmt.Errorf("checker: get requests %s->%s: %w", src, dst, err)
	}
	return recs, nil
}

// GetReplies returns all observed replies delivered to src for its calls to
// dst, filtered by request-ID pattern (Table 3). Every completed API call
// produces exactly one reply record carrying the request line, status, and
// latency, so an RList of replies doubles as the list of completed calls.
func (c *Checker) GetReplies(src, dst, idPattern string) (RList, error) {
	recs, err := c.source.Select(eventlog.Query{
		Src: src, Dst: dst, Kind: eventlog.KindReply, IDPattern: idPattern,
	})
	if err != nil {
		return nil, fmt.Errorf("checker: get replies %s->%s: %w", src, dst, err)
	}
	return recs, nil
}

// GetConns returns the conn-close records for relayed src→dst stream
// connections whose connection ID matches idPattern. Every relayed L4
// connection produces exactly one conn-close record carrying the bytes
// moved in each direction, the connection duration, and any stream fault
// that fired, so an RList of conn-closes doubles as the list of completed
// connections.
func (c *Checker) GetConns(src, dst, idPattern string) (RList, error) {
	recs, err := c.source.Select(eventlog.Query{
		Src: src, Dst: dst, Kind: eventlog.KindConnClose, IDPattern: idPattern,
	})
	if err != nil {
		return nil, fmt.Errorf("checker: get conns %s->%s: %w", src, dst, err)
	}
	return recs, nil
}

// CountStreamFaults counts the records in rl that closed with a stream
// fault fired, i.e. carry a fault rule ID starting with ruleIDPrefix. An
// empty prefix counts every faulted connection. Campaign units attribute
// L4 faults this way: stream connections carry relay-minted IDs rather
// than per-run request-ID namespaces, so attribution keys off the
// installed rule's ID instead of the ID pattern.
func CountStreamFaults(rl RList, ruleIDPrefix string) int {
	n := 0
	for _, r := range rl {
		if r.FaultRuleID != "" && strings.HasPrefix(r.FaultRuleID, ruleIDPrefix) {
			n++
		}
	}
	return n
}

// CountRequests reports how many requests from src to dst match
// idPattern without materializing them: against a sharded or remote
// store the count is computed store-side (shard-locally for namespaced
// patterns), so existence and volume checks never copy record bodies.
// limit > 0 stops counting early — an existence check passes limit 1.
func (c *Checker) CountRequests(src, dst, idPattern string, limit int) (int, error) {
	n, err := eventlog.CountRecords(c.source, eventlog.Query{
		Src: src, Dst: dst, Kind: eventlog.KindRequest, IDPattern: idPattern, Limit: limit,
	})
	if err != nil {
		return 0, fmt.Errorf("checker: count requests %s->%s: %w", src, dst, err)
	}
	return n, nil
}

// Destinations returns the distinct destination services that src was
// observed calling, in first-seen order. Pattern checks that must reason
// about "all other dependencies" (HasBulkhead) use it.
func (c *Checker) Destinations(src string) ([]string, error) {
	recs, err := c.source.Select(eventlog.Query{Src: src, Kind: eventlog.KindRequest})
	if err != nil {
		return nil, fmt.Errorf("checker: destinations of %s: %w", src, err)
	}
	seen := make(map[string]bool)
	var dsts []string
	for _, r := range recs {
		if !seen[r.Dst] {
			seen[r.Dst] = true
			dsts = append(dsts, r.Dst)
		}
	}
	return dsts, nil
}

// untouched reports whether a record shows no Gremlin interference.
func untouched(r eventlog.Record) bool {
	return r.FaultAction == "" && !r.GremlinGenerated
}

// counted reports whether a record participates in counting assertions
// under the given withRule mode.
func counted(r eventlog.Record, withRule bool) bool {
	return withRule || untouched(r)
}

// NumRequests computes the number of records in rl (Table 3). A non-zero
// tdelta restricts counting to the window [first, first+tdelta) anchored at
// the first record. withRule=false counts only records untouched by
// Gremlin.
func NumRequests(rl RList, tdelta time.Duration, withRule bool) int {
	if len(rl) == 0 {
		return 0
	}
	var (
		n      int
		cutoff time.Time
	)
	if tdelta > 0 {
		cutoff = rl[0].Timestamp.Add(tdelta)
	}
	for _, r := range rl {
		if tdelta > 0 && !r.Timestamp.Before(cutoff) {
			break
		}
		if counted(r, withRule) {
			n++
		}
	}
	return n
}

// ReplyLatency computes the reply latency for each reply in rl (Table 3).
// withRule=true returns latencies as the caller observed them, including
// Gremlin-injected delays; withRule=false subtracts injected delays and
// drops Gremlin-synthesized replies.
func ReplyLatency(rl RList, withRule bool) []time.Duration {
	var out []time.Duration
	for _, r := range rl {
		if r.Kind != eventlog.KindReply {
			continue
		}
		if withRule {
			out = append(out, r.Latency())
			continue
		}
		if r.GremlinGenerated {
			continue
		}
		out = append(out, r.UntamperedLatency())
	}
	return out
}

// AtMostRequests checks that at most num records occur within the window
// tdelta anchored at the first record (Table 3).
func AtMostRequests(rl RList, tdelta time.Duration, withRule bool, num int) bool {
	return NumRequests(rl, tdelta, withRule) <= num
}

// AtLeastRequests checks that at least num records occur within the window.
func AtLeastRequests(rl RList, tdelta time.Duration, withRule bool, num int) bool {
	return NumRequests(rl, tdelta, withRule) >= num
}

// CheckStatus checks that at least numMatch records in rl carry the given
// HTTP status (Table 3). Pass status 0 to match severed connections.
func CheckStatus(rl RList, status, numMatch int, withRule bool) bool {
	n := 0
	for _, r := range rl {
		if r.Kind != eventlog.KindReply || !counted(r, withRule) {
			continue
		}
		if r.Status == status {
			n++
			if n >= numMatch {
				return true
			}
		}
	}
	return numMatch <= 0
}

// IsFailureStatus reports whether a reply status indicates a failed call:
// HTTP 4xx/5xx or 0 (severed connection).
func IsFailureStatus(status int) bool {
	return status == 0 || status >= 400
}

// CountFailures counts the reply records in rl with a failure status.
func CountFailures(rl RList, withRule bool) int {
	n := 0
	for _, r := range rl {
		if r.Kind == eventlog.KindReply && counted(r, withRule) && IsFailureStatus(r.Status) {
			n++
		}
	}
	return n
}

// RequestRate computes the average record rate in requests/second over rl's
// time span (Table 3). Lists spanning no measurable time (or a single
// record) report 0.
func RequestRate(rl RList) float64 {
	if len(rl) < 2 {
		return 0
	}
	span := rl[len(rl)-1].Timestamp.Sub(rl[0].Timestamp)
	if span <= 0 {
		return 0
	}
	return float64(len(rl)) / span.Seconds()
}

// CountFaultedAt counts the records in rl that carry an injected fault and
// whose execution index equals ei. Explore units attribute point-scoped
// faults this way: a rule pinned to one call path must be observed firing
// at that call path — the same fault firing elsewhere proves nothing about
// the targeted point.
func CountFaultedAt(rl RList, ei string) int {
	n := 0
	for _, r := range rl {
		if r.EI != ei {
			continue
		}
		if r.FaultAction != "" || r.GremlinGenerated || r.InjectedDelayMillis > 0 {
			n++
		}
	}
	return n
}

// MaxLatency returns the largest observed latency among replies in rl under
// the given withRule mode, or 0 for an empty list.
func MaxLatency(rl RList, withRule bool) time.Duration {
	var max time.Duration
	for _, d := range ReplyLatency(rl, withRule) {
		if d > max {
			max = d
		}
	}
	return max
}
