package checker

import (
	"fmt"
	"time"
)

// Result is the outcome of one pattern check, with enough detail for the
// operator to understand a failure without digging through raw logs.
type Result struct {
	// Check names the pattern check and its arguments.
	Check string `json:"check"`

	// Passed reports whether the expectation held.
	Passed bool `json:"passed"`

	// Details explains the outcome.
	Details string `json:"details"`
}

func (r Result) String() string {
	state := "PASS"
	if !r.Passed {
		state = "FAIL"
	}
	return fmt.Sprintf("%s %s: %s", state, r.Check, r.Details)
}

// HasTimeouts checks that src replies to its upstream services within
// maxLatency (Table 3): the signature of a working timeout pattern is that
// src's own response time stays bounded even while its dependencies are
// degraded. idPattern confines the check to matching request flows ("" for
// all).
func (c *Checker) HasTimeouts(src string, maxLatency time.Duration, idPattern string) (Result, error) {
	name := fmt.Sprintf("HasTimeouts(%s, %s)", src, maxLatency)
	rl, err := c.GetReplies("", src, idPattern)
	if err != nil {
		return Result{}, err
	}
	if len(rl) == 0 {
		return Result{Check: name, Passed: false,
			Details: "no replies from " + src + " observed; cannot validate timeouts"}, nil
	}
	worst := MaxLatency(rl, true)
	if worst > maxLatency {
		return Result{Check: name, Passed: false,
			Details: fmt.Sprintf("slowest reply took %s (> %s) across %d replies — no effective timeout",
				worst.Round(time.Millisecond), maxLatency, len(rl))}, nil
	}
	return Result{Check: name, Passed: true,
		Details: fmt.Sprintf("all %d replies within %s (slowest %s)",
			len(rl), maxLatency, worst.Round(time.Millisecond))}, nil
}

// BoundedRetriesOptions tunes HasBoundedRetries. Zero values take the
// paper's defaults: 5 failures observed, then at most MaxTries more calls
// within 1 minute.
type BoundedRetriesOptions struct {
	// FailureThreshold is how many failed replies must be observed before
	// the retry budget is evaluated (paper default 5).
	FailureThreshold int

	// Window is the interval within which the additional calls are counted
	// (paper default 1 minute).
	Window time.Duration
}

func (o BoundedRetriesOptions) withDefaults() BoundedRetriesOptions {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 5
	}
	if o.Window <= 0 {
		o.Window = time.Minute
	}
	return o
}

// HasBoundedRetries checks that src implements a bounded-retry pattern when
// calling dst (Table 3): once FailureThreshold failed replies have been
// observed, src sends at most maxTries more requests to dst within the
// window. Implemented exactly as the paper sketches, via Combine.
func (c *Checker) HasBoundedRetries(src, dst string, maxTries int, idPattern string, opts BoundedRetriesOptions) (Result, error) {
	o := opts.withDefaults()
	name := fmt.Sprintf("HasBoundedRetries(%s, %s, %d)", src, dst, maxTries)
	rl, err := c.GetReplies(src, dst, idPattern)
	if err != nil {
		return Result{}, err
	}
	if len(rl) == 0 {
		return Result{Check: name, Passed: false,
			Details: fmt.Sprintf("no calls from %s to %s observed", src, dst)}, nil
	}
	// A caller that gave up before the failure threshold was even reached
	// has retries bounded more tightly than asked: pass, provided the total
	// call volume itself respects threshold + budget.
	if failures := CountFailures(rl, true); failures < o.FailureThreshold {
		total := NumRequests(rl, 0, true)
		if total <= o.FailureThreshold+maxTries {
			return Result{Check: name, Passed: true,
				Details: fmt.Sprintf("only %d failures observed (< threshold %d) across %d calls — retries stopped early",
					failures, o.FailureThreshold, total)}, nil
		}
		return Result{Check: name, Passed: false,
			Details: fmt.Sprintf("%d calls observed with only %d failures; exceeds threshold %d + budget %d",
				total, failures, o.FailureThreshold, maxTries)}, nil
	}
	ok, explain := CombineTrace(rl,
		FailuresSeen{NumMatch: o.FailureThreshold, WithRule: true},
		AtMost{Tdelta: o.Window, WithRule: true, Num: maxTries},
	)
	return Result{Check: name, Passed: ok, Details: explain}, nil
}

// CircuitBreakerOptions tunes HasCircuitBreaker.
type CircuitBreakerOptions struct {
	// SuccessThreshold, when positive, additionally validates the
	// half-open phase (Table 3: "SuccessThreshold requests should close
	// the circuit breaker"): once calls resume after the quiet window, at
	// most SuccessThreshold probe calls may be sent before the first
	// successful reply — a caller that resumes at full rate while the
	// dependency is still unproven fails the check. Zero validates only
	// the open phase, matching the paper's §7.1 experiments.
	SuccessThreshold int
}

// HasCircuitBreaker checks that src trips a circuit breaker on calls to dst
// (Table 3): after threshold failed calls, src must stop *sending* requests
// to dst for at least tdelta (the breaker's open phase). A caller without a
// breaker keeps hammering the failed dependency and fails this check.
//
// Failures are counted on reply records (that is where the status lives);
// the quiet period is evaluated on request records, i.e. on send times —
// a reply's timestamp is delayed by the callee's (or Gremlin's injected)
// latency, which would make a merely-slow caller look quiet.
func (c *Checker) HasCircuitBreaker(src, dst string, threshold int, tdelta time.Duration, idPattern string, opts CircuitBreakerOptions) (Result, error) {
	name := fmt.Sprintf("HasCircuitBreaker(%s, %s, %d, %s)", src, dst, threshold, tdelta)
	reps, err := c.GetReplies(src, dst, idPattern)
	if err != nil {
		return Result{}, err
	}
	if len(reps) == 0 {
		return Result{Check: name, Passed: false,
			Details: fmt.Sprintf("no calls from %s to %s observed", src, dst)}, nil
	}

	// Locate the threshold-th failure.
	var (
		failures int
		tripAt   time.Time
	)
	for _, r := range reps {
		if !counted(r, true) || !IsFailureStatus(r.Status) {
			continue
		}
		failures++
		if failures == threshold {
			tripAt = r.Timestamp
			break
		}
	}
	if failures < threshold {
		return Result{Check: name, Passed: false,
			Details: fmt.Sprintf("only %d failures observed (< threshold %d); breaker never exercised", failures, threshold)}, nil
	}

	// The open phase: no request may be *sent* within (tripAt, tripAt+tdelta).
	reqs, err := c.GetRequests(src, dst, idPattern)
	if err != nil {
		return Result{}, err
	}
	quietUntil := tripAt.Add(tdelta)
	var inWindow int
	var firstOffender time.Time
	for _, r := range reqs {
		if r.Timestamp.After(tripAt) && r.Timestamp.Before(quietUntil) {
			if inWindow == 0 {
				firstOffender = r.Timestamp
			}
			inWindow++
		}
	}
	if inWindow > 0 {
		return Result{Check: name, Passed: false,
			Details: fmt.Sprintf("%d requests sent within %s of the %d-th failure (first after %s) — breaker absent or not tripping",
				inWindow, tdelta, threshold, firstOffender.Sub(tripAt).Round(time.Millisecond))}, nil
	}

	// Quiet window satisfied. Qualify the verdict when the observation
	// stream ends before the window does: "no requests seen" is weak
	// evidence if the test simply stopped injecting load at the trip point.
	details := fmt.Sprintf("no requests sent for %s after the %d-th failure — breaker open phase observed", tdelta, threshold)
	if last := lastTimestamp(reps, reqs); last.Before(quietUntil) {
		details += fmt.Sprintf(" (observations end %s into the window; extend the test load for stronger evidence)",
			last.Sub(tripAt).Round(time.Millisecond))
	}

	// Half-open phase (optional): once calls resume, at most
	// SuccessThreshold probes before the first success.
	if opts.SuccessThreshold > 0 {
		probes := 0
		for _, r := range reps {
			if !r.Timestamp.After(quietUntil) {
				continue
			}
			probes++
			if !IsFailureStatus(r.Status) {
				break
			}
			if probes > opts.SuccessThreshold {
				return Result{Check: name, Passed: false,
					Details: fmt.Sprintf("%s; but %d calls resumed without a success (> %d allowed probes) — half-open phase not limited",
						details, probes, opts.SuccessThreshold)}, nil
			}
		}
		if probes > 0 {
			details += fmt.Sprintf("; half-open phase resumed with %d probe(s)", probes)
		}
	}
	return Result{Check: name, Passed: true, Details: details}, nil
}

// lastTimestamp returns the latest timestamp across the given record lists.
func lastTimestamp(lists ...RList) time.Time {
	var last time.Time
	for _, rl := range lists {
		for _, r := range rl {
			if r.Timestamp.After(last) {
				last = r.Timestamp
			}
		}
	}
	return last
}

// HasBulkhead checks that src maintains at least rate requests/second to
// each of its dependencies other than slowDst while slowDst is degraded
// (Table 3): a service without bulkhead isolation exhausts its shared
// resources on the slow dependency and starves the others.
func (c *Checker) HasBulkhead(src, slowDst string, rate float64, idPattern string) (Result, error) {
	name := fmt.Sprintf("HasBulkhead(%s, slow=%s, rate=%.1f/s)", src, slowDst, rate)
	dsts, err := c.Destinations(src)
	if err != nil {
		return Result{}, err
	}
	var others []string
	for _, d := range dsts {
		if d != slowDst {
			others = append(others, d)
		}
	}
	if len(others) == 0 {
		return Result{Check: name, Passed: false,
			Details: fmt.Sprintf("%s has no observed dependencies besides %s", src, slowDst)}, nil
	}
	for _, d := range others {
		rl, err := c.GetRequests(src, d, idPattern)
		if err != nil {
			return Result{}, err
		}
		got := RequestRate(rl)
		if got < rate {
			return Result{Check: name, Passed: false,
				Details: fmt.Sprintf("rate to %s fell to %.2f req/s (< %.2f) — no bulkhead isolation", d, got, rate)}, nil
		}
	}
	return Result{Check: name, Passed: true,
		Details: fmt.Sprintf("rate to %d other dependencies stayed >= %.2f req/s", len(others), rate)}, nil
}

// NoCallsTo checks that src made no calls at all to dst on matching flows —
// useful after a Disconnect or Partition scenario to verify a dependency
// was truly isolated, or to verify a caller honours a kill switch.
func (c *Checker) NoCallsTo(src, dst, idPattern string) (Result, error) {
	name := fmt.Sprintf("NoCallsTo(%s, %s)", src, dst)
	// Only existence matters, so count store-side instead of fetching
	// the records; the count is uncapped purely to report how many calls
	// leaked through.
	n, err := c.CountRequests(src, dst, idPattern, 0)
	if err != nil {
		return Result{}, err
	}
	if n > 0 {
		return Result{Check: name, Passed: false,
			Details: fmt.Sprintf("%d calls observed", n)}, nil
	}
	return Result{Check: name, Passed: true, Details: "no calls observed"}, nil
}

// HasFallback checks that src kept answering its own upstreams successfully
// (status < 400) on at least okFraction of replies while the staged failure
// was active — the signature of a working fallback path such as
// ElasticPress falling back from Elasticsearch to MySQL (§7.1).
func (c *Checker) HasFallback(src string, okFraction float64, idPattern string) (Result, error) {
	name := fmt.Sprintf("HasFallback(%s, %.0f%%)", src, okFraction*100)
	rl, err := c.GetReplies("", src, idPattern)
	if err != nil {
		return Result{}, err
	}
	if len(rl) == 0 {
		return Result{Check: name, Passed: false,
			Details: "no replies from " + src + " observed"}, nil
	}
	okCount := 0
	for _, r := range rl {
		if !IsFailureStatus(r.Status) {
			okCount++
		}
	}
	frac := float64(okCount) / float64(len(rl))
	passed := frac >= okFraction
	return Result{Check: name, Passed: passed,
		Details: fmt.Sprintf("%d/%d replies succeeded (%.0f%%)", okCount, len(rl), frac*100)}, nil
}

// HasExponentialBackoff checks that src's retries against dst space out
// over time: among consecutive request send times within one flow, each
// gap must be at least growthFactor times the previous gap (within a 20%
// tolerance for scheduling noise). §2.1 calls for retries to be
// "accompanied with an exponential backoff strategy to avoid overloading
// the callee"; a retrier that hammers at a fixed interval fails this
// check. Flows with fewer than three requests are skipped (no two gaps to
// compare); the check fails if no flow had enough retries to judge.
func (c *Checker) HasExponentialBackoff(src, dst string, growthFactor float64, idPattern string) (Result, error) {
	name := fmt.Sprintf("HasExponentialBackoff(%s, %s, x%.1f)", src, dst, growthFactor)
	if growthFactor <= 1 {
		return Result{}, fmt.Errorf("checker: growth factor %v must exceed 1", growthFactor)
	}
	reqs, err := c.GetRequests(src, dst, idPattern)
	if err != nil {
		return Result{}, err
	}
	// Group send times by flow ID, preserving order.
	byFlow := make(map[string][]time.Time)
	var order []string
	for _, r := range reqs {
		if _, seen := byFlow[r.RequestID]; !seen {
			order = append(order, r.RequestID)
		}
		byFlow[r.RequestID] = append(byFlow[r.RequestID], r.Timestamp)
	}
	const tolerance = 0.8
	judged := 0
	for _, id := range order {
		times := byFlow[id]
		if len(times) < 3 {
			continue
		}
		judged++
		prevGap := times[1].Sub(times[0])
		for i := 2; i < len(times); i++ {
			gap := times[i].Sub(times[i-1])
			if float64(gap) < float64(prevGap)*growthFactor*tolerance {
				return Result{Check: name, Passed: false,
					Details: fmt.Sprintf("flow %q: retry gap %s after %s did not grow by ~x%.1f — fixed-interval retries overload the callee",
						id, gap.Round(time.Millisecond), prevGap.Round(time.Millisecond), growthFactor)}, nil
			}
			prevGap = gap
		}
	}
	if judged == 0 {
		return Result{Check: name, Passed: false,
			Details: fmt.Sprintf("no flow had >= 3 requests from %s to %s; cannot judge backoff", src, dst)}, nil
	}
	return Result{Check: name, Passed: true,
		Details: fmt.Sprintf("retry gaps grew by >= ~x%.1f across %d flows", growthFactor, judged)}, nil
}
