package checker

import (
	"reflect"
	"testing"
	"time"

	"gremlin/internal/eventlog"
)

var t0 = time.Date(2026, 7, 4, 10, 0, 0, 0, time.UTC)

type recOpt func(*eventlog.Record)

func withStatus(s int) recOpt { return func(r *eventlog.Record) { r.Status = s } }
func withLatency(ms float64) recOpt {
	return func(r *eventlog.Record) { r.LatencyMillis = ms }
}
func withInjected(ms float64) recOpt {
	return func(r *eventlog.Record) { r.InjectedDelayMillis = ms; r.FaultAction = "delay" }
}
func gremlinMade() recOpt {
	return func(r *eventlog.Record) { r.GremlinGenerated = true; r.FaultAction = "abort" }
}

func reply(src, dst, id string, at time.Duration, opts ...recOpt) eventlog.Record {
	r := eventlog.Record{
		Timestamp: t0.Add(at), RequestID: id, Src: src, Dst: dst,
		Kind: eventlog.KindReply, Status: 200, LatencyMillis: 10,
	}
	for _, o := range opts {
		o(&r)
	}
	return r
}

func request(src, dst, id string, at time.Duration) eventlog.Record {
	return eventlog.Record{
		Timestamp: t0.Add(at), RequestID: id, Src: src, Dst: dst,
		Kind: eventlog.KindRequest, Method: "GET", URI: "/",
	}
}

func storeWith(t *testing.T, recs ...eventlog.Record) *eventlog.Store {
	t.Helper()
	s := eventlog.NewStore()
	if err := s.Log(recs...); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGetRequestsAndReplies(t *testing.T) {
	s := storeWith(t,
		request("a", "b", "test-1", 0),
		reply("a", "b", "test-1", time.Millisecond),
		request("a", "c", "test-2", 2*time.Millisecond),
		request("a", "b", "prod-7", 3*time.Millisecond),
	)
	c := New(s)

	reqs, err := c.GetRequests("a", "b", "test-*")
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || reqs[0].RequestID != "test-1" {
		t.Fatalf("GetRequests = %+v", reqs)
	}

	reps, err := c.GetReplies("a", "b", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps[0].Kind != eventlog.KindReply {
		t.Fatalf("GetReplies = %+v", reps)
	}

	all, err := c.GetRequests("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("unfiltered GetRequests = %d", len(all))
	}
}

func TestQueriesPropagateErrors(t *testing.T) {
	c := New(eventlog.NewStore())
	if _, err := c.GetRequests("a", "b", "re:["); err == nil {
		t.Fatal("want pattern error")
	}
	if _, err := c.GetReplies("a", "b", "re:["); err == nil {
		t.Fatal("want pattern error")
	}
}

func TestDestinations(t *testing.T) {
	s := storeWith(t,
		request("web", "auth", "t1", 0),
		request("web", "db", "t2", time.Millisecond),
		request("web", "auth", "t3", 2*time.Millisecond),
		request("other", "cache", "t4", 3*time.Millisecond),
	)
	c := New(s)
	dsts, err := c.Destinations("web")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"auth", "db"}; !reflect.DeepEqual(dsts, want) {
		t.Fatalf("Destinations = %v", dsts)
	}
}

func TestNumRequests(t *testing.T) {
	rl := RList{
		reply("a", "b", "1", 0),
		reply("a", "b", "2", 10*time.Second, gremlinMade(), withStatus(503)),
		reply("a", "b", "3", 20*time.Second),
		reply("a", "b", "4", 2*time.Minute),
	}
	if got := NumRequests(rl, 0, true); got != 4 {
		t.Fatalf("all withRule = %d", got)
	}
	if got := NumRequests(rl, 0, false); got != 3 {
		t.Fatalf("all withoutRule = %d (gremlin-made record should be excluded)", got)
	}
	if got := NumRequests(rl, time.Minute, true); got != 3 {
		t.Fatalf("windowed = %d", got)
	}
	if got := NumRequests(nil, 0, true); got != 0 {
		t.Fatalf("empty = %d", got)
	}
}

func TestReplyLatency(t *testing.T) {
	rl := RList{
		reply("a", "b", "1", 0, withLatency(150), withInjected(100)),
		reply("a", "b", "2", time.Second, withLatency(30)),
		reply("a", "b", "3", 2*time.Second, withLatency(0.5), gremlinMade()),
		request("a", "b", "4", 3*time.Second), // requests carry no latency
	}
	withRule := ReplyLatency(rl, true)
	if want := []time.Duration{150 * time.Millisecond, 30 * time.Millisecond, 500 * time.Microsecond}; !reflect.DeepEqual(withRule, want) {
		t.Fatalf("withRule = %v", withRule)
	}
	withoutRule := ReplyLatency(rl, false)
	if want := []time.Duration{50 * time.Millisecond, 30 * time.Millisecond}; !reflect.DeepEqual(withoutRule, want) {
		t.Fatalf("withoutRule = %v", withoutRule)
	}
}

func TestAtMostAtLeastRequests(t *testing.T) {
	rl := RList{
		reply("a", "b", "1", 0),
		reply("a", "b", "2", time.Second),
		reply("a", "b", "3", 2*time.Second),
	}
	if !AtMostRequests(rl, 0, true, 3) {
		t.Fatal("AtMost 3 of 3 should pass")
	}
	if AtMostRequests(rl, 0, true, 2) {
		t.Fatal("AtMost 2 of 3 should fail")
	}
	if !AtLeastRequests(rl, 0, true, 3) {
		t.Fatal("AtLeast 3 of 3 should pass")
	}
	if AtLeastRequests(rl, 0, true, 4) {
		t.Fatal("AtLeast 4 of 3 should fail")
	}
}

func TestCheckStatus(t *testing.T) {
	rl := RList{
		reply("a", "b", "1", 0, withStatus(503), gremlinMade()),
		reply("a", "b", "2", time.Second, withStatus(503), gremlinMade()),
		reply("a", "b", "3", 2*time.Second, withStatus(200)),
	}
	if !CheckStatus(rl, 503, 2, true) {
		t.Fatal("2 x 503 withRule should pass")
	}
	if CheckStatus(rl, 503, 3, true) {
		t.Fatal("3 x 503 should fail")
	}
	if CheckStatus(rl, 503, 1, false) {
		t.Fatal("withRule=false should ignore gremlin-made 503s")
	}
	if !CheckStatus(rl, 200, 1, false) {
		t.Fatal("real 200 should count")
	}
	if !CheckStatus(rl, 404, 0, true) {
		t.Fatal("zero matches required always passes")
	}
}

func TestIsFailureStatusAndCountFailures(t *testing.T) {
	for status, want := range map[int]bool{0: true, 200: false, 399: false, 404: true, 503: true} {
		if got := IsFailureStatus(status); got != want {
			t.Errorf("IsFailureStatus(%d) = %v", status, got)
		}
	}
	rl := RList{
		reply("a", "b", "1", 0, withStatus(503)),
		reply("a", "b", "2", time.Second, withStatus(0), gremlinMade()),
		reply("a", "b", "3", 2*time.Second, withStatus(200)),
	}
	if got := CountFailures(rl, true); got != 2 {
		t.Fatalf("CountFailures withRule = %d", got)
	}
	if got := CountFailures(rl, false); got != 1 {
		t.Fatalf("CountFailures withoutRule = %d", got)
	}
}

func TestRequestRate(t *testing.T) {
	rl := RList{
		request("a", "b", "1", 0),
		request("a", "b", "2", time.Second),
		request("a", "b", "3", 2*time.Second),
		request("a", "b", "4", 3*time.Second),
	}
	got := RequestRate(rl)
	if got < 1.3 || got > 1.4 { // 4 records over 3 s
		t.Fatalf("RequestRate = %v, want ~1.33", got)
	}
	if RequestRate(nil) != 0 || RequestRate(rl[:1]) != 0 {
		t.Fatal("degenerate lists should report 0")
	}
	same := RList{request("a", "b", "1", 0), request("a", "b", "2", 0)}
	if RequestRate(same) != 0 {
		t.Fatal("zero time span should report 0")
	}
}

func TestMaxLatency(t *testing.T) {
	rl := RList{
		reply("a", "b", "1", 0, withLatency(10)),
		reply("a", "b", "2", time.Second, withLatency(250)),
	}
	if got := MaxLatency(rl, true); got != 250*time.Millisecond {
		t.Fatalf("MaxLatency = %v", got)
	}
	if got := MaxLatency(nil, true); got != 0 {
		t.Fatalf("empty MaxLatency = %v", got)
	}
}

func connClose(src, dst, connID, ruleID string, up, down int64, at time.Duration) eventlog.Record {
	return eventlog.Record{
		Timestamp: t0.Add(at), RequestID: connID, Src: src, Dst: dst,
		Kind: eventlog.KindConnClose, BytesUp: up, BytesDown: down,
		FaultRuleID: ruleID,
	}
}

func TestGetConnsAndCountStreamFaults(t *testing.T) {
	s := storeWith(t,
		eventlog.Record{Timestamp: t0, RequestID: "l4-web-1", Src: "web", Dst: "db", Kind: eventlog.KindConnOpen},
		connClose("web", "db", "l4-web-1", "l4-sever-web-db-sever-1", 100, 220, time.Millisecond),
		connClose("web", "db", "l4-web-2", "", 50, 50, 2*time.Millisecond),
		connClose("web", "db", "l4-web-3", "other-rule-1", 1, 1, 3*time.Millisecond),
		connClose("web", "auth", "l4-web-4", "l4-sever-web-db-sever-1", 9, 9, 4*time.Millisecond),
	)
	c := New(s)

	conns, err := c.GetConns("web", "db", "")
	if err != nil {
		t.Fatal(err)
	}
	// Only conn-close records count as completed connections: the open
	// record and the web->auth edge are excluded.
	if len(conns) != 3 {
		t.Fatalf("conns = %+v", conns)
	}
	if conns[0].BytesUp != 100 || conns[0].BytesDown != 220 {
		t.Fatalf("byte counters = %+v", conns[0])
	}

	if n := CountStreamFaults(conns, "l4-sever-web-db"); n != 1 {
		t.Fatalf("prefix count = %d, want 1", n)
	}
	// Empty prefix counts every faulted connection, not the clean one.
	if n := CountStreamFaults(conns, ""); n != 2 {
		t.Fatalf("any-fault count = %d, want 2", n)
	}
	if n := CountStreamFaults(conns, "nope"); n != 0 {
		t.Fatalf("miss count = %d, want 0", n)
	}
}
