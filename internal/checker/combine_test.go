package checker

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestStatusSeenConsume(t *testing.T) {
	rl := RList{
		reply("a", "b", "1", 0, withStatus(200)),
		reply("a", "b", "2", 1*time.Second, withStatus(503)),
		reply("a", "b", "3", 2*time.Second, withStatus(503)),
		reply("a", "b", "4", 3*time.Second, withStatus(200)),
	}
	consumed, ok := StatusSeen{Status: 503, NumMatch: 2, WithRule: true}.Consume(rl)
	if !ok || consumed != 3 {
		t.Fatalf("Consume = (%d, %v), want (3, true)", consumed, ok)
	}
	_, ok = StatusSeen{Status: 503, NumMatch: 3, WithRule: true}.Consume(rl)
	if ok {
		t.Fatal("3 x 503 not present; want failure")
	}
	consumed, ok = StatusSeen{Status: 503, NumMatch: 0, WithRule: true}.Consume(rl)
	if !ok || consumed != 0 {
		t.Fatalf("zero matches = (%d, %v)", consumed, ok)
	}
}

func TestFailuresSeenConsume(t *testing.T) {
	rl := RList{
		reply("a", "b", "1", 0, withStatus(200)),
		reply("a", "b", "2", 1*time.Second, withStatus(0)),   // severed
		reply("a", "b", "3", 2*time.Second, withStatus(404)), // client error
		reply("a", "b", "4", 3*time.Second, withStatus(200)),
	}
	consumed, ok := FailuresSeen{NumMatch: 2, WithRule: true}.Consume(rl)
	if !ok || consumed != 3 {
		t.Fatalf("Consume = (%d, %v), want (3, true)", consumed, ok)
	}
}

func TestAtMostConsume(t *testing.T) {
	rl := RList{
		reply("a", "b", "1", 0),
		reply("a", "b", "2", 10*time.Second),
		reply("a", "b", "3", 2*time.Minute), // outside a 1min window
	}
	consumed, ok := AtMost{Tdelta: time.Minute, WithRule: true, Num: 2}.Consume(rl)
	if !ok || consumed != 2 {
		t.Fatalf("Consume = (%d, %v), want (2, true)", consumed, ok)
	}
	_, ok = AtMost{Tdelta: time.Minute, WithRule: true, Num: 1}.Consume(rl)
	if ok {
		t.Fatal("2 records in window > 1; want failure")
	}
	consumed, ok = AtMost{Tdelta: time.Minute, WithRule: true, Num: 5}.Consume(nil)
	if !ok || consumed != 0 {
		t.Fatalf("empty list = (%d, %v)", consumed, ok)
	}
}

func TestAtLeastConsume(t *testing.T) {
	rl := RList{
		reply("a", "b", "1", 0),
		reply("a", "b", "2", 10*time.Second),
	}
	if _, ok := (AtLeast{Tdelta: time.Minute, WithRule: true, Num: 2}).Consume(rl); !ok {
		t.Fatal("want pass")
	}
	if _, ok := (AtLeast{Tdelta: time.Minute, WithRule: true, Num: 3}).Consume(rl); ok {
		t.Fatal("want failure")
	}
}

func TestQuietForWithoutBoundary(t *testing.T) {
	rl := RList{
		reply("a", "b", "1", 0),
		reply("a", "b", "2", 2*time.Minute),
	}
	if _, ok := (QuietFor{Tdelta: time.Minute}).Consume(rl); !ok {
		t.Fatal("2min gap >= 1min; want pass")
	}
	if _, ok := (QuietFor{Tdelta: 5 * time.Minute}).Consume(rl); ok {
		t.Fatal("2min gap < 5min; want failure")
	}
	if _, ok := (QuietFor{Tdelta: time.Minute}).Consume(nil); !ok {
		t.Fatal("empty list trivially quiet")
	}
	if _, ok := (QuietFor{Tdelta: time.Minute}).Consume(rl[:1]); !ok {
		t.Fatal("single record trivially quiet")
	}
}

func TestCombineBoundedRetriesScenario(t *testing.T) {
	// The paper's HasBoundedRetries: 5 x 503, then at most 5 more calls
	// within a minute.
	var rl RList
	for i := 0; i < 5; i++ {
		rl = append(rl, reply("a", "b", "t", time.Duration(i)*time.Second, withStatus(503), gremlinMade()))
	}
	for i := 0; i < 4; i++ { // four retries: bounded
		rl = append(rl, reply("a", "b", "t", time.Duration(6+i)*time.Second, withStatus(503), gremlinMade()))
	}
	ok := Combine(rl,
		StatusSeen{Status: 503, NumMatch: 5, WithRule: true},
		AtMost{Tdelta: time.Minute, WithRule: true, Num: 5},
	)
	if !ok {
		t.Fatal("bounded retries should pass")
	}

	// Unbounded: 30 more calls inside the window.
	rl = rl[:5]
	for i := 0; i < 30; i++ {
		rl = append(rl, reply("a", "b", "t", time.Duration(6+i)*time.Second, withStatus(503), gremlinMade()))
	}
	ok = Combine(rl,
		StatusSeen{Status: 503, NumMatch: 5, WithRule: true},
		AtMost{Tdelta: time.Minute, WithRule: true, Num: 5},
	)
	if ok {
		t.Fatal("unbounded retries should fail")
	}
}

func TestCombineCircuitBreakerScenarioWithBoundary(t *testing.T) {
	// 5 failures, then the caller backs off for a minute before probing
	// again: QuietFor must measure the gap from the last consumed failure.
	var rl RList
	for i := 0; i < 5; i++ {
		rl = append(rl, reply("a", "b", "t", time.Duration(i)*time.Second, withStatus(503), gremlinMade()))
	}
	rl = append(rl, reply("a", "b", "t", 4*time.Second+90*time.Second, withStatus(200))) // probe after 90s

	ok, explain := CombineTrace(rl,
		FailuresSeen{NumMatch: 5, WithRule: true},
		QuietFor{Tdelta: time.Minute},
	)
	if !ok {
		t.Fatalf("breaker with 90s quiet period should pass: %s", explain)
	}

	// A caller that keeps retrying 1s after the failures fails the check.
	noBreaker := append(rl[:5:5], reply("a", "b", "t", 5*time.Second, withStatus(503), gremlinMade()))
	ok, _ = CombineTrace(noBreaker,
		FailuresSeen{NumMatch: 5, WithRule: true},
		QuietFor{Tdelta: time.Minute},
	)
	if ok {
		t.Fatal("caller without breaker should fail")
	}
}

func TestCombineTraceOutput(t *testing.T) {
	rl := RList{reply("a", "b", "1", 0, withStatus(503))}
	ok, explain := CombineTrace(rl, StatusSeen{Status: 503, NumMatch: 1, WithRule: true})
	if !ok {
		t.Fatal("want pass")
	}
	if !strings.Contains(explain, "all steps passed") || !strings.Contains(explain, "CheckStatus") {
		t.Fatalf("explain = %q", explain)
	}
	ok, explain = CombineTrace(rl, StatusSeen{Status: 404, NumMatch: 1, WithRule: true})
	if ok || !strings.Contains(explain, "FAILED") {
		t.Fatalf("want failure trace, got %q", explain)
	}
}

func TestCombineNoSteps(t *testing.T) {
	if !Combine(nil) {
		t.Fatal("empty combine should pass")
	}
}

func TestStepDescriptions(t *testing.T) {
	steps := []Step{
		StatusSeen{Status: 503, NumMatch: 5, WithRule: true},
		FailuresSeen{NumMatch: 3},
		AtMost{Tdelta: time.Minute, Num: 5},
		AtLeast{Tdelta: time.Minute, Num: 1},
		QuietFor{Tdelta: time.Second},
	}
	for _, s := range steps {
		if s.Describe() == "" {
			t.Errorf("%T has empty description", s)
		}
	}
}

// Property: every step consumes at most the records it was given, and a
// chain of steps never panics.
func TestCombineConsumptionBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(n uint8, threshold uint8) bool {
		var rl RList
		for i := 0; i < int(n%40); i++ {
			status := 200
			if rng.Intn(2) == 0 {
				status = 503
			}
			rl = append(rl, reply("a", "b", "t", time.Duration(i)*time.Second, withStatus(status)))
		}
		steps := []Step{
			StatusSeen{Status: 503, NumMatch: int(threshold % 10), WithRule: true},
			AtMost{Tdelta: time.Minute, WithRule: true, Num: 5},
			QuietFor{Tdelta: time.Second},
		}
		rest := rl
		for _, s := range steps {
			consumed, ok := s.Consume(rest)
			if consumed < 0 || consumed > len(rest) {
				return false
			}
			if !ok {
				break
			}
			rest = rest[consumed:]
		}
		Combine(rl, steps...) // must not panic
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
