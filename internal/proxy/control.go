package proxy

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gremlin/internal/httpx"
	"gremlin/internal/metrics"
	"gremlin/internal/rules"
)

// InfoBody describes an agent to the control plane (GET /v1/info).
// RuleSet carries the agent's current rule-set generation and content
// hash, which is how reconcilers detect drift (a restarted agent reports
// generation zero) without fetching rule bodies.
type InfoBody struct {
	Service   string              `json:"service"`
	AgentID   string              `json:"agentId"`
	Routes    []RouteInfo         `json:"routes"`
	Rules     int                 `json:"rules"`
	RuleSet   rules.RuleSetStatus `json:"ruleset"`
	Stats     Stats               `json:"stats"`
	RuleStats []rules.RuleStat    `json:"ruleStats,omitempty"`
	Extra     map[string]string   `json:"extra,omitempty"`
}

// RuleSetBody is the GET /v1/ruleset response: the full versioned rule
// state plus its content hash.
type RuleSetBody struct {
	Generation uint64       `json:"generation"`
	Hash       string       `json:"hash"`
	Rules      []rules.Rule `json:"rules"`
	// Leased reports whether a TTL timer is armed: the rules will
	// self-expire unless a PUT renews them first.
	Leased bool `json:"leased,omitempty"`
}

// conflictBody is the 409/412 payload: the error plus the agent's current
// version, so a reconciler can retry without an extra round trip.
type conflictBody struct {
	Error   string              `json:"error"`
	Current rules.RuleSetStatus `json:"current"`
}

// RouteInfo is one route as reported by the control API. Layer is "l4"
// for stream-relay routes and empty (implicitly "http") for proxy
// routes, mirroring the rule schema's back-compat convention.
type RouteInfo struct {
	Dst        string      `json:"dst"`
	ListenAddr string      `json:"listenAddr"`
	Layer      rules.Layer `json:"layer,omitempty"`
}

// controlHandler builds the agent's REST control API. This is the
// "well-defined interface to the control plane" of the paper's Table 2: the
// Failure Orchestrator installs rules here.
func (a *Agent) controlHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/info", a.handleInfo)
	mux.HandleFunc("GET /v1/ruleset", a.handleGetRuleSet)
	mux.HandleFunc("PUT /v1/ruleset", a.handlePutRuleSet)
	mux.HandleFunc("GET /v1/rules", a.handleListRules)
	mux.HandleFunc("POST /v1/rules", a.handleInstallRules)
	mux.HandleFunc("DELETE /v1/rules", a.handleClearRules)
	mux.HandleFunc("DELETE /v1/rules/{id}", a.handleRemoveRule)
	mux.HandleFunc("POST /v1/flush", a.handleFlush)
	mux.HandleFunc("GET /metrics", a.handleMetrics)
	return mux
}

func (a *Agent) handleInfo(w http.ResponseWriter, _ *http.Request) {
	info := InfoBody{
		Service:   a.cfg.ServiceName,
		AgentID:   a.cfg.agentID(),
		Rules:     a.matcher.Len(),
		RuleSet:   a.matcher.Status(),
		Stats:     a.Stats(),
		RuleStats: a.matcher.RuleStats(),
	}
	for _, rp := range a.routes {
		info.Routes = append(info.Routes, RouteInfo{Dst: rp.route.Dst, ListenAddr: rp.server.Addr()})
	}
	for dst, relay := range a.relays {
		info.Routes = append(info.Routes, RouteInfo{Dst: dst, ListenAddr: relay.Addr(), Layer: rules.LayerL4})
	}
	httpx.WriteJSON(w, http.StatusOK, info)
}

func (a *Agent) handleGetRuleSet(w http.ResponseWriter, _ *http.Request) {
	set := a.matcher.RuleSet()
	if set.Rules == nil {
		set.Rules = []rules.Rule{}
	}
	a.leaseMu.Lock()
	leased := a.leaseTimer != nil
	a.leaseMu.Unlock()
	httpx.WriteJSON(w, http.StatusOK, RuleSetBody{
		Generation: set.Generation,
		Hash:       a.matcher.Hash(),
		Rules:      set.Rules,
		Leased:     leased,
	})
}

// handlePutRuleSet is the declarative install path: an idempotent atomic
// swap of the agent's whole rule state, versioned by generation. An
// If-Match header (the generation the caller observed) turns the apply
// into a compare-and-swap; without it, stale or conflicting generations
// are rejected with 409 and a failed precondition with 412, both carrying
// the agent's current version.
func (a *Agent) handlePutRuleSet(w http.ResponseWriter, r *http.Request) {
	var set rules.RuleSet
	if err := httpx.ReadJSON(w, r, &set); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ifMatch := rules.NoMatch
	if h := strings.Trim(r.Header.Get("If-Match"), `"`); h != "" {
		v, err := strconv.ParseUint(h, 10, 64)
		if err != nil {
			httpx.WriteError(w, http.StatusBadRequest, "bad If-Match %q: %v", h, err)
			return
		}
		ifMatch = v
	}
	st, err := a.ApplyRuleSet(set, ifMatch)
	switch {
	case errors.Is(err, rules.ErrPreconditionFailed):
		httpx.WriteJSON(w, http.StatusPreconditionFailed, conflictBody{Error: err.Error(), Current: st})
	case errors.Is(err, rules.ErrStaleGeneration), errors.Is(err, rules.ErrGenerationConflict):
		httpx.WriteJSON(w, http.StatusConflict, conflictBody{Error: err.Error(), Current: st})
	case err != nil:
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
	default:
		httpx.WriteJSON(w, http.StatusOK, st)
	}
}

func (a *Agent) handleListRules(w http.ResponseWriter, _ *http.Request) {
	list := a.matcher.List()
	if list == nil {
		list = []rules.Rule{}
	}
	httpx.WriteJSON(w, http.StatusOK, list)
}

func (a *Agent) handleInstallRules(w http.ResponseWriter, r *http.Request) {
	var batch []rules.Rule
	if err := httpx.ReadJSON(w, r, &batch); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := a.InstallRules(batch...); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	httpx.WriteJSON(w, http.StatusCreated, map[string]int{"installed": len(batch)})
}

func (a *Agent) handleClearRules(w http.ResponseWriter, _ *http.Request) {
	httpx.WriteJSON(w, http.StatusOK, map[string]int{"removed": a.matcher.Clear()})
}

func (a *Agent) handleRemoveRule(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !a.matcher.Remove(id) {
		httpx.WriteError(w, http.StatusNotFound, "rule %q not installed", id)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]int{"removed": 1})
}

func (a *Agent) handleFlush(w http.ResponseWriter, _ *http.Request) {
	if f, ok := a.sink.(interface{ Flush() error }); ok {
		if err := f.Flush(); err != nil {
			httpx.WriteError(w, http.StatusInternalServerError, "flush: %v", err)
			return
		}
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "flushed"})
}

// handleMetrics renders the agent's state as Prometheus text exposition:
// the data-path counters, per-rule match/injection tallies, the request
// latency histogram, and the log-shipping health gauges.
func (a *Agent) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := a.Stats()
	mw := metrics.NewWriter()
	svc := a.cfg.ServiceName
	mw.Counter("gremlin_agent_proxied_total", "Messages handled on the data path.", float64(st.Proxied), "service", svc)
	mw.Counter("gremlin_agent_aborted_total", "Messages terminated by an Abort rule with an HTTP error code.", float64(st.Aborted), "service", svc)
	mw.Counter("gremlin_agent_severed_total", "Connections cut by Abort rules emulating a crash.", float64(st.Severed), "service", svc)
	mw.Counter("gremlin_agent_delayed_total", "Messages held back by Delay rules.", float64(st.Delayed), "service", svc)
	mw.Counter("gremlin_agent_modified_total", "Messages rewritten by Modify rules.", float64(st.Modified), "service", svc)
	mw.Counter("gremlin_agent_streamed_total", "Replies relayed on the unbuffered fast path.", float64(st.Streamed), "service", svc)
	mw.Counter("gremlin_agent_spans_minted_total", "Span IDs minted for causal tracing, one per proxied hop.", float64(st.SpansMinted), "service", svc)
	mw.Counter("gremlin_agent_ei_truncated_total", "Hops whose execution index hit the depth or byte bound and was marker-terminated instead of grown.", float64(st.EITruncated), "service", svc)
	mw.Gauge("gremlin_agent_ruleset_generation", "Current rule-set generation; reconcilers compare it against the desired generation to detect drift.", float64(a.matcher.Generation()), "service", svc)
	mw.Gauge("gremlin_agent_ruleset_rules", "Rules currently installed.", float64(a.matcher.Len()), "service", svc)
	mw.Counter("gremlin_agent_ruleset_expired_total", "Leased rule sets the agent cleared itself after their TTL lapsed without renewal.", float64(st.RulesetExpirations), "service", svc)
	for _, rs := range a.matcher.RuleStats() {
		mw.Counter("gremlin_rule_matched_total", "Messages that matched a rule's criteria, before probability sampling.", float64(rs.Matched), "service", svc, "rule", rs.ID)
		mw.Counter("gremlin_rule_fired_total", "Fault injections actually applied by a rule.", float64(rs.Fired), "service", svc, "rule", rs.ID)
	}
	mw.Histogram("gremlin_agent_request_duration_seconds", "Wall time per proxied exchange, including injected delays.", a.latency.Snapshot(), "service", svc)
	mw.Gauge("gremlin_agent_log_dropped", "Records dropped by the log-shipping buffer.", float64(st.LogDropped), "service", svc)
	mw.Gauge("gremlin_agent_log_flushes", "Batches shipped to the event store.", float64(st.LogFlushes), "service", svc)
	mw.Gauge("gremlin_agent_log_retries", "Failed ship attempts that were retried.", float64(st.LogRetries), "service", svc)
	mw.Gauge("gremlin_agent_log_batch_records", "Records shipped in successful flush batches.", float64(st.LogBatchRecords), "service", svc)
	mw.Gauge("gremlin_agent_log_max_batch", "Largest batch shipped in one flush.", float64(st.LogMaxBatch), "service", svc)
	// L4 plane. Emitted (zero-valued) even without L4 routes so the
	// metric inventory is uniform across agents.
	l4 := a.L4Stats()
	mw.Counter("gremlin_agent_l4_connections_total", "TCP connections accepted by the agent's stream relays.", float64(l4.Conns), "service", svc)
	mw.Gauge("gremlin_agent_l4_open_connections", "Currently relayed TCP connections.", float64(l4.Open), "service", svc)
	mw.Counter("gremlin_agent_l4_bytes_total", "Bytes relayed by the L4 plane, by direction.", float64(l4.BytesUp), "service", svc, "direction", "up")
	mw.Counter("gremlin_agent_l4_bytes_total", "Bytes relayed by the L4 plane, by direction.", float64(l4.BytesDown), "service", svc, "direction", "down")
	for _, fam := range []struct {
		action string
		count  int64
	}{
		{"sever", l4.Severed},
		{"halfopen", l4.HalfOpened},
		{"throttle", l4.Throttled},
		{"jitter", l4.Jittered},
		{"refuse", l4.Refused},
		{"connect_delay", l4.ConnectDelayed},
	} {
		mw.Counter("gremlin_agent_l4_faults_total", "Stream faults actuated by the L4 plane, by action.", float64(fam.count), "service", svc, "action", fam.action)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = mw.WriteTo(w)
}

// InstallRules validates and installs rules on this agent. Every rule must
// name this agent's service as its source and one of the agent's routes as
// its destination — the orchestrator ships rules only to the agents they
// concern, and a mismatch indicates a mis-targeted rule.
func (a *Agent) InstallRules(batch ...rules.Rule) error {
	for _, rule := range batch {
		if err := a.validateTarget(rule); err != nil {
			return err
		}
	}
	return a.matcher.Install(batch...)
}

// validateTarget checks that a rule belongs on this agent at all: the
// Src must be this service and the Dst a route on the rule's layer (an
// L4 rule can only actuate on a stream relay, an HTTP rule only on a
// proxy route).
func (a *Agent) validateTarget(rule rules.Rule) error {
	if err := rule.Validate(); err != nil {
		return err
	}
	if rule.Src != a.cfg.ServiceName {
		return fmt.Errorf("proxy: rule %q targets source %q but this agent serves %q",
			rule.ID, rule.Src, a.cfg.ServiceName)
	}
	if rule.EffectiveLayer() == rules.LayerL4 {
		if _, ok := a.relays[rule.Dst]; !ok {
			return fmt.Errorf("proxy: l4 rule %q targets destination %q but agent for %q has no such l4 route",
				rule.ID, rule.Dst, a.cfg.ServiceName)
		}
		return nil
	}
	if _, ok := a.routes[rule.Dst]; !ok {
		return fmt.Errorf("proxy: rule %q targets destination %q but agent for %q has no such route",
			rule.ID, rule.Dst, a.cfg.ServiceName)
	}
	return nil
}

// ApplyRuleSet atomically replaces the agent's whole rule state with a
// versioned rule set (see rules.Matcher.ApplyRuleSet for the
// generation/If-Match semantics). Any PUT — including an identical no-op
// re-send — renews the set's lease when it carries a TTL; a lapsed lease
// makes the agent clear its rules itself.
func (a *Agent) ApplyRuleSet(set rules.RuleSet, ifMatch uint64) (rules.RuleSetStatus, error) {
	for _, rule := range set.Rules {
		if err := a.validateTarget(rule); err != nil {
			return a.matcher.Status(), err
		}
	}
	// leaseMu spans the apply and the timer update so a racing PUT cannot
	// leave a timer armed for a rule set it did not ship.
	a.leaseMu.Lock()
	defer a.leaseMu.Unlock()
	st, err := a.matcher.ApplyRuleSet(set, ifMatch)
	if err != nil {
		return st, err
	}
	if a.leaseTimer != nil {
		a.leaseTimer.Stop()
		a.leaseTimer = nil
	}
	if ttl := set.TTL(); ttl > 0 && len(set.Rules) > 0 {
		a.leaseTimer = time.AfterFunc(ttl, a.expireRuleSet)
	}
	return st, nil
}

// expireRuleSet fires when a leased rule set was not renewed in time: the
// agent clears all rules itself (a versioned compare-and-swap on the
// generation it is expiring, so a PUT that slipped in concurrently — and
// re-armed or disarmed the lease — is never clobbered).
func (a *Agent) expireRuleSet() {
	a.leaseMu.Lock()
	defer a.leaseMu.Unlock()
	cur := a.matcher.Status()
	if cur.Rules == 0 {
		return
	}
	if _, err := a.matcher.ApplyRuleSet(rules.RuleSet{Generation: cur.Generation + 1}, cur.Generation); err == nil {
		a.nExpired.Add(1)
	}
}
