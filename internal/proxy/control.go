package proxy

import (
	"fmt"
	"net/http"

	"gremlin/internal/httpx"
	"gremlin/internal/rules"
)

// InfoBody describes an agent to the control plane (GET /v1/info).
type InfoBody struct {
	Service string            `json:"service"`
	AgentID string            `json:"agentId"`
	Routes  []RouteInfo       `json:"routes"`
	Rules   int               `json:"rules"`
	Stats   Stats             `json:"stats"`
	Extra   map[string]string `json:"extra,omitempty"`
}

// RouteInfo is one route as reported by the control API.
type RouteInfo struct {
	Dst        string `json:"dst"`
	ListenAddr string `json:"listenAddr"`
}

// controlHandler builds the agent's REST control API. This is the
// "well-defined interface to the control plane" of the paper's Table 2: the
// Failure Orchestrator installs rules here.
func (a *Agent) controlHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/info", a.handleInfo)
	mux.HandleFunc("GET /v1/rules", a.handleListRules)
	mux.HandleFunc("POST /v1/rules", a.handleInstallRules)
	mux.HandleFunc("DELETE /v1/rules", a.handleClearRules)
	mux.HandleFunc("DELETE /v1/rules/{id}", a.handleRemoveRule)
	mux.HandleFunc("POST /v1/flush", a.handleFlush)
	return mux
}

func (a *Agent) handleInfo(w http.ResponseWriter, _ *http.Request) {
	info := InfoBody{
		Service: a.cfg.ServiceName,
		AgentID: a.cfg.agentID(),
		Rules:   a.matcher.Len(),
		Stats:   a.Stats(),
	}
	for _, rp := range a.routes {
		info.Routes = append(info.Routes, RouteInfo{Dst: rp.route.Dst, ListenAddr: rp.server.Addr()})
	}
	httpx.WriteJSON(w, http.StatusOK, info)
}

func (a *Agent) handleListRules(w http.ResponseWriter, _ *http.Request) {
	list := a.matcher.List()
	if list == nil {
		list = []rules.Rule{}
	}
	httpx.WriteJSON(w, http.StatusOK, list)
}

func (a *Agent) handleInstallRules(w http.ResponseWriter, r *http.Request) {
	var batch []rules.Rule
	if err := httpx.ReadJSON(w, r, &batch); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := a.InstallRules(batch...); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	httpx.WriteJSON(w, http.StatusCreated, map[string]int{"installed": len(batch)})
}

func (a *Agent) handleClearRules(w http.ResponseWriter, _ *http.Request) {
	httpx.WriteJSON(w, http.StatusOK, map[string]int{"removed": a.matcher.Clear()})
}

func (a *Agent) handleRemoveRule(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !a.matcher.Remove(id) {
		httpx.WriteError(w, http.StatusNotFound, "rule %q not installed", id)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]int{"removed": 1})
}

func (a *Agent) handleFlush(w http.ResponseWriter, _ *http.Request) {
	if f, ok := a.sink.(interface{ Flush() error }); ok {
		if err := f.Flush(); err != nil {
			httpx.WriteError(w, http.StatusInternalServerError, "flush: %v", err)
			return
		}
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "flushed"})
}

// InstallRules validates and installs rules on this agent. Every rule must
// name this agent's service as its source and one of the agent's routes as
// its destination — the orchestrator ships rules only to the agents they
// concern, and a mismatch indicates a mis-targeted rule.
func (a *Agent) InstallRules(batch ...rules.Rule) error {
	for _, rule := range batch {
		if err := rule.Validate(); err != nil {
			return err
		}
		if rule.Src != a.cfg.ServiceName {
			return fmt.Errorf("proxy: rule %q targets source %q but this agent serves %q",
				rule.ID, rule.Src, a.cfg.ServiceName)
		}
		if _, ok := a.routes[rule.Dst]; !ok {
			return fmt.Errorf("proxy: rule %q targets destination %q but agent for %q has no such route",
				rule.ID, rule.Dst, a.cfg.ServiceName)
		}
	}
	return a.matcher.Install(batch...)
}
