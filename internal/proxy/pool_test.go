package proxy

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestTargetPoolRoundRobinWhenIdle(t *testing.T) {
	p := newTargetPool([]string{"a", "b", "c"})
	counts := map[string]int{}
	for i := 0; i < 9; i++ {
		addr, release, ok := p.pick()
		if !ok {
			t.Fatal("pool empty")
		}
		release()
		counts[addr]++
	}
	for _, addr := range []string{"a", "b", "c"} {
		if counts[addr] != 3 {
			t.Fatalf("idle pool should round-robin evenly, got %v", counts)
		}
	}
}

func TestTargetPoolPrefersLeastPending(t *testing.T) {
	p := newTargetPool([]string{"busy", "idle"})
	// Occupy "busy" with two in-flight requests.
	p.targets[0].pending.Add(2)
	for i := 0; i < 4; i++ {
		addr, release, _ := p.pick()
		if addr != "idle" {
			t.Fatalf("pick %d chose %q despite a less-pending replica", i, addr)
		}
		release()
	}
}

func TestTargetPoolSetPreservesPending(t *testing.T) {
	p := newTargetPool([]string{"a", "b"})
	addr, release, _ := p.pick()
	defer release()
	p.set([]string{"a", "b", "c"})
	for _, target := range p.targets {
		if target.addr == addr && target.pending.Load() != 1 {
			t.Fatalf("retained target %q lost its pending count", addr)
		}
	}
	if got := p.snapshot(); len(got) != 3 {
		t.Fatalf("snapshot = %v", got)
	}
}

func TestTargetPoolEmpty(t *testing.T) {
	p := newTargetPool(nil)
	if _, _, ok := p.pick(); ok {
		t.Fatal("empty pool returned a target")
	}
	p.set([]string{"a", "a", "a"}) // duplicates collapse
	if got := p.snapshot(); len(got) != 1 {
		t.Fatalf("snapshot = %v", got)
	}
}

func TestTargetPoolConcurrent(t *testing.T) {
	p := newTargetPool([]string{"a", "b", "c"})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if w == 0 && i%50 == 0 {
					p.set([]string{"a", "b", fmt.Sprintf("d%d", i)})
					continue
				}
				if _, release, ok := p.pick(); ok {
					release()
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestAgentDrainAndRestore exercises the health-checker contract end to
// end: draining a replica routes traffic to the survivor, an empty pool
// answers 502, and restoring the replica resumes service.
func TestAgentDrainAndRestore(t *testing.T) {
	var hits1, hits2 counter
	b1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits1.inc()
	}))
	defer b1.Close()
	b2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits2.inc()
	}))
	defer b2.Close()
	addr1, addr2 := b1.Listener.Addr().String(), b2.Listener.Addr().String()

	a, err := New(Config{
		ServiceName: "web",
		Routes:      []Route{{Dst: "api", ListenAddr: "127.0.0.1:0", Targets: []string{addr1, addr2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	defer a.Close()
	routeURL, err := a.RouteURL("api")
	if err != nil {
		t.Fatal(err)
	}

	get := func() int {
		resp, err := http.Get(routeURL + "/ping")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	for i := 0; i < 4; i++ {
		if got := get(); got != http.StatusOK {
			t.Fatalf("status = %d", got)
		}
	}
	if hits1.get() == 0 || hits2.get() == 0 {
		t.Fatalf("load not balanced: %d/%d", hits1.get(), hits2.get())
	}

	// Drain replica 1: all traffic lands on replica 2.
	if err := a.SetRouteTargets("api", []string{addr2}); err != nil {
		t.Fatal(err)
	}
	before := hits1.get()
	for i := 0; i < 4; i++ {
		if got := get(); got != http.StatusOK {
			t.Fatalf("status after drain = %d", got)
		}
	}
	if hits1.get() != before {
		t.Fatal("drained replica still receiving traffic")
	}

	// Drain everything: the route answers 502.
	if err := a.SetRouteTargets("api", nil); err != nil {
		t.Fatal(err)
	}
	if got := get(); got != http.StatusBadGateway {
		t.Fatalf("fully drained route returned %d, want 502", got)
	}

	// Restore: service resumes.
	if err := a.SetRouteTargets("api", []string{addr1, addr2}); err != nil {
		t.Fatal(err)
	}
	if got := get(); got != http.StatusOK {
		t.Fatalf("status after restore = %d", got)
	}
	if targets, err := a.RouteTargets("api"); err != nil || len(targets) != 2 {
		t.Fatalf("RouteTargets = %v, %v", targets, err)
	}
	if err := a.SetRouteTargets("nosuch", nil); err == nil {
		t.Fatal("unknown route should error")
	}
}

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
