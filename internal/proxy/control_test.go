package proxy_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"gremlin/internal/agentapi"
	"gremlin/internal/eventlog"
	"gremlin/internal/metrics"
	"gremlin/internal/proxy"
	"gremlin/internal/rules"
)

// startAgent builds a control-enabled agent for service "client" routed at
// a throwaway backend.
func startAgent(t *testing.T, sink eventlog.Sink) (*proxy.Agent, *agentapi.Client) {
	t.Helper()
	a, err := proxy.New(proxy.Config{
		ServiceName: "client",
		AgentID:     "client-agent-1",
		ControlAddr: "127.0.0.1:0",
		Routes: []proxy.Route{{
			Dst:        "server",
			ListenAddr: "127.0.0.1:0",
			Targets:    []string{"127.0.0.1:1"},
		}},
		Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	t.Cleanup(func() {
		if err := a.Close(); err != nil {
			t.Errorf("close agent: %v", err)
		}
	})
	return a, agentapi.New(a.ControlURL(), nil)
}

func abortRule(id string) rules.Rule {
	return rules.Rule{
		ID: id, Src: "client", Dst: "server",
		Action: rules.ActionAbort, Pattern: "test-*", ErrorCode: 503,
	}
}

func TestControlInfo(t *testing.T) {
	ctx := context.Background()
	a, c := startAgent(t, nil)
	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Service != "client" || info.AgentID != "client-agent-1" {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Routes) != 1 || info.Routes[0].Dst != "server" {
		t.Fatalf("routes = %+v", info.Routes)
	}
	addr, err := a.RouteAddr("server")
	if err != nil {
		t.Fatal(err)
	}
	if info.Routes[0].ListenAddr != addr {
		t.Fatalf("route addr %q != %q", info.Routes[0].ListenAddr, addr)
	}
	if info.RuleSet.Generation != 0 || info.RuleSet.Hash == "" {
		t.Fatalf("fresh agent ruleset status = %+v", info.RuleSet)
	}
}

func TestControlInstallListRemoveClear(t *testing.T) {
	ctx := context.Background()
	_, c := startAgent(t, nil)

	if err := c.InstallRules(ctx, abortRule("r1"), abortRule("r2")); err != nil {
		t.Fatal(err)
	}
	list, err := c.ListRules(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("ListRules = %d rules", len(list))
	}

	if err := c.RemoveRule(ctx, "r1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveRule(ctx, "r1"); err == nil {
		t.Fatal("removing a missing rule should error")
	}

	n, err := c.ClearRules(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("ClearRules = %d, want 1", n)
	}
	list, err = c.ListRules(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("rules remain after clear: %+v", list)
	}
}

func TestControlInstallEmptyBatchIsLocalNoop(t *testing.T) {
	c := agentapi.New("http://127.0.0.1:1", &http.Client{Timeout: 100 * time.Millisecond})
	if err := c.InstallRules(context.Background()); err != nil {
		t.Fatalf("empty install should not touch the network: %v", err)
	}
}

func TestControlInstallRejectsBadRules(t *testing.T) {
	ctx := context.Background()
	_, c := startAgent(t, nil)
	bad := abortRule("r1")
	bad.Src = "someoneelse"
	if err := c.InstallRules(ctx, bad); err == nil {
		t.Fatal("want error for mis-targeted rule")
	}
	list, err := c.ListRules(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatal("failed install must not leave rules behind")
	}
}

func TestControlHealthz(t *testing.T) {
	ctx := context.Background()
	_, c := startAgent(t, nil)
	if !c.Healthy(ctx) {
		t.Fatal("agent should be healthy")
	}
	down := agentapi.New("http://127.0.0.1:1", &http.Client{Timeout: 100 * time.Millisecond})
	if down.Healthy(ctx) {
		t.Fatal("unreachable agent should be unhealthy")
	}
}

func TestControlFlushBufferedSink(t *testing.T) {
	store := eventlog.NewStore()
	buffered := eventlog.NewBufferedSink(store, 1000)
	_, c := startAgent(t, buffered)

	if err := buffered.Log(eventlog.Record{Src: "client", Dst: "server", Kind: eventlog.KindRequest}); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Fatal("record should still be buffered")
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("store has %d records after flush, want 1", store.Len())
	}
}

func TestControlFlushUnbufferedSinkOK(t *testing.T) {
	_, c := startAgent(t, eventlog.NewStore())
	if err := c.Flush(context.Background()); err != nil {
		t.Fatalf("flush on plain sink should succeed: %v", err)
	}
}

func TestClientErrorsAgainstDownAgent(t *testing.T) {
	ctx := context.Background()
	c := agentapi.New("http://127.0.0.1:1", &http.Client{Timeout: 100 * time.Millisecond})
	if _, err := c.Info(ctx); err == nil {
		t.Fatal("Info should fail")
	}
	if err := c.InstallRules(ctx, abortRule("r")); err == nil {
		t.Fatal("InstallRules should fail")
	}
	if _, err := c.ListRules(ctx); err == nil {
		t.Fatal("ListRules should fail")
	}
	if err := c.RemoveRule(ctx, "r"); err == nil {
		t.Fatal("RemoveRule should fail")
	}
	if _, err := c.ClearRules(ctx); err == nil {
		t.Fatal("ClearRules should fail")
	}
	if err := c.Flush(ctx); err == nil {
		t.Fatal("Flush should fail")
	}
	if _, err := c.GetRuleSet(ctx); err == nil {
		t.Fatal("GetRuleSet should fail")
	}
	if _, err := c.PutRuleSet(ctx, rules.RuleSet{Generation: 1}, rules.NoMatch); err == nil {
		t.Fatal("PutRuleSet should fail")
	}
}

// brokenSink always fails, driving the BufferedSink's retry/drop counters.
type brokenSink struct{}

func (brokenSink) Log(...eventlog.Record) error {
	return fmt.Errorf("store down")
}

// TestControlInfoReportsSinkHealth pins the shipping-health surface: when
// the agent logs through a BufferedSink, Stats and GET /v1/info expose its
// dropped/flush/retry counters so operators (and campaigns) can tell lossy
// runs from trustworthy ones.
func TestControlInfoReportsSinkHealth(t *testing.T) {
	ctx := context.Background()
	store := eventlog.NewStore()
	b := eventlog.NewBufferedSinkOpts(store, eventlog.BufferOptions{Size: 1 << 20, Interval: time.Hour})
	defer b.Close()
	a, c := startAgent(t, b)

	if err := b.Log(eventlog.Record{Src: "client", Dst: "server", Kind: eventlog.KindRequest}); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}

	st := a.Stats()
	if st.LogFlushes != 1 || st.LogDropped != 0 || st.LogRetries != 0 {
		t.Fatalf("stats = %+v, want one clean flush", st)
	}
	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.LogFlushes != 1 {
		t.Fatalf("info stats = %+v, want LogFlushes = 1", info.Stats)
	}

	// A broken store shows up as retries, and overflow as drops.
	bad := eventlog.NewBufferedSinkOpts(brokenSink{}, eventlog.BufferOptions{Size: 1, Max: 1, Interval: time.Hour})
	defer bad.Close()
	a2, c2 := startAgent(t, bad)
	for i := 0; i < 3; i++ {
		if err := bad.Log(eventlog.Record{Src: "client", Dst: "server", Kind: eventlog.KindRequest}); err != nil {
			t.Fatal(err)
		}
		_ = bad.Flush() // fails; the batch bounces back into the buffer
	}
	st2 := a2.Stats()
	if st2.LogRetries == 0 || st2.LogDropped == 0 || st2.LogFlushes != 0 {
		t.Fatalf("stats = %+v, want retries and drops, no flushes", st2)
	}
	info2, err := c2.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The background flusher may retry between snapshots, so compare
	// loosely: the counters must be visible over the wire, not equal.
	if info2.Stats.LogRetries == 0 || info2.Stats.LogDropped == 0 {
		t.Fatalf("info stats = %+v, want retries and drops visible", info2.Stats)
	}

	// A plain (unbuffered) sink reports zeroes rather than lying.
	a3, _ := startAgent(t, store)
	if st3 := a3.Stats(); st3.LogFlushes != 0 || st3.LogDropped != 0 || st3.LogRetries != 0 {
		t.Fatalf("plain-sink stats = %+v, want zero shipping counters", st3)
	}
}

func TestControlMetricsExposition(t *testing.T) {
	ctx := context.Background()
	a, c := startAgent(t, nil)
	if err := c.InstallRules(ctx, abortRule("abort-server")); err != nil {
		t.Fatal(err)
	}

	// Drive one aborted exchange through the data path so the counters and
	// the latency histogram have something to show.
	route, err := a.RouteURL("server")
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, route+"/x", nil)
	req.Header.Set("X-Gremlin-ID", "test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("fault did not fire: status %d", resp.StatusCode)
	}

	body, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("agent metrics fail lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		`gremlin_agent_proxied_total{service="client"} 1`,
		`gremlin_agent_aborted_total{service="client"} 1`,
		`gremlin_rule_matched_total{service="client",rule="abort-server"} 1`,
		`gremlin_rule_fired_total{service="client",rule="abort-server"} 1`,
		`gremlin_agent_request_duration_seconds_count{service="client"} 1`,
		`gremlin_agent_request_duration_seconds_bucket{service="client",le="+Inf"} 1`,
		`gremlin_agent_ruleset_generation{service="client"} 1`,
		`gremlin_agent_ruleset_rules{service="client"} 1`,
		`gremlin_agent_ruleset_expired_total{service="client"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}

	// The info body carries the same per-rule counters for the control plane.
	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.RuleStats) != 1 || info.RuleStats[0].Fired != 1 {
		t.Fatalf("info.RuleStats = %+v, want one rule with 1 fired", info.RuleStats)
	}
}

// TestControlRuleSetRoundTrip pins the declarative surface over the wire:
// PUT replaces the whole rule state atomically, GET returns it, and the
// version shows up in /v1/info for drift detection.
func TestControlRuleSetRoundTrip(t *testing.T) {
	ctx := context.Background()
	_, c := startAgent(t, nil)

	set := rules.RuleSet{Generation: 3, Rules: []rules.Rule{abortRule("r1"), abortRule("r2")}}
	st, err := c.PutRuleSet(ctx, set, rules.NoMatch)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Changed || st.Generation != 3 || st.Rules != 2 || st.Hash != set.Hash() {
		t.Fatalf("put status = %+v", st)
	}

	got, err := c.GetRuleSet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 3 || len(got.Rules) != 2 || got.Hash != set.Hash() {
		t.Fatalf("get ruleset = %+v", got)
	}

	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.RuleSet.Generation != 3 || info.RuleSet.Rules != 2 {
		t.Fatalf("info ruleset = %+v", info.RuleSet)
	}

	// Mis-targeted rules are rejected up front, leaving state untouched.
	bad := abortRule("evil")
	bad.Src = "someoneelse"
	if _, err := c.PutRuleSet(ctx, rules.RuleSet{Generation: 9, Rules: []rules.Rule{bad}}, rules.NoMatch); err == nil {
		t.Fatal("want error for mis-targeted rule")
	}
	if info, _ := c.Info(ctx); info.RuleSet.Generation != 3 {
		t.Fatalf("failed put moved the generation: %+v", info.RuleSet)
	}
}

// TestControlRuleSetConflicts pins the HTTP status mapping for the CAS
// semantics: stale and split-brain applies return 409, losing If-Match
// returns 412, and each carries the agent's current version for recovery.
func TestControlRuleSetConflicts(t *testing.T) {
	ctx := context.Background()
	_, c := startAgent(t, nil)

	if _, err := c.PutRuleSet(ctx, rules.RuleSet{Generation: 5, Rules: []rules.Rule{abortRule("r1")}}, rules.NoMatch); err != nil {
		t.Fatal(err)
	}

	st, err := c.PutRuleSet(ctx, rules.RuleSet{Generation: 4}, rules.NoMatch)
	if !errors.Is(err, agentapi.ErrConflict) {
		t.Fatalf("stale put: want ErrConflict, got %v", err)
	}
	if st.Generation != 5 {
		t.Fatalf("conflict response should carry current version, got %+v", st)
	}

	_, err = c.PutRuleSet(ctx, rules.RuleSet{Generation: 5, Rules: []rules.Rule{abortRule("other")}}, rules.NoMatch)
	if !errors.Is(err, agentapi.ErrConflict) {
		t.Fatalf("split-brain put: want ErrConflict, got %v", err)
	}

	st, err = c.PutRuleSet(ctx, rules.RuleSet{Generation: 9}, 3)
	if !errors.Is(err, agentapi.ErrPreconditionFailed) {
		t.Fatalf("wrong If-Match: want ErrPreconditionFailed, got %v", err)
	}
	if st.Generation != 5 {
		t.Fatalf("412 response should carry current version, got %+v", st)
	}

	// A matching If-Match wins even with a lower generation: a fresh
	// control plane taking over an agent left behind by a dead one.
	st, err = c.PutRuleSet(ctx, rules.RuleSet{Generation: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Changed || st.Generation != 2 || st.Rules != 0 {
		t.Fatalf("takeover status = %+v", st)
	}
}

// TestControlRuleSetLeaseExpiry pins the agent-side safety net: a rule set
// delivered with a TTL self-clears if no renewal arrives, so a killed
// control plane can never leak faults into the mesh.
func TestControlRuleSetLeaseExpiry(t *testing.T) {
	ctx := context.Background()
	a, c := startAgent(t, nil)

	set := rules.RuleSet{Generation: 1, Rules: []rules.Rule{abortRule("r1")}, TTLMillis: 60}
	if _, err := c.PutRuleSet(ctx, set, rules.NoMatch); err != nil {
		t.Fatal(err)
	}

	// Renewing before the deadline keeps the rules alive past the original
	// TTL (the re-PUT is a no-op apply but re-arms the lease).
	time.Sleep(30 * time.Millisecond)
	if _, err := c.PutRuleSet(ctx, set, rules.NoMatch); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond) // 70ms past first PUT, 40ms past renewal
	if info, _ := c.Info(ctx); info.RuleSet.Rules != 1 {
		t.Fatalf("rules expired despite renewal: %+v", info.RuleSet)
	}

	// Then let the lease lapse.
	deadline := time.Now().Add(2 * time.Second)
	for {
		info, err := c.Info(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if info.RuleSet.Rules == 0 {
			if info.Stats.RulesetExpirations != 1 {
				t.Fatalf("stats = %+v, want one expiration", info.Stats)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never expired: %+v", info.RuleSet)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A later PUT without TTL installs permanent rules; no timer fires.
	if _, err := c.PutRuleSet(ctx, rules.RuleSet{Generation: 10, Rules: []rules.Rule{abortRule("r2")}}, rules.NoMatch); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if st := a.Stats(); st.RulesetExpirations != 1 {
		t.Fatalf("ttl-less rule set expired: %+v", st)
	}
}
