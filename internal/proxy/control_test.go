package proxy_test

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"gremlin/internal/agentapi"
	"gremlin/internal/eventlog"
	"gremlin/internal/metrics"
	"gremlin/internal/proxy"
	"gremlin/internal/rules"
)

// startAgent builds a control-enabled agent for service "client" routed at
// a throwaway backend.
func startAgent(t *testing.T, sink eventlog.Sink) (*proxy.Agent, *agentapi.Client) {
	t.Helper()
	a, err := proxy.New(proxy.Config{
		ServiceName: "client",
		AgentID:     "client-agent-1",
		ControlAddr: "127.0.0.1:0",
		Routes: []proxy.Route{{
			Dst:        "server",
			ListenAddr: "127.0.0.1:0",
			Targets:    []string{"127.0.0.1:1"},
		}},
		Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	t.Cleanup(func() {
		if err := a.Close(); err != nil {
			t.Errorf("close agent: %v", err)
		}
	})
	return a, agentapi.New(a.ControlURL(), nil)
}

func abortRule(id string) rules.Rule {
	return rules.Rule{
		ID: id, Src: "client", Dst: "server",
		Action: rules.ActionAbort, Pattern: "test-*", ErrorCode: 503,
	}
}

func TestControlInfo(t *testing.T) {
	a, c := startAgent(t, nil)
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Service != "client" || info.AgentID != "client-agent-1" {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Routes) != 1 || info.Routes[0].Dst != "server" {
		t.Fatalf("routes = %+v", info.Routes)
	}
	addr, err := a.RouteAddr("server")
	if err != nil {
		t.Fatal(err)
	}
	if info.Routes[0].ListenAddr != addr {
		t.Fatalf("route addr %q != %q", info.Routes[0].ListenAddr, addr)
	}
}

func TestControlInstallListRemoveClear(t *testing.T) {
	_, c := startAgent(t, nil)

	if err := c.InstallRules(abortRule("r1"), abortRule("r2")); err != nil {
		t.Fatal(err)
	}
	list, err := c.ListRules()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("ListRules = %d rules", len(list))
	}

	if err := c.RemoveRule("r1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveRule("r1"); err == nil {
		t.Fatal("removing a missing rule should error")
	}

	n, err := c.ClearRules()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("ClearRules = %d, want 1", n)
	}
	list, err = c.ListRules()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("rules remain after clear: %+v", list)
	}
}

func TestControlInstallEmptyBatchIsLocalNoop(t *testing.T) {
	c := agentapi.New("http://127.0.0.1:1", &http.Client{Timeout: 100 * time.Millisecond})
	if err := c.InstallRules(); err != nil {
		t.Fatalf("empty install should not touch the network: %v", err)
	}
}

func TestControlInstallRejectsBadRules(t *testing.T) {
	_, c := startAgent(t, nil)
	bad := abortRule("r1")
	bad.Src = "someoneelse"
	if err := c.InstallRules(bad); err == nil {
		t.Fatal("want error for mis-targeted rule")
	}
	list, err := c.ListRules()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatal("failed install must not leave rules behind")
	}
}

func TestControlHealthz(t *testing.T) {
	_, c := startAgent(t, nil)
	if !c.Healthy() {
		t.Fatal("agent should be healthy")
	}
	down := agentapi.New("http://127.0.0.1:1", &http.Client{Timeout: 100 * time.Millisecond})
	if down.Healthy() {
		t.Fatal("unreachable agent should be unhealthy")
	}
}

func TestControlFlushBufferedSink(t *testing.T) {
	store := eventlog.NewStore()
	buffered := eventlog.NewBufferedSink(store, 1000)
	_, c := startAgent(t, buffered)

	if err := buffered.Log(eventlog.Record{Src: "client", Dst: "server", Kind: eventlog.KindRequest}); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Fatal("record should still be buffered")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("store has %d records after flush, want 1", store.Len())
	}
}

func TestControlFlushUnbufferedSinkOK(t *testing.T) {
	_, c := startAgent(t, eventlog.NewStore())
	if err := c.Flush(); err != nil {
		t.Fatalf("flush on plain sink should succeed: %v", err)
	}
}

func TestClientErrorsAgainstDownAgent(t *testing.T) {
	c := agentapi.New("http://127.0.0.1:1", &http.Client{Timeout: 100 * time.Millisecond})
	if _, err := c.Info(); err == nil {
		t.Fatal("Info should fail")
	}
	if err := c.InstallRules(abortRule("r")); err == nil {
		t.Fatal("InstallRules should fail")
	}
	if _, err := c.ListRules(); err == nil {
		t.Fatal("ListRules should fail")
	}
	if err := c.RemoveRule("r"); err == nil {
		t.Fatal("RemoveRule should fail")
	}
	if _, err := c.ClearRules(); err == nil {
		t.Fatal("ClearRules should fail")
	}
	if err := c.Flush(); err == nil {
		t.Fatal("Flush should fail")
	}
}

// brokenSink always fails, driving the BufferedSink's retry/drop counters.
type brokenSink struct{}

func (brokenSink) Log(...eventlog.Record) error {
	return fmt.Errorf("store down")
}

// TestControlInfoReportsSinkHealth pins the shipping-health surface: when
// the agent logs through a BufferedSink, Stats and GET /v1/info expose its
// dropped/flush/retry counters so operators (and campaigns) can tell lossy
// runs from trustworthy ones.
func TestControlInfoReportsSinkHealth(t *testing.T) {
	store := eventlog.NewStore()
	b := eventlog.NewBufferedSinkOpts(store, eventlog.BufferOptions{Size: 1 << 20, Interval: time.Hour})
	defer b.Close()
	a, c := startAgent(t, b)

	if err := b.Log(eventlog.Record{Src: "client", Dst: "server", Kind: eventlog.KindRequest}); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}

	st := a.Stats()
	if st.LogFlushes != 1 || st.LogDropped != 0 || st.LogRetries != 0 {
		t.Fatalf("stats = %+v, want one clean flush", st)
	}
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.LogFlushes != 1 {
		t.Fatalf("info stats = %+v, want LogFlushes = 1", info.Stats)
	}

	// A broken store shows up as retries, and overflow as drops.
	bad := eventlog.NewBufferedSinkOpts(brokenSink{}, eventlog.BufferOptions{Size: 1, Max: 1, Interval: time.Hour})
	defer bad.Close()
	a2, c2 := startAgent(t, bad)
	for i := 0; i < 3; i++ {
		if err := bad.Log(eventlog.Record{Src: "client", Dst: "server", Kind: eventlog.KindRequest}); err != nil {
			t.Fatal(err)
		}
		_ = bad.Flush() // fails; the batch bounces back into the buffer
	}
	st2 := a2.Stats()
	if st2.LogRetries == 0 || st2.LogDropped == 0 || st2.LogFlushes != 0 {
		t.Fatalf("stats = %+v, want retries and drops, no flushes", st2)
	}
	info2, err := c2.Info()
	if err != nil {
		t.Fatal(err)
	}
	// The background flusher may retry between snapshots, so compare
	// loosely: the counters must be visible over the wire, not equal.
	if info2.Stats.LogRetries == 0 || info2.Stats.LogDropped == 0 {
		t.Fatalf("info stats = %+v, want retries and drops visible", info2.Stats)
	}

	// A plain (unbuffered) sink reports zeroes rather than lying.
	a3, _ := startAgent(t, store)
	if st3 := a3.Stats(); st3.LogFlushes != 0 || st3.LogDropped != 0 || st3.LogRetries != 0 {
		t.Fatalf("plain-sink stats = %+v, want zero shipping counters", st3)
	}
}

func TestControlMetricsExposition(t *testing.T) {
	a, c := startAgent(t, nil)
	if err := c.InstallRules(abortRule("abort-server")); err != nil {
		t.Fatal(err)
	}

	// Drive one aborted exchange through the data path so the counters and
	// the latency histogram have something to show.
	route, err := a.RouteURL("server")
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, route+"/x", nil)
	req.Header.Set("X-Gremlin-ID", "test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("fault did not fire: status %d", resp.StatusCode)
	}

	body, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("agent metrics fail lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		`gremlin_agent_proxied_total{service="client"} 1`,
		`gremlin_agent_aborted_total{service="client"} 1`,
		`gremlin_rule_matched_total{service="client",rule="abort-server"} 1`,
		`gremlin_rule_fired_total{service="client",rule="abort-server"} 1`,
		`gremlin_agent_request_duration_seconds_count{service="client"} 1`,
		`gremlin_agent_request_duration_seconds_bucket{service="client",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}

	// The info body carries the same per-rule counters for the control plane.
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if len(info.RuleStats) != 1 || info.RuleStats[0].Fired != 1 {
		t.Fatalf("info.RuleStats = %+v, want one rule with 1 fired", info.RuleStats)
	}
}
