// Package proxy implements the Gremlin agent: a sidecar Layer-7 service
// proxy that handles a microservice's outbound API calls, injects faults on
// messages matching installed rules, and logs every observed request and
// reply to the event store (paper §4.1, §6).
//
// A microservice is configured to reach each of its dependencies through a
// local route of its agent ("localhost:<port> -> dependency" mappings in
// the paper). The agent exposes a REST control API through which the
// Failure Orchestrator installs and removes fault-injection rules.
package proxy

import (
	"errors"
	"fmt"
	"math/rand"

	"gremlin/internal/eventlog"
	"gremlin/internal/pattern"
)

// Route maps one outbound dependency: the co-located microservice dials
// ListenAddr, and the agent forwards to one of the Targets.
type Route struct {
	// Dst is the logical name of the destination microservice.
	Dst string `json:"dst"`

	// ListenAddr is the local address the agent listens on for this
	// dependency (e.g. "127.0.0.1:0" for an ephemeral port).
	ListenAddr string `json:"listenAddr"`

	// Targets are the physical addresses ("host:port") of the destination
	// service's instances. Requests are spread round-robin. In a real
	// deployment these come from a service registry.
	Targets []string `json:"targets"`

	// CanaryPattern, when non-empty, diverts requests whose request ID
	// matches it to CanaryTargets instead of Targets — the canary
	// deployment model the paper proposes for state cleanup (§9): "copies
	// of a microservice dedicated to handling test requests", so that
	// staged failures cannot corrupt production state even when a fault
	// crashes the callee mid-write.
	CanaryPattern string `json:"canaryPattern,omitempty"`

	// CanaryTargets are the canary instances' addresses. Required exactly
	// when CanaryPattern is set.
	CanaryTargets []string `json:"canaryTargets,omitempty"`

	// MirrorTargets, when non-empty, receive an asynchronous copy of every
	// forwarded request; mirror responses are discarded and mirror
	// failures never affect the caller. This supports the shadow
	// deployments the paper names as a natural place to run Gremlin tests
	// ("production or production-like environments (e.g., shadow
	// deployments)"): live traffic is mirrored into the shadow stack and
	// failures are staged there.
	MirrorTargets []string `json:"mirrorTargets,omitempty"`

	// MirrorPattern confines mirroring to request IDs matching it; empty
	// mirrors everything (when MirrorTargets is set).
	MirrorPattern string `json:"mirrorPattern,omitempty"`
}

// L4Route maps one outbound non-HTTP dependency: the co-located
// microservice dials ListenAddr and the agent's stream relay forwards
// the raw byte stream to one of the Targets, injecting connection-level
// faults from LayerL4 rules.
type L4Route struct {
	// Dst is the logical name of the upstream dependency.
	Dst string `json:"dst"`

	// ListenAddr is the local TCP address the relay listens on
	// ("127.0.0.1:0" for an ephemeral port).
	ListenAddr string `json:"listenAddr"`

	// Targets are the upstream instances' addresses ("host:port"),
	// dialed round-robin per connection.
	Targets []string `json:"targets"`
}

// Config configures a Gremlin agent.
type Config struct {
	// ServiceName is the logical name of the co-located microservice. All
	// messages proxied by this agent have this name as their source; rules
	// installed on this agent must name it as Src.
	ServiceName string

	// AgentID identifies this agent instance in observation records.
	// Defaults to ServiceName if empty.
	AgentID string

	// ControlAddr is the listen address of the REST control API
	// ("127.0.0.1:0" for an ephemeral port). Empty disables the control
	// server (rules can still be installed in-process via Matcher).
	ControlAddr string

	// Routes lists the microservice's outbound HTTP dependencies.
	Routes []Route

	// L4Routes lists the microservice's outbound non-HTTP (raw TCP)
	// dependencies, each served by a stream relay on the L4 plane.
	L4Routes []L4Route

	// Sink receives observation records. If nil, observations are dropped
	// (pure fault-injection mode).
	Sink eventlog.Sink

	// RNG drives probability sampling for rules. Pass a seeded rand.Rand
	// for deterministic tests; nil uses a non-deterministic default.
	RNG *rand.Rand
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ServiceName == "" {
		return errors.New("proxy: config needs a ServiceName")
	}
	if len(c.Routes) == 0 && len(c.L4Routes) == 0 {
		return fmt.Errorf("proxy: agent for %q has no routes", c.ServiceName)
	}
	seen := make(map[string]bool, len(c.Routes))
	for _, r := range c.Routes {
		if r.Dst == "" {
			return fmt.Errorf("proxy: route with empty Dst in agent for %q", c.ServiceName)
		}
		if seen[r.Dst] {
			return fmt.Errorf("proxy: duplicate route for %q in agent for %q", r.Dst, c.ServiceName)
		}
		seen[r.Dst] = true
		if len(r.Targets) == 0 {
			return fmt.Errorf("proxy: route %s->%s has no targets", c.ServiceName, r.Dst)
		}
		if r.ListenAddr == "" {
			return fmt.Errorf("proxy: route %s->%s has no listen address", c.ServiceName, r.Dst)
		}
		if (r.CanaryPattern == "") != (len(r.CanaryTargets) == 0) {
			return fmt.Errorf("proxy: route %s->%s must set CanaryPattern and CanaryTargets together",
				c.ServiceName, r.Dst)
		}
		if r.CanaryPattern != "" {
			if _, err := pattern.Compile(r.CanaryPattern); err != nil {
				return fmt.Errorf("proxy: route %s->%s canary pattern: %w", c.ServiceName, r.Dst, err)
			}
		}
		if r.MirrorPattern != "" && len(r.MirrorTargets) == 0 {
			return fmt.Errorf("proxy: route %s->%s sets MirrorPattern without MirrorTargets",
				c.ServiceName, r.Dst)
		}
		if r.MirrorPattern != "" {
			if _, err := pattern.Compile(r.MirrorPattern); err != nil {
				return fmt.Errorf("proxy: route %s->%s mirror pattern: %w", c.ServiceName, r.Dst, err)
			}
		}
	}
	seenL4 := make(map[string]bool, len(c.L4Routes))
	for _, r := range c.L4Routes {
		if r.Dst == "" {
			return fmt.Errorf("proxy: l4 route with empty Dst in agent for %q", c.ServiceName)
		}
		if seenL4[r.Dst] {
			return fmt.Errorf("proxy: duplicate l4 route for %q in agent for %q", r.Dst, c.ServiceName)
		}
		seenL4[r.Dst] = true
		if len(r.Targets) == 0 {
			return fmt.Errorf("proxy: l4 route %s->%s has no targets", c.ServiceName, r.Dst)
		}
		if r.ListenAddr == "" {
			return fmt.Errorf("proxy: l4 route %s->%s has no listen address", c.ServiceName, r.Dst)
		}
	}
	return nil
}

func (c Config) agentID() string {
	if c.AgentID != "" {
		return c.AgentID
	}
	return c.ServiceName + "-agent"
}
