package proxy

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gremlin/internal/eventlog"
	"gremlin/internal/rules"
	"gremlin/internal/trace"
)

// newEcho starts a backend that echoes method, path and body, and counts
// requests.
func newEcho(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("X-Backend", "echo")
		fmt.Fprintf(w, "%s %s body=%s", r.Method, r.URL.Path, body)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func hostport(url string) string { return strings.TrimPrefix(url, "http://") }

// newAgent builds an agent for service "client" with a route to "server"
// backed by the given targets, logging to a fresh store.
func newAgent(t *testing.T, store *eventlog.Store, targets ...string) *Agent {
	t.Helper()
	a, err := New(Config{
		ServiceName: "client",
		ControlAddr: "127.0.0.1:0",
		Routes: []Route{{
			Dst:        "server",
			ListenAddr: "127.0.0.1:0",
			Targets:    targets,
		}},
		Sink: store,
		RNG:  rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	t.Cleanup(func() {
		if err := a.Close(); err != nil {
			t.Errorf("close agent: %v", err)
		}
	})
	return a
}

func routeGet(t *testing.T, a *Agent, path, reqID string) *http.Response {
	t.Helper()
	u, err := a.RouteURL("server")
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodGet, u+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	trace.SetRequestID(req, reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestForwardBasic(t *testing.T) {
	backend, hits := newEcho(t)
	store := eventlog.NewStore()
	a := newAgent(t, store, hostport(backend.URL))

	resp := routeGet(t, a, "/api/items", "test-1")
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if body != "GET /api/items body=" {
		t.Fatalf("body = %q", body)
	}
	if resp.Header.Get("X-Backend") != "echo" {
		t.Fatal("response headers not forwarded")
	}
	if hits.Load() != 1 {
		t.Fatalf("backend hits = %d", hits.Load())
	}

	// Both halves logged.
	reqs, err := store.Select(eventlog.Query{Kind: eventlog.KindRequest})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || reqs[0].Src != "client" || reqs[0].Dst != "server" ||
		reqs[0].RequestID != "test-1" || reqs[0].URI != "/api/items" {
		t.Fatalf("request record = %+v", reqs)
	}
	reps, err := store.Select(eventlog.Query{Kind: eventlog.KindReply})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps[0].Status != 200 || reps[0].LatencyMillis <= 0 || reps[0].GremlinGenerated {
		t.Fatalf("reply record = %+v", reps)
	}
}

func TestForwardPostBody(t *testing.T) {
	backend, _ := newEcho(t)
	a := newAgent(t, eventlog.NewStore(), hostport(backend.URL))
	u, err := a.RouteURL("server")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(u+"/submit", "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if got := readBody(t, resp); got != "POST /submit body=hello" {
		t.Fatalf("body = %q", got)
	}
}

func TestForwardQueryString(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "q=%s", r.URL.Query().Get("q"))
	}))
	t.Cleanup(backend.Close)
	a := newAgent(t, eventlog.NewStore(), hostport(backend.URL))
	resp := routeGet(t, a, "/search?q=chaos", "test-1")
	if got := readBody(t, resp); got != "q=chaos" {
		t.Fatalf("body = %q", got)
	}
}

func TestAbortRequest(t *testing.T) {
	backend, hits := newEcho(t)
	store := eventlog.NewStore()
	a := newAgent(t, store, hostport(backend.URL))
	if err := a.InstallRules(rules.Rule{
		ID: "ab1", Src: "client", Dst: "server",
		Action: rules.ActionAbort, Pattern: "test-*", ErrorCode: 503,
	}); err != nil {
		t.Fatal(err)
	}

	resp := routeGet(t, a, "/x", "test-1")
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if hits.Load() != 0 {
		t.Fatal("aborted request must not reach the backend")
	}

	reps, err := store.Select(eventlog.Query{Kind: eventlog.KindReply})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 {
		t.Fatalf("reply records = %d", len(reps))
	}
	r := reps[0]
	if !r.GremlinGenerated || r.Status != 503 || r.FaultAction != "abort" || r.FaultRuleID != "ab1" {
		t.Fatalf("reply record = %+v", r)
	}
}

func TestAbortPatternSparesOtherTraffic(t *testing.T) {
	backend, hits := newEcho(t)
	a := newAgent(t, eventlog.NewStore(), hostport(backend.URL))
	if err := a.InstallRules(rules.Rule{
		ID: "ab1", Src: "client", Dst: "server",
		Action: rules.ActionAbort, Pattern: "test-*", ErrorCode: 503,
	}); err != nil {
		t.Fatal(err)
	}
	resp := routeGet(t, a, "/x", "prod-55")
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("production traffic got %d", resp.StatusCode)
	}
	if hits.Load() != 1 {
		t.Fatal("production traffic should reach the backend")
	}
}

func TestAbortSeverConnection(t *testing.T) {
	backend, hits := newEcho(t)
	a := newAgent(t, eventlog.NewStore(), hostport(backend.URL))
	if err := a.InstallRules(rules.Rule{
		ID: "crash", Src: "client", Dst: "server",
		Action: rules.ActionAbort, Pattern: "test-*",
		ErrorCode: rules.AbortSeverConnection,
	}); err != nil {
		t.Fatal(err)
	}
	u, err := a.RouteURL("server")
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodGet, u+"/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	trace.SetRequestID(req, "test-1")
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatal("want transport error for severed connection")
	}
	if hits.Load() != 0 {
		t.Fatal("severed request must not reach the backend")
	}
}

func TestDelayRequest(t *testing.T) {
	backend, _ := newEcho(t)
	store := eventlog.NewStore()
	a := newAgent(t, store, hostport(backend.URL))
	if err := a.InstallRules(rules.Rule{
		ID: "d1", Src: "client", Dst: "server",
		Action: rules.ActionDelay, Pattern: "test-*", DelayMillis: 120,
	}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp := routeGet(t, a, "/x", "test-1")
	readBody(t, resp)
	if elapsed := time.Since(start); elapsed < 120*time.Millisecond {
		t.Fatalf("elapsed = %v, want >= 120ms", elapsed)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	reps, err := store.Select(eventlog.Query{Kind: eventlog.KindReply})
	if err != nil {
		t.Fatal(err)
	}
	r := reps[0]
	if r.InjectedDelayMillis != 120 || r.FaultAction != "delay" || r.GremlinGenerated {
		t.Fatalf("reply record = %+v", r)
	}
	if r.LatencyMillis < 120 {
		t.Fatalf("latency %v should include injected delay", r.LatencyMillis)
	}
	// Untampered latency strips the injection.
	if ut := r.UntamperedLatency(); ut > 100*time.Millisecond {
		t.Fatalf("untampered latency = %v, want small", ut)
	}
}

func TestDelayResponse(t *testing.T) {
	backend, hits := newEcho(t)
	store := eventlog.NewStore()
	a := newAgent(t, store, hostport(backend.URL))
	if err := a.InstallRules(rules.Rule{
		ID: "d2", Src: "client", Dst: "server", On: rules.OnResponse,
		Action: rules.ActionDelay, Pattern: "test-*", DelayMillis: 100,
	}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp := routeGet(t, a, "/x", "test-1")
	readBody(t, resp)
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("elapsed = %v", elapsed)
	}
	if hits.Load() != 1 {
		t.Fatal("response delay must still hit the backend")
	}
	reps, err := store.Select(eventlog.Query{Kind: eventlog.KindReply})
	if err != nil {
		t.Fatal(err)
	}
	if reps[0].InjectedDelayMillis != 100 {
		t.Fatalf("record = %+v", reps[0])
	}
}

func TestModifyRequestBody(t *testing.T) {
	backend, _ := newEcho(t)
	a := newAgent(t, eventlog.NewStore(), hostport(backend.URL))
	if err := a.InstallRules(rules.Rule{
		ID: "m1", Src: "client", Dst: "server",
		Action: rules.ActionModify, Pattern: "test-*",
		SearchBytes: "key", ReplaceBytes: "badkey",
	}); err != nil {
		t.Fatal(err)
	}
	u, err := a.RouteURL("server")
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, u+"/x", strings.NewReader("key=value"))
	if err != nil {
		t.Fatal(err)
	}
	trace.SetRequestID(req, "test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := readBody(t, resp); !strings.Contains(got, "body=badkey=value") {
		t.Fatalf("backend saw %q, want modified body", got)
	}
}

func TestModifyResponseBody(t *testing.T) {
	// FakeSuccess recipe: service returns key=value with 200; Gremlin
	// corrupts the key to trigger input-validation paths in the caller.
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "key=value")
	}))
	t.Cleanup(backend.Close)
	a := newAgent(t, eventlog.NewStore(), hostport(backend.URL))
	if err := a.InstallRules(rules.Rule{
		ID: "m2", Src: "client", Dst: "server", On: rules.OnResponse,
		Action: rules.ActionModify, Pattern: "test-*",
		SearchBytes: "key", ReplaceBytes: "badkey",
	}); err != nil {
		t.Fatal(err)
	}
	resp := routeGet(t, a, "/x", "test-1")
	if got := readBody(t, resp); got != "badkey=value" {
		t.Fatalf("body = %q", got)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (FakeSuccess keeps the status)", resp.StatusCode)
	}
}

func TestAbortResponse(t *testing.T) {
	backend, hits := newEcho(t)
	store := eventlog.NewStore()
	a := newAgent(t, store, hostport(backend.URL))
	if err := a.InstallRules(rules.Rule{
		ID: "ab2", Src: "client", Dst: "server", On: rules.OnResponse,
		Action: rules.ActionAbort, Pattern: "test-*", ErrorCode: 500,
	}); err != nil {
		t.Fatal(err)
	}
	resp := routeGet(t, a, "/x", "test-1")
	readBody(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if hits.Load() != 1 {
		t.Fatal("response abort happens after the backend call")
	}
	reps, err := store.Select(eventlog.Query{Kind: eventlog.KindReply})
	if err != nil {
		t.Fatal(err)
	}
	if !reps[0].GremlinGenerated || reps[0].Status != 500 {
		t.Fatalf("record = %+v", reps[0])
	}
}

func TestProbabilisticAbort(t *testing.T) {
	backend, _ := newEcho(t)
	store := eventlog.NewStore()
	a := newAgent(t, store, hostport(backend.URL))
	if err := a.InstallRules(rules.Rule{
		ID: "p1", Src: "client", Dst: "server",
		Action: rules.ActionAbort, Pattern: "test-*", ErrorCode: 503,
		Probability: 0.25,
	}); err != nil {
		t.Fatal(err)
	}
	const n = 400
	aborted := 0
	for i := 0; i < n; i++ {
		resp := routeGet(t, a, "/x", fmt.Sprintf("test-%d", i))
		readBody(t, resp)
		if resp.StatusCode == http.StatusServiceUnavailable {
			aborted++
		}
	}
	frac := float64(aborted) / n
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("abort fraction = %v, want ~0.25", frac)
	}
}

func TestRoundRobinTargets(t *testing.T) {
	var hits1, hits2 atomic.Int64
	b1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits1.Add(1)
		fmt.Fprint(w, "b1")
	}))
	t.Cleanup(b1.Close)
	b2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits2.Add(1)
		fmt.Fprint(w, "b2")
	}))
	t.Cleanup(b2.Close)

	a := newAgent(t, eventlog.NewStore(), hostport(b1.URL), hostport(b2.URL))
	for i := 0; i < 10; i++ {
		resp := routeGet(t, a, "/", "test-1")
		readBody(t, resp)
	}
	if hits1.Load() != 5 || hits2.Load() != 5 {
		t.Fatalf("round robin split = %d/%d, want 5/5", hits1.Load(), hits2.Load())
	}
}

func TestForwardFailureLogsAndReturns502(t *testing.T) {
	store := eventlog.NewStore()
	a := newAgent(t, store, "127.0.0.1:1") // nothing listens there
	resp := routeGet(t, a, "/x", "test-1")
	readBody(t, resp)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	reps, err := store.Select(eventlog.Query{Kind: eventlog.KindReply})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps[0].Status != http.StatusBadGateway {
		t.Fatalf("records = %+v", reps)
	}
}

func TestRouteAddrUnknown(t *testing.T) {
	backend, _ := newEcho(t)
	a := newAgent(t, eventlog.NewStore(), hostport(backend.URL))
	if _, err := a.RouteAddr("nothere"); err == nil {
		t.Fatal("want error for unknown route")
	}
	if _, err := a.RouteURL("nothere"); err == nil {
		t.Fatal("want error for unknown route")
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"no service", Config{Routes: []Route{{Dst: "b", ListenAddr: "x", Targets: []string{"t"}}}}},
		{"no routes", Config{ServiceName: "a"}},
		{"empty dst", Config{ServiceName: "a", Routes: []Route{{ListenAddr: "x", Targets: []string{"t"}}}}},
		{"no targets", Config{ServiceName: "a", Routes: []Route{{Dst: "b", ListenAddr: "x"}}}},
		{"no listen", Config{ServiceName: "a", Routes: []Route{{Dst: "b", Targets: []string{"t"}}}}},
		{"dup route", Config{ServiceName: "a", Routes: []Route{
			{Dst: "b", ListenAddr: "x", Targets: []string{"t"}},
			{Dst: "b", ListenAddr: "y", Targets: []string{"t"}},
		}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); err == nil {
				t.Fatal("want config error")
			}
		})
	}
}

func TestInstallRulesValidation(t *testing.T) {
	backend, _ := newEcho(t)
	a := newAgent(t, eventlog.NewStore(), hostport(backend.URL))

	wrongSrc := rules.Rule{ID: "x", Src: "other", Dst: "server", Action: rules.ActionAbort, ErrorCode: 503}
	if err := a.InstallRules(wrongSrc); err == nil {
		t.Fatal("want error for mismatched source")
	}
	wrongDst := rules.Rule{ID: "x", Src: "client", Dst: "ghost", Action: rules.ActionAbort, ErrorCode: 503}
	if err := a.InstallRules(wrongDst); err == nil {
		t.Fatal("want error for unknown destination")
	}
	invalid := rules.Rule{ID: "", Src: "client", Dst: "server", Action: rules.ActionAbort, ErrorCode: 503}
	if err := a.InstallRules(invalid); err == nil {
		t.Fatal("want error for invalid rule")
	}
}

func TestAgentWithoutSink(t *testing.T) {
	backend, _ := newEcho(t)
	a, err := New(Config{
		ServiceName: "client",
		Routes:      []Route{{Dst: "server", ListenAddr: "127.0.0.1:0", Targets: []string{hostport(backend.URL)}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	t.Cleanup(func() {
		if err := a.Close(); err != nil {
			t.Error(err)
		}
	})
	resp := routeGet(t, a, "/x", "test-1")
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if a.ControlURL() != "" {
		t.Fatal("control URL should be empty when disabled")
	}
}

func TestStartIdempotent(t *testing.T) {
	backend, _ := newEcho(t)
	a := newAgent(t, eventlog.NewStore(), hostport(backend.URL))
	a.Start() // second call is a no-op
	resp := routeGet(t, a, "/x", "test-1")
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestCanaryRouting(t *testing.T) {
	// Production and canary backends, distinguishable by body.
	prod := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "prod")
	}))
	t.Cleanup(prod.Close)
	canary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "canary")
	}))
	t.Cleanup(canary.Close)

	a, err := New(Config{
		ServiceName: "client",
		Routes: []Route{{
			Dst:           "server",
			ListenAddr:    "127.0.0.1:0",
			Targets:       []string{hostport(prod.URL)},
			CanaryPattern: "test-*",
			CanaryTargets: []string{hostport(canary.URL)},
		}},
		Sink: eventlog.NewStore(),
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	t.Cleanup(func() {
		if err := a.Close(); err != nil {
			t.Error(err)
		}
	})

	// Test traffic goes to the canary...
	resp := routeGet(t, a, "/x", "test-1")
	if got := readBody(t, resp); got != "canary" {
		t.Fatalf("test traffic reached %q, want canary", got)
	}
	// ...production traffic to the production instances...
	resp = routeGet(t, a, "/x", "prod-1")
	if got := readBody(t, resp); got != "prod" {
		t.Fatalf("prod traffic reached %q, want prod", got)
	}
	// ...and unstamped traffic stays on production too.
	resp = routeGet(t, a, "/x", "")
	if got := readBody(t, resp); got != "prod" {
		t.Fatalf("unstamped traffic reached %q, want prod", got)
	}
}

func TestCanaryRoutingWithFaults(t *testing.T) {
	// Faults confined to test traffic land on the canary path only: the
	// §9 state-cleanup model — crash the canary copy, never production.
	prod := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "prod")
	}))
	t.Cleanup(prod.Close)
	canary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "canary")
	}))
	t.Cleanup(canary.Close)

	a, err := New(Config{
		ServiceName: "client",
		Routes: []Route{{
			Dst:           "server",
			ListenAddr:    "127.0.0.1:0",
			Targets:       []string{hostport(prod.URL)},
			CanaryPattern: "test-*",
			CanaryTargets: []string{hostport(canary.URL)},
		}},
		Sink: eventlog.NewStore(),
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	t.Cleanup(func() {
		if err := a.Close(); err != nil {
			t.Error(err)
		}
	})
	if err := a.InstallRules(rules.Rule{
		ID: "ab", Src: "client", Dst: "server",
		Action: rules.ActionAbort, Pattern: "test-*", ErrorCode: 503,
	}); err != nil {
		t.Fatal(err)
	}

	resp := routeGet(t, a, "/x", "test-1")
	readBody(t, resp)
	if resp.StatusCode != 503 {
		t.Fatalf("test traffic status = %d", resp.StatusCode)
	}
	resp = routeGet(t, a, "/x", "prod-1")
	if got := readBody(t, resp); resp.StatusCode != 200 || got != "prod" {
		t.Fatalf("prod traffic got %d %q", resp.StatusCode, got)
	}
}

func TestCanaryConfigValidation(t *testing.T) {
	base := Route{Dst: "b", ListenAddr: "127.0.0.1:0", Targets: []string{"t:1"}}

	onlyPattern := base
	onlyPattern.CanaryPattern = "test-*"
	if _, err := New(Config{ServiceName: "a", Routes: []Route{onlyPattern}}); err == nil {
		t.Fatal("pattern without targets should fail")
	}

	onlyTargets := base
	onlyTargets.CanaryTargets = []string{"c:1"}
	if _, err := New(Config{ServiceName: "a", Routes: []Route{onlyTargets}}); err == nil {
		t.Fatal("targets without pattern should fail")
	}

	badPattern := base
	badPattern.CanaryPattern = "re:["
	badPattern.CanaryTargets = []string{"c:1"}
	if _, err := New(Config{ServiceName: "a", Routes: []Route{badPattern}}); err == nil {
		t.Fatal("invalid canary pattern should fail")
	}
}

func TestAgentStatsCounters(t *testing.T) {
	backend, _ := newEcho(t)
	a := newAgent(t, eventlog.NewStore(), hostport(backend.URL))
	if err := a.InstallRules(
		rules.Rule{ID: "ab", Src: "client", Dst: "server",
			Action: rules.ActionAbort, Pattern: "abort-*", ErrorCode: 503},
		rules.Rule{ID: "dl", Src: "client", Dst: "server",
			Action: rules.ActionDelay, Pattern: "delay-*", DelayMillis: 1},
		rules.Rule{ID: "md", Src: "client", Dst: "server", On: rules.OnResponse,
			Action: rules.ActionModify, Pattern: "mod-*", SearchBytes: "body", ReplaceBytes: "ydob"},
		rules.Rule{ID: "sv", Src: "client", Dst: "server",
			Action: rules.ActionAbort, Pattern: "sever-*", ErrorCode: rules.AbortSeverConnection},
	); err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{"plain-1", "abort-1", "delay-1", "mod-1"} {
		resp := routeGet(t, a, "/x", id)
		readBody(t, resp)
	}
	// Severed connection produces a transport error at the caller.
	u, err := a.RouteURL("server")
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodGet, u+"/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	trace.SetRequestID(req, "sever-1")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}

	st := a.Stats()
	// Go's transport retries an idempotent GET when a pooled connection is
	// severed mid-use, so the sever rule may fire more than once.
	if st.Aborted != 1 || st.Delayed != 1 || st.Modified != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.Severed < 1 {
		t.Fatalf("Severed = %d, want >= 1", st.Severed)
	}
	if st.Proxied != 4+st.Severed {
		t.Fatalf("Proxied = %d, want %d", st.Proxied, 4+st.Severed)
	}
}

// TestSpanPropagationAcrossHops chains two agents through a relaying
// microservice and verifies the causal links: the edge agent mints a root
// span (empty parent), the middle service relays the span headers via
// trace.Propagate, and the second agent's span names the first as parent.
func TestSpanPropagationAcrossHops(t *testing.T) {
	store := eventlog.NewStore()

	// Leaf backend records the span header the second agent sent it.
	var leafSpan, leafParent atomic.Value
	leaf := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		leafSpan.Store(r.Header.Get(trace.HeaderSpan))
		leafParent.Store(r.Header.Get(trace.HeaderParentSpan))
		fmt.Fprint(w, "leaf")
	}))
	defer leaf.Close()

	// Agent for serviceB with a route to the leaf.
	agentB, err := New(Config{
		ServiceName: "serviceB",
		Routes: []Route{{
			Dst:        "leaf",
			ListenAddr: "127.0.0.1:0",
			Targets:    []string{hostport(leaf.URL)},
		}},
		Sink: store,
		RNG:  rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	agentB.Start()
	defer agentB.Close()
	routeB, err := agentB.RouteURL("leaf")
	if err != nil {
		t.Fatal(err)
	}

	// Middle microservice: relays flow identity downstream via Propagate,
	// exactly as internal/app's Caller does.
	middle := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		out, err := http.NewRequest(http.MethodGet, routeB+"/leaf", nil)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		trace.Propagate(r, out)
		resp, err := http.DefaultClient.Do(out)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		_, _ = io.Copy(w, resp.Body)
	}))
	defer middle.Close()

	agentA := newAgent(t, store, hostport(middle.URL))

	resp := routeGet(t, agentA, "/entry", "test-span-1")
	if body := readBody(t, resp); body != "leaf" {
		t.Fatalf("body = %q", body)
	}

	recs, err := store.Select(eventlog.Query{IDPattern: "test-span-1"})
	if err != nil {
		t.Fatal(err)
	}
	var hopA, hopB eventlog.Record
	for _, rec := range recs {
		if rec.Kind != eventlog.KindRequest {
			continue
		}
		switch rec.Src {
		case "client":
			hopA = rec
		case "serviceB":
			hopB = rec
		}
	}
	if hopA.SpanID == "" || hopB.SpanID == "" {
		t.Fatalf("missing span IDs: hopA=%+v hopB=%+v", hopA, hopB)
	}
	if hopA.ParentSpanID != "" {
		t.Fatalf("edge hop should be a root span, got parent %q", hopA.ParentSpanID)
	}
	if hopB.ParentSpanID != hopA.SpanID {
		t.Fatalf("hopB parent = %q, want hopA span %q", hopB.ParentSpanID, hopA.SpanID)
	}
	if hopA.SpanID == hopB.SpanID {
		t.Fatalf("both hops share span %q", hopA.SpanID)
	}

	// Request and reply halves of one hop share the span ID.
	for _, rec := range recs {
		if rec.Kind == eventlog.KindReply && rec.Src == "client" && rec.SpanID != hopA.SpanID {
			t.Fatalf("reply span %q != request span %q", rec.SpanID, hopA.SpanID)
		}
	}

	// The leaf saw the second agent's span on the wire.
	if got := leafSpan.Load(); got != hopB.SpanID {
		t.Fatalf("leaf saw span %v, want %q", got, hopB.SpanID)
	}
	if got := leafParent.Load(); got != hopA.SpanID {
		t.Fatalf("leaf saw parent %v, want %q", got, hopA.SpanID)
	}
}
