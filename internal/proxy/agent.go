package proxy

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gremlin/internal/eventlog"
	"gremlin/internal/httpx"
	"gremlin/internal/metrics"
	"gremlin/internal/pattern"
	"gremlin/internal/rules"
	"gremlin/internal/streamproxy"
	"gremlin/internal/trace"
)

// maxLoggedBody bounds how much of a message body the agent will buffer for
// Modify rules and forwarding.
const maxBodyBytes = 32 << 20 // 32 MiB

// Agent is a running Gremlin agent: one data-path listener per route plus
// an optional control API server.
type Agent struct {
	cfg     Config
	matcher *rules.Matcher
	sink    eventlog.Sink

	// spanGen mints one span ID per proxied hop; the agent identity in the
	// prefix keeps span namespaces disjoint across agents sharing a store.
	spanGen *trace.Generator

	routes  map[string]*routeProxy        // by Dst
	relays  map[string]*streamproxy.Relay // L4 plane, by Dst
	control *httpx.Server
	started bool

	// leaseMu guards the rule-set lease timer. A rule set shipped with a
	// TTL self-expires: if no PUT renews it in time, the agent clears all
	// rules itself, so a dead control plane cannot leak faults into the
	// fleet. Control-path only; the data path never touches it.
	leaseMu    sync.Mutex
	leaseTimer *time.Timer
	nExpired   atomic.Int64

	// Data-path counters, exposed via GET /v1/info.
	nProxied  atomic.Int64
	nAborted  atomic.Int64
	nDelayed  atomic.Int64
	nModified atomic.Int64
	nSevered  atomic.Int64
	nStreamed atomic.Int64
	nSpans    atomic.Int64
	nEITrunc  atomic.Int64

	// ordMu guards ordinals, the bounded call-ordinal state used to build
	// execution indices: how many calls with the same (parent span,
	// destination) this agent has already proxied.
	ordMu    sync.Mutex
	ordinals map[string]int

	// latency observes each proxied exchange's wall time in seconds
	// (including injected delays), exposed via GET /metrics.
	latency *metrics.Histogram
}

// copyBufs holds 32 KiB buffers reused by the streaming fast path, so a
// proxied body costs no per-request allocation.
var copyBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 32<<10)
		return &b
	},
}

// Stats is a snapshot of the agent's data-path counters.
type Stats struct {
	// Proxied counts messages handled on the data path.
	Proxied int64 `json:"proxied"`
	// Aborted counts messages terminated by an Abort rule with an HTTP
	// error code.
	Aborted int64 `json:"aborted"`
	// Severed counts connections cut by Abort rules with
	// AbortSeverConnection.
	Severed int64 `json:"severed"`
	// Delayed counts messages held back by Delay rules.
	Delayed int64 `json:"delayed"`
	// Modified counts messages rewritten by Modify rules.
	Modified int64 `json:"modified"`
	// Streamed counts replies whose bodies passed through the proxy
	// without being buffered (the fast path: no Modify rule applied).
	Streamed int64 `json:"streamed"`

	// SpansMinted counts the span IDs this agent minted — one per proxied
	// hop — so scrapers can confirm causal tracing is live on the data
	// path.
	SpansMinted int64 `json:"spansMinted"`

	// EITruncated counts hops whose execution index hit the depth or byte
	// bound and was terminated with the truncation marker instead of
	// growing — nonzero means the topology is deeper (or more cyclic)
	// than X-Gremlin-EI can name, and explore-plane coverage of those
	// hops is necessarily coarse.
	EITruncated int64 `json:"eiTruncated,omitempty"`

	// RulesetExpirations counts rule sets the agent cleared itself because
	// their lease TTL lapsed without a renewing PUT — each one is a
	// control plane that died holding faults.
	RulesetExpirations int64 `json:"rulesetExpirations"`

	// LogDropped, LogFlushes, and LogRetries report event-log shipping
	// health when the agent's sink exposes it (eventlog.BufferedSink does).
	// A run with LogDropped > 0 evaluated its assertions on partial data —
	// campaigns flag such runs as lossy rather than trusting a pass.
	LogDropped int64 `json:"logDropped"`
	LogFlushes int64 `json:"logFlushes"`
	LogRetries int64 `json:"logRetries"`

	// LogBatchRecords and LogMaxBatch describe the sink's batching:
	// total records shipped in successful flushes (divide by LogFlushes
	// for the mean batch size — how well HTTP and encode overhead are
	// being amortized) and the largest single batch.
	LogBatchRecords int64 `json:"logBatchRecords,omitempty"`
	LogMaxBatch     int64 `json:"logMaxBatch,omitempty"`

	// L4 aggregates the agent's stream relays (connections, bytes, and
	// actuated stream faults). Nil when the agent has no L4 routes.
	L4 *streamproxy.Stats `json:"l4,omitempty"`
}

// sinkHealth is the optional shipping-health surface of a sink.
type sinkHealth interface {
	Dropped() int64
	Flushes() int64
	Retries() int64
}

// sinkBatchHealth is the optional batching surface of a sink
// (eventlog.BufferedSink has it).
type sinkBatchHealth interface {
	BatchRecords() int64
	MaxBatch() int64
}

// Stats returns a snapshot of the agent's counters.
func (a *Agent) Stats() Stats {
	s := Stats{
		Proxied:            a.nProxied.Load(),
		Aborted:            a.nAborted.Load(),
		Severed:            a.nSevered.Load(),
		Delayed:            a.nDelayed.Load(),
		Modified:           a.nModified.Load(),
		Streamed:           a.nStreamed.Load(),
		SpansMinted:        a.nSpans.Load(),
		EITruncated:        a.nEITrunc.Load(),
		RulesetExpirations: a.nExpired.Load(),
	}
	if h, ok := a.sink.(sinkHealth); ok {
		s.LogDropped = h.Dropped()
		s.LogFlushes = h.Flushes()
		s.LogRetries = h.Retries()
	}
	if h, ok := a.sink.(sinkBatchHealth); ok {
		s.LogBatchRecords = h.BatchRecords()
		s.LogMaxBatch = h.MaxBatch()
	}
	if len(a.relays) > 0 {
		l4 := a.L4Stats()
		s.L4 = &l4
	}
	return s
}

// L4Stats aggregates the agent's stream relays' counters (zero-valued
// when the agent has no L4 routes).
func (a *Agent) L4Stats() streamproxy.Stats {
	var total streamproxy.Stats
	for _, relay := range a.relays {
		total.Add(relay.Stats())
	}
	return total
}

// countFault bumps the counter matching a fired decision.
func (a *Agent) countFault(d rules.Decision) {
	if !d.Fired {
		return
	}
	switch d.Rule.Action {
	case rules.ActionAbort:
		if d.Rule.ErrorCode == rules.AbortSeverConnection {
			a.nSevered.Add(1)
		} else {
			a.nAborted.Add(1)
		}
	case rules.ActionDelay:
		a.nDelayed.Add(1)
	case rules.ActionModify:
		a.nModified.Add(1)
	}
}

// flow carries one exchange's identity down the data path: the flat
// request ID, the span this hop minted, its parent span, the hop's
// execution index, and the start time every latency is measured from.
type flow struct {
	reqID      string
	spanID     string
	parentSpan string
	ei         string
	start      time.Time
}

// maxOrdinalKeys bounds the ordinal map. When the cap is reached the
// whole map is dropped: a coarse reset that keeps agent memory bounded on
// long-lived processes at the cost of restarting ordinal counts for
// (rare) flows still in flight across the reset. Execution indices stay
// well-formed either way — at worst two sibling calls straddling a reset
// share an ordinal and collapse into one explore point.
const maxOrdinalKeys = 8192

// nextOrdinal returns the 0-based ordinal of this call among its
// siblings: calls from the same parent execution (identified by the
// inbound span, which is minted fresh per request) to the same
// destination. Sequential retries and repeated fan-out calls to one
// dependency get 0, 1, 2, … so their execution indices differ.
//
// An entry hop — no parent span — is always ordinal 0: every request at
// the application edge roots a fresh execution, even when a load
// generator replays the same request ID across runs. Keying entry hops on
// the request ID would make replayed IDs count up forever and drift every
// downstream execution index between sessions.
func (a *Agent) nextOrdinal(parentSpan, dst string) int {
	if parentSpan == "" {
		return 0
	}
	key := parentSpan + "\x00" + dst
	a.ordMu.Lock()
	defer a.ordMu.Unlock()
	if a.ordinals == nil || len(a.ordinals) >= maxOrdinalKeys {
		a.ordinals = make(map[string]int, 64)
	}
	n := a.ordinals[key]
	a.ordinals[key] = n + 1
	return n
}

type routeProxy struct {
	agent  *Agent
	route  Route
	server *httpx.Server
	client *http.Client
	// recProto carries the parts of an eventlog.Record that are constant
	// for this route, so the data path only fills in per-message fields.
	recProto eventlog.Record
	// pool is the live, health-aware target set (seeded from
	// route.Targets; swapped at runtime via Agent.SetRouteTargets).
	pool       *targetPool
	canaryPat  pattern.Pattern
	mirrorPat  pattern.Pattern
	canaryNext atomic.Uint64 // round-robin canary index
	mirrorNext atomic.Uint64 // round-robin mirror index
	mirrors    sync.WaitGroup
}

// New creates an agent. Listeners for all routes and the control API are
// bound immediately (so ephemeral addresses are known), but no traffic is
// served until Start.
func New(cfg Config) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Agent{
		cfg:     cfg,
		matcher: rules.NewMatcher(cfg.RNG),
		sink:    cfg.Sink,
		// The span generator deliberately does not consume cfg.RNG: the
		// matcher's probability sampling stream must not shift when span
		// minting is added. Agent-identity prefix plus process-global salt
		// keep span IDs unique across the deployment.
		spanGen: trace.NewGenerator("sp-"+cfg.agentID()+"-", nil),
		routes:  make(map[string]*routeProxy, len(cfg.Routes)),
		latency: metrics.NewHistogram(metrics.DefaultLatencyBounds),
	}
	for _, r := range cfg.Routes {
		canaryPat, err := pattern.Compile(r.CanaryPattern)
		if err != nil {
			// Unreachable after Validate, kept as a guard.
			a.closeBound()
			return nil, err
		}
		mirrorPat, err := pattern.Compile(r.MirrorPattern)
		if err != nil {
			a.closeBound()
			return nil, err
		}
		rp := &routeProxy{
			agent:     a,
			route:     r,
			recProto:  eventlog.Record{Src: cfg.ServiceName, Dst: r.Dst},
			pool:      newTargetPool(r.Targets),
			canaryPat: canaryPat,
			mirrorPat: mirrorPat,
			// The data-path client must be transparent: no timeout, since
			// detecting slow dependencies is the application's job, not
			// the proxy's.
			client: &http.Client{
				Transport: &http.Transport{
					MaxIdleConnsPerHost: 64,
					IdleConnTimeout:     90 * time.Second,
				},
				CheckRedirect: func(req *http.Request, via []*http.Request) error {
					// Pass redirects through to the caller untouched.
					return http.ErrUseLastResponse
				},
			},
		}
		srv, err := httpx.NewServer(r.ListenAddr, rp)
		if err != nil {
			a.closeBound()
			return nil, fmt.Errorf("proxy: bind route %s->%s: %w", cfg.ServiceName, r.Dst, err)
		}
		rp.server = srv
		a.routes[r.Dst] = rp
	}
	a.relays = make(map[string]*streamproxy.Relay, len(cfg.L4Routes))
	// Connection IDs share the span generator's collision-free scheme;
	// the "l4-" prefix keeps them recognizable in rule patterns and logs.
	connIDs := trace.NewGenerator("l4-"+cfg.agentID()+"-", nil)
	for _, r := range cfg.L4Routes {
		relay, err := streamproxy.New(streamproxy.Config{
			Src:        cfg.ServiceName,
			Dst:        r.Dst,
			ListenAddr: r.ListenAddr,
			Targets:    r.Targets,
			Matcher:    a.matcher,
			Log:        a.log,
			ConnID:     connIDs.Next,
			Agent:      cfg.agentID(),
		})
		if err != nil {
			a.closeBound()
			return nil, fmt.Errorf("proxy: bind l4 route %s->%s: %w", cfg.ServiceName, r.Dst, err)
		}
		a.relays[r.Dst] = relay
	}
	if cfg.ControlAddr != "" {
		srv, err := httpx.NewServer(cfg.ControlAddr, a.controlHandler())
		if err != nil {
			a.closeBound()
			return nil, fmt.Errorf("proxy: bind control API: %w", err)
		}
		a.control = srv
	}
	return a, nil
}

func (a *Agent) closeBound() {
	for _, rp := range a.routes {
		_ = rp.server.Close()
	}
	for _, relay := range a.relays {
		_ = relay.Close()
	}
	if a.control != nil {
		_ = a.control.Close()
	}
}

// Start begins serving all routes and the control API.
func (a *Agent) Start() {
	if a.started {
		return
	}
	a.started = true
	for _, rp := range a.routes {
		rp.server.Start()
	}
	for _, relay := range a.relays {
		relay.Start()
	}
	if a.control != nil {
		a.control.Start()
	}
}

// Close shuts down all listeners and waits for their goroutines,
// including any in-flight mirror copies.
func (a *Agent) Close() error {
	a.leaseMu.Lock()
	if a.leaseTimer != nil {
		a.leaseTimer.Stop()
		a.leaseTimer = nil
	}
	a.leaseMu.Unlock()
	var firstErr error
	for _, rp := range a.routes {
		if err := rp.server.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		rp.mirrors.Wait()
		rp.client.CloseIdleConnections()
	}
	for _, relay := range a.relays {
		if err := relay.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if a.control != nil {
		if err := a.control.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ServiceName returns the logical name of the co-located microservice.
func (a *Agent) ServiceName() string { return a.cfg.ServiceName }

// RouteAddr returns the bound local address for the route to dst, or an
// error if the agent has no such route. Microservices use this address as
// the base URL for the dependency.
func (a *Agent) RouteAddr(dst string) (string, error) {
	rp, ok := a.routes[dst]
	if !ok {
		return "", fmt.Errorf("proxy: agent for %q has no route to %q", a.cfg.ServiceName, dst)
	}
	return rp.server.Addr(), nil
}

// L4RouteAddr returns the bound local address of the stream relay to
// dst, or an error if the agent has no such L4 route. The co-located
// microservice dials this address to reach the raw-TCP dependency.
func (a *Agent) L4RouteAddr(dst string) (string, error) {
	relay, ok := a.relays[dst]
	if !ok {
		return "", fmt.Errorf("proxy: agent for %q has no l4 route to %q", a.cfg.ServiceName, dst)
	}
	return relay.Addr(), nil
}

// RouteURL returns the base http URL for the route to dst.
func (a *Agent) RouteURL(dst string) (string, error) {
	addr, err := a.RouteAddr(dst)
	if err != nil {
		return "", err
	}
	return "http://" + addr, nil
}

// ControlURL returns the base URL of the control API ("" if disabled).
func (a *Agent) ControlURL() string {
	if a.control == nil {
		return ""
	}
	return a.control.URL()
}

// Matcher exposes the agent's rule matcher for in-process rule management
// (tests and embedded deployments). Remote control uses the REST API.
func (a *Agent) Matcher() *rules.Matcher { return a.matcher }

// log sends a record to the sink, tagging the agent identity.
func (a *Agent) log(rec eventlog.Record) {
	if a.sink == nil {
		return
	}
	rec.Agent = a.cfg.agentID()
	// A full or unreachable store must not break the data path; the paper's
	// agents ship logs asynchronously via logstash with the same property.
	_ = a.sink.Log(rec)
}

// ServeHTTP is the data path for one route: log, match rules, inject
// faults, forward, and log the reply.
//
// Bodies are buffered only when something needs the bytes — a Modify
// rewrite or a mirror copy. Every other exchange streams request and reply
// bodies straight between the two connections through pooled buffers, so
// the proxy's memory cost is independent of body size.
func (rp *routeProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var (
		a = rp.agent
		// The inbound span — minted by the agent of the hop that delivered
		// this request to our service — becomes the parent of the span this
		// hop mints; at the application edge it is empty and the minted
		// span is a trace root.
		reqID      = trace.FromRequest(r)
		parentSpan = trace.SpanFromRequest(r)
		spanID     = a.spanGen.Next()
		start      = time.Now()
	)

	a.nProxied.Add(1)
	a.nSpans.Add(1)
	// This hop's execution index extends the caller's (relayed in
	// X-Gremlin-EI) with one (destination, call-ordinal) frame. AppendEI
	// bounds depth and bytes; a hop past the bound is counted and its
	// index marker-terminated rather than grown.
	hopEI, eiTruncated := trace.AppendEI(trace.EIFromRequest(r),
		rp.route.Dst, a.nextOrdinal(parentSpan, rp.route.Dst))
	if eiTruncated {
		a.nEITrunc.Add(1)
	}
	f := flow{reqID: reqID, spanID: spanID, parentSpan: parentSpan, ei: hopEI, start: start}
	// Deferred so severed connections (which unwind via ErrAbortHandler)
	// still observe their duration.
	defer func() { a.latency.Observe(time.Since(start).Seconds()) }()
	reqMsg := rules.Message{
		Src:       a.cfg.ServiceName,
		Dst:       rp.route.Dst,
		Type:      rules.OnRequest,
		RequestID: reqID,
		CallPath:  hopEI,
	}
	reqDecision := a.matcher.Decide(reqMsg)
	a.countFault(reqDecision)

	reqRec := rp.recProto
	reqRec.Timestamp = start
	reqRec.RequestID = reqID
	reqRec.SpanID = spanID
	reqRec.ParentSpanID = parentSpan
	reqRec.EI = hopEI
	reqRec.Kind = eventlog.KindRequest
	reqRec.Method = r.Method
	reqRec.URI = r.URL.RequestURI()
	reqRec.FaultAction = firedAction(reqDecision)
	reqRec.FaultRuleID = firedRuleID(reqDecision)
	a.log(reqRec)

	var (
		injected     time.Duration
		faultActions []string
		faultRules   []string
	)
	if reqDecision.Fired {
		faultActions = append(faultActions, string(reqDecision.Rule.Action))
		faultRules = append(faultRules, reqDecision.Rule.ID)
	}

	// Request-side faults.
	bufferReq := rp.wantsMirror(reqID)
	if reqDecision.Fired {
		switch reqDecision.Rule.Action {
		case rules.ActionAbort:
			rp.abort(w, r, reqDecision, f, injected, faultActions, faultRules)
			return
		case rules.ActionDelay:
			d := reqDecision.Rule.Delay()
			injected += d
			sleepOrDisconnect(r, d)
		case rules.ActionModify:
			bufferReq = true
		}
	}
	var reqBody []byte
	if bufferReq {
		var err error
		reqBody, err = io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err != nil {
			httpx.WriteError(w, http.StatusBadGateway, "proxy: read request body: %v", err)
			return
		}
		if reqDecision.Fired && reqDecision.Rule.Action == rules.ActionModify {
			reqBody = bytes.ReplaceAll(reqBody,
				[]byte(reqDecision.Rule.SearchBytes),
				[]byte(reqDecision.Rule.ReplaceBytes))
		}
	}

	// Forward upstream.
	resp, err := rp.forward(r, f, reqBody, bufferReq)
	if err != nil {
		a.log(rp.replyRecord(r, f, http.StatusBadGateway, injected,
			faultActions, faultRules, false))
		httpx.WriteError(w, http.StatusBadGateway, "proxy: forward to %s: %v", rp.route.Dst, err)
		return
	}

	// Response-side faults. The decision depends only on message metadata,
	// so it is made before deciding how to handle the reply body.
	respMsg := reqMsg
	respMsg.Type = rules.OnResponse
	respDecision := a.matcher.Decide(respMsg)
	a.countFault(respDecision)
	if respDecision.Fired {
		faultActions = append(faultActions, string(respDecision.Rule.Action))
		faultRules = append(faultRules, respDecision.Rule.ID)
	}
	status := resp.StatusCode

	if respDecision.Fired && respDecision.Rule.Action == rules.ActionAbort {
		discardBody(resp.Body)
		if respDecision.Rule.ErrorCode == rules.AbortSeverConnection {
			// The severed reply must still reach the event log: the checker
			// cannot reason about a connection cut it never saw.
			a.log(rp.replyRecord(r, f, 0, injected, faultActions, faultRules, true))
			rp.sever(w)
			return
		}
		status = respDecision.Rule.ErrorCode
		a.log(rp.replyRecord(r, f, status, injected, faultActions, faultRules, true))
		body := http.StatusText(status) + "\n"
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(status)
		_, _ = io.WriteString(w, body)
		return
	}
	if respDecision.Fired && respDecision.Rule.Action == rules.ActionDelay {
		d := respDecision.Rule.Delay()
		injected += d
		sleepOrDisconnect(r, d)
	}

	if respDecision.Fired && respDecision.Rule.Action == rules.ActionModify {
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		closeErr := resp.Body.Close()
		if err == nil {
			err = closeErr
		}
		if err != nil {
			httpx.WriteError(w, http.StatusBadGateway, "proxy: read response from %s: %v", rp.route.Dst, err)
			return
		}
		respBody = bytes.ReplaceAll(respBody,
			[]byte(respDecision.Rule.SearchBytes),
			[]byte(respDecision.Rule.ReplaceBytes))
		a.log(rp.replyRecord(r, f, status, injected, faultActions, faultRules, false))
		copyHeaders(w.Header(), resp.Header)
		// The body was rewritten; the upstream framing headers no longer
		// apply.
		w.Header().Del("Transfer-Encoding")
		w.Header().Set("Content-Length", strconv.Itoa(len(respBody)))
		w.WriteHeader(status)
		_, _ = w.Write(respBody)
		return
	}

	// Streaming fast path: the reply body flows upstream→client through a
	// pooled buffer without ever being held whole in memory.
	a.log(rp.replyRecord(r, f, status, injected, faultActions, faultRules, false))
	a.nStreamed.Add(1)
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(status)
	buf := copyBufs.Get().(*[]byte)
	_, _ = io.CopyBuffer(w, resp.Body, *buf)
	copyBufs.Put(buf)
	_ = resp.Body.Close()
}

// replyRecord builds the reply-side record for this exchange from the
// route's prototype.
func (rp *routeProxy) replyRecord(r *http.Request, f flow, status int,
	injected time.Duration, actions, ruleIDs []string, gremlin bool) eventlog.Record {

	rec := rp.recProto
	rec.Timestamp = time.Now()
	rec.RequestID = f.reqID
	rec.SpanID = f.spanID
	rec.ParentSpanID = f.parentSpan
	rec.EI = f.ei
	rec.Kind = eventlog.KindReply
	rec.Method = r.Method
	rec.URI = r.URL.RequestURI()
	rec.Status = status
	rec.LatencyMillis = float64(time.Since(f.start)) / float64(time.Millisecond)
	rec.FaultAction = strings.Join(actions, ",")
	rec.FaultRuleID = strings.Join(ruleIDs, ",")
	rec.InjectedDelayMillis = float64(injected) / float64(time.Millisecond)
	rec.GremlinGenerated = gremlin
	return rec
}

// abort terminates a request without forwarding it: either by returning the
// rule's HTTP error code or, for AbortSeverConnection, by severing the TCP
// connection to emulate a crashed process. Either way the reply is logged,
// severed connections as status 0.
func (rp *routeProxy) abort(w http.ResponseWriter, r *http.Request, d rules.Decision,
	f flow, injected time.Duration, actions, ruleIDs []string) {

	severed := d.Rule.ErrorCode == rules.AbortSeverConnection
	status := d.Rule.ErrorCode
	if severed {
		status = 0
	}
	rp.agent.log(rp.replyRecord(r, f, status, injected, actions, ruleIDs, true))
	if severed {
		rp.sever(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	_, _ = io.WriteString(w, http.StatusText(status)+"\n")
}

// sever closes the client connection without writing an HTTP response,
// emulating an abrupt TCP-level failure (Error=-1 in the paper's recipes).
func (rp *routeProxy) sever(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		conn, _, err := hj.Hijack()
		if err == nil {
			_ = conn.Close()
			return
		}
	}
	// Fallback: abort the handler, which closes the connection mid-stream.
	panic(http.ErrAbortHandler)
}

// forward sends the (possibly modified) request to the next upstream
// target — or, when the route has a canary and the request ID matches the
// canary pattern, to the next canary instance, keeping test traffic's side
// effects away from production state (§9).
//
// When buffered is false (no Modify rewrite, no mirror), the inbound body
// is handed straight to the outbound connection instead of being read into
// memory; body must then be nil.
func (rp *routeProxy) forward(r *http.Request, f flow, body []byte, buffered bool) (*http.Response, error) {
	var target string
	if len(rp.route.CanaryTargets) > 0 && rp.canaryPat.Match(trace.FromRequest(r)) {
		target = rp.route.CanaryTargets[int(rp.canaryNext.Add(1)-1)%len(rp.route.CanaryTargets)]
	} else {
		// Live pool: least-pending replica wins, round-robin among equals.
		// A fully drained pool (every replica unhealthy) fails the exchange,
		// which the caller reports as 502.
		addr, release, ok := rp.pool.pick()
		if !ok {
			return nil, fmt.Errorf("no live targets (all replicas of %s drained)", rp.route.Dst)
		}
		defer release()
		target = addr
	}
	url := "http://" + target + r.URL.RequestURI()
	var (
		out *http.Request
		err error
	)
	if buffered {
		rp.mirror(r, body)
		out, err = http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		out.ContentLength = int64(len(body))
	} else {
		src := io.Reader(r.Body)
		if r.ContentLength == 0 {
			// Bodyless request: NoBody keeps the outbound call from being
			// framed as chunked.
			src = http.NoBody
		}
		out, err = http.NewRequestWithContext(r.Context(), r.Method, url, src)
		if err != nil {
			return nil, err
		}
		out.ContentLength = r.ContentLength
	}
	copyHeaders(out.Header, r.Header)
	// The outbound request carries this hop's span so the callee's agent
	// (and any microservice relaying headers via trace.Propagate) links its
	// own span to ours, and this hop's execution index so the callee's
	// outbound calls extend the causal path.
	trace.SetSpan(out, f.spanID, f.parentSpan)
	trace.SetEI(out, f.ei)
	out.Header.Del("Connection")
	return rp.client.Do(out)
}

// wantsMirror reports whether this request would be mirrored to a shadow
// deployment — in which case the body must be buffered for the copy.
func (rp *routeProxy) wantsMirror(reqID string) bool {
	return len(rp.route.MirrorTargets) > 0 && rp.mirrorPat.Match(reqID)
}

// discardBody drains (bounded) and closes an upstream reply body that the
// data path will not relay, so the connection can be reused.
func discardBody(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(rc, maxBodyBytes))
	_ = rc.Close()
}

// mirror asynchronously copies the request to the next mirror target
// (shadow deployment); the copy's outcome never affects the live call.
func (rp *routeProxy) mirror(r *http.Request, body []byte) {
	if len(rp.route.MirrorTargets) == 0 || !rp.mirrorPat.Match(trace.FromRequest(r)) {
		return
	}
	target := rp.route.MirrorTargets[int(rp.mirrorNext.Add(1)-1)%len(rp.route.MirrorTargets)]
	url := "http://" + target + r.URL.RequestURI()
	// Detach from the live request's context: the shadow call must not be
	// cancelled when the live one completes first.
	out, err := http.NewRequest(r.Method, url, bytes.NewReader(body))
	if err != nil {
		return
	}
	copyHeaders(out.Header, r.Header)
	out.Header.Del("Connection")
	out.ContentLength = int64(len(body))
	rp.mirrors.Add(1)
	go func() {
		defer rp.mirrors.Done()
		resp, err := rp.client.Do(out)
		if err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes))
		_ = resp.Body.Close()
	}()
}

// sleepOrDisconnect sleeps for d but returns early if the caller goes away,
// so huge Hang delays do not pin goroutines after the client disconnects.
func sleepOrDisconnect(r *http.Request, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-r.Context().Done():
	}
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

func firedAction(d rules.Decision) string {
	if !d.Fired {
		return ""
	}
	return string(d.Rule.Action)
}

func firedRuleID(d rules.Decision) string {
	if !d.Fired {
		return ""
	}
	return d.Rule.ID
}
