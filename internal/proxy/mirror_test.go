package proxy

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gremlin/internal/eventlog"
	"gremlin/internal/rules"
)

// mirrorFixture builds an agent with a live backend and a shadow backend
// receiving mirrored copies.
func mirrorFixture(t *testing.T, mirrorPattern string) (*Agent, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var liveHits, shadowHits atomic.Int64
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		liveHits.Add(1)
		fmt.Fprint(w, "live")
	}))
	t.Cleanup(live.Close)
	shadow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		shadowHits.Add(1)
		fmt.Fprint(w, "shadow")
	}))
	t.Cleanup(shadow.Close)

	a, err := New(Config{
		ServiceName: "client",
		Routes: []Route{{
			Dst:           "server",
			ListenAddr:    "127.0.0.1:0",
			Targets:       []string{hostport(live.URL)},
			MirrorTargets: []string{hostport(shadow.URL)},
			MirrorPattern: mirrorPattern,
		}},
		Sink: eventlog.NewStore(),
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	t.Cleanup(func() {
		if err := a.Close(); err != nil {
			t.Error(err)
		}
	})
	return a, &liveHits, &shadowHits
}

func waitHits(t *testing.T, c *atomic.Int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if c.Load() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("hits = %d, want %d", c.Load(), want)
}

func TestMirrorCopiesTraffic(t *testing.T) {
	a, live, shadow := mirrorFixture(t, "")
	resp := routeGet(t, a, "/x", "prod-1")
	if got := readBody(t, resp); got != "live" {
		t.Fatalf("caller got %q, want the live response", got)
	}
	waitHits(t, live, 1)
	waitHits(t, shadow, 1)
}

func TestMirrorPatternConfinement(t *testing.T) {
	a, live, shadow := mirrorFixture(t, "test-*")
	resp := routeGet(t, a, "/x", "prod-1")
	readBody(t, resp)
	resp = routeGet(t, a, "/x", "test-1")
	readBody(t, resp)
	waitHits(t, live, 2)
	waitHits(t, shadow, 1) // only the test flow mirrored
	time.Sleep(20 * time.Millisecond)
	if shadow.Load() != 1 {
		t.Fatalf("shadow hits = %d, want 1", shadow.Load())
	}
}

func TestMirrorFailureDoesNotAffectLiveCall(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "live")
	}))
	t.Cleanup(live.Close)
	a, err := New(Config{
		ServiceName: "client",
		Routes: []Route{{
			Dst:           "server",
			ListenAddr:    "127.0.0.1:0",
			Targets:       []string{hostport(live.URL)},
			MirrorTargets: []string{"127.0.0.1:1"}, // shadow is down
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	t.Cleanup(func() {
		if err := a.Close(); err != nil {
			t.Error(err)
		}
	})
	resp := routeGet(t, a, "/x", "test-1")
	if got := readBody(t, resp); resp.StatusCode != 200 || got != "live" {
		t.Fatalf("live call affected by dead mirror: %d %q", resp.StatusCode, got)
	}
}

func TestMirrorConfigValidation(t *testing.T) {
	bad := Route{
		Dst: "b", ListenAddr: "127.0.0.1:0", Targets: []string{"t:1"},
		MirrorPattern: "test-*", // pattern without targets
	}
	if _, err := New(Config{ServiceName: "a", Routes: []Route{bad}}); err == nil {
		t.Fatal("mirror pattern without targets should fail")
	}
	bad = Route{
		Dst: "b", ListenAddr: "127.0.0.1:0", Targets: []string{"t:1"},
		MirrorTargets: []string{"m:1"}, MirrorPattern: "re:[",
	}
	if _, err := New(Config{ServiceName: "a", Routes: []Route{bad}}); err == nil {
		t.Fatal("invalid mirror pattern should fail")
	}
}

func TestMirrorFaultsApplyToLivePathOnly(t *testing.T) {
	// Fault rules act on the live forward; the mirror copy is sent before
	// forwarding and is not subject to abort (the shadow keeps receiving
	// traffic while the live path is failed — useful when the shadow IS
	// the system under test).
	a, _, shadow := mirrorFixture(t, "")
	if err := a.InstallRules(rules.Rule{
		ID: "ab", Src: "client", Dst: "server",
		Action: rules.ActionAbort, Pattern: "test-*", ErrorCode: 503,
	}); err != nil {
		t.Fatal(err)
	}
	resp := routeGet(t, a, "/x", "test-1")
	readBody(t, resp)
	if resp.StatusCode != 503 {
		t.Fatalf("live path status = %d, want aborted", resp.StatusCode)
	}
	// The abort happens before forward(), so no mirror copy either: the
	// fault semantics are "the request never left the caller".
	time.Sleep(20 * time.Millisecond)
	if shadow.Load() != 0 {
		t.Fatalf("aborted request was mirrored %d times", shadow.Load())
	}
}
