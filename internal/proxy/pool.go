package proxy

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// targetPool is the live, health-aware target set of one route. The
// configured Route.Targets seed it; a health checker (or any other
// controller) swaps the live set at runtime via Agent.SetRouteTargets so
// traffic drains from faulted replicas and returns when they recover.
// Selection is least-pending with round-robin tie-break: the replica with
// the fewest in-flight requests wins, and among equals a rotating cursor
// spreads load evenly.
type targetPool struct {
	mu      sync.Mutex
	targets []*poolTarget
	rr      uint64
}

type poolTarget struct {
	addr    string
	pending atomic.Int64
}

func newTargetPool(addrs []string) *targetPool {
	p := &targetPool{}
	p.set(addrs)
	return p
}

// pick selects a target and accounts an in-flight request against it; the
// caller must invoke the returned release exactly once when the exchange
// completes. ok is false when the pool is empty (every replica drained).
func (p *targetPool) pick() (addr string, release func(), ok bool) {
	p.mu.Lock()
	n := len(p.targets)
	if n == 0 {
		p.mu.Unlock()
		return "", nil, false
	}
	start := int(p.rr % uint64(n))
	p.rr++
	best := p.targets[start]
	for i := 1; i < n; i++ {
		t := p.targets[(start+i)%n]
		if t.pending.Load() < best.pending.Load() {
			best = t
		}
	}
	best.pending.Add(1)
	p.mu.Unlock()
	return best.addr, func() { best.pending.Add(-1) }, true
}

// set replaces the live target set. Addresses already in the pool keep
// their in-flight accounting; new ones start cold.
func (p *targetPool) set(addrs []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	old := make(map[string]*poolTarget, len(p.targets))
	for _, t := range p.targets {
		old[t.addr] = t
	}
	next := make([]*poolTarget, 0, len(addrs))
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		if seen[a] {
			continue
		}
		seen[a] = true
		if t, ok := old[a]; ok {
			next = append(next, t)
		} else {
			next = append(next, &poolTarget{addr: a})
		}
	}
	p.targets = next
}

// snapshot returns the live target addresses in pool order.
func (p *targetPool) snapshot() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.targets))
	for i, t := range p.targets {
		out[i] = t.addr
	}
	return out
}

// SetRouteTargets replaces the live target set of the route to dst —
// the drain/restore hook health checkers use. The route must exist; an
// empty set is legal and makes the route answer 502 until targets return.
func (a *Agent) SetRouteTargets(dst string, targets []string) error {
	rp, ok := a.routes[dst]
	if !ok {
		return fmt.Errorf("proxy: agent for %q has no route to %q", a.cfg.ServiceName, dst)
	}
	rp.pool.set(targets)
	return nil
}

// RouteTargets returns the live target set of the route to dst.
func (a *Agent) RouteTargets(dst string) ([]string, error) {
	rp, ok := a.routes[dst]
	if !ok {
		return nil, fmt.Errorf("proxy: agent for %q has no route to %q", a.cfg.ServiceName, dst)
	}
	return rp.pool.snapshot(), nil
}
