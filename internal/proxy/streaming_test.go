package proxy

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gremlin/internal/eventlog"
	"gremlin/internal/rules"
	"gremlin/internal/trace"
)

// severedReply fetches the single reply record an agent logged for a
// severed connection.
func severedReply(t *testing.T, store *eventlog.Store) eventlog.Record {
	t.Helper()
	reps, err := store.Select(eventlog.Query{Kind: eventlog.KindReply})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 {
		t.Fatalf("got %d reply records, want 1", len(reps))
	}
	return reps[0]
}

func TestSeverConnectionLogsReplyRequestSide(t *testing.T) {
	backend, hits := newEcho(t)
	store := eventlog.NewStore()
	a := newAgent(t, store, hostport(backend.URL))
	if err := a.InstallRules(rules.Rule{
		ID: "crash-req", Src: "client", Dst: "server",
		Action: rules.ActionAbort, Pattern: "test-*",
		ErrorCode: rules.AbortSeverConnection,
	}); err != nil {
		t.Fatal(err)
	}
	u, err := a.RouteURL("server")
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodGet, u+"/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	trace.SetRequestID(req, "test-1")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("want transport error for severed connection")
	}
	if hits.Load() != 0 {
		t.Fatal("request-side sever must not reach the backend")
	}
	rec := severedReply(t, store)
	if rec.Status != 0 || !rec.GremlinGenerated || rec.FaultAction != string(rules.ActionAbort) {
		t.Fatalf("severed reply record = %+v, want status 0, gremlin-generated, abort", rec)
	}
}

// TestSeverConnectionLogsReplyResponseSide pins the fix for a hole in the
// event log: a response-side sever used to cut the connection without
// logging any reply, leaving the checker blind to the fault it injected.
func TestSeverConnectionLogsReplyResponseSide(t *testing.T) {
	backend, hits := newEcho(t)
	store := eventlog.NewStore()
	a := newAgent(t, store, hostport(backend.URL))
	if err := a.InstallRules(rules.Rule{
		ID: "crash-resp", Src: "client", Dst: "server", On: rules.OnResponse,
		Action: rules.ActionAbort, Pattern: "test-*",
		ErrorCode: rules.AbortSeverConnection,
	}); err != nil {
		t.Fatal(err)
	}
	u, err := a.RouteURL("server")
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodGet, u+"/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	trace.SetRequestID(req, "test-1")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("want transport error for severed connection")
	}
	if hits.Load() != 1 {
		t.Fatal("response-side sever happens after the backend call")
	}
	rec := severedReply(t, store)
	if rec.Status != 0 || !rec.GremlinGenerated || rec.FaultAction != string(rules.ActionAbort) {
		t.Fatalf("severed reply record = %+v, want status 0, gremlin-generated, abort", rec)
	}
	if a.Stats().Severed != 1 {
		t.Fatalf("Severed = %d, want 1", a.Stats().Severed)
	}
}

func TestStreamingFastPathCountsAndForwards(t *testing.T) {
	// A reply body big enough that buffering it would be visible.
	big := strings.Repeat("x", 1<<20)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, big)
	}))
	t.Cleanup(backend.Close)
	store := eventlog.NewStore()
	a := newAgent(t, store, hostport(backend.URL))

	resp := routeGet(t, a, "/x", "test-1")
	if got := readBody(t, resp); got != big {
		t.Fatalf("streamed body: got %d bytes, want %d intact", len(got), len(big))
	}
	if st := a.Stats(); st.Streamed != 1 {
		t.Fatalf("Streamed = %d, want 1", st.Streamed)
	}

	// A response Modify rule forces the buffered slow path.
	if err := a.InstallRules(rules.Rule{
		ID: "m1", Src: "client", Dst: "server", On: rules.OnResponse,
		Action: rules.ActionModify, Pattern: "test-*",
		SearchBytes: "xxx", ReplaceBytes: "yyy",
	}); err != nil {
		t.Fatal(err)
	}
	resp = routeGet(t, a, "/x", "test-2")
	if got := readBody(t, resp); !strings.HasPrefix(got, "yyy") {
		t.Fatalf("modify path: body starts %q, want rewritten", got[:16])
	}
	if st := a.Stats(); st.Streamed != 1 {
		t.Fatalf("Streamed = %d after Modify exchange, want still 1", st.Streamed)
	}
}

func TestStreamingPreservesPostBody(t *testing.T) {
	backend, _ := newEcho(t)
	a := newAgent(t, eventlog.NewStore(), hostport(backend.URL))
	u, err := a.RouteURL("server")
	if err != nil {
		t.Fatal(err)
	}
	payload := strings.Repeat("payload!", 4096)
	req, err := http.NewRequest(http.MethodPost, u+"/submit", bytes.NewReader([]byte(payload)))
	if err != nil {
		t.Fatal(err)
	}
	trace.SetRequestID(req, "test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	want := "POST /submit body=" + payload
	if got := readBody(t, resp); got != want {
		t.Fatalf("echoed %d bytes, want %d with body intact", len(got), len(want))
	}
}

// slowStoreSink emulates a distant log store: every shipment costs a long
// round trip.
type slowStoreSink struct {
	delay time.Duration
	inner *eventlog.Store
}

func (s *slowStoreSink) Log(recs ...eventlog.Record) error {
	time.Sleep(s.delay)
	return s.inner.Log(recs...)
}

// TestProxyDataPathNotBlockedBySlowStore wires an agent to a buffered sink
// over an artificially slow store and checks that live requests never wait
// out a store round trip.
func TestProxyDataPathNotBlockedBySlowStore(t *testing.T) {
	backend, _ := newEcho(t)
	slow := &slowStoreSink{delay: 300 * time.Millisecond, inner: eventlog.NewStore()}
	buffered := eventlog.NewBufferedSinkOpts(slow, eventlog.BufferOptions{
		Size: 1, Max: 1 << 16, Interval: 10 * time.Millisecond,
	})
	t.Cleanup(func() {
		if err := buffered.Close(); err != nil {
			t.Error(err)
		}
	})

	a, err := New(Config{
		ServiceName: "client",
		Routes: []Route{{
			Dst:        "server",
			ListenAddr: "127.0.0.1:0",
			Targets:    []string{hostport(backend.URL)},
		}},
		Sink: buffered,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	t.Cleanup(func() {
		if err := a.Close(); err != nil {
			t.Error(err)
		}
	})

	const n = 10 // each proxied call logs 2 records
	start := time.Now()
	for i := 0; i < n; i++ {
		resp := routeGet(t, a, "/x", fmt.Sprintf("test-%d", i))
		readBody(t, resp)
	}
	elapsed := time.Since(start)
	// Synchronous shipping would cost 2×n round trips (6 s); even one round
	// trip on the data path would push past the 300 ms delay.
	if elapsed >= slow.delay {
		t.Fatalf("%d proxied requests took %v; data path blocked on the store", n, elapsed)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && slow.inner.Len() < 2*n {
		time.Sleep(5 * time.Millisecond)
	}
	if got := slow.inner.Len(); got != 2*n {
		t.Fatalf("store has %d records, want %d", got, 2*n)
	}
}
