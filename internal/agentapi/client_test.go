package agentapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gremlin/internal/rules"
)

// The client's behaviour against a live agent is covered by
// internal/proxy's control tests; these tests pin the client's own
// contract: URL construction, error surfacing, and response decoding
// against a canned server.

func cannedServer(t *testing.T, status int, body string, capture *[]string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if capture != nil {
			*capture = append(*capture, r.Method+" "+r.RequestURI)
		}
		w.WriteHeader(status)
		_, _ = w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestBaseURL(t *testing.T) {
	c := New("http://agent:9001", nil)
	if c.BaseURL() != "http://agent:9001" {
		t.Fatalf("BaseURL = %q", c.BaseURL())
	}
}

func TestPathsAndMethods(t *testing.T) {
	var calls []string
	srv := cannedServer(t, 200, `[]`, &calls)
	c := New(srv.URL, nil)

	if _, err := c.ListRules(); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveRule("has space/slash"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if !c.Healthy() {
		t.Fatal("healthy server reported unhealthy")
	}

	want := []string{
		"GET /v1/rules",
		"DELETE /v1/rules/has%20space%2Fslash",
		"POST /v1/flush",
		"GET /healthz",
	}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v", calls)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("call %d = %q, want %q", i, calls[i], want[i])
		}
	}
}

func TestServerErrorSurfaced(t *testing.T) {
	srv := cannedServer(t, 400, `{"error":"mis-targeted rule"}`, nil)
	c := New(srv.URL, nil)
	err := c.InstallRules(rules.Rule{ID: "x", Src: "a", Dst: "b", Action: rules.ActionAbort, ErrorCode: 503})
	if err == nil || !strings.Contains(err.Error(), "mis-targeted rule") {
		t.Fatalf("err = %v, want body surfaced", err)
	}
}

func TestMalformedResponseBody(t *testing.T) {
	srv := cannedServer(t, 200, `not json`, nil)
	c := New(srv.URL, nil)
	if _, err := c.ListRules(); err == nil {
		t.Fatal("want decode error")
	}
	if _, err := c.Info(); err == nil {
		t.Fatal("want decode error")
	}
}

func TestDefaultClientTimeout(t *testing.T) {
	c := New("http://127.0.0.1:1", nil)
	if c.http.Timeout != 10*time.Second {
		t.Fatalf("default timeout = %v", c.http.Timeout)
	}
}
