package agentapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gremlin/internal/rules"
)

// The client's behaviour against a live agent is covered by
// internal/proxy's control tests; these tests pin the client's own
// contract: URL construction, error surfacing, and response decoding
// against a canned server.

func cannedServer(t *testing.T, status int, body string, capture *[]string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if capture != nil {
			*capture = append(*capture, r.Method+" "+r.RequestURI)
		}
		w.WriteHeader(status)
		_, _ = w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestBaseURL(t *testing.T) {
	c := New("http://agent:9001", nil)
	if c.BaseURL() != "http://agent:9001" {
		t.Fatalf("BaseURL = %q", c.BaseURL())
	}
}

func TestPathsAndMethods(t *testing.T) {
	ctx := context.Background()
	var calls []string
	srv := cannedServer(t, 200, `[]`, &calls)
	c := New(srv.URL, nil)

	if _, err := c.ListRules(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveRule(ctx, "has space/slash"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if !c.Healthy(ctx) {
		t.Fatal("healthy server reported unhealthy")
	}

	want := []string{
		"GET /v1/rules",
		"DELETE /v1/rules/has%20space%2Fslash",
		"POST /v1/flush",
		"GET /healthz",
	}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v", calls)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("call %d = %q, want %q", i, calls[i], want[i])
		}
	}
}

func TestServerErrorSurfaced(t *testing.T) {
	srv := cannedServer(t, 400, `{"error":"mis-targeted rule"}`, nil)
	c := New(srv.URL, nil)
	err := c.InstallRules(context.Background(), rules.Rule{ID: "x", Src: "a", Dst: "b", Action: rules.ActionAbort, ErrorCode: 503})
	if err == nil || !strings.Contains(err.Error(), "mis-targeted rule") {
		t.Fatalf("err = %v, want body surfaced", err)
	}
}

func TestMalformedResponseBody(t *testing.T) {
	ctx := context.Background()
	srv := cannedServer(t, 200, `not json`, nil)
	c := New(srv.URL, nil)
	if _, err := c.ListRules(ctx); err == nil {
		t.Fatal("want decode error")
	}
	if _, err := c.Info(ctx); err == nil {
		t.Fatal("want decode error")
	}
}

func TestContextCancellationAborts(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	t.Cleanup(func() { close(block); srv.Close() })

	c := New(srv.URL, &http.Client{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Info(ctx); err == nil {
		t.Fatal("want context deadline error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, context not honoured", elapsed)
	}
}

func TestPutRuleSetSentinelErrors(t *testing.T) {
	ctx := context.Background()
	set := rules.RuleSet{Generation: 3}

	conflict := cannedServer(t, http.StatusConflict,
		`{"error":"stale generation","current":{"generation":9,"hash":"sha256:ab","rules":2}}`, nil)
	st, err := New(conflict.URL, nil).PutRuleSet(ctx, set, rules.NoMatch)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
	if st.Generation != 9 || st.Rules != 2 {
		t.Fatalf("conflict status = %+v, want agent's current version", st)
	}

	precond := cannedServer(t, http.StatusPreconditionFailed,
		`{"error":"generation moved","current":{"generation":7}}`, nil)
	st, err = New(precond.URL, nil).PutRuleSet(ctx, set, 5)
	if !errors.Is(err, ErrPreconditionFailed) {
		t.Fatalf("want ErrPreconditionFailed, got %v", err)
	}
	if st.Generation != 7 {
		t.Fatalf("precondition status = %+v", st)
	}

	boom := cannedServer(t, http.StatusInternalServerError, `oops`, nil)
	if _, err := New(boom.URL, nil).PutRuleSet(ctx, set, rules.NoMatch); err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("want 500 surfaced, got %v", err)
	}
}

func TestPutRuleSetIfMatchHeader(t *testing.T) {
	var headers []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		v, ok := r.Header[http.CanonicalHeaderKey("If-Match")]
		if !ok {
			headers = append(headers, "<absent>")
		} else {
			headers = append(headers, strings.Join(v, ","))
		}
		_, _ = w.Write([]byte(`{"generation":1}`))
	}))
	t.Cleanup(srv.Close)

	ctx := context.Background()
	c := New(srv.URL, nil)
	if _, err := c.PutRuleSet(ctx, rules.RuleSet{Generation: 1}, rules.NoMatch); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutRuleSet(ctx, rules.RuleSet{Generation: 1}, 42); err != nil {
		t.Fatal(err)
	}
	if len(headers) != 2 || headers[0] != "<absent>" || headers[1] != "42" {
		t.Fatalf("If-Match headers = %v", headers)
	}
}

func TestDefaultClientTimeout(t *testing.T) {
	c := New("http://127.0.0.1:1", nil)
	if c.http.Timeout != 10*time.Second {
		t.Fatalf("default timeout = %v", c.http.Timeout)
	}
}
