// Package agentapi provides the Go client for a Gremlin agent's REST
// control API. The Failure Orchestrator uses it to program the data plane;
// the gremlin-ctl tool uses it for manual operation.
package agentapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"gremlin/internal/proxy"
	"gremlin/internal/rules"
)

// Client talks to one Gremlin agent control endpoint.
type Client struct {
	baseURL string
	http    *http.Client
}

// New creates a client for the agent control API at baseURL. If hc is nil a
// default client with a 10 s timeout is used.
func New(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{baseURL: baseURL, http: hc}
}

// BaseURL returns the control endpoint this client targets.
func (c *Client) BaseURL() string { return c.baseURL }

// Info fetches the agent's identity and routes.
func (c *Client) Info() (proxy.InfoBody, error) {
	var info proxy.InfoBody
	err := c.do(http.MethodGet, "/v1/info", nil, &info)
	if err != nil {
		return proxy.InfoBody{}, fmt.Errorf("agentapi: info: %w", err)
	}
	return info, nil
}

// InstallRules installs a batch of fault-injection rules on the agent.
func (c *Client) InstallRules(batch ...rules.Rule) error {
	if len(batch) == 0 {
		return nil
	}
	if err := c.do(http.MethodPost, "/v1/rules", batch, nil); err != nil {
		return fmt.Errorf("agentapi: install %d rules: %w", len(batch), err)
	}
	return nil
}

// ListRules returns the rules installed on the agent.
func (c *Client) ListRules() ([]rules.Rule, error) {
	var out []rules.Rule
	if err := c.do(http.MethodGet, "/v1/rules", nil, &out); err != nil {
		return nil, fmt.Errorf("agentapi: list rules: %w", err)
	}
	return out, nil
}

// RemoveRule removes one rule by ID.
func (c *Client) RemoveRule(id string) error {
	if err := c.do(http.MethodDelete, "/v1/rules/"+url.PathEscape(id), nil, nil); err != nil {
		return fmt.Errorf("agentapi: remove rule %q: %w", id, err)
	}
	return nil
}

// ClearRules removes all rules, returning how many were installed.
func (c *Client) ClearRules() (int, error) {
	var out map[string]int
	if err := c.do(http.MethodDelete, "/v1/rules", nil, &out); err != nil {
		return 0, fmt.Errorf("agentapi: clear rules: %w", err)
	}
	return out["removed"], nil
}

// Flush asks the agent to flush buffered observation records to the store.
func (c *Client) Flush() error {
	if err := c.do(http.MethodPost, "/v1/flush", nil, nil); err != nil {
		return fmt.Errorf("agentapi: flush: %w", err)
	}
	return nil
}

// Metrics fetches the agent's Prometheus text exposition (GET /metrics),
// raw, for relaying to a scraper or a human.
func (c *Client) Metrics() (string, error) {
	resp, err := c.http.Get(c.baseURL + "/metrics")
	if err != nil {
		return "", fmt.Errorf("agentapi: metrics: %w", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return "", fmt.Errorf("agentapi: metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("agentapi: metrics: agent returned %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	return string(b), nil
}

// Healthy reports whether the agent's control API responds.
func (c *Client) Healthy() bool {
	return c.do(http.MethodGet, "/healthz", nil, nil) == nil
}

func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("marshal: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.baseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
		_ = resp.Body.Close()
	}()
	if resp.StatusCode >= 400 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("agent returned %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	return nil
}
