// Package agentapi provides the Go client for a Gremlin agent's REST
// control API. The Failure Orchestrator uses it to program the data plane;
// the gremlin-ctl tool uses it for manual operation.
//
// Every method takes a context: reconciliation loops and recipe runs pass
// theirs down so a hung agent can never block a Revert or an anti-entropy
// sweep indefinitely.
package agentapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"gremlin/internal/proxy"
	"gremlin/internal/rules"
)

// Sentinel errors for the versioned rule-set path. PutRuleSet wraps them so
// reconcilers can branch on errors.Is without parsing HTTP status codes.
var (
	// ErrConflict is returned when the agent rejected a rule set as stale
	// (older generation) or conflicting (same generation, different
	// content) — HTTP 409.
	ErrConflict = errors.New("agentapi: rule set conflicts with the agent's installed generation")

	// ErrPreconditionFailed is returned when an If-Match compare-and-swap
	// lost the race: the agent's generation moved since it was observed —
	// HTTP 412. Re-read the agent's state and retry.
	ErrPreconditionFailed = errors.New("agentapi: if-match precondition failed")
)

// Client talks to one Gremlin agent control endpoint.
type Client struct {
	baseURL string
	http    *http.Client
}

// New creates a client for the agent control API at baseURL. If hc is nil a
// default client with a 10 s timeout is used.
func New(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{baseURL: baseURL, http: hc}
}

// BaseURL returns the control endpoint this client targets.
func (c *Client) BaseURL() string { return c.baseURL }

// Info fetches the agent's identity, routes, and rule-set version.
func (c *Client) Info(ctx context.Context) (proxy.InfoBody, error) {
	var info proxy.InfoBody
	err := c.do(ctx, http.MethodGet, "/v1/info", nil, &info)
	if err != nil {
		return proxy.InfoBody{}, fmt.Errorf("agentapi: info: %w", err)
	}
	return info, nil
}

// GetRuleSet fetches the agent's complete versioned rule state.
func (c *Client) GetRuleSet(ctx context.Context) (proxy.RuleSetBody, error) {
	var body proxy.RuleSetBody
	if err := c.do(ctx, http.MethodGet, "/v1/ruleset", nil, &body); err != nil {
		return proxy.RuleSetBody{}, fmt.Errorf("agentapi: get ruleset: %w", err)
	}
	return body, nil
}

// PutRuleSet atomically replaces the agent's whole rule state with set
// (PUT /v1/ruleset). ifMatch, unless rules.NoMatch, is sent as an If-Match
// precondition: the apply succeeds only while the agent is still at that
// generation. On 409/412 the returned status carries the agent's current
// version and the error wraps ErrConflict / ErrPreconditionFailed.
func (c *Client) PutRuleSet(ctx context.Context, set rules.RuleSet, ifMatch uint64) (rules.RuleSetStatus, error) {
	b, err := json.Marshal(set)
	if err != nil {
		return rules.RuleSetStatus{}, fmt.Errorf("agentapi: put ruleset: marshal: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.baseURL+"/v1/ruleset", bytes.NewReader(b))
	if err != nil {
		return rules.RuleSetStatus{}, fmt.Errorf("agentapi: put ruleset: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if ifMatch != rules.NoMatch {
		req.Header.Set("If-Match", strconv.FormatUint(ifMatch, 10))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return rules.RuleSetStatus{}, fmt.Errorf("agentapi: put ruleset: %w", err)
	}
	defer drainClose(resp.Body)

	switch resp.StatusCode {
	case http.StatusOK:
		var st rules.RuleSetStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return rules.RuleSetStatus{}, fmt.Errorf("agentapi: put ruleset: decode response: %w", err)
		}
		return st, nil
	case http.StatusConflict, http.StatusPreconditionFailed:
		var cb struct {
			Error   string              `json:"error"`
			Current rules.RuleSetStatus `json:"current"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&cb)
		sentinel := ErrConflict
		if resp.StatusCode == http.StatusPreconditionFailed {
			sentinel = ErrPreconditionFailed
		}
		return cb.Current, fmt.Errorf("%w: %s", sentinel, cb.Error)
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return rules.RuleSetStatus{}, fmt.Errorf("agentapi: put ruleset: agent returned %d: %s",
			resp.StatusCode, bytes.TrimSpace(b))
	}
}

// InstallRules installs a batch of fault-injection rules on the agent.
func (c *Client) InstallRules(ctx context.Context, batch ...rules.Rule) error {
	if len(batch) == 0 {
		return nil
	}
	if err := c.do(ctx, http.MethodPost, "/v1/rules", batch, nil); err != nil {
		return fmt.Errorf("agentapi: install %d rules: %w", len(batch), err)
	}
	return nil
}

// ListRules returns the rules installed on the agent.
func (c *Client) ListRules(ctx context.Context) ([]rules.Rule, error) {
	var out []rules.Rule
	if err := c.do(ctx, http.MethodGet, "/v1/rules", nil, &out); err != nil {
		return nil, fmt.Errorf("agentapi: list rules: %w", err)
	}
	return out, nil
}

// RemoveRule removes one rule by ID.
func (c *Client) RemoveRule(ctx context.Context, id string) error {
	if err := c.do(ctx, http.MethodDelete, "/v1/rules/"+url.PathEscape(id), nil, nil); err != nil {
		return fmt.Errorf("agentapi: remove rule %q: %w", id, err)
	}
	return nil
}

// ClearRules removes all rules, returning how many were installed.
func (c *Client) ClearRules(ctx context.Context) (int, error) {
	var out map[string]int
	if err := c.do(ctx, http.MethodDelete, "/v1/rules", nil, &out); err != nil {
		return 0, fmt.Errorf("agentapi: clear rules: %w", err)
	}
	return out["removed"], nil
}

// Flush asks the agent to flush buffered observation records to the store.
func (c *Client) Flush(ctx context.Context) error {
	if err := c.do(ctx, http.MethodPost, "/v1/flush", nil, nil); err != nil {
		return fmt.Errorf("agentapi: flush: %w", err)
	}
	return nil
}

// Metrics fetches the agent's Prometheus text exposition (GET /metrics),
// raw, for relaying to a scraper or a human.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("agentapi: metrics: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", fmt.Errorf("agentapi: metrics: %w", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return "", fmt.Errorf("agentapi: metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("agentapi: metrics: agent returned %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	return string(b), nil
}

// Healthy reports whether the agent's control API responds.
func (c *Client) Healthy(ctx context.Context) bool {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil) == nil
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("marshal: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode >= 400 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("agent returned %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	return nil
}

// drainClose drains (bounded) and closes a response body so the
// connection can be reused.
func drainClose(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(rc, 64<<10))
	_ = rc.Close()
}
