package topology

import (
	"fmt"
	"time"

	"gremlin/internal/microservice"
	"gremlin/internal/resilience"
)

// BinaryTree returns a Spec for a complete binary tree of services of the
// given depth (depth 0 = 1 service, depth 4 = 31 services) — the
// application shape used by the paper's orchestration/assertion benchmark
// (Figure 7): "we deployed the containers in different configurations by
// constructing binary trees of various depths and using them as the
// application graph."
//
// Service names follow heap indexing: tree-0 is the root and the children
// of tree-i are tree-(2i+1) and tree-(2i+2). Interior services fan out to
// both children and fail fast; leaves answer directly.
func BinaryTree(depth int, workTime time.Duration) Spec {
	n := (1 << (depth + 1)) - 1
	services := make([]ServiceSpec, 0, n)
	for i := 0; i < n; i++ {
		s := ServiceSpec{
			Name:     treeName(i),
			WorkTime: workTime,
		}
		left, right := 2*i+1, 2*i+2
		if left < n {
			s.DependsOn = append(s.DependsOn, treeName(left))
		}
		if right < n {
			s.DependsOn = append(s.DependsOn, treeName(right))
		}
		if len(s.DependsOn) > 0 {
			s.Handler = microservice.FanOutHandler(microservice.FailFast)
		}
		services = append(services, s)
	}
	return Spec{Services: services, Entry: treeName(0)}
}

func treeName(i int) string { return fmt.Sprintf("tree-%d", i) }

// TreeServiceCount returns the number of services in a binary tree of the
// given depth — the x axis of Figure 7 (1, 3, 7, 15, 31 for depths 0–4).
func TreeServiceCount(depth int) int { return (1 << (depth + 1)) - 1 }

// WordPress service names (case study, §7.1).
const (
	WordPressService     = "wordpress"
	ElasticsearchService = "elasticsearch"
	MySQLService         = "mysql"
)

// WordPressOptions tunes the WordPress stack.
type WordPressOptions struct {
	// BackendWorkTime simulates Elasticsearch/MySQL query time (default
	// 5 ms).
	BackendWorkTime time.Duration

	// SearchTimeout, when positive, gives the ElasticPress-like plugin a
	// timeout on its Elasticsearch calls — the fix whose absence Figure 5
	// demonstrates. Zero reproduces the plugin as shipped: no timeout, no
	// circuit breaker.
	SearchTimeout time.Duration

	// SearchBreaker, when non-nil, adds a circuit breaker on the
	// wordpress→elasticsearch path — the fix whose absence Figure 6
	// demonstrates.
	SearchBreaker *resilience.BreakerConfig
}

// WordPress returns a Spec for the case-study deployment (§7.1): WordPress
// with an ElasticPress-style search plugin that queries Elasticsearch and
// falls back to MySQL when Elasticsearch is unreachable or returns an
// error — but, as shipped, implements no timeout and no circuit breaker.
func WordPress(opts WordPressOptions) Spec {
	if opts.BackendWorkTime <= 0 {
		opts.BackendWorkTime = 5 * time.Millisecond
	}
	wp := ServiceSpec{
		Name:      WordPressService,
		DependsOn: []string{ElasticsearchService, MySQLService},
		Handler:   microservice.FallbackHandler(ElasticsearchService, MySQLService),
	}
	if opts.SearchTimeout > 0 || opts.SearchBreaker != nil {
		timeout := opts.SearchTimeout
		breaker := opts.SearchBreaker
		wp.ClientFor = func(dep string, base resilience.Doer) resilience.Doer {
			if dep != ElasticsearchService {
				return base
			}
			d := base
			if breaker != nil {
				d = resilience.NewBreaker(d, *breaker)
			}
			if timeout > 0 {
				d = resilience.NewTimeout(d, timeout)
			}
			return d
		}
	}
	return Spec{
		Services: []ServiceSpec{
			wp,
			{Name: ElasticsearchService, Handler: microservice.LeafHandler("es-hits"), WorkTime: opts.BackendWorkTime},
			{Name: MySQLService, Handler: microservice.LeafHandler("mysql-rows"), WorkTime: opts.BackendWorkTime},
		},
		Entry: WordPressService,
	}
}

// Enterprise service names (Figure 4). The external APIs are simulated by
// local services with their own latency profiles.
const (
	WebAppService        = "webapp"
	CatalogService       = "catalog"
	ActivityService      = "activity"
	GithubService        = "github.com"
	StackOverflowService = "stackoverflow.com"
)

// EnterpriseOptions tunes the enterprise application.
type EnterpriseOptions struct {
	// ExternalLatency simulates the round-trip to the external Internet
	// services (default 20 ms).
	ExternalLatency time.Duration

	// WebAppClient builds the web app's dependency clients. The case
	// study's web app "relied heavily on the Unirest library for
	// abstracting boilerplate failure-handling logic"; pass a factory
	// returning resilience.NewLeakyTimeout(...) to reproduce its timeout
	// bug, or a correct Timeout/Retry stack to model the fixed version.
	WebAppClient func(dep string, base resilience.Doer) resilience.Doer
}

// Enterprise returns a Spec for the paper's enterprise case study
// application (Figure 4): a user-facing web app that aggregates a service
// catalog, a developer-activity service, and the github.com and
// stackoverflow.com APIs.
func Enterprise(opts EnterpriseOptions) Spec {
	if opts.ExternalLatency <= 0 {
		opts.ExternalLatency = 20 * time.Millisecond
	}
	return Spec{
		Services: []ServiceSpec{
			{
				Name:      WebAppService,
				DependsOn: []string{CatalogService, ActivityService},
				Handler:   microservice.FanOutHandler(microservice.BestEffort),
				ClientFor: opts.WebAppClient,
			},
			{
				Name:     CatalogService,
				Handler:  microservice.LeafHandler(`{"services":["paypal-api","google-maps-api"]}`),
				WorkTime: 2 * time.Millisecond,
			},
			{
				Name:      ActivityService,
				DependsOn: []string{GithubService, StackOverflowService},
				Handler:   microservice.FanOutHandler(microservice.BestEffort),
			},
			{
				Name:     GithubService,
				Handler:  microservice.LeafHandler(`{"repos":42}`),
				WorkTime: opts.ExternalLatency,
			},
			{
				Name:     StackOverflowService,
				Handler:  microservice.LeafHandler(`{"questions":17}`),
				WorkTime: opts.ExternalLatency,
			},
		},
		Entry: WebAppService,
	}
}

// MessageBus pipeline service names (Table 1 / §5 outage recipes).
const (
	FrontendService   = "frontend"
	PublisherService  = "publisher"
	MessageBusService = "messagebus"
	CassandraService  = "cassandra"
)

// MessageBusOptions tunes the pipeline.
type MessageBusOptions struct {
	// PublisherTimeout, when positive, bounds how long the publisher waits
	// on the bus — the missing protection in the Stackdriver/Parse.ly
	// outages. Zero reproduces the fragile deployment.
	PublisherTimeout time.Duration

	// PublisherBreaker, when non-nil, adds a circuit breaker between the
	// publisher and the bus.
	PublisherBreaker *resilience.BreakerConfig
}

// MessageBus returns a Spec modelling the middleware-cascade outages of
// Table 1 (Stackdriver 2013, Parse.ly 2015): services publish into a
// message bus whose consumers forward to a Cassandra cluster. The bus
// forwards synchronously, so when Cassandra fails the bus blocks and the
// failure percolates to every publisher.
func MessageBus(opts MessageBusOptions) Spec {
	pub := ServiceSpec{
		Name:      PublisherService,
		DependsOn: []string{MessageBusService},
		Handler:   microservice.ProxyHandler(MessageBusService),
	}
	if opts.PublisherTimeout > 0 || opts.PublisherBreaker != nil {
		timeout := opts.PublisherTimeout
		breaker := opts.PublisherBreaker
		pub.ClientFor = func(dep string, base resilience.Doer) resilience.Doer {
			d := base
			if breaker != nil {
				d = resilience.NewBreaker(d, *breaker)
			}
			if timeout > 0 {
				d = resilience.NewTimeout(d, timeout)
			}
			return d
		}
	}
	return Spec{
		Services: []ServiceSpec{
			{
				Name:      FrontendService,
				DependsOn: []string{PublisherService},
				Handler:   microservice.ProxyHandler(PublisherService),
			},
			pub,
			{
				Name:      MessageBusService,
				DependsOn: []string{CassandraService},
				Handler:   microservice.ProxyHandler(CassandraService),
			},
			{
				Name:     CassandraService,
				Handler:  microservice.LeafHandler("stored"),
				WorkTime: 2 * time.Millisecond,
			},
		},
		Entry: FrontendService,
	}
}

// TwoServices returns the minimal quickstart topology from the paper's
// §3.2: ServiceA calling ServiceB, with ServiceA's retry behaviour
// configurable. maxRetries < 0 disables retries.
func TwoServices(maxRetries int, backoff time.Duration) Spec {
	a := ServiceSpec{
		Name:      "serviceA",
		DependsOn: []string{"serviceB"},
		Handler:   microservice.ProxyHandler("serviceB"),
	}
	if backoff <= 0 {
		backoff = 5 * time.Millisecond
	}
	a.ClientFor = func(_ string, base resilience.Doer) resilience.Doer {
		return resilience.NewRetry(base, resilience.RetryPolicy{
			MaxRetries:  maxRetries,
			BaseBackoff: backoff,
			MaxBackoff:  4 * backoff,
		})
	}
	return Spec{
		Services: []ServiceSpec{
			a,
			{Name: "serviceB", Handler: microservice.LeafHandler("B-data")},
		},
		Entry: "serviceA",
	}
}
