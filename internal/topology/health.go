package topology

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"gremlin/internal/metrics"
	"gremlin/internal/microservice"
	"gremlin/internal/registry"
)

// HealthOptions configures active health checking of an App's replicas.
type HealthOptions struct {
	// Interval between probe rounds (default 250 ms).
	Interval time.Duration

	// Timeout per probe (default Interval).
	Timeout time.Duration

	// Rise is how many consecutive successful probes bring a down replica
	// back into rotation (default 2).
	Rise int

	// Fall is how many consecutive failed probes take an up replica out of
	// rotation (default 2).
	Fall int
}

func (o *HealthOptions) defaults() {
	if o.Interval <= 0 {
		o.Interval = 250 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = o.Interval
	}
	if o.Rise <= 0 {
		o.Rise = 2
	}
	if o.Fall <= 0 {
		o.Fall = 2
	}
}

// replicaProbe is the hysteresis state of one replica.
type replicaProbe struct {
	service string
	idx     int
	addr    string
	up      bool
	streak  int // consecutive probes disagreeing with the current state
}

// HealthChecker actively probes every replica of an App and keeps the
// routers honest: a replica that fails Fall consecutive probes is drained
// from every dependent agent's live target pool (traffic shifts to its
// siblings), and one that passes Rise consecutive probes is restored —
// rise/fall hysteresis so a single flaky probe cannot flap routing. Health
// transitions are also written back to the registry so fleet listings
// (`gremlin-ctl fleet`) show the probed state.
type HealthChecker struct {
	app    *App
	opts   HealthOptions
	client *http.Client

	mu     sync.Mutex
	probes []*replicaProbe

	nProbes      int64
	nFailures    int64
	nTransitions int64

	stopOnce sync.Once
	done     chan struct{}
	stopped  chan struct{}
}

// StartHealthChecks builds a checker over every replica of every service
// (all initially considered up) and starts its probe loop. Call Stop when
// done.
func (app *App) StartHealthChecks(opts HealthOptions) *HealthChecker {
	hc := app.NewHealthChecker(opts)
	go hc.loop()
	return hc
}

// NewHealthChecker builds a checker without starting its loop; tests (and
// callers that want deterministic stepping) drive it with ProbeOnce.
func (app *App) NewHealthChecker(opts HealthOptions) *HealthChecker {
	opts.defaults()
	hc := &HealthChecker{
		app:     app,
		opts:    opts,
		client:  &http.Client{Timeout: opts.Timeout},
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	for _, name := range app.Services() {
		for i, addr := range app.ReplicaAddrs(name) {
			hc.probes = append(hc.probes, &replicaProbe{service: name, idx: i, addr: addr, up: true})
		}
	}
	return hc
}

func (hc *HealthChecker) loop() {
	defer close(hc.stopped)
	t := time.NewTicker(hc.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-hc.done:
			return
		case <-t.C:
			hc.ProbeOnce()
		}
	}
}

// Stop halts the probe loop (a no-op for checkers built with
// NewHealthChecker and never started).
func (hc *HealthChecker) Stop() {
	hc.stopOnce.Do(func() { close(hc.done) })
	select {
	case <-hc.stopped:
	case <-time.After(time.Second):
	}
}

// ProbeOnce probes every replica once, applying rise/fall hysteresis and
// draining or restoring routers on transitions. It returns how many
// replicas changed state.
func (hc *HealthChecker) ProbeOnce() int {
	hc.mu.Lock()
	probes := append([]*replicaProbe(nil), hc.probes...)
	hc.mu.Unlock()

	// Probe outside the lock; probes are the slow part.
	results := make([]bool, len(probes))
	var wg sync.WaitGroup
	for i, p := range probes {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			results[i] = hc.probe(addr)
		}(i, p.addr)
	}
	wg.Wait()

	hc.mu.Lock()
	defer hc.mu.Unlock()
	transitions := 0
	changedServices := map[string]bool{}
	for i, p := range probes {
		hc.nProbes++
		ok := results[i]
		if !ok {
			hc.nFailures++
		}
		if ok == p.up {
			p.streak = 0
			continue
		}
		p.streak++
		threshold := hc.opts.Fall
		if !p.up {
			threshold = hc.opts.Rise
		}
		if p.streak < threshold {
			continue
		}
		p.up = ok
		p.streak = 0
		transitions++
		hc.nTransitions++
		changedServices[p.service] = true
	}
	for svc := range changedServices {
		hc.applyLocked(svc)
	}
	return transitions
}

func (hc *HealthChecker) probe(addr string) bool {
	resp, err := hc.client.Get("http://" + addr + microservice.HealthPath)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// applyLocked pushes a service's healthy replica set into every dependent
// agent's live target pool and records health in the registry.
func (hc *HealthChecker) applyLocked(svc string) {
	var healthy []string
	for _, p := range hc.probes {
		if p.service != svc {
			continue
		}
		state := "down"
		if p.up {
			state = "up"
			healthy = append(healthy, p.addr)
		}
		inst := registry.Instance{Service: svc, Addr: p.addr, Replica: p.idx, Health: state}
		if agents := hc.app.agents[svc]; p.idx < len(agents) {
			inst.AgentControlURL = agents[p.idx].ControlURL()
		}
		hc.app.Registry.Add(inst)
	}
	for _, agent := range hc.app.dependents[svc] {
		// Unknown routes are impossible here (dependents is built from the
		// same spec edges); an error would mean a programming bug, and the
		// next probe round retries anyway.
		_ = agent.SetRouteTargets(svc, healthy)
	}
}

// Healthy returns the addresses of a service's replicas currently
// considered up, in replica order.
func (hc *HealthChecker) Healthy(svc string) []string {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	var out []string
	for _, p := range hc.probes {
		if p.service == svc && p.up {
			out = append(out, p.addr)
		}
	}
	return out
}

// State reports whether a replica is currently considered up.
func (hc *HealthChecker) State(svc string, idx int) (up bool, err error) {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	for _, p := range hc.probes {
		if p.service == svc && p.idx == idx {
			return p.up, nil
		}
	}
	return false, fmt.Errorf("topology: no probe state for %s replica %d", svc, idx)
}

// WriteMetrics appends the checker's health gauges and probe counters to w
// in Prometheus exposition format.
func (hc *HealthChecker) WriteMetrics(w *metrics.Writer) {
	hc.mu.Lock()
	probes := make([]replicaProbe, len(hc.probes))
	for i, p := range hc.probes {
		probes[i] = *p
	}
	nProbes, nFailures, nTransitions := hc.nProbes, hc.nFailures, hc.nTransitions
	hc.mu.Unlock()

	up := 0
	for _, p := range probes {
		if p.up {
			up++
		}
	}
	w.Gauge("gremlin_topology_health_replicas_up",
		"Replicas currently passing active health checks.", float64(up))
	w.Gauge("gremlin_topology_health_replicas_down",
		"Replicas currently drained by active health checks.", float64(len(probes)-up))
	w.Counter("gremlin_topology_health_probes_total",
		"Active health probes sent.", float64(nProbes))
	w.Counter("gremlin_topology_health_probe_failures_total",
		"Active health probes that failed.", float64(nFailures))
	w.Counter("gremlin_topology_health_transitions_total",
		"Replica up/down state transitions (after rise/fall hysteresis).", float64(nTransitions))
	for _, p := range probes {
		v := 0.0
		if p.up {
			v = 1
		}
		w.Gauge("gremlin_topology_health_up",
			"Per-replica health as seen by the active checker (1 = up).",
			v, "service", p.service, "replica", fmt.Sprint(p.idx))
	}
}
