package topology

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gremlin/internal/metrics"
	"gremlin/internal/registry"
)

func replicatedSpec() Spec {
	return Spec{
		Services: []ServiceSpec{
			{Name: "web", DependsOn: []string{"api"}},
			{Name: "api", Replicas: 3},
		},
	}
}

func TestBuildReplicatedService(t *testing.T) {
	app, err := Build(replicatedSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()

	if got := app.Replicas("api"); got != 3 {
		t.Fatalf("Replicas(api) = %d", got)
	}
	addrs := app.ReplicaAddrs("api")
	if len(addrs) != 3 {
		t.Fatalf("ReplicaAddrs = %v", addrs)
	}

	// One registry Instance per replica, carrying its index.
	ins, err := app.Registry.Instances("api")
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 3 {
		t.Fatalf("registry has %d instances of api, want 3", len(ins))
	}
	seen := map[int]bool{}
	for _, in := range ins {
		seen[in.Replica] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("replica indices missing: %+v", ins)
	}

	// web's agent load-balances across all three replicas.
	targets, err := app.Agent("web").RouteTargets("api")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 3 {
		t.Fatalf("web routes to %d api replicas, want 3", len(targets))
	}

	// End-to-end traffic still works.
	resp, err := http.Get(app.EntryURL() + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("entry status = %d", resp.StatusCode)
	}
}

func TestBuildReplicatedMidTier(t *testing.T) {
	// Replicated mid-tier: each of the 2 web replicas gets its own agent,
	// and all of them route to both api replicas.
	app, err := Build(Spec{
		Services: []ServiceSpec{
			{Name: "front", DependsOn: []string{"web"}},
			{Name: "web", Replicas: 2, DependsOn: []string{"api"}},
			{Name: "api", Replicas: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()

	agents := app.Agents("web")
	if len(agents) != 2 {
		t.Fatalf("web has %d agents, want 2", len(agents))
	}
	for i, a := range agents {
		targets, err := a.RouteTargets("api")
		if err != nil {
			t.Fatal(err)
		}
		if len(targets) != 2 {
			t.Fatalf("web replica %d routes to %d api replicas, want 2", i, len(targets))
		}
	}
	// Distinct agent control URLs land in the registry, so orchestrator
	// fan-out reaches every physical instance (paper §4.2).
	urls, err := registry.AgentURLs(app.Registry, "web")
	if err != nil {
		t.Fatal(err)
	}
	if len(urls) != 2 {
		t.Fatalf("registry resolves %d web agents, want 2", len(urls))
	}
}

func TestHealthCheckerRiseFallHysteresis(t *testing.T) {
	app, err := Build(replicatedSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()

	hc := app.NewHealthChecker(HealthOptions{Rise: 3, Fall: 2, Timeout: 200 * time.Millisecond})
	if n := hc.ProbeOnce(); n != 0 {
		t.Fatalf("healthy fleet transitioned %d replicas", n)
	}

	if err := app.KillReplica("api", 1); err != nil {
		t.Fatal(err)
	}
	// Fall threshold 2: the first failing probe must NOT drain.
	if n := hc.ProbeOnce(); n != 0 {
		t.Fatal("replica drained after a single failed probe (fall=2)")
	}
	if up, _ := hc.State("api", 1); !up {
		t.Fatal("state flipped before hysteresis threshold")
	}
	if n := hc.ProbeOnce(); n != 1 {
		t.Fatalf("second failing probe should drain exactly 1 replica, got %d", n)
	}
	if up, _ := hc.State("api", 1); up {
		t.Fatal("replica still up after fall threshold")
	}

	// The router pool drained to the two survivors.
	targets, err := app.Agent("web").RouteTargets("api")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 2 {
		t.Fatalf("router holds %d targets after drain, want 2", len(targets))
	}
	// Registry shows the probed health state.
	ins, err := app.Registry.Instances("api")
	if err != nil {
		t.Fatal(err)
	}
	downs := 0
	for _, in := range ins {
		if in.Health == "down" {
			downs++
		}
	}
	if downs != 1 {
		t.Fatalf("registry records %d down replicas, want 1", downs)
	}

	// Traffic flows through the survivors.
	for i := 0; i < 4; i++ {
		resp, err := http.Get(app.EntryURL() + "/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status after drain = %d", resp.StatusCode)
		}
	}

	// Killed listeners cannot come back in-process, so exercise rise
	// hysteresis on the checker state directly: a healthy replica probed
	// successfully fewer than Rise times stays down.
	hc.mu.Lock()
	var probe *replicaProbe
	for _, p := range hc.probes {
		if p.service == "api" && p.idx == 0 {
			probe = p
		}
	}
	probe.up = false // pretend replica 0 was drained
	hc.mu.Unlock()
	hc.applyAll("api")
	for i := 0; i < 2; i++ { // two successes < rise=3
		hc.ProbeOnce()
	}
	if up, _ := hc.State("api", 0); up {
		t.Fatal("replica restored before rise threshold")
	}
	hc.ProbeOnce() // third success meets rise=3
	if up, _ := hc.State("api", 0); !up {
		t.Fatal("replica not restored after rise threshold")
	}
	targets, _ = app.Agent("web").RouteTargets("api")
	if len(targets) != 2 {
		t.Fatalf("router holds %d targets after restore, want 2 (replicas 0 and 2)", len(targets))
	}

	w := metrics.NewWriter()
	hc.WriteMetrics(w)
	body := w.String()
	if err := metrics.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		"gremlin_topology_health_replicas_up 3",
		"gremlin_topology_health_replicas_down 1",
		"gremlin_topology_health_transitions_total",
		`gremlin_topology_health_up{service="api",replica="1"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

// applyAll re-applies router state for a service, for tests that mutate
// probe state directly.
func (hc *HealthChecker) applyAll(svc string) {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	hc.applyLocked(svc)
}

func TestGenerateDeterministicAndConnected(t *testing.T) {
	opts := GenerateOptions{Services: 120, Layers: 5, MaxDegree: 4, MinReplicas: 1, MaxReplicas: 3, Seed: 42}
	a, b := Generate(opts), Generate(opts)
	if len(a.Services) != 120 || len(b.Services) != 120 {
		t.Fatalf("generated %d/%d services, want 120", len(a.Services), len(b.Services))
	}
	for i := range a.Services {
		sa, sb := a.Services[i], b.Services[i]
		if sa.Name != sb.Name || sa.Replicas != sb.Replicas || len(sa.DependsOn) != len(sb.DependsOn) {
			t.Fatalf("generation not deterministic at %d: %+v vs %+v", i, sa, sb)
		}
	}

	// Every service reachable from the entry; no cycles (layered DAG).
	adj := map[string][]string{}
	for _, s := range a.Services {
		adj[s.Name] = s.DependsOn
	}
	seen := map[string]bool{}
	var walk func(string)
	walk = func(n string) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, d := range adj[n] {
			walk(d)
		}
	}
	walk(a.Entry)
	if len(seen) != len(a.Services) {
		t.Fatalf("only %d/%d services reachable from entry", len(seen), len(a.Services))
	}

	multi := 0
	for _, s := range a.Services {
		if s.Replicas > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-replica services drawn from [1,3]")
	}
}

func TestGeneratedSpecBuilds(t *testing.T) {
	spec := Generate(GenerateOptions{Services: 30, Layers: 4, MaxReplicas: 2, Seed: 7})
	app, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	resp, err := http.Get(app.EntryURL() + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generated app entry status = %d", resp.StatusCode)
	}
}
