// Package topology assembles complete demo applications for resilience
// testing: microservices wired through sidecar Gremlin agents, a logical
// application graph, a service registry, a shared event store, and an edge
// agent through which test load is injected (so edge-service behaviour is
// observable, per the paper's §6 "we assume that test load can be injected
// via a Gremlin agent").
//
// Prefab topologies mirror the paper's evaluation: binary trees for the
// orchestration benchmark (Figure 7), the WordPress/ElasticPress stack of
// the case study (Figures 5 and 6), the enterprise application (Figure 4),
// and a message-bus pipeline modelling the Table 1 outages.
package topology

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"time"

	"gremlin/internal/eventlog"
	"gremlin/internal/graph"
	"gremlin/internal/microservice"
	"gremlin/internal/proxy"
	"gremlin/internal/registry"
	"gremlin/internal/resilience"
)

// EdgeService is the logical name of the synthetic caller that injects test
// load at the application edge.
const EdgeService = "user"

// ServiceSpec declares one microservice of an application.
type ServiceSpec struct {
	// Name is the service's logical name.
	Name string

	// Replicas is how many physical instances of the service to run
	// (0 and 1 both mean a single replica). Each replica gets its own
	// listener and its own sidecar agent; dependents load-balance across
	// all replicas, and the registry records one Instance per replica so
	// the orchestrator "locates and configures all physical instances"
	// (paper §4.2).
	Replicas int

	// DependsOn lists the logical names of downstream services.
	DependsOn []string

	// TCPBackends maps logical names of raw-TCP dependencies (databases,
	// caches — anything that is not HTTP) to their upstream addresses
	// ("host:port"). Each is reached through the agent's L4 stream relay
	// rather than the HTTP proxy, and contributes a protocol:tcp edge to
	// the application graph. The backend itself is external to the
	// topology — the caller runs it (e.g. a test echo server).
	TCPBackends map[string]string

	// Handler computes responses; nil defaults to FanOutHandler(FailFast)
	// for services with dependencies and LeafHandler for leaves.
	Handler microservice.Handler

	// ClientFor, when non-nil, builds the HTTP client used for calls to
	// each dependency — the hook for adding resilience patterns. The base
	// Doer passed in is a plain transport-level client.
	ClientFor func(dep string, base resilience.Doer) resilience.Doer

	// WorkTime simulates local processing time per request.
	WorkTime time.Duration
}

// Spec declares a whole application.
type Spec struct {
	// Services lists the microservices. Dependency edges must form a DAG.
	Services []ServiceSpec

	// Entry names the service that receives injected test load. Defaults
	// to the unique root of the graph.
	Entry string

	// Sink receives agent observations. Nil creates a fresh in-process
	// store (exposed as App.Store).
	Sink eventlog.Sink

	// Registry receives one Instance per replica as the application is
	// built. Nil uses a fresh registry.Static; pass a *registry.Dynamic to
	// put the application under lease-based membership.
	Registry registry.Backend

	// RNG seeds the agents' probability sampling. Nil is
	// non-deterministic.
	RNG *rand.Rand
}

// App is a running application: services, agents, registry, graph, store.
type App struct {
	// Graph is the logical application graph (including the edge service).
	Graph *graph.Graph

	// Registry maps logical services to instances and agents — one
	// Instance per replica.
	Registry registry.Backend

	// Store is the in-process event store backing the agents' sink. Nil
	// when the Spec supplied its own Sink.
	Store *eventlog.Store

	services map[string][]*microservice.Service // per replica
	agents   map[string][]*proxy.Agent          // per replica (nil for leaves)
	// dependents indexes the agents holding a route toward each service —
	// every dependent replica's agent plus, for the entry service, the
	// edge agent. The health checker drains and restores through it.
	dependents map[string][]*proxy.Agent
	edge       *proxy.Agent
	entry      string
}

// Build constructs and starts the application described by spec.
func Build(spec Spec) (*App, error) {
	if len(spec.Services) == 0 {
		return nil, errors.New("topology: spec has no services")
	}

	g := graph.New()
	specs := make(map[string]ServiceSpec, len(spec.Services))
	for _, s := range spec.Services {
		if s.Name == "" {
			return nil, errors.New("topology: service with empty name")
		}
		if s.Name == EdgeService {
			return nil, fmt.Errorf("topology: service name %q is reserved for the edge agent", EdgeService)
		}
		if _, dup := specs[s.Name]; dup {
			return nil, fmt.Errorf("topology: duplicate service %q", s.Name)
		}
		specs[s.Name] = s
		g.AddService(s.Name)
		for _, d := range s.DependsOn {
			g.AddEdge(s.Name, d)
		}
		for d := range s.TCPBackends {
			g.SetProtocol(s.Name, d, graph.ProtocolTCP)
		}
	}
	for _, s := range spec.Services {
		for _, d := range s.DependsOn {
			if _, ok := specs[d]; !ok {
				return nil, fmt.Errorf("topology: %s depends on undeclared service %q", s.Name, d)
			}
		}
	}
	if g.HasCycle() {
		return nil, errors.New("topology: dependency graph has a cycle")
	}

	entry := spec.Entry
	if entry == "" {
		roots := g.Roots()
		if len(roots) != 1 {
			return nil, fmt.Errorf("topology: spec needs Entry (graph has %d roots)", len(roots))
		}
		entry = roots[0]
	}
	if _, ok := specs[entry]; !ok {
		return nil, fmt.Errorf("topology: entry service %q not declared", entry)
	}

	reg := spec.Registry
	if reg == nil {
		reg = registry.NewStatic()
	}
	app := &App{
		Graph:      g,
		Registry:   reg,
		services:   make(map[string][]*microservice.Service, len(specs)),
		agents:     make(map[string][]*proxy.Agent, len(specs)),
		dependents: make(map[string][]*proxy.Agent),
		entry:      entry,
	}
	sink := spec.Sink
	if sink == nil {
		app.Store = eventlog.NewStore()
		sink = app.Store
	}

	// Create services bottom-up (dependencies before dependents) so each
	// agent can route to already-bound dependency addresses.
	order, err := buildOrder(specs)
	if err != nil {
		app.closePartial()
		return nil, err
	}
	for _, name := range order {
		if err := app.buildService(specs[name], sink, spec.RNG); err != nil {
			app.closePartial()
			return nil, err
		}
	}

	// Edge agent: test load enters through it so the entry service's
	// replies are logged like any other hop.
	if err := app.buildEdge(sink, spec.RNG); err != nil {
		app.closePartial()
		return nil, err
	}
	return app, nil
}

// buildOrder returns service names so that every service appears after all
// of its dependencies.
func buildOrder(specs map[string]ServiceSpec) ([]string, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(specs))
	order := make([]string, 0, len(specs))
	var visit func(string) error
	visit = func(name string) error {
		switch state[name] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("topology: cycle through %q", name)
		}
		state[name] = visiting
		for _, d := range specs[name].DependsOn {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[name] = done
		order = append(order, name)
		return nil
	}
	// Iterate deterministically for reproducible builds.
	names := make([]string, 0, len(specs))
	for n := range specs {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func (app *App) buildService(s ServiceSpec, sink eventlog.Sink, rng *rand.Rand) error {
	replicas := s.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	for i := 0; i < replicas; i++ {
		if err := app.buildReplica(s, i, sink, rng); err != nil {
			return err
		}
	}
	return nil
}

// buildReplica builds one physical instance of a service: its own
// microservice listener plus (when the service has dependencies) its own
// sidecar agent, whose routes load-balance across every replica of each
// dependency.
func (app *App) buildReplica(s ServiceSpec, idx int, sink eventlog.Sink, rng *rand.Rand) error {
	var (
		agent *proxy.Agent
		deps  []microservice.Dependency
	)
	if len(s.DependsOn) > 0 || len(s.TCPBackends) > 0 {
		routes := make([]proxy.Route, 0, len(s.DependsOn))
		for _, d := range s.DependsOn {
			routes = append(routes, proxy.Route{
				Dst:        d,
				ListenAddr: "127.0.0.1:0",
				Targets:    app.ReplicaAddrs(d),
			})
		}
		backends := make([]string, 0, len(s.TCPBackends))
		for d := range s.TCPBackends {
			backends = append(backends, d)
		}
		sortStrings(backends)
		l4routes := make([]proxy.L4Route, 0, len(backends))
		for _, d := range backends {
			l4routes = append(l4routes, proxy.L4Route{
				Dst:        d,
				ListenAddr: "127.0.0.1:0",
				Targets:    []string{s.TCPBackends[d]},
			})
		}
		var err error
		agent, err = proxy.New(proxy.Config{
			ServiceName: s.Name,
			ControlAddr: "127.0.0.1:0",
			Routes:      routes,
			L4Routes:    l4routes,
			Sink:        sink,
			RNG:         childRNG(rng),
		})
		if err != nil {
			return fmt.Errorf("topology: agent for %s: %w", s.Name, err)
		}
		agent.Start()
		app.agents[s.Name] = append(app.agents[s.Name], agent)
		for _, d := range s.DependsOn {
			app.dependents[d] = append(app.dependents[d], agent)
		}

		for _, d := range s.DependsOn {
			u, err := agent.RouteURL(d)
			if err != nil {
				return err
			}
			dep := microservice.Dependency{Name: d, BaseURL: u}
			if s.ClientFor != nil {
				base := dep.Client
				if base == nil {
					base = defaultClient()
				}
				dep.Client = s.ClientFor(d, base)
			}
			deps = append(deps, dep)
		}
	}

	handler := s.Handler
	if handler == nil && len(s.DependsOn) > 0 {
		// Honor the ServiceSpec contract: a service with dependencies
		// defaults to fanning out over them (microservice.New alone would
		// default to a leaf echo, silently orphaning the graph edges).
		handler = microservice.FanOutHandler(microservice.FailFast)
	}
	svc, err := microservice.New(microservice.Config{
		Name:         s.Name,
		ListenAddr:   "127.0.0.1:0",
		Dependencies: deps,
		Handler:      handler,
		WorkTime:     s.WorkTime,
	})
	if err != nil {
		return fmt.Errorf("topology: service %s: %w", s.Name, err)
	}
	svc.Start()
	app.services[s.Name] = append(app.services[s.Name], svc)

	inst := registry.Instance{Service: s.Name, Addr: svc.Addr(), Replica: idx}
	if agent != nil {
		inst.AgentControlURL = agent.ControlURL()
	}
	app.Registry.Add(inst)
	return nil
}

func (app *App) buildEdge(sink eventlog.Sink, rng *rand.Rand) error {
	edge, err := proxy.New(proxy.Config{
		ServiceName: EdgeService,
		ControlAddr: "127.0.0.1:0",
		Routes: []proxy.Route{{
			Dst:        app.entry,
			ListenAddr: "127.0.0.1:0",
			Targets:    app.ReplicaAddrs(app.entry),
		}},
		Sink: sink,
		RNG:  childRNG(rng),
	})
	if err != nil {
		return fmt.Errorf("topology: edge agent: %w", err)
	}
	edge.Start()
	app.edge = edge
	app.dependents[app.entry] = append(app.dependents[app.entry], edge)
	app.Graph.AddEdge(EdgeService, app.entry)
	addr, err := edge.RouteAddr(app.entry)
	if err != nil {
		return err
	}
	app.Registry.Add(registry.Instance{
		Service:         EdgeService,
		Addr:            addr,
		AgentControlURL: edge.ControlURL(),
	})
	return nil
}

// EntryURL returns the URL test load should be sent to: the edge agent's
// route to the entry service.
func (app *App) EntryURL() string {
	u, err := app.edge.RouteURL(app.entry)
	if err != nil {
		// The edge route is built in Build; its absence is a programming
		// error.
		panic(err)
	}
	return u
}

// Entry returns the entry service's logical name.
func (app *App) Entry() string { return app.entry }

// ServiceURL returns the direct URL of a service's first replica
// (bypassing agents), or an error for unknown names.
func (app *App) ServiceURL(name string) (string, error) {
	svcs, ok := app.services[name]
	if !ok || len(svcs) == 0 {
		return "", fmt.Errorf("topology: unknown service %q", name)
	}
	return svcs[0].URL(), nil
}

// Replicas returns how many replicas of a service were built (0 for
// unknown names).
func (app *App) Replicas(name string) int { return len(app.services[name]) }

// ReplicaAddrs returns the listen addresses of every replica of a service,
// in replica order.
func (app *App) ReplicaAddrs(name string) []string {
	svcs := app.services[name]
	addrs := make([]string, len(svcs))
	for i, s := range svcs {
		addrs[i] = s.Addr()
	}
	return addrs
}

// KillReplica shuts down one replica's listener (connection-refused to
// dependents and health probes), emulating a crashed instance. The
// replica's sidecar agent keeps running, like a real sidecar outliving its
// workload.
func (app *App) KillReplica(name string, idx int) error {
	svcs := app.services[name]
	if idx < 0 || idx >= len(svcs) {
		return fmt.Errorf("topology: service %q has no replica %d", name, idx)
	}
	return svcs[idx].Close()
}

// L4Addr returns the local address of src's stream relay toward its
// raw-TCP backend dst — the address the service (or a test client) dials
// to reach the backend through the fault-injection plane.
func (app *App) L4Addr(src, dst string) (string, error) {
	agents := app.agents[src]
	if len(agents) == 0 {
		return "", fmt.Errorf("topology: service %q has no agent", src)
	}
	return agents[0].L4RouteAddr(dst)
}

// Agent returns the sidecar agent of a service's first replica (nil for
// leaf services, which make no outbound calls).
func (app *App) Agent(name string) *proxy.Agent {
	if name == EdgeService {
		return app.edge
	}
	if agents := app.agents[name]; len(agents) > 0 {
		return agents[0]
	}
	return nil
}

// Agents returns every replica's sidecar agent for a service, in replica
// order (empty for leaf services).
func (app *App) Agents(name string) []*proxy.Agent {
	if name == EdgeService {
		return []*proxy.Agent{app.edge}
	}
	return append([]*proxy.Agent(nil), app.agents[name]...)
}

// Services returns the logical service names (excluding the edge), sorted.
func (app *App) Services() []string {
	names := make([]string, 0, len(app.services))
	for n := range app.services {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

// Close shuts down every service and agent.
func (app *App) Close() error {
	var firstErr error
	if app.edge != nil {
		if err := app.edge.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, replicas := range app.agents {
		for _, a := range replicas {
			if err := a.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	for _, replicas := range app.services {
		for _, s := range replicas {
			if err := s.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func (app *App) closePartial() { _ = app.Close() }

// childRNG derives an independent deterministic RNG per agent so builds
// with a seeded Spec.RNG are reproducible regardless of construction
// concurrency.
func childRNG(rng *rand.Rand) *rand.Rand {
	if rng == nil {
		return nil
	}
	return rand.New(rand.NewSource(rng.Int63()))
}

func defaultClient() resilience.Doer {
	return &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
}

func sortStrings(ss []string) { sort.Strings(ss) }
