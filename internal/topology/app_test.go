package topology

import (
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"gremlin/internal/eventlog"
	"gremlin/internal/graph"
	"gremlin/internal/rules"
	"gremlin/internal/trace"
)

func buildApp(t *testing.T, spec Spec) *App {
	t.Helper()
	if spec.RNG == nil {
		spec.RNG = rand.New(rand.NewSource(1))
	}
	app, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := app.Close(); err != nil {
			t.Errorf("close app: %v", err)
		}
	})
	return app
}

func getVia(t *testing.T, url, path, reqID string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	trace.SetRequestID(req, reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestBuildValidation(t *testing.T) {
	tests := []struct {
		name string
		spec Spec
	}{
		{"empty", Spec{}},
		{"empty name", Spec{Services: []ServiceSpec{{Name: ""}}}},
		{"reserved name", Spec{Services: []ServiceSpec{{Name: EdgeService}}}},
		{"duplicate", Spec{Services: []ServiceSpec{{Name: "a"}, {Name: "a"}}}},
		{"undeclared dep", Spec{Services: []ServiceSpec{{Name: "a", DependsOn: []string{"ghost"}}}}},
		{"cycle", Spec{Services: []ServiceSpec{
			{Name: "a", DependsOn: []string{"b"}},
			{Name: "b", DependsOn: []string{"a"}},
		}}},
		{"two roots no entry", Spec{Services: []ServiceSpec{{Name: "a"}, {Name: "b"}}}},
		{"unknown entry", Spec{Services: []ServiceSpec{{Name: "a"}}, Entry: "ghost"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Build(tt.spec); err == nil {
				t.Fatal("want build error")
			}
		})
	}
}

func TestTwoServicesEndToEnd(t *testing.T) {
	app := buildApp(t, TwoServices(3, time.Millisecond))

	status, body := getVia(t, app.EntryURL(), "/api", "test-1")
	if status != 200 || body != "B-data" {
		t.Fatalf("got %d %q", status, body)
	}

	// Observations recorded at both hops: user->serviceA and serviceA->serviceB.
	reqs, err := app.Store.Select(eventlog.Query{Kind: eventlog.KindRequest})
	if err != nil {
		t.Fatal(err)
	}
	var hops []string
	for _, r := range reqs {
		hops = append(hops, r.Src+"->"+r.Dst)
	}
	joined := strings.Join(hops, ",")
	if !strings.Contains(joined, "user->serviceA") || !strings.Contains(joined, "serviceA->serviceB") {
		t.Fatalf("hops = %v", hops)
	}
	// Request ID propagated across hops.
	for _, r := range reqs {
		if r.RequestID != "test-1" {
			t.Fatalf("record %+v lost the request id", r)
		}
	}
}

func TestGraphIncludesEdge(t *testing.T) {
	app := buildApp(t, TwoServices(0, 0))
	if !app.Graph.HasEdge(EdgeService, "serviceA") {
		t.Fatal("edge service missing from graph")
	}
	deps, err := app.Graph.Dependents("serviceB")
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 1 || deps[0] != "serviceA" {
		t.Fatalf("dependents = %v", deps)
	}
}

func TestRegistryHasAllServices(t *testing.T) {
	app := buildApp(t, TwoServices(0, 0))
	for _, svc := range []string{"serviceA", EdgeService} {
		insts, err := app.Registry.Instances(svc)
		if err != nil {
			t.Fatal(err)
		}
		if insts[0].AgentControlURL == "" {
			t.Fatalf("%s has no agent URL", svc)
		}
	}
	// Leaf service registered without an agent.
	insts, err := app.Registry.Instances("serviceB")
	if err != nil {
		t.Fatal(err)
	}
	if insts[0].AgentControlURL != "" {
		t.Fatal("leaf service should have no agent")
	}
}

func TestFaultInjectionThroughApp(t *testing.T) {
	// Inject an abort between serviceA and serviceB directly on the agent;
	// serviceA has 2 retries, so the edge sees 502 after retries exhaust.
	app := buildApp(t, TwoServices(2, time.Millisecond))
	agent := app.Agent("serviceA")
	if agent == nil {
		t.Fatal("serviceA should have an agent")
	}
	if err := agent.InstallRules(rules.Rule{
		ID: "ab", Src: "serviceA", Dst: "serviceB",
		Action: rules.ActionAbort, Pattern: "test-*", ErrorCode: 503,
	}); err != nil {
		t.Fatal(err)
	}

	status, _ := getVia(t, app.EntryURL(), "/api", "test-9")
	if status != 503 {
		t.Fatalf("status = %d, want 503 surfaced through serviceA", status)
	}

	// Retries are visible in the log: 3 calls (initial + 2 retries).
	reps, err := app.Store.Select(eventlog.Query{
		Src: "serviceA", Dst: "serviceB", Kind: eventlog.KindReply,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("observed %d calls, want 3 (initial + 2 retries)", len(reps))
	}
	// Production traffic unaffected.
	status, body := getVia(t, app.EntryURL(), "/api", "prod-1")
	if status != 200 || body != "B-data" {
		t.Fatalf("production traffic got %d %q", status, body)
	}
}

func TestBinaryTreeSpec(t *testing.T) {
	spec := BinaryTree(2, 0)
	if len(spec.Services) != 7 {
		t.Fatalf("depth 2 should have 7 services, got %d", len(spec.Services))
	}
	if TreeServiceCount(4) != 31 {
		t.Fatalf("TreeServiceCount(4) = %d", TreeServiceCount(4))
	}
	app := buildApp(t, spec)
	status, body := getVia(t, app.EntryURL(), "/ping", "test-1")
	if status != 200 {
		t.Fatalf("status = %d body=%q", status, body)
	}
	// The root aggregates both subtrees.
	if !strings.Contains(body, "tree-1") || !strings.Contains(body, "tree-2") {
		t.Fatalf("body = %q", body)
	}
	// A request traverses all 6 edges plus the edge hop.
	reqs, err := app.Store.Select(eventlog.Query{Kind: eventlog.KindRequest})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 7 {
		t.Fatalf("observed %d hops, want 7", len(reqs))
	}
}

func TestWordPressTopology(t *testing.T) {
	app := buildApp(t, WordPress(WordPressOptions{BackendWorkTime: time.Millisecond}))
	status, body := getVia(t, app.EntryURL(), "/search?q=x", "test-1")
	if status != 200 || !strings.Contains(body, "via elasticsearch") {
		t.Fatalf("got %d %q", status, body)
	}

	// Kill elasticsearch (crash = abort with severed connection): the
	// plugin falls back to MySQL.
	agent := app.Agent(WordPressService)
	if err := agent.InstallRules(rules.Rule{
		ID: "crash-es", Src: WordPressService, Dst: ElasticsearchService,
		Action: rules.ActionAbort, Pattern: "test-*", ErrorCode: rules.AbortSeverConnection,
	}); err != nil {
		t.Fatal(err)
	}
	status, body = getVia(t, app.EntryURL(), "/search?q=x", "test-2")
	if status != 200 || !strings.Contains(body, "via mysql") {
		t.Fatalf("fallback failed: %d %q", status, body)
	}
}

func TestWordPressWithTimeoutOption(t *testing.T) {
	app := buildApp(t, WordPress(WordPressOptions{
		BackendWorkTime: time.Millisecond,
		SearchTimeout:   100 * time.Millisecond,
	}))
	// Delay elasticsearch by 2s; with the timeout fix, wordpress falls
	// back quickly instead of stalling.
	agent := app.Agent(WordPressService)
	if err := agent.InstallRules(rules.Rule{
		ID: "slow-es", Src: WordPressService, Dst: ElasticsearchService,
		Action: rules.ActionDelay, Pattern: "test-*", DelayMillis: 2000,
	}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	status, body := getVia(t, app.EntryURL(), "/search?q=x", "test-3")
	elapsed := time.Since(start)
	if status != 200 || !strings.Contains(body, "via mysql") {
		t.Fatalf("got %d %q", status, body)
	}
	if elapsed > time.Second {
		t.Fatalf("with timeout, response took %v", elapsed)
	}
}

func TestEnterpriseTopology(t *testing.T) {
	app := buildApp(t, Enterprise(EnterpriseOptions{ExternalLatency: time.Millisecond}))
	status, body := getVia(t, app.EntryURL(), "/dashboard", "test-1")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	for _, frag := range []string{"catalog", "activity"} {
		if !strings.Contains(body, frag) {
			t.Fatalf("body missing %q: %q", frag, body)
		}
	}
	// The activity service reached both external APIs.
	reqs, err := app.Store.Select(eventlog.Query{Src: ActivityService, Kind: eventlog.KindRequest})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("activity made %d calls, want 2", len(reqs))
	}
}

func TestMessageBusTopology(t *testing.T) {
	app := buildApp(t, MessageBus(MessageBusOptions{}))
	status, body := getVia(t, app.EntryURL(), "/publish", "test-1")
	if status != 200 || body != "stored" {
		t.Fatalf("got %d %q", status, body)
	}
	// Crash cassandra: without timeouts the failure percolates all the way
	// to the frontend (the Table 1 cascade).
	agent := app.Agent(MessageBusService)
	if err := agent.InstallRules(rules.Rule{
		ID: "crash-cass", Src: MessageBusService, Dst: CassandraService,
		Action: rules.ActionAbort, Pattern: "test-*", ErrorCode: rules.AbortSeverConnection,
	}); err != nil {
		t.Fatal(err)
	}
	status, _ = getVia(t, app.EntryURL(), "/publish", "test-2")
	if status != http.StatusBadGateway {
		t.Fatalf("cascade status = %d, want 502", status)
	}
}

func TestServiceURLAndAgentLookups(t *testing.T) {
	app := buildApp(t, TwoServices(0, 0))
	if _, err := app.ServiceURL("serviceA"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.ServiceURL("ghost"); err == nil {
		t.Fatal("want error")
	}
	if app.Agent("serviceB") != nil {
		t.Fatal("leaf has no agent")
	}
	if app.Agent(EdgeService) == nil {
		t.Fatal("edge agent should exist")
	}
	if app.Entry() != "serviceA" {
		t.Fatalf("Entry = %q", app.Entry())
	}
	svcs := app.Services()
	if len(svcs) != 2 || svcs[0] != "serviceA" || svcs[1] != "serviceB" {
		t.Fatalf("Services = %v", svcs)
	}
}

func TestCustomSink(t *testing.T) {
	store := eventlog.NewStore()
	spec := TwoServices(0, 0)
	spec.Sink = store
	spec.RNG = rand.New(rand.NewSource(1))
	app, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := app.Close(); err != nil {
			t.Error(err)
		}
	}()
	if app.Store != nil {
		t.Fatal("App.Store should be nil when a Sink is supplied")
	}
	getVia(t, app.EntryURL(), "/x", "test-1")
	if store.Len() == 0 {
		t.Fatal("custom sink received no records")
	}
}

func selectReplies(src, dst string) eventlog.Query {
	return eventlog.Query{Src: src, Dst: dst, Kind: eventlog.KindReply}
}

// echoTCP runs a byte-echo server for the lifetime of the test and
// returns its address.
func echoTCP(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String()
}

func TestTCPBackends(t *testing.T) {
	echo := echoTCP(t)
	app := buildApp(t, Spec{
		Services: []ServiceSpec{
			{Name: "web", DependsOn: []string{"auth"}, TCPBackends: map[string]string{"db": echo}},
			{Name: "auth"},
		},
	})

	// The backend contributes a protocol:tcp edge to the graph.
	if p := app.Graph.Protocol("web", "db"); p != graph.ProtocolTCP {
		t.Fatalf("protocol = %q", p)
	}
	if len(app.Graph.TCPEdges()) != 1 {
		t.Fatalf("tcp edges = %v", app.Graph.TCPEdges())
	}

	// Bytes relay through the agent's L4 plane to the echo backend.
	addr, err := app.L4Addr("web", "db")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("ping through the relay")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(msg) {
		t.Fatalf("echo = %q", buf)
	}
	conn.Close()

	// The relay logs a paired conn-open/conn-close with byte counters.
	deadline := time.Now().Add(2 * time.Second)
	for {
		closes, err := app.Store.Select(eventlog.Query{Src: "web", Dst: "db", Kind: eventlog.KindConnClose})
		if err != nil {
			t.Fatal(err)
		}
		if len(closes) == 1 {
			r := closes[0]
			if r.BytesUp != int64(len(msg)) || r.BytesDown != int64(len(msg)) {
				t.Fatalf("close record = %+v", r)
			}
			if !strings.HasPrefix(r.RequestID, "l4-") {
				t.Fatalf("conn ID = %q", r.RequestID)
			}
			opens, err := app.Store.Select(eventlog.Query{Src: "web", Dst: "db", Kind: eventlog.KindConnOpen})
			if err != nil {
				t.Fatal(err)
			}
			if len(opens) != 1 || opens[0].RequestID != r.RequestID {
				t.Fatalf("open records = %+v", opens)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no conn-close record, got %+v", closes)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Unknown relays are an error, not a panic.
	if _, err := app.L4Addr("web", "nope"); err == nil {
		t.Fatal("want error for unknown backend")
	}
	if _, err := app.L4Addr("auth", "db"); err == nil {
		t.Fatal("want error for service without an agent")
	}
}
