package topology

import (
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"gremlin/internal/resilience"
	"gremlin/internal/rules"
)

// The prefab topologies expose "hardened" variants whose resilience
// patterns must actually engage under staged faults — these tests pin the
// behaviour the outage examples rely on.

func TestMessageBusHardenedTimeout(t *testing.T) {
	spec := MessageBus(MessageBusOptions{PublisherTimeout: 100 * time.Millisecond})
	spec.RNG = rand.New(rand.NewSource(1))
	app := buildApp(t, spec)

	// Hang the bus: without a timeout the publisher would stall for the
	// full injected delay; with one it answers fast with an error.
	agent := app.Agent(PublisherService)
	if err := agent.InstallRules(rules.Rule{
		ID: "hang-bus", Src: PublisherService, Dst: MessageBusService,
		Action: rules.ActionDelay, Pattern: "test-*", DelayMillis: 5000,
	}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	status, _ := getVia(t, app.EntryURL(), "/publish", "test-1")
	elapsed := time.Since(start)
	if status != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502 (publisher gave up)", status)
	}
	if elapsed > time.Second {
		t.Fatalf("publisher took %v; its 100ms timeout did not fire", elapsed)
	}
}

func TestMessageBusHardenedBreaker(t *testing.T) {
	spec := MessageBus(MessageBusOptions{
		PublisherBreaker: &resilience.BreakerConfig{
			FailureThreshold: 3,
			OpenTimeout:      time.Minute,
		},
	})
	spec.RNG = rand.New(rand.NewSource(1))
	app := buildApp(t, spec)

	agent := app.Agent(PublisherService)
	if err := agent.InstallRules(rules.Rule{
		ID: "kill-bus", Src: PublisherService, Dst: MessageBusService,
		Action: rules.ActionAbort, Pattern: "test-*", ErrorCode: 503,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		getVia(t, app.EntryURL(), "/publish", "test-1")
	}
	// After 3 failures the breaker opens: only 3 calls reached the bus edge.
	reps, err := app.Store.Select(selectReplies(PublisherService, MessageBusService))
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("publisher made %d calls to the bus, want 3 before the breaker opened", len(reps))
	}
}

func TestWordPressHardenedBreakerFallsBack(t *testing.T) {
	spec := WordPress(WordPressOptions{
		BackendWorkTime: time.Millisecond,
		SearchBreaker: &resilience.BreakerConfig{
			FailureThreshold: 2,
			OpenTimeout:      time.Minute,
			Fallback:         resilience.StaticFallback(503, "breaker open"),
		},
	})
	spec.RNG = rand.New(rand.NewSource(1))
	app := buildApp(t, spec)

	agent := app.Agent(WordPressService)
	if err := agent.InstallRules(rules.Rule{
		ID: "kill-es", Src: WordPressService, Dst: ElasticsearchService,
		Action: rules.ActionAbort, Pattern: "test-*", ErrorCode: 503,
	}); err != nil {
		t.Fatal(err)
	}
	// Every request still succeeds via the MySQL fallback; after 2
	// failures the breaker answers for Elasticsearch without a network
	// call.
	for i := 0; i < 5; i++ {
		status, body := getVia(t, app.EntryURL(), "/search", "test-1")
		if status != 200 || !strings.Contains(body, "via mysql") {
			t.Fatalf("request %d: %d %q", i, status, body)
		}
	}
	reps, err := app.Store.Select(selectReplies(WordPressService, ElasticsearchService))
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("wordpress hit elasticsearch %d times, want 2 before the breaker opened", len(reps))
	}
}
