package topology

import (
	"fmt"
	"math/rand"
	"time"
)

// GenerateOptions configures the seeded topology generator.
type GenerateOptions struct {
	// Services is how many services to generate (default 100).
	Services int

	// Layers is the depth of the layered DAG (default 5). Layer 0 is the
	// single entry service; calls only flow toward higher layers, so the
	// graph is acyclic by construction.
	Layers int

	// MaxDegree caps a service's outgoing dependency edges (default 4).
	// Out-degrees are drawn per service from a geometric-flavoured
	// distribution over [1, MaxDegree]: most services call one or two
	// dependencies, a few fan out wide — the long-tailed shape of real
	// microservice graphs.
	MaxDegree int

	// MinReplicas and MaxReplicas bound the per-service replica count,
	// drawn uniformly (defaults 1 and 1: single-replica).
	MinReplicas int
	MaxReplicas int

	// WorkTime is the simulated local processing time per request.
	WorkTime time.Duration

	// Seed makes generation deterministic: the same options always emit
	// the same Spec.
	Seed int64
}

func (o *GenerateOptions) defaults() {
	if o.Services <= 0 {
		o.Services = 100
	}
	if o.Layers <= 0 {
		o.Layers = 5
	}
	if o.Layers > o.Services {
		o.Layers = o.Services
	}
	if o.Services > 1 && o.Layers < 2 {
		// Layer 0 holds only the entry; everything else needs a layer.
		o.Layers = 2
	}
	if o.MaxDegree <= 0 {
		o.MaxDegree = 4
	}
	if o.MinReplicas <= 0 {
		o.MinReplicas = 1
	}
	if o.MaxReplicas < o.MinReplicas {
		o.MaxReplicas = o.MinReplicas
	}
}

// Generate emits a Spec for a layered service DAG drawn from degree
// distributions: one entry service fanning out through Layers tiers to a
// final tier of leaves, every service reachable from the entry, replica
// counts drawn from [MinReplicas, MaxReplicas]. The result is
// deterministic in the options (including Seed) and ready for Build.
func Generate(opts GenerateOptions) Spec {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	// Partition services into layers: layer 0 is the single entry; the
	// rest spread over the remaining layers, widening toward the leaves so
	// fan-out has somewhere to land.
	layers := make([][]string, opts.Layers)
	layers[0] = []string{serviceName(0)}
	rest := opts.Services - 1
	weights := 0
	for l := 1; l < opts.Layers; l++ {
		weights += l
	}
	next := 1
	for l := 1; l < opts.Layers; l++ {
		n := rest * l / weights
		if l == opts.Layers-1 {
			n = opts.Services - next // absorb rounding remainder
		}
		if n < 1 {
			n = 1
		}
		for i := 0; i < n && next < opts.Services; i++ {
			layers[l] = append(layers[l], serviceName(next))
			next++
		}
	}

	deps := make(map[string][]string, opts.Services)
	// Connectivity first: every service below the entry gets one caller
	// from the layer above, so nothing is orphaned.
	for l := 1; l < opts.Layers; l++ {
		for _, name := range layers[l] {
			parent := layers[l-1][rng.Intn(len(layers[l-1]))]
			deps[parent] = append(deps[parent], name)
		}
	}
	// Then draw each non-leaf service's target out-degree and add extra
	// edges into the next layer until it is met (or the layer is
	// exhausted).
	for l := 0; l < opts.Layers-1; l++ {
		below := layers[l+1]
		for _, name := range layers[l] {
			want := drawDegree(rng, opts.MaxDegree)
			for tries := 0; len(deps[name]) < want && tries < 4*want; tries++ {
				candidate := below[rng.Intn(len(below))]
				if !contains(deps[name], candidate) {
					deps[name] = append(deps[name], candidate)
				}
			}
		}
	}

	spec := Spec{Entry: serviceName(0)}
	for i := 0; i < opts.Services; i++ {
		name := serviceName(i)
		replicas := opts.MinReplicas
		if opts.MaxReplicas > opts.MinReplicas {
			replicas += rng.Intn(opts.MaxReplicas - opts.MinReplicas + 1)
		}
		spec.Services = append(spec.Services, ServiceSpec{
			Name:      name,
			Replicas:  replicas,
			DependsOn: deps[name],
			WorkTime:  opts.WorkTime,
		})
	}
	return spec
}

// drawDegree samples an out-degree in [1, max]: degree d with probability
// proportional to 2^-(d-1), the "most call few, few call many" shape.
func drawDegree(rng *rand.Rand, max int) int {
	d := 1
	for d < max && rng.Intn(2) == 0 {
		d++
	}
	return d
}

func serviceName(i int) string { return fmt.Sprintf("svc-%03d", i) }

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
