// Package trace provides request-ID generation and propagation helpers,
// plus the per-hop span headers that turn flat request IDs into causal
// trees.
//
// Microservice applications commonly assign a globally unique ID to every
// user request and propagate it to downstream services via a message header
// (the paper cites Dapper and Zipkin). Gremlin agents use this ID to confine
// fault injection and observation logging to specific request flows, e.g.
// synthetic test traffic carrying IDs that match the pattern "test-*".
//
// On top of the flat request ID, every Gremlin agent mints a span ID per
// proxied hop and forwards it downstream (HeaderSpan); the receiving
// service relays it on its own outbound calls (Propagate), where the next
// agent reads it as the parent of the span it mints. The resulting
// parent/child links let internal/tracing reassemble each request flow into
// a Dapper-style trace tree instead of an unordered record bag.
package trace

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync/atomic"
)

// HeaderRequestID is the header used to propagate the request ID between
// microservices and through Gremlin agents.
const HeaderRequestID = "X-Gremlin-ID"

// HeaderSpan carries the span ID of the hop that delivered a request: the
// agent proxying a hop mints a fresh span ID, stamps it on the outbound
// request, and the callee's own outbound calls relay it (Propagate) so the
// next agent can use it as the parent span.
const HeaderSpan = "X-Gremlin-Span"

// HeaderParentSpan carries the parent span of the hop named by HeaderSpan.
// It is informational for downstream debugging; trace assembly links spans
// through the (SpanID, ParentSpanID) pairs each agent logs.
const HeaderParentSpan = "X-Gremlin-Parent-Span"

// TestIDPrefix is the conventional prefix for synthetic test traffic. Rules
// installed by recipes default to matching the pattern "test-*" so that
// production requests pass through untouched.
const TestIDPrefix = "test-"

// globalSalt derives process-unique salts for generators constructed
// without an rng, so that two nil-rng generators never share a salt.
var globalSalt atomic.Uint64

// Generator produces unique request (or span) IDs with a fixed prefix. The
// zero value is not usable; construct with NewGenerator. Generator is safe
// for concurrent use.
//
// Every ID has the shape
//
//	<prefix><6 hex salt chars>-<decimal counter>
//
// Because the salt is always exactly six hex characters (no dashes) and
// the counter is decimal digits only, two generators with distinct
// prefixes can never emit the same ID, even when one prefix extends the
// other (e.g. "camp-" and "camp-1-"): aligning the two shapes would
// require a dash inside the salt or a non-digit inside the counter.
// Campaigns rely on this to keep per-run ID namespaces disjoint in a
// shared event store. Two generators sharing a prefix are disjoint as
// long as their salts differ — guaranteed for nil-rng generators in one
// process, probabilistic for seeded ones.
type Generator struct {
	prefix string
	ctr    atomic.Uint64
	salt   uint64
}

// NewGenerator returns a Generator whose IDs carry the given prefix
// (typically TestIDPrefix). The prefix must be non-empty — an unprefixed
// generator would defeat the pattern-based namespace isolation every
// consumer of these IDs depends on — and an empty prefix panics.
//
// The rng seeds the generator's salt; pass a deterministic rand.Rand in
// tests for reproducible IDs. A nil rng draws the salt from a
// process-global sequence instead, so distinct generators in one process
// still never collide; cross-process uniqueness requires a seeded rng.
func NewGenerator(prefix string, rng *rand.Rand) *Generator {
	if prefix == "" {
		panic("trace: NewGenerator requires a non-empty prefix")
	}
	var salt uint64
	if rng != nil {
		salt = rng.Uint64() % 0xffffff
	} else {
		salt = globalSalt.Add(1) % 0xffffff
	}
	return &Generator{prefix: prefix, salt: salt}
}

// Next returns a fresh unique ID.
func (g *Generator) Next() string {
	n := g.ctr.Add(1)
	return fmt.Sprintf("%s%06x-%d", g.prefix, g.salt, n)
}

// FromRequest extracts the request ID from an HTTP request, returning the
// empty string if none is present.
func FromRequest(r *http.Request) string {
	return r.Header.Get(HeaderRequestID)
}

// SetRequestID stamps the request ID onto an outgoing HTTP request.
func SetRequestID(r *http.Request, id string) {
	if id != "" {
		r.Header.Set(HeaderRequestID, id)
	}
}

// SpanFromRequest extracts the span ID of the hop that delivered the
// request ("" if none). For a Gremlin agent this is the parent of the span
// it is about to mint.
func SpanFromRequest(r *http.Request) string {
	return r.Header.Get(HeaderSpan)
}

// SetSpan stamps span identity onto an outgoing request: spanID becomes
// HeaderSpan and parentID becomes HeaderParentSpan. Empty values delete
// the corresponding header rather than leaving a stale inherited value —
// agents rewrite both on every hop.
func SetSpan(r *http.Request, spanID, parentID string) {
	if spanID == "" {
		r.Header.Del(HeaderSpan)
	} else {
		r.Header.Set(HeaderSpan, spanID)
	}
	if parentID == "" {
		r.Header.Del(HeaderParentSpan)
	} else {
		r.Header.Set(HeaderParentSpan, parentID)
	}
}

// Propagate copies the flow identity — the request ID, the span headers,
// and the execution index — from an inbound request to an outbound
// request, preserving both the flat flow ID and the causal chain across a
// microservice hop. It returns the propagated request ID ("" when the
// inbound request carried none).
func Propagate(in *http.Request, out *http.Request) string {
	id := FromRequest(in)
	SetRequestID(out, id)
	SetSpan(out, in.Header.Get(HeaderSpan), in.Header.Get(HeaderParentSpan))
	SetEI(out, in.Header.Get(HeaderEI))
	return id
}
