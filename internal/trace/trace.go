// Package trace provides request-ID generation and propagation helpers.
//
// Microservice applications commonly assign a globally unique ID to every
// user request and propagate it to downstream services via a message header
// (the paper cites Dapper and Zipkin). Gremlin agents use this ID to confine
// fault injection and observation logging to specific request flows, e.g.
// synthetic test traffic carrying IDs that match the pattern "test-*".
package trace

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync/atomic"
)

// HeaderRequestID is the header used to propagate the request ID between
// microservices and through Gremlin agents.
const HeaderRequestID = "X-Gremlin-ID"

// TestIDPrefix is the conventional prefix for synthetic test traffic. Rules
// installed by recipes default to matching the pattern "test-*" so that
// production requests pass through untouched.
const TestIDPrefix = "test-"

// Generator produces unique request IDs with a fixed prefix. The zero value
// is not usable; construct with NewGenerator. Generator is safe for
// concurrent use.
type Generator struct {
	prefix string
	ctr    atomic.Uint64
	salt   uint64
}

// NewGenerator returns a Generator whose IDs carry the given prefix
// (typically TestIDPrefix). The rng seeds a per-generator salt so that IDs
// from different runs do not collide in a shared event store; pass a
// deterministic rand.Rand in tests for reproducible IDs.
func NewGenerator(prefix string, rng *rand.Rand) *Generator {
	var salt uint64
	if rng != nil {
		salt = rng.Uint64() % 0xffffff
	}
	return &Generator{prefix: prefix, salt: salt}
}

// Next returns a fresh unique request ID.
func (g *Generator) Next() string {
	n := g.ctr.Add(1)
	if g.salt == 0 {
		return g.prefix + strconv.FormatUint(n, 10)
	}
	return fmt.Sprintf("%s%06x-%d", g.prefix, g.salt, n)
}

// FromRequest extracts the request ID from an HTTP request, returning the
// empty string if none is present.
func FromRequest(r *http.Request) string {
	return r.Header.Get(HeaderRequestID)
}

// SetRequestID stamps the request ID onto an outgoing HTTP request.
func SetRequestID(r *http.Request, id string) {
	if id != "" {
		r.Header.Set(HeaderRequestID, id)
	}
}

// Propagate copies the request ID from an inbound request to an outbound
// request, preserving the flow identity across a microservice hop. It
// returns the propagated ID ("" when the inbound request carried none).
func Propagate(in *http.Request, out *http.Request) string {
	id := FromRequest(in)
	SetRequestID(out, id)
	return id
}
