package trace

import (
	"net/http"
	"strconv"
	"strings"
)

// HeaderEI carries the execution index of the hop that delivered a
// request: the causal call path from the edge of the system down to this
// hop, as a "/"-joined list of <service>#<ordinal> frames. Each Gremlin
// agent appends one frame per proxied hop — the destination service name
// plus the ordinal of this call among its siblings (same request, same
// parent span, same destination) — and the receiving service relays the
// header on its own outbound calls (Propagate). Two calls that reach the
// same edge along different causal paths therefore carry different
// execution indices, which is what lets the explorer name injection
// points finer than (src, dst) edges.
const HeaderEI = "X-Gremlin-EI"

// EITruncationMarker is the sentinel frame terminating an execution index
// that hit the depth or byte bound. Once an index carries the marker no
// further frames are appended: on deep or cyclic topologies the header
// stays bounded and the truncation is explicit rather than silent.
const EITruncationMarker = "…"

// Bounds on execution-index growth enforced by AppendEI. A frame is
// ~8-24 bytes for realistic service names, so 32 frames comfortably fit
// the byte cap; the byte cap additionally guards against pathological
// service names.
const (
	MaxEIFrames = 32
	MaxEIBytes  = 1024
)

// EIFrame is one hop of an execution index: the destination service of
// the call and the call's ordinal among its siblings (0-based count of
// prior calls from the same parent span of the same request to the same
// destination — retries and sequential fan-out calls get 0, 1, 2, …).
type EIFrame struct {
	Service string
	Ordinal int
}

// String renders the frame in its wire form, <service>#<ordinal>.
func (f EIFrame) String() string {
	return f.Service + "#" + strconv.Itoa(f.Ordinal)
}

// FormatEI renders frames into the wire form of an execution index. When
// truncated is true the EITruncationMarker is appended as a final frame.
func FormatEI(frames []EIFrame, truncated bool) string {
	var b strings.Builder
	for i, f := range frames {
		if i > 0 {
			b.WriteByte('/')
		}
		b.WriteString(f.String())
	}
	if truncated {
		if len(frames) > 0 {
			b.WriteByte('/')
		}
		b.WriteString(EITruncationMarker)
	}
	return b.String()
}

// ParseEI decodes a wire-form execution index into its frames, reporting
// whether the index was truncated. Parsing is forgiving: malformed frames
// (no '#' separator, empty service, non-numeric or negative ordinal) are
// dropped, and anything after a truncation marker is discarded — a header
// corrupted in flight degrades to a shorter path instead of an error.
// ParseEI(FormatEI(frames, t)) round-trips exactly for well-formed
// frames (service names must not contain '/' or '#').
func ParseEI(s string) (frames []EIFrame, truncated bool) {
	if s == "" {
		return nil, false
	}
	for _, part := range strings.Split(s, "/") {
		if part == EITruncationMarker {
			return frames, true
		}
		i := strings.LastIndexByte(part, '#')
		if i <= 0 {
			continue // malformed: no separator or empty service
		}
		n, err := strconv.Atoi(part[i+1:])
		if err != nil || n < 0 {
			continue
		}
		frames = append(frames, EIFrame{Service: part[:i], Ordinal: n})
	}
	return frames, false
}

// CanonicalEI re-encodes a wire-form execution index into its canonical
// form: malformed frames dropped, truncation marker (if any) moved to the
// terminal position. Canonical indices compare by string equality.
func CanonicalEI(s string) string {
	frames, truncated := ParseEI(s)
	return FormatEI(frames, truncated)
}

// AppendEI extends an inbound execution index with one more hop frame,
// enforcing the depth and byte bounds. It returns the new wire-form index
// and whether this append hit a bound (the frame was dropped and the
// index terminated with the truncation marker, or the inbound index was
// already truncated and the frame silently discarded). Agents count every
// true return as a truncation event.
func AppendEI(ei, service string, ordinal int) (string, bool) {
	frames, truncated := ParseEI(ei)
	if truncated {
		// Already at the bound upstream: never grow past the marker.
		return FormatEI(clampEI(frames), true), true
	}
	next := append(frames, EIFrame{Service: service, Ordinal: ordinal})
	out := FormatEI(next, false)
	if len(next) > MaxEIFrames || len(out) > MaxEIBytes {
		return FormatEI(clampEI(frames), true), true
	}
	return out, false
}

// clampEI bounds an inbound frame list that somehow already exceeds the
// caps (a forged or pre-cap header) so AppendEI's output always honors
// them.
func clampEI(frames []EIFrame) []EIFrame {
	if len(frames) > MaxEIFrames {
		frames = frames[:MaxEIFrames]
	}
	for len(frames) > 0 && len(FormatEI(frames, true)) > MaxEIBytes {
		frames = frames[:len(frames)-1]
	}
	return frames
}

// EIFromRequest extracts the wire-form execution index from an HTTP
// request ("" if none).
func EIFromRequest(r *http.Request) string {
	return r.Header.Get(HeaderEI)
}

// SetEI stamps an execution index onto an outgoing request. An empty
// index deletes the header rather than leaving a stale inherited value.
func SetEI(r *http.Request, ei string) {
	if ei == "" {
		r.Header.Del(HeaderEI)
	} else {
		r.Header.Set(HeaderEI, ei)
	}
}
