package trace

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"
)

func TestEIAppendAndParse(t *testing.T) {
	ei, trunc := AppendEI("", "serviceA", 0)
	if ei != "serviceA#0" || trunc {
		t.Fatalf("root append = %q/%v", ei, trunc)
	}
	ei, trunc = AppendEI(ei, "serviceB", 2)
	if ei != "serviceA#0/serviceB#2" || trunc {
		t.Fatalf("second append = %q/%v", ei, trunc)
	}
	frames, truncated := ParseEI(ei)
	if truncated || len(frames) != 2 ||
		frames[0] != (EIFrame{"serviceA", 0}) || frames[1] != (EIFrame{"serviceB", 2}) {
		t.Fatalf("parse = %+v truncated=%v", frames, truncated)
	}
}

func TestEIDepthBound(t *testing.T) {
	ei := ""
	truncations := 0
	for i := 0; i < MaxEIFrames+5; i++ {
		var trunc bool
		ei, trunc = AppendEI(ei, "svc", i)
		if trunc {
			truncations++
		}
	}
	if truncations != 5 {
		t.Fatalf("truncations = %d, want 5", truncations)
	}
	if !strings.HasSuffix(ei, "/"+EITruncationMarker) {
		t.Fatalf("deep EI not marker-terminated: %q", ei)
	}
	frames, truncated := ParseEI(ei)
	if !truncated || len(frames) != MaxEIFrames {
		t.Fatalf("parse of truncated EI = %d frames, truncated=%v", len(frames), truncated)
	}
	// Once truncated, the index never grows again.
	again, trunc := AppendEI(ei, "svc", 99)
	if !trunc || again != ei {
		t.Fatalf("append past marker changed index: %q -> %q", ei, again)
	}
}

func TestEIByteBound(t *testing.T) {
	long := strings.Repeat("x", 200)
	ei := ""
	truncated := false
	for i := 0; i < 10 && !truncated; i++ {
		ei, truncated = AppendEI(ei, long, i)
	}
	if !truncated {
		t.Fatal("200-byte service names never hit the byte bound")
	}
	if len(ei) > MaxEIBytes {
		t.Fatalf("truncated EI is %d bytes, above the %d cap", len(ei), MaxEIBytes)
	}
	if !strings.HasSuffix(ei, EITruncationMarker) {
		t.Fatalf("byte-bounded EI not marker-terminated: %q", ei)
	}
}

func TestEIMalformedFramesDropped(t *testing.T) {
	cases := map[string]string{
		"a#0/garbage/b#1":   "a#0/b#1",  // no separator
		"a#0/#3/b#1":        "a#0/b#1",  // empty service
		"a#0/b#x":           "a#0",      // non-numeric ordinal
		"a#0/b#-2":          "a#0",      // negative ordinal
		"a#0/…/b#9":         "a#0/…",    // frames after marker dropped
		"…":                 "…",        // bare marker
		"":                  "",         // empty
		"svc#1#2":           "",         // ordinal is not numeric after last '#'... actually "2" parses; service "svc#1"
	}
	// The svc#1#2 case: LastIndexByte splits at the final '#', so the
	// service is "svc#1" and the ordinal 2 — legal, if ugly.
	cases["svc#1#2"] = "svc#1#2"
	for in, want := range cases {
		if got := CanonicalEI(in); got != want {
			t.Errorf("CanonicalEI(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestEIRoundTripProperty is the property-style encode/canonicalize/decode
// test: for randomly generated frame lists (seeded, reproducible),
// FormatEI → ParseEI is the identity, CanonicalEI is idempotent, and
// AppendEI never exceeds the byte bound.
func TestEIRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	services := []string{"a", "api", "checkout-v2", "db_replica", "s.name", "x"}
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(MaxEIFrames + 4)
		frames := make([]EIFrame, n)
		for i := range frames {
			frames[i] = EIFrame{
				Service: services[rng.Intn(len(services))],
				Ordinal: rng.Intn(1000),
			}
		}
		truncated := rng.Intn(4) == 0
		wire := FormatEI(frames, truncated)

		back, backTrunc := ParseEI(wire)
		if backTrunc != truncated {
			t.Fatalf("trial %d: truncated %v -> %v (wire %q)", trial, truncated, backTrunc, wire)
		}
		if len(back) != len(frames) {
			t.Fatalf("trial %d: %d frames -> %d (wire %q)", trial, len(frames), len(back), wire)
		}
		for i := range frames {
			if back[i] != frames[i] {
				t.Fatalf("trial %d frame %d: %+v -> %+v", trial, i, frames[i], back[i])
			}
		}
		if c := CanonicalEI(wire); c != wire {
			t.Fatalf("trial %d: canonical of well-formed wire changed it: %q -> %q", trial, wire, c)
		}
		if c := CanonicalEI(CanonicalEI(wire)); c != CanonicalEI(wire) {
			t.Fatalf("trial %d: CanonicalEI not idempotent on %q", trial, wire)
		}

		// Appending respects both bounds regardless of starting state.
		out, _ := AppendEI(wire, services[rng.Intn(len(services))], rng.Intn(10))
		if len(out) > MaxEIBytes {
			t.Fatalf("trial %d: AppendEI produced %d bytes", trial, len(out))
		}
		if f, _ := ParseEI(out); len(f) > MaxEIFrames {
			t.Fatalf("trial %d: AppendEI produced %d frames", trial, len(f))
		}
	}
}

func TestPropagateRelaysEI(t *testing.T) {
	in, _ := http.NewRequest("GET", "http://a/", nil)
	SetRequestID(in, "test-1")
	SetSpan(in, "sp-1", "sp-0")
	SetEI(in, "a#0/b#1")
	out, _ := http.NewRequest("GET", "http://b/", nil)
	out.Header.Set(HeaderEI, "stale#9") // must be overwritten, not merged
	if id := Propagate(in, out); id != "test-1" {
		t.Fatalf("propagated id = %q", id)
	}
	if got := EIFromRequest(out); got != "a#0/b#1" {
		t.Fatalf("outbound EI = %q", got)
	}
	// An EI-less inbound request clears any stale outbound header.
	bare, _ := http.NewRequest("GET", "http://a/", nil)
	Propagate(bare, out)
	if got := EIFromRequest(out); got != "" {
		t.Fatalf("outbound EI after bare propagate = %q", got)
	}
}

func TestEIFrameString(t *testing.T) {
	for i := 0; i < 3; i++ {
		f := EIFrame{Service: "svc", Ordinal: i}
		want := fmt.Sprintf("svc#%d", i)
		if f.String() != want {
			t.Fatalf("frame = %q, want %q", f.String(), want)
		}
	}
}
