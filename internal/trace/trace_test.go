package trace

import (
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestGeneratorUnique(t *testing.T) {
	g := NewGenerator(TestIDPrefix, rand.New(rand.NewSource(1)))
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := g.Next()
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
		if !strings.HasPrefix(id, TestIDPrefix) {
			t.Fatalf("id %q missing prefix %q", id, TestIDPrefix)
		}
	}
}

func TestGeneratorNilRNG(t *testing.T) {
	g := NewGenerator("p-", nil)
	if got := g.Next(); got != "p-1" {
		t.Fatalf("Next() = %q, want p-1", got)
	}
	if got := g.Next(); got != "p-2" {
		t.Fatalf("Next() = %q, want p-2", got)
	}
}

func TestGeneratorDeterministicWithSeed(t *testing.T) {
	g1 := NewGenerator("test-", rand.New(rand.NewSource(42)))
	g2 := NewGenerator("test-", rand.New(rand.NewSource(42)))
	for i := 0; i < 10; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("same seed produced different ids: %q vs %q", a, b)
		}
	}
}

func TestGeneratorConcurrent(t *testing.T) {
	g := NewGenerator(TestIDPrefix, rand.New(rand.NewSource(7)))
	const (
		workers = 8
		perW    = 200
	)
	var (
		mu   sync.Mutex
		seen = make(map[string]bool, workers*perW)
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				id := g.Next()
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate id %q", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*perW {
		t.Fatalf("got %d unique ids, want %d", len(seen), workers*perW)
	}
}

func TestPropagate(t *testing.T) {
	in, err := http.NewRequest(http.MethodGet, "http://a/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := http.NewRequest(http.MethodGet, "http://b/y", nil)
	if err != nil {
		t.Fatal(err)
	}

	if id := Propagate(in, out); id != "" {
		t.Fatalf("Propagate with no id = %q, want empty", id)
	}
	if got := FromRequest(out); got != "" {
		t.Fatalf("outbound id = %q, want empty", got)
	}

	SetRequestID(in, "test-123")
	if id := Propagate(in, out); id != "test-123" {
		t.Fatalf("Propagate = %q, want test-123", id)
	}
	if got := FromRequest(out); got != "test-123" {
		t.Fatalf("outbound id = %q, want test-123", got)
	}
}

func TestSetRequestIDEmptyIsNoop(t *testing.T) {
	r, err := http.NewRequest(http.MethodGet, "http://a/", nil)
	if err != nil {
		t.Fatal(err)
	}
	SetRequestID(r, "")
	if _, ok := r.Header[http.CanonicalHeaderKey(HeaderRequestID)]; ok {
		t.Fatal("empty id should not set header")
	}
}
