package trace

import (
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestGeneratorUnique(t *testing.T) {
	g := NewGenerator(TestIDPrefix, rand.New(rand.NewSource(1)))
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := g.Next()
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
		if !strings.HasPrefix(id, TestIDPrefix) {
			t.Fatalf("id %q missing prefix %q", id, TestIDPrefix)
		}
	}
}

func TestGeneratorNilRNG(t *testing.T) {
	g := NewGenerator("p-", nil)
	a, b := g.Next(), g.Next()
	if a == b {
		t.Fatalf("consecutive ids collide: %q", a)
	}
	for _, id := range []string{a, b} {
		if !strings.HasPrefix(id, "p-") {
			t.Fatalf("id %q missing prefix", id)
		}
	}
	// Two nil-rng generators with the same prefix draw distinct salts from
	// the process-global sequence, so their ID spaces stay disjoint.
	g2 := NewGenerator("p-", nil)
	if got := g2.Next(); got == a || got == b {
		t.Fatalf("second generator repeated id %q", got)
	}
}

func TestGeneratorRejectsEmptyPrefix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGenerator(\"\", nil) should panic")
		}
	}()
	NewGenerator("", nil)
}

// TestGeneratorDistinctPrefixesNeverCollide pins the namespace-isolation
// contract campaigns depend on: generators with distinct prefixes sharing
// one event store never produce the same ID, even when one prefix extends
// the other (the "camp-" vs "camp-1-" shape) and regardless of rng.
func TestGeneratorDistinctPrefixesNeverCollide(t *testing.T) {
	gens := []*Generator{
		NewGenerator("camp-", nil),
		NewGenerator("camp-1-", nil),
		NewGenerator("camp-", rand.New(rand.NewSource(3))),
		NewGenerator("camp-1-", rand.New(rand.NewSource(3))),
		NewGenerator("camp-11-", rand.New(rand.NewSource(4))),
	}
	seen := make(map[string]int)
	for gi, g := range gens {
		for i := 0; i < 500; i++ {
			id := g.Next()
			if prev, dup := seen[id]; dup && gens[prev].prefix != g.prefix {
				t.Fatalf("generators %d and %d (distinct prefixes) both produced %q", prev, gi, id)
			}
			seen[id] = gi
		}
	}
}

func TestGeneratorDeterministicWithSeed(t *testing.T) {
	g1 := NewGenerator("test-", rand.New(rand.NewSource(42)))
	g2 := NewGenerator("test-", rand.New(rand.NewSource(42)))
	for i := 0; i < 10; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("same seed produced different ids: %q vs %q", a, b)
		}
	}
}

func TestGeneratorConcurrent(t *testing.T) {
	g := NewGenerator(TestIDPrefix, rand.New(rand.NewSource(7)))
	const (
		workers = 8
		perW    = 200
	)
	var (
		mu   sync.Mutex
		seen = make(map[string]bool, workers*perW)
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				id := g.Next()
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate id %q", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*perW {
		t.Fatalf("got %d unique ids, want %d", len(seen), workers*perW)
	}
}

func TestPropagate(t *testing.T) {
	in, err := http.NewRequest(http.MethodGet, "http://a/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := http.NewRequest(http.MethodGet, "http://b/y", nil)
	if err != nil {
		t.Fatal(err)
	}

	if id := Propagate(in, out); id != "" {
		t.Fatalf("Propagate with no id = %q, want empty", id)
	}
	if got := FromRequest(out); got != "" {
		t.Fatalf("outbound id = %q, want empty", got)
	}

	SetRequestID(in, "test-123")
	if id := Propagate(in, out); id != "test-123" {
		t.Fatalf("Propagate = %q, want test-123", id)
	}
	if got := FromRequest(out); got != "test-123" {
		t.Fatalf("outbound id = %q, want test-123", got)
	}
}

func TestPropagateCopiesSpanHeaders(t *testing.T) {
	in, _ := http.NewRequest(http.MethodGet, "http://a/x", nil)
	out, _ := http.NewRequest(http.MethodGet, "http://b/y", nil)
	SetRequestID(in, "test-9")
	SetSpan(in, "sp-1", "sp-0")

	if id := Propagate(in, out); id != "test-9" {
		t.Fatalf("Propagate = %q, want test-9", id)
	}
	if got := SpanFromRequest(out); got != "sp-1" {
		t.Fatalf("outbound span = %q, want sp-1", got)
	}
	if got := out.Header.Get(HeaderParentSpan); got != "sp-0" {
		t.Fatalf("outbound parent span = %q, want sp-0", got)
	}
}

func TestSetSpanClearsStaleHeaders(t *testing.T) {
	r, _ := http.NewRequest(http.MethodGet, "http://a/", nil)
	SetSpan(r, "sp-new", "sp-old")
	SetSpan(r, "", "")
	if _, ok := r.Header[http.CanonicalHeaderKey(HeaderSpan)]; ok {
		t.Fatal("empty span should delete header")
	}
	if _, ok := r.Header[http.CanonicalHeaderKey(HeaderParentSpan)]; ok {
		t.Fatal("empty parent should delete header")
	}
}

func TestSetRequestIDEmptyIsNoop(t *testing.T) {
	r, err := http.NewRequest(http.MethodGet, "http://a/", nil)
	if err != nil {
		t.Fatal(err)
	}
	SetRequestID(r, "")
	if _, ok := r.Header[http.CanonicalHeaderKey(HeaderRequestID)]; ok {
		t.Fatal("empty id should not set header")
	}
}
