package microservice

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gremlin/internal/trace"
)

func startService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("close %s: %v", cfg.Name, err)
		}
	})
	return s
}

func httpGet(t *testing.T, url, reqID string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	trace.SetRequestID(req, reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestLeafService(t *testing.T) {
	s := startService(t, Config{Name: "leaf"})
	status, body := httpGet(t, s.URL()+"/hello", "")
	if status != 200 || body != "ok /hello" {
		t.Fatalf("got %d %q", status, body)
	}
}

func TestLeafServiceFixedPayload(t *testing.T) {
	s := startService(t, Config{Name: "leaf", Handler: LeafHandler("data")})
	if _, body := httpGet(t, s.URL()+"/x", ""); body != "data" {
		t.Fatalf("body = %q", body)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error for missing name")
	}
	if _, err := New(Config{Name: "a", Dependencies: []Dependency{{Name: "", BaseURL: "x"}}}); err == nil {
		t.Fatal("want error for unnamed dependency")
	}
	if _, err := New(Config{Name: "a", Dependencies: []Dependency{{Name: "b"}}}); err == nil {
		t.Fatal("want error for dependency without URL")
	}
	if _, err := New(Config{Name: "a", Dependencies: []Dependency{
		{Name: "b", BaseURL: "u1"}, {Name: "b", BaseURL: "u2"},
	}}); err == nil {
		t.Fatal("want error for duplicate dependency")
	}
}

func TestCallerPropagatesRequestID(t *testing.T) {
	var seenID string
	leaf := startService(t, Config{Name: "leaf", Handler: func(w http.ResponseWriter, r *http.Request, _ *Caller) {
		seenID = trace.FromRequest(r)
		_, _ = io.WriteString(w, "leafdata")
	}})
	mid := startService(t, Config{
		Name:         "mid",
		Dependencies: []Dependency{{Name: "leaf", BaseURL: leaf.URL()}},
		Handler:      ProxyHandler("leaf"),
	})
	status, body := httpGet(t, mid.URL()+"/q", "test-77")
	if status != 200 || body != "leafdata" {
		t.Fatalf("got %d %q", status, body)
	}
	if seenID != "test-77" {
		t.Fatalf("leaf saw request id %q, want test-77", seenID)
	}
}

func TestCallerUnknownDependency(t *testing.T) {
	s := startService(t, Config{Name: "svc", Handler: func(w http.ResponseWriter, r *http.Request, call *Caller) {
		res := call.Get("ghost", "/")
		if res.Err == nil {
			t.Error("want error for unknown dependency")
		}
		w.WriteHeader(http.StatusInternalServerError)
	}})
	if status, _ := httpGet(t, s.URL()+"/", ""); status != 500 {
		t.Fatalf("status = %d", status)
	}
}

func TestCallerPost(t *testing.T) {
	leaf := startService(t, Config{Name: "leaf", Handler: func(w http.ResponseWriter, r *http.Request, _ *Caller) {
		b, _ := io.ReadAll(r.Body)
		_, _ = io.WriteString(w, "got:"+string(b))
	}})
	mid := startService(t, Config{
		Name:         "mid",
		Dependencies: []Dependency{{Name: "leaf", BaseURL: leaf.URL()}},
		Handler: func(w http.ResponseWriter, r *http.Request, call *Caller) {
			res := call.Post("leaf", "/submit", "payload")
			w.WriteHeader(res.Status)
			_, _ = w.Write(res.Body)
		},
	})
	if _, body := httpGet(t, mid.URL()+"/", ""); body != "got:payload" {
		t.Fatalf("body = %q", body)
	}
}

func TestWorkTime(t *testing.T) {
	s := startService(t, Config{Name: "slow", WorkTime: 80 * time.Millisecond})
	start := time.Now()
	httpGet(t, s.URL()+"/", "")
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("elapsed = %v, want >= 80ms", elapsed)
	}
}

func TestFanOutHandlerFailFast(t *testing.T) {
	ok := startService(t, Config{Name: "ok", Handler: LeafHandler("A")})
	bad := startService(t, Config{Name: "bad", Handler: StatusHandler(503, "down")})

	root := startService(t, Config{
		Name: "root",
		Dependencies: []Dependency{
			{Name: "ok", BaseURL: ok.URL()},
			{Name: "bad", BaseURL: bad.URL()},
		},
		Handler: FanOutHandler(FailFast),
	})
	status, body := httpGet(t, root.URL()+"/", "")
	if status != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", status)
	}
	if !strings.Contains(body, "bad") {
		t.Fatalf("body = %q", body)
	}
}

func TestFanOutHandlerBestEffort(t *testing.T) {
	ok := startService(t, Config{Name: "ok", Handler: LeafHandler("A")})
	bad := startService(t, Config{Name: "bad", Handler: StatusHandler(503, "down")})

	root := startService(t, Config{
		Name: "root",
		Dependencies: []Dependency{
			{Name: "ok", BaseURL: ok.URL()},
			{Name: "bad", BaseURL: bad.URL()},
		},
		Handler: FanOutHandler(BestEffort),
	})
	status, body := httpGet(t, root.URL()+"/", "")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	if !strings.Contains(body, "ok:[A]") || !strings.Contains(body, "degraded=") {
		t.Fatalf("body = %q", body)
	}
}

func TestFanOutHandlerAllHealthy(t *testing.T) {
	a := startService(t, Config{Name: "a", Handler: LeafHandler("A")})
	b := startService(t, Config{Name: "b", Handler: LeafHandler("B")})
	root := startService(t, Config{
		Name: "root",
		Dependencies: []Dependency{
			{Name: "a", BaseURL: a.URL()},
			{Name: "b", BaseURL: b.URL()},
		},
		Handler: FanOutHandler(FailFast),
	})
	_, body := httpGet(t, root.URL()+"/", "")
	if body != "root(a:[A] b:[B])" {
		t.Fatalf("body = %q", body)
	}
}

func TestFallbackHandlerPrimaryHealthy(t *testing.T) {
	es := startService(t, Config{Name: "es", Handler: LeafHandler("es-results")})
	db := startService(t, Config{Name: "db", Handler: LeafHandler("db-results")})
	wp := startService(t, Config{
		Name: "wp",
		Dependencies: []Dependency{
			{Name: "es", BaseURL: es.URL()},
			{Name: "db", BaseURL: db.URL()},
		},
		Handler: FallbackHandler("es", "db"),
	})
	_, body := httpGet(t, wp.URL()+"/search", "")
	if !strings.Contains(body, "via es: es-results") {
		t.Fatalf("body = %q", body)
	}
}

func TestFallbackHandlerFallsBackOnError(t *testing.T) {
	es := startService(t, Config{Name: "es", Handler: StatusHandler(503, "down")})
	db := startService(t, Config{Name: "db", Handler: LeafHandler("db-results")})
	wp := startService(t, Config{
		Name: "wp",
		Dependencies: []Dependency{
			{Name: "es", BaseURL: es.URL()},
			{Name: "db", BaseURL: db.URL()},
		},
		Handler: FallbackHandler("es", "db"),
	})
	status, body := httpGet(t, wp.URL()+"/search", "")
	if status != 200 || !strings.Contains(body, "via db: db-results") {
		t.Fatalf("got %d %q", status, body)
	}
}

func TestFallbackHandlerBothFail(t *testing.T) {
	es := startService(t, Config{Name: "es", Handler: StatusHandler(503, "down")})
	db := startService(t, Config{Name: "db", Handler: StatusHandler(500, "down")})
	wp := startService(t, Config{
		Name: "wp",
		Dependencies: []Dependency{
			{Name: "es", BaseURL: es.URL()},
			{Name: "db", BaseURL: db.URL()},
		},
		Handler: FallbackHandler("es", "db"),
	})
	status, _ := httpGet(t, wp.URL()+"/search", "")
	if status != http.StatusBadGateway {
		t.Fatalf("status = %d", status)
	}
}

func TestProxyHandlerTransportError(t *testing.T) {
	mid := startService(t, Config{
		Name:         "mid",
		Dependencies: []Dependency{{Name: "gone", BaseURL: "http://127.0.0.1:1"}},
		Handler:      ProxyHandler("gone"),
	})
	status, body := httpGet(t, mid.URL()+"/", "")
	if status != http.StatusBadGateway || !strings.Contains(body, "unreachable") {
		t.Fatalf("got %d %q", status, body)
	}
}

func TestProxyHandlerRelaysStatus(t *testing.T) {
	leaf := startService(t, Config{Name: "leaf", Handler: StatusHandler(418, "teapot")})
	mid := startService(t, Config{
		Name:         "mid",
		Dependencies: []Dependency{{Name: "leaf", BaseURL: leaf.URL()}},
		Handler:      ProxyHandler("leaf"),
	})
	status, body := httpGet(t, mid.URL()+"/", "")
	if status != 418 || body != "teapot" {
		t.Fatalf("got %d %q", status, body)
	}
}

func TestDependencyNamesOrder(t *testing.T) {
	s := startService(t, Config{
		Name: "svc",
		Dependencies: []Dependency{
			{Name: "z", BaseURL: "http://x"},
			{Name: "a", BaseURL: "http://y"},
		},
	})
	names := s.DependencyNames()
	if len(names) != 2 || names[0] != "z" || names[1] != "a" {
		t.Fatalf("names = %v, want configuration order", names)
	}
}
