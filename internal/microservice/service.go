// Package microservice is a small framework for building the HTTP
// microservices that Gremlin tests are staged against: each service owns a
// listener, reaches its dependencies through its sidecar Gremlin agent's
// local routes, propagates request IDs downstream, and composes a response
// from its dependencies' answers.
//
// The framework exists because the paper's evaluation needs real
// applications: binary trees of services for the orchestration benchmark
// (Figure 7), a WordPress-like stack for the case study (Figures 5 and 6),
// and an enterprise application (Figure 4). Those topologies are assembled
// in internal/topology from this package's pieces.
package microservice

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"gremlin/internal/httpx"
	"gremlin/internal/resilience"
	"gremlin/internal/trace"
)

// HealthPath is the liveness probe endpoint every Service answers without
// invoking its handler (and without simulated WorkTime), so active health
// checks stay cheap and never fan out into the topology.
const HealthPath = "/-/healthz"

// Dependency wires one downstream service.
type Dependency struct {
	// Name is the logical name of the downstream service.
	Name string

	// BaseURL is where to reach it — normally the co-located Gremlin
	// agent's local route for this dependency.
	BaseURL string

	// Client issues the calls; compose resilience wrappers here. Nil uses
	// a plain transparent client (no timeout, no retries — the fragile
	// default that resiliency testing exposes).
	Client resilience.Doer
}

// Handler computes a service's response. It receives the inbound request
// and a Caller for reaching dependencies with the flow's request ID
// propagated.
type Handler func(w http.ResponseWriter, r *http.Request, call *Caller)

// Config configures a Service.
type Config struct {
	// Name is the service's logical name.
	Name string

	// ListenAddr is the service's own listen address ("127.0.0.1:0" for
	// ephemeral).
	ListenAddr string

	// Dependencies lists the downstream services reachable from handlers.
	Dependencies []Dependency

	// Handler computes responses. Nil uses a default that echoes the
	// service name (a leaf service).
	Handler Handler

	// WorkTime simulates local processing time added to every request.
	WorkTime time.Duration
}

// Service is a running microservice.
type Service struct {
	cfg    Config
	deps   map[string]Dependency
	server *httpx.Server
}

// New creates a service; the listener is bound immediately, handlers run
// after Start.
func New(cfg Config) (*Service, error) {
	if cfg.Name == "" {
		return nil, errors.New("microservice: config needs a Name")
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	s := &Service{
		cfg:  cfg,
		deps: make(map[string]Dependency, len(cfg.Dependencies)),
	}
	for _, d := range cfg.Dependencies {
		if d.Name == "" || d.BaseURL == "" {
			return nil, fmt.Errorf("microservice: %s has a dependency missing name or URL", cfg.Name)
		}
		if _, ok := s.deps[d.Name]; ok {
			return nil, fmt.Errorf("microservice: %s has duplicate dependency %q", cfg.Name, d.Name)
		}
		if d.Client == nil {
			d.Client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
		}
		s.deps[d.Name] = d
	}
	srv, err := httpx.NewServer(cfg.ListenAddr, http.HandlerFunc(s.serve))
	if err != nil {
		return nil, fmt.Errorf("microservice: bind %s: %w", cfg.Name, err)
	}
	s.server = srv
	return s, nil
}

// Start begins serving requests.
func (s *Service) Start() { s.server.Start() }

// Close shuts the service down.
func (s *Service) Close() error { return s.server.Close() }

// Name returns the service's logical name.
func (s *Service) Name() string { return s.cfg.Name }

// Addr returns the bound listen address.
func (s *Service) Addr() string { return s.server.Addr() }

// URL returns the service's base URL.
func (s *Service) URL() string { return s.server.URL() }

func (s *Service) serve(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == HealthPath {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
		return
	}
	if s.cfg.WorkTime > 0 {
		select {
		case <-time.After(s.cfg.WorkTime):
		case <-r.Context().Done():
			return
		}
	}
	call := &Caller{svc: s, inbound: r}
	h := s.cfg.Handler
	if h == nil {
		h = LeafHandler("")
	}
	h(w, r, call)
}

// Caller reaches a service's dependencies on behalf of one inbound request,
// propagating its request ID (observation O1: flows are traceable end to
// end by ID).
type Caller struct {
	svc     *Service
	inbound *http.Request
}

// RequestID returns the inbound flow's request ID ("" if absent).
func (c *Caller) RequestID() string { return trace.FromRequest(c.inbound) }

// DepResult is the outcome of one dependency call.
type DepResult struct {
	// Dep is the dependency's logical name.
	Dep string

	// Status is the HTTP status received (0 on transport error).
	Status int

	// Body is the response body (nil on transport error).
	Body []byte

	// Err is the transport-level error, if any.
	Err error

	// Latency is how long the call took as observed by this service.
	Latency time.Duration
}

// OK reports whether the call returned a non-error HTTP response.
func (r DepResult) OK() bool { return r.Err == nil && r.Status < 400 }

// Get issues a GET to a dependency, propagating the request ID.
func (c *Caller) Get(dep, path string) DepResult {
	return c.do(http.MethodGet, dep, path, "")
}

// Post issues a POST with a body to a dependency.
func (c *Caller) Post(dep, path, body string) DepResult {
	return c.do(http.MethodPost, dep, path, body)
}

func (c *Caller) do(method, dep, path, body string) DepResult {
	d, ok := c.svc.deps[dep]
	if !ok {
		return DepResult{Dep: dep, Err: fmt.Errorf("microservice: %s has no dependency %q", c.svc.cfg.Name, dep)}
	}
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequestWithContext(c.inbound.Context(), method, d.BaseURL+path, rdr)
	if err != nil {
		return DepResult{Dep: dep, Err: err}
	}
	trace.Propagate(c.inbound, req)

	start := time.Now()
	resp, err := d.Client.Do(req)
	if err != nil {
		return DepResult{Dep: dep, Err: err, Latency: time.Since(start)}
	}
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	closeErr := resp.Body.Close()
	if err == nil {
		err = closeErr
	}
	return DepResult{
		Dep:     dep,
		Status:  resp.StatusCode,
		Body:    respBody,
		Err:     err,
		Latency: time.Since(start),
	}
}

// Do issues an arbitrary request built by the caller through the named
// dependency's client, with the request ID propagated. The URL should be
// built from the dependency's base URL.
func (c *Caller) Do(dep string, req *http.Request) (*http.Response, error) {
	d, ok := c.svc.deps[dep]
	if !ok {
		return nil, fmt.Errorf("microservice: %s has no dependency %q", c.svc.cfg.Name, dep)
	}
	trace.Propagate(c.inbound, req)
	return d.Client.Do(req)
}

// DependencyNames returns the service's dependency names in configuration
// order.
func (s *Service) DependencyNames() []string {
	names := make([]string, 0, len(s.cfg.Dependencies))
	for _, d := range s.cfg.Dependencies {
		names = append(names, d.Name)
	}
	return names
}
