package microservice

import (
	"fmt"
	"net/http"
	"strings"
)

// LeafHandler returns a Handler for a service with no dependencies: it
// answers 200 with a small payload. An empty payload echoes the request
// path.
func LeafHandler(payload string) Handler {
	return func(w http.ResponseWriter, r *http.Request, _ *Caller) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if payload != "" {
			_, _ = fmt.Fprint(w, payload)
			return
		}
		_, _ = fmt.Fprintf(w, "ok %s", r.URL.Path)
	}
}

// AggregationPolicy decides how a fan-out handler reacts to dependency
// failures.
type AggregationPolicy int

// Aggregation policies.
const (
	// FailFast returns 502 as soon as any dependency call fails — the
	// fragile default that lets failures cascade up the call chain.
	FailFast AggregationPolicy = iota + 1

	// BestEffort answers 200 with whatever succeeded, annotating failures
	// — a degraded-but-available response.
	BestEffort
)

// FanOutHandler returns a Handler that calls every configured dependency
// with the inbound path and aggregates their answers under the given
// policy. This is the behaviour of the benchmark tree services (Figure 7):
// a request to the root traverses the whole application graph.
func FanOutHandler(policy AggregationPolicy) Handler {
	return func(w http.ResponseWriter, r *http.Request, call *Caller) {
		var (
			parts  []string
			failed []string
		)
		for _, dep := range call.svc.DependencyNames() {
			res := call.Get(dep, r.URL.Path)
			if !res.OK() {
				failed = append(failed, fmt.Sprintf("%s(status=%d,err=%v)", dep, res.Status, res.Err))
				if policy == FailFast {
					w.Header().Set("Content-Type", "text/plain; charset=utf-8")
					w.WriteHeader(http.StatusBadGateway)
					_, _ = fmt.Fprintf(w, "%s: dependency %s failed: status=%d err=%v\n",
						call.svc.Name(), dep, res.Status, res.Err)
					return
				}
				continue
			}
			parts = append(parts, fmt.Sprintf("%s:[%s]", dep, res.Body))
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = fmt.Fprintf(w, "%s(%s)", call.svc.Name(), strings.Join(parts, " "))
		if len(failed) > 0 {
			_, _ = fmt.Fprintf(w, " degraded=%s", strings.Join(failed, ","))
		}
	}
}

// FallbackHandler returns a Handler that asks primary first and falls back
// to secondary when primary returns an error response or a transport error
// — the ElasticPress behaviour from the paper's case study (§7.1): "the
// plugin handled failure gracefully and fell back to the default
// (MySQL-powered) search method when the Elasticsearch instance was
// unreachable or returned an error."
//
// Note what this handler deliberately does NOT do: there is no timeout, so
// a *slow* (rather than failed) primary stalls the whole request — exactly
// the missing-timeout bug Figures 5 and 6 expose.
func FallbackHandler(primary, secondary string) Handler {
	return func(w http.ResponseWriter, r *http.Request, call *Caller) {
		res := call.Get(primary, r.URL.Path)
		source := primary
		if !res.OK() {
			res = call.Get(secondary, r.URL.Path)
			source = secondary
			if !res.OK() {
				w.WriteHeader(http.StatusBadGateway)
				_, _ = fmt.Fprintf(w, "%s: both %s and %s failed", call.svc.Name(), primary, secondary)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Served-By", source)
		_, _ = fmt.Fprintf(w, "%s via %s: %s", call.svc.Name(), source, res.Body)
	}
}

// ProxyHandler returns a Handler that forwards the inbound path to a single
// dependency and relays its answer — a thin API-gateway service.
func ProxyHandler(dep string) Handler {
	return func(w http.ResponseWriter, r *http.Request, call *Caller) {
		res := call.Get(dep, r.URL.Path)
		if res.Err != nil {
			w.WriteHeader(http.StatusBadGateway)
			_, _ = fmt.Fprintf(w, "%s: %s unreachable: %v", call.svc.Name(), dep, res.Err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(res.Status)
		_, _ = w.Write(res.Body)
	}
}

// StatusHandler returns a Handler that always answers with a fixed status
// and body — for simulating degraded external services.
func StatusHandler(status int, body string) Handler {
	return func(w http.ResponseWriter, _ *http.Request, _ *Caller) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(status)
		_, _ = fmt.Fprint(w, body)
	}
}
