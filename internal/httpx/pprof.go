package httpx

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// PprofHandler returns a mux serving the standard net/http/pprof endpoints
// under /debug/pprof/. The binaries expose it behind an explicit -pprof
// flag on a dedicated listener rather than registering pprof on a shared
// mux, so profiling never rides along on a production control port by
// accident.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartPprof binds and starts a pprof debug server on addr. The caller
// owns the returned server and should Close it on shutdown.
func StartPprof(addr string) (*Server, error) {
	srv, err := NewServer(addr, PprofHandler())
	if err != nil {
		return nil, fmt.Errorf("httpx: bind pprof server: %w", err)
	}
	srv.Start()
	return srv, nil
}
