package httpx

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

type payload struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

func TestWriteJSON(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, http.StatusCreated, payload{Name: "a", Count: 2})
	if rec.Code != http.StatusCreated {
		t.Fatalf("status = %d, want 201", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var got payload
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "a" || got.Count != 2 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestWriteError(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, http.StatusBadRequest, "bad value %d", 42)
	var eb ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error != "bad value 42" {
		t.Fatalf("error = %q", eb.Error)
	}
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestReadJSON(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(`{"name":"x","count":3}`))
	var p payload
	if err := ReadJSON(httptest.NewRecorder(), r, &p); err != nil {
		t.Fatal(err)
	}
	if p.Name != "x" || p.Count != 3 {
		t.Fatalf("decoded = %+v", p)
	}
}

func TestReadJSONRejectsUnknownFields(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(`{"name":"x","bogus":1}`))
	var p payload
	if err := ReadJSON(httptest.NewRecorder(), r, &p); err == nil {
		t.Fatal("want error for unknown field")
	}
}

func TestReadJSONRejectsOversizedBody(t *testing.T) {
	big := bytes.Repeat([]byte("a"), MaxBodyBytes+100)
	body := `{"name":"` + string(big) + `"}`
	r := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(body))
	var p payload
	if err := ReadJSON(httptest.NewRecorder(), r, &p); err == nil {
		t.Fatal("want error for oversized body")
	}
}

func TestServerLifecycle(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, payload{Name: "ok"})
	}))
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	resp, err := http.Get(srv.URL() + "/")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "ok") {
		t.Fatalf("body = %s", b)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Idempotent close.
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Server refuses connections after close.
	if _, err := http.Get(srv.URL() + "/"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}

func TestNewServerBadAddr(t *testing.T) {
	if _, err := NewServer("256.256.256.256:0", nil); err == nil {
		t.Fatal("want error for invalid address")
	}
}

// TestCloseWithRequestLessConnection pins the shutdown fix for keep-alive
// connections that never carry a request: concurrent HTTP clients race
// their dials and park the losers in the idle pool, leaving the server
// side in StateNew — which http.Server.Shutdown alone would wait on
// forever.
func TestCloseWithRequestLessConnection(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]string{"ok": "1"})
	}))
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	// A TCP connection that never sends a request.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// And one normal request so the server has seen real traffic too.
	resp, err := http.Get(srv.URL() + "/")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("Close took %v; request-less connections should not stall shutdown", elapsed)
	}
}

// TestCloseForceTerminatesStuckHandler: a handler that ignores its context
// cannot be drained gracefully; Close must still return after the grace
// period by force-closing.
func TestCloseForceTerminatesStuckHandler(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	srv, err := NewServer("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-release // ignores r.Context() on purpose
	}))
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	go func() {
		resp, err := http.Get(srv.URL() + "/")
		if err == nil {
			_ = resp.Body.Close()
		}
	}()
	<-inHandler

	start := time.Now()
	err = srv.Close()
	elapsed := time.Since(start)
	close(release)
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("Close took %v; force-close should cap the drain at ~1s", elapsed)
	}
}
