// Package httpx contains small HTTP helpers shared by the Gremlin servers:
// JSON encoding/decoding with limits, error payloads, and graceful server
// lifecycle management.
package httpx

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// MaxBodyBytes bounds request bodies accepted by the control-plane servers.
const MaxBodyBytes = 4 << 20 // 4 MiB

// ErrorBody is the JSON error payload returned by Gremlin HTTP APIs.
type ErrorBody struct {
	Error string `json:"error"`
}

// WriteJSON writes v as a JSON response with the given status code.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after the header is written cannot be reported to the
	// client; the connection is simply truncated.
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes a JSON error payload.
func WriteError(w http.ResponseWriter, status int, format string, args ...any) {
	WriteJSON(w, status, ErrorBody{Error: fmt.Sprintf(format, args...)})
}

// ReadJSON decodes the request body into v, enforcing MaxBodyBytes and
// rejecting unknown fields so that client/server schema drift surfaces as an
// error rather than silent data loss.
func ReadJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request body: %w", err)
	}
	return nil
}

// Server wraps http.Server with a managed listener and graceful shutdown so
// callers can start on an ephemeral port, learn the bound address, and stop
// without leaking goroutines.
type Server struct {
	httpServer *http.Server
	listener   net.Listener

	mu     sync.Mutex
	done   chan struct{}
	closed bool
	srvErr error

	// connMu guards fresh: connections accepted but yet to carry a
	// request. http.Server.Shutdown waits on these forever (they are not
	// "idle"), so Close terminates them directly — safe, since no request
	// is in flight on them.
	connMu sync.Mutex
	fresh  map[net.Conn]struct{}
}

// NewServer creates a server for handler bound to addr (use "127.0.0.1:0"
// for an ephemeral port). The listener is open after NewServer returns, so
// Addr is immediately valid, but no requests are served until Start.
func NewServer(addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	s := &Server{
		httpServer: &http.Server{
			Handler:           handler,
			ReadHeaderTimeout: 30 * time.Second,
		},
		listener: ln,
		done:     make(chan struct{}),
		fresh:    make(map[net.Conn]struct{}),
	}
	s.httpServer.ConnState = func(c net.Conn, st http.ConnState) {
		s.connMu.Lock()
		defer s.connMu.Unlock()
		if st == http.StateNew {
			s.fresh[c] = struct{}{}
		} else {
			delete(s.fresh, c)
		}
	}
	return s, nil
}

// Start begins serving in a background goroutine.
func (s *Server) Start() {
	go func() {
		defer close(s.done)
		err := s.httpServer.Serve(s.listener)
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.mu.Lock()
			s.srvErr = err
			s.mu.Unlock()
		}
	}()
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.listener.Addr().String() }

// URL returns the base http URL of the server.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close shuts the server down and waits for the serve goroutine to exit:
// a short graceful drain first, then a forced close of any straggling
// connections. The force-close is required because http.Server.Shutdown
// waits forever on keep-alive connections that were dialed but never
// carried a request (StateNew) — a normal by-product of concurrent HTTP
// clients racing their dials — and on handlers parked in long injected
// delays (Hang faults). Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return s.srvErr
	}
	s.closed = true
	s.mu.Unlock()

	// Terminate request-less keep-alive connections up front so the
	// graceful drain below only waits on real in-flight requests.
	s.connMu.Lock()
	for c := range s.fresh {
		_ = c.Close()
	}
	s.connMu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	err := s.httpServer.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		err = s.httpServer.Close()
	}
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.srvErr
}
