package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestParseExpositionFamilies(t *testing.T) {
	text := `# HELP gremlin_agent_proxied_total Requests proxied.
# TYPE gremlin_agent_proxied_total counter
gremlin_agent_proxied_total{service="web"} 42
gremlin_agent_proxied_total{service="db"} 7
# HELP gremlin_agent_rules Installed rules.
# TYPE gremlin_agent_rules gauge
gremlin_agent_rules 3
`
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if len(fams) != 2 {
		t.Fatalf("got %d families, want 2", len(fams))
	}
	f := fams[0]
	if f.Name != "gremlin_agent_proxied_total" || f.Type != "counter" {
		t.Fatalf("family 0 = %s/%s", f.Name, f.Type)
	}
	if f.Help != "Requests proxied." {
		t.Fatalf("help = %q", f.Help)
	}
	if len(f.Samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(f.Samples))
	}
	if f.Samples[0].Labels["service"] != "web" || f.Samples[0].Value != 42 {
		t.Fatalf("sample 0 = %+v", f.Samples[0])
	}
	if fams[1].Type != "gauge" || len(fams[1].Samples) != 1 || len(fams[1].Samples[0].Labels) != 0 {
		t.Fatalf("family 1 = %+v", fams[1])
	}
}

func TestParseExpositionEscapedLabels(t *testing.T) {
	// Label values with escaped quotes, backslashes, newlines, and commas
	// inside quotes — all legal in the exposition format.
	text := "# TYPE weird gauge\n" +
		`weird{msg="a \"quoted\" thing",path="C:\\tmp",multi="line1\nline2",csv="a,b,c"} 1` + "\n"
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	got := fams[0].Samples[0].Labels
	want := map[string]string{
		"msg":   `a "quoted" thing`,
		"path":  `C:\tmp`,
		"multi": "line1\nline2",
		"csv":   "a,b,c",
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("label %s = %q, want %q", k, got[k], v)
		}
	}
}

func TestParseExpositionHistogram(t *testing.T) {
	w := NewWriter()
	h := NewHistogram(nil)
	h.Observe(0.004)
	h.Observe(0.2)
	h.Observe(30) // beyond the last finite bound, lands only in +Inf
	w.Histogram("req_seconds", "Latency.", h.Snapshot(), "service", "web")
	fams, err := ParseExposition(strings.NewReader(w.String()))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if len(fams) != 1 || fams[0].Type != "histogram" {
		t.Fatalf("families = %+v", fams)
	}
	// _bucket/_sum/_count fold into the base family.
	want := len(DefaultLatencyBounds) + 1 + 2
	if len(fams[0].Samples) != want {
		t.Fatalf("got %d samples, want %d", len(fams[0].Samples), want)
	}
	var inf float64
	sawInf := false
	for _, s := range fams[0].Samples {
		if s.Name == "req_seconds_bucket" && s.Labels["le"] == "+Inf" {
			inf, sawInf = s.Value, true
		}
	}
	if !sawInf || inf != 3 {
		t.Fatalf("le=+Inf bucket = %v (seen=%v), want 3", inf, sawInf)
	}
}

func TestParseExpositionInfValues(t *testing.T) {
	text := "# TYPE edge gauge\nedge{dir=\"up\"} +Inf\nedge{dir=\"down\"} -Inf\n"
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if !math.IsInf(fams[0].Samples[0].Value, 1) || !math.IsInf(fams[0].Samples[1].Value, -1) {
		t.Fatalf("samples = %+v", fams[0].Samples)
	}
}

func TestParseExpositionErrors(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":   "loose_metric 1\n",
		"duplicate family":      "# TYPE a counter\na 1\n# TYPE a counter\na 2\n",
		"histogram without inf": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"malformed comment":     "# NOPE a counter\n",
		"unterminated labels":   "# TYPE a counter\na{x=\"1\" 2\n",
		"bad value":             "# TYPE a counter\na one\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
	// Lint stays a thin wrapper over the same checks.
	if err := Lint(strings.NewReader("loose_metric 1\n")); err == nil {
		t.Error("Lint: expected error, got none")
	}
}
