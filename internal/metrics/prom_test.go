package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestWriterRendersFamilies(t *testing.T) {
	w := NewWriter()
	w.Counter("gremlin_test_total", "Things counted.", 3)
	w.Counter("gremlin_rule_fired_total", "Per-rule fires.", 1, "rule", "r1")
	w.Counter("gremlin_rule_fired_total", "Per-rule fires.", 2, "rule", `we"ird\`)
	w.Gauge("gremlin_up", "Liveness.", 1)

	out := w.String()
	for _, want := range []string{
		"# HELP gremlin_test_total Things counted.\n",
		"# TYPE gremlin_test_total counter\n",
		"gremlin_test_total 3\n",
		`gremlin_rule_fired_total{rule="r1"} 1` + "\n",
		`gremlin_rule_fired_total{rule="we\"ird\\"} 2` + "\n",
		"# TYPE gremlin_up gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The per-rule family must declare HELP/TYPE exactly once.
	if n := strings.Count(out, "# TYPE gremlin_rule_fired_total"); n != 1 {
		t.Errorf("family declared %d times, want 1", n)
	}
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("Lint: %v", err)
	}
}

func TestHistogramObserveAndRender(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if got, want := snap.Cumulative, []int64{1, 3, 4}; len(got) != len(want) {
		t.Fatalf("cumulative %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cumulative %v, want %v", got, want)
			}
		}
	}
	if snap.Count != 5 {
		t.Errorf("count %d, want 5", snap.Count)
	}
	if math.Abs(snap.Sum-56.05) > 1e-9 {
		t.Errorf("sum %v, want 56.05", snap.Sum)
	}

	w := NewWriter()
	w.Histogram("gremlin_req_seconds", "Request latency.", snap)
	out := w.String()
	for _, want := range []string{
		`gremlin_req_seconds_bucket{le="0.1"} 1`,
		`gremlin_req_seconds_bucket{le="+Inf"} 5`,
		"gremlin_req_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("Lint: %v", err)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count %d, want %d", got, workers*per)
	}
	snap := h.Snapshot()
	if math.Abs(snap.Sum-workers*per*0.01) > 1e-6 {
		t.Fatalf("sum %v, want %v", snap.Sum, workers*per*0.01)
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no type":        "foo 1\n",
		"bad value":      "# TYPE foo counter\nfoo abc\n",
		"bad name":       "# TYPE 9foo counter\n9foo 1\n",
		"dup family":     "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n",
		"histogram +Inf": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
	}
	for name, text := range cases {
		if err := Lint(strings.NewReader(text)); err == nil {
			t.Errorf("%s: Lint accepted %q", name, text)
		}
	}
}
